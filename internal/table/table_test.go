package table

import (
	"strings"
	"testing"
)

func TestBasicRendering(t *testing.T) {
	tb := New("Name", "Value").
		AddRow("alpha", 1).
		AddRow("b", 22.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "Name  | Value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "------+------" {
		t.Errorf("rule = %q", lines[1])
	}
	if lines[2] != "alpha | 1    " {
		t.Errorf("row 1 = %q", lines[2])
	}
	if lines[3] != "b     | 22.5 " {
		t.Errorf("row 2 = %q", lines[3])
	}
}

func TestTitle(t *testing.T) {
	out := New("A").SetTitle("My Title").AddRow("x").String()
	if !strings.HasPrefix(out, "My Title\n") {
		t.Errorf("title missing: %q", out)
	}
}

func TestAlignment(t *testing.T) {
	tb := New("N", "C").SetAlign(0, Right).SetAlign(1, Center)
	tb.AddRow("1", "a")
	tb.AddRow("100", "abc")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if lines[2] != "  1 |  a " {
		t.Errorf("right/center align row = %q", lines[2])
	}
}

func TestAlignAll(t *testing.T) {
	tb := New("A", "B").AlignAll(Right).AddRow("1", "2")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if lines[2] != "1 | 2" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestMissingAndExtraCells(t *testing.T) {
	tb := New("A", "B", "C")
	tb.AddRow("only")             // missing cells blank
	tb.AddRow("a", "b", "c", "d") // extra dropped
	out := tb.String()
	if strings.Contains(out, "d") {
		t.Errorf("extra cell leaked: %q", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestSetAlignOutOfRangeIgnored(t *testing.T) {
	tb := New("A").SetAlign(5, Right).SetAlign(-1, Right)
	tb.AddRow("x")
	_ = tb.String() // must not panic
}
