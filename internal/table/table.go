// Package table renders fixed-width text tables for the CLI and the
// experiment reports, mirroring the row/column layout of the paper's
// Table 1 without any external dependency.
package table

import (
	"fmt"
	"strings"
)

// Align controls horizontal cell alignment.
type Align int

// Alignment choices.
const (
	Left Align = iota
	Right
	Center
)

// Table is a simple text table builder. The zero value is not usable;
// construct with New.
type Table struct {
	headers []string
	aligns  []Align
	rows    [][]string
	title   string
}

// New creates a table with the given column headers. Columns default to
// left alignment.
func New(headers ...string) *Table {
	t := &Table{headers: headers, aligns: make([]Align, len(headers))}
	return t
}

// SetTitle sets an optional title printed above the table.
func (t *Table) SetTitle(title string) *Table {
	t.title = title
	return t
}

// SetAlign sets the alignment of column i. Out-of-range indices are ignored.
func (t *Table) SetAlign(i int, a Align) *Table {
	if i >= 0 && i < len(t.aligns) {
		t.aligns[i] = a
	}
	return t
}

// AlignAll sets every column to the given alignment.
func (t *Table) AlignAll(a Align) *Table {
	for i := range t.aligns {
		t.aligns[i] = a
	}
	return t
}

// AddRow appends a row. Cells are stringified with %v; missing cells are
// blank, extra cells are dropped.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRule := func() {
		for i, w := range widths {
			if i > 0 {
				b.WriteString("-+-")
			}
			b.WriteString(strings.Repeat("-", w))
		}
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(pad(cells[i], w, t.aligns[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	writeRule()
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int, a Align) string {
	gap := w - len(s)
	if gap <= 0 {
		return s
	}
	switch a {
	case Right:
		return strings.Repeat(" ", gap) + s
	case Center:
		l := gap / 2
		return strings.Repeat(" ", l) + s + strings.Repeat(" ", gap-l)
	default:
		return s + strings.Repeat(" ", gap)
	}
}
