package protocol

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/rng"
)

// Hybrid models Filecoin-style incentives (Section 6.4): mining power is
// a blend of a fixed physical resource (storage space, which rewards
// cannot buy) and pledged stake (which rewards compound into). The winner
// of each block is drawn with probability proportional to
//
//	power_i = Alpha · initialShare_i + (1 − Alpha) · stakeShare_i ,
//
// and the block reward joins the stake component only. Alpha = 1
// degenerates to PoW (constant power) and Alpha = 0 to ML-PoS (pure Pólya
// urn), so the model interpolates the fairness spectrum between the
// paper's two extremes — the knob a Filecoin-like designer actually has.
type Hybrid struct {
	// W is the block reward.
	W float64
	// Alpha is the fixed-resource weight in [0, 1].
	Alpha float64
}

// NewHybrid returns the hybrid model. It panics if w <= 0 or alpha is
// outside [0, 1].
func NewHybrid(w, alpha float64) Hybrid {
	validateReward("Hybrid", w)
	if !(alpha >= 0 && alpha <= 1) {
		panic(fmt.Sprintf("protocol: Hybrid needs alpha in [0, 1], got %v", alpha))
	}
	return Hybrid{W: w, Alpha: alpha}
}

// Name implements Protocol.
func (Hybrid) Name() string { return "Hybrid" }

// Step draws the winner over blended power and stakes the reward.
func (p Hybrid) Step(st *game.State, r *rng.Rand) {
	m := st.NumMiners()
	totalStake := st.TotalStake()
	weights := make([]float64, m)
	for i := 0; i < m; i++ {
		w := p.Alpha * st.Initial[i]
		if totalStake > 0 {
			w += (1 - p.Alpha) * st.Stakes[i] / totalStake
		}
		weights[i] = w
	}
	winner := r.Categorical(weights)
	st.Credit(winner, p.W, p.W)
	st.EndBlock()
}
