// Package protocol implements the blockchain incentive models the paper
// analyses (Section 2): PoW, multi-lottery PoS (ML-PoS, e.g. Qtum and
// Blackcoin), single-lottery PoS (SL-PoS, e.g. NXT) and compound PoS
// (C-PoS, e.g. Ethereum 2.0); the fairness treatment FSL-PoS (Section 6.2);
// and the extension incentives discussed in Section 6.4 (NEO, Algorand,
// EOS).
//
// Every model advances a game.State one block (or epoch) at a time by
// selecting proposers and crediting rewards. Implementations are
// stateless values, safe to share across concurrent trials: all mutable
// state lives in the game.State.
package protocol

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/rng"
)

// Protocol advances a mining game by one block or epoch.
//
// Implementations must be stateless (all per-game state lives in the
// game.State) so that a single value can drive many concurrent trials.
type Protocol interface {
	// Name returns a short identifier, e.g. "PoW" or "ML-PoS".
	Name() string
	// Step runs one block/epoch: it selects the proposer(s), credits
	// rewards via st.Credit and finishes with st.EndBlock.
	Step(st *game.State, r *rng.Rand)
}

// Run advances the game n steps. It is the shared inner loop of examples
// and tests; the Monte-Carlo harness has its own loop with checkpointing.
func Run(p Protocol, st *game.State, r *rng.Rand, n int) {
	for i := 0; i < n; i++ {
		p.Step(st, r)
	}
}

// validateReward panics on a non-positive block reward. Constructors call
// it so that a mis-configured experiment fails loudly at set-up time
// rather than producing silently meaningless fairness numbers.
func validateReward(name string, w float64) {
	if !(w > 0) {
		panic(fmt.Sprintf("protocol: %s requires positive reward, got %v", name, w))
	}
}
