package protocol

import (
	"repro/internal/game"
	"repro/internal/rng"
)

// PoW is the Proof-of-Work incentive model (Section 2.1).
//
// Each miner's next-block arrival time is exponential with rate equal to
// her hash power, so the winner of each block is drawn with probability
// proportional to hash power — independent of all previous outcomes.
// Rewards are paid in currency that conveys no future mining power, so the
// competing resource never changes. The model therefore satisfies both
// expectational fairness (Theorem 3.2) and, for large n, (ε,δ)-robust
// fairness (Theorem 4.2).
type PoW struct {
	// W is the block reward.
	W float64
}

// NewPoW returns the PoW model with block reward w. It panics if w <= 0.
func NewPoW(w float64) PoW {
	validateReward("PoW", w)
	return PoW{W: w}
}

// Name implements Protocol.
func (PoW) Name() string { return "PoW" }

// Step selects the winner of the exponential race — equivalently a
// categorical draw over hash powers — and credits the block reward. Hash
// power (st.Stakes) is never modified.
func (p PoW) Step(st *game.State, r *rng.Rand) {
	winner := r.Categorical(st.Stakes)
	st.Credit(winner, p.W, 0)
	st.EndBlock()
}
