package protocol

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/rng"
)

// winFreq plays `trials` single-block games and returns miner 0's win
// frequency.
func winFreq(t *testing.T, p Protocol, initial []float64, trials int, seed uint64) float64 {
	t.Helper()
	wins := 0
	for i := 0; i < trials; i++ {
		st := game.MustNew(initial)
		p.Step(st, rng.Stream(seed, i))
		if st.Rewards[0] > 0 {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}

// meanLambda runs `trials` games of n blocks and returns the mean λ_0.
func meanLambda(t *testing.T, p Protocol, initial []float64, n, trials int, seed uint64) float64 {
	t.Helper()
	sum := 0.0
	for i := 0; i < trials; i++ {
		st := game.MustNew(initial)
		Run(p, st, rng.Stream(seed, i), n)
		l := st.Lambda(0)
		if math.IsNaN(l) {
			t.Fatal("Lambda is NaN after run")
		}
		sum += l
	}
	return sum / float64(trials)
}

func TestPoWWinProbProportional(t *testing.T) {
	// Section 2.1: A wins the next block w.p. H_A/(H_A+H_B).
	got := winFreq(t, NewPoW(0.01), game.TwoMiner(0.2), 50000, 1)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("PoW win freq = %v, want ~0.2", got)
	}
}

func TestPoWStakesConstant(t *testing.T) {
	st := game.MustNew(game.TwoMiner(0.2))
	Run(NewPoW(0.01), st, rng.New(2), 1000)
	if st.Stakes[0] != 0.2 || st.Stakes[1] != 0.8 {
		t.Errorf("PoW mutated hash power: %v", st.Stakes)
	}
	if st.Blocks != 1000 {
		t.Errorf("blocks = %d", st.Blocks)
	}
	if math.Abs(st.TotalRewards()-10) > 1e-9 {
		t.Errorf("total rewards = %v, want 10", st.TotalRewards())
	}
}

func TestPoWExpectationalFairness(t *testing.T) {
	// Theorem 3.2.
	got := meanLambda(t, NewPoW(0.01), game.TwoMiner(0.2), 200, 2000, 3)
	if math.Abs(got-0.2) > 0.005 {
		t.Errorf("PoW E[λ] = %v, want ~0.2", got)
	}
}

func TestMLPoSExpectationalFairness(t *testing.T) {
	// Theorem 3.3: fair in expectation despite the Pólya-urn feedback.
	got := meanLambda(t, NewMLPoS(0.01), game.TwoMiner(0.2), 200, 2000, 4)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("ML-PoS E[λ] = %v, want ~0.2", got)
	}
}

func TestMLPoSStakeConservation(t *testing.T) {
	st := game.MustNew(game.TwoMiner(0.3))
	Run(NewMLPoS(0.05), st, rng.New(5), 400)
	want := 1 + 0.05*400
	if math.Abs(st.TotalStake()-want) > 1e-9 {
		t.Errorf("total stake = %v, want %v", st.TotalStake(), want)
	}
}

func TestMLPoSRichGetLuckier(t *testing.T) {
	// Winning early increases future win probability: conditional on
	// winning block 1, the stake share strictly exceeds a.
	st := game.MustNew(game.TwoMiner(0.2))
	st.Credit(0, 0.5, 0.5)
	st.EndBlock()
	if st.Share(0) <= 0.2 {
		t.Errorf("share after win = %v, should exceed 0.2", st.Share(0))
	}
}

func TestMLPoSKernelTwoMinerWinProb(t *testing.T) {
	// Section 2.2 closed form: Pr[A wins] = (pA − pA·pB/2)/(pA+pB−pA·pB).
	perStake := 0.3 // deliberately large so the tie term matters
	a := 0.2
	pA, pB := perStake*a, perStake*(1-a)
	want := (pA - pA*pB/2) / (pA + pB - pA*pB)
	got := winFreq(t, NewMLPoSKernel(0.01, perStake), game.TwoMiner(a), 80000, 6)
	if math.Abs(got-want) > 0.006 {
		t.Errorf("kernel win freq = %v, want %v", got, want)
	}
}

func TestMLPoSKernelSmallProbMatchesProportional(t *testing.T) {
	// With tiny per-timestamp probabilities the tie term vanishes and the
	// kernel model converges to the proportional ML-PoS limit.
	got := winFreq(t, NewMLPoSKernel(0.01, 1.0/1200), game.TwoMiner(0.2), 50000, 7)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("kernel (small p) win freq = %v, want ~0.2", got)
	}
}

func TestSLPoSTwoMinerWinProb(t *testing.T) {
	// Equation (1): Pr[A wins] ≈ a/(2b) for a ≤ b. a=0.2 ⇒ 0.125.
	got := winFreq(t, NewSLPoS(0.01), game.TwoMiner(0.2), 50000, 8)
	want := 0.2 / (2 * 0.8)
	if math.Abs(got-want) > 0.008 {
		t.Errorf("SL-PoS win freq = %v, want %v", got, want)
	}
}

func TestSLPoSEqualStakesFair(t *testing.T) {
	// a = b = 0.5 is the only fair point of the two-miner game.
	got := winFreq(t, NewSLPoS(0.01), game.TwoMiner(0.5), 50000, 9)
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("SL-PoS symmetric win freq = %v, want ~0.5", got)
	}
}

func TestSLPoSNotExpectationallyFair(t *testing.T) {
	// Theorem 3.4: E[λ_A] < a for a < 1/2.
	got := meanLambda(t, NewSLPoS(0.01), game.TwoMiner(0.2), 500, 1000, 10)
	if got >= 0.17 {
		t.Errorf("SL-PoS E[λ] = %v, should be well below 0.2", got)
	}
}

func TestSLPoSMonopolises(t *testing.T) {
	// Theorem 4.9: λ converges to {0, 1}; absorption follows the
	// stochastic-approximation time scale (share ~ n^{-1/2} once below
	// the unstable point 1/2), so by n = 20000 essentially every game is
	// near monopoly.
	p := NewSLPoS(0.01)
	extremes := 0
	trials := 200
	for i := 0; i < trials; i++ {
		st := game.MustNew(game.TwoMiner(0.2))
		Run(p, st, rng.Stream(11, i), 20000)
		share := st.Share(0)
		if share < 0.05 || share > 0.95 {
			extremes++
		}
	}
	if frac := float64(extremes) / float64(trials); frac < 0.95 {
		t.Errorf("only %v of SL-PoS games reached near-monopoly", frac)
	}
}

func TestFSLPoSWinProbProportional(t *testing.T) {
	// Section 6.2 treatment: exponential race restores proportionality.
	got := winFreq(t, NewFSLPoS(0.01), game.TwoMiner(0.2), 50000, 12)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("FSL-PoS win freq = %v, want ~0.2", got)
	}
}

func TestFSLPoSExpectationalFairness(t *testing.T) {
	got := meanLambda(t, NewFSLPoS(0.01), game.TwoMiner(0.2), 200, 2000, 13)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("FSL-PoS E[λ] = %v, want ~0.2", got)
	}
}

func TestCPoSExpectationalFairness(t *testing.T) {
	// Theorem 3.5.
	got := meanLambda(t, NewCPoS(0.01, 0.1, 32), game.TwoMiner(0.2), 100, 1000, 14)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("C-PoS E[λ] = %v, want ~0.2", got)
	}
}

func TestCPoSStakeConservation(t *testing.T) {
	st := game.MustNew(game.TwoMiner(0.2))
	Run(NewCPoS(0.01, 0.1, 32), st, rng.New(15), 100)
	want := 1 + (0.01+0.1)*100
	if math.Abs(st.TotalStake()-want) > 1e-9 {
		t.Errorf("total stake = %v, want %v", st.TotalStake(), want)
	}
}

func TestCPoSNarrowerThanMLPoS(t *testing.T) {
	// Theorem 4.10: inflation + sharding shrink the λ spread. Compare the
	// cross-trial variance of λ after equal reward issuance.
	varOf := func(p Protocol, n int, seed uint64) float64 {
		trials := 800
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			st := game.MustNew(game.TwoMiner(0.2))
			Run(p, st, rng.Stream(seed, i), n)
			l := st.Lambda(0)
			sum += l
			sumSq += l * l
		}
		mean := sum / float64(trials)
		return sumSq/float64(trials) - mean*mean
	}
	vML := varOf(NewMLPoS(0.01), 1000, 16)
	vC := varOf(NewCPoS(0.01, 0.1, 32), 1000, 17)
	if vC >= vML/4 {
		t.Errorf("C-PoS variance %v not ≪ ML-PoS variance %v", vC, vML)
	}
}

func TestCPoSDegeneratesToMLPoS(t *testing.T) {
	// v=0, P=1 is exactly ML-PoS (Theorem 4.10 remark): the winner draw
	// and reward are identical, so with the same RNG stream the whole
	// trajectory must match.
	n := 500
	stML := game.MustNew(game.TwoMiner(0.2))
	stC := game.MustNew(game.TwoMiner(0.2))
	Run(NewMLPoS(0.01), stML, rng.New(18), n)
	Run(NewCPoS(0.01, 0, 1), stC, rng.New(18), n)
	if math.Abs(stML.Lambda(0)-stC.Lambda(0)) > 1e-12 {
		t.Errorf("C-PoS(v=0,P=1) λ=%v differs from ML-PoS λ=%v", stC.Lambda(0), stML.Lambda(0))
	}
	if math.Abs(stML.Stakes[0]-stC.Stakes[0]) > 1e-12 {
		t.Errorf("stakes diverged: %v vs %v", stC.Stakes[0], stML.Stakes[0])
	}
}

func TestNEOBehavesLikePoW(t *testing.T) {
	st := game.MustNew(game.TwoMiner(0.2))
	Run(NewNEO(0.01), st, rng.New(19), 1000)
	if st.Stakes[0] != 0.2 {
		t.Errorf("NEO mutated base asset: %v", st.Stakes)
	}
	got := meanLambda(t, NewNEO(0.01), game.TwoMiner(0.2), 200, 1000, 20)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("NEO E[λ] = %v", got)
	}
}

func TestAlgorandAbsoluteFairness(t *testing.T) {
	// λ equals the initial share in *every* outcome: (0,0)-fairness.
	st := game.MustNew(game.TwoMiner(0.2))
	Run(NewAlgorand(0.1), st, rng.New(21), 500)
	if math.Abs(st.Lambda(0)-0.2) > 1e-12 {
		t.Errorf("Algorand λ = %v, want exactly 0.2", st.Lambda(0))
	}
	if math.Abs(st.Share(0)-0.2) > 1e-12 {
		t.Errorf("Algorand share drifted: %v", st.Share(0))
	}
}

func TestEOSUnfairTowardConstant(t *testing.T) {
	// EOS pays every delegate the same proposer reward regardless of
	// stake, so the small delegate is over-rewarded: λ_A > a, and the
	// constant reward accreting to stake drags every share toward 1/m.
	// The dynamics contain no randomness at all, so two seeds must agree.
	st := game.MustNew(game.TwoMiner(0.2))
	Run(NewEOS(0.01, 0.1), st, rng.New(22), 2000)
	st2 := game.MustNew(game.TwoMiner(0.2))
	Run(NewEOS(0.01, 0.1), st2, rng.New(99), 2000)
	if st.Lambda(0) != st2.Lambda(0) {
		t.Error("EOS trajectory should be deterministic")
	}
	if st.Lambda(0) <= 0.25 {
		t.Errorf("EOS λ = %v, small delegate should be clearly over-rewarded (> 0.25)", st.Lambda(0))
	}
	if share := st.Share(0); !(share > 0.25 && share < 0.5) {
		t.Errorf("EOS share = %v, should be drifting from 0.2 toward 1/m = 0.5", share)
	}
}

func TestWaveMatchesFSLPoS(t *testing.T) {
	stW := game.MustNew(game.TwoMiner(0.2))
	stF := game.MustNew(game.TwoMiner(0.2))
	Run(NewWave(0.01), stW, rng.New(23), 300)
	Run(NewFSLPoS(0.01), stF, rng.New(23), 300)
	if stW.Lambda(0) != stF.Lambda(0) {
		t.Error("Wave should share the FSL-PoS lottery")
	}
}

func TestWithholdingPreservesExpectation(t *testing.T) {
	// Withholding changes the stake dynamics, not the expectation.
	sum := 0.0
	trials := 1500
	p := NewFSLPoS(0.01)
	for i := 0; i < trials; i++ {
		st := game.MustNew(game.TwoMiner(0.2), game.WithWithholding(100))
		Run(p, st, rng.Stream(24, i), 300)
		sum += st.Lambda(0)
	}
	got := sum / float64(trials)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("withheld FSL-PoS E[λ] = %v, want ~0.2", got)
	}
}

func TestWithholdingReducesVariance(t *testing.T) {
	// Section 6.3: withholding freezes stake between release points, so
	// intra-period outcomes are i.i.d. and concentrate.
	varOf := func(k int, seed uint64) float64 {
		trials := 800
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			var opts []game.Option
			if k > 0 {
				opts = append(opts, game.WithWithholding(k))
			}
			st := game.MustNew(game.TwoMiner(0.2), opts...)
			Run(NewFSLPoS(0.05), st, rng.Stream(seed, i), 2000)
			l := st.Lambda(0)
			sum += l
			sumSq += l * l
		}
		mean := sum / float64(trials)
		return sumSq/float64(trials) - mean*mean
	}
	vNone := varOf(0, 25)
	vHold := varOf(1000, 26)
	if vHold >= vNone {
		t.Errorf("withholding variance %v not below baseline %v", vHold, vNone)
	}
}

func TestConstructorsPanicOnBadParams(t *testing.T) {
	cases := []func(){
		func() { NewPoW(0) },
		func() { NewPoW(-1) },
		func() { NewMLPoS(0) },
		func() { NewMLPoSKernel(0.01, 0) },
		func() { NewMLPoSKernel(0.01, 1.5) },
		func() { NewSLPoS(0) },
		func() { NewFSLPoS(0) },
		func() { NewCPoS(0, 0.1, 32) },
		func() { NewCPoS(0.01, -0.1, 32) },
		func() { NewCPoS(0.01, 0.1, 0) },
		func() { NewNEO(0) },
		func() { NewAlgorand(0) },
		func() { NewEOS(0, 0.1) },
		func() { NewEOS(0.01, -1) },
		func() { NewWave(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAllProtocolsKeepInvariants(t *testing.T) {
	protos := []Protocol{
		NewPoW(0.01), NewMLPoS(0.01), NewMLPoSKernel(0.01, 0.001),
		NewSLPoS(0.01), NewFSLPoS(0.01), NewCPoS(0.01, 0.1, 8),
		NewNEO(0.01), NewAlgorand(0.1), NewEOS(0.01, 0.1), NewWave(0.01),
	}
	for _, p := range protos {
		st := game.MustNew(game.LeaderAndPack(0.2, 4))
		r := rng.New(27)
		for b := 0; b < 200; b++ {
			p.Step(st, r)
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("%s violated invariants at block %d: %v", p.Name(), b, err)
			}
		}
		if st.Blocks != 200 {
			t.Errorf("%s advanced %d blocks, want 200", p.Name(), st.Blocks)
		}
	}
}

func TestProtocolNames(t *testing.T) {
	want := map[string]Protocol{
		"PoW":           NewPoW(1),
		"ML-PoS":        NewMLPoS(1),
		"ML-PoS-kernel": NewMLPoSKernel(1, 0.001),
		"SL-PoS":        NewSLPoS(1),
		"FSL-PoS":       NewFSLPoS(1),
		"C-PoS":         NewCPoS(1, 1, 1),
		"NEO":           NewNEO(1),
		"Algorand":      NewAlgorand(1),
		"EOS":           NewEOS(1, 0),
		"Wave":          NewWave(1),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
	}
}

// Property: λ stays in [0,1] and block counter matches steps for every
// protocol under random parameters.
func TestQuickLambdaInRange(t *testing.T) {
	f := func(seed uint64, aRaw uint8, nRaw uint8) bool {
		a := 0.05 + float64(aRaw%90)/100 // in [0.05, 0.95)
		n := int(nRaw%100) + 1
		protos := []Protocol{
			NewPoW(0.01), NewMLPoS(0.01), NewSLPoS(0.01),
			NewFSLPoS(0.01), NewCPoS(0.01, 0.1, 4),
		}
		for _, p := range protos {
			st := game.MustNew(game.TwoMiner(a))
			Run(p, st, rng.New(seed), n)
			l := st.Lambda(0)
			if math.IsNaN(l) || l < 0 || l > 1 {
				return false
			}
			if st.Blocks != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: stake-conveying protocols issue exactly n·(w+v) total stake.
func TestQuickStakeConservation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		type tc struct {
			p       Protocol
			perStep float64
		}
		cases := []tc{
			{NewMLPoS(0.02), 0.02},
			{NewSLPoS(0.02), 0.02},
			{NewFSLPoS(0.02), 0.02},
			{NewCPoS(0.02, 0.05, 4), 0.07},
			{NewEOS(0.02, 0.05), 0.07},
			{NewAlgorand(0.05), 0.05},
		}
		for _, c := range cases {
			st := game.MustNew(game.TwoMiner(0.3))
			Run(c.p, st, rng.New(seed), n)
			want := 1 + c.perStep*float64(n)
			if math.Abs(st.TotalStake()-want) > 1e-9 {
				return false
			}
			if math.Abs(st.TotalRewards()-c.perStep*float64(n)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
