package protocol

import (
	"math"
	"testing"

	"repro/internal/game"
	"repro/internal/rng"
)

func TestHybridAlphaOneMatchesPoWWinRate(t *testing.T) {
	// α = 1: constant power — the PoW distribution.
	got := winFreq(t, NewHybrid(0.01, 1), game.TwoMiner(0.2), 50000, 61)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("Hybrid(α=1) win freq = %v, want ~0.2", got)
	}
}

func TestHybridAlphaZeroMatchesMLPoSTrajectory(t *testing.T) {
	// α = 0: pure stake lottery — identical to ML-PoS draw-for-draw on
	// the same stream (one categorical draw per block, proportional
	// weights differ only by a constant normalisation).
	stH := game.MustNew(game.TwoMiner(0.2))
	stM := game.MustNew(game.TwoMiner(0.2))
	Run(NewHybrid(0.01, 0), stH, rng.New(62), 500)
	Run(NewMLPoS(0.01), stM, rng.New(62), 500)
	if stH.Lambda(0) != stM.Lambda(0) {
		t.Errorf("Hybrid(α=0) λ=%v differs from ML-PoS λ=%v", stH.Lambda(0), stM.Lambda(0))
	}
}

func TestHybridExpectationalFairness(t *testing.T) {
	// Any α keeps the winner probability proportional to the blended
	// power with a fair fixed component: E[λ] = a for all α.
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		got := meanLambda(t, NewHybrid(0.01, alpha), game.TwoMiner(0.2), 200, 1500, uint64(63+int(alpha*100)))
		if math.Abs(got-0.2) > 0.012 {
			t.Errorf("Hybrid(α=%v) E[λ] = %v, want ~0.2", alpha, got)
		}
	}
}

func TestHybridVarianceDecreasesWithAlpha(t *testing.T) {
	// More fixed resource ⇒ less compounding ⇒ tighter λ: variance is
	// monotone decreasing in α (the designer's fairness knob).
	varOf := func(alpha float64, seed uint64) float64 {
		trials := 1200
		var sum, sumSq float64
		p := NewHybrid(0.05, alpha)
		for i := 0; i < trials; i++ {
			st := game.MustNew(game.TwoMiner(0.2))
			Run(p, st, rng.Stream(seed, i), 1500)
			l := st.Lambda(0)
			sum += l
			sumSq += l * l
		}
		mean := sum / float64(trials)
		return sumSq/float64(trials) - mean*mean
	}
	v0 := varOf(0, 64)
	v05 := varOf(0.5, 65)
	v1 := varOf(1, 66)
	if !(v1 < v05 && v05 < v0) {
		t.Errorf("variance not decreasing in α: v0=%v v0.5=%v v1=%v", v0, v05, v1)
	}
}

func TestHybridConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHybrid(0, 0.5) },
		func() { NewHybrid(0.01, -0.1) },
		func() { NewHybrid(0.01, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHybridInvariants(t *testing.T) {
	st := game.MustNew(game.LeaderAndPack(0.2, 5))
	r := rng.New(67)
	p := NewHybrid(0.01, 0.6)
	for b := 0; b < 300; b++ {
		p.Step(st, r)
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
	}
	want := 1 + 0.01*300
	if math.Abs(st.TotalStake()-want) > 1e-9 {
		t.Errorf("stake conservation: %v != %v", st.TotalStake(), want)
	}
}
