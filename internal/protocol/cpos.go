package protocol

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/rng"
)

// CPoS is the compound Proof-of-Stake incentive model of Ethereum 2.0
// (Section 2.4), generalised as in the paper.
//
// Each epoch has P shards. Every shard elects one proposer with
// probability proportional to epoch-start stake and pays her W/P; in
// addition an inflation (attester) reward V is distributed to all miners
// exactly proportionally to epoch-start stake. Both reward streams join
// future staking power. The inflation reward carries no randomness, so it
// dilutes the variance of the proposer lottery: C-PoS is expectationally
// fair (Theorem 3.5) and achieves (ε,δ)-robust fairness whenever
// w²(1/n + w + v)/((w+v)²P) ≤ 2a²ε²/ln(2/δ) (Theorem 4.10) — strictly
// easier than ML-PoS, which is the degenerate case V=0, P=1.
type CPoS struct {
	// W is the total proposer reward per epoch (split evenly over shards).
	W float64
	// V is the total inflation (attester) reward per epoch.
	V float64
	// P is the number of shards per epoch (32 in Ethereum 2.0).
	P int
}

// NewCPoS returns the compound PoS model. It panics if w <= 0, v < 0 or
// p < 1.
func NewCPoS(w, v float64, p int) CPoS {
	validateReward("C-PoS", w)
	if v < 0 {
		panic(fmt.Sprintf("protocol: C-PoS inflation reward must be >= 0, got %v", v))
	}
	if p < 1 {
		panic(fmt.Sprintf("protocol: C-PoS needs at least 1 shard, got %d", p))
	}
	return CPoS{W: w, V: v, P: p}
}

// Name implements Protocol.
func (CPoS) Name() string { return "C-PoS" }

// Step runs one epoch. All P shard lotteries and the inflation allocation
// use the stake distribution at the start of the epoch, matching the
// Y_i ~ Bin(P, S_{i-1}/total) model in the paper's proofs.
func (p CPoS) Step(st *game.State, r *rng.Rand) {
	m := st.NumMiners()
	// Snapshot epoch-start stakes: shard lotteries must not see
	// intra-epoch reward effects.
	start := make([]float64, m)
	copy(start, st.Stakes)
	total := 0.0
	for _, s := range start {
		total += s
	}
	// Proposer lotteries: one categorical draw per shard.
	perShard := p.W / float64(p.P)
	for shard := 0; shard < p.P; shard++ {
		winner := r.Categorical(start)
		st.Credit(winner, perShard, perShard)
	}
	// Inflation reward, exactly proportional to epoch-start stake.
	if p.V > 0 && total > 0 {
		for i, s := range start {
			if s > 0 {
				amt := p.V * s / total
				st.Credit(i, amt, amt)
			}
		}
	}
	st.EndBlock()
}
