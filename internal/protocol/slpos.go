package protocol

import (
	"math"

	"repro/internal/game"
	"repro/internal/rng"
)

// SLPoS is the single-lottery Proof-of-Stake incentive model (Section
// 2.3), deployed by NXT.
//
// Each miner gets exactly one lottery ticket per block: a waiting time
// time_i = basetime · Hash(pk_i)/stake_i, and the smallest waiting time
// wins. Because Hash/2^256 is uniform — not exponential — the win
// probability is NOT proportional to stake: in the two-miner game the
// smaller miner A wins with probability only a/(2b) (Equation 1). The
// reward fraction therefore drifts toward the richer miner and, by the
// stochastic-approximation argument of Theorem 4.9, converges to 0 or 1
// almost surely: the mining game ends in monopoly. SL-PoS satisfies
// neither expectational nor robust fairness.
type SLPoS struct {
	// W is the block reward.
	W float64
}

// NewSLPoS returns the SL-PoS model with block reward w. It panics if
// w <= 0.
func NewSLPoS(w float64) SLPoS {
	validateReward("SL-PoS", w)
	return SLPoS{W: w}
}

// Name implements Protocol.
func (SLPoS) Name() string { return "SL-PoS" }

// Step draws each miner's uniform hash ticket, divides by stake and
// rewards the earliest candidate block. The basetime constant cancels in
// the comparison and is omitted.
func (p SLPoS) Step(st *game.State, r *rng.Rand) {
	winner := -1
	best := math.Inf(1)
	for i, s := range st.Stakes {
		if s <= 0 {
			continue // a stakeless miner never produces a valid block
		}
		t := r.Float64() / s
		if t < best {
			best = t
			winner = i
		}
	}
	if winner < 0 {
		st.EndBlock()
		return
	}
	st.Credit(winner, p.W, p.W)
	st.EndBlock()
}

// FSLPoS is the paper's fairness treatment for SL-PoS (Section 6.2):
// replace the linear time function with the inverse-transform
// time_i = −ln(1 − Hash_i/2^256)/stake_i, turning the lottery into an
// exponential race so the win probability becomes exactly proportional to
// stake. FSL-PoS restores expectational fairness; robust fairness still
// requires small rewards or withholding (Section 6.3, Figure 6).
type FSLPoS struct {
	// W is the block reward.
	W float64
}

// NewFSLPoS returns the fair-single-lottery model with block reward w. It
// panics if w <= 0.
func NewFSLPoS(w float64) FSLPoS {
	validateReward("FSL-PoS", w)
	return FSLPoS{W: w}
}

// Name implements Protocol.
func (FSLPoS) Name() string { return "FSL-PoS" }

// Step plays the corrected lottery: each miner's waiting time is an
// exponential draw with rate equal to her stake (the inverse transform of
// the uniform hash), and the earliest wins.
func (p FSLPoS) Step(st *game.State, r *rng.Rand) {
	winner := -1
	best := math.Inf(1)
	for i, s := range st.Stakes {
		if s <= 0 {
			continue
		}
		t := r.Exponential(s)
		if t < best {
			best = t
			winner = i
		}
	}
	if winner < 0 {
		st.EndBlock()
		return
	}
	st.Credit(winner, p.W, p.W)
	st.EndBlock()
}
