package protocol

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/rng"
)

// NEO models the NEO incentive (Section 6.4): proposers are selected
// proportionally to the base asset (NEO token), but rewards are paid in a
// separate asset (NEO gas) that never conveys future mining power. The
// competing resource is therefore constant — exactly the PoW situation —
// and NEO preserves both types of fairness in a long-term game.
type NEO struct {
	// W is the per-block gas reward.
	W float64
}

// NewNEO returns the NEO model with gas reward w. It panics if w <= 0.
func NewNEO(w float64) NEO {
	validateReward("NEO", w)
	return NEO{W: w}
}

// Name implements Protocol.
func (NEO) Name() string { return "NEO" }

// Step selects the proposer over the constant base-asset shares and pays
// the reward in gas (stake contribution zero).
func (p NEO) Step(st *game.State, r *rng.Rand) {
	winner := r.Categorical(st.Stakes)
	st.Credit(winner, p.W, 0)
	st.EndBlock()
}

// Algorand models the Algorand incentive (Section 6.4): only inflation
// rewards are paid, proportional to holdings, and no proposer reward
// exists. Every miner's reward is deterministic, so λ equals the initial
// share in every outcome — (0,0)-fairness — at the cost of removing the
// proposer's marginal incentive.
type Algorand struct {
	// V is the per-epoch inflation reward.
	V float64
}

// NewAlgorand returns the Algorand model with inflation reward v. It
// panics if v <= 0.
func NewAlgorand(v float64) Algorand {
	validateReward("Algorand", v)
	return Algorand{V: v}
}

// Name implements Protocol.
func (Algorand) Name() string { return "Algorand" }

// Step distributes the inflation reward proportionally to current stake;
// rewards join staking power, which leaves shares unchanged.
func (p Algorand) Step(st *game.State, r *rng.Rand) {
	total := st.TotalStake()
	if total > 0 {
		for i, s := range st.Stakes {
			if s > 0 {
				amt := p.V * s / total
				st.Credit(i, amt, amt)
			}
		}
	}
	st.EndBlock()
}

// EOS models the delegated-PoS incentive of EOS (Section 6.4): the miners
// are a fixed committee of delegates who propose blocks in turn. Per
// epoch, every delegate receives the same constant proposer reward W/m
// regardless of her stake, plus an inflation reward V proportional to
// stake. Because the proposer component ignores stake entirely, EOS
// preserves neither expectational nor robust fairness in general: λ
// converges to a deterministic mixture that over-rewards small delegates.
type EOS struct {
	// W is the total per-epoch proposer reward, split equally.
	W float64
	// V is the total per-epoch inflation reward, split by stake.
	V float64
}

// NewEOS returns the EOS model. It panics if w <= 0 or v < 0.
func NewEOS(w, v float64) EOS {
	validateReward("EOS", w)
	if v < 0 {
		panic(fmt.Sprintf("protocol: EOS inflation reward must be >= 0, got %v", v))
	}
	return EOS{W: w, V: v}
}

// Name implements Protocol.
func (EOS) Name() string { return "EOS" }

// Step runs one consensus round: every delegate proposes once (constant
// reward) and receives her stake-proportional inflation share.
func (p EOS) Step(st *game.State, r *rng.Rand) {
	m := st.NumMiners()
	perDelegate := p.W / float64(m)
	total := st.TotalStake()
	for i := 0; i < m; i++ {
		amt := perDelegate
		if p.V > 0 && total > 0 {
			amt += p.V * st.Stakes[i] / total
		}
		st.Credit(i, amt, amt)
	}
	st.EndBlock()
}

// Wave models the Wave protocol (Begicheva & Kofman, Section 6.4), an
// NXT variant whose corrected time function makes the win probability
// proportional to stake — the same mechanism as the paper's FSL-PoS
// treatment. It is expectationally fair but, like ML-PoS, not robustly
// fair for large rewards.
type Wave struct {
	// W is the block reward.
	W float64
}

// NewWave returns the Wave model with block reward w. It panics if w <= 0.
func NewWave(w float64) Wave {
	validateReward("Wave", w)
	return Wave{W: w}
}

// Name implements Protocol.
func (Wave) Name() string { return "Wave" }

// Step delegates to the exponential-race lottery shared with FSL-PoS.
func (p Wave) Step(st *game.State, r *rng.Rand) {
	FSLPoS{W: p.W}.Step(st, r)
}
