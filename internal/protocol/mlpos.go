package protocol

import (
	"repro/internal/game"
	"repro/internal/rng"
)

// MLPoS is the multi-lottery Proof-of-Stake incentive model (Section 2.2),
// deployed by Qtum and Blackcoin.
//
// Miners retry a staking kernel at successive timestamps; the per-trial
// success probability is proportional to currently possessed stake, so the
// first success is a geometric race and — for the realistic regime where
// per-timestamp probabilities are small — the winner of each block is
// drawn with probability proportional to current stake. The block reward
// joins the winner's stake, making the process a classical Pólya urn: the
// reward fraction λ converges almost surely to Beta(a/w, b/w)
// (Section 4.3). ML-PoS is expectationally fair (Theorem 3.3) but needs
// 1/n + w ≤ 2a²ε²/ln(2/δ) for (ε,δ)-robust fairness (Theorem 4.3).
type MLPoS struct {
	// W is the block reward, in units of the (normalised) initial stake
	// circulation.
	W float64
}

// NewMLPoS returns the ML-PoS model with block reward w. It panics if
// w <= 0.
func NewMLPoS(w float64) MLPoS {
	validateReward("ML-PoS", w)
	return MLPoS{W: w}
}

// Name implements Protocol.
func (MLPoS) Name() string { return "ML-PoS" }

// Step draws the block winner proportionally to current stake and stakes
// the reward.
func (p MLPoS) Step(st *game.State, r *rng.Rand) {
	winner := r.Categorical(st.Stakes)
	st.Credit(winner, p.W, p.W)
	st.EndBlock()
}

// MLPoSKernel is the exact multi-lottery mechanism: every miner checks one
// kernel per timestamp with success probability PerStakeProb × stake, and
// the earliest success (ties split uniformly) proposes the block.
//
// MLPoS above is the small-probability limit of this model; MLPoSKernel
// keeps the timestamp race explicit so experiments can quantify the
// deviation when per-timestamp probabilities are not negligible (the
// p_A·p_B tie term in Section 2.2).
type MLPoSKernel struct {
	// W is the block reward.
	W float64
	// PerStakeProb is the per-timestamp kernel success probability of one
	// unit of stake; Qtum's target spacing makes stake-weighted values of
	// order 1/1200 per miner.
	PerStakeProb float64
}

// NewMLPoSKernel returns the explicit-timestamp ML-PoS model. It panics
// if w <= 0 or perStakeProb is not in (0, 1].
func NewMLPoSKernel(w, perStakeProb float64) MLPoSKernel {
	validateReward("ML-PoS kernel", w)
	if !(perStakeProb > 0 && perStakeProb <= 1) {
		panic("protocol: ML-PoS kernel needs perStakeProb in (0, 1]")
	}
	return MLPoSKernel{W: w, PerStakeProb: perStakeProb}
}

// Name implements Protocol.
func (MLPoSKernel) Name() string { return "ML-PoS-kernel" }

// Step plays the timestamp race: each miner's first-success timestamp is
// geometric in her stake-scaled probability; the earliest wins, with
// uniform tie-breaking (the 50% tie rule of Section 2.2 generalised to m
// miners).
func (p MLPoSKernel) Step(st *game.State, r *rng.Rand) {
	best := int64(-1)
	var winners []int
	for i, s := range st.Stakes {
		prob := p.PerStakeProb * s
		if prob <= 0 {
			continue
		}
		if prob > 1 {
			prob = 1
		}
		t := r.Geometric(prob)
		switch {
		case best == -1 || t < best:
			best = t
			winners = winners[:0]
			winners = append(winners, i)
		case t == best:
			winners = append(winners, i)
		}
	}
	if len(winners) == 0 {
		// No miner can ever succeed (all stakes zero); leave rewards
		// unchanged but still advance the clock.
		st.EndBlock()
		return
	}
	winner := winners[0]
	if len(winners) > 1 {
		winner = winners[r.Intn(len(winners))]
	}
	st.Credit(winner, p.W, p.W)
	st.EndBlock()
}
