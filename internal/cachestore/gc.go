package cachestore

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Size-capped GC: SetMaxBytes arms the store with a byte budget and Put
// prunes least-recently-used entries (atime order, modification time as
// the fallback on filesystems without usable atimes) whenever the budget
// is exceeded. Get bumps an entry's atime so hot results survive
// pruning even under relatime mounts. Without a budget the store keeps
// its historical grow-without-bound behaviour.

// staleTempAge is how old an orphaned .tmp- file must be before GC
// removes it: long enough that no live Put can still own it.
const staleTempAge = time.Hour

// SetMaxBytes arms (or, with n <= 0, disarms) the size cap, enforcing
// it immediately: a pre-existing store over the new budget is pruned
// right away, not only at the next write. From then on Put keeps the
// store within budget by evicting least-recently-used entries.
func (d *Dir) SetMaxBytes(n int64) {
	d.maxBytes.Store(n)
	if n > 0 {
		d.GC()
	}
}

// MaxBytes returns the configured byte budget (0 = unbounded).
func (d *Dir) MaxBytes() int64 { return d.maxBytes.Load() }

// gcEntry is one stored payload as seen by the collector.
type gcEntry struct {
	path string
	size int64
	used time.Time
}

// scan walks the store, returning entries plus the total payload bytes.
// Stale temp files are deleted along the way; fresh ones are skipped
// (a concurrent Put still owns them).
func (d *Dir) scan() (entries []gcEntry, total int64) {
	cutoff := time.Now().Add(-staleTempAge)
	filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return nil
		}
		fi, ierr := e.Info()
		if ierr != nil {
			return nil
		}
		if strings.HasPrefix(e.Name(), ".tmp-") {
			if fi.ModTime().Before(cutoff) {
				os.Remove(path)
			}
			return nil
		}
		entries = append(entries, gcEntry{path: path, size: fi.Size(), used: atime(fi)})
		total += fi.Size()
		return nil
	})
	return entries, total
}

// GC measures the store and, when a byte budget is set and exceeded,
// evicts least-recently-used entries down to the low-water mark (90% of
// the budget — the hysteresis that stops a store sitting at its cap
// from paying a full directory walk on every single write). It returns
// how many entries and bytes were removed. Concurrent Gets of an entry
// being evicted simply miss and recompute — eviction can never fail a
// sweep.
func (d *Dir) GC() (removed int, freed int64) {
	d.gcMu.Lock()
	defer d.gcMu.Unlock()
	return d.gcLocked()
}

// gcLocked is GC's body; callers hold gcMu.
func (d *Dir) gcLocked() (removed int, freed int64) {
	entries, total := d.scan()
	max := d.maxBytes.Load()
	if max > 0 && total > max {
		target := max - max/10 // low-water mark: free a slack band, not one entry
		sort.Slice(entries, func(i, j int) bool {
			if !entries[i].used.Equal(entries[j].used) {
				return entries[i].used.Before(entries[j].used)
			}
			return entries[i].path < entries[j].path
		})
		for _, e := range entries {
			if total <= target {
				break
			}
			if err := os.Remove(e.path); err != nil {
				continue
			}
			total -= e.size
			removed++
			freed += e.size
		}
	}
	d.sized.Store(true)
	d.approxBytes.Store(total)
	d.evictions.Add(int64(removed))
	d.evictedBytes.Add(freed)
	return removed, freed
}

// maybeGC is Put's hook: it keeps an approximate running byte total
// (seeded by one full scan the first time a budget matters) and triggers
// a collection once the total crosses the budget. TryLock keeps a
// stampede of writers down to one collector; the others' bytes are
// simply counted and swept up by the next collection.
func (d *Dir) maybeGC(wrote int64) {
	max := d.maxBytes.Load()
	if max <= 0 {
		return
	}
	if !d.sized.Load() {
		if !d.gcMu.TryLock() {
			return
		}
		defer d.gcMu.Unlock()
		_, total := d.scan()
		d.approxBytes.Store(total)
		d.sized.Store(true)
		return
	}
	if d.approxBytes.Add(wrote) > max && d.gcMu.TryLock() {
		defer d.gcMu.Unlock()
		d.gcLocked()
	}
}

// touch bumps an entry's used-time after a hit so LRU eviction sees
// through relatime mounts (and platforms whose collector orders by
// mtime). Best-effort: a raced eviction or permission error costs at
// worst one recomputation.
func (d *Dir) touch(path string) {
	if d.maxBytes.Load() <= 0 {
		return
	}
	if fi, err := os.Stat(path); err == nil {
		bumpUsed(path, fi)
	}
}
