package cachestore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestPutGetRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "montecarlo:abcdef0123456789"
	if _, ok, err := d.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if err := d.Put(key, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	data, ok, err := d.Get(key)
	if err != nil || !ok || string(data) != `{"x":1}` {
		t.Fatalf("get = %q ok=%v err=%v", data, ok, err)
	}
	// Overwrite replaces the payload.
	if err := d.Put(key, []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	if data, _, _ := d.Get(key); string(data) != `{"x":2}` {
		t.Errorf("overwrite lost: %q", data)
	}
	if d.Len() != 1 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestShardedLayout(t *testing.T) {
	root := t.TempDir()
	d, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("theory:cafe1234", []byte("v")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(root, "theory", "ca", "cafe1234")
	if _, err := os.Stat(want); err != nil {
		t.Errorf("expected sharded path %s: %v", want, err)
	}
}

func TestCrossInstanceReuse(t *testing.T) {
	// The cross-process story: a second store over the same directory sees
	// everything the first wrote.
	root := t.TempDir()
	a, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Put(fmt.Sprintf("mc:hash%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 5 {
		t.Fatalf("second instance sees %d entries, want 5", b.Len())
	}
	for i := 0; i < 5; i++ {
		data, ok, err := b.Get(fmt.Sprintf("mc:hash%02d", i))
		if err != nil || !ok || data[0] != byte(i) {
			t.Errorf("entry %d: %v %v %v", i, data, ok, err)
		}
	}
	keys := b.Keys()
	sort.Strings(keys)
	if len(keys) != 5 || keys[0] != "mc:hash00" || keys[4] != "mc:hash04" {
		t.Errorf("keys = %v", keys)
	}
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	// The store is byte-oriented, so "corruption" at this layer means an
	// unreadable file; it must report as a miss, not an error.
	root := t.TempDir()
	d, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("mc:deadbeef", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(root, "mc", "de", "deadbeef")
	if err := os.Chmod(p, 0); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(p, 0o644) })
	if os.Geteuid() != 0 { // root bypasses permission bits
		if _, ok, err := d.Get("mc:deadbeef"); ok || err != nil {
			t.Errorf("unreadable entry: ok=%v err=%v", ok, err)
		}
	}
}

func TestInvalidKeys(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a:", ":b", "../evil", "a/b", "a:..", "sp ace"} {
		if err := d.Put(key, []byte("v")); !errors.Is(err, ErrKey) {
			t.Errorf("Put(%q) err = %v, want ErrKey", key, err)
		}
		if _, _, err := d.Get(key); !errors.Is(err, ErrKey) {
			t.Errorf("Get(%q) err = %v, want ErrKey", key, err)
		}
	}
}

func TestDelete(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("mc:aa11", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("mc:aa11"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Get("mc:aa11"); ok {
		t.Error("entry survived delete")
	}
	if err := d.Delete("mc:aa11"); err != nil {
		t.Errorf("double delete: %v", err)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Put("mc:shared", []byte("the-one-true-payload"))
		}()
	}
	wg.Wait()
	data, ok, err := d.Get("mc:shared")
	if err != nil || !ok || string(data) != "the-one-true-payload" {
		t.Fatalf("converged entry: %q ok=%v err=%v", data, ok, err)
	}
	if d.Len() != 1 {
		t.Errorf("len = %d, want 1 (no leftover temp files)", d.Len())
	}
}

func TestCounters(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Get("mc:absent")
	d.Put("mc:present", []byte("v"))
	d.Get("mc:present")
	hits, misses, writes := d.Counters()
	if hits != 1 || misses != 1 || writes != 1 {
		t.Errorf("counters = %d/%d/%d", hits, misses, writes)
	}
}

func TestGCEvictsLeastRecentlyUsed(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	keys := []string{"mc:aaaa1", "mc:bbbb2", "mc:cccc3", "mc:dddd4"}
	for _, k := range keys {
		if err := d.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Stagger access times explicitly so the LRU order is unambiguous:
	// cccc3 oldest, then aaaa1, bbbb2, dddd4 newest.
	base := time.Now().Add(-time.Hour)
	for i, k := range []string{"mc:cccc3", "mc:aaaa1", "mc:bbbb2", "mc:dddd4"} {
		p, perr := d.path(k)
		if perr != nil {
			t.Fatal(perr)
		}
		at := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(p, at, at); err != nil {
			t.Fatal(err)
		}
	}
	// A 250-byte budget has a 225-byte low-water mark: the collection
	// must stop at two entries (200 bytes), evicting exactly the two
	// least recently used.
	d.maxBytes.Store(250) // arm without collecting, to exercise GC itself
	if removed, freed := d.GC(); removed != 2 || freed != 200 {
		t.Fatalf("GC removed %d entries / %d bytes, want 2 / 200", removed, freed)
	}
	for k, want := range map[string]bool{
		"mc:cccc3": false, "mc:aaaa1": false, "mc:bbbb2": true, "mc:dddd4": true,
	} {
		_, ok, err := d.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Errorf("after GC, %s present = %v, want %v", k, ok, want)
		}
	}
}

func TestPutEnforcesMaxBytes(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetMaxBytes(1000)
	payload := make([]byte, 100)
	for i := 0; i < 50; i++ {
		if err := d.Put(fmt.Sprintf("mc:key%04d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	d.GC() // settle the approximate counter into an exact measurement
	if n := d.Len(); n > 10 {
		t.Errorf("store holds %d entries over a 10-entry budget", n)
	}
	if got := d.approxBytes.Load(); got > 1000 {
		t.Errorf("payload bytes %d exceed the 1000-byte budget", got)
	}
}

func TestGetTouchKeepsHotEntriesAlive(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetMaxBytes(250)
	payload := make([]byte, 100)
	if err := d.Put("mc:hot000", payload); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("mc:cold00", payload); err != nil {
		t.Fatal(err)
	}
	// Age both entries, then touch the hot one through a read.
	old := time.Now().Add(-time.Hour)
	for _, k := range []string{"mc:hot000", "mc:cold00"} {
		p, _ := d.path(k)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := d.Get("mc:hot000"); !ok {
		t.Fatal("hot entry missing before GC")
	}
	// A third entry pushes the store over budget; the untouched cold
	// entry must be the one evicted.
	if err := d.Put("mc:new000", payload); err != nil {
		t.Fatal(err)
	}
	d.GC()
	if _, ok, _ := d.Get("mc:hot000"); !ok {
		t.Error("recently-read entry was evicted")
	}
	if _, ok, _ := d.Get("mc:cold00"); ok {
		t.Error("least-recently-used entry survived over the hot one")
	}
}

func TestGCUnboundedByDefault(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := d.Put(fmt.Sprintf("mc:key%04d", i), make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if removed, _ := d.GC(); removed != 0 {
		t.Errorf("GC evicted %d entries with no budget set", removed)
	}
	if n := d.Len(); n != 20 {
		t.Errorf("Len = %d, want 20", n)
	}
}

func TestGCRemovesStaleTempFiles(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("mc:aaaa1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(d.Root(), "mc", "aa", ".tmp-orphan")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	d.GC()
	if _, err := os.Stat(stale); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("stale temp file survived GC: %v", err)
	}
	if _, ok, _ := d.Get("mc:aaaa1"); !ok {
		t.Error("real entry lost during temp cleanup")
	}
}
