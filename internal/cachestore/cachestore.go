// Package cachestore is a content-addressed blob store on disk: the
// persistence layer of the sweep result cache. Keys are content hashes
// (optionally namespaced, "backend:hash"), values are opaque byte
// payloads; entries survive process restarts, so a second process pointed
// at the same directory answers warm for everything the first computed.
//
// Layout: `<dir>/<namespace>/<hh>/<hash>` where `hh` is the first two
// characters of the hash — a conventional fan-out that keeps directories
// small for large caches. Writes go through a temp file and an atomic
// rename, so readers never observe a torn entry and concurrent writers of
// the same key converge on one complete payload. Unreadable or missing
// entries report as absences, never as errors that could fail a sweep.
//
// The store can be size-capped: SetMaxBytes arms a byte budget and Put
// evicts least-recently-used entries (atime order) once it is exceeded —
// see gc.go. Without a budget the store grows without bound.
package cachestore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// ErrKey reports a key that cannot be mapped onto the disk layout.
var ErrKey = errors.New("cachestore: invalid key")

// Dir is a content-addressed blob store rooted at one directory. The zero
// value is unusable; construct with Open. Dir is safe for concurrent use
// by multiple goroutines and — thanks to atomic renames — by multiple
// processes sharing the directory.
type Dir struct {
	root string

	// Counters are telemetry handles so the store's stats have one
	// source of truth: detached (Open) or registered on a caller's
	// registry (OpenWithMetrics), Counters() and a /metrics scrape read
	// the very same atomics and can never disagree mid-run.
	hits         *telemetry.Counter
	misses       *telemetry.Counter
	writes       *telemetry.Counter
	evictions    *telemetry.Counter
	evictedBytes *telemetry.Counter

	// Size-capped GC state (see gc.go): the byte budget, an approximate
	// running payload total (exact after each collection), whether the
	// total has been seeded by a full scan, and the collector lock.
	maxBytes    atomic.Int64
	approxBytes atomic.Int64
	sized       atomic.Bool
	gcMu        sync.Mutex
}

// Open roots a store at dir, creating the directory if needed. Counters
// stay detached; use OpenWithMetrics to expose them on a registry.
func Open(dir string) (*Dir, error) { return OpenWithMetrics(dir, nil) }

// OpenWithMetrics roots a store at dir and registers its counters —
// fairness_cache_{hits,misses,writes,evictions,evicted_bytes}_total,
// labelled cache="disk" — on m. A nil registry leaves them detached
// (plain Open semantics).
func OpenWithMetrics(dir string, m *telemetry.Registry) (*Dir, error) {
	if dir == "" {
		return nil, fmt.Errorf("cachestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	return &Dir{
		root:         dir,
		hits:         m.Counter("fairness_cache_hits_total", "cache", "disk"),
		misses:       m.Counter("fairness_cache_misses_total", "cache", "disk"),
		writes:       m.Counter("fairness_cache_writes_total", "cache", "disk"),
		evictions:    m.Counter("fairness_cache_evictions_total", "cache", "disk"),
		evictedBytes: m.Counter("fairness_cache_evicted_bytes_total", "cache", "disk"),
	}, nil
}

// Root returns the store's root directory.
func (d *Dir) Root() string { return d.root }

// path maps a key onto the sharded layout. Keys are one or more
// path-safe segments joined by ':'; the last segment (the content hash)
// fans out over its first two characters.
func (d *Dir) path(key string) (string, error) {
	segs := strings.Split(key, ":")
	parts := make([]string, 0, len(segs)+1)
	for i, s := range segs {
		if s == "" || !pathSafe(s) {
			return "", fmt.Errorf("%w: %q", ErrKey, key)
		}
		if i == len(segs)-1 && len(s) > 2 {
			parts = append(parts, s[:2])
		}
		parts = append(parts, s)
	}
	return filepath.Join(append([]string{d.root}, parts...)...), nil
}

// pathSafe reports whether a key segment is a plain file-name atom:
// letters, digits, dot, dash, underscore — no separators, no traversal.
func pathSafe(s string) bool {
	if s == "." || s == ".." {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// Get returns the payload stored under key. A missing or unreadable
// entry reports ok = false; err is reserved for invalid keys.
func (d *Dir) Get(key string) (data []byte, ok bool, err error) {
	p, err := d.path(key)
	if err != nil {
		return nil, false, err
	}
	data, rerr := os.ReadFile(p)
	if rerr != nil {
		d.misses.Inc()
		return nil, false, nil
	}
	d.hits.Inc()
	d.touch(p)
	return data, true, nil
}

// Put stores payload under key, atomically: concurrent readers see either
// nothing or the complete payload, never a prefix.
func (d *Dir) Put(key string, payload []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("cachestore: %w", err)
	}
	d.writes.Inc()
	d.maybeGC(int64(len(payload)))
	return nil
}

// Delete removes the entry under key; deleting an absent key is a no-op.
func (d *Dir) Delete(key string) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cachestore: %w", err)
	}
	return nil
}

// Len walks the store and counts entries. It is a maintenance/stats
// operation, not a hot-path one.
func (d *Dir) Len() int {
	n := 0
	filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if !e.IsDir() && !strings.HasPrefix(e.Name(), ".tmp-") {
			n++
		}
		return nil
	})
	return n
}

// Keys walks the store and returns every stored key, reconstructed from
// the sharded layout. Order is directory-walk order.
func (d *Dir) Keys() []string {
	var keys []string
	filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			return nil
		}
		rel, rerr := filepath.Rel(d.root, path)
		if rerr != nil {
			return nil
		}
		segs := strings.Split(filepath.ToSlash(rel), "/")
		// Drop the two-character fan-out directory preceding the hash.
		if len(segs) >= 2 && segs[len(segs)-2] == e.Name()[:min(2, len(e.Name()))] {
			segs = append(segs[:len(segs)-2], segs[len(segs)-1])
		}
		keys = append(keys, strings.Join(segs, ":"))
		return nil
	})
	return keys
}

// Counters returns cumulative hit, miss and write counts for this store
// instance (not persisted across processes).
func (d *Dir) Counters() (hits, misses, writes uint64) {
	return uint64(d.hits.Value()), uint64(d.misses.Value()), uint64(d.writes.Value())
}

// EvictionCounters returns cumulative GC eviction counts for this store
// instance: entries removed and payload bytes freed.
func (d *Dir) EvictionCounters() (evictions, bytes uint64) {
	return uint64(d.evictions.Value()), uint64(d.evictedBytes.Value())
}
