//go:build !linux

package cachestore

import (
	"io/fs"
	"os"
	"time"
)

// atime falls back to the modification time where the platform's stat
// shape isn't wired up; bumpUsed below keeps it meaningful as an LRU key.
func atime(fi fs.FileInfo) time.Time { return fi.ModTime() }

// bumpUsed marks an entry as just-used. The collector on this platform
// orders by ModTime, so the bump must move mtime too — preserving it
// (as the Linux variant does) would make reads invisible to eviction.
func bumpUsed(path string, _ fs.FileInfo) {
	now := time.Now()
	os.Chtimes(path, now, now)
}
