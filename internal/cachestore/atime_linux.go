//go:build linux

package cachestore

import (
	"io/fs"
	"os"
	"syscall"
	"time"
)

// atime returns the file's access time — the LRU ordering key of the
// size-capped GC. Get bumps it explicitly (see bumpUsed), so eviction
// order tracks real cache usage even on relatime/noatime mounts.
func atime(fi fs.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}

// bumpUsed marks an entry as just-used: atime moves to now, mtime is
// preserved (atime is what the collector orders by here).
func bumpUsed(path string, fi fs.FileInfo) {
	os.Chtimes(path, time.Now(), fi.ModTime())
}
