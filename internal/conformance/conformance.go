// Package conformance is the cross-backend contract of the scenario
// vocabulary: a canonical corpus of honest and adversarial scenarios,
// statistical-parity checks between the sampling backends (Monte-Carlo
// and chainsim), directional expectations from the theory (selfish
// mining gains above the Eyal–Sirer threshold and reverts to honest
// below it; fork races favour large miners), and exact capability-error
// assertions for features a backend refuses.
//
// The suite is one artifact reused three ways: the package's unit tests
// run it under `go test` (and `-race` in CI), `fairsweep conform` runs
// it from the command line and prints the parity summary, and the CI
// attack-smoke job diffs that summary across backends. Growing the
// scenario vocabulary means growing the corpus here, so a backend can
// never silently diverge on a scenario class the others answer.
package conformance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/table"
)

// Case is one corpus scenario with its cross-backend tolerances and
// directional expectations.
type Case struct {
	// Name labels the case in reports.
	Name string
	// Spec is the scenario, shared verbatim by every backend.
	Spec scenario.Spec
	// MeanTol is the allowed |Δ mean λ| between the two sampling
	// backends (sampling noise plus documented model discrepancies).
	MeanTol float64
	// SkewAbove, when > 0, asserts that BOTH backends report
	// mean λ ≥ share + SkewAbove — the rich-get-richer / attacker-gain
	// direction.
	SkewAbove float64
	// SkewBelow, when > 0, asserts that BOTH backends report
	// mean λ ≤ share − SkewBelow — the self-harming-deviation direction
	// (a committed attacker below its profitability region, or a
	// withholder starving its own compounding).
	SkewBelow float64
	// NearShare, when > 0, asserts that BOTH backends report
	// |mean λ − share| ≤ NearShare — honest-equilibrium scenarios.
	NearShare float64
}

// Corpus returns the canonical conformance corpus: HonestCorpus plus
// AdversarialCorpus.
func Corpus() []Case {
	return append(HonestCorpus(), AdversarialCorpus()...)
}

// HonestCorpus returns the honest-execution baseline cases.
func HonestCorpus() []Case {
	return []Case{
		{
			Name: "honest/pow-baseline",
			Spec: scenario.Spec{
				Protocol: "pow", Stake: 0.3, Miners: 4,
				Blocks: 1200, Trials: 40, Seed: 101,
			},
			MeanTol:   0.015,
			NearShare: 0.02,
		},
	}
}

// AdversarialCorpus returns the fork- and attack-aware cases: one per
// registered deviating strategy (selfish, selfish-delay, withhold) plus
// the honest-over-forking-network case, each with its skew direction.
func AdversarialCorpus() []Case {
	return []Case{
		{
			// 40% attacker, γ=0: above the 1/3 threshold, where the
			// abstract machine and the block-level simulation agree
			// exactly in expectation (no honest miner ever backs the
			// attacker's race block).
			Name: "selfish/above-threshold-gamma0",
			Spec: scenario.Spec{
				Protocol: "pow", Stake: 0.4, Miners: 5,
				Blocks: 1500, Trials: 40, Seed: 211,
				Adversary: &scenario.Adversary{Strategy: "selfish", Gamma: 0},
			},
			MeanTol:   0.025,
			SkewAbove: 0.04, // closed-form excess revenue is ≈ 0.084
		},
		{
			// 30% attacker, γ=0.5: above the 0.25 threshold. The
			// block-level γ is realised per honest miner with the race
			// producer always backing its own block, so the effective
			// advantage is slightly below γ — covered by MeanTol.
			Name: "selfish/above-threshold-gamma05",
			Spec: scenario.Spec{
				Protocol: "pow", Stake: 0.3, Miners: 8,
				Blocks: 1500, Trials: 40, Seed: 223,
				Adversary: &scenario.Adversary{Strategy: "selfish", Gamma: 0.5},
			},
			MeanTol:   0.03,
			SkewAbove: 0.005, // closed-form excess is ≈ 0.027 (≈ 0.019 block-level)
		},
		{
			// 20% attacker, γ=0: below the threshold the rational
			// attacker mines honestly and earns exactly its power share.
			Name: "selfish/below-threshold-honest",
			Spec: scenario.Spec{
				Protocol: "pow", Stake: 0.2, Miners: 3,
				Blocks: 800, Trials: 40, Seed: 227,
				Adversary: &scenario.Adversary{Strategy: "selfish", Gamma: 0},
			},
			MeanTol:   0.02,
			NearShare: 0.02,
		},
		{
			// Committed delay-capped selfish mining at γ=0: the lead-2 cap
			// forfeits the long private chains classic selfish mining
			// profits from, so the committed 40% attacker earns LESS than
			// its share — the strategy's signature skew, which both
			// backends must reproduce from their very different machines.
			Name: "selfish-delay/capped-lead-self-harm",
			Spec: scenario.Spec{
				Protocol: "pow", Stake: 0.4, Miners: 5,
				Blocks: 1500, Trials: 40, Seed: 307,
				Adversary: &scenario.Adversary{Strategy: "selfish-delay", Gamma: 0, Delay: 2},
			},
			MeanTol:   0.02,
			SkewBelow: 0.02, // observed mean ≈ 0.365 vs share 0.4
		},
		{
			// Delay-capped selfish mining turns profitable once γ gives
			// the attacker half the race ties: at γ=0.5, d=3 the committed
			// attacker clears its share on both backends.
			Name: "selfish-delay/gamma05-profitable",
			Spec: scenario.Spec{
				Protocol: "pow", Stake: 0.4, Miners: 5,
				Blocks: 1500, Trials: 40, Seed: 311,
				Adversary: &scenario.Adversary{Strategy: "selfish-delay", Gamma: 0.5, Delay: 3},
			},
			MeanTol:   0.03, // block-level γ realisation sits slightly under the abstract machine's
			SkewAbove: 0.01, // observed means ≈ 0.446 (mc) / 0.424 (chainsim)
		},
		{
			// PoS reward withholding: a compounding-PoS staker that never
			// restakes its rewards freezes its own resource while the
			// honest miners compound, so its reward share collapses far
			// below its initial stake — on the abstract per-epoch machine
			// and the block-level engine alike.
			Name: "withhold/never-restake",
			Spec: scenario.Spec{
				Protocol: "mlpos", W: 0.01, Stake: 0.3, Miners: 4,
				Blocks: 1000, Trials: 40, Seed: 313,
				Adversary: &scenario.Adversary{Strategy: "withhold", Every: 0},
			},
			MeanTol:   0.02,
			SkewBelow: 0.15, // observed mean ≈ 0.08 vs share 0.3
		},
		{
			// Periodic restaking recovers part of the compounding: every
			// 200 blocks is enough to double the never-restake mean but
			// still far below honest play.
			Name: "withhold/restake-every-200",
			Spec: scenario.Spec{
				Protocol: "mlpos", W: 0.01, Stake: 0.3, Miners: 4,
				Blocks: 1000, Trials: 40, Seed: 317,
				Adversary: &scenario.Adversary{Strategy: "withhold", Every: 200},
			},
			MeanTol:   0.02,
			SkewBelow: 0.08, // observed mean ≈ 0.18 vs share 0.3
		},
		{
			// Honest miners over a forking network: the 60% whale's
			// canonical share must exceed its power share (Sakurai–Shudo
			// fork skew), and both backends implement the same race
			// model, so parity is tight.
			Name: "fork/whale-rich-get-richer",
			Spec: scenario.Spec{
				Protocol: "pow", Stakes: []float64{0.6, 0.2, 0.1, 0.1},
				Blocks: 1500, Trials: 40, Seed: 229,
				Network: &scenario.Network{ForkRate: 0.8},
			},
			MeanTol:   0.02,
			SkewAbove: 0.015, // closed-form effective power is ≈ 0.634
		},
	}
}

// DefaultBackends returns the canonical sampling pair the suite
// compares: the reference Monte-Carlo backend and the block-level
// chainsim backend at a coarse PoW target (≈16 hashes per miner per
// block — the digest-interpolated race times keep winner selection
// power-exact, so coarseness costs accuracy nothing and keeps the suite
// fast enough for CI).
func DefaultBackends() (a, b sweep.Evaluator) {
	return &sweep.MonteCarloEvaluator{}, &sweep.ChainSimEvaluator{PoWTarget: 1 << 60}
}

// CaseResult is one case's cross-backend outcome.
type CaseResult struct {
	Name string `json:"name"`
	// Share is the tracked miner's resource share a.
	Share float64 `json:"share"`
	// MeanA and MeanB are the two backends' mean λ.
	MeanA float64 `json:"mean_a"`
	MeanB float64 `json:"mean_b"`
	// Delta is |MeanA − MeanB|.
	Delta float64 `json:"delta"`
	// Failures lists every violated assertion, empty when the case
	// conforms.
	Failures []string `json:"failures,omitempty"`
}

// Report aggregates one conformance run.
type Report struct {
	BackendA string       `json:"backend_a"`
	BackendB string       `json:"backend_b"`
	Results  []CaseResult `json:"results"`
	// CapabilityFailures lists violated capability-error contracts.
	CapabilityFailures []string `json:"capability_failures,omitempty"`
}

// Failures counts every violated assertion across the run.
func (r *Report) Failures() int {
	n := len(r.CapabilityFailures)
	for _, c := range r.Results {
		n += len(c.Failures)
	}
	return n
}

// Summary renders the parity table plus any failures — the artifact the
// CI attack-smoke job diffs. It is deterministic: no timing, no
// ordering dependence beyond the corpus order.
func (r *Report) Summary() string {
	var b strings.Builder
	tb := table.New("Case", "a", r.BackendA, r.BackendB, "Delta", "Status").
		AlignAll(table.Right).SetAlign(0, table.Left)
	for _, c := range r.Results {
		status := "ok"
		if len(c.Failures) > 0 {
			status = "FAIL"
		}
		tb.AddRow(c.Name,
			fmt.Sprintf("%.3f", c.Share),
			fmt.Sprintf("%.4f", c.MeanA),
			fmt.Sprintf("%.4f", c.MeanB),
			fmt.Sprintf("%.4f", c.Delta),
			status)
	}
	b.WriteString(tb.String())
	for _, c := range r.Results {
		for _, f := range c.Failures {
			fmt.Fprintf(&b, "\nFAIL %s: %s", c.Name, f)
		}
	}
	for _, f := range r.CapabilityFailures {
		fmt.Fprintf(&b, "\nFAIL capability: %s", f)
	}
	fmt.Fprintf(&b, "\n%d cases, %d failures\n", len(r.Results), r.Failures())
	return b.String()
}

// Run evaluates every case on both backends, checks parity and
// directional expectations, and verifies the capability-error contract.
// It returns an error only for infrastructure problems (cancellation,
// an evaluation that should have succeeded failing); conformance
// violations are reported in the Report.
func Run(ctx context.Context, a, b sweep.Evaluator, cases []Case) (*Report, error) {
	rep := &Report{BackendA: a.Name(), BackendB: b.Name()}
	for _, c := range cases {
		if err := c.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("conformance: case %s: %w", c.Name, err)
		}
		n := c.Spec.Normalized()
		evA, err := a.Evaluate(ctx, n)
		if err != nil {
			return nil, fmt.Errorf("conformance: case %s on %s: %w", c.Name, a.Name(), err)
		}
		evB, err := b.Evaluate(ctx, n)
		if err != nil {
			return nil, fmt.Errorf("conformance: case %s on %s: %w", c.Name, b.Name(), err)
		}
		res := CaseResult{
			Name:  c.Name,
			Share: c.Spec.TrackedShare(),
			MeanA: evA.Verdict.MeanLambda,
			MeanB: evB.Verdict.MeanLambda,
			Delta: math.Abs(evA.Verdict.MeanLambda - evB.Verdict.MeanLambda),
		}
		if res.Delta > c.MeanTol {
			res.Failures = append(res.Failures,
				fmt.Sprintf("parity: |%.4f - %.4f| = %.4f > tolerance %.4f", res.MeanA, res.MeanB, res.Delta, c.MeanTol))
		}
		for _, m := range []struct {
			backend string
			mean    float64
		}{{a.Name(), res.MeanA}, {b.Name(), res.MeanB}} {
			if c.SkewAbove > 0 && m.mean < res.Share+c.SkewAbove {
				res.Failures = append(res.Failures,
					fmt.Sprintf("skew: %s mean %.4f below share %.4f + margin %.4f", m.backend, m.mean, res.Share, c.SkewAbove))
			}
			if c.SkewBelow > 0 && m.mean > res.Share-c.SkewBelow {
				res.Failures = append(res.Failures,
					fmt.Sprintf("skew: %s mean %.4f above share %.4f - margin %.4f", m.backend, m.mean, res.Share, c.SkewBelow))
			}
			if c.NearShare > 0 && math.Abs(m.mean-res.Share) > c.NearShare {
				res.Failures = append(res.Failures,
					fmt.Sprintf("near-share: %s mean %.4f off share %.4f by more than %.4f", m.backend, m.mean, res.Share, c.NearShare))
			}
		}
		rep.Results = append(rep.Results, res)
	}
	rep.CapabilityFailures = CheckCapabilities(ctx)
	return rep, nil
}

// CheckCapabilities verifies the capability-error contract on canonical
// out-of-coverage probes: the theory backend must refuse every
// adversarial corpus scenario with a typed *sweep.CapabilityError
// naming the exact uncovered feature, the chainsim backend must refuse
// protocols it has no engine for, and declared Capabilities must match
// refusal behaviour. Returns one description per violation.
func CheckCapabilities(ctx context.Context) []string {
	var fails []string
	theory := &sweep.TheoryEvaluator{}
	for _, c := range AdversarialCorpus() {
		n := c.Spec.Normalized()
		want := "adversary"
		if n.Adversary == nil {
			want = "network"
		}
		fails = append(fails, checkCapabilityError(ctx, theory, n, want)...)
	}
	chainsim := &sweep.ChainSimEvaluator{}
	neo := scenario.Spec{Protocol: "neo", Stake: 0.2, Blocks: 10, Trials: 2}
	fails = append(fails, checkCapabilityError(ctx, chainsim, neo.Normalized(), "protocol")...)
	// Declared capabilities must agree with behaviour: a backend that
	// declares a feature covered must not refuse it, and vice versa.
	for _, ev := range []sweep.Evaluator{theory, chainsim, &sweep.MonteCarloEvaluator{}} {
		caps := sweep.CapabilityOf(ev)
		if caps.Backend != ev.Name() {
			fails = append(fails, fmt.Sprintf("%s declares capabilities under name %q", ev.Name(), caps.Backend))
		}
		adv := AdversarialCorpus()[0].Spec.Normalized()
		err := caps.Check(adv)
		if caps.Adversary && err != nil {
			fails = append(fails, fmt.Sprintf("%s declares adversary coverage but Check refuses: %v", ev.Name(), err))
		}
		if !caps.Adversary && err == nil {
			fails = append(fails, fmt.Sprintf("%s declares no adversary coverage but Check accepts", ev.Name()))
		}
	}
	// Adversary-covering backends must declare the full registered
	// strategy set — the attack registry is the single source of strategy
	// truth, and a backend that silently drops one would turn its
	// scenarios into capability errors only at evaluation time.
	for _, ev := range []sweep.Evaluator{chainsim, &sweep.MonteCarloEvaluator{}} {
		caps := sweep.CapabilityOf(ev)
		declared := map[string]bool{}
		for _, s := range caps.Strategies {
			declared[s] = true
		}
		for _, name := range scenario.StrategyNames() {
			if !declared[name] {
				fails = append(fails, fmt.Sprintf("%s does not declare registered strategy %q", ev.Name(), name))
			}
		}
	}
	return fails
}

// checkCapabilityError asserts that ev refuses the spec with a typed
// capability error naming the expected feature.
func checkCapabilityError(ctx context.Context, ev sweep.Evaluator, n scenario.Spec, feature string) []string {
	_, err := ev.Evaluate(ctx, n)
	if err == nil {
		return []string{fmt.Sprintf("%s accepted an uncovered spec (%s): %s", ev.Name(), feature, n.String())}
	}
	if !errors.Is(err, sweep.ErrBackend) {
		return []string{fmt.Sprintf("%s refusal does not unwrap to ErrBackend: %v", ev.Name(), err)}
	}
	var capErr *sweep.CapabilityError
	if !errors.As(err, &capErr) {
		return []string{fmt.Sprintf("%s refusal is not a *CapabilityError: %v", ev.Name(), err)}
	}
	var fails []string
	if capErr.Backend != ev.Name() {
		fails = append(fails, fmt.Sprintf("%s refusal names backend %q", ev.Name(), capErr.Backend))
	}
	if capErr.Feature != feature {
		fails = append(fails, fmt.Sprintf("%s refusal names feature %q, want %q", ev.Name(), capErr.Feature, feature))
	}
	return fails
}
