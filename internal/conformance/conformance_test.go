package conformance

import (
	"context"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

func TestCorpusConformsAcrossSamplingBackends(t *testing.T) {
	// The acceptance gate of the adversarial scenario vocabulary:
	// montecarlo and chainsim must agree on every corpus case, selfish
	// mining must reproduce the known skew direction on both, and the
	// theory backend must refuse adversarial specs with exact typed
	// errors.
	a, b := DefaultBackends()
	rep, err := Run(context.Background(), a, b, Corpus())
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Failures(); n != 0 {
		t.Errorf("%d conformance failures:\n%s", n, rep.Summary())
	}
	if len(rep.Results) != len(Corpus()) {
		t.Errorf("ran %d cases, corpus has %d", len(rep.Results), len(Corpus()))
	}
}

func TestCorpusSpecsAreValidAndDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, c := range Corpus() {
		if err := c.Spec.Validate(); err != nil {
			t.Errorf("case %s invalid: %v", c.Name, err)
		}
		h, err := c.Spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("cases %s and %s share a content hash", prev, c.Name)
		}
		seen[h] = c.Name
		if c.MeanTol <= 0 {
			t.Errorf("case %s has no parity tolerance", c.Name)
		}
		if c.SkewAbove > 0 && c.NearShare > 0 {
			t.Errorf("case %s asserts both skew and near-share", c.Name)
		}
		if c.SkewAbove > 0 && c.SkewBelow > 0 {
			t.Errorf("case %s asserts skew in both directions", c.Name)
		}
		if c.SkewBelow > 0 && c.NearShare > 0 {
			t.Errorf("case %s asserts both below-skew and near-share", c.Name)
		}
	}
}

func TestAdversarialCorpusReachableThroughSweepRunner(t *testing.T) {
	// The corpus must flow through the ordinary sweep pipeline (the path
	// fairsweep/fairnessd/fairctl take), not just direct Evaluate calls.
	specs := make([]scenario.Spec, 0, len(AdversarialCorpus()))
	for _, c := range AdversarialCorpus() {
		s := c.Spec
		s.Name = c.Name
		s.Trials, s.Blocks = 4, 200 // smoke scale
		specs = append(specs, s)
	}
	rep, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range rep.Outcomes {
		if o.Backend != "montecarlo" || o.Hash == "" {
			t.Errorf("outcome %d: %+v", i, o)
		}
	}
}

func TestCheckCapabilitiesCatchesContractViolations(t *testing.T) {
	if fails := CheckCapabilities(context.Background()); len(fails) != 0 {
		t.Errorf("capability contract violated:\n%s", strings.Join(fails, "\n"))
	}
}

func TestSummaryIsDeterministic(t *testing.T) {
	a, b := DefaultBackends()
	r1, err := Run(context.Background(), a, b, HonestCorpus())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), a, b, HonestCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary() != r2.Summary() {
		t.Error("conformance summary not deterministic")
	}
	if !strings.Contains(r1.Summary(), "honest/pow-baseline") {
		t.Errorf("summary missing case name:\n%s", r1.Summary())
	}
}
