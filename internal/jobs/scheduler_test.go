package jobs

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// saturate keeps every tenant's demand pending — one goroutine per
// tenant re-acquires the moment its grant is handed to the main
// goroutine, which counts and releases grants one at a time. This is
// the "under saturation" regime the fairness property quantifies over:
// with all tenants always pending, each release forces the scheduler
// to pick among them.
func saturate(t *testing.T, s *Scheduler, tenants []string, priorities map[string]int,
	total int64) map[string]int64 {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type grantRec struct {
		tenant  string
		n       int
		release func()
	}
	grants := make(chan grantRec)
	var wg sync.WaitGroup
	for _, tenant := range tenants {
		gate := s.Gate(tenant, "job-"+tenant, priorities[tenant], time.Time{})
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for {
				n, release, err := gate.Acquire(ctx, 1)
				if err != nil {
					return
				}
				select {
				case grants <- grantRec{tenant, n, release}:
				case <-ctx.Done():
					release()
					return
				}
			}
		}(tenant)
	}
	counts := make(map[string]int64, len(tenants))
	var granted int64
	for granted < total {
		rec := <-grants
		counts[rec.tenant] += int64(rec.n)
		granted += int64(rec.n)
		// Let the just-granted tenant re-enter the pending set before
		// releasing, so the next pick is a genuinely contested one.
		for range 4 {
			runtime.Gosched()
		}
		rec.release()
	}
	cancel()
	wg.Wait()
	return counts
}

// TestSchedulerConvergesToWeights is the fair-share property test: under
// saturation (every tenant always has a pending request), long-run
// scenario allocations converge to the configured weight vector.
func TestSchedulerConvergesToWeights(t *testing.T) {
	cases := []map[string]float64{
		{"a": 1, "b": 1},
		{"a": 1, "b": 3},
		{"a": 2, "b": 5},
		{"a": 1, "b": 2, "c": 4},
		{"a": 1, "b": 1, "c": 1, "d": 1},
	}
	const total = 4000
	for i, weights := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			s := NewScheduler(nil, nil, nil) // capacity 1: strict interleaving
			tenants := make([]string, 0, len(weights))
			sum := 0.0
			for tenant, w := range weights {
				s.SetTenant(tenant, w, 0)
				tenants = append(tenants, tenant)
				sum += w
			}
			counts := saturate(t, s, tenants, nil, total)
			var got int64
			for _, c := range counts {
				got += c
			}
			for tenant, w := range weights {
				share := float64(counts[tenant]) / float64(got)
				want := w / sum
				if share < want-0.1 || share > want+0.1 {
					t.Errorf("tenant %s: share %.3f, want %.3f ± 0.1 (counts %v)",
						tenant, share, want, counts)
				}
			}
		})
	}
}

// TestSchedulerEqualTenantsWithin10Percent pins the acceptance
// criterion directly: two equal-weight tenants under saturation each
// take 50% ± 10% of dispatches.
func TestSchedulerEqualTenantsWithin10Percent(t *testing.T) {
	s := NewScheduler(nil, telemetry.NewRegistry(), nil)
	s.SetTenant("a", 1, 0)
	s.SetTenant("b", 1, 0)
	counts := saturate(t, s, []string{"a", "b"}, nil, 2000)
	total := counts["a"] + counts["b"]
	for _, tenant := range []string{"a", "b"} {
		share := float64(counts[tenant]) / float64(total)
		if share < 0.4 || share > 0.6 {
			t.Errorf("tenant %s: dispatch share %.3f outside 50%% ± 10%% (counts %v)",
				tenant, share, counts)
		}
	}
}

// TestSchedulerPriorityBoost checks that priority steps double the
// effective weight: priority +2 against 0 at equal tenant weight should
// settle near a 4:1 split.
func TestSchedulerPriorityBoost(t *testing.T) {
	s := NewScheduler(nil, nil, nil)
	s.SetTenant("hi", 1, 0)
	s.SetTenant("lo", 1, 0)
	counts := saturate(t, s, []string{"hi", "lo"}, map[string]int{"hi": 2}, 3000)
	total := counts["hi"] + counts["lo"]
	share := float64(counts["hi"]) / float64(total)
	if share < 0.7 || share > 0.9 {
		t.Errorf("priority +2 share %.3f, want 0.8 ± 0.1 (counts %v)", share, counts)
	}
}

// TestSchedulerStarvationBound is the starvation regression: a tiny
// job arriving while a huge job has already monopolized the scheduler
// for a long stretch must be served within a couple of grants — stride
// scheduling admits latecomers at the current virtual time, it does
// not make them pay down the incumbent's history.
func TestSchedulerStarvationBound(t *testing.T) {
	s := NewScheduler(nil, nil, nil)
	s.SetTenant("huge", 1, 0)
	s.SetTenant("tiny", 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The huge job: one always-pending request, grants handed to this
	// goroutine for release (the saturate executor pattern).
	bigGate := s.Gate("huge", "huge-job", 0, time.Time{})
	bigReleases := make(chan func())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			_, release, err := bigGate.Acquire(ctx, 1)
			if err != nil {
				return
			}
			select {
			case bigReleases <- release:
			case <-ctx.Done():
				release()
				return
			}
		}
	}()

	// 200 uncontested huge-job grants: a long dispatch history.
	for range 200 {
		(<-bigReleases)()
	}

	// Hold the next huge grant so the scheduler is busy when the tiny
	// job arrives, then wait until the tiny request is actually pending.
	held := <-bigReleases
	tinyGate := s.Gate("tiny", "tiny-job", 0, time.Time{})
	tinyGranted := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, release, err := tinyGate.Acquire(ctx, 1)
		if err != nil {
			return
		}
		close(tinyGranted)
		release()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		pending := false
		for _, r := range s.pending {
			pending = pending || r.tenant.name == "tiny"
		}
		s.mu.Unlock()
		if pending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tiny request never reached the pending set")
		}
		runtime.Gosched()
	}

	// From here every grant is contested. The tiny job must win within
	// a strict bound, despite the 200-grant head start.
	held()
	waited := 0
	for {
		select {
		case <-tinyGranted:
		case release := <-bigReleases:
			waited++
			if waited > 3 {
				t.Fatalf("tiny job still waiting after %d huge-job grants", waited)
			}
			release()
			continue
		}
		break
	}
	cancel()
	wg.Wait()
}

// TestSchedulerInflightQuotaClamps checks the per-tenant in-flight
// scenario quota: grants clamp to the remaining headroom and further
// requests block until a release.
func TestSchedulerInflightQuotaClamps(t *testing.T) {
	s := NewScheduler(func() int { return 100 }, nil, nil)
	s.SetTenant("q", 1, 3)
	gate := s.Gate("q", "job", 0, time.Time{})
	ctx := context.Background()

	n1, release1, err := gate.Acquire(ctx, 2)
	if err != nil || n1 != 2 {
		t.Fatalf("first acquire: n=%d err=%v, want 2", n1, err)
	}
	n2, release2, err := gate.Acquire(ctx, 5)
	if err != nil || n2 != 1 {
		t.Fatalf("second acquire: n=%d err=%v, want clamp to 1", n2, err)
	}

	// Quota exhausted: the next acquire must block until a release.
	blockedCtx, cancelBlocked := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancelBlocked()
	if n, _, err := gate.Acquire(blockedCtx, 1); err == nil {
		t.Fatalf("acquire beyond quota granted %d, want block", n)
	}
	release1()
	n3, release3, err := gate.Acquire(ctx, 5)
	if err != nil || n3 != 2 {
		t.Fatalf("post-release acquire: n=%d err=%v, want 2", n3, err)
	}
	release2()
	release3()
}

// TestSchedulerAcquireCancelRace: a context cancelled around grant time
// must neither leak the grant nor deadlock later acquires.
func TestSchedulerAcquireCancelRace(t *testing.T) {
	s := NewScheduler(nil, nil, nil)
	s.SetTenant("r", 1, 0)
	gate := s.Gate("r", "job", 0, time.Time{})
	for range 200 {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, release, err := gate.Acquire(ctx, 1); err == nil {
				release()
			}
		}()
		cancel()
		<-done
	}
	// The scheduler must still serve cleanly after all those races.
	n, release, err := gate.Acquire(context.Background(), 1)
	if err != nil || n != 1 {
		t.Fatalf("post-race acquire: n=%d err=%v", n, err)
	}
	release()
}
