package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// jobSpecs expands a small grid with a given seed so different jobs can
// carry disjoint work (distinct hashes, no cross-job cache collisions).
func jobSpecs(t *testing.T, seed uint64, protocols ...string) []scenario.Spec {
	t.Helper()
	if len(protocols) == 0 {
		protocols = []string{"pow", "mlpos"}
	}
	g := scenario.Grid{
		Base:      scenario.Spec{Blocks: 120, Trials: 10, Seed: seed},
		Protocols: protocols,
		Stake:     []float64{0.2, 0.3, 0.4},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// canonical strips where/when fields, leaving what must be
// bit-identical between any two executions of the same specs.
func canonical(t *testing.T, outs []sweep.Outcome) string {
	t.Helper()
	c := make([]sweep.Outcome, len(outs))
	copy(c, outs)
	for i := range c {
		c[i].ElapsedMS = 0
		c[i].CacheHit = false
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func waitState(t *testing.T, m *Manager, id string, want JobState) JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return info
		}
		if info.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, info.State, info.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, info.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestManagerLocalJobMatchesLocalSweep(t *testing.T) {
	specs := jobSpecs(t, 1)
	local, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Runner: LocalRunner(sweep.Options{}, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	info, err := m.Submit(SubmitRequest{Name: "demo", Tenant: "acme", Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateQueued || info.ID == "" || info.Scenarios != len(specs) {
		t.Fatalf("submit snapshot: %+v", info)
	}
	done := waitState(t, m, info.ID, StateDone)
	if done.Stats.Scenarios != len(specs) {
		t.Errorf("stats: %+v", done.Stats)
	}

	// Paginated retrieval must walk the full outcome list in order.
	var outs []sweep.Outcome
	token := ""
	pages := 0
	for {
		page, err := m.Results(info.ID, token, 4)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, page.Outcomes...)
		pages++
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if pages < 2 {
		t.Errorf("page size 4 over %d outcomes produced %d pages", len(specs), pages)
	}
	if got, want := canonical(t, outs), canonical(t, local.Outcomes); got != want {
		t.Errorf("job outcomes differ from local sweep:\n%s\n%s", got, want)
	}
}

func TestManagerResultsBeforeFinishAndBadToken(t *testing.T) {
	block := make(chan struct{})
	m, err := NewManager(Config{Runner: func(ctx context.Context, specs []scenario.Spec,
		gate cluster.DispatchGate, cache sweep.CacheStore) (*sweep.Report, error) {
		select {
		case <-block:
			return &sweep.Report{}, nil
		case <-ctx.Done():
			return &sweep.Report{Partial: true}, ctx.Err()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	info, err := m.Submit(SubmitRequest{Specs: jobSpecs(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Results(info.ID, "", 0); !errors.Is(err, ErrNotFinished) {
		t.Errorf("results on live job: err = %v, want ErrNotFinished", err)
	}
	close(block)
	waitState(t, m, info.ID, StateDone)
	if _, err := m.Results(info.ID, "not-a-token", 0); !errors.Is(err, ErrPageToken) {
		t.Errorf("bad token: err = %v, want ErrPageToken", err)
	}
	if _, err := m.Results("j-999999", "", 0); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job: err = %v, want ErrUnknownJob", err)
	}
}

func TestManagerCancelPreservesPartialReport(t *testing.T) {
	started := make(chan struct{})
	m, err := NewManager(Config{Runner: func(ctx context.Context, specs []scenario.Spec,
		gate cluster.DispatchGate, cache sweep.CacheStore) (*sweep.Report, error) {
		close(started)
		<-ctx.Done()
		// Mid-run cancellation: hand back what completed, like
		// cluster.Run and sweep.RunContext do.
		return &sweep.Report{
			Outcomes: []sweep.Outcome{{Name: specs[0].Name, Hash: "deadbeef"}},
			Partial:  true,
		}, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	info, err := m.Submit(SubmitRequest{Tenant: "acme", Specs: jobSpecs(t, 3)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(info.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, info.ID, StateCancelled)
	if !fin.Partial {
		t.Error("cancelled job not marked partial")
	}
	page, err := m.Results(info.ID, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Outcomes) != 1 || page.Outcomes[0].Hash != "deadbeef" {
		t.Errorf("partial outcomes lost: %+v", page.Outcomes)
	}
}

func TestManagerCancelQueuedJobNeverRuns(t *testing.T) {
	ran := make(chan string, 8)
	release := make(chan struct{})
	m, err := NewManager(Config{
		MaxConcurrentJobs: 1,
		Runner: func(ctx context.Context, specs []scenario.Spec,
			gate cluster.DispatchGate, cache sweep.CacheStore) (*sweep.Report, error) {
			ran <- specs[0].Name
			select {
			case <-release:
				return &sweep.Report{}, nil
			case <-ctx.Done():
				return &sweep.Report{Partial: true}, ctx.Err()
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	first, err := m.Submit(SubmitRequest{Specs: jobSpecs(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	<-ran
	queued, err := m.Submit(SubmitRequest{Specs: jobSpecs(t, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, queued.ID, StateCancelled)
	if fin.StartedMS != 0 {
		t.Errorf("cancelled-while-queued job reports a start time: %+v", fin)
	}
	close(release)
	waitState(t, m, first.ID, StateDone)
	select {
	case name := <-ran:
		t.Errorf("cancelled queued job still ran (%s)", name)
	default:
	}
}

func TestManagerQueueQuotaRejects(t *testing.T) {
	metrics := telemetry.NewRegistry()
	block := make(chan struct{})
	defer close(block)
	m, err := NewManager(Config{
		MaxQueuedPerTenant: 2,
		Metrics:            metrics,
		Runner: func(ctx context.Context, specs []scenario.Spec,
			gate cluster.DispatchGate, cache sweep.CacheStore) (*sweep.Report, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return &sweep.Report{}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for range 2 {
		if _, err := m.Submit(SubmitRequest{Tenant: "greedy", Specs: jobSpecs(t, 6)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit(SubmitRequest{Tenant: "greedy", Specs: jobSpecs(t, 7)}); !errors.Is(err, ErrQuota) {
		t.Fatalf("third submit: err = %v, want ErrQuota", err)
	}
	// Another tenant is not affected by greedy's quota.
	if _, err := m.Submit(SubmitRequest{Tenant: "modest", Specs: jobSpecs(t, 8)}); err != nil {
		t.Fatal(err)
	}
	snap := metrics.Snapshot()
	if snap[`fairness_jobs_quota_rejected_total{tenant="greedy"}`] != 1 {
		t.Errorf("quota rejection not counted: %v", snap)
	}
}

func TestManagerRetentionEvictsOldestFinished(t *testing.T) {
	m, err := NewManager(Config{
		RetainPerTenant: 2,
		Runner: func(ctx context.Context, specs []scenario.Spec,
			gate cluster.DispatchGate, cache sweep.CacheStore) (*sweep.Report, error) {
			return &sweep.Report{}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ids := make([]string, 0, 5)
	for i := range 5 {
		info, err := m.Submit(SubmitRequest{Tenant: "acme", Name: fmt.Sprintf("n%d", i),
			Specs: jobSpecs(t, uint64(20+i))})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, info.ID, StateDone)
		ids = append(ids, info.ID)
	}
	infos, err := m.List("acme", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("retained %d jobs, want 2: %+v", len(infos), infos)
	}
	if infos[0].ID != ids[3] || infos[1].ID != ids[4] {
		t.Errorf("retained wrong jobs: %+v", infos)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("evicted job still resolvable: %v", err)
	}
}

func TestTenantCacheNamespacesAreDisjoint(t *testing.T) {
	base := sweep.NewCache(256)
	m, err := NewManager(Config{Cache: base, Runner: LocalRunner(sweep.Options{}, 8)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	specs := jobSpecs(t, 9)

	run := func(tenant string) JobInfo {
		info, err := m.Submit(SubmitRequest{Tenant: tenant, Specs: specs})
		if err != nil {
			t.Fatal(err)
		}
		return waitState(t, m, info.ID, StateDone)
	}
	first := run("alpha")
	if first.Stats.Computed != len(specs) {
		t.Fatalf("cold run computed %d of %d", first.Stats.Computed, len(specs))
	}
	// Same tenant again: warm, everything from its namespace.
	again := run("alpha")
	if again.Stats.CacheHits != len(specs) {
		t.Errorf("warm same-tenant run: %+v", again.Stats)
	}
	// A different tenant must NOT see alpha's entries.
	other := run("beta")
	if other.Stats.Computed != len(specs) {
		t.Errorf("tenant beta warm-started from alpha's cache: %+v", other.Stats)
	}
}

func TestJobServerHTTPEndToEnd(t *testing.T) {
	m, err := NewManager(Config{Runner: LocalRunner(sweep.Options{}, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mux := http.NewServeMux()
	NewServer(m).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	grid := `{"name":"http-e2e","tenant":"acme","seed":11,` +
		`"spec":{"base":{"blocks":120,"trials":10},"protocols":["pow","slpos"],"stake":[0.2,0.3]}}`
	var body SubmitBody
	if err := json.Unmarshal([]byte(grid), &body); err != nil {
		t.Fatal(err)
	}
	info, err := c.Submit(ctx, body)
	if err != nil {
		t.Fatal(err)
	}
	if info.Tenant != "acme" || info.Scenarios != 4 {
		t.Fatalf("submitted: %+v", info)
	}
	fin, err := c.Wait(ctx, info.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}

	// Paginated retrieval through the HTTP client.
	page, err := c.ResultsPage(ctx, info.ID, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Outcomes) != 3 || page.NextPageToken == "" {
		t.Fatalf("first page: %d outcomes, token %q", len(page.Outcomes), page.NextPageToken)
	}
	_, outs, err := c.Results(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("aggregated %d outcomes, want 4", len(outs))
	}

	// Same sweep locally: the job's merged report must be bit-identical.
	specs, err := scenario.DecodeSpecsOrGrid(body.Spec, body.Seed)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, outs), canonical(t, local.Outcomes); got != want {
		t.Errorf("HTTP job outcomes differ from local sweep:\n%s\n%s", got, want)
	}

	// Error surface: unknown id is 404-shaped, listing filters work.
	if _, err := c.Get(ctx, "j-424242"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job: err = %v, want 404", err)
	}
	jobsList, err := c.List(ctx, "acme", StateDone)
	if err != nil || len(jobsList) != 1 {
		t.Errorf("list: %v, %v", jobsList, err)
	}
}
