package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/scenario"
)

// maxSubmitBytes bounds a submission body; grids expand server-side, so
// even very large sweeps submit small.
const maxSubmitBytes = 4 << 20

// Server exposes a Manager over HTTP — the /v1/jobs API mounted by
// fairnessd and the coordinator:
//
//	POST /v1/jobs                    submit (202 + JobInfo)
//	GET  /v1/jobs?tenant=&state=     list (submission order)
//	GET  /v1/jobs/{id}               one job's snapshot
//	POST /v1/jobs/{id}/cancel        request cancellation
//	GET  /v1/jobs/{id}/results?page_token=&page_size=   paginated outcomes
type Server struct {
	m *Manager
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server { return &Server{m: m} }

// Manager returns the wrapped manager.
func (s *Server) Manager() *Manager { return s.m }

// SubmitBody is the POST /v1/jobs wire format: job envelope plus the
// scenario payload, which is either an explicit scenario array or a
// grid object (the same dual format fairsweep -spec accepts).
type SubmitBody struct {
	Name       string          `json:"name,omitempty"`
	Tenant     string          `json:"tenant,omitempty"`
	Priority   int             `json:"priority,omitempty"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
	Seed       uint64          `json:"seed,omitempty"`
	Spec       json.RawMessage `json:"spec"`
}

// Register mounts the job API on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes))
	if err != nil {
		jobError(w, http.StatusBadRequest, err)
		return
	}
	var body SubmitBody
	if err := json.Unmarshal(data, &body); err != nil {
		jobError(w, http.StatusBadRequest, fmt.Errorf("decode submission: %w", err))
		return
	}
	if len(body.Spec) == 0 {
		jobError(w, http.StatusBadRequest, fmt.Errorf("submission carries no spec"))
		return
	}
	specs, err := scenario.DecodeSpecsOrGrid(body.Spec, body.Seed)
	if err != nil {
		jobError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.m.Submit(SubmitRequest{
		Name:       body.Name,
		Tenant:     body.Tenant,
		Priority:   body.Priority,
		DeadlineMS: body.DeadlineMS,
		Specs:      specs,
	})
	if err != nil {
		jobError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos, err := s.m.List(r.URL.Query().Get("tenant"), JobState(r.URL.Query().Get("state")))
	if err != nil {
		jobError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		jobError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		jobError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pageSize := 0
	if v := q.Get("page_size"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			jobError(w, http.StatusBadRequest, fmt.Errorf("bad page_size %q", v))
			return
		}
		pageSize = n
	}
	page, err := s.m.Results(r.PathValue("id"), q.Get("page_token"), pageSize)
	if err != nil {
		jobError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// statusFor maps job-service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		return http.StatusConflict
	case errors.Is(err, ErrPageToken):
		return http.StatusBadRequest
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func jobError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
