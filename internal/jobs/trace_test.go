package jobs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// startTracedClusterWorker boots one worker node with span telemetry
// wired into rec, and registers it with reg.
func startTracedClusterWorker(t *testing.T, reg *cluster.Registry, rec *telemetry.FlightRecorder) {
	t.Helper()
	ws := cluster.NewWorkerServer(cluster.LocalRunner(sweep.Options{}))
	ws.SetTelemetry("montecarlo", nil, rec)
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "backend": "montecarlo"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	if err := reg.Register(srv.URL, "montecarlo", 0); err != nil {
		t.Fatal(err)
	}
}

// TestJobTraceSingleRootedTreeReconcilesWithMakespan is the tracing
// acceptance e2e: one job over a two-worker in-process cluster must
// yield a single-rooted span tree (job → queued/sweep → gate_wait /
// dispatch → eval → stream, plus merge), assembled from the coordinator
// and worker flight recorders, whose per-stage durations sum to within
// 10% of the measured makespan.
func TestJobTraceSingleRootedTreeReconcilesWithMakespan(t *testing.T) {
	trace := &safeBuf{}
	tracer := telemetry.NewTracer(trace)
	coordRec := telemetry.NewFlightRecorder(0)
	w1Rec := telemetry.NewFlightRecorder(0)
	w2Rec := telemetry.NewFlightRecorder(0)
	reg := cluster.NewRegistry("montecarlo", 0)
	startTracedClusterWorker(t, reg, w1Rec)
	startTracedClusterWorker(t, reg, w2Rec)

	m, err := NewManager(Config{
		Runner: ClusterRunner(cluster.Options{
			Registry:    reg,
			ShardSize:   2,
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
			Tracer:      tracer,
			Recorder:    coordRec,
		}),
		Capacity: func() int { return len(reg.Live()) },
		Tracer:   tracer,
		Recorder: coordRec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	g := scenario.Grid{
		// Sized so the job runs a few hundred ms: long enough that the
		// 10% reconciliation window dwarfs polling/teardown jitter.
		Base:      scenario.Spec{Blocks: 2400, Trials: 60, Seed: 7},
		Protocols: []string{"pow", "mlpos", "cpos"},
		Stake:     []float64{0.1, 0.2, 0.3, 0.4},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	info, err := m.Submit(SubmitRequest{Name: "traced", Tenant: "acme", Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, info.ID, StateDone)
	makespanMS := float64(time.Since(t0).Microseconds()) / 1000
	if fin.Partial {
		t.Fatal("job finished partial")
	}
	if info.TraceID == "" || fin.TraceID != info.TraceID {
		t.Fatalf("job trace id not stable: submit %q, finished %q", info.TraceID, fin.TraceID)
	}

	// Assemble the tree exactly the way `fairctl trace` does: merge the
	// coordinator's and every worker's flight recorder.
	all := coordRec.Spans(info.TraceID)
	all = append(all, w1Rec.Spans(info.TraceID)...)
	all = append(all, w2Rec.Spans(info.TraceID)...)
	tree := telemetry.BuildSpanTree(all)
	if len(tree.Roots) != 1 {
		t.Fatalf("span tree has %d roots, want 1 (spans: %d)", len(tree.Roots), tree.Spans)
	}
	root := tree.Roots[0]
	if root.Name != "job" || root.Service != "jobs" {
		t.Fatalf("tree rooted at %s/%s, want jobs/job", root.Service, root.Name)
	}

	// Every lifecycle stage must be present in the breakdown.
	breakdown := root.StageBreakdown()
	for _, stage := range []string{"job", "queued", "sweep", "dispatch", "eval", "merge"} {
		if _, ok := breakdown[stage]; !ok {
			t.Errorf("stage %q missing from breakdown %v", stage, breakdown)
		}
	}

	// Acceptance: per-stage durations sum to within 10% of the measured
	// makespan. StageBreakdown partitions the root span exactly, so this
	// is really root-span duration vs wall clock around submit→done.
	var sum float64
	for _, v := range breakdown {
		sum += v
	}
	if math.Abs(sum-root.DurationMS) > 1e-6 {
		t.Errorf("stage sum %.3fms != root duration %.3fms — breakdown is not a partition", sum, root.DurationMS)
	}
	if rel := math.Abs(sum-makespanMS) / makespanMS; rel > 0.10 {
		t.Errorf("stage durations sum to %.1fms vs measured makespan %.1fms (%.1f%% off, want ≤10%%)\nbreakdown: %v",
			sum, makespanMS, rel*100, breakdown)
	}

	// The critical path descends job → sweep → (whatever finished last
	// under the sweep — the merge epilogue, by construction).
	path := root.CriticalPath()
	if len(path) < 3 || path[1].Name != "sweep" {
		var names []string
		for _, n := range path {
			names = append(names, n.Name)
		}
		t.Errorf("critical path %v, want job → sweep → ...", names)
	}

	// Worker eval spans must be present and parented on coordinator
	// dispatch spans — the cross-process half of the tree.
	dispatchIDs := make(map[string]bool)
	for _, s := range all {
		if s.Name == "dispatch" {
			dispatchIDs[s.SpanID] = true
		}
	}
	evals := 0
	for _, s := range all {
		if s.Name == "eval" {
			evals++
			if !dispatchIDs[s.ParentID] {
				t.Errorf("eval span %s parented on %q — not a dispatch span", s.SpanID, s.ParentID)
			}
		}
	}
	if evals == 0 {
		t.Error("no worker eval spans joined the job's trace")
	}
}
