package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// safeBuf is an io.Writer + reader usable from concurrent goroutines —
// the trace sink for e2e assertions.
type safeBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startClusterWorker boots one in-process worker node and registers it.
func startClusterWorker(t *testing.T, reg *cluster.Registry) {
	t.Helper()
	ws := cluster.NewWorkerServer(cluster.LocalRunner(sweep.Options{}))
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "backend": "montecarlo"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	if err := reg.Register(srv.URL, "montecarlo", 0); err != nil {
		t.Fatal(err)
	}
}

// traceEvents decodes the NDJSON trace buffer.
func traceEvents(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var events []map[string]any
	sc := bufio.NewScanner(strings.NewReader(raw))
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("undecodable trace line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

// TestJobsOverClusterFairInterleavingAndBitIdentical is the tentpole
// e2e: two equal-weight tenants submit jobs onto one shared worker
// pool. While both are in flight each must receive 50% ± 10% of shard
// dispatches, and both merged reports must be bit-identical to local
// sweeps of the same specs.
func TestJobsOverClusterFairInterleavingAndBitIdentical(t *testing.T) {
	metrics := telemetry.NewRegistry()
	trace := &safeBuf{}
	tracer := telemetry.NewTracer(trace)
	reg := cluster.NewRegistry("montecarlo", 0)

	m, err := NewManager(Config{
		Runner: ClusterRunner(cluster.Options{
			Registry:    reg,
			ShardSize:   1, // dispatch-granularity fairness, one scenario per grant
			BackoffBase: time.Millisecond,
			// Keep the worker-discovery poll tight: the default 2s max
			// backoff lets one run sit blind to the just-registered
			// workers while the other monopolizes them, which is a
			// discovery race, not a scheduling decision.
			BackoffMax: 5 * time.Millisecond,
			Metrics:    metrics,
			Tracer:     tracer,
		}),
		// Exactly one slot per live worker: with two runs contending for
		// two slots the gate queue is never empty, so EVERY grant is a
		// stride-scheduler decision rather than a first-come free pass —
		// that is what makes the 50/50 interleave assertion deterministic.
		Capacity: func() int { return len(reg.Live()) },
		Metrics:  metrics,
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	bigGrid := func(seed uint64, protocols ...string) []scenario.Spec {
		g := scenario.Grid{
			// Heavy enough that per-scenario work dwarfs
			// goroutine-scheduling jitter: fairness is only observable
			// while both tenants are actually waiting at the gate, and
			// millisecond scenarios let one tenant drain inside the
			// other's wakeup latency.
			Base:      scenario.Spec{Blocks: 1200, Trials: 25, Seed: seed},
			Protocols: protocols,
			Stake:     []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35},
		}
		specs, err := g.Expand()
		if err != nil {
			t.Fatal(err)
		}
		return specs
	}
	specsA := bigGrid(100, "pow", "mlpos", "slpos", "cpos")
	specsB := bigGrid(200, "pow", "cpos")
	if len(specsA) != 24 || len(specsB) != 12 {
		t.Fatalf("grid sizes changed: %d, %d", len(specsA), len(specsB))
	}
	// Unequal job sizes on purpose: the fairness window is "while both
	// tenants are in flight", i.e. the trace prefix up to tenant-b's
	// last dispatch — with equal sizes the final totals are trivially
	// equal and prove nothing about interleaving.
	jobA, err := m.Submit(SubmitRequest{Name: "big", Tenant: "tenant-a", Specs: specsA})
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := m.Submit(SubmitRequest{Name: "small", Tenant: "tenant-b", Specs: specsB})
	if err != nil {
		t.Fatal(err)
	}

	// Hold worker registration until BOTH cluster runs are live and
	// waiting, so dispatch is contested from the very first shard.
	deadline := time.Now().Add(10 * time.Second)
	for strings.Count(trace.String(), `"event":"cluster_start"`) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("cluster runs never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	startClusterWorker(t, reg)
	startClusterWorker(t, reg)

	for _, id := range []string{jobA.ID, jobB.ID} {
		if fin := waitState(t, m, id, StateDone); fin.Partial {
			t.Fatalf("job %s finished partial", id)
		}
	}

	// Fairness: each tenant's share of dispatches must be 50% ± 10%
	// over the contention window — from the moment BOTH tenants have
	// issued a dispatch (before that only one tenant's loops were even
	// requesting: worker discovery and goroutine wakeup are a race the
	// scheduler cannot arbitrate) up to tenant-b's last dispatch (after
	// b drains, a runs uncontested by design).
	var dispatches []string
	for _, ev := range traceEvents(t, trace.String()) {
		if ev["event"] == "job_dispatch" {
			dispatches = append(dispatches, ev["tenant"].(string))
		}
	}
	firstA, lastB := -1, -1
	for i, tenant := range dispatches {
		if tenant == "tenant-a" && firstA < 0 {
			firstA = i
		}
		if tenant == "tenant-b" {
			lastB = i
		}
	}
	firstB := -1
	for i, tenant := range dispatches {
		if tenant == "tenant-b" {
			firstB = i
			break
		}
	}
	start := max(firstA, firstB)
	if firstA < 0 || firstB < 0 || lastB-start+1 < 8 {
		t.Fatalf("contention window too small to judge: firstA=%d firstB=%d lastB=%d in %v",
			firstA, firstB, lastB, dispatches)
	}
	counts := map[string]int{}
	for i := start; i <= lastB; i++ {
		counts[dispatches[i]]++
	}
	total := counts["tenant-a"] + counts["tenant-b"]
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		share := float64(counts[tenant]) / float64(total)
		if share < 0.4 || share > 0.6 {
			t.Errorf("tenant %s: dispatch share %.3f while contested, want 0.5 ± 0.1 (counts %v, sequence %v)",
				tenant, share, counts, dispatches)
		}
	}

	// The dispatch metrics must tell the same story.
	snap := metrics.Snapshot()
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		if snap[`fairness_jobs_dispatches_total{tenant="`+tenant+`"}`] == 0 {
			t.Errorf("no fairness_jobs_dispatches_total for %s", tenant)
		}
	}
	if snap["fairness_jobs_running"] != 0 || snap["fairness_jobs_queued"] != 0 {
		t.Errorf("lifecycle gauges did not settle: %v", snap)
	}

	// Bit-identical: each job's merged report vs a local sweep.
	localA, err := sweep.Run(specsA, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	localB, err := sweep.Run(specsB, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pageA, err := m.Results(jobA.ID, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	pageB, err := m.Results(jobB.ID, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, pageA.Outcomes), canonical(t, localA.Outcomes); got != want {
		t.Errorf("tenant-a job outcomes differ from local sweep:\n%s\n%s", got, want)
	}
	if got, want := canonical(t, pageB.Outcomes), canonical(t, localB.Outcomes); got != want {
		t.Errorf("tenant-b job outcomes differ from local sweep:\n%s\n%s", got, want)
	}
}

// TestJobsOverClusterCancelMidRunKeepsPartial cancels a job mid-run on
// a live cluster: the job must land in cancelled with a partial report
// whose completed outcomes match local computation.
func TestJobsOverClusterCancelMidRunKeepsPartial(t *testing.T) {
	metrics := telemetry.NewRegistry()
	reg := cluster.NewRegistry("montecarlo", 0)
	m, err := NewManager(Config{
		Runner: ClusterRunner(cluster.Options{
			Registry:    reg,
			ShardSize:   1,
			BackoffBase: time.Millisecond,
			Metrics:     metrics,
		}),
		Capacity: func() int { return 2 * len(reg.Live()) },
		Metrics:  metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	startClusterWorker(t, reg)

	// A deliberately chunky job so there is a mid-run to cancel in.
	specs := jobSpecs(t, 300, "pow", "mlpos", "slpos")
	for i := range specs {
		specs[i].Blocks = 600
		specs[i].Trials = 40
	}
	info, err := m.Submit(SubmitRequest{Name: "doomed", Tenant: "acme", Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for metrics.Counter("fairness_jobs_scenarios_dispatched_total", "tenant", "acme").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("job never started dispatching")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(info.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, info.ID, StateCancelled)
	if !fin.Partial {
		t.Fatal("cancelled job not marked partial")
	}
	page, err := m.Results(info.ID, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The partial report holds only outcomes that actually computed —
	// the runner compacts torn-run placeholders away. Per-scenario seeds
	// are hash-derived and unique, so they map each outcome back to its
	// original (named) spec.
	bySeed := make(map[uint64]scenario.Spec, len(specs))
	for _, s := range specs {
		bySeed[s.Seed] = s
	}
	var filledSpecs []scenario.Spec
	for _, o := range page.Outcomes {
		if o.Hash == "" {
			t.Fatalf("partial report leaked an unfilled outcome: %+v", o)
		}
		s, ok := bySeed[o.Spec.Seed]
		if !ok {
			t.Fatalf("outcome seed %d matches no submitted spec", o.Spec.Seed)
		}
		filledSpecs = append(filledSpecs, s)
	}
	if len(page.Outcomes) == 0 || len(page.Outcomes) >= len(specs) {
		t.Fatalf("partial report has %d of %d outcomes — want a strict mid-run cut",
			len(page.Outcomes), len(specs))
	}
	// The outcomes that did complete before the cancel must still be
	// bit-identical to local evaluation of the same specs.
	local, err := sweep.Run(filledSpecs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, page.Outcomes), canonical(t, local.Outcomes); got != want {
		t.Errorf("partial outcomes differ from local sweep:\n%s\n%s", got, want)
	}
	snap := metrics.Snapshot()
	if snap[`fairness_jobs_finished_total{state="cancelled"}`] != 1 {
		t.Errorf("cancelled finish not counted: %v", snap)
	}
}
