package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/sweep"
)

// Client talks to a job server's /v1/jobs API — the engine behind
// fairctl submit/jobs/cancel/results and the fairload generator.
type Client struct {
	// Base is the server's base URL ("host:port" or full URL).
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

// NewClient builds a client for one job server.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) base() string {
	b := c.Base
	if b == "" {
		b = "127.0.0.1:7447"
	}
	if !bytes.Contains([]byte(b), []byte("://")) {
		b = "http://" + b
	}
	for len(b) > 0 && b[len(b)-1] == '/' {
		b = b[:len(b)-1]
	}
	return b
}

// do runs one JSON round trip, decoding the error envelope on non-2xx.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base()+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("jobs: %s %s: status %d: %s", method, path, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("jobs: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts one job and returns its assigned snapshot.
func (c *Client) Submit(ctx context.Context, body SubmitBody) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &info)
	return info, err
}

// Get fetches one job's snapshot.
func (c *Client) Get(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// List fetches job snapshots, optionally filtered by tenant and state.
func (c *Client) List(ctx context.Context, tenant string, state JobState) ([]JobInfo, error) {
	q := url.Values{}
	if tenant != "" {
		q.Set("tenant", tenant)
	}
	if state != "" {
		q.Set("state", string(state))
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out struct {
		Jobs []JobInfo `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Jobs, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, &info)
	return info, err
}

// ResultsPage fetches one page of a finished job's outcomes.
func (c *Client) ResultsPage(ctx context.Context, id, pageToken string, pageSize int) (ResultsPage, error) {
	q := url.Values{}
	if pageToken != "" {
		q.Set("page_token", pageToken)
	}
	if pageSize > 0 {
		q.Set("page_size", strconv.Itoa(pageSize))
	}
	path := "/v1/jobs/" + url.PathEscape(id) + "/results"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page ResultsPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Results walks every page and returns the job snapshot with the full
// merged outcome list.
func (c *Client) Results(ctx context.Context, id string) (JobInfo, []sweep.Outcome, error) {
	var (
		outcomes []sweep.Outcome
		info     JobInfo
		token    string
	)
	for {
		page, err := c.ResultsPage(ctx, id, token, 0)
		if err != nil {
			return info, outcomes, err
		}
		info = page.Job
		outcomes = append(outcomes, page.Outcomes...)
		if page.NextPageToken == "" {
			return info, outcomes, nil
		}
		token = page.NextPageToken
	}
}

// Wait polls until the job reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		info, err := c.Get(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return info, ctx.Err()
		}
	}
}
