package jobs

import (
	"context"
	"strings"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// SweepRunner executes one job's scenario list under a dispatch gate,
// reading and writing results through the job's tenant-namespaced cache
// (nil when the manager has no base cache). Implementations must keep
// local-sweep semantics: outcomes in input order, cancellation
// returning the partial report with ctx.Err(), and completed outcomes
// bit-identical to sweep.RunContext's for the same list.
type SweepRunner func(ctx context.Context, specs []scenario.Spec,
	gate cluster.DispatchGate, cache sweep.CacheStore) (*sweep.Report, error)

// ClusterRunner executes jobs on the shared worker pool: each job is
// one cluster.Run whose shard dispatch the manager's scheduler gates.
// base is copied per job; its Gate and (when the manager namespaces a
// cache) Cache fields are overridden.
func ClusterRunner(base cluster.Options) SweepRunner {
	return func(ctx context.Context, specs []scenario.Spec,
		gate cluster.DispatchGate, cache sweep.CacheStore) (*sweep.Report, error) {
		o := base
		o.Gate = gate
		if cache != nil {
			o.Cache = cache
		}
		rep, err := cluster.Run(ctx, specs, o)
		if rep != nil && (err != nil || rep.Partial) {
			// A torn cluster run leaves holes for shards that never
			// finished; keep only the outcomes that actually computed, in
			// stream order. Each outcome carries its spec, so nothing is
			// lost by dropping the placeholders.
			filled := rep.Outcomes[:0]
			for _, out := range rep.Outcomes {
				if out.Hash != "" {
					filled = append(filled, out)
				}
			}
			rep.Outcomes = filled
		}
		return rep, err
	}
}

// LocalRunner executes jobs in-process, pacing through the gate in
// chunks of at most chunk scenarios (0 = 4) so concurrent jobs
// interleave even without a cluster: each chunk asks the gate for
// dispatch, runs sweep.RunContext on the granted slice, and merges the
// partial reports in input order. Pair it with Config.Capacity nil
// (capacity 1) for strict fair interleaving.
func LocalRunner(opts sweep.Options, chunk int) SweepRunner {
	if chunk <= 0 {
		chunk = 4
	}
	return func(ctx context.Context, specs []scenario.Spec,
		gate cluster.DispatchGate, cache sweep.CacheStore) (*sweep.Report, error) {
		o := opts
		if cache != nil {
			o.Cache = cache
		}
		rep := &sweep.Report{Outcomes: make([]sweep.Outcome, 0, len(specs))}
		for pos := 0; pos < len(specs); {
			want := len(specs) - pos
			if want > chunk {
				want = chunk
			}
			granted, release, err := gate.Acquire(ctx, want)
			if err == nil && granted <= 0 {
				release()
				err = context.Canceled
			}
			if err != nil {
				rep.Partial = true
				rep.Stats.Scenarios = len(specs)
				return rep, err
			}
			part, err := sweep.RunContext(ctx, specs[pos:pos+granted], o)
			release()
			if part != nil {
				rep.Outcomes = append(rep.Outcomes, part.Outcomes...)
				rep.Stats.CacheHits += part.Stats.CacheHits
				rep.Stats.Computed += part.Stats.Computed
				rep.Stats.TrialsRun += part.Stats.TrialsRun
				rep.Stats.WallMS += part.Stats.WallMS
			}
			if err != nil {
				rep.Partial = true
				rep.Stats.Scenarios = len(specs)
				// Trim trailing unfilled outcomes the partial chunk did
				// not reach; completed prefixes stay, like a torn
				// cluster stream.
				trimmed := rep.Outcomes[:0]
				for _, o := range rep.Outcomes {
					if o.Hash != "" {
						trimmed = append(trimmed, o)
					}
				}
				rep.Outcomes = trimmed
				return rep, err
			}
			pos += granted
		}
		rep.Stats.Scenarios = len(specs)
		return rep, nil
	}
}

// TenantCache wraps a base cache so one tenant's entries live under
// their own namespace: key "backend:hash" becomes
// "t-<tenant>:backend:hash", which the disk store lays out as a
// per-tenant directory tree. Tenants therefore never warm-start from
// (or leak timing about) each other's results.
func TenantCache(tenant string, base sweep.CacheStore) sweep.CacheStore {
	return &tenantCache{prefix: "t-" + sanitizeTenant(tenant) + ":", base: base}
}

type tenantCache struct {
	prefix string
	base   sweep.CacheStore
}

func (c *tenantCache) Get(key string) (sweep.Outcome, bool) { return c.base.Get(c.prefix + key) }
func (c *tenantCache) Add(key string, o sweep.Outcome)      { c.base.Add(c.prefix+key, o) }
func (c *tenantCache) Len() int                             { return c.base.Len() }

// sanitizeTenant maps a tenant name onto the cache store's path-safe
// alphabet (letters, digits, dot, dash, underscore); anything else
// becomes '_'. Distinct tenants that sanitize identically share a
// namespace — acceptable, since tenant names are operator-assigned.
func sanitizeTenant(tenant string) string {
	if tenant == "" {
		return "default"
	}
	var b strings.Builder
	for _, r := range tenant {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
