// Manager is the multi-tenant job service: named sweep submissions from
// many tenants, multiplexed onto one execution substrate (the shared
// cluster, or a local engine) under the fair-share Scheduler. It owns
// the job lifecycle (queued → running → done/failed/cancelled, with
// cancellation preserving partial reports), per-tenant admission quotas,
// per-tenant cache namespaces, and retention of finished results with
// paginated retrieval.
package jobs

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Job service errors, mapped onto HTTP statuses by the Server.
var (
	// ErrQuota reports a submission rejected by the tenant's
	// max-queued-jobs quota (HTTP 429).
	ErrQuota = errors.New("jobs: tenant quota exceeded")
	// ErrUnknownJob reports a job id the store does not hold — never
	// assigned, or already evicted by retention (HTTP 404).
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrNotFinished reports a results request for a job still queued or
	// running (HTTP 409).
	ErrNotFinished = errors.New("jobs: job not finished")
	// ErrClosed reports a submission to a manager that has been shut
	// down.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrPageToken reports an unparseable pagination token (HTTP 400).
	ErrPageToken = errors.New("jobs: invalid page token")
)

// JobState is a job's lifecycle position.
type JobState string

// Lifecycle: Queued → Running → one of the three terminal states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// valid reports whether s names a real state ("" means "any" in list
// filters).
func (s JobState) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// SubmitRequest is one named sweep submission.
type SubmitRequest struct {
	// Name labels the job for humans; it need not be unique.
	Name string `json:"name,omitempty"`
	// Tenant is the submitting principal ("" reads as "default").
	// Tenants are the unit of fair sharing, quotas, cache namespacing
	// and retention.
	Tenant string `json:"tenant,omitempty"`
	// Priority biases the tenant's effective weight for this job: each
	// step doubles (positive) or halves (negative) it, clamped to ±3.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS, when > 0, is a soft deadline this many milliseconds
	// from submission; urgency boosts the job's effective weight as the
	// deadline approaches (capped at 8×). It never preempts running
	// work and never cancels the job.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Specs is the expanded scenario list to sweep.
	Specs []scenario.Spec `json:"-"`
}

// JobInfo is one job's externally visible state snapshot.
type JobInfo struct {
	ID          string      `json:"id"`
	Name        string      `json:"name,omitempty"`
	Tenant      string      `json:"tenant"`
	State       JobState    `json:"state"`
	Priority    int         `json:"priority,omitempty"`
	Scenarios   int         `json:"scenarios"`
	SubmittedMS int64       `json:"submitted_ms"`
	StartedMS   int64       `json:"started_ms,omitempty"`
	FinishedMS  int64       `json:"finished_ms,omitempty"`
	DeadlineMS  int64       `json:"deadline_ms,omitempty"` // absolute unix ms
	Error       string      `json:"error,omitempty"`
	Partial     bool        `json:"partial,omitempty"`
	Stats       sweep.Stats `json:"stats,omitzero"`
	// TraceID names the job's distributed trace: the root span minted at
	// submission, under which every scheduler, coordinator and worker
	// span of the job's lifetime hangs. Look it up with GET /v1/traces or
	// `fairctl trace <job>`.
	TraceID string `json:"trace_id,omitempty"`
}

// job is the manager's internal record.
type job struct {
	info   JobInfo
	specs  []scenario.Spec
	report *sweep.Report
	cancel context.CancelFunc
	// span is the job's root span (ended at the terminal state); queued
	// is its first child, covering submission → start. Both End
	// idempotently, so the cancel-while-queued path cannot double-close.
	span   *telemetry.Span
	queued *telemetry.Span
}

// Config tunes a Manager. The zero value is usable with a Runner set.
type Config struct {
	// Runner executes one job's sweep under a dispatch gate. Required.
	// Use ClusterRunner for the shared worker pool or LocalRunner for
	// in-process execution.
	Runner SweepRunner
	// Capacity bounds concurrently outstanding dispatch grants; see
	// NewScheduler. Nil reads as 1 — strict interleaving, the right
	// default for LocalRunner.
	Capacity func() int
	// MaxQueuedPerTenant caps a tenant's non-terminal jobs (queued +
	// running); submissions beyond it fail with ErrQuota (0 = 16).
	MaxQueuedPerTenant int
	// MaxInflightPerTenant caps a tenant's in-flight scenarios across
	// all its jobs (0 = unlimited).
	MaxInflightPerTenant int
	// MaxConcurrentJobs caps jobs in the running state (0 = 64). The
	// fair-share gate, not this backstop, is what interleaves work.
	MaxConcurrentJobs int
	// RetainPerTenant caps finished jobs kept for result retrieval per
	// tenant; the oldest-finished are evicted first (0 = 32).
	RetainPerTenant int
	// Weights assigns per-tenant share weights (unlisted tenants get 1).
	Weights map[string]float64
	// Cache, when non-nil, is the base result cache; each tenant reads
	// and writes through its own namespace of it.
	Cache sweep.CacheStore
	// Metrics and Tracer receive fairness_jobs_* series and job_* trace
	// events. Both may be nil.
	Metrics *telemetry.Registry
	Tracer  *telemetry.Tracer
	// Recorder, when non-nil, retains the job service's completed spans
	// (job root, queued) for GET /v1/traces. Share one recorder with the
	// cluster coordinator so a job's whole trace is served from one ring.
	Recorder *telemetry.FlightRecorder
}

// Manager is the job service. Construct with NewManager.
type Manager struct {
	cfg   Config
	sched *Scheduler
	slots chan struct{}

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, the List spine
	seq    int
	closed bool

	wg sync.WaitGroup

	queuedGauge  *telemetry.Gauge
	runningGauge *telemetry.Gauge
}

// NewManager builds a job service over cfg.Runner.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("jobs: Config.Runner is required")
	}
	m := &Manager{
		cfg:          cfg,
		sched:        NewScheduler(cfg.Capacity, cfg.Metrics, cfg.Tracer),
		slots:        make(chan struct{}, valueOr(cfg.MaxConcurrentJobs, 64)),
		jobs:         make(map[string]*job),
		queuedGauge:  cfg.Metrics.Gauge("fairness_jobs_queued"),
		runningGauge: cfg.Metrics.Gauge("fairness_jobs_running"),
	}
	for tenant, w := range cfg.Weights {
		m.sched.SetTenant(tenant, w, cfg.MaxInflightPerTenant)
	}
	return m, nil
}

func valueOr(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// Scheduler exposes the manager's fair-share arbiter (the load
// generator and tests read dispatch state through its metrics).
func (m *Manager) Scheduler() *Scheduler { return m.sched }

// Submit admits one job, returning its assigned snapshot. The job runs
// asynchronously; watch it with Get or wait on results with Results.
func (m *Manager) Submit(req SubmitRequest) (JobInfo, error) {
	if len(req.Specs) == 0 {
		return JobInfo{}, fmt.Errorf("jobs: empty scenario list")
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	for i, s := range req.Specs {
		if err := s.Validate(); err != nil {
			return JobInfo{}, fmt.Errorf("jobs: scenario %d (%s): %w", i, s.Name, err)
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	open := 0
	for _, j := range m.jobs {
		if j.info.Tenant == tenant && !j.info.State.Terminal() {
			open++
		}
	}
	if open >= valueOr(m.cfg.MaxQueuedPerTenant, 16) {
		m.mu.Unlock()
		m.cfg.Metrics.Counter("fairness_jobs_quota_rejected_total", "tenant", tenant).Inc()
		m.cfg.Tracer.Emit("quota_reject", "tenant", tenant, "open_jobs", open)
		return JobInfo{}, fmt.Errorf("%w: tenant %q has %d open jobs", ErrQuota, tenant, open)
	}

	// First use of a tenant: register it with the scheduler so the
	// default weight and the global in-flight quota apply.
	if _, ok := m.cfg.Weights[tenant]; !ok {
		m.sched.SetTenant(tenant, 1, m.cfg.MaxInflightPerTenant)
	}

	m.seq++
	now := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		info: JobInfo{
			ID:          fmt.Sprintf("j-%06d", m.seq),
			Name:        req.Name,
			Tenant:      tenant,
			State:       StateQueued,
			Priority:    req.Priority,
			Scenarios:   len(req.Specs),
			SubmittedMS: now.UnixMilli(),
		},
		specs:  req.Specs,
		cancel: cancel,
	}
	var deadline time.Time
	if req.DeadlineMS > 0 {
		deadline = now.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
		j.info.DeadlineMS = deadline.UnixMilli()
	}
	// Root the job's trace: one trace_id for the job's whole lifetime,
	// with a queued child span covering submission → start.
	j.span = telemetry.StartSpan(m.cfg.Tracer, m.cfg.Recorder, telemetry.SpanContext{},
		"jobs", "job", "job", j.info.ID, "tenant", tenant,
		"name", req.Name, "scenarios", len(req.Specs), "priority", req.Priority)
	j.queued = telemetry.StartSpan(m.cfg.Tracer, m.cfg.Recorder, j.span.Context(),
		"jobs", "queued", "job", j.info.ID)
	j.info.TraceID = j.span.Context().TraceID
	m.jobs[j.info.ID] = j
	m.order = append(m.order, j.info.ID)
	m.queuedGauge.Add(1)
	info := j.info
	m.wg.Add(1)
	m.mu.Unlock()

	m.cfg.Metrics.Counter("fairness_jobs_submitted_total", "tenant", tenant).Inc()
	m.cfg.Tracer.Emit("job_submit",
		"job", info.ID, "tenant", tenant, "name", req.Name,
		"scenarios", len(req.Specs), "priority", req.Priority,
		"trace_id", info.TraceID)

	go m.runJob(ctx, j, deadline)
	return info, nil
}

// runJob drives one job through its lifecycle.
func (m *Manager) runJob(ctx context.Context, j *job, deadline time.Time) {
	defer m.wg.Done()

	// Wait for a job slot; cancellation while queued finishes the job
	// without ever running it.
	select {
	case m.slots <- struct{}{}:
	case <-ctx.Done():
		m.finishJob(j, &sweep.Report{Partial: true}, ctx.Err())
		return
	}
	defer func() { <-m.slots }()

	m.mu.Lock()
	if j.info.State != StateQueued { // cancelled in the gap
		m.mu.Unlock()
		return
	}
	j.info.State = StateRunning
	j.info.StartedMS = time.Now().UnixMilli()
	info := j.info
	m.queuedGauge.Add(-1)
	m.runningGauge.Add(1)
	m.mu.Unlock()
	j.queued.End("state", "running")
	m.cfg.Tracer.Emit("job_start", "job", info.ID, "tenant", info.Tenant,
		"trace_id", info.TraceID)

	gate := m.sched.Gate(info.Tenant, info.ID, info.Priority, deadline)
	var cache sweep.CacheStore
	if m.cfg.Cache != nil {
		cache = TenantCache(info.Tenant, m.cfg.Cache)
	}
	// The runner's spans (sweep, gate_wait, dispatch — and, across the
	// wire, the workers' eval/stream) parent under the job's root span;
	// the baggage carries the tenant/job labels to every hop.
	ctx = telemetry.ContextWithSpan(ctx, j.span.Context())
	ctx = telemetry.ContextWithBaggage(ctx, map[string]string{
		"tenant": info.Tenant, "job": info.ID,
	})
	rep, err := m.cfg.Runner(ctx, j.specs, gate, cache)
	m.finishJob(j, rep, err)
}

// finishJob records a job's terminal state and applies retention.
func (m *Manager) finishJob(j *job, rep *sweep.Report, err error) {
	m.mu.Lock()
	prev := j.info.State
	switch {
	case err == nil:
		j.info.State = StateDone
	case errors.Is(err, context.Canceled):
		j.info.State = StateCancelled
	default:
		j.info.State = StateFailed
		j.info.Error = err.Error()
	}
	j.info.FinishedMS = time.Now().UnixMilli()
	if rep != nil {
		// Cancellation and some failures still carry a partial report —
		// retention serves whatever completed before the cut.
		j.report = rep
		j.info.Partial = rep.Partial
		j.info.Stats = rep.Stats
	}
	j.specs = nil // the spec list is dead weight once the run is over
	switch prev {
	case StateQueued:
		m.queuedGauge.Add(-1)
	case StateRunning:
		m.runningGauge.Add(-1)
	}
	info := j.info
	m.pruneLocked(j.info.Tenant)
	m.mu.Unlock()

	// Close the trace: the queued child first (a no-op unless the job was
	// cancelled while still queued — End is idempotent), then the root.
	j.queued.End("state", string(info.State))
	j.span.End("state", string(info.State), "partial", info.Partial)

	m.cfg.Metrics.Counter("fairness_jobs_finished_total", "state", string(info.State)).Inc()
	m.cfg.Tracer.Emit("job_finish",
		"job", info.ID, "tenant", info.Tenant, "state", string(info.State),
		"partial", info.Partial, "error", info.Error, "trace_id", info.TraceID)
}

// pruneLocked evicts the tenant's oldest finished jobs beyond the
// retention cap.
func (m *Manager) pruneLocked(tenant string) {
	keep := valueOr(m.cfg.RetainPerTenant, 32)
	var finished []*job
	for _, id := range m.order {
		j := m.jobs[id]
		if j.info.Tenant == tenant && j.info.State.Terminal() {
			finished = append(finished, j)
		}
	}
	if len(finished) <= keep {
		return
	}
	sort.Slice(finished, func(a, b int) bool {
		return finished[a].info.FinishedMS < finished[b].info.FinishedMS
	})
	evict := make(map[string]bool, len(finished)-keep)
	for _, j := range finished[:len(finished)-keep] {
		evict[j.info.ID] = true
		delete(m.jobs, j.info.ID)
		m.cfg.Metrics.Counter("fairness_jobs_evicted_total", "tenant", tenant).Inc()
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if !evict[id] {
			kept = append(kept, id)
		}
	}
	m.order = kept
}

// Get returns one job's snapshot.
func (m *Manager) Get(id string) (JobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.info, nil
}

// List returns job snapshots in submission order, optionally filtered
// by tenant and/or state ("" matches all).
func (m *Manager) List(tenant string, state JobState) ([]JobInfo, error) {
	if state != "" && !state.valid() {
		return nil, fmt.Errorf("jobs: unknown state %q", state)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobInfo, 0, len(m.order))
	for _, id := range m.order {
		j := m.jobs[id]
		if tenant != "" && j.info.Tenant != tenant {
			continue
		}
		if state != "" && j.info.State != state {
			continue
		}
		out = append(out, j.info)
	}
	return out, nil
}

// Cancel requests cancellation of a job. Queued jobs finish cancelled
// without running; running jobs stop at the next dispatch boundary and
// keep the partial report computed so far. Cancelling a terminal job is
// a no-op.
func (m *Manager) Cancel(id string) (JobInfo, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobInfo{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	info := j.info
	cancel := j.cancel
	m.mu.Unlock()
	if !info.State.Terminal() {
		m.cfg.Tracer.Emit("job_cancel", "job", id, "tenant", info.Tenant)
		cancel()
	}
	return info, nil
}

// ResultsPage is one page of a finished job's merged outcomes.
type ResultsPage struct {
	Job      JobInfo         `json:"job"`
	Outcomes []sweep.Outcome `json:"outcomes"`
	// NextPageToken resumes retrieval after this page; empty on the
	// last page. Tokens are opaque to callers.
	NextPageToken string `json:"next_page_token,omitempty"`
}

// defaultPageSize bounds a Results page when the caller does not.
const defaultPageSize = 256

// Results returns one page of a finished job's outcomes. pageToken ""
// starts from the beginning; pageSize <= 0 reads as 256. Jobs still
// queued or running answer ErrNotFinished — cancel first to read a
// partial report.
func (m *Manager) Results(id, pageToken string, pageSize int) (ResultsPage, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ResultsPage{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if !j.info.State.Terminal() {
		m.mu.Unlock()
		return ResultsPage{}, fmt.Errorf("%w: %s is %s", ErrNotFinished, id, j.info.State)
	}
	info := j.info
	var outcomes []sweep.Outcome
	if j.report != nil {
		outcomes = j.report.Outcomes
	}
	m.mu.Unlock()

	offset, err := decodePageToken(pageToken)
	if err != nil {
		return ResultsPage{}, err
	}
	if pageSize <= 0 {
		pageSize = defaultPageSize
	}
	page := ResultsPage{Job: info}
	if offset >= len(outcomes) {
		return page, nil
	}
	end := offset + pageSize
	if end > len(outcomes) {
		end = len(outcomes)
	}
	page.Outcomes = outcomes[offset:end]
	if end < len(outcomes) {
		page.NextPageToken = encodePageToken(end)
	}
	return page, nil
}

// Close cancels every live job and waits for their goroutines. Further
// submissions fail with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	cancels := make([]context.CancelFunc, 0, len(m.jobs))
	for _, j := range m.jobs {
		if !j.info.State.Terminal() {
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	m.wg.Wait()
}

// Pagination tokens are opaque offsets: versioned, base64-wrapped, so
// clients cannot meaningfully construct or arithmetic on them.
func encodePageToken(offset int) string {
	return base64.RawURLEncoding.EncodeToString([]byte("o1:" + strconv.Itoa(offset)))
}

func decodePageToken(tok string) (int, error) {
	if tok == "" {
		return 0, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrPageToken, err)
	}
	rest, ok := strings.CutPrefix(string(raw), "o1:")
	if !ok {
		return 0, fmt.Errorf("%w: bad version", ErrPageToken)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: bad offset", ErrPageToken)
	}
	return n, nil
}
