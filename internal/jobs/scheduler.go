// Scheduler is the job service's weighted fair-share arbiter. It
// implements stride scheduling over tenants: every grant charges the
// dispatching tenant "pass" time inversely proportional to its effective
// weight, and the next grant always goes to the eligible tenant with the
// lowest pass. Because a tenant's pass only grows while it dispatches,
// any tenant that falls behind becomes the minimum in bounded time —
// starvation-freedom is structural, not a tuning outcome.
//
// The scheduler plugs into the cluster through cluster.DispatchGate: one
// gate per job, all gates sharing this scheduler, so fairness acts at
// true shard-dispatch granularity while the cluster's merge machinery
// (and therefore bit-identical reports) stays untouched.
package jobs

import (
	"context"
	"math"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

// Scheduling constants.
const (
	// priorityClamp bounds the per-job priority boost: effective weight
	// is scaled by 2^priority with priority clamped to ±priorityClamp.
	priorityClamp = 3
	// deadlineBoostMax caps the urgency multiplier a looming deadline
	// can add on top of tenant weight and priority.
	deadlineBoostMax = 8
	// deadlineHorizon is the lead time at which a deadline starts to
	// matter: a job due in one horizon gets boost 1, due in half a
	// horizon gets 2, and so on up to deadlineBoostMax.
	deadlineHorizon = time.Hour
)

// Scheduler arbitrates shard dispatch across tenants. Construct with
// NewScheduler; the zero value is unusable.
type Scheduler struct {
	capacity func() int // max concurrently outstanding grants (<1 reads as 1)
	metrics  *telemetry.Registry
	tracer   *telemetry.Tracer

	mu          sync.Mutex
	tenants     map[string]*schedTenant
	pending     []*gateReq
	outstanding int
	seq         uint64 // arrival order, tie-break within equal pass
}

// schedTenant is one tenant's scheduling state.
type schedTenant struct {
	name        string
	weight      float64 // configured share weight (>0; default 1)
	maxInflight int     // max in-flight scenarios (0 = unlimited)
	pass        float64 // stride virtual time, in scenarios/weight units
	inflight    int     // scenarios currently granted and not yet released
	active      int     // pending requests + outstanding grants
}

// gateReq is one blocked Acquire.
type gateReq struct {
	tenant  *schedTenant
	job     string
	traceID string // the acquiring context's trace, stamped on job_dispatch
	want    int
	eff     float64 // effective weight at enqueue time
	seq     uint64
	ch      chan grant // buffered(1); receives exactly once if granted
}

type grant struct {
	n       int
	release func()
}

// NewScheduler builds a scheduler. capacity bounds how many grants may
// be outstanding at once — fairness only binds when dispatch is scarcer
// than demand, so pass something proportional to the worker pool (the
// manager uses 2× live workers for cluster runs, 1 for local runs). A
// nil capacity or one returning < 1 reads as 1. Metrics and tracer may
// be nil.
func NewScheduler(capacity func() int, m *telemetry.Registry, tr *telemetry.Tracer) *Scheduler {
	return &Scheduler{
		capacity: capacity,
		metrics:  m,
		tracer:   tr,
		tenants:  make(map[string]*schedTenant),
	}
}

// SetTenant configures one tenant's share weight (<=0 reads as 1) and
// in-flight scenario quota (0 = unlimited). Unconfigured tenants get
// weight 1 and no quota on first use.
func (s *Scheduler) SetTenant(name string, weight float64, maxInflight int) {
	s.mu.Lock()
	t := s.tenantLocked(name)
	if weight <= 0 {
		weight = 1
	}
	t.weight = weight
	t.maxInflight = maxInflight
	s.grantLocked()
	s.mu.Unlock()
}

func (s *Scheduler) tenantLocked(name string) *schedTenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &schedTenant{name: name, weight: 1}
		s.tenants[name] = t
	}
	return t
}

// Gate returns the dispatch gate for one job: every Acquire contends on
// this scheduler under the job's tenant, biased by priority (each step
// doubles or halves the effective weight, clamped to ±3) and deadline
// (urgency grows as the deadline approaches, capped at 8×; zero means
// no deadline).
func (s *Scheduler) Gate(tenant, jobID string, priority int, deadline time.Time) cluster.DispatchGate {
	return &schedGate{s: s, tenant: tenant, job: jobID, priority: priority, deadline: deadline}
}

type schedGate struct {
	s        *Scheduler
	tenant   string
	job      string
	priority int
	deadline time.Time
}

// effWeight computes a gate's effective weight right now.
func (g *schedGate) effWeight(base float64) float64 {
	p := g.priority
	if p > priorityClamp {
		p = priorityClamp
	} else if p < -priorityClamp {
		p = -priorityClamp
	}
	w := base * math.Pow(2, float64(p))
	if !g.deadline.IsZero() {
		remaining := time.Until(g.deadline)
		boost := deadlineBoostMax
		if remaining > 0 {
			b := float64(deadlineHorizon) / float64(remaining)
			switch {
			case b < 1:
				boost = 1
			case b < deadlineBoostMax:
				boost = int(b)
			}
		}
		w *= float64(boost)
	}
	return w
}

// Acquire implements cluster.DispatchGate: block until the scheduler
// picks this job's tenant for the next dispatch, then return how many
// scenarios may ship (possibly fewer than want, clamped by the tenant's
// in-flight quota) and a release to call when they land.
func (g *schedGate) Acquire(ctx context.Context, want int) (int, func(), error) {
	if want < 1 {
		want = 1
	}
	s := g.s
	waitStart := time.Now()

	s.mu.Lock()
	t := s.tenantLocked(g.tenant)
	if t.active == 0 {
		// A tenant (re)joining the fray starts at the current virtual
		// time, not at its stale pass: it must not be owed service for
		// the period it had nothing to dispatch, nor punished for
		// dispatch it did long ago.
		if v, ok := s.minActivePassLocked(); ok && v > t.pass {
			t.pass = v
		}
	}
	t.active++
	req := &gateReq{
		tenant:  t,
		job:     g.job,
		traceID: telemetry.SpanContextFrom(ctx).TraceID,
		want:    want,
		eff:     g.effWeight(t.weight),
		seq:     s.seq,
		ch:      make(chan grant, 1),
	}
	s.seq++
	s.pending = append(s.pending, req)
	s.grantLocked()
	s.mu.Unlock()

	select {
	case gr := <-req.ch:
		s.metrics.Histogram("fairness_jobs_gate_wait_seconds", telemetry.DefBuckets, "tenant", g.tenant).
			Observe(time.Since(waitStart).Seconds())
		return gr.n, gr.release, nil
	case <-ctx.Done():
		s.mu.Lock()
		removed := s.removePendingLocked(req)
		if removed {
			t.active--
		}
		s.mu.Unlock()
		if !removed {
			// Lost the race: the grant landed while we were cancelling.
			// Take it and hand it straight back so the accounting stays
			// balanced.
			gr := <-req.ch
			gr.release()
		}
		return 0, func() {}, ctx.Err()
	}
}

// minActivePassLocked returns the lowest pass among tenants with work in
// the system — the scheduler's virtual time.
func (s *Scheduler) minActivePassLocked() (float64, bool) {
	v, ok := 0.0, false
	for _, t := range s.tenants {
		if t.active == 0 {
			continue
		}
		if !ok || t.pass < v {
			v, ok = t.pass, true
		}
	}
	return v, ok
}

func (s *Scheduler) removePendingLocked(req *gateReq) bool {
	for i, r := range s.pending {
		if r == req {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return true
		}
	}
	return false
}

// grantLocked hands out grants while capacity allows: each round picks
// the eligible pending request whose tenant has the lowest pass
// (arrival order breaks ties), clamps the grant to the tenant's
// in-flight quota, and charges the tenant granted/effWeight of pass —
// the stride step that makes long-run scenario allocations converge to
// configured weights under saturation.
func (s *Scheduler) grantLocked() {
	for {
		capacity := 1
		if s.capacity != nil {
			if c := s.capacity(); c > 1 {
				capacity = c
			}
		}
		if s.outstanding >= capacity {
			return
		}
		var best *gateReq
		for _, r := range s.pending {
			t := r.tenant
			if t.maxInflight > 0 && t.inflight >= t.maxInflight {
				continue
			}
			if best == nil || t.pass < best.tenant.pass ||
				(t.pass == best.tenant.pass && r.seq < best.seq) {
				best = r
			}
		}
		if best == nil {
			return
		}
		t := best.tenant
		n := best.want
		if t.maxInflight > 0 && n > t.maxInflight-t.inflight {
			n = t.maxInflight - t.inflight
		}
		s.removePendingLocked(best)
		t.pass += float64(n) / best.eff
		t.inflight += n
		s.outstanding++

		s.metrics.Counter("fairness_jobs_dispatches_total", "tenant", t.name).Inc()
		s.metrics.Counter("fairness_jobs_scenarios_dispatched_total", "tenant", t.name).Add(int64(n))
		s.metrics.Gauge("fairness_jobs_inflight_scenarios", "tenant", t.name).Set(float64(t.inflight))
		s.tracer.Emit("job_dispatch",
			"tenant", t.name, "job", best.job, "granted", n, "pass", t.pass,
			"trace_id", best.traceID)

		granted := n
		var once sync.Once
		release := func() {
			once.Do(func() {
				s.mu.Lock()
				t.inflight -= granted
				t.active--
				s.outstanding--
				s.metrics.Gauge("fairness_jobs_inflight_scenarios", "tenant", t.name).Set(float64(t.inflight))
				s.grantLocked()
				s.mu.Unlock()
			})
		}
		best.ch <- grant{n: n, release: release}
	}
}
