package chainsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Fork-aware PoW simulation. The single-Chain Network resolves every
// block race instantly and the round-based P2PSim models latency per
// link; ForkSim sits between the two: it models the *outcome* of
// imperfect propagation — concurrent blocks at one height racing for the
// chain — with real nonce-ground blocks, at a configurable per-height
// fork rate. The race protocol follows Sakurai & Shudo ("The Rich Get
// Richer in Bitcoin Mining Induced by Blockchain Forks"): each candidate
// block's producer keeps mining on its own block, every neutral miner
// picks a side evenly, and the side that finds the next block wins the
// height. Large miners therefore win races in proportion to their full
// power while small miners split — the fork-induced rich-get-richer
// skew, emerging here from actual SHA-256 puzzle races
// (internal/attack.ForkEffectivePowers is the closed-form twin of this
// simulation).

// ErrForkSim reports an invalid fork-simulation configuration.
var ErrForkSim = errors.New("chainsim: invalid fork sim config")

// powMiner is one grinding participant of a fork-aware simulation.
type powMiner struct {
	name  string
	addr  Address
	power uint64
}

// buildPoWMiners validates and converts a MinerSpec list.
func buildPoWMiners(specs []MinerSpec) ([]powMiner, uint64, error) {
	if len(specs) < 2 {
		return nil, 0, fmt.Errorf("%w: need at least 2 miners, got %d", ErrForkSim, len(specs))
	}
	miners := make([]powMiner, len(specs))
	seen := make(map[Address]bool, len(specs))
	var total uint64
	for i, m := range specs {
		if m.Resource == 0 {
			return nil, 0, fmt.Errorf("%w: miner %q has zero hash power", ErrForkSim, m.Name)
		}
		a := AddressFromSeed(m.Name)
		if seen[a] {
			return nil, 0, fmt.Errorf("%w: duplicate miner name %q", ErrForkSim, m.Name)
		}
		seen[a] = true
		miners[i] = powMiner{name: m.Name, addr: a, power: m.Resource}
		total += m.Resource
	}
	return miners, total, nil
}

// grindBlock races the given miners' nonce searches, each from its own
// parent block, and seals the earliest success in trial-time: trials
// divided by hash power, refined by the winning digest's position below
// the target (uniform on [0, 1), so it interpolates continuous time
// within the successful hash interval — without it, every trial-0
// success would tie at time zero and coarse targets would flatten the
// power-proportional race). parents[i] selects miner i's branch tip; a
// nil parent sits the miner out. Returns the sealed block and the
// winner's index.
func grindBlock(miners []powMiner, parents []*Block, target, maxTrials, reward uint64, r *rng.Rand) (*Block, int, error) {
	if maxTrials == 0 {
		maxTrials = 1 << 22
	}
	bestTime := math.Inf(1)
	winner := -1
	var winNonce uint64
	for i, m := range miners {
		if parents[i] == nil {
			continue
		}
		parentHash := parents[i].Hash()
		offset := r.Uint64()
		for trial := uint64(0); trial < maxTrials; trial++ {
			nonce := offset + trial
			if d := powDigest(parentHash, m.addr, nonce); d < target {
				frac := float64(d) / float64(target)
				if t := (float64(trial) + frac) / float64(m.power); t < bestTime {
					bestTime = t
					winner = i
					winNonce = nonce
				}
				break
			}
		}
	}
	if winner < 0 {
		return nil, -1, fmt.Errorf("chainsim: PoW search exhausted %d trials without a solution", maxTrials)
	}
	parent := parents[winner]
	return &Block{Header: Header{
		Height:     parent.Header.Height + 1,
		ParentHash: parent.Hash(),
		Kind:       KindPoW,
		Proposer:   miners[winner].addr,
		Timestamp:  parent.Header.Timestamp + 1 + uint64(bestTime),
		Nonce:      winNonce,
		Reward:     reward,
	}}, winner, nil
}

// verifyLink re-validates a block against its claimed parent before it
// settles: hash linkage, height and the PoW digest. Any simulation bug
// surfaces here rather than as a silently corrupt λ.
func verifyLink(parent, b *Block, target uint64) error {
	if b.Header.ParentHash != parent.Hash() {
		return ErrBadParent
	}
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: got %d, parent %d", ErrBadHeight, b.Header.Height, parent.Header.Height)
	}
	if powDigest(b.Header.ParentHash, b.Header.Proposer, b.Header.Nonce) >= target {
		return ErrBadPoW
	}
	return nil
}

// ForkConfig assembles a fork-aware honest-PoW simulation.
type ForkConfig struct {
	// Target is the per-hash success threshold out of 2^64 (default
	// 1<<57, ≈128 hashes per miner per block).
	Target uint64
	// BlockReward is the coinbase per canonical block in ledger units.
	BlockReward uint64
	// Miners lists the participants; Resource is hash power.
	Miners []MinerSpec
	// ForkRate is the per-height probability that a second concurrent
	// block contests the height, in [0, 1).
	ForkRate float64
	// Seed drives nonce offsets, fork coin flips and race sides.
	Seed uint64
	// Salt differentiates the genesis across Monte-Carlo trials.
	Salt uint64
	// MaxTrials caps each per-miner nonce search (0 = default).
	MaxTrials uint64
}

// ForkSim drives one fork-aware chain. Use NewForkSim, then RunBlocks to
// a horizon, reading Lambda at checkpoints.
type ForkSim struct {
	cfg        ForkConfig
	miners     []powMiner
	totalPower uint64
	tip        *Block
	chain      []*Block
	rewards    map[Address]uint64
	total      uint64
	orphans    int
	r          *rng.Rand
}

// NewForkSim validates the configuration and builds the genesis state.
func NewForkSim(cfg ForkConfig) (*ForkSim, error) {
	if cfg.Target == 0 {
		cfg.Target = 1 << 57
	}
	if !(cfg.ForkRate >= 0 && cfg.ForkRate < 1) || math.IsNaN(cfg.ForkRate) {
		return nil, fmt.Errorf("%w: fork rate = %v, need [0, 1)", ErrForkSim, cfg.ForkRate)
	}
	miners, total, err := buildPoWMiners(cfg.Miners)
	if err != nil {
		return nil, err
	}
	genesis := &Block{Header: Header{Kind: KindPoW, Nonce: cfg.Salt}}
	return &ForkSim{
		cfg:        cfg,
		miners:     miners,
		totalPower: total,
		tip:        genesis,
		chain:      []*Block{genesis},
		rewards:    make(map[Address]uint64, len(miners)),
		r:          rng.New(cfg.Seed),
	}, nil
}

// settle verifies and appends a canonical block.
func (s *ForkSim) settle(b *Block) error {
	if err := verifyLink(s.tip, b, s.cfg.Target); err != nil {
		return err
	}
	s.chain = append(s.chain, b)
	s.tip = b
	s.rewards[b.Header.Proposer] += b.Header.Reward
	s.total += b.Header.Reward
	return nil
}

// powerWeightedPick draws a miner index proportional to hash power.
func powerWeightedPick(miners []powMiner, totalPower uint64, r *rng.Rand) int {
	x := r.Float64() * float64(totalPower)
	acc := 0.0
	for i, m := range miners {
		acc += float64(m.power)
		if x < acc {
			return i
		}
	}
	return len(miners) - 1
}

// RunBlocks advances the canonical chain by count heights. At each
// height one block is mined for real; with probability ForkRate a
// concurrent rival is mined from the same parent and the race is
// resolved by the next-block rule described in the package comment —
// the winning candidate settles, the loser is orphaned.
func (s *ForkSim) RunBlocks(count int) error {
	h0, o0 := s.Height(), s.orphans
	defer func() {
		// Blocks mined = canonical heights advanced + orphaned rivals.
		simBlocks.Add(int64(s.Height() - h0 + s.orphans - o0))
		simForks.Add(int64(s.orphans - o0))
	}()
	parents := make([]*Block, len(s.miners))
	for n := 0; n < count; n++ {
		for i := range parents {
			parents[i] = s.tip
		}
		first, finder, err := grindBlock(s.miners, parents, s.cfg.Target, s.cfg.MaxTrials, s.cfg.BlockReward, s.r)
		if err != nil {
			return err
		}
		if s.cfg.ForkRate == 0 || s.r.Float64() >= s.cfg.ForkRate {
			if err := s.settle(first); err != nil {
				return err
			}
			continue
		}
		// Fork: a contender found a rival block concurrently.
		parents[finder] = nil
		rival, contender, err := grindBlock(s.miners, parents, s.cfg.Target, s.cfg.MaxTrials, s.cfg.BlockReward, s.r)
		if err != nil {
			return err
		}
		// Producers mine on their own block; neutral miners split evenly.
		// The side of the next power-proportional find wins the height.
		sides := make([]bool, len(s.miners)) // true = first block's side
		for i := range s.miners {
			switch i {
			case finder:
				sides[i] = true
			case contender:
				sides[i] = false
			default:
				sides[i] = s.r.Float64() < 0.5
			}
		}
		winner := rival
		if resolver := powerWeightedPick(s.miners, s.totalPower, s.r); sides[resolver] {
			winner = first
		}
		if err := s.settle(winner); err != nil {
			return err
		}
		s.orphans++
	}
	return nil
}

// Lambda returns the named miner's fraction of canonical-chain rewards.
func (s *ForkSim) Lambda(name string) float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.rewards[AddressFromSeed(name)]) / float64(s.total)
}

// Height returns the canonical chain height.
func (s *ForkSim) Height() int { return len(s.chain) - 1 }

// Orphans returns the number of race-losing blocks discarded so far.
func (s *ForkSim) Orphans() int { return s.orphans }

// Canonical returns the settled chain, genesis first.
func (s *ForkSim) Canonical() []*Block { return s.chain }
