package chainsim

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// MinerSpec declares one network participant: a name (from which the
// address is derived) and her resource — hash power for PoW, genesis
// stake for PoS — expressed in integer units.
type MinerSpec struct {
	Name     string
	Resource uint64
}

// Network is a deterministic simulation of a small mining network: a set
// of miners driving one chain to a target height. It is the stand-in for
// the paper's two-instance AWS deployments.
type Network struct {
	Chain  *Chain
	Miners []Address
	names  map[Address]string
	rng    *rng.Rand
}

// NetworkConfig assembles a network.
type NetworkConfig struct {
	// Engine selects the consensus mechanism. For SL-PoS/FSL-PoS the
	// engine's staker set is filled in automatically from Miners.
	Engine Engine
	// Miners lists the participants and their resources.
	Miners []MinerSpec
	// Seed drives PoW nonce starting points; PoS engines ignore it.
	Seed uint64
	// Salt differentiates the genesis across Monte-Carlo trials.
	Salt uint64
	// WithholdEvery applies the reward-withholding treatment (0 = off).
	WithholdEvery uint64
	// MinerWithhold overrides the withholding period per miner name —
	// the `withhold` adversary strategy. A period of WithholdNever keeps
	// that miner's rewards out of her staking power forever; 0 stakes
	// them immediately regardless of WithholdEvery.
	MinerWithhold map[string]uint64
}

// ErrNoMiners reports an empty miner list.
var ErrNoMiners = errors.New("chainsim: no miners configured")

// NewNetwork builds the chain, ledger and miner set for a configuration.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if len(cfg.Miners) == 0 {
		return nil, ErrNoMiners
	}
	genesis := make(map[Address]uint64, len(cfg.Miners))
	addrs := make([]Address, 0, len(cfg.Miners))
	names := make(map[Address]string, len(cfg.Miners))
	for _, m := range cfg.Miners {
		if m.Resource == 0 {
			return nil, fmt.Errorf("chainsim: miner %q has zero resource", m.Name)
		}
		a := AddressFromSeed(m.Name)
		if _, dup := names[a]; dup {
			return nil, fmt.Errorf("chainsim: duplicate miner name %q", m.Name)
		}
		genesis[a] = m.Resource
		addrs = append(addrs, a)
		names[a] = m.Name
	}
	// Wire miner-set-dependent engine fields.
	switch e := cfg.Engine.(type) {
	case *PoWEngine:
		if e.HashPower == nil {
			e.HashPower = make(map[Address]uint64, len(cfg.Miners))
			for _, m := range cfg.Miners {
				e.HashPower[AddressFromSeed(m.Name)] = m.Resource
			}
		}
	case *SLPoSEngine:
		if e.Stakers == nil {
			e.Stakers = addrs
		}
	case *FSLPoSEngine:
		if e.Stakers == nil {
			e.Stakers = addrs
		}
	case *CPoSEngine:
		if e.Stakers == nil {
			e.Stakers = addrs
		}
		// The paper's C-PoS model snapshots stake at epoch start; defer
		// intra-epoch rewards to the epoch boundary unless the caller
		// asked for a different withholding period.
		if cfg.WithholdEvery == 0 {
			cfg.WithholdEvery = e.Shards
		}
	}
	var opts []ChainOption
	if cfg.WithholdEvery > 0 {
		opts = append(opts, WithholdEvery(cfg.WithholdEvery))
	}
	for name, k := range cfg.MinerWithhold {
		if _, known := genesis[AddressFromSeed(name)]; !known {
			return nil, fmt.Errorf("chainsim: withholding miner %q is not in the miner set", name)
		}
		opts = append(opts, WithholdMiner(AddressFromSeed(name), k))
	}
	// For PoW the stake ledger is the hash-power registry; rewards are
	// tracked separately and never feed back. For PoS the genesis stake
	// is the staking power.
	chain, err := NewChain(cfg.Engine, genesis, cfg.Salt, opts...)
	if err != nil {
		return nil, err
	}
	return &Network{
		Chain:  chain,
		Miners: addrs,
		names:  names,
		rng:    rng.New(cfg.Seed),
	}, nil
}

// NameOf returns the configured name of a miner address.
func (n *Network) NameOf(a Address) string { return n.names[a] }

// RunBlocks mines and appends `count` blocks. Every block passes full
// validation on append; any consensus bug surfaces as an error here.
func (n *Network) RunBlocks(count int) error {
	mined := 0
	defer func() { simBlocks.Add(int64(mined)) }()
	for i := 0; i < count; i++ {
		if err := n.Chain.MineAndAppend(n.Miners, n.rng); err != nil {
			return fmt.Errorf("chainsim: mining block %d: %w", i+1, err)
		}
		mined++
	}
	return nil
}

// Lambda returns the reward fraction of the miner with the given name.
func (n *Network) Lambda(name string) float64 {
	return n.Chain.Lambda(AddressFromSeed(name))
}

// StakeShare returns the current staking-power share of the named miner.
func (n *Network) StakeShare(name string) float64 {
	total := n.Chain.StakeView().TotalSupply()
	if total == 0 {
		return 0
	}
	return float64(n.Chain.StakeView().Balance(AddressFromSeed(name))) / float64(total)
}
