package chainsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestLedgerBasics(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	l := NewLedger(genesis)
	if l.Balance(alice) != 200_000 || l.Balance(bob) != 800_000 {
		t.Errorf("balances = %d, %d", l.Balance(alice), l.Balance(bob))
	}
	if l.TotalSupply() != testCirculation {
		t.Errorf("supply = %d", l.TotalSupply())
	}
	l.Credit(alice, 500)
	if l.Balance(alice) != 200_500 || l.Issued() != 500 {
		t.Error("credit not applied")
	}
	if err := l.CheckConservation(); err != nil {
		t.Errorf("conservation: %v", err)
	}
	if !l.Exists(alice) || l.Exists(AddressFromSeed("mallory")) {
		t.Error("Exists wrong")
	}
}

func TestLedgerCloneIsolated(t *testing.T) {
	genesis, alice, _ := twoMinerGenesis(0.5)
	l := NewLedger(genesis)
	c := l.Clone()
	c.Credit(alice, 1000)
	if l.Balance(alice) == c.Balance(alice) {
		t.Error("clone shares state")
	}
	if err := l.CheckConservation(); err != nil {
		t.Error(err)
	}
	if err := c.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestLedgerAccountsDeterministicOrder(t *testing.T) {
	genesis, _, _ := twoMinerGenesis(0.2)
	l := NewLedger(genesis)
	a := l.Accounts()
	b := l.Accounts()
	if len(a) != 2 {
		t.Fatalf("accounts = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("account order unstable")
		}
	}
}

func TestChainAppendAppliesRewards(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &MLPoSEngine{TargetPerUnit: uint64(math.Exp2(64) / 32 / testCirculation), BlockReward: testReward}
	c, err := NewChain(e, genesis, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MineAndAppend([]Address{alice, bob}, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 1 || c.Len() != 2 {
		t.Errorf("height %d len %d", c.Height(), c.Len())
	}
	if c.TotalRewards() != testReward {
		t.Errorf("rewards = %d", c.TotalRewards())
	}
	winner := c.Tip().Header.Proposer
	if c.RewardsOf(winner) != testReward {
		t.Error("winner not credited")
	}
	if got := c.Lambda(winner); got != 1 {
		t.Errorf("lambda = %v", got)
	}
	// Stake view grows for PoS.
	if c.StakeView().TotalSupply() != testCirculation+testReward {
		t.Errorf("stake supply = %d", c.StakeView().TotalSupply())
	}
	if err := c.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestChainRejectsInvalidBlock(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &SLPoSEngine{BlockReward: testReward, Stakers: []Address{alice, bob}}
	c, err := NewChain(e, genesis, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Mine(c.Tip(), c.StakeView(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := h
	bad.Reward *= 10
	if err := c.Append(&Block{Header: bad}); err == nil {
		t.Fatal("inflated-reward block accepted")
	}
	if c.Height() != 0 {
		t.Error("rejected block changed the chain")
	}
	if err := c.Append(&Block{Header: h}); err != nil {
		t.Errorf("valid block rejected: %v", err)
	}
}

func TestChainPoWRewardsDoNotStake(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &PoWEngine{Target: 1 << 56, BlockReward: testReward,
		HashPower: map[Address]uint64{alice: 20, bob: 80}}
	c, err := NewChain(e, genesis, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 10; i++ {
		if err := c.MineAndAppend([]Address{alice, bob}, r); err != nil {
			t.Fatal(err)
		}
	}
	if c.StakeView().TotalSupply() != testCirculation {
		t.Error("PoW rewards leaked into the resource ledger")
	}
	if c.TotalRewards() != 10*testReward {
		t.Errorf("rewards = %d", c.TotalRewards())
	}
	if err := c.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestChainWithholding(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &FSLPoSEngine{BlockReward: testReward, Stakers: []Address{alice, bob}}
	c, err := NewChain(e, genesis, 4, WithholdEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 4; i++ {
		if err := c.MineAndAppend(nil, r); err != nil {
			t.Fatal(err)
		}
	}
	// Before the boundary: stake view frozen at genesis.
	if c.StakeView().TotalSupply() != testCirculation {
		t.Errorf("stake grew before release: %d", c.StakeView().TotalSupply())
	}
	if c.TotalRewards() != 4*testReward {
		t.Errorf("rewards = %d", c.TotalRewards())
	}
	if err := c.CheckConservation(); err != nil {
		t.Error(err)
	}
	if err := c.MineAndAppend(nil, r); err != nil { // height 5: release
		t.Fatal(err)
	}
	if c.StakeView().TotalSupply() != testCirculation+5*testReward {
		t.Errorf("stake after release = %d", c.StakeView().TotalSupply())
	}
	if err := c.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestChainValidateReplay(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.3)
	e := &MLPoSEngine{TargetPerUnit: uint64(math.Exp2(64) / 32 / testCirculation), BlockReward: testReward}
	c, err := NewChain(e, genesis, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for i := 0; i < 20; i++ {
		if err := c.MineAndAppend([]Address{alice, bob}, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Validate(genesis); err != nil {
		t.Errorf("honest chain fails replay: %v", err)
	}
	// Tamper with a mid-chain block: replay must fail.
	c.blocks[10].Header.Proposer = AddressFromSeed("mallory")
	if err := c.Validate(genesis); err == nil {
		t.Error("tampered chain passed replay validation")
	}
}

func TestNewChainRejectsEmptyGenesis(t *testing.T) {
	e := &SLPoSEngine{BlockReward: 1}
	if _, err := NewChain(e, nil, 0); !errors.Is(err, ErrEmptyGenesis) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewChain(e, map[Address]uint64{AddressFromSeed("a"): 0}, 0); !errors.Is(err, ErrEmptyGenesis) {
		t.Errorf("zero-stake genesis err = %v", err)
	}
}

func TestBlockAt(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &SLPoSEngine{BlockReward: testReward, Stakers: []Address{alice, bob}}
	c, _ := NewChain(e, genesis, 6)
	r := rng.New(5)
	_ = c.MineAndAppend(nil, r)
	if c.BlockAt(0) == nil || c.BlockAt(1) == nil {
		t.Error("blocks missing")
	}
	if c.BlockAt(2) != nil {
		t.Error("out-of-range height should be nil")
	}
	if c.BlockAt(1).Header.ParentHash != c.BlockAt(0).Hash() {
		t.Error("hash chain broken")
	}
}

func TestNetworkPoWTwoMiner(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Engine: &PoWEngine{Target: 1 << 57, BlockReward: testReward},
		Miners: []MinerSpec{{Name: "alice", Resource: 20}, {Name: "bob", Resource: 80}},
		Seed:   1, Salt: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunBlocks(150); err != nil {
		t.Fatal(err)
	}
	l := net.Lambda("alice")
	if l < 0.05 || l > 0.4 {
		t.Errorf("alice λ = %v, wildly off 0.2", l)
	}
	if err := net.Chain.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestNetworkMLPoSGame(t *testing.T) {
	perUnit := uint64(math.Exp2(64) / 32 / testCirculation)
	net, err := NewNetwork(NetworkConfig{
		Engine: &MLPoSEngine{TargetPerUnit: perUnit, BlockReward: testReward},
		Miners: []MinerSpec{{Name: "alice", Resource: 200_000}, {Name: "bob", Resource: 800_000}},
		Salt:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunBlocks(200); err != nil {
		t.Fatal(err)
	}
	if net.Chain.TotalRewards() != 200*testReward {
		t.Errorf("rewards = %d", net.Chain.TotalRewards())
	}
	sum := net.Lambda("alice") + net.Lambda("bob")
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("λ sums to %v", sum)
	}
	if err := net.Chain.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestNetworkSLPoSDriftsToMonopoly(t *testing.T) {
	// The NXT analogue: across trials the mean λ of the small miner must
	// fall well below her 0.2 stake share (Figure 2(c) behaviour).
	sum := 0.0
	trials := 60
	for i := 0; i < trials; i++ {
		net, err := NewNetwork(NetworkConfig{
			Engine: &SLPoSEngine{BlockReward: 50_000}, // w = 0.05 speeds absorption
			Miners: []MinerSpec{{Name: "alice", Resource: 200_000}, {Name: "bob", Resource: 800_000}},
			Salt:   uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.RunBlocks(400); err != nil {
			t.Fatal(err)
		}
		sum += net.Lambda("alice")
	}
	mean := sum / float64(trials)
	if mean > 0.1 {
		t.Errorf("SL-PoS mean λ = %v, should collapse toward 0", mean)
	}
}

func TestNetworkFSLPoSStaysFairInMean(t *testing.T) {
	sum := 0.0
	trials := 80
	for i := 0; i < trials; i++ {
		net, err := NewNetwork(NetworkConfig{
			Engine: &FSLPoSEngine{BlockReward: testReward},
			Miners: []MinerSpec{{Name: "alice", Resource: 200_000}, {Name: "bob", Resource: 800_000}},
			Salt:   uint64(i + 1000),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.RunBlocks(200); err != nil {
			t.Fatal(err)
		}
		sum += net.Lambda("alice")
	}
	mean := sum / float64(trials)
	if math.Abs(mean-0.2) > 0.05 {
		t.Errorf("FSL-PoS mean λ = %v, want ~0.2", mean)
	}
}

func TestNetworkConfigValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{Engine: &SLPoSEngine{BlockReward: 1}}); !errors.Is(err, ErrNoMiners) {
		t.Errorf("empty miners err = %v", err)
	}
	if _, err := NewNetwork(NetworkConfig{
		Engine: &SLPoSEngine{BlockReward: 1},
		Miners: []MinerSpec{{Name: "a", Resource: 0}},
	}); err == nil {
		t.Error("zero resource accepted")
	}
	if _, err := NewNetwork(NetworkConfig{
		Engine: &SLPoSEngine{BlockReward: 1},
		Miners: []MinerSpec{{Name: "a", Resource: 1}, {Name: "a", Resource: 2}},
	}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestNetworkNames(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Engine: &SLPoSEngine{BlockReward: 1},
		Miners: []MinerSpec{{Name: "alice", Resource: 1}, {Name: "bob", Resource: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if net.NameOf(AddressFromSeed("alice")) != "alice" {
		t.Error("NameOf wrong")
	}
	if got := net.StakeShare("bob"); got != 0.75 {
		t.Errorf("StakeShare = %v", got)
	}
}

func TestNetworkWithholdingFreezesStakeShare(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Engine:        &FSLPoSEngine{BlockReward: 50_000},
		Miners:        []MinerSpec{{Name: "alice", Resource: 200_000}, {Name: "bob", Resource: 800_000}},
		Salt:          7,
		WithholdEvery: 1000, // longer than the run: stake never updates
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RunBlocks(100); err != nil {
		t.Fatal(err)
	}
	if got := net.StakeShare("alice"); got != 0.2 {
		t.Errorf("withheld stake share = %v, want frozen 0.2", got)
	}
	if net.Chain.TotalRewards() == 0 {
		t.Error("rewards should still accrue")
	}
	if err := net.Chain.CheckConservation(); err != nil {
		t.Error(err)
	}
}
