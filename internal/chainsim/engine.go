package chainsim

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rng"
)

// Engine is a consensus mechanism: it can mine the next block on top of a
// parent given the current staking view, and verify a sealed header
// against the same information. Engines are stateless; all chain state
// lives in Chain.
type Engine interface {
	// Kind returns the engine's block kind.
	Kind() Kind
	// Reward returns the coinbase reward per block in ledger units.
	Reward() uint64
	// RewardsConveyStake reports whether coinbase rewards add to future
	// staking power (true for PoS engines, false for PoW/NEO-style).
	RewardsConveyStake() bool
	// Mine competes one block among miners on top of parent, using stake
	// as the staking/hash-power view. PoW mining consumes randomness for
	// nonce starting points; PoS engines are fully deterministic in the
	// parent hash.
	Mine(parent *Block, stake *Ledger, miners []Address, r *rng.Rand) (Header, error)
	// Verify checks a header against the parent block and the
	// parent-state staking view.
	Verify(h *Header, parent *Block, stake *Ledger) error
}

// verifyCommon checks the fields shared by all engines.
func verifyCommon(e Engine, h *Header, parent *Block) error {
	if h.Kind != e.Kind() {
		return fmt.Errorf("%w: got %v, engine %v", ErrBadKind, h.Kind, e.Kind())
	}
	if h.ParentHash != parent.Hash() {
		return ErrBadParent
	}
	if h.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: got %d, parent %d", ErrBadHeight, h.Height, parent.Header.Height)
	}
	if h.Reward != e.Reward() {
		return fmt.Errorf("%w: got %d, want %d", ErrBadReward, h.Reward, e.Reward())
	}
	return nil
}

// PoWEngine mines by nonce grinding: a block is valid when
// SHA-256(parent ‖ miner ‖ nonce) interpreted as a 64-bit integer is below
// Target (the "Hash(nonce, …) < D" rule of Section 2.1). Each miner i
// performs HashPower[i] trials per time unit, so the first-success times
// form the exponential race whose winner is proportional to hash power.
type PoWEngine struct {
	// Target is the per-trial success threshold out of 2^64.
	Target uint64
	// BlockReward is the coinbase per block, paid in currency that does
	// not convey future mining power.
	BlockReward uint64
	// HashPower maps each miner to trials per time unit.
	HashPower map[Address]uint64
	// MaxTrials caps the per-miner nonce search (safety valve; the
	// probability of hitting it is negligible for sane targets).
	MaxTrials uint64
}

// Kind implements Engine.
func (e *PoWEngine) Kind() Kind { return KindPoW }

// Reward implements Engine.
func (e *PoWEngine) Reward() uint64 { return e.BlockReward }

// RewardsConveyStake implements Engine: PoW rewards are spendable
// currency, not mining power.
func (e *PoWEngine) RewardsConveyStake() bool { return false }

// Mine grinds nonces for every miner and declares the winner whose first
// valid nonce arrives earliest in wall-clock terms (nonce index divided by
// hash power). A random nonce offset per miner decorrelates searches
// across trials that share a parent.
func (e *PoWEngine) Mine(parent *Block, _ *Ledger, miners []Address, r *rng.Rand) (Header, error) {
	maxTrials := e.MaxTrials
	if maxTrials == 0 {
		maxTrials = 1 << 22
	}
	bestTime := math.Inf(1)
	var winner Address
	var winNonce uint64
	found := false
	for _, m := range miners {
		power := e.HashPower[m]
		if power == 0 {
			continue
		}
		offset := r.Uint64()
		for trial := uint64(0); trial < maxTrials; trial++ {
			nonce := offset + trial
			if powDigest(parent.Hash(), m, nonce) < e.Target {
				t := float64(trial) / float64(power)
				if t < bestTime {
					bestTime = t
					winner = m
					winNonce = nonce
					found = true
				}
				break
			}
		}
	}
	if !found {
		return Header{}, fmt.Errorf("chainsim: PoW search exhausted %d trials without a solution", maxTrials)
	}
	return Header{
		Height:     parent.Header.Height + 1,
		ParentHash: parent.Hash(),
		Kind:       KindPoW,
		Proposer:   winner,
		Timestamp:  parent.Header.Timestamp + 1 + uint64(bestTime),
		Nonce:      winNonce,
		Reward:     e.BlockReward,
	}, nil
}

// Verify implements Engine: the proposer's nonce must satisfy the target.
func (e *PoWEngine) Verify(h *Header, parent *Block, _ *Ledger) error {
	if err := verifyCommon(e, h, parent); err != nil {
		return err
	}
	if powDigest(h.ParentHash, h.Proposer, h.Nonce) >= e.Target {
		return ErrBadPoW
	}
	return nil
}

// kernelThresholdMet reports whether digest < targetPerUnit × stake with
// full 128-bit arithmetic (the threshold may exceed 2^64 for rich miners).
func kernelThresholdMet(digest, targetPerUnit, stakeUnits uint64) bool {
	hi, lo := bits.Mul64(targetPerUnit, stakeUnits)
	if hi > 0 {
		return true // threshold ≥ 2^64: every digest passes
	}
	return digest < lo
}

// MLPoSEngine is the Qtum/Blackcoin staking kernel of Section 2.2: at each
// timestamp every staker gets exactly one trial, valid when
// SHA-256(parent ‖ pk ‖ time) < TargetPerUnit × stake. The earliest
// success proposes; timestamp ties break toward the smaller digest.
type MLPoSEngine struct {
	// TargetPerUnit is the kernel target per unit of stake out of 2^64.
	TargetPerUnit uint64
	// BlockReward is the coinbase per block; it stakes automatically.
	BlockReward uint64
	// MaxSlots caps the timestamp search beyond the parent.
	MaxSlots uint64
}

// Kind implements Engine.
func (e *MLPoSEngine) Kind() Kind { return KindMLPoS }

// Reward implements Engine.
func (e *MLPoSEngine) Reward() uint64 { return e.BlockReward }

// RewardsConveyStake implements Engine.
func (e *MLPoSEngine) RewardsConveyStake() bool { return true }

// Mine walks timestamps from the parent's until some staker's kernel
// passes. Fully deterministic in the parent hash and stake view.
func (e *MLPoSEngine) Mine(parent *Block, stake *Ledger, miners []Address, _ *rng.Rand) (Header, error) {
	maxSlots := e.MaxSlots
	if maxSlots == 0 {
		maxSlots = 1 << 20
	}
	parentHash := parent.Hash()
	for slot := uint64(1); slot <= maxSlots; slot++ {
		ts := parent.Header.Timestamp + slot
		bestDigest := uint64(math.MaxUint64)
		var winner Address
		found := false
		for _, m := range miners {
			s := stake.Balance(m)
			if s == 0 {
				continue
			}
			d := kernelDigest(parentHash, m, ts)
			if kernelThresholdMet(d, e.TargetPerUnit, s) && d < bestDigest {
				bestDigest = d
				winner = m
				found = true
			}
		}
		if found {
			return Header{
				Height:     parent.Header.Height + 1,
				ParentHash: parentHash,
				Kind:       KindMLPoS,
				Proposer:   winner,
				Timestamp:  ts,
				Reward:     e.BlockReward,
			}, nil
		}
	}
	return Header{}, fmt.Errorf("chainsim: ML-PoS kernel search exhausted %d slots", maxSlots)
}

// Verify implements Engine: the proposer must hold registered stake, the
// timestamp must advance, and her kernel must pass at that timestamp.
func (e *MLPoSEngine) Verify(h *Header, parent *Block, stake *Ledger) error {
	if err := verifyCommon(e, h, parent); err != nil {
		return err
	}
	if h.Timestamp <= parent.Header.Timestamp {
		return ErrBadTimestamp
	}
	s := stake.Balance(h.Proposer)
	if s == 0 {
		return ErrUnknownMiner
	}
	if !kernelThresholdMet(kernelDigest(h.ParentHash, h.Proposer, h.Timestamp), e.TargetPerUnit, s) {
		return ErrBadKernel
	}
	return nil
}

// SLPoSEngine is the NXT forging lottery of Section 2.3: one deterministic
// ticket per staker per block, waiting time Hash(pk, …)/stake, smallest
// time forges. The linear time function is exactly what breaks
// proportionality (the a/(2b) win probability).
type SLPoSEngine struct {
	// BlockReward is the coinbase per block; it stakes automatically.
	BlockReward uint64
	// Stakers is the registered validator set eligible to forge.
	Stakers []Address
}

// Kind implements Engine.
func (e *SLPoSEngine) Kind() Kind { return KindSLPoS }

// Reward implements Engine.
func (e *SLPoSEngine) Reward() uint64 { return e.BlockReward }

// RewardsConveyStake implements Engine.
func (e *SLPoSEngine) RewardsConveyStake() bool { return true }

// slLess reports whether ticket (dA, sA) beats (dB, sB), i.e.
// dA/sA < dB/sB, compared exactly as dA·sB < dB·sA in 128 bits.
func slLess(dA, sA, dB, sB uint64) bool {
	hiA, loA := bits.Mul64(dA, sB)
	hiB, loB := bits.Mul64(dB, sA)
	if hiA != hiB {
		return hiA < hiB
	}
	return loA < loB
}

// winnerOf returns the staker with the smallest waiting time, or false if
// nobody holds positive stake.
func (e *SLPoSEngine) winnerOf(parentHash Hash, stake *Ledger) (Address, bool) {
	var winner Address
	var wd, ws uint64
	found := false
	for _, m := range e.Stakers {
		s := stake.Balance(m)
		if s == 0 {
			continue
		}
		d := lotteryDigest(parentHash, m)
		if !found || slLess(d, s, wd, ws) {
			winner, wd, ws = m, d, s
			found = true
		}
	}
	return winner, found
}

// Mine forges the next block deterministically.
func (e *SLPoSEngine) Mine(parent *Block, stake *Ledger, _ []Address, _ *rng.Rand) (Header, error) {
	winner, ok := e.winnerOf(parent.Hash(), stake)
	if !ok {
		return Header{}, fmt.Errorf("chainsim: SL-PoS has no staker with positive stake")
	}
	return Header{
		Height:     parent.Header.Height + 1,
		ParentHash: parent.Hash(),
		Kind:       KindSLPoS,
		Proposer:   winner,
		Timestamp:  parent.Header.Timestamp + 1,
		Reward:     e.BlockReward,
	}, nil
}

// Verify implements Engine: the proposer must be the lottery winner; a
// forged block from anyone else is rejected even if correctly signed.
func (e *SLPoSEngine) Verify(h *Header, parent *Block, stake *Ledger) error {
	if err := verifyCommon(e, h, parent); err != nil {
		return err
	}
	winner, ok := e.winnerOf(h.ParentHash, stake)
	if !ok {
		return ErrUnknownMiner
	}
	if winner != h.Proposer {
		return ErrBadLottery
	}
	return nil
}

// FSLPoSEngine is the paper's treatment of Section 6.2 applied to the NXT
// lottery: waiting time −ln(1 − Hash/2^64)/stake, which makes forging
// probability exactly proportional to stake.
type FSLPoSEngine struct {
	// BlockReward is the coinbase per block; it stakes automatically.
	BlockReward uint64
	// Stakers is the registered validator set eligible to forge.
	Stakers []Address
}

// Kind implements Engine.
func (e *FSLPoSEngine) Kind() Kind { return KindFSLPoS }

// Reward implements Engine.
func (e *FSLPoSEngine) Reward() uint64 { return e.BlockReward }

// RewardsConveyStake implements Engine.
func (e *FSLPoSEngine) RewardsConveyStake() bool { return true }

// fslTime computes the corrected waiting time of one ticket.
func fslTime(digest, stakeUnits uint64) float64 {
	u := float64(digest) / float64(math.MaxUint64)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log1p(-u) / float64(stakeUnits)
}

// winnerOf returns the staker with the smallest corrected waiting time.
func (e *FSLPoSEngine) winnerOf(parentHash Hash, stake *Ledger) (Address, bool) {
	var winner Address
	best := math.Inf(1)
	found := false
	for _, m := range e.Stakers {
		s := stake.Balance(m)
		if s == 0 {
			continue
		}
		t := fslTime(lotteryDigest(parentHash, m), s)
		if t < best {
			best = t
			winner = m
			found = true
		}
	}
	return winner, found
}

// Mine forges the next block deterministically under the corrected lottery.
func (e *FSLPoSEngine) Mine(parent *Block, stake *Ledger, _ []Address, _ *rng.Rand) (Header, error) {
	winner, ok := e.winnerOf(parent.Hash(), stake)
	if !ok {
		return Header{}, fmt.Errorf("chainsim: FSL-PoS has no staker with positive stake")
	}
	return Header{
		Height:     parent.Header.Height + 1,
		ParentHash: parent.Hash(),
		Kind:       KindFSLPoS,
		Proposer:   winner,
		Timestamp:  parent.Header.Timestamp + 1,
		Reward:     e.BlockReward,
	}, nil
}

// Verify implements Engine.
func (e *FSLPoSEngine) Verify(h *Header, parent *Block, stake *Ledger) error {
	if err := verifyCommon(e, h, parent); err != nil {
		return err
	}
	winner, ok := e.winnerOf(h.ParentHash, stake)
	if !ok {
		return ErrUnknownMiner
	}
	if winner != h.Proposer {
		return ErrBadLottery
	}
	return nil
}
