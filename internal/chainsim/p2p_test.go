package chainsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

func p2pCfg(delay int, salt uint64) P2PConfig {
	return P2PConfig{
		Target:      1 << 58, // p = 1/64 per trial
		BlockReward: 10_000,
		Miners:      []MinerSpec{{Name: "A", Resource: 4}, {Name: "B", Resource: 16}},
		DelayRounds: delay,
		Seed:        salt,
		Salt:        salt,
	}
}

func TestP2PZeroDelayBasics(t *testing.T) {
	res, err := RunP2P(p2pCfg(0, 1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.CanonicalHeight() < 100 {
		t.Errorf("canonical height = %d, want >= 100", res.CanonicalHeight())
	}
	if err := VerifyCanonical(res.Canonical, 1<<58); err != nil {
		t.Errorf("canonical chain invalid: %v", err)
	}
	l := res.Lambda("A") + res.Lambda("B")
	if math.Abs(l-1) > 1e-12 {
		t.Errorf("lambdas sum to %v", l)
	}
	if res.Produced < res.CanonicalHeight() {
		t.Error("produced fewer blocks than canonical height")
	}
}

func TestP2PDeterministic(t *testing.T) {
	a, err := RunP2P(p2pCfg(2, 7), 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunP2P(p2pCfg(2, 7), 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Produced != b.Produced || a.Rounds != b.Rounds || a.CanonicalHeight() != b.CanonicalHeight() {
		t.Error("p2p simulation not deterministic")
	}
	if a.Lambda("A") != b.Lambda("A") {
		t.Error("lambda not deterministic")
	}
}

func TestP2PFairnessAtZeroDelay(t *testing.T) {
	// Without propagation delay the canonical win rate matches hash
	// shares (A holds 20%).
	lambdas := make([]float64, 0, 30)
	for i := 0; i < 30; i++ {
		res, err := RunP2P(p2pCfg(0, uint64(100+i)), 60)
		if err != nil {
			t.Fatal(err)
		}
		lambdas = append(lambdas, res.Lambda("A"))
	}
	mean := stats.Mean(lambdas)
	if math.Abs(mean-0.2) > 0.04 {
		t.Errorf("zero-delay mean λ_A = %v, want ~0.2", mean)
	}
}

func TestP2POrphanRateGrowsWithDelay(t *testing.T) {
	// Longer propagation delay ⇒ more concurrent finds ⇒ more orphans.
	rate := func(delay int) float64 {
		total, orphans := 0, 0
		for i := 0; i < 25; i++ {
			res, err := RunP2P(p2pCfg(delay, uint64(500+i)), 60)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Produced
			orphans += res.Orphans()
		}
		return float64(orphans) / float64(total)
	}
	r0 := rate(0)
	r8 := rate(8)
	if !(r8 > r0) {
		t.Errorf("orphan rate with delay 8 (%v) not above delay 0 (%v)", r8, r0)
	}
	if r8 == 0 {
		t.Error("delayed network produced no orphans at all")
	}
}

func TestP2PForkResolutionConverges(t *testing.T) {
	// Even with heavy delay the network converges on one valid chain.
	res, err := RunP2P(p2pCfg(10, 42), 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCanonical(res.Canonical, 1<<58); err != nil {
		t.Errorf("canonical chain under delay invalid: %v", err)
	}
	if res.CanonicalHeight() < 80 {
		t.Errorf("canonical height = %d", res.CanonicalHeight())
	}
	if res.Orphans() == 0 {
		t.Log("no orphans despite delay (possible but unusual)")
	}
}

func TestP2PConfigValidation(t *testing.T) {
	cases := []P2PConfig{
		{},
		{Target: 1 << 58, Miners: []MinerSpec{{Name: "A", Resource: 0}}, BlockReward: 1},
		{Target: 0, Miners: []MinerSpec{{Name: "A", Resource: 1}}, BlockReward: 1},
		{Target: 1 << 58, Miners: []MinerSpec{{Name: "A", Resource: 1}}, DelayRounds: -1},
	}
	for i, cfg := range cases {
		if _, err := RunP2P(cfg, 10); !errors.Is(err, ErrP2PConfig) {
			t.Errorf("case %d: err = %v, want ErrP2PConfig", i, err)
		}
	}
	if _, err := RunP2P(p2pCfg(0, 1), 0); !errors.Is(err, ErrP2PConfig) {
		t.Error("blocks=0 accepted")
	}
}

func TestP2PMaxRoundsGuard(t *testing.T) {
	cfg := p2pCfg(0, 1)
	cfg.Target = 1 // essentially unminable
	cfg.MaxRounds = 50
	if _, err := RunP2P(cfg, 10); err == nil {
		t.Error("round cap not enforced")
	}
}

func TestVerifyCanonicalRejectsTampering(t *testing.T) {
	res, err := RunP2P(p2pCfg(0, 9), 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCanonical(nil, 1<<58); err == nil {
		t.Error("empty chain accepted")
	}
	// Tamper with a proposer mid-chain.
	res.Canonical[5].Header.Proposer = AddressFromSeed("mallory")
	if err := VerifyCanonical(res.Canonical, 1<<58); err == nil {
		t.Error("tampered canonical chain accepted")
	}
}
