package chainsim

import (
	"fmt"

	"repro/internal/rng"
)

// Chain is an append-only validated blockchain with its staking-power view
// and reward accounting. It supports the paper's reward-withholding
// treatment natively: with WithholdEvery = K, coinbase rewards count
// toward a miner's measured income immediately but only join her staking
// power when the height reaches a multiple of K (Section 6.3).
type Chain struct {
	engine Engine
	blocks []*Block

	// stake is the staking-power view engines mine and verify against.
	stake *Ledger
	// rewards tracks cumulative coinbase per miner (the λ numerator).
	rewards      map[Address]uint64
	totalRewards uint64
	// pending holds withheld rewards not yet staking.
	pending       map[Address]uint64
	withholdEvery uint64
	// minerWithhold overrides the global withholding period per address
	// (WithholdNever = never release) — the `withhold` adversary
	// strategy, one deviating miner against the global treatment.
	minerWithhold map[Address]uint64
}

// ChainOption configures a new chain.
type ChainOption func(*Chain)

// WithholdNever, as a per-miner withholding period, keeps the miner's
// rewards out of her staking power forever.
const WithholdNever = ^uint64(0)

// WithholdEvery defers the staking effect of rewards to the next
// multiple-of-k height. k = 0 (default) stakes rewards immediately.
func WithholdEvery(k uint64) ChainOption {
	return func(c *Chain) { c.withholdEvery = k }
}

// WithholdMiner overrides the withholding period for one address: her
// rewards join her staking power at multiples of k (k = 0 immediately,
// WithholdNever never), regardless of the global period.
func WithholdMiner(addr Address, k uint64) ChainOption {
	return func(c *Chain) {
		if c.minerWithhold == nil {
			c.minerWithhold = make(map[Address]uint64)
		}
		c.minerWithhold[addr] = k
	}
}

// withholdPeriod resolves an address's effective withholding period:
// 0 = stake immediately, WithholdNever = never, else the release period.
func (c *Chain) withholdPeriod(addr Address) uint64 {
	if c.minerWithhold != nil {
		if k, ok := c.minerWithhold[addr]; ok {
			return k
		}
	}
	return c.withholdEvery
}

// NewChain builds a chain with a genesis block over the given allocation.
// The salt distinguishes Monte-Carlo trials: PoS engines are deterministic
// in the parent hash, so two chains with equal genesis would replay the
// same lottery outcomes.
func NewChain(engine Engine, genesis map[Address]uint64, salt uint64, opts ...ChainOption) (*Chain, error) {
	if len(genesis) == 0 {
		return nil, ErrEmptyGenesis
	}
	total := uint64(0)
	for _, v := range genesis {
		total += v
	}
	if total == 0 {
		return nil, ErrEmptyGenesis
	}
	c := &Chain{
		engine:  engine,
		stake:   NewLedger(genesis),
		rewards: make(map[Address]uint64),
		pending: make(map[Address]uint64),
	}
	for _, o := range opts {
		o(c)
	}
	gen := &Block{Header: Header{
		Height:     0,
		ParentHash: GenesisParent,
		Kind:       engine.Kind(),
		Nonce:      salt,
	}}
	c.blocks = append(c.blocks, gen)
	return c, nil
}

// Tip returns the latest block.
func (c *Chain) Tip() *Block { return c.blocks[len(c.blocks)-1] }

// Height returns the tip height.
func (c *Chain) Height() uint64 { return c.Tip().Header.Height }

// Len returns the number of blocks including genesis.
func (c *Chain) Len() int { return len(c.blocks) }

// BlockAt returns the block at the given height, or nil if out of range.
func (c *Chain) BlockAt(height uint64) *Block {
	if height >= uint64(len(c.blocks)) {
		return nil
	}
	return c.blocks[height]
}

// StakeView returns the chain's current staking-power ledger (what the
// next block's lottery will be drawn against).
func (c *Chain) StakeView() *Ledger { return c.stake }

// RewardsOf returns the cumulative coinbase earned by addr.
func (c *Chain) RewardsOf(addr Address) uint64 { return c.rewards[addr] }

// TotalRewards returns the cumulative coinbase issued.
func (c *Chain) TotalRewards() uint64 { return c.totalRewards }

// Lambda returns addr's fraction of all rewards issued so far (the
// paper's λ), or NaN-like -1 sentinel avoided: it returns 0 when no
// rewards exist yet.
func (c *Chain) Lambda(addr Address) float64 {
	if c.totalRewards == 0 {
		return 0
	}
	return float64(c.rewards[addr]) / float64(c.totalRewards)
}

// Credit is one reward grant produced by an engine's epoch hook.
type Credit struct {
	Addr   Address
	Amount uint64
}

// Inflator is an optional Engine extension for protocols that distribute
// epoch-level inflation rewards in addition to per-block proposer rewards
// (the attester rewards of C-PoS, Section 2.4). EpochInflation is called
// after each block's proposer reward is applied, with the pre-release
// staking view, and returns the credits to grant (nil when the height is
// not an epoch boundary).
type Inflator interface {
	EpochInflation(height uint64, stake *Ledger) []Credit
}

// Append validates the block against the tip and the current staking view
// and, if valid, applies its coinbase. Invalid blocks leave the chain
// unchanged and return a descriptive error.
func (c *Chain) Append(b *Block) error {
	if err := c.engine.Verify(&b.Header, c.Tip(), c.stake); err != nil {
		return err
	}
	c.blocks = append(c.blocks, b)
	c.applyReward(b.Header.Proposer, b.Header.Reward)
	return nil
}

func (c *Chain) applyReward(proposer Address, reward uint64) {
	conveys := c.engine.RewardsConveyStake()
	c.creditReward(proposer, reward, conveys)
	// Epoch-level inflation (C-PoS attester rewards) is computed on the
	// staking view BEFORE this boundary's pending release, i.e. on the
	// epoch-start stake as in the paper's model.
	if inf, ok := c.engine.(Inflator); ok {
		for _, cr := range inf.EpochInflation(c.Height(), c.stake) {
			c.creditReward(cr.Addr, cr.Amount, conveys)
		}
	}
	for a, p := range c.pending {
		if p == 0 {
			continue
		}
		if k := c.withholdPeriod(a); k > 0 && k != WithholdNever && c.Height()%k == 0 {
			c.stake.Credit(a, p)
			c.pending[a] = 0
		}
	}
}

// creditReward records income for addr; when conveysStake it joins the
// staking view now or, under withholding, at the next release boundary.
func (c *Chain) creditReward(addr Address, amount uint64, conveysStake bool) {
	if amount == 0 {
		return
	}
	c.rewards[addr] += amount
	c.totalRewards += amount
	if !conveysStake {
		return
	}
	if c.withholdPeriod(addr) != 0 {
		c.pending[addr] += amount
		return
	}
	c.stake.Credit(addr, amount)
}

// MineAndAppend mines the next block with the chain's engine and appends
// it. It is the inner loop of the network simulator.
func (c *Chain) MineAndAppend(miners []Address, r *rng.Rand) error {
	h, err := c.engine.Mine(c.Tip(), c.stake, miners, r)
	if err != nil {
		return err
	}
	return c.Append(&Block{Header: h})
}

// Validate re-verifies the whole chain from genesis, replaying the ledger.
// It returns the first validation error, or nil. Used as an end-to-end
// integrity check after simulations.
func (c *Chain) Validate(genesis map[Address]uint64) error {
	replay, err := NewChain(c.engine, genesis, c.blocks[0].Header.Nonce, func(r *Chain) {
		r.withholdEvery = c.withholdEvery
		r.minerWithhold = c.minerWithhold
	})
	if err != nil {
		return err
	}
	for i := 1; i < len(c.blocks); i++ {
		if err := replay.Append(c.blocks[i]); err != nil {
			return fmt.Errorf("chainsim: block %d invalid on replay: %w", i, err)
		}
	}
	if replay.totalRewards != c.totalRewards {
		return fmt.Errorf("chainsim: replay rewards %d != chain rewards %d", replay.totalRewards, c.totalRewards)
	}
	return nil
}

// CheckConservation verifies stake-ledger conservation including withheld
// rewards: supply must equal genesis plus all stake-conveying rewards.
func (c *Chain) CheckConservation() error {
	if err := c.stake.CheckConservation(); err != nil {
		return err
	}
	if !c.engine.RewardsConveyStake() {
		if c.stake.Issued() != 0 {
			return fmt.Errorf("chainsim: non-staking engine issued %d stake", c.stake.Issued())
		}
		return nil
	}
	var withheld uint64
	for _, p := range c.pending {
		withheld += p
	}
	if c.stake.Issued()+withheld != c.totalRewards {
		return fmt.Errorf("chainsim: staked %d + withheld %d != rewards %d",
			c.stake.Issued(), withheld, c.totalRewards)
	}
	return nil
}
