package chainsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

// test units: the genesis circulation is 1,000,000 units; a reward of
// 10,000 units is the paper's w = 0.01 relative to initial circulation.
const (
	testCirculation = 1_000_000
	testReward      = 10_000
)

func twoMinerGenesis(a float64) (map[Address]uint64, Address, Address) {
	alice := AddressFromSeed("alice")
	bob := AddressFromSeed("bob")
	ua := uint64(a * testCirculation)
	return map[Address]uint64{alice: ua, bob: testCirculation - ua}, alice, bob
}

func genesisBlock(kind Kind, salt uint64) *Block {
	return &Block{Header: Header{Kind: kind, Nonce: salt}}
}

func newPoWEngine() *PoWEngine {
	alice := AddressFromSeed("alice")
	bob := AddressFromSeed("bob")
	return &PoWEngine{
		Target:      1 << 56, // per-trial success 1/256
		BlockReward: testReward,
		HashPower:   map[Address]uint64{alice: 20, bob: 80},
	}
}

func newMLPoSEngine() *MLPoSEngine {
	// Total stake 1e6 units; per-slot total success ≈ 1/32.
	perUnit := math.Exp2(64) / 32 / testCirculation
	return &MLPoSEngine{
		TargetPerUnit: uint64(perUnit),
		BlockReward:   testReward,
	}
}

func TestPoWMineProducesValidBlock(t *testing.T) {
	e := newPoWEngine()
	gen := genesisBlock(KindPoW, 1)
	ledger := NewLedger(map[Address]uint64{})
	h, err := e.Mine(gen, ledger, []Address{AddressFromSeed("alice"), AddressFromSeed("bob")}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(&h, gen, ledger); err != nil {
		t.Fatalf("mined block fails verification: %v", err)
	}
	if h.Height != 1 || h.ParentHash != gen.Hash() {
		t.Errorf("header linkage wrong: %+v", h)
	}
}

func TestPoWVerifyRejectsTampering(t *testing.T) {
	e := newPoWEngine()
	gen := genesisBlock(KindPoW, 2)
	miners := []Address{AddressFromSeed("alice"), AddressFromSeed("bob")}
	h, err := e.Mine(gen, nil, miners, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Forged nonce: reject unless astronomically lucky.
	bad := h
	bad.Nonce = h.Nonce + 1
	if powDigest(bad.ParentHash, bad.Proposer, bad.Nonce) < e.Target {
		t.Skip("tampered nonce accidentally valid; skip")
	}
	if err := e.Verify(&bad, gen, nil); !errors.Is(err, ErrBadPoW) {
		t.Errorf("tampered nonce err = %v, want ErrBadPoW", err)
	}
	// Wrong parent.
	bad = h
	bad.ParentHash[0] ^= 1
	if err := e.Verify(&bad, gen, nil); !errors.Is(err, ErrBadParent) {
		t.Errorf("wrong parent err = %v, want ErrBadParent", err)
	}
	// Wrong height.
	bad = h
	bad.Height = 9
	if err := e.Verify(&bad, gen, nil); !errors.Is(err, ErrBadHeight) {
		t.Errorf("wrong height err = %v, want ErrBadHeight", err)
	}
	// Inflated reward.
	bad = h
	bad.Reward = h.Reward * 2
	if err := e.Verify(&bad, gen, nil); !errors.Is(err, ErrBadReward) {
		t.Errorf("inflated reward err = %v, want ErrBadReward", err)
	}
	// Wrong kind.
	bad = h
	bad.Kind = KindMLPoS
	if err := e.Verify(&bad, gen, nil); !errors.Is(err, ErrBadKind) {
		t.Errorf("wrong kind err = %v, want ErrBadKind", err)
	}
}

func TestPoWWinFrequencyProportionalToHashPower(t *testing.T) {
	// Alice holds 20% of hash power; across many single-block races her
	// win rate must approach 0.2 (Section 2.1).
	e := newPoWEngine()
	alice := AddressFromSeed("alice")
	miners := []Address{alice, AddressFromSeed("bob")}
	wins := 0
	trials := 600
	for i := 0; i < trials; i++ {
		gen := genesisBlock(KindPoW, uint64(i))
		h, err := e.Mine(gen, nil, miners, rng.Stream(3, i))
		if err != nil {
			t.Fatal(err)
		}
		if h.Proposer == alice {
			wins++
		}
	}
	got := float64(wins) / float64(trials)
	if math.Abs(got-0.2) > 0.05 {
		t.Errorf("PoW win rate = %v, want ~0.2", got)
	}
}

func TestPoWSkipsZeroPowerMiner(t *testing.T) {
	alice := AddressFromSeed("alice")
	bob := AddressFromSeed("bob")
	e := &PoWEngine{Target: 1 << 56, BlockReward: 1, HashPower: map[Address]uint64{alice: 0, bob: 10}}
	h, err := e.Mine(genesisBlock(KindPoW, 1), nil, []Address{alice, bob}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if h.Proposer != bob {
		t.Error("zero-power miner won a block")
	}
}

func TestPoWExhaustionError(t *testing.T) {
	alice := AddressFromSeed("alice")
	e := &PoWEngine{Target: 0, BlockReward: 1, HashPower: map[Address]uint64{alice: 1}, MaxTrials: 100}
	if _, err := e.Mine(genesisBlock(KindPoW, 1), nil, []Address{alice}, rng.New(5)); err == nil {
		t.Error("impossible target should error")
	}
}

func TestMLPoSMineAndVerify(t *testing.T) {
	e := newMLPoSEngine()
	genesis, alice, bob := twoMinerGenesis(0.2)
	ledger := NewLedger(genesis)
	gen := genesisBlock(KindMLPoS, 7)
	h, err := e.Mine(gen, ledger, []Address{alice, bob}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(&h, gen, ledger); err != nil {
		t.Fatalf("mined ML-PoS block fails verification: %v", err)
	}
	if h.Timestamp == 0 {
		t.Error("timestamp not advanced")
	}
}

func TestMLPoSVerifyRejections(t *testing.T) {
	e := newMLPoSEngine()
	genesis, alice, bob := twoMinerGenesis(0.2)
	ledger := NewLedger(genesis)
	gen := genesisBlock(KindMLPoS, 8)
	h, err := e.Mine(gen, ledger, []Address{alice, bob}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Timestamp not after parent.
	bad := h
	bad.Timestamp = 0
	if err := e.Verify(&bad, gen, ledger); !errors.Is(err, ErrBadTimestamp) {
		t.Errorf("stale timestamp err = %v", err)
	}
	// Unregistered proposer.
	bad = h
	bad.Proposer = AddressFromSeed("mallory")
	if err := e.Verify(&bad, gen, ledger); !errors.Is(err, ErrUnknownMiner) {
		t.Errorf("unknown proposer err = %v", err)
	}
	// A proposer whose kernel did not pass at the claimed timestamp:
	// search for a timestamp where the loser's kernel fails.
	loser := alice
	if h.Proposer == alice {
		loser = bob
	}
	for ts := h.Timestamp; ; ts++ {
		if !kernelThresholdMet(kernelDigest(gen.Hash(), loser, ts), e.TargetPerUnit, ledger.Balance(loser)) {
			bad = h
			bad.Proposer = loser
			bad.Timestamp = ts
			if err := e.Verify(&bad, gen, ledger); !errors.Is(err, ErrBadKernel) {
				t.Errorf("failed kernel err = %v, want ErrBadKernel", err)
			}
			break
		}
	}
}

func TestMLPoSWinFrequencyProportionalToStake(t *testing.T) {
	e := newMLPoSEngine()
	genesis, alice, bob := twoMinerGenesis(0.2)
	ledger := NewLedger(genesis)
	wins := 0
	trials := 2000
	for i := 0; i < trials; i++ {
		gen := genesisBlock(KindMLPoS, uint64(1000+i))
		h, err := e.Mine(gen, ledger, []Address{alice, bob}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h.Proposer == alice {
			wins++
		}
	}
	got := float64(wins) / float64(trials)
	// Tie slots break toward the lower digest, which is stake-blind;
	// with per-slot probabilities ~1/32 the deviation is about p/2 ≈ 1%.
	if math.Abs(got-0.2) > 0.03 {
		t.Errorf("ML-PoS win rate = %v, want ~0.2", got)
	}
}

func TestMLPoSNoStakeError(t *testing.T) {
	e := newMLPoSEngine()
	e.MaxSlots = 50
	ledger := NewLedger(map[Address]uint64{})
	if _, err := e.Mine(genesisBlock(KindMLPoS, 1), ledger, []Address{AddressFromSeed("alice")}, nil); err == nil {
		t.Error("no-stake mining should error")
	}
}

func TestSLPoSDeterministicWinner(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &SLPoSEngine{BlockReward: testReward, Stakers: []Address{alice, bob}}
	ledger := NewLedger(genesis)
	gen := genesisBlock(KindSLPoS, 9)
	h1, err := e.Mine(gen, ledger, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := e.Mine(gen, ledger, nil, nil)
	if h1.Proposer != h2.Proposer {
		t.Error("SL-PoS winner not deterministic")
	}
	if err := e.Verify(&h1, gen, ledger); err != nil {
		t.Fatalf("forged block fails verification: %v", err)
	}
}

func TestSLPoSRejectsNonWinnerForgery(t *testing.T) {
	// Failure injection: the losing staker claims the block. Verification
	// must recompute the lottery and reject.
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &SLPoSEngine{BlockReward: testReward, Stakers: []Address{alice, bob}}
	ledger := NewLedger(genesis)
	gen := genesisBlock(KindSLPoS, 10)
	h, err := e.Mine(gen, ledger, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := h
	if bad.Proposer == alice {
		bad.Proposer = bob
	} else {
		bad.Proposer = alice
	}
	if err := e.Verify(&bad, gen, ledger); !errors.Is(err, ErrBadLottery) {
		t.Errorf("forged proposer err = %v, want ErrBadLottery", err)
	}
}

func TestSLPoSWinFrequencyHalfProportional(t *testing.T) {
	// Equation (1): with a = 0.2, Pr[A wins] ≈ a/(2b) = 0.125 — NOT 0.2.
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &SLPoSEngine{BlockReward: testReward, Stakers: []Address{alice, bob}}
	ledger := NewLedger(genesis)
	wins := 0
	trials := 4000
	for i := 0; i < trials; i++ {
		gen := genesisBlock(KindSLPoS, uint64(5000+i))
		h, err := e.Mine(gen, ledger, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h.Proposer == alice {
			wins++
		}
	}
	got := float64(wins) / float64(trials)
	if math.Abs(got-0.125) > 0.02 {
		t.Errorf("SL-PoS win rate = %v, want ~0.125 (= a/2b)", got)
	}
	if math.Abs(got-0.2) < 0.02 {
		t.Error("SL-PoS win rate should NOT be proportional")
	}
}

func TestFSLPoSWinFrequencyProportional(t *testing.T) {
	// The Section 6.2 treatment restores Pr[A wins] = a.
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &FSLPoSEngine{BlockReward: testReward, Stakers: []Address{alice, bob}}
	ledger := NewLedger(genesis)
	wins := 0
	trials := 4000
	for i := 0; i < trials; i++ {
		gen := genesisBlock(KindFSLPoS, uint64(9000+i))
		h, err := e.Mine(gen, ledger, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h.Proposer == alice {
			wins++
		}
	}
	got := float64(wins) / float64(trials)
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("FSL-PoS win rate = %v, want ~0.2", got)
	}
}

func TestFSLPoSRejectsNonWinnerForgery(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.3)
	e := &FSLPoSEngine{BlockReward: testReward, Stakers: []Address{alice, bob}}
	ledger := NewLedger(genesis)
	gen := genesisBlock(KindFSLPoS, 11)
	h, err := e.Mine(gen, ledger, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := h
	if bad.Proposer == alice {
		bad.Proposer = bob
	} else {
		bad.Proposer = alice
	}
	if err := e.Verify(&bad, gen, ledger); !errors.Is(err, ErrBadLottery) {
		t.Errorf("forged proposer err = %v, want ErrBadLottery", err)
	}
}

func TestKernelThresholdMet128Bit(t *testing.T) {
	// threshold = targetPerUnit × stake can exceed 2^64; any digest must
	// then pass.
	if !kernelThresholdMet(math.MaxUint64, math.MaxUint64, 2) {
		t.Error("overflowing threshold should accept all digests")
	}
	if kernelThresholdMet(10, 5, 2) {
		t.Error("digest 10 >= threshold 10 should fail")
	}
	if !kernelThresholdMet(9, 5, 2) {
		t.Error("digest 9 < threshold 10 should pass")
	}
	if kernelThresholdMet(0, 5, 0) {
		t.Error("zero stake should never pass")
	}
}

func TestSlLessMatchesFloatComparison(t *testing.T) {
	r := rng.New(12)
	for i := 0; i < 10000; i++ {
		dA, dB := r.Uint64(), r.Uint64()
		sA := r.Uint64()%1000000 + 1
		sB := r.Uint64()%1000000 + 1
		got := slLess(dA, sA, dB, sB)
		fa := float64(dA) / float64(sA)
		fb := float64(dB) / float64(sB)
		// Only check when floats clearly separate the ratios.
		if math.Abs(fa-fb) > 1e-3*math.Max(fa, fb) {
			if got != (fa < fb) {
				t.Fatalf("slLess(%d/%d, %d/%d) = %v, float says %v", dA, sA, dB, sB, got, fa < fb)
			}
		}
	}
}

func TestFSLTimeDecreasesWithStake(t *testing.T) {
	d := uint64(1) << 60
	if !(fslTime(d, 100) > fslTime(d, 1000)) {
		t.Error("more stake should mean earlier forging time")
	}
	// Near-max digest must not produce Inf/NaN.
	v := fslTime(math.MaxUint64, 10)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("fslTime at max digest = %v", v)
	}
}
