package chainsim

import (
	"errors"
	"fmt"
	"sort"
)

// Ledger is the account state: integer balances in indivisible units, so
// conservation can be checked exactly. For PoS engines a balance is also
// the account's staking power; for PoW it is only spendable reward.
type Ledger struct {
	balances map[Address]uint64
	issued   uint64 // total coinbase issued on top of genesis
	genesis  uint64 // total units allocated at genesis
}

// NewLedger creates a ledger from the genesis allocation.
func NewLedger(genesis map[Address]uint64) *Ledger {
	l := &Ledger{balances: make(map[Address]uint64, len(genesis))}
	for a, v := range genesis {
		l.balances[a] = v
		l.genesis += v
	}
	return l
}

// Balance returns the balance of addr (0 for unknown accounts).
func (l *Ledger) Balance(addr Address) uint64 { return l.balances[addr] }

// Exists reports whether addr holds (or ever held) units.
func (l *Ledger) Exists(addr Address) bool {
	_, ok := l.balances[addr]
	return ok
}

// Credit adds amount to addr and tracks issuance.
func (l *Ledger) Credit(addr Address, amount uint64) {
	l.balances[addr] += amount
	l.issued += amount
}

// TotalSupply returns genesis + issued units.
func (l *Ledger) TotalSupply() uint64 { return l.genesis + l.issued }

// Issued returns the units created by coinbase rewards.
func (l *Ledger) Issued() uint64 { return l.issued }

// CheckConservation verifies that the balance sheet adds up exactly. A
// failure indicates a bug in reward application.
func (l *Ledger) CheckConservation() error {
	var sum uint64
	for _, v := range l.balances {
		sum += v
	}
	if sum != l.TotalSupply() {
		return fmt.Errorf("chainsim: ledger imbalance: balances sum %d, supply %d", sum, l.TotalSupply())
	}
	return nil
}

// Accounts returns all addresses in deterministic (byte) order. Engines
// iterate this for lotteries so results are independent of map order.
func (l *Ledger) Accounts() []Address {
	out := make([]Address, 0, len(l.balances))
	for a := range l.balances {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Clone deep-copies the ledger; validation uses clones to evaluate blocks
// against parent state without mutating the canonical ledger.
func (l *Ledger) Clone() *Ledger {
	c := &Ledger{
		balances: make(map[Address]uint64, len(l.balances)),
		issued:   l.issued,
		genesis:  l.genesis,
	}
	for a, v := range l.balances {
		c.balances[a] = v
	}
	return c
}

// ErrEmptyGenesis reports a genesis allocation with no stake.
var ErrEmptyGenesis = errors.New("chainsim: genesis allocation is empty")
