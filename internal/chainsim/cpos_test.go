package chainsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func newCPoSNetwork(t *testing.T, salt uint64, inflation uint64) *Network {
	t.Helper()
	net, err := NewNetwork(NetworkConfig{
		Engine: &CPoSEngine{
			PerShardReward:    testReward / 32,
			InflationPerEpoch: inflation,
			Shards:            32,
		},
		Miners: []MinerSpec{{Name: "A", Resource: 200_000}, {Name: "B", Resource: 800_000}},
		Salt:   salt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestCPoSMineAndVerify(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &CPoSEngine{PerShardReward: 100, InflationPerEpoch: 1000, Shards: 4,
		Stakers: []Address{alice, bob}}
	ledger := NewLedger(genesis)
	gen := genesisBlock(KindCPoS, 1)
	h, err := e.Mine(gen, ledger, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(&h, gen, ledger); err != nil {
		t.Fatalf("mined C-PoS block fails verification: %v", err)
	}
	// Forged proposer rejected.
	bad := h
	if bad.Proposer == alice {
		bad.Proposer = bob
	} else {
		bad.Proposer = alice
	}
	if err := e.Verify(&bad, gen, ledger); !errors.Is(err, ErrBadLottery) {
		t.Errorf("forged proposer err = %v, want ErrBadLottery", err)
	}
}

func TestCPoSShardWinFrequencyProportional(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &CPoSEngine{PerShardReward: 100, Shards: 4, Stakers: []Address{alice, bob}}
	ledger := NewLedger(genesis)
	wins := 0
	trials := 4000
	for i := 0; i < trials; i++ {
		gen := genesisBlock(KindCPoS, uint64(20000+i))
		h, err := e.Mine(gen, ledger, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h.Proposer == alice {
			wins++
		}
	}
	got := float64(wins) / float64(trials)
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("C-PoS shard win rate = %v, want ~0.2", got)
	}
}

func TestCPoSEpochInflationBoundariesOnly(t *testing.T) {
	genesis, alice, bob := twoMinerGenesis(0.2)
	e := &CPoSEngine{PerShardReward: 100, InflationPerEpoch: 1000, Shards: 4,
		Stakers: []Address{alice, bob}}
	ledger := NewLedger(genesis)
	for h := uint64(0); h <= 9; h++ {
		credits := e.EpochInflation(h, ledger)
		boundary := h != 0 && h%4 == 0
		if boundary && len(credits) == 0 {
			t.Errorf("height %d: expected inflation credits", h)
		}
		if !boundary && credits != nil {
			t.Errorf("height %d: unexpected credits %v", h, credits)
		}
	}
	credits := e.EpochInflation(4, ledger)
	var total uint64
	for _, c := range credits {
		total += c.Amount
	}
	if total != 1000 {
		t.Errorf("inflation total = %d, want exactly 1000", total)
	}
	// Proportionality: A holds 20%, so exactly 200 of 1000.
	for _, c := range credits {
		if c.Addr == alice && c.Amount != 200 {
			t.Errorf("alice inflation = %d, want 200", c.Amount)
		}
		if c.Addr == bob && c.Amount != 800 {
			t.Errorf("bob inflation = %d, want 800", c.Amount)
		}
	}
}

func TestCPoSNetworkConservationAndEpochAccounting(t *testing.T) {
	net := newCPoSNetwork(t, 3, 1000)
	epochs := 5
	if err := net.RunBlocks(32 * epochs); err != nil {
		t.Fatal(err)
	}
	if err := net.Chain.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Total rewards = epochs × (proposer + inflation).
	perEpoch := uint64(32*(testReward/32) + 1000)
	if got := net.Chain.TotalRewards(); got != uint64(epochs)*perEpoch {
		t.Errorf("total rewards = %d, want %d", got, uint64(epochs)*perEpoch)
	}
	// All rewards have been released at the epoch boundary.
	if got := net.Chain.StakeView().TotalSupply(); got != 1_000_000+uint64(epochs)*perEpoch {
		t.Errorf("stake supply = %d", got)
	}
}

func TestCPoSStakeFrozenWithinEpoch(t *testing.T) {
	net := newCPoSNetwork(t, 4, 1000)
	if err := net.RunBlocks(31); err != nil { // one block short of the boundary
		t.Fatal(err)
	}
	if got := net.Chain.StakeView().TotalSupply(); got != 1_000_000 {
		t.Errorf("stake grew mid-epoch: %d", got)
	}
	if err := net.RunBlocks(1); err != nil { // boundary
		t.Fatal(err)
	}
	if got := net.Chain.StakeView().TotalSupply(); got == 1_000_000 {
		t.Error("stake did not release at the epoch boundary")
	}
}

func TestCPoSNetworkFairAndNarrowerThanMLPoS(t *testing.T) {
	// The chainsim C-PoS run should match the analytic result: mean λ_A
	// ~ 0.2 with a much tighter spread than the ML-PoS chainsim network
	// at the same total reward issuance.
	trials := 40
	epochs := 25
	cposL := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		net := newCPoSNetwork(t, uint64(40000+i), 10_000) // v = 1% per epoch? -> v=10000 units
		if err := net.RunBlocks(32 * epochs); err != nil {
			t.Fatal(err)
		}
		cposL = append(cposL, net.Lambda("A"))
	}
	mlL := make([]float64, 0, trials)
	perUnit := uint64(math.Exp2(64) / 32 / testCirculation)
	for i := 0; i < trials; i++ {
		net, err := NewNetwork(NetworkConfig{
			Engine: &MLPoSEngine{TargetPerUnit: perUnit, BlockReward: testReward},
			Miners: []MinerSpec{{Name: "A", Resource: 200_000}, {Name: "B", Resource: 800_000}},
			Salt:   uint64(50000 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.RunBlocks(epochs); err != nil { // same proposer issuance
			t.Fatal(err)
		}
		mlL = append(mlL, net.Lambda("A"))
	}
	meanC := stats.Mean(cposL)
	if math.Abs(meanC-0.2) > 0.05 {
		t.Errorf("C-PoS chainsim mean λ = %v, want ~0.2", meanC)
	}
	if !(stats.Variance(cposL) < stats.Variance(mlL)) {
		t.Errorf("C-PoS variance %v not below ML-PoS %v", stats.Variance(cposL), stats.Variance(mlL))
	}
}

func TestCPoSReplayValidation(t *testing.T) {
	net := newCPoSNetwork(t, 6, 1000)
	if err := net.RunBlocks(96); err != nil {
		t.Fatal(err)
	}
	genesis := map[Address]uint64{
		AddressFromSeed("A"): 200_000,
		AddressFromSeed("B"): 800_000,
	}
	if err := net.Chain.Validate(genesis); err != nil {
		t.Errorf("honest C-PoS chain fails replay: %v", err)
	}
}

func TestCPoSMineErrors(t *testing.T) {
	e := &CPoSEngine{PerShardReward: 100, Shards: 0}
	if _, err := e.Mine(genesisBlock(KindCPoS, 1), NewLedger(nil), nil, nil); err == nil {
		t.Error("zero shards should error")
	}
	e = &CPoSEngine{PerShardReward: 100, Shards: 4, Stakers: []Address{AddressFromSeed("x")}}
	if _, err := e.Mine(genesisBlock(KindCPoS, 1), NewLedger(nil), nil, nil); err == nil {
		t.Error("no stake should error")
	}
}

func TestAllocateProportionalExact(t *testing.T) {
	cases := []struct {
		total   uint64
		weights []uint64
		want    []uint64
	}{
		{1000, []uint64{200, 800}, []uint64{200, 800}},
		{10, []uint64{1, 1, 1}, []uint64{4, 3, 3}}, // remainder to lowest index
		{1, []uint64{1, 1}, []uint64{1, 0}},
		{0, []uint64{5, 5}, []uint64{0, 0}},
		{7, []uint64{0, 7}, []uint64{0, 7}},
		{5, []uint64{0, 0}, []uint64{0, 0}},
	}
	for _, c := range cases {
		got := allocateProportional(c.total, c.weights)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("allocate(%d, %v) = %v, want %v", c.total, c.weights, got, c.want)
				break
			}
		}
	}
}

// Property: allocation conserves the total exactly and never pays
// zero-weight entries, for arbitrary inputs.
func TestQuickAllocateConserves(t *testing.T) {
	f := func(total uint16, w1, w2, w3 uint32) bool {
		weights := []uint64{uint64(w1), uint64(w2), uint64(w3)}
		out := allocateProportional(uint64(total), weights)
		var sum, wsum uint64
		for i, v := range out {
			sum += v
			wsum += weights[i]
			if weights[i] == 0 && v != 0 {
				return false
			}
		}
		if wsum == 0 || total == 0 {
			return sum == 0
		}
		return sum == uint64(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: each allocation is within one unit of the exact proportional
// share (largest-remainder guarantee).
func TestQuickAllocateNearProportional(t *testing.T) {
	f := func(totalRaw uint16, w1, w2 uint16) bool {
		total := uint64(totalRaw) + 1
		weights := []uint64{uint64(w1) + 1, uint64(w2) + 1}
		out := allocateProportional(total, weights)
		sum := weights[0] + weights[1]
		for i := range out {
			exact := float64(total) * float64(weights[i]) / float64(sum)
			if math.Abs(float64(out[i])-exact) >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
