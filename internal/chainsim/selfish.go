package chainsim

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Selfish-mining simulation: the Eyal–Sirer withholding strategy played
// out with real nonce-ground blocks on this package's chain structures.
// One attacker mines on a private branch and publishes it strategically
// — racing a single block when its lead collapses to one, releasing the
// whole branch when threatened at lead two, and bleeding the branch out
// one block at a time above that. internal/attack runs the same state
// machine in the abstract (one Bernoulli draw per event); here every
// event is an actual SHA-256 puzzle race, blocks carry valid hash
// linkage and are re-verified as they settle, and the attacker's network
// advantage γ appears as the per-honest-miner probability of mining on
// the attacker's branch during a race (the race-block producer always
// backs its own block, so the effective advantage is slightly below γ —
// the finite-miner correction the abstract model ignores).

// SelfishConfig assembles a selfish-mining simulation.
type SelfishConfig struct {
	// Target is the per-hash success threshold out of 2^64 (default
	// 1<<57).
	Target uint64
	// BlockReward is the coinbase per canonical block in ledger units.
	BlockReward uint64
	// Miners lists the participants; Resource is hash power.
	Miners []MinerSpec
	// Attacker is the index of the selfish miner.
	Attacker int
	// Gamma is the attacker's network advantage in [0, 1]: the
	// probability that an honest miner mines on the attacker's branch
	// during a 1-vs-1 race.
	Gamma float64
	// Seed drives nonce offsets and race sides.
	Seed uint64
	// Salt differentiates the genesis across Monte-Carlo trials.
	Salt uint64
	// MaxTrials caps each per-miner nonce search (0 = default).
	MaxTrials uint64
	// Delay, when > 0, caps the private lead: the attacker publishes the
	// whole branch as soon as it is Delay blocks ahead (the committed
	// selfish-delay strategy; 1 is behaviourally honest). 0 keeps the
	// classic uncapped withholding.
	Delay int
}

// SelfishSim drives one attacked chain. Use NewSelfishSim, then
// RunEvents to a horizon, reading Lambda at checkpoints.
type SelfishSim struct {
	cfg     SelfishConfig
	miners  []powMiner
	tip     *Block   // settled public canonical tip
	chain   []*Block // settled canonical chain, genesis first
	private []*Block // attacker's withheld branch on top of tip
	racing  bool
	raceSel *Block // published attacker block competing at tip height+1
	raceHon *Block // honest block competing at the same height
	sides   []bool // per miner during a race: true = attacker's branch
	rewards map[Address]uint64
	total   uint64
	orphans int
	r       *rng.Rand
}

// NewSelfishSim validates the configuration and builds the genesis state.
func NewSelfishSim(cfg SelfishConfig) (*SelfishSim, error) {
	if cfg.Target == 0 {
		cfg.Target = 1 << 57
	}
	miners, _, err := buildPoWMiners(cfg.Miners)
	if err != nil {
		return nil, err
	}
	if cfg.Attacker < 0 || cfg.Attacker >= len(miners) {
		return nil, fmt.Errorf("%w: attacker = %d with %d miners", ErrForkSim, cfg.Attacker, len(miners))
	}
	if !(cfg.Gamma >= 0 && cfg.Gamma <= 1) || math.IsNaN(cfg.Gamma) {
		return nil, fmt.Errorf("%w: gamma = %v, need [0, 1]", ErrForkSim, cfg.Gamma)
	}
	if cfg.Delay < 0 {
		return nil, fmt.Errorf("%w: delay = %d, need >= 0", ErrForkSim, cfg.Delay)
	}
	genesis := &Block{Header: Header{Kind: KindPoW, Nonce: cfg.Salt}}
	return &SelfishSim{
		cfg:     cfg,
		miners:  miners,
		tip:     genesis,
		chain:   []*Block{genesis},
		sides:   make([]bool, len(miners)),
		rewards: make(map[Address]uint64, len(miners)),
		r:       rng.New(cfg.Seed),
	}, nil
}

// settle verifies and appends one canonical block.
func (s *SelfishSim) settle(b *Block) error {
	if err := verifyLink(s.tip, b, s.cfg.Target); err != nil {
		return err
	}
	s.chain = append(s.chain, b)
	s.tip = b
	s.rewards[b.Header.Proposer] += b.Header.Reward
	s.total += b.Header.Reward
	return nil
}

// privateTip returns the attacker's current mining tip.
func (s *SelfishSim) privateTip() *Block {
	if n := len(s.private); n > 0 {
		return s.private[n-1]
	}
	if s.racing {
		return s.raceSel
	}
	return s.tip
}

// RunEvents advances the simulation by count block-discovery events.
// Each event is one real puzzle race: every miner grinds from its
// current branch tip — the attacker from its private chain, honest
// miners from the public tip or, during a race, from the side they
// back — and the earliest success decides the state transition.
func (s *SelfishSim) RunEvents(count int) error {
	atk := s.cfg.Attacker
	found, o0 := 0, s.orphans
	defer func() {
		// Each completed event discovers exactly one block (canonical or
		// eventually orphaned).
		simBlocks.Add(int64(found))
		simForks.Add(int64(s.orphans - o0))
	}()
	parents := make([]*Block, len(s.miners))
	for n := 0; n < count; n++ {
		for i := range s.miners {
			switch {
			case i == atk:
				parents[i] = s.privateTip()
			case s.racing && s.sides[i]:
				parents[i] = s.raceSel
			case s.racing:
				parents[i] = s.raceHon
			default:
				parents[i] = s.tip
			}
		}
		b, finder, err := grindBlock(s.miners, parents, s.cfg.Target, s.cfg.MaxTrials, s.cfg.BlockReward, s.r)
		if err != nil {
			return err
		}
		found++
		switch {
		case s.racing:
			// The new block resolves the 1-vs-1 race for whichever side
			// it extends; the losing race block is orphaned.
			winner := s.raceHon
			if finder == atk || s.sides[finder] {
				winner = s.raceSel
			}
			if err := s.settle(winner); err != nil {
				return err
			}
			if err := s.settle(b); err != nil {
				return err
			}
			s.orphans++
			s.racing = false
		case finder == atk:
			// The attacker extends her private branch in silence — until
			// the publish-delay cap, where the whole branch settles: the
			// public tip has not advanced since the fork point, so every
			// private block becomes canonical with no race and no orphans.
			s.private = append(s.private, b)
			if s.cfg.Delay > 0 && len(s.private) >= s.cfg.Delay {
				for _, pb := range s.private {
					if err := s.settle(pb); err != nil {
						return err
					}
				}
				s.private = nil
			}
		default:
			// An honest miner extended the public tip.
			switch lead := len(s.private); lead {
			case 0:
				if err := s.settle(b); err != nil {
					return err
				}
			case 1:
				// The attacker publishes her single private block: race.
				// The honest producer backs its own block; every other
				// honest miner backs the attacker's with probability γ.
				s.racing = true
				s.raceSel, s.raceHon = s.private[0], b
				s.private = nil
				for i := range s.miners {
					switch i {
					case atk:
						s.sides[i] = true
					case finder:
						s.sides[i] = false
					default:
						s.sides[i] = s.r.Float64() < s.cfg.Gamma
					}
				}
			case 2:
				// Threatened at lead two, the attacker releases the whole
				// branch and takes both blocks; the honest block dies.
				for _, pb := range s.private {
					if err := s.settle(pb); err != nil {
						return err
					}
				}
				s.private = nil
				s.orphans++
			default:
				// Lead > 2: publish one block, keep mining privately. The
				// honest block can never reach the canonical chain.
				if err := s.settle(s.private[0]); err != nil {
					return err
				}
				s.private = s.private[1:]
				s.orphans++
			}
		}
	}
	return nil
}

// Lambda returns the named miner's reward fraction, settling in-flight
// state the way internal/attack's Sim.Snapshot does: an unresolved race
// goes to the honest race block (conservative for the attacker) and a
// withheld private branch is flushed to the attacker.
func (s *SelfishSim) Lambda(name string) float64 {
	addr := AddressFromSeed(name)
	num := float64(s.rewards[addr])
	den := float64(s.total)
	w := float64(s.cfg.BlockReward)
	switch {
	case s.racing:
		den += w
		if addr == s.raceHon.Header.Proposer {
			num += w
		}
	case len(s.private) > 0:
		den += w * float64(len(s.private))
		if addr == s.miners[s.cfg.Attacker].addr {
			num += w * float64(len(s.private))
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Height returns the settled canonical chain height.
func (s *SelfishSim) Height() int { return len(s.chain) - 1 }

// Orphans returns the number of blocks discarded in fork resolutions.
func (s *SelfishSim) Orphans() int { return s.orphans }

// Canonical returns the settled chain, genesis first.
func (s *SelfishSim) Canonical() []*Block { return s.chain }
