package chainsim

import (
	"math"
	"testing"

	"repro/internal/attack"
)

// easyTarget keeps nonce searches to a handful of hashes per block so
// fork tests stay fast.
const easyTarget = uint64(1) << 60

func forkMiners() []MinerSpec {
	return []MinerSpec{
		{Name: "whale", Resource: 600},
		{Name: "m1", Resource: 200},
		{Name: "m2", Resource: 100},
		{Name: "m3", Resource: 100},
	}
}

func TestForkSimNoForksMatchesPowerShares(t *testing.T) {
	// With ForkRate 0 the sim is a plain PoW lottery: over many blocks
	// every miner's reward share approaches its power share.
	sim, err := NewForkSim(ForkConfig{
		Target: easyTarget, BlockReward: 5, Miners: forkMiners(), Seed: 3, Salt: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunBlocks(3000); err != nil {
		t.Fatal(err)
	}
	if sim.Orphans() != 0 {
		t.Errorf("fork-free run produced %d orphans", sim.Orphans())
	}
	if sim.Height() != 3000 {
		t.Errorf("height = %d, want 3000", sim.Height())
	}
	if l := sim.Lambda("whale"); math.Abs(l-0.6) > 0.04 {
		t.Errorf("whale lambda = %v, want ≈ 0.6", l)
	}
}

func TestForkSimRichGetRicher(t *testing.T) {
	// At a high fork rate the largest miner's canonical share must exceed
	// its power share, and the closed-form effective-power correction
	// must predict the simulated share — the two are the same model.
	miners := forkMiners()
	shares := []float64{0.6, 0.2, 0.1, 0.1}
	eff, err := attack.ForkEffectivePowers(shares, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Average a few seeds to tighten the sampling noise.
	sum, runs := 0.0, 6
	orphans := 0
	for seed := uint64(1); seed <= uint64(runs); seed++ {
		sim, err := NewForkSim(ForkConfig{
			Target: easyTarget, BlockReward: 5, Miners: miners,
			ForkRate: 0.8, Seed: seed, Salt: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunBlocks(2000); err != nil {
			t.Fatal(err)
		}
		sum += sim.Lambda("whale")
		orphans += sim.Orphans()
	}
	got := sum / float64(runs)
	if got <= shares[0] {
		t.Errorf("whale lambda %v not above power share %v — no fork skew", got, shares[0])
	}
	if math.Abs(got-eff[0]) > 0.02 {
		t.Errorf("simulated whale lambda %v, closed-form effective power %v", got, eff[0])
	}
	if orphans == 0 {
		t.Error("fork rate 0.8 produced no orphans")
	}
}

func TestForkSimDeterministicAndValidChain(t *testing.T) {
	run := func() (*ForkSim, error) {
		sim, err := NewForkSim(ForkConfig{
			Target: easyTarget, BlockReward: 5, Miners: forkMiners(),
			ForkRate: 0.5, Seed: 11, Salt: 7,
		})
		if err != nil {
			return nil, err
		}
		return sim, sim.RunBlocks(400)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"whale", "m1", "m2", "m3"} {
		if a.Lambda(name) != b.Lambda(name) {
			t.Errorf("lambda(%s) not deterministic: %v vs %v", name, a.Lambda(name), b.Lambda(name))
		}
	}
	if a.Orphans() != b.Orphans() {
		t.Errorf("orphans not deterministic: %d vs %d", a.Orphans(), b.Orphans())
	}
	// Every settled block must re-validate as a real PoW chain.
	if err := VerifyCanonical(a.Canonical(), easyTarget); err != nil {
		t.Errorf("canonical chain invalid: %v", err)
	}
}

func TestForkSimRejectsBadConfig(t *testing.T) {
	bad := []ForkConfig{
		{Miners: forkMiners(), ForkRate: -0.1},
		{Miners: forkMiners(), ForkRate: 1},
		{Miners: forkMiners()[:1]},
		{Miners: []MinerSpec{{Name: "a", Resource: 1}, {Name: "a", Resource: 2}}},
		{Miners: []MinerSpec{{Name: "a", Resource: 1}, {Name: "b", Resource: 0}}},
	}
	for i, cfg := range bad {
		if _, err := NewForkSim(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSelfishSimAboveThresholdGains(t *testing.T) {
	// A 40% attacker with γ=0 is above the 1/3 Eyal–Sirer threshold: its
	// revenue share must exceed its power share and track the closed
	// form. γ=0 is exact for the abstract machine (no honest miner ever
	// backs the attacker), so the match is tight.
	want, err := attack.SelfishMining{Alpha: 0.4, Gamma: 0}.Revenue()
	if err != nil {
		t.Fatal(err)
	}
	miners := []MinerSpec{
		{Name: "attacker", Resource: 400},
		{Name: "h1", Resource: 200}, {Name: "h2", Resource: 200},
		{Name: "h3", Resource: 100}, {Name: "h4", Resource: 100},
	}
	sum, runs := 0.0, 4
	orphans := 0
	for seed := uint64(1); seed <= uint64(runs); seed++ {
		sim, err := NewSelfishSim(SelfishConfig{
			Target: easyTarget, BlockReward: 5, Miners: miners,
			Attacker: 0, Gamma: 0, Seed: seed, Salt: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunEvents(4000); err != nil {
			t.Fatal(err)
		}
		sum += sim.Lambda("attacker")
		orphans += sim.Orphans()
	}
	got := sum / float64(runs)
	if got <= 0.4 {
		t.Errorf("attacker lambda %v not above power share 0.4", got)
	}
	if math.Abs(got-want) > 0.03 {
		t.Errorf("simulated revenue %v, closed form %v", got, want)
	}
	if orphans == 0 {
		t.Error("selfish mining produced no orphans")
	}
}

func TestSelfishSimChainStaysValidAndDeterministic(t *testing.T) {
	cfg := SelfishConfig{
		Target: easyTarget, BlockReward: 3,
		Miners: []MinerSpec{
			{Name: "attacker", Resource: 350},
			{Name: "h1", Resource: 250}, {Name: "h2", Resource: 200}, {Name: "h3", Resource: 200},
		},
		Attacker: 0, Gamma: 0.5, Seed: 9, Salt: 2,
	}
	run := func() (*SelfishSim, error) {
		sim, err := NewSelfishSim(cfg)
		if err != nil {
			return nil, err
		}
		return sim, sim.RunEvents(800)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Lambda("attacker") != b.Lambda("attacker") || a.Lambda("h2") != b.Lambda("h2") {
		t.Error("selfish sim not deterministic")
	}
	if err := VerifyCanonical(a.Canonical(), easyTarget); err != nil {
		t.Errorf("canonical chain invalid: %v", err)
	}
	// Lambda is a proper distribution over miners (flush included).
	total := 0.0
	for _, m := range cfg.Miners {
		total += a.Lambda(m.Name)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("lambdas sum to %v", total)
	}
}

func TestSelfishSimRejectsBadConfig(t *testing.T) {
	miners := []MinerSpec{{Name: "a", Resource: 1}, {Name: "b", Resource: 2}}
	bad := []SelfishConfig{
		{Miners: miners, Attacker: -1},
		{Miners: miners, Attacker: 2},
		{Miners: miners, Gamma: -0.5},
		{Miners: miners, Gamma: 1.5},
		{Miners: miners[:1]},
	}
	for i, cfg := range bad {
		if _, err := NewSelfishSim(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
