package chainsim

import "repro/internal/telemetry"

// Process-global simulation totals, ticked on telemetry.Default():
// chainsim has no per-run injection point (simulations are built deep
// inside evaluators), so blocks and fork totals aggregate per process
// and surface on any /metrics endpoint that also serves the default
// registry. Counters are batched per Run* call — one atomic add per
// chunk, invisible next to the SHA-256 grinding each block costs.
var (
	simBlocks = telemetry.Default().Counter("fairness_chainsim_blocks_total")
	simForks  = telemetry.Default().Counter("fairness_chainsim_forks_total")
)
