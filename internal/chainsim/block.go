// Package chainsim is a block-level blockchain network simulator. It
// stands in for the real systems the paper deployed on AWS — Geth
// (PoW), Qtum (ML-PoS) and NXT (SL-PoS) — with actual SHA-256 puzzles,
// hash-linked block headers, full block validation and an integer-exact
// account ledger. The winning statistics of each consensus engine arise
// from the same mechanisms as in the production clients (nonce grinding
// for PoW, per-timestamp staking kernels for ML-PoS, the deterministic
// forging lottery for SL-PoS), so the fairness measurements taken here
// play the role of the paper's "real system experiments".
package chainsim

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind identifies the consensus mechanism a block was produced under.
type Kind uint8

// Consensus kinds.
const (
	KindPoW Kind = iota + 1
	KindMLPoS
	KindSLPoS
	KindFSLPoS
	KindCPoS
)

// String returns the human-readable engine name.
func (k Kind) String() string {
	switch k {
	case KindPoW:
		return "PoW"
	case KindMLPoS:
		return "ML-PoS"
	case KindSLPoS:
		return "SL-PoS"
	case KindFSLPoS:
		return "FSL-PoS"
	case KindCPoS:
		return "C-PoS"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Hash is a 32-byte SHA-256 block or account identifier.
type Hash [32]byte

// Hex returns the first 8 bytes as hex, enough for log readability.
func (h Hash) Hex() string { return fmt.Sprintf("%x", h[:8]) }

// Address identifies a miner account (a hash of its public identity).
type Address [20]byte

// Header is a block header. All consensus checks operate on the header
// alone plus the parent-state stake registry.
type Header struct {
	Height     uint64
	ParentHash Hash
	Kind       Kind
	// Proposer is the miner credited with the block reward.
	Proposer Address
	// Timestamp is the slot at which the block was forged. For ML-PoS it
	// is the kernel timestamp that satisfied the target; for PoW it is
	// the round in which the nonce was found.
	Timestamp uint64
	// Nonce is the PoW solution (unused by PoS kinds).
	Nonce uint64
	// Reward is the coinbase amount in ledger units.
	Reward uint64
}

// enc serialises the header deterministically for hashing.
func (h *Header) enc() []byte {
	buf := make([]byte, 0, 8+32+1+20+8+8+8)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], h.Height)
	buf = append(buf, tmp[:]...)
	buf = append(buf, h.ParentHash[:]...)
	buf = append(buf, byte(h.Kind))
	buf = append(buf, h.Proposer[:]...)
	binary.BigEndian.PutUint64(tmp[:], h.Timestamp)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], h.Nonce)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], h.Reward)
	buf = append(buf, tmp[:]...)
	return buf
}

// HashValue returns the block hash: SHA-256 over the encoded header.
func (h *Header) HashValue() Hash {
	return sha256.Sum256(h.enc())
}

// Block is a header; the simulator carries no user transactions, as the
// paper's fairness measurements depend only on coinbase flows.
type Block struct {
	Header Header
}

// Hash returns the block hash.
func (b *Block) Hash() Hash { return b.Header.HashValue() }

// GenesisParent is the parent hash of the genesis block.
var GenesisParent = Hash{}

// Domain-separation tags keep the three puzzle hash functions disjoint
// even on identical (parent, miner, value) inputs.
const (
	domainPoW     = 0x01
	domainKernel  = 0x02
	domainLottery = 0x03
	domainShard   = 0x04
)

// powDigest computes the PoW puzzle digest for a (parent, miner, nonce)
// triple: the "Hash(nonce, ...)" of Section 2.1, with the parent hash
// playing the role of the previous-block commitment.
func powDigest(parent Hash, miner Address, nonce uint64) uint64 {
	var buf [1 + 32 + 20 + 8]byte
	buf[0] = domainPoW
	copy(buf[1:33], parent[:])
	copy(buf[33:53], miner[:])
	binary.BigEndian.PutUint64(buf[53:], nonce)
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(sum[:8])
}

// kernelDigest computes the ML-PoS staking-kernel digest for a
// (parent, miner, timestamp) triple: the "Hash(time, ...)" of Section 2.2.
// There is deliberately no nonce: one trial per timestamp per miner.
func kernelDigest(parent Hash, miner Address, timestamp uint64) uint64 {
	var buf [1 + 32 + 20 + 8]byte
	buf[0] = domainKernel
	copy(buf[1:33], parent[:])
	copy(buf[33:53], miner[:])
	binary.BigEndian.PutUint64(buf[53:], timestamp)
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(sum[:8])
}

// lotteryDigest computes the SL-PoS forging digest for a (parent, miner)
// pair: the "Hash(pk, ...)" of Section 2.3. Exactly one ticket per miner
// per block — no free variable to grind.
func lotteryDigest(parent Hash, miner Address) uint64 {
	var buf [1 + 32 + 20]byte
	buf[0] = domainLottery
	copy(buf[1:33], parent[:])
	copy(buf[33:53], miner[:])
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(sum[:8])
}

// shardDigest computes the C-PoS proposer-selection digest for a
// (parent, miner) pair: the RANDAO-style per-shard lottery ticket of the
// Ethereum 2.0 model in Section 2.4. The parent hash differs per shard
// block, giving every shard an independent draw.
func shardDigest(parent Hash, miner Address) uint64 {
	var buf [1 + 32 + 20]byte
	buf[0] = domainShard
	copy(buf[1:33], parent[:])
	copy(buf[33:53], miner[:])
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(sum[:8])
}

// AddressFromSeed derives a deterministic miner address from a name.
func AddressFromSeed(name string) Address {
	sum := sha256.Sum256([]byte(name))
	var a Address
	copy(a[:], sum[:20])
	return a
}

// Errors returned by validation.
var (
	ErrBadParent    = errors.New("chainsim: parent hash mismatch")
	ErrBadHeight    = errors.New("chainsim: height mismatch")
	ErrBadPoW       = errors.New("chainsim: PoW digest above target")
	ErrBadKernel    = errors.New("chainsim: staking kernel above stake target")
	ErrBadTimestamp = errors.New("chainsim: timestamp not after parent")
	ErrBadLottery   = errors.New("chainsim: proposer did not hold the winning lottery ticket")
	ErrBadKind      = errors.New("chainsim: block kind does not match engine")
	ErrBadReward    = errors.New("chainsim: coinbase reward mismatch")
	ErrUnknownMiner = errors.New("chainsim: proposer is not a registered staker")
)
