package chainsim

import (
	"testing"
	"testing/quick"
)

func TestHeaderHashDeterministic(t *testing.T) {
	h := Header{Height: 5, Kind: KindPoW, Nonce: 42, Reward: 100}
	if h.HashValue() != h.HashValue() {
		t.Fatal("hash not deterministic")
	}
}

func TestHeaderHashSensitivity(t *testing.T) {
	base := Header{Height: 5, Kind: KindPoW, Nonce: 42, Reward: 100, Timestamp: 7}
	mutations := []func(h *Header){
		func(h *Header) { h.Height++ },
		func(h *Header) { h.ParentHash[0] ^= 1 },
		func(h *Header) { h.Kind = KindMLPoS },
		func(h *Header) { h.Proposer[0] ^= 1 },
		func(h *Header) { h.Timestamp++ },
		func(h *Header) { h.Nonce++ },
		func(h *Header) { h.Reward++ },
	}
	for i, mut := range mutations {
		m := base
		mut(&m)
		if m.HashValue() == base.HashValue() {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindPoW: "PoW", KindMLPoS: "ML-PoS", KindSLPoS: "SL-PoS",
		KindFSLPoS: "FSL-PoS", Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestAddressFromSeedStable(t *testing.T) {
	if AddressFromSeed("alice") != AddressFromSeed("alice") {
		t.Error("address derivation unstable")
	}
	if AddressFromSeed("alice") == AddressFromSeed("bob") {
		t.Error("distinct names collided")
	}
}

func TestDigestsDifferAcrossDomains(t *testing.T) {
	// The three puzzle digests are domain-separated by a tag byte: with
	// identical (parent, miner, value) inputs they must all differ, so a
	// valid PoW solution can never double as a staking-kernel proof.
	var parent Hash
	m := AddressFromSeed("alice")
	pw := powDigest(parent, m, 7)
	kn := kernelDigest(parent, m, 7)
	lt := lotteryDigest(parent, m)
	if pw == kn || pw == lt || kn == lt {
		t.Errorf("digest domains collide: pow=%x kernel=%x lottery=%x", pw, kn, lt)
	}
}

// Property: header hash is injective over nonce for fixed rest (no
// accidental truncation in encoding).
func TestQuickHeaderNonceInjective(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		ha := Header{Nonce: a}
		hb := Header{Nonce: b}
		return ha.HashValue() != hb.HashValue()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHexPrefix(t *testing.T) {
	var h Hash
	h[0] = 0xab
	if got := h.Hex(); got != "ab00000000000000" {
		t.Errorf("Hex = %q", got)
	}
}
