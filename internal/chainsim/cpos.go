package chainsim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/rng"
)

// CPoSEngine is a block-level implementation of the compound PoS model of
// Ethereum 2.0 (Section 2.4) — the real-system experiment the paper could
// not run because Ethereum 2.0 was still unreleased at the time.
//
// An epoch is Shards consecutive blocks, one per shard. Each shard block's
// proposer is selected with probability proportional to stake via an
// exponential-race lottery over the parent hash (the RANDAO analogue) and
// receives PerShardReward. At the end of each epoch, InflationPerEpoch is
// distributed to all registered stakers exactly proportionally to the
// epoch-start staking view (the attester reward).
//
// To reproduce the paper's epoch-start snapshot semantics, run the chain
// with WithholdEvery(Shards): every reward earned inside an epoch joins
// staking power only at the epoch boundary. NewNetwork wires this up
// automatically for C-PoS engines.
type CPoSEngine struct {
	// PerShardReward is the proposer reward of one shard block (w/P).
	PerShardReward uint64
	// InflationPerEpoch is the total attester reward per epoch (v).
	InflationPerEpoch uint64
	// Shards is the number of shard blocks per epoch (32 in Ethereum 2.0).
	Shards uint64
	// Stakers is the registered validator set.
	Stakers []Address
}

// Kind implements Engine.
func (e *CPoSEngine) Kind() Kind { return KindCPoS }

// Reward implements Engine: the per-block proposer reward.
func (e *CPoSEngine) Reward() uint64 { return e.PerShardReward }

// RewardsConveyStake implements Engine.
func (e *CPoSEngine) RewardsConveyStake() bool { return true }

// winnerOf selects the shard proposer: each staker's waiting time is the
// inverse-transform exponential of her shard digest divided by stake, so
// the winner is proportional to stake (the uniform-selection-per-identity
// model of Section 2.4, generalised to arbitrary stake amounts).
func (e *CPoSEngine) winnerOf(parentHash Hash, stake *Ledger) (Address, bool) {
	var winner Address
	best := math.Inf(1)
	found := false
	for _, m := range e.Stakers {
		s := stake.Balance(m)
		if s == 0 {
			continue
		}
		u := float64(shardDigest(parentHash, m)) / float64(math.MaxUint64)
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		t := -math.Log1p(-u) / float64(s)
		if t < best {
			best = t
			winner = m
			found = true
		}
	}
	return winner, found
}

// Mine seals the next shard block deterministically.
func (e *CPoSEngine) Mine(parent *Block, stake *Ledger, _ []Address, _ *rng.Rand) (Header, error) {
	if e.Shards == 0 {
		return Header{}, fmt.Errorf("chainsim: C-PoS needs at least 1 shard")
	}
	winner, ok := e.winnerOf(parent.Hash(), stake)
	if !ok {
		return Header{}, fmt.Errorf("chainsim: C-PoS has no staker with positive stake")
	}
	return Header{
		Height:     parent.Header.Height + 1,
		ParentHash: parent.Hash(),
		Kind:       KindCPoS,
		Proposer:   winner,
		Timestamp:  parent.Header.Timestamp + 1,
		Reward:     e.PerShardReward,
	}, nil
}

// Verify implements Engine: the proposer must be the shard lottery winner.
func (e *CPoSEngine) Verify(h *Header, parent *Block, stake *Ledger) error {
	if err := verifyCommon(e, h, parent); err != nil {
		return err
	}
	winner, ok := e.winnerOf(h.ParentHash, stake)
	if !ok {
		return ErrUnknownMiner
	}
	if winner != h.Proposer {
		return ErrBadLottery
	}
	return nil
}

// EpochInflation implements Inflator: at each epoch boundary (every
// Shards blocks) the attester reward is split across stakers exactly
// proportionally to the current (epoch-start) staking view.
func (e *CPoSEngine) EpochInflation(height uint64, stake *Ledger) []Credit {
	if e.InflationPerEpoch == 0 || e.Shards == 0 || height == 0 || height%e.Shards != 0 {
		return nil
	}
	stakes := make([]uint64, len(e.Stakers))
	for i, m := range e.Stakers {
		stakes[i] = stake.Balance(m)
	}
	amounts := allocateProportional(e.InflationPerEpoch, stakes)
	credits := make([]Credit, 0, len(e.Stakers))
	for i, m := range e.Stakers {
		if amounts[i] > 0 {
			credits = append(credits, Credit{Addr: m, Amount: amounts[i]})
		}
	}
	return credits
}

// allocateProportional splits total into integer amounts proportional to
// weights, conserving the total exactly via the largest-remainder method
// with full 128-bit arithmetic. Zero-weight entries receive nothing; with
// all-zero weights the whole total is dropped (callers treat that as "no
// stakers"). Deterministic: remainder units go to the largest fractional
// parts, ties broken by index.
func allocateProportional(total uint64, weights []uint64) []uint64 {
	out := make([]uint64, len(weights))
	var sum uint64
	for _, w := range weights {
		sum += w
	}
	if sum == 0 || total == 0 {
		return out
	}
	type rem struct {
		idx  int
		frac uint64 // (total*w) mod sum — exact fractional numerator
	}
	var assigned uint64
	rems := make([]rem, 0, len(weights))
	for i, w := range weights {
		if w == 0 {
			continue
		}
		hi, lo := bits.Mul64(total, w)
		quo, mod := bits.Div64(hi, lo, sum) // w ≤ sum ⇒ quo ≤ total: no overflow
		out[i] = quo
		assigned += quo
		rems = append(rems, rem{idx: i, frac: mod})
	}
	left := total - assigned // < number of non-zero weights
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	for k := uint64(0); k < left; k++ {
		out[rems[int(k%uint64(len(rems)))].idx]++
	}
	return out
}
