package chainsim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rng"
)

// P2P network simulation for PoW. The single-Chain Network type resolves
// every block race instantly; real deployments — including the paper's
// two-instance Geth networks — propagate blocks with latency, fork when
// two miners find blocks concurrently, and resolve forks by longest-chain
// adoption. P2PSim models exactly that: round-based mining over each
// node's local view, per-link propagation delay, first-received
// tie-breaking and longest-chain reorganisation, so the fairness
// measurements can be taken under realistic network conditions (and the
// delay ablation quantifies how latency erodes small-miner fairness).

// P2PConfig assembles a proof-of-work peer-to-peer simulation.
type P2PConfig struct {
	// Target is the per-trial PoW success threshold out of 2^64.
	Target uint64
	// BlockReward is the coinbase per block.
	BlockReward uint64
	// Miners lists the nodes; Resource is hash trials per round.
	Miners []MinerSpec
	// DelayRounds is the propagation delay of a block to every peer
	// (0 = next-round delivery).
	DelayRounds int
	// Seed drives all nonce searches.
	Seed uint64
	// Salt differentiates the genesis across trials.
	Salt uint64
	// MaxRounds caps the simulation (safety valve).
	MaxRounds int
}

// p2pNode is one miner's local view.
type p2pNode struct {
	addr  Address
	power uint64
	store map[Hash]*Block
	tip   *Block
	nonce uint64
	rng   *rng.Rand
}

// adopt switches the node's tip to b if it is strictly higher than the
// current tip (first-received wins height ties).
func (n *p2pNode) adopt(b *Block) {
	if b.Header.Height > n.tip.Header.Height {
		n.tip = b
	}
}

type delivery struct {
	round int
	to    int
	block *Block
}

// P2PResult summarises one peer-to-peer run.
type P2PResult struct {
	// Canonical is the winning chain, genesis first.
	Canonical []*Block
	// Produced counts every block mined by any node.
	Produced int
	// Rounds is the number of simulated rounds.
	Rounds  int
	rewards map[Address]uint64
}

// CanonicalHeight returns the height of the winning chain.
func (r *P2PResult) CanonicalHeight() int { return len(r.Canonical) - 1 }

// Orphans returns the number of mined blocks that did not make the
// canonical chain.
func (r *P2PResult) Orphans() int { return r.Produced - r.CanonicalHeight() }

// OrphanRate returns Orphans as a fraction of all produced blocks.
func (r *P2PResult) OrphanRate() float64 {
	if r.Produced == 0 {
		return 0
	}
	return float64(r.Orphans()) / float64(r.Produced)
}

// Lambda returns the named miner's fraction of canonical-chain rewards.
func (r *P2PResult) Lambda(name string) float64 {
	var total uint64
	for _, v := range r.rewards {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(r.rewards[AddressFromSeed(name)]) / float64(total)
}

// ErrP2PConfig reports an invalid P2P configuration.
var ErrP2PConfig = errors.New("chainsim: invalid p2p config")

// RunP2P simulates the network until the canonical chain reaches the
// requested number of blocks (plus final synchronisation), returning the
// canonical chain and fork statistics.
func RunP2P(cfg P2PConfig, blocks int) (*P2PResult, error) {
	if len(cfg.Miners) == 0 {
		return nil, fmt.Errorf("%w: no miners", ErrP2PConfig)
	}
	if blocks <= 0 {
		return nil, fmt.Errorf("%w: blocks = %d", ErrP2PConfig, blocks)
	}
	if cfg.Target == 0 {
		return nil, fmt.Errorf("%w: zero target", ErrP2PConfig)
	}
	if cfg.DelayRounds < 0 {
		return nil, fmt.Errorf("%w: negative delay", ErrP2PConfig)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10_000_000
	}
	genesis := &Block{Header: Header{Kind: KindPoW, Nonce: cfg.Salt}}
	nodes := make([]*p2pNode, len(cfg.Miners))
	for i, m := range cfg.Miners {
		if m.Resource == 0 {
			return nil, fmt.Errorf("%w: miner %q has zero hash power", ErrP2PConfig, m.Name)
		}
		n := &p2pNode{
			addr:  AddressFromSeed(m.Name),
			power: m.Resource,
			store: map[Hash]*Block{genesis.Hash(): genesis},
			tip:   genesis,
			rng:   rng.Stream(cfg.Seed, i),
		}
		n.nonce = n.rng.Uint64() // decorrelate nonce spaces across nodes
		nodes[i] = n
	}

	var queue []delivery
	produced := 0
	round := 0
	for ; round < maxRounds; round++ {
		// Phase 1: deliver due blocks (in deterministic order).
		if len(queue) > 0 {
			var rest []delivery
			due := make([]delivery, 0)
			for _, d := range queue {
				if d.round <= round {
					due = append(due, d)
				} else {
					rest = append(rest, d)
				}
			}
			queue = rest
			sort.SliceStable(due, func(i, j int) bool { return due[i].to < due[j].to })
			for _, d := range due {
				n := nodes[d.to]
				h := &d.block.Header
				parent, known := n.store[h.ParentHash]
				if !known {
					// With uniform delay parents always precede children;
					// an unknown parent is a protocol violation.
					return nil, fmt.Errorf("chainsim: node %d received orphan-parent block at height %d", d.to, h.Height)
				}
				if h.Height != parent.Header.Height+1 || h.Reward != cfg.BlockReward ||
					h.Kind != KindPoW || powDigest(h.ParentHash, h.Proposer, h.Nonce) >= cfg.Target {
					return nil, fmt.Errorf("chainsim: node %d received invalid block at height %d", d.to, h.Height)
				}
				if _, dup := n.store[d.block.Hash()]; !dup {
					n.store[d.block.Hash()] = d.block
					n.adopt(d.block)
				}
			}
		}
		// Phase 2: everyone mines on their local tip.
		done := false
		for i, n := range nodes {
			found := false
			var nonce uint64
			for t := uint64(0); t < n.power; t++ {
				n.nonce++
				if powDigest(n.tip.Hash(), n.addr, n.nonce) < cfg.Target {
					found = true
					nonce = n.nonce
					break
				}
			}
			if !found {
				continue
			}
			b := &Block{Header: Header{
				Height:     n.tip.Header.Height + 1,
				ParentHash: n.tip.Hash(),
				Kind:       KindPoW,
				Proposer:   n.addr,
				Timestamp:  uint64(round),
				Nonce:      nonce,
				Reward:     cfg.BlockReward,
			}}
			produced++
			n.store[b.Hash()] = b
			n.adopt(b)
			for j := range nodes {
				if j != i {
					queue = append(queue, delivery{round: round + 1 + cfg.DelayRounds, to: j, block: b})
				}
			}
			if int(b.Header.Height) >= blocks {
				done = true
			}
		}
		if done {
			break
		}
	}
	if round >= maxRounds {
		return nil, fmt.Errorf("chainsim: p2p simulation exceeded %d rounds", maxRounds)
	}
	// Final synchronisation: flush all pending deliveries so every node
	// sees every block, then pick the highest tip (lowest node index on
	// ties) as canonical.
	for _, d := range queue {
		n := nodes[d.to]
		if _, dup := n.store[d.block.Hash()]; !dup {
			n.store[d.block.Hash()] = d.block
			n.adopt(d.block)
		}
	}
	best := nodes[0]
	for _, n := range nodes[1:] {
		if n.tip.Header.Height > best.tip.Header.Height {
			best = n
		}
	}
	// Walk back to genesis.
	var canonical []*Block
	for b := best.tip; ; {
		canonical = append(canonical, b)
		if b.Header.Height == 0 {
			break
		}
		parent, ok := best.store[b.Header.ParentHash]
		if !ok {
			return nil, errors.New("chainsim: canonical chain has a hole")
		}
		b = parent
	}
	// Reverse to genesis-first order and tally rewards.
	for i, j := 0, len(canonical)-1; i < j; i, j = i+1, j-1 {
		canonical[i], canonical[j] = canonical[j], canonical[i]
	}
	rewards := map[Address]uint64{}
	for _, b := range canonical[1:] {
		rewards[b.Header.Proposer] += b.Header.Reward
	}
	return &P2PResult{
		Canonical: canonical,
		Produced:  produced,
		Rounds:    round + 1,
		rewards:   rewards,
	}, nil
}

// VerifyCanonical re-validates a canonical chain returned by RunP2P:
// heights, parent links and PoW digests. Used by tests and the delay
// experiment as an end-to-end integrity check.
func VerifyCanonical(canonical []*Block, target uint64) error {
	if len(canonical) == 0 {
		return errors.New("chainsim: empty canonical chain")
	}
	for i := 1; i < len(canonical); i++ {
		h := &canonical[i].Header
		prev := canonical[i-1]
		if h.Height != prev.Header.Height+1 {
			return fmt.Errorf("chainsim: height break at %d", i)
		}
		if h.ParentHash != prev.Hash() {
			return fmt.Errorf("chainsim: parent break at %d", i)
		}
		if powDigest(h.ParentHash, h.Proposer, h.Nonce) >= target {
			return fmt.Errorf("chainsim: invalid PoW at %d", i)
		}
	}
	return nil
}
