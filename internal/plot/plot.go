// Package plot renders the paper's figures with the standard library only:
// an ASCII renderer for terminals and an SVG renderer for files. It supports
// line series, shaded percentile bands (the blue 5th–95th regions of
// Figure 2) and horizontal reference lines (the fair-area dashes).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a named sequence of (X, Y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Band is a shaded region between two curves sharing X coordinates, used
// for percentile envelopes.
type Band struct {
	Name string
	X    []float64
	Lo   []float64
	Hi   []float64
}

// HLine is a horizontal reference line (e.g. the fair-area boundaries).
type HLine struct {
	Name string
	Y    float64
}

// Chart is a single figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Bands  []Band
	HLines []HLine

	// Optional fixed Y range; when YMax <= YMin the range is derived
	// from the data.
	YMin, YMax float64
	// LogX renders the X axis on a log10 scale (used by the long-horizon
	// SL-PoS runs of Figure 4).
	LogX bool
}

// AddSeries appends a line series.
func (c *Chart) AddSeries(name string, x, y []float64) {
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// AddBand appends a shaded band.
func (c *Chart) AddBand(name string, x, lo, hi []float64) {
	c.Bands = append(c.Bands, Band{Name: name, X: x, Lo: lo, Hi: hi})
}

// AddHLine appends a horizontal reference line.
func (c *Chart) AddHLine(name string, y float64) {
	c.HLines = append(c.HLines, HLine{Name: name, Y: y})
}

// dataRange computes the plot ranges across all elements.
func (c *Chart) dataRange() (xMin, xMax, yMin, yMax float64) {
	xMin, xMax = math.Inf(1), math.Inf(-1)
	yMin, yMax = math.Inf(1), math.Inf(-1)
	scan := func(xs, ys []float64) {
		for i := range xs {
			if i < len(ys) {
				x, y := xs[i], ys[i]
				if math.IsNaN(x) || math.IsNaN(y) {
					continue
				}
				xMin = math.Min(xMin, x)
				xMax = math.Max(xMax, x)
				yMin = math.Min(yMin, y)
				yMax = math.Max(yMax, y)
			}
		}
	}
	for _, s := range c.Series {
		scan(s.X, s.Y)
	}
	for _, b := range c.Bands {
		scan(b.X, b.Lo)
		scan(b.X, b.Hi)
	}
	for _, h := range c.HLines {
		yMin = math.Min(yMin, h.Y)
		yMax = math.Max(yMax, h.Y)
	}
	if c.YMax > c.YMin {
		yMin, yMax = c.YMin, c.YMax
	}
	if math.IsInf(xMin, 1) { // empty chart
		xMin, xMax, yMin, yMax = 0, 1, 0, 1
	}
	if xMin == xMax {
		xMax = xMin + 1
	}
	if yMin == yMax {
		yMax = yMin + 1
	}
	return xMin, xMax, yMin, yMax
}

func (c *Chart) xt(x float64) float64 {
	if c.LogX && x > 0 {
		return math.Log10(x)
	}
	return x
}

// markers cycle through the series of an ASCII chart.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// ASCII renders the chart as fixed-width text of the given interior size.
// Bands render as ':' fill; series points overwrite band fill; reference
// lines render as '-'.
func (c *Chart) ASCII(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	xMin, xMax, yMin, yMax := c.dataRange()
	txMin, txMax := c.xt(xMin), c.xt(xMax)
	if txMin == txMax {
		txMax = txMin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		f := (c.xt(x) - txMin) / (txMax - txMin)
		i := int(math.Round(f * float64(width-1)))
		return clampInt(i, 0, width-1)
	}
	row := func(y float64) int {
		f := (y - yMin) / (yMax - yMin)
		i := int(math.Round(f * float64(height-1)))
		return height - 1 - clampInt(i, 0, height-1) // invert: top is max
	}
	// Bands first (lowest layer).
	for _, b := range c.Bands {
		for i := range b.X {
			if i >= len(b.Lo) || i >= len(b.Hi) {
				break
			}
			cx := col(b.X[i])
			rLo, rHi := row(b.Lo[i]), row(b.Hi[i])
			if rLo < rHi {
				rLo, rHi = rHi, rLo
			}
			for r := rHi; r <= rLo; r++ {
				grid[r][cx] = ':'
			}
		}
	}
	// Reference lines.
	for _, h := range c.HLines {
		r := row(h.Y)
		for x := 0; x < width; x++ {
			if grid[r][x] == ' ' || grid[r][x] == ':' {
				grid[r][x] = '-'
			}
		}
	}
	// Series on top.
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.Y[i]) {
				continue
			}
			grid[row(s.Y[i])][col(s.X[i])] = m
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop := fmt.Sprintf("%.3g", yMax)
	yBot := fmt.Sprintf("%.3g", yMin)
	lw := len(yTop)
	if len(yBot) > lw {
		lw = len(yBot)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", lw)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", lw, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", lw, yBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, line)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", lw), strings.Repeat("-", width))
	xl, xr := fmt.Sprintf("%.4g", xMin), fmt.Sprintf("%.4g", xMax)
	gap := width - len(xl) - len(xr)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", lw), xl, strings.Repeat(" ", gap), xr)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "x: %s    y: %s\n", c.XLabel, c.YLabel)
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	for _, bd := range c.Bands {
		legend = append(legend, fmt.Sprintf(": %s", bd.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, " | "))
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// svgPalette are the stroke colours for SVG series.
var svgPalette = []string{
	"#d95319", "#0072bd", "#77ac30", "#7e2f8e", "#edb120", "#4dbeee", "#a2142f",
}

// SVG renders the chart as a standalone SVG document of the given pixel
// size. Output is deterministic for a given chart.
func (c *Chart) SVG(width, height int) string {
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	const (
		marginL = 60.0
		marginR = 20.0
		marginT = 30.0
		marginB = 45.0
	)
	plotW := float64(width) - marginL - marginR
	plotH := float64(height) - marginT - marginB
	xMin, xMax, yMin, yMax := c.dataRange()
	txMin, txMax := c.xt(xMin), c.xt(xMax)
	if txMin == txMax {
		txMax = txMin + 1
	}
	px := func(x float64) float64 {
		return marginL + (c.xt(x)-txMin)/(txMax-txMin)*plotW
	}
	py := func(y float64) float64 {
		return marginT + (1-(y-yMin)/(yMax-yMin))*plotH
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, escape(c.Title))
	}
	// Bands beneath everything.
	for _, bd := range c.Bands {
		if len(bd.X) == 0 {
			continue
		}
		var pts []string
		for i := range bd.X {
			if i < len(bd.Hi) {
				pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(bd.X[i]), py(bd.Hi[i])))
			}
		}
		for i := len(bd.X) - 1; i >= 0; i-- {
			if i < len(bd.Lo) {
				pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(bd.X[i]), py(bd.Lo[i])))
			}
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="#aec7e8" fill-opacity="0.6" stroke="none"/>`+"\n", strings.Join(pts, " "))
	}
	// Axes.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="black"/>`+"\n", marginL, marginT, plotW, plotH)
	// Reference lines.
	for _, h := range c.HLines {
		y := py(h.Y)
		fmt.Fprintf(&b, `<line x1="%g" y1="%.2f" x2="%g" y2="%.2f" stroke="black" stroke-dasharray="6,4"/>`+"\n",
			marginL, y, marginL+plotW, y)
	}
	// Series.
	for si, s := range c.Series {
		if len(s.X) == 0 {
			continue
		}
		var pts []string
		for i := range s.X {
			if i < len(s.Y) && !math.IsNaN(s.Y[i]) {
				pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[i]), py(s.Y[i])))
			}
		}
		color := svgPalette[si%len(svgPalette)]
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", strings.Join(pts, " "), color)
	}
	// Tick labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		marginL, float64(height)-marginB+16, fmtTick(xMin))
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW, float64(height)-marginB+16, fmtTick(xMax))
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
		marginL-6, marginT+plotH+4, fmtTick(yMin))
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
		marginL-6, marginT+8, fmtTick(yMax))
	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, float64(height)-8, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, escape(c.YLabel))
	}
	// Legend.
	ly := marginT + 12
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+8, ly, marginL+28, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginL+32, ly+4, escape(s.Name))
		ly += 14
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func fmtTick(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4g", v), "0"), ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// DownsampleIndices returns at most maxPoints indices spread evenly over
// [0, n), always including the first and last. Charts use it to thin long
// per-block traces before rendering.
func DownsampleIndices(n, maxPoints int) []int {
	if n <= 0 {
		return nil
	}
	if maxPoints < 2 {
		maxPoints = 2
	}
	if n <= maxPoints {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, 0, maxPoints)
	seen := map[int]bool{}
	for i := 0; i < maxPoints; i++ {
		j := int(math.Round(float64(i) * float64(n-1) / float64(maxPoints-1)))
		if !seen[j] {
			idx = append(idx, j)
			seen[j] = true
		}
	}
	sort.Ints(idx)
	return idx
}
