package plot

import (
	"math"
	"strings"
	"testing"
)

func lineChart() *Chart {
	c := &Chart{Title: "T", XLabel: "blocks", YLabel: "lambda"}
	c.AddSeries("mean", []float64{0, 1, 2, 3}, []float64{0.1, 0.2, 0.3, 0.4})
	return c
}

func TestASCIIContainsStructure(t *testing.T) {
	out := lineChart().ASCII(40, 10)
	if !strings.Contains(out, "T\n") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("series marker missing")
	}
	if !strings.Contains(out, "legend: * mean") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "x: blocks") {
		t.Error("axis labels missing")
	}
}

func TestASCIIBandAndHLine(t *testing.T) {
	c := &Chart{}
	x := []float64{0, 1, 2}
	c.AddBand("band", x, []float64{0.1, 0.1, 0.1}, []float64{0.5, 0.5, 0.5})
	c.AddHLine("ref", 0.3)
	out := c.ASCII(30, 12)
	if !strings.Contains(out, ":") {
		t.Error("band fill missing")
	}
	if !strings.Contains(out, "-") {
		t.Error("hline missing")
	}
}

func TestASCIIEmptyChartDoesNotPanic(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.ASCII(20, 5)
	if out == "" {
		t.Error("empty chart should still render a frame")
	}
}

func TestASCIITinyDimensionsClamped(t *testing.T) {
	out := lineChart().ASCII(1, 1)
	if len(out) == 0 {
		t.Error("clamped chart should render")
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	c := &Chart{}
	c.AddSeries("flat", []float64{0, 1}, []float64{0.5, 0.5})
	out := c.ASCII(20, 6) // degenerate y-range must not divide by zero
	if !strings.Contains(out, "*") {
		t.Error("flat series missing")
	}
}

func TestASCIISkipsNaN(t *testing.T) {
	c := &Chart{}
	c.AddSeries("s", []float64{0, 1, 2}, []float64{0.1, math.NaN(), 0.3})
	out := c.ASCII(20, 6)
	grid := out[:strings.Index(out, "legend:")]
	count := strings.Count(grid, "*")
	if count != 2 {
		t.Errorf("expected 2 grid markers, got %d", count)
	}
}

func TestFixedYRange(t *testing.T) {
	c := &Chart{YMin: 0, YMax: 1}
	c.AddSeries("s", []float64{0, 1}, []float64{0.4, 0.6})
	out := c.ASCII(20, 6)
	if !strings.Contains(out, "1") || !strings.Contains(out, "0") {
		t.Errorf("fixed range labels missing:\n%s", out)
	}
}

func TestSVGWellFormed(t *testing.T) {
	c := lineChart()
	c.AddBand("b", []float64{0, 1, 2, 3}, []float64{0, 0.1, 0.1, 0.2}, []float64{0.3, 0.4, 0.5, 0.6})
	c.AddHLine("h", 0.25)
	out := c.SVG(400, 300)
	for _, want := range []string{"<svg", "</svg>", "<polyline", "<polygon", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Tag balance.
	if strings.Count(out, "<svg") != strings.Count(out, "</svg>") {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := &Chart{Title: `a<b&"c"`}
	c.AddSeries("s<1>", []float64{0, 1}, []float64{0, 1})
	out := c.SVG(200, 150)
	if strings.Contains(out, "a<b") || strings.Contains(out, "s<1>") {
		t.Error("text not escaped")
	}
	if !strings.Contains(out, "a&lt;b&amp;") {
		t.Error("escape output wrong")
	}
}

func TestSVGDeterministic(t *testing.T) {
	a := lineChart().SVG(300, 200)
	b := lineChart().SVG(300, 200)
	if a != b {
		t.Error("SVG output not deterministic")
	}
}

func TestSVGMinimumSize(t *testing.T) {
	out := lineChart().SVG(1, 1)
	if !strings.Contains(out, `width="100"`) {
		t.Error("minimum width not enforced")
	}
}

func TestLogXMonotonePlacement(t *testing.T) {
	c := &Chart{LogX: true}
	c.AddSeries("s", []float64{1, 10, 100, 1000}, []float64{1, 2, 3, 4})
	out := c.ASCII(40, 8)
	if !strings.Contains(out, "*") {
		t.Error("log-x chart missing markers")
	}
}

func TestDownsampleIndices(t *testing.T) {
	idx := DownsampleIndices(1000, 10)
	if len(idx) > 10 {
		t.Fatalf("too many indices: %d", len(idx))
	}
	if idx[0] != 0 || idx[len(idx)-1] != 999 {
		t.Errorf("endpoints missing: %v", idx)
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("indices not strictly increasing: %v", idx)
		}
	}
}

func TestDownsampleSmallN(t *testing.T) {
	idx := DownsampleIndices(3, 10)
	if len(idx) != 3 || idx[0] != 0 || idx[2] != 2 {
		t.Errorf("small-n downsample = %v", idx)
	}
	if DownsampleIndices(0, 5) != nil {
		t.Error("n=0 should give nil")
	}
}

func TestDownsampleMaxPointsClamped(t *testing.T) {
	idx := DownsampleIndices(100, 1)
	if len(idx) < 2 {
		t.Errorf("maxPoints clamp failed: %v", idx)
	}
}
