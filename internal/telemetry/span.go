package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a span context across
// process hops ("<trace_id>-<span_id>"): the coordinator stamps it on
// every POST /v1/shard claim, and the worker parents its eval span under
// it — one trace_id stitches a job's whole lifetime together.
const TraceHeader = "X-Fairness-Trace"

// SpanContext identifies one span within one trace. The zero value is
// "no context": StartSpan treats it as "mint a fresh trace".
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// HeaderValue encodes the context for the TraceHeader wire format.
func (sc SpanContext) HeaderValue() string { return sc.TraceID + "-" + sc.SpanID }

// ParseTraceHeader decodes a TraceHeader value. Absent or malformed
// headers return ok=false — the receiver then roots a fresh trace, so a
// pre-tracing coordinator still works against a tracing worker.
func ParseTraceHeader(v string) (SpanContext, bool) {
	v = strings.TrimSpace(v)
	traceID, spanID, ok := strings.Cut(v, "-")
	if !ok || traceID == "" || spanID == "" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: traceID, SpanID: spanID}
	return sc, true
}

// newID returns a 16-hex-char random identifier (8 random bytes).
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a monotonic-ish stamp rather than panicking in telemetry.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Span is one timed operation in a trace. Start one with StartSpan and
// finish it with End; the pair emits span_start/span_end NDJSON events
// on the tracer and records the completed span in the flight recorder.
// Durations are monotonic (time.Since on the captured start), immune to
// wall-clock steps. A nil *Span is a no-op whose Context is zero.
type Span struct {
	tracer   *Tracer
	recorder *FlightRecorder
	sc       SpanContext
	parent   string
	service  string
	name     string
	start    time.Time // carries the monotonic clock reading
	attrs    map[string]string
	ended    atomic.Bool
}

// StartSpan opens a span named name under parent (a zero parent mints a
// fresh trace and roots the span). service labels the process role
// ("jobs", "coordinator", "worker"). attrs are alternating key, value
// pairs recorded on the span and emitted with the span_start event. tr
// and rec may each be nil: the span still carries a usable Context, so
// propagation works even when nothing records it.
func StartSpan(tr *Tracer, rec *FlightRecorder, parent SpanContext, service, name string, attrs ...any) *Span {
	s := &Span{
		tracer:   tr,
		recorder: rec,
		sc:       SpanContext{TraceID: parent.TraceID, SpanID: newID()},
		service:  service,
		name:     name,
		start:    time.Now(),
	}
	if parent.Valid() {
		s.parent = parent.SpanID
	} else {
		s.sc.TraceID = newID()
	}
	if len(attrs) > 1 {
		s.attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			s.attrs[fmt.Sprint(attrs[i])] = fmt.Sprint(attrs[i+1])
		}
	}
	ev := make([]any, 0, 8+len(attrs))
	ev = append(ev, "trace_id", s.sc.TraceID, "span_id", s.sc.SpanID,
		"span", name, "service", service)
	if s.parent != "" {
		ev = append(ev, "parent_span_id", s.parent)
	}
	ev = append(ev, attrs...)
	tr.Emit("span_start", ev...)
	return s
}

// Context returns the span's context — what callers propagate to
// children (in-process via ContextWithSpan, cross-process via
// TraceHeader). A nil span returns the zero context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// End closes the span: it emits the span_end event with the monotonic
// duration and records the completed span in the flight recorder. End is
// idempotent — only the first call counts, so requeue/retry paths that
// converge on the same span can never double-close it. attrs are
// appended to the span's recorded attributes.
func (s *Span) End(attrs ...any) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	dur := float64(time.Since(s.start).Microseconds()) / 1000
	if len(attrs) > 1 {
		if s.attrs == nil {
			s.attrs = make(map[string]string, len(attrs)/2)
		}
		for i := 0; i+1 < len(attrs); i += 2 {
			s.attrs[fmt.Sprint(attrs[i])] = fmt.Sprint(attrs[i+1])
		}
	}
	ev := make([]any, 0, 10+len(attrs))
	ev = append(ev, "trace_id", s.sc.TraceID, "span_id", s.sc.SpanID,
		"span", s.name, "service", s.service, "duration_ms", dur)
	if s.parent != "" {
		ev = append(ev, "parent_span_id", s.parent)
	}
	ev = append(ev, attrs...)
	s.tracer.Emit("span_end", ev...)
	s.recorder.Record(SpanRecord{
		TraceID:     s.sc.TraceID,
		SpanID:      s.sc.SpanID,
		ParentID:    s.parent,
		Name:        s.name,
		Service:     s.service,
		StartUnixNS: s.start.UnixNano(),
		DurationMS:  dur,
		Attrs:       s.attrs,
	})
}

// Context plumbing: the active span context and the trace baggage
// (tenant/job labels) ride the context.Context through the in-process
// layers — job manager → runner → cluster coordinator — and cross the
// process boundary as the TraceHeader and the shard request's labels.

type spanCtxKey struct{}
type baggageKey struct{}

// ContextWithSpan returns a context carrying sc as the active span.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom returns the active span context, or the zero context.
func SpanContextFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// ContextWithBaggage returns a context carrying trace baggage — small
// string labels (tenant, job) that downstream spans and pprof profiles
// attach. The map must not be mutated after the call.
func ContextWithBaggage(ctx context.Context, bag map[string]string) context.Context {
	if len(bag) == 0 {
		return ctx
	}
	return context.WithValue(ctx, baggageKey{}, bag)
}

// BaggageFrom returns the context's trace baggage (nil when unset).
func BaggageFrom(ctx context.Context) map[string]string {
	bag, _ := ctx.Value(baggageKey{}).(map[string]string)
	return bag
}
