package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer writes a structured trace-event stream as NDJSON: one JSON
// object per line with a `ts` (RFC 3339, nanoseconds, UTC), an `event`
// name, and the event's attributes as further keys. The sweep engine and
// the cluster emit the per-sweep span sequence through it:
//
//	sweep_start → sweep_eval* → sweep_done                        (local)
//	cluster_start → shard_claim/shard_stream/shard_ack/
//	  shard_requeue/lease_expiry/worker_quarantine* → cluster_done (distributed)
//
// Writes are serialised by a mutex, so events from concurrent workers
// interleave whole lines, never bytes. A nil *Tracer is a no-op, which
// keeps instrumented code free of "is tracing on" branches.
//
// Events the sink cannot take — a marshal failure or a failed/short
// write — are dropped, never blocking the instrumented path; each drop
// ticks the fairness_trace_dropped_total counter (detached unless the
// tracer was built with NewTracerWithMetrics), so silent trace loss is
// visible on /metrics instead of being discovered during an incident.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	dropped *Counter // fairness_trace_dropped_total
}

// NewTracer returns a tracer writing NDJSON events to w. The caller owns
// w's lifetime (the tracer never closes it). Dropped events are counted
// on a detached handle; use NewTracerWithMetrics to expose the count.
func NewTracer(w io.Writer) *Tracer { return NewTracerWithMetrics(w, nil) }

// NewTracerWithMetrics is NewTracer with the tracer's drop counter
// registered as fairness_trace_dropped_total on m (nil m = detached
// handle, same behaviour as NewTracer).
func NewTracerWithMetrics(w io.Writer, m *Registry) *Tracer {
	return &Tracer{w: w, dropped: m.Counter("fairness_trace_dropped_total")}
}

// Dropped returns the number of events lost to marshal/write failures.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Value()
}

// Emit writes one event line. attrs are alternating key, value pairs;
// values marshal as JSON (fmt.Sprint fallback for unmarshalable ones). A
// trailing odd key is ignored. Emit on a nil tracer does nothing.
func (t *Tracer) Emit(event string, attrs ...any) {
	if t == nil {
		return
	}
	obj := make(map[string]any, 2+len(attrs)/2)
	obj["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	obj["event"] = event
	for i := 0; i+1 < len(attrs); i += 2 {
		k, ok := attrs[i].(string)
		if !ok {
			k = fmt.Sprint(attrs[i])
		}
		obj[k] = jsonSafe(attrs[i+1])
	}
	line, err := json.Marshal(obj)
	if err != nil { // near-unreachable: jsonSafe sanitised every value
		t.dropped.Inc()
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	n, err := t.w.Write(line)
	t.mu.Unlock()
	if err != nil || n < len(line) {
		t.dropped.Inc()
	}
}

func jsonSafe(v any) any {
	if _, err := json.Marshal(v); err != nil {
		return fmt.Sprint(v)
	}
	return v
}
