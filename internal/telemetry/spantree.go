package telemetry

import (
	"sort"
)

// SpanNode is one span linked into its trace's tree.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode
}

// SpanTree is the assembled causal tree of one trace. Roots are spans
// without a retained parent — a fully captured trace has exactly one;
// spans whose parent was evicted from a flight recorder surface as
// additional roots rather than disappearing.
type SpanTree struct {
	Roots []*SpanNode
	// Spans counts the distinct spans in the tree.
	Spans int
}

// BuildSpanTree assembles span records (from any number of flight
// recorders — coordinator, workers, job service) into one tree.
// Duplicates by span_id collapse to a single node, so fetching
// overlapping recorders is harmless. Children are ordered by start
// time; roots likewise.
func BuildSpanTree(spans []SpanRecord) *SpanTree {
	nodes := make(map[string]*SpanNode, len(spans))
	order := make([]string, 0, len(spans))
	for _, s := range spans {
		if s.SpanID == "" {
			continue
		}
		if _, seen := nodes[s.SpanID]; seen {
			continue
		}
		nodes[s.SpanID] = &SpanNode{SpanRecord: s}
		order = append(order, s.SpanID)
	}
	t := &SpanTree{Spans: len(nodes)}
	for _, id := range order {
		n := nodes[id]
		if p, ok := nodes[n.ParentID]; ok && n.ParentID != n.SpanID {
			p.Children = append(p.Children, n)
		} else {
			t.Roots = append(t.Roots, n)
		}
	}
	byStart := func(ns []*SpanNode) {
		sort.Slice(ns, func(a, b int) bool { return ns[a].StartUnixNS < ns[b].StartUnixNS })
	}
	byStart(t.Roots)
	for _, n := range nodes {
		byStart(n.Children)
	}
	return t
}

// SelfMS returns the span's self time: its duration minus the union of
// its children's intervals clipped to its own. Concurrent children
// (parallel shard dispatches) overlap; the union counts each covered
// instant once. Note that overlapping SIBLINGS each still count their
// full own duration — for a breakdown that partitions wall time exactly,
// use StageBreakdown, which attributes every instant to one span.
func (n *SpanNode) SelfMS() float64 {
	if len(n.Children) == 0 {
		return n.DurationMS
	}
	start, end := n.StartUnixNS, n.EndUnixNS()
	type iv struct{ a, b int64 }
	ivs := make([]iv, 0, len(n.Children))
	for _, c := range n.Children {
		a, b := c.StartUnixNS, c.EndUnixNS()
		if a < start {
			a = start
		}
		if b > end {
			b = end
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var covered int64
	var curA, curB int64
	haveCur := false
	for _, v := range ivs {
		if !haveCur {
			curA, curB, haveCur = v.a, v.b, true
			continue
		}
		if v.a <= curB {
			if v.b > curB {
				curB = v.b
			}
			continue
		}
		covered += curB - curA
		curA, curB = v.a, v.b
	}
	if haveCur {
		covered += curB - curA
	}
	self := n.DurationMS - float64(covered)/1e6
	if self < 0 {
		return 0
	}
	return self
}

// StageBreakdown attributes every instant of the subtree's wall time to
// exactly one span — the innermost span covering it (depth wins;
// equal-depth overlapping siblings go to the latest-started, a
// deterministic tie-break for concurrent shard dispatches) — and sums
// the attribution by span name. The result is the per-stage view
// (queued / gate_wait / dispatch / eval / stream / merge, plus the root
// span's own scheduling overhead) of one trace's wall time, and because
// the attribution is a partition, the stage totals sum to the root
// span's duration exactly: the breakdown reconciles against the
// measured makespan by construction, never by luck.
func (n *SpanNode) StageBreakdown() map[string]float64 {
	type flat struct {
		a, b  int64
		depth int
		name  string
	}
	var spans []flat
	var walk func(m *SpanNode, depth int, clipA, clipB int64)
	walk = func(m *SpanNode, depth int, clipA, clipB int64) {
		a, b := m.StartUnixNS, m.EndUnixNS()
		if a < clipA {
			a = clipA
		}
		if b > clipB {
			b = clipB
		}
		if b <= a {
			return // clipped away entirely (clock skew / evicted window)
		}
		spans = append(spans, flat{a: a, b: b, depth: depth, name: m.Name})
		for _, c := range m.Children {
			walk(c, depth+1, a, b)
		}
	}
	walk(n, 0, n.StartUnixNS, n.EndUnixNS())

	pts := make([]int64, 0, 2*len(spans))
	for _, s := range spans {
		pts = append(pts, s.a, s.b)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	out := make(map[string]float64)
	for i := 0; i+1 < len(pts); i++ {
		segA, segB := pts[i], pts[i+1]
		if segB <= segA {
			continue
		}
		best := -1
		for j, s := range spans {
			if s.a > segA || s.b < segB {
				continue
			}
			if best < 0 || s.depth > spans[best].depth ||
				(s.depth == spans[best].depth && s.a > spans[best].a) {
				best = j
			}
		}
		if best >= 0 {
			out[spans[best].name] += float64(segB-segA) / 1e6
		}
	}
	return out
}

// CriticalPath returns the chain of spans that determined when the
// subtree rooted at n ended: from n, repeatedly descend into the child
// that finished last. Shortening any span on this path shortens the
// run; spans off it ran in someone else's shadow.
func (n *SpanNode) CriticalPath() []*SpanNode {
	path := []*SpanNode{n}
	cur := n
	for len(cur.Children) > 0 {
		last := cur.Children[0]
		for _, c := range cur.Children[1:] {
			if c.EndUnixNS() > last.EndUnixNS() {
				last = c
			}
		}
		path = append(path, last)
		cur = last
	}
	return path
}
