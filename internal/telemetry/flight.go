package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
)

// SpanRecord is one completed span as the flight recorder stores it and
// GET /v1/traces serves it.
type SpanRecord struct {
	TraceID     string            `json:"trace_id"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_span_id,omitempty"`
	Name        string            `json:"name"`
	Service     string            `json:"service,omitempty"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurationMS  float64           `json:"duration_ms"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// EndUnixNS returns the span's wall-clock end, derived from its start
// and monotonic duration.
func (r SpanRecord) EndUnixNS() int64 {
	return r.StartUnixNS + int64(r.DurationMS*1e6)
}

// defaultFlightCapacity bounds a zero-capacity flight recorder: enough
// for several full cluster runs of recent history, small enough to be
// irrelevant memory-wise (~a few hundred KB).
const defaultFlightCapacity = 4096

// FlightRecorder is a bounded in-memory ring buffer of recently
// completed spans — the post-hoc view behind GET /v1/traces. When the
// ring is full the oldest span is overwritten; Dropped counts the
// overwrites so consumers can tell a short history from a truncated one.
// All methods are safe for concurrent use, and every method on a nil
// *FlightRecorder is a harmless no-op, matching the rest of the
// telemetry layer.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    int // write cursor
	full    bool
	dropped int64
}

// NewFlightRecorder returns a recorder keeping the most recent capacity
// spans (capacity <= 0 picks the default, 4096).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]SpanRecord, 0, capacity)}
}

// Record appends one completed span, evicting the oldest when full.
func (f *FlightRecorder) Record(s SpanRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, s)
		return
	}
	f.buf[f.next] = s
	f.next = (f.next + 1) % cap(f.buf)
	f.full = true
	f.dropped++
}

// Spans returns the recorded spans oldest-first, filtered to one trace
// when traceID is non-empty ("" returns everything retained).
func (f *FlightRecorder) Spans(traceID string) []SpanRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SpanRecord, 0, len(f.buf))
	emit := func(s SpanRecord) {
		if traceID == "" || s.TraceID == traceID {
			out = append(out, s)
		}
	}
	if f.full {
		for _, s := range f.buf[f.next:] {
			emit(s)
		}
		for _, s := range f.buf[:f.next] {
			emit(s)
		}
		return out
	}
	for _, s := range f.buf {
		emit(s)
	}
	return out
}

// Len returns the number of spans currently retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Dropped returns how many spans the ring has overwritten.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// TracesResponse is the GET /v1/traces body.
type TracesResponse struct {
	Spans    []SpanRecord `json:"spans"`
	Count    int          `json:"count"`
	Capacity int          `json:"capacity"`
	Dropped  int64        `json:"dropped"`
}

// TracesHandler serves the flight recorder at GET /v1/traces: all
// retained spans oldest-first, or one trace with ?trace_id=. A nil
// recorder serves an empty span list, so the endpoint can be mounted
// unconditionally.
func TracesHandler(rec *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		spans := rec.Spans(r.URL.Query().Get("trace_id"))
		resp := TracesResponse{Spans: spans, Count: len(spans), Dropped: rec.Dropped()}
		if rec != nil {
			rec.mu.Lock()
			resp.Capacity = cap(rec.buf)
			rec.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
}
