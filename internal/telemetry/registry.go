// Package telemetry is the repo's dependency-free observability layer:
// a process-local metrics registry (counters, gauges, histograms with
// exact snapshot semantics) plus an NDJSON trace-event stream. It is the
// single source of truth every surface reads from — the sweep engine's
// per-backend latency histograms, the cluster's shard-lifecycle
// counters, fairnessd's healthz, the Prometheus-text /metrics endpoints
// and `fairctl top` all observe the same handles.
//
// Design constraints, in order:
//
//   - No dependencies. The exposition format is the Prometheus text
//     format (version 0.0.4), hand-rolled, so any scraper works without
//     pulling a client library into a reproducibility repo.
//   - Cheap on the hot path. Counters and gauges are single atomics;
//     callers resolve handles once (Registry.Counter et al. are
//     registration, not lookup-per-increment). Histograms take a mutex,
//     which is fine at the rates they are observed (per scenario or per
//     shard, not per block).
//   - Nil-safe. Methods on a nil *Registry return detached handles and
//     Emit on a nil *Tracer is a no-op, so instrumented code never
//     branches on "is telemetry configured".
//   - Exact snapshots. WritePrometheus and Snapshot read histograms
//     under their lock: the sum, count and bucket counts in one
//     exposition are mutually consistent, never torn.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency buckets, in seconds. They match the
// Prometheus client defaults with two sub-millisecond buckets prepended,
// because theory-backend evaluations finish in microseconds.
var DefBuckets = []float64{0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing metric. The zero value is ready
// to use; counters obtained from a nil registry work but are detached
// (nothing exposes them).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets and
// tracks their sum. Observations and snapshots are serialised by a
// mutex, so a snapshot is always internally consistent (count equals the
// bucket total, sum matches the observations counted) — the "exact
// snapshot semantics" the sweep latency reconciliation tests rely on.
type Histogram struct {
	mu     sync.Mutex
	uppers []float64 // ascending upper bounds; the +Inf bucket is implicit
	counts []uint64  // len(uppers)+1, per-bucket (not cumulative)
	sum    float64
	count  uint64
}

func newHistogram(buckets []float64) *Histogram {
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	// Drop duplicates and a trailing +Inf (it is implicit).
	dst := uppers[:0]
	for _, u := range uppers {
		if math.IsInf(u, +1) {
			continue
		}
		if len(dst) == 0 || u > dst[len(dst)-1] {
			dst = append(dst, u)
		}
	}
	uppers = dst
	return &Histogram{uppers: uppers, counts: make([]uint64, len(uppers)+1)}
}

// Observe records one value. A value lands in the first bucket whose
// upper bound is >= v (Prometheus `le` semantics); values above every
// bound land in the implicit +Inf bucket.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistSnapshot is a consistent point-in-time copy of a histogram.
type HistSnapshot struct {
	Uppers []float64 // bucket upper bounds, ascending; +Inf is implicit
	Counts []uint64  // per-bucket counts; len(Uppers)+1 with the +Inf bucket last
	Sum    float64
	Count  uint64
}

// Snapshot returns a consistent copy of the histogram's state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Uppers: append([]float64(nil), h.uppers...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// Registry holds named metric series. Handles are registered on first
// use and shared on every later request with the same name and labels;
// asking for an existing name with a different metric kind (or a
// histogram with different buckets) panics, because that is a
// programming error no exposition format can represent.
//
// A nil *Registry is valid everywhere and hands out detached handles, so
// instrumented packages never need a "telemetry configured?" branch.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]string // base name -> "counter" | "gauge" | "histogram"
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    map[string]string{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry. Packages without an
// injection point (internal/montecarlo, internal/chainsim) tick global
// totals here; fairnessd and the fairctl coordinator expose it alongside
// their own registries.
func Default() *Registry { return defaultRegistry }

// Counter returns (registering on first use) the counter with the given
// name and label pairs. Labels are alternating key, value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	id := SeriesID(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "counter")
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge with the given name
// and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	id := SeriesID(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "gauge")
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram with the
// given name, buckets and label pairs. Buckets matter only on first
// registration of a name; a later request with different buckets panics.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return newHistogram(buckets)
	}
	id := SeriesID(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "histogram")
	h, ok := r.hists[id]
	if !ok {
		h = newHistogram(buckets)
		r.hists[id] = h
	} else if got := newHistogram(buckets); len(got.uppers) != len(h.uppers) {
		panic(fmt.Sprintf("telemetry: histogram %q re-registered with different buckets", name))
	}
	return h
}

func (r *Registry) checkKind(name, kind string) {
	if have, ok := r.kinds[name]; ok && have != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, have, kind))
	}
	r.kinds[name] = kind
}

// SeriesID canonicalises a metric name and label pairs into the
// Prometheus series identity `name{k="v",...}` with keys sorted, or bare
// `name` without labels. It is the key format of Snapshot and ParseText.
func SeriesID(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	n := len(labels) / 2 * 2 // ignore a trailing odd key
	type kv struct{ k, v string }
	pairs := make([]kv, 0, n/2)
	for i := 0; i < n; i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Snapshot returns every series as the flat id -> value map the text
// exposition would produce: counters and gauges under their series id,
// histograms as their `_bucket` (cumulative, with `le`), `_sum` and
// `_count` series. It is defined as ParseText(WritePrometheus(...)), so
// the snapshot and the scraped endpoint can never disagree.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return map[string]float64{}
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	m, err := ParseText(strings.NewReader(b.String()))
	if err != nil { // unreachable: we just wrote it
		panic(fmt.Sprintf("telemetry: snapshot round-trip: %v", err))
	}
	return m
}
