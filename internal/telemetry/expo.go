package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4): `# TYPE` headers, one sorted
// `id value` line per series, histograms expanded into cumulative
// `_bucket{le=...}`, `_sum` and `_count` lines. Output is deterministic
// (sorted by metric name, then series id) so golden tests can diff it.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	kinds := make(map[string]string, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for _, name := range names {
		kind := kinds[name]
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, kind)
		for _, id := range sortedSeries(name, kind, counters, gauges, hists) {
			switch kind {
			case "counter":
				fmt.Fprintf(bw, "%s %d\n", id, counters[id].Value())
			case "gauge":
				fmt.Fprintf(bw, "%s %s\n", id, formatFloat(gauges[id].Value()))
			case "histogram":
				writeHistogram(bw, name, id, hists[id].Snapshot())
			}
		}
	}
}

// sortedSeries returns the series ids of one metric name, sorted.
func sortedSeries(name, kind string, counters map[string]*Counter, gauges map[string]*Gauge, hists map[string]*Histogram) []string {
	var ids []string
	match := func(id string) bool {
		return id == name || strings.HasPrefix(id, name+"{")
	}
	switch kind {
	case "counter":
		for id := range counters {
			if match(id) {
				ids = append(ids, id)
			}
		}
	case "gauge":
		for id := range gauges {
			if match(id) {
				ids = append(ids, id)
			}
		}
	case "histogram":
		for id := range hists {
			if match(id) {
				ids = append(ids, id)
			}
		}
	}
	sort.Strings(ids)
	return ids
}

// writeHistogram expands one histogram series into its exposition
// lines. id is `name` or `name{labels}`; the le label is appended to the
// existing labels of each bucket line.
func writeHistogram(w io.Writer, name, id string, s HistSnapshot) {
	labels := "" // inner label text without braces
	if len(id) > len(name) {
		labels = id[len(name)+1 : len(id)-1]
	}
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", name, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", name, labels, le)
	}
	cum := uint64(0)
	for i, upper := range s.Uppers {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s %d\n", withLE(formatFloat(upper)), cum)
	}
	cum += s.Counts[len(s.Uppers)]
	fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), cum)
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseText parses Prometheus text exposition into a flat series-id ->
// value map — the inverse of WritePrometheus for the subset this package
// emits (it ignores comments, blank lines and trailing timestamps). It
// is what `fairctl top`, the golden tests and the CI reconciliation
// scrape with, so the writer and the reader can never drift apart.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The series id may contain spaces inside quoted label values;
		// the value never does. A trailing `value timestamp` pair is
		// legal exposition, so split from the id first.
		idEnd := len(line)
		if i := strings.LastIndexByte(line, '}'); i >= 0 {
			idEnd = i + 1
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			idEnd = i
		}
		id := line[:idEnd]
		rest := strings.Fields(line[idEnd:])
		if len(rest) == 0 {
			return nil, fmt.Errorf("telemetry: exposition line %q has no value", line)
		}
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %q: %w", line, err)
		}
		out[id] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
