package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

// decodeEvents parses a tracer buffer's NDJSON lines.
func decodeEvents(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var events []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, obj)
	}
	return events
}

func TestStartSpanMintsTraceAndParentsChildren(t *testing.T) {
	root := StartSpan(nil, nil, SpanContext{}, "jobs", "job")
	rc := root.Context()
	if !rc.Valid() {
		t.Fatalf("root context invalid: %+v", rc)
	}
	child := StartSpan(nil, nil, rc, "coordinator", "sweep")
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Errorf("child trace %q, want parent's %q", cc.TraceID, rc.TraceID)
	}
	if cc.SpanID == rc.SpanID {
		t.Error("child reused the parent's span id")
	}
	if (&Span{}).Context().Valid() {
		t.Error("zero span context should be invalid")
	}
	var nilSpan *Span
	nilSpan.End() // must not panic
	if nilSpan.Context().Valid() {
		t.Error("nil span context should be zero")
	}
}

func TestSpanEmitsPairedEventsAndRecords(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	rec := NewFlightRecorder(8)
	s := StartSpan(tr, rec, SpanContext{}, "worker", "eval", "shard", "s-1")
	s.End("status", "done")

	events := decodeEvents(t, &buf)
	if len(events) != 2 {
		t.Fatalf("got %d events, want span_start + span_end", len(events))
	}
	start, end := events[0], events[1]
	if start["event"] != "span_start" || end["event"] != "span_end" {
		t.Fatalf("events: %v / %v", start["event"], end["event"])
	}
	if start["trace_id"] != end["trace_id"] || start["span_id"] != end["span_id"] {
		t.Error("span_start/span_end ids disagree")
	}
	if _, ok := end["duration_ms"].(float64); !ok {
		t.Error("span_end missing duration_ms")
	}
	spans := rec.Spans("")
	if len(spans) != 1 {
		t.Fatalf("recorder holds %d spans, want 1", len(spans))
	}
	got := spans[0]
	if got.Name != "eval" || got.Service != "worker" ||
		got.Attrs["shard"] != "s-1" || got.Attrs["status"] != "done" {
		t.Errorf("recorded span: %+v", got)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	rec := NewFlightRecorder(8)
	s := StartSpan(NewTracer(&buf), rec, SpanContext{}, "worker", "eval")
	s.End()
	s.End("second", "call")
	s.End()
	events := decodeEvents(t, &buf)
	ends := 0
	for _, e := range events {
		if e["event"] == "span_end" {
			ends++
		}
	}
	if ends != 1 {
		t.Errorf("span_end emitted %d times, want 1", ends)
	}
	if got := rec.Len(); got != 1 {
		t.Errorf("recorder holds %d spans, want 1", got)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: "aaaa0000bbbb1111", SpanID: "cccc2222dddd3333"}
	got, ok := ParseTraceHeader(sc.HeaderValue())
	if !ok || got != sc {
		t.Errorf("round trip: got %+v ok=%v", got, ok)
	}
	for _, bad := range []string{"", "-abc", "abc-", "justone", "-"} {
		if _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", bad)
		}
	}
}

func TestFlightRecorderRingEvictsOldest(t *testing.T) {
	rec := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		rec.Record(SpanRecord{TraceID: "t", SpanID: string(rune('a' + i)), StartUnixNS: int64(i)})
	}
	if rec.Len() != 4 {
		t.Errorf("Len %d, want 4", rec.Len())
	}
	if rec.Dropped() != 2 {
		t.Errorf("Dropped %d, want 2", rec.Dropped())
	}
	spans := rec.Spans("")
	if len(spans) != 4 || spans[0].SpanID != "c" || spans[3].SpanID != "f" {
		t.Errorf("spans not oldest-first after wrap: %+v", spans)
	}
	rec.Record(SpanRecord{TraceID: "other", SpanID: "x"})
	if got := rec.Spans("other"); len(got) != 1 || got[0].SpanID != "x" {
		t.Errorf("trace filter: %+v", got)
	}
	var nilRec *FlightRecorder
	nilRec.Record(SpanRecord{}) // no-op, must not panic
	if nilRec.Len() != 0 || nilRec.Spans("") != nil {
		t.Error("nil recorder should be empty")
	}
}

func TestTracesHandlerServesAndFilters(t *testing.T) {
	rec := NewFlightRecorder(8)
	rec.Record(SpanRecord{TraceID: "t1", SpanID: "a", Name: "eval"})
	rec.Record(SpanRecord{TraceID: "t2", SpanID: "b", Name: "eval"})
	h := TracesHandler(rec)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/traces", nil))
	var resp TracesResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || len(resp.Spans) != 2 || resp.Capacity != 8 {
		t.Errorf("unfiltered response: %+v", resp)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/traces?trace_id=t2", nil))
	resp = TracesResponse{}
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || resp.Spans[0].SpanID != "b" {
		t.Errorf("filtered response: %+v", resp)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/traces", nil))
	if rr.Code != 405 {
		t.Errorf("POST status %d, want 405", rr.Code)
	}

	rr = httptest.NewRecorder()
	TracesHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/v1/traces", nil))
	resp = TracesResponse{}
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 0 {
		t.Errorf("nil-recorder response: %+v", resp)
	}
}

// failWriter fails (or short-writes) every write.
type failWriter struct{ short bool }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.short {
		return len(p) - 1, nil
	}
	return 0, errors.New("sink gone")
}

func TestTracerCountsDroppedEvents(t *testing.T) {
	m := NewRegistry()
	tr := NewTracerWithMetrics(&failWriter{}, m)
	tr.Emit("sweep_start")
	tr.Emit("sweep_done")
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped %d, want 2", got)
	}
	var expo bytes.Buffer
	m.WritePrometheus(&expo)
	if !strings.Contains(expo.String(), "fairness_trace_dropped_total 2") {
		t.Errorf("exposition missing drop counter:\n%s", expo.String())
	}

	short := NewTracer(&failWriter{short: true})
	short.Emit("x")
	if got := short.Dropped(); got != 1 {
		t.Errorf("short write Dropped %d, want 1", got)
	}

	var ok bytes.Buffer
	good := NewTracer(&ok)
	good.Emit("x")
	if got := good.Dropped(); got != 0 {
		t.Errorf("healthy tracer Dropped %d, want 0", got)
	}
	var nilTr *Tracer
	if nilTr.Dropped() != 0 {
		t.Error("nil tracer Dropped should be 0")
	}
}

func TestBuildSpanTreeSelfTimeAndCriticalPath(t *testing.T) {
	ms := func(v float64) int64 { return int64(v * 1e6) }
	spans := []SpanRecord{
		{TraceID: "t", SpanID: "root", Name: "job", StartUnixNS: 0, DurationMS: 100},
		// Two overlapping children: [10,40] and [30,80] — union covers 70ms.
		{TraceID: "t", SpanID: "c1", ParentID: "root", Name: "dispatch", StartUnixNS: ms(10), DurationMS: 30},
		{TraceID: "t", SpanID: "c2", ParentID: "root", Name: "dispatch", StartUnixNS: ms(30), DurationMS: 50},
		// Grandchild inside c2: [35, 75].
		{TraceID: "t", SpanID: "g1", ParentID: "c2", Name: "eval", StartUnixNS: ms(35), DurationMS: 40},
		// Duplicate of c1 (fetched from a second recorder): must collapse.
		{TraceID: "t", SpanID: "c1", ParentID: "root", Name: "dispatch", StartUnixNS: ms(10), DurationMS: 30},
	}
	tree := BuildSpanTree(spans)
	if tree.Spans != 4 || len(tree.Roots) != 1 {
		t.Fatalf("tree: %d spans, %d roots", tree.Spans, len(tree.Roots))
	}
	root := tree.Roots[0]
	if got := root.SelfMS(); got != 30 { // 100 - union(10..40, 30..80)=70
		t.Errorf("root self time %v, want 30", got)
	}

	// The breakdown must partition the root's duration exactly, even
	// though the two dispatch siblings overlap on [30,40].
	breakdown := root.StageBreakdown()
	var sum float64
	for _, v := range breakdown {
		sum += v
	}
	if sum != root.DurationMS {
		t.Errorf("stages sum to %v, want %v (breakdown %v)", sum, root.DurationMS, breakdown)
	}
	// job self [0,10]+[80,100]=30, dispatch [10,35]+[75,80]... attribution:
	// [10,30] c1, [30,35] c2 (later-started sibling wins), [35,75] g1,
	// [75,80] c2 → dispatch 30, eval 40.
	if breakdown["eval"] != 40 || breakdown["dispatch"] != 30 || breakdown["job"] != 30 {
		t.Errorf("breakdown %v, want job:30 dispatch:30 eval:40", breakdown)
	}

	// Critical path descends into the latest-ending child at each level.
	path := root.CriticalPath()
	var names []string
	for _, n := range path {
		names = append(names, n.SpanID)
	}
	if strings.Join(names, ">") != "root>c2>g1" {
		t.Errorf("critical path %v", names)
	}

	// A span whose parent was evicted surfaces as an extra root.
	orphan := BuildSpanTree([]SpanRecord{
		{TraceID: "t", SpanID: "k", ParentID: "gone", Name: "eval", DurationMS: 5},
	})
	if len(orphan.Roots) != 1 {
		t.Errorf("orphan roots: %d", len(orphan.Roots))
	}
}
