package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the given registries concatenated in Prometheus text
// exposition format. Passing several registries merges expositions —
// fairnessd serves its own registry plus Default() (where montecarlo and
// chainsim tick their global totals); metric names must be disjoint
// across registries, which the fairness_* / simulation-global naming
// scheme guarantees.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r.Method == http.MethodHead {
			return
		}
		for _, reg := range regs {
			reg.WritePrometheus(w)
		}
	})
}

// RegisterPprof mounts net/http/pprof's handlers under /debug/pprof/ on
// mux — the opt-in profiling surface of fairnessd and the fairctl
// coordinator (stdlib pprof registers only on http.DefaultServeMux,
// which neither command uses).
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
