package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryRace hammers one registry from many goroutines —
// concurrent registration, increments, observations and snapshots — so
// `go test -race` proves the hot path is race-free.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			backend := []string{"montecarlo", "theory", "chainsim"}[g%3]
			c := r.Counter("race_scenarios_total", "backend", backend)
			ga := r.Gauge("race_inflight")
			h := r.Histogram("race_seconds", DefBuckets, "backend", backend)
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i) / 1000)
				ga.Add(-1)
				if i%50 == 0 {
					r.Snapshot()
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	total := 0.0
	for id, v := range snap {
		if strings.HasPrefix(id, "race_scenarios_total{") {
			total += v
		}
	}
	if want := float64(goroutines * iters); total != want {
		t.Fatalf("race_scenarios_total = %v, want %v", total, want)
	}
	if got := snap["race_inflight"]; got != 0 {
		t.Fatalf("race_inflight = %v after balanced adds, want 0", got)
	}
}

// TestHistogramBucketBoundaries is the bucket-boundary property test:
// for every configured upper bound u, an observation of exactly u must
// land in the bucket with `le == u` (Prometheus le semantics are
// inclusive), an observation just above must not, and the cumulative
// counts must be non-decreasing and end at the total count.
func TestHistogramBucketBoundaries(t *testing.T) {
	uppers := []float64{0.01, 0.1, 1, 10}
	h := newHistogram(uppers)
	// One observation exactly on each boundary, one just above each
	// boundary, and one far beyond everything.
	for _, u := range uppers {
		h.Observe(u)
		h.Observe(u * (1 + 1e-9))
	}
	h.Observe(1e6)
	s := h.Snapshot()
	if s.Count != uint64(2*len(uppers)+1) {
		t.Fatalf("Count = %d, want %d", s.Count, 2*len(uppers)+1)
	}
	// Per-bucket expectations: bucket i (le = uppers[i]) holds the exact
	// boundary observation of uppers[i] plus the just-above observation
	// of uppers[i-1].
	for i := range uppers {
		want := uint64(1)
		if i > 0 {
			want = 2
		}
		if s.Counts[i] != want {
			t.Errorf("bucket le=%v count = %d, want %d", uppers[i], s.Counts[i], want)
		}
	}
	// +Inf bucket: the just-above observation of the last bound plus the
	// far-out one.
	if inf := s.Counts[len(uppers)]; inf != 2 {
		t.Errorf("+Inf bucket count = %d, want 2", inf)
	}
	// Cumulative form must be non-decreasing and end at Count.
	cum := uint64(0)
	for i, c := range s.Counts {
		next := cum + c
		if next < cum {
			t.Fatalf("bucket %d overflows cumulative count", i)
		}
		cum = next
	}
	if cum != s.Count {
		t.Fatalf("cumulative bucket total = %d, want Count = %d", cum, s.Count)
	}
}

func TestHistogramNormalisesBuckets(t *testing.T) {
	h := newHistogram([]float64{5, 1, 5, math.Inf(1), 2})
	want := []float64{1, 2, 5}
	s := h.Snapshot()
	if len(s.Uppers) != len(want) {
		t.Fatalf("uppers = %v, want %v", s.Uppers, want)
	}
	for i := range want {
		if s.Uppers[i] != want[i] {
			t.Fatalf("uppers = %v, want %v", s.Uppers, want)
		}
	}
}

// TestExpositionRoundTrip checks WritePrometheus output parses back via
// ParseText with every series intact — the invariant `fairctl top`, the
// golden tests and CI reconciliation depend on.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "backend", "montecarlo", "phase", "cold").Add(42)
	r.Counter("rt_total", "backend", "theory", "phase", "warm").Add(7)
	r.Gauge("rt_rate", "worker", `http://h:1/with"quote`).Set(3.5)
	h := r.Histogram("rt_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	got, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	want := map[string]float64{
		`rt_total{backend="montecarlo",phase="cold"}`: 42,
		`rt_total{backend="theory",phase="warm"}`:     7,
		`rt_rate{worker="http://h:1/with\"quote"}`:    3.5,
		`rt_seconds_bucket{le="0.5"}`:                 1,
		`rt_seconds_bucket{le="1"}`:                   2,
		`rt_seconds_bucket{le="+Inf"}`:                3,
		`rt_seconds_sum`:                              3,
		`rt_seconds_count`:                            3,
	}
	for id, v := range want {
		if got[id] != v {
			t.Errorf("%s = %v, want %v (exposition:\n%s)", id, got[id], v, b.String())
		}
	}
	// Snapshot must agree with the scrape by construction.
	snap := r.Snapshot()
	if len(snap) != len(got) {
		t.Errorf("Snapshot has %d series, scrape has %d", len(snap), len(got))
	}
}

// TestNilSafety: a nil registry and tracer must hand out working no-op
// handles so instrumented code can run unconfigured.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("detached counter Value = %d, want 1", c.Value())
	}
	r.Gauge("y").Set(2)
	r.Histogram("z", DefBuckets).Observe(1)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatal("nil registry wrote exposition")
	}
	var tr *Tracer
	tr.Emit("noop", "k", 1) // must not panic
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestTracerEmitsNDJSON(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	tr.Emit("sweep_start", "backend", "montecarlo", "scenarios", 24)
	tr.Emit("sweep_done", "odd_trailing_key")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), b.String())
	}
	if !strings.Contains(lines[0], `"event":"sweep_start"`) ||
		!strings.Contains(lines[0], `"backend":"montecarlo"`) ||
		!strings.Contains(lines[0], `"scenarios":24`) ||
		!strings.Contains(lines[0], `"ts":`) {
		t.Fatalf("line 0 = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"event":"sweep_done"`) {
		t.Fatalf("line 1 = %s", lines[1])
	}
}
