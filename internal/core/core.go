package core
