package core

import (
	"math"
	"testing"

	"repro/internal/game"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestEquitabilityEndpoints(t *testing.T) {
	// Deterministic proportional income: equitability 0.
	det := []float64{0.2, 0.2, 0.2, 0.2}
	if e := Equitability(det, 0.2); e != 0 {
		t.Errorf("deterministic equitability = %v", e)
	}
	// The all-or-nothing lottery at rate a has variance a(1−a):
	// equitability ~1.
	lottery := make([]float64, 1000)
	r := rng.New(2)
	for i := range lottery {
		if r.Bernoulli(0.2) {
			lottery[i] = 1
		}
	}
	if e := Equitability(lottery, 0.2); math.Abs(e-1) > 0.1 {
		t.Errorf("lottery equitability = %v, want ~1", e)
	}
	if !math.IsNaN(Equitability(det, 0)) || !math.IsNaN(Equitability(det[:1], 0.2)) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestMLPoSLimitEquitabilityFormula(t *testing.T) {
	// Beta(a/w, b/w) variance = a(1−a)/(1/w+1) ⇒ equitability w/(1+w).
	for _, w := range []float64{0.001, 0.01, 0.1} {
		limit := MLPoSLimitDist(0.2, w)
		want := limit.Variance() / (0.2 * 0.8)
		if got := MLPoSLimitEquitability(w); math.Abs(got-want) > 1e-12 {
			t.Errorf("w=%v: formula %v vs beta variance %v", w, got, want)
		}
	}
	if !math.IsNaN(MLPoSLimitEquitability(0)) {
		t.Error("w=0 should be NaN")
	}
}

func TestEquitabilityMatchesLimitEmpirically(t *testing.T) {
	// Deep ML-PoS games: empirical equitability approaches w/(1+w).
	a, w := 0.2, 0.05
	trials := 3000
	n := 4000
	samples := make([]float64, trials)
	p := protocol.NewMLPoS(w)
	for i := 0; i < trials; i++ {
		st := game.MustNew(game.TwoMiner(a))
		protocol.Run(p, st, rng.Stream(81, i), n)
		samples[i] = st.Lambda(0)
	}
	got := Equitability(samples, a)
	want := MLPoSLimitEquitability(w)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("empirical equitability %v vs limit %v", got, want)
	}
}

func TestBetaLimitKSAcceptsMLPoS(t *testing.T) {
	// The simulated final λ of a deep ML-PoS game must be statistically
	// indistinguishable from Beta(a/w, b/w).
	a, w := 0.2, 0.05
	trials := 500
	n := 6000
	samples := make([]float64, trials)
	p := protocol.NewMLPoS(w)
	for i := 0; i < trials; i++ {
		st := game.MustNew(game.TwoMiner(a))
		protocol.Run(p, st, rng.Stream(83, i), n)
		samples[i] = st.Lambda(0)
	}
	d, pv := BetaLimitKS(samples, a, w)
	if pv < 0.01 {
		t.Errorf("KS rejected the Polya-urn limit: D=%v p=%v", d, pv)
	}
}

func TestBetaLimitKSRejectsPoW(t *testing.T) {
	// PoW's concentrated λ must be rejected against the wide ML-PoS limit.
	a, w := 0.2, 0.05
	trials := 500
	samples := make([]float64, trials)
	p := protocol.NewPoW(w)
	for i := 0; i < trials; i++ {
		st := game.MustNew(game.TwoMiner(a))
		protocol.Run(p, st, rng.Stream(85, i), 6000)
		samples[i] = st.Lambda(0)
	}
	_, pv := BetaLimitKS(samples, a, w)
	if pv > 1e-6 {
		t.Errorf("KS failed to reject PoW against the beta limit: p=%v", pv)
	}
}
