package core

import (
	"math"
	"testing"

	"repro/internal/game"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestPoWMinBlocksFormula(t *testing.T) {
	// Theorem 4.2 with a=0.2, ε=0.1, δ=0.1: n ≥ ln(20)/(2·0.04·0.01)
	// = ln(20)/0.0008 ≈ 3745.
	n := PoWMinBlocks(0.2, DefaultParams)
	want := int(math.Ceil(math.Log(20) / 0.0008))
	if n != want {
		t.Errorf("PoWMinBlocks = %d, want %d", n, want)
	}
	// Larger share ⇒ smaller horizon (Figure 3(a) ordering).
	if PoWMinBlocks(0.3, DefaultParams) >= n {
		t.Error("richer miner should need fewer blocks")
	}
	if PoWMinBlocks(0, DefaultParams) != -1 || PoWMinBlocks(0.2, Params{}) != -1 {
		t.Error("invalid parameters should return -1")
	}
}

func TestPoWMinBlocksIsSufficientEmpirically(t *testing.T) {
	// The bound is sufficient (not tight): at the bound horizon the
	// exact binomial unfair probability must be ≤ δ.
	a := 0.2
	n := PoWMinBlocks(a, DefaultParams)
	fair := PoWFairProbExact(n, a, DefaultParams.Eps)
	if fair < 1-DefaultParams.Delta {
		t.Errorf("fair prob at bound = %v, want ≥ 0.9", fair)
	}
}

func TestPoWFairProbExactMonotoneInN(t *testing.T) {
	a := 0.2
	prev := 0.0
	for _, n := range []int{100, 500, 1000, 3000, 8000} {
		cur := PoWFairProbExact(n, a, 0.1)
		if cur < prev-0.02 { // allow small lattice wiggle
			t.Errorf("fair prob decreased: n=%d %v < %v", n, cur, prev)
		}
		prev = cur
	}
	if prev < 0.99 {
		t.Errorf("fair prob at n=8000 = %v", prev)
	}
}

func TestMLPoSSufficientCondition(t *testing.T) {
	// Paper Section 5.2: at a=0.2, ε=δ=0.1 the threshold is
	// 2a²ε²/ln(2/δ) ≈ 0.000267, so w=0.01 can never satisfy it (Figure
	// 2(b)) while w=1e-4 with large n does (Figure 5(a)).
	if MLPoSSufficient(5000, 0.01, 0.2, DefaultParams) {
		t.Error("w=0.01 should not satisfy Theorem 4.3 at any n")
	}
	if !MLPoSSufficient(100000, 1e-4, 0.2, DefaultParams) {
		t.Error("w=1e-4, n=1e5 should satisfy Theorem 4.3")
	}
	if MLPoSSufficient(0, 1e-4, 0.2, DefaultParams) || MLPoSSufficient(100, -1, 0.2, DefaultParams) {
		t.Error("degenerate inputs should be false")
	}
}

func TestMLPoSMaxReward(t *testing.T) {
	w := MLPoSMaxReward(100000, 0.2, DefaultParams)
	if w <= 0 {
		t.Fatalf("max reward = %v", w)
	}
	if !MLPoSSufficient(100000, w, 0.2, DefaultParams) {
		t.Error("returned max reward does not satisfy the condition")
	}
	if MLPoSSufficient(100000, w*1.01, 0.2, DefaultParams) {
		t.Error("exceeding max reward should fail the condition")
	}
	// Short horizons admit no reward at all.
	if MLPoSMaxReward(100, 0.2, DefaultParams) != 0 {
		t.Error("n=100 should admit no certified reward")
	}
}

func TestMLPoSLimitDistMatchesSimulation(t *testing.T) {
	// Section 4.3: λ∞ ~ Beta(a/w, b/w). Simulate deep ML-PoS games and
	// compare the empirical fair-area mass with the beta mass.
	a, w := 0.2, 0.05
	limit := MLPoSLimitDist(a, w)
	eps := 0.1
	wantMass := limit.IntervalProb((1-eps)*a, (1+eps)*a)
	trials := 4000
	n := 4000
	in := 0
	p := protocol.NewMLPoS(w)
	for i := 0; i < trials; i++ {
		st := game.MustNew(game.TwoMiner(a))
		protocol.Run(p, st, rng.Stream(31, i), n)
		l := st.Lambda(0)
		if l >= (1-eps)*a && l <= (1+eps)*a {
			in++
		}
	}
	gotMass := float64(in) / float64(trials)
	if math.Abs(gotMass-wantMass) > 0.03 {
		t.Errorf("empirical fair mass %v vs beta limit %v", gotMass, wantMass)
	}
}

func TestMLPoSLimitFairProbMonotoneInW(t *testing.T) {
	// Smaller rewards concentrate the limit (Figure 5(a)).
	prev := 0.0
	for _, w := range []float64{0.1, 0.01, 0.001, 0.0001} {
		cur := MLPoSLimitFairProb(0.2, w, 0.1)
		if cur < prev {
			t.Errorf("fair prob not increasing as w shrinks: w=%v %v < %v", w, cur, prev)
		}
		prev = cur
	}
	if prev < 0.99 {
		t.Errorf("w=1e-4 limit fair prob = %v, want ~1", prev)
	}
}

func TestCPoSSufficientBeatsMLPoS(t *testing.T) {
	// Theorem 4.10: the C-PoS LHS is far below the ML-PoS LHS for the
	// paper's parameters, certifying fairness where ML-PoS fails.
	n, w, v, P := 5000, 0.01, 0.1, 32
	lhsML := MLPoSConditionLHS(n, w)
	lhsC := CPoSConditionLHS(n, w, v, P)
	if !(lhsC < lhsML/100) {
		t.Errorf("C-PoS LHS %v not ≪ ML-PoS LHS %v", lhsC, lhsML)
	}
	if !CPoSSufficient(n, w, v, P, 0.2, DefaultParams) {
		t.Error("paper's C-PoS setting should satisfy Theorem 4.10")
	}
	if CPoSSufficient(n, w, 0, 1, 0.2, DefaultParams) {
		t.Error("degenerate C-PoS (v=0, P=1) should fail like ML-PoS")
	}
}

func TestCPoSDegeneratesToMLPoSCondition(t *testing.T) {
	// With v=0 and P=1 the LHS reduces exactly to 1/n + w.
	n, w := 1000, 0.01
	got := CPoSConditionLHS(n, w, 0, 1)
	want := MLPoSConditionLHS(n, w)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("degenerate C-PoS LHS = %v, ML-PoS LHS = %v", got, want)
	}
}

func TestCPoSConditionMonotonicities(t *testing.T) {
	base := CPoSConditionLHS(1000, 0.01, 0.1, 32)
	if !(CPoSConditionLHS(1000, 0.01, 0.2, 32) < base) {
		t.Error("more inflation should lower the LHS")
	}
	if !(CPoSConditionLHS(1000, 0.01, 0.1, 64) < base) {
		t.Error("more shards should lower the LHS")
	}
	if !(CPoSConditionLHS(1000, 0.02, 0.1, 32) > base) {
		t.Error("bigger proposer reward should raise the LHS")
	}
	if !math.IsNaN(CPoSConditionLHS(0, 0.01, 0.1, 32)) {
		t.Error("n=0 should be NaN")
	}
}

func TestHoeffdingUnfairBoundDominatesExact(t *testing.T) {
	// The bound must upper-bound the exact binomial unfair probability.
	a, eps := 0.2, 0.1
	for _, n := range []int{100, 1000, 5000} {
		bound := HoeffdingUnfairBound(n, a, eps)
		exact := 1 - PoWFairProbExact(n, a, eps)
		if bound < exact-1e-9 {
			t.Errorf("n=%d: Hoeffding bound %v below exact %v", n, bound, exact)
		}
	}
	if HoeffdingUnfairBound(0, a, eps) != 1 {
		t.Error("n=0 bound should be trivial")
	}
}

func TestAzumaBoundsSanity(t *testing.T) {
	// Bounds are probabilities, decrease with easier settings, and the
	// C-PoS bound with v=0,P=1 equals the ML-PoS bound.
	b1 := AzumaUnfairBoundMLPoS(10000, 1e-4, 0.2, 0.1)
	if b1 < 0 || b1 > 1 {
		t.Errorf("bound out of range: %v", b1)
	}
	b2 := AzumaUnfairBoundMLPoS(10000, 0.01, 0.2, 0.1)
	if !(b1 < b2) {
		t.Errorf("smaller reward should tighten the bound: %v vs %v", b1, b2)
	}
	ml := AzumaUnfairBoundMLPoS(5000, 0.01, 0.2, 0.1)
	cp := AzumaUnfairBoundCPoS(5000, 0.01, 0, 1, 0.2, 0.1)
	if math.Abs(ml-cp) > 1e-12 {
		t.Errorf("degenerate C-PoS bound %v != ML-PoS bound %v", cp, ml)
	}
	better := AzumaUnfairBoundCPoS(5000, 0.01, 0.1, 32, 0.2, 0.1)
	if !(better <= ml) {
		t.Errorf("full C-PoS bound %v should beat ML-PoS %v", better, ml)
	}
}

func TestAzumaBoundDominatesEmpiricalMLPoS(t *testing.T) {
	// For a certified setting the empirical unfair probability must stay
	// below the Azuma bound (which in turn is ≤ δ).
	a, w, n := 0.3, 2e-4, 20000
	bound := AzumaUnfairBoundMLPoS(n, w, a, 0.1)
	trials := 400
	unfair := 0
	p := protocol.NewMLPoS(w)
	for i := 0; i < trials; i++ {
		st := game.MustNew(game.TwoMiner(a))
		protocol.Run(p, st, rng.Stream(33, i), n)
		l := st.Lambda(0)
		if l < 0.9*a || l > 1.1*a {
			unfair++
		}
	}
	emp := float64(unfair) / float64(trials)
	if emp > bound+0.02 {
		t.Errorf("empirical unfair %v exceeds Azuma bound %v", emp, bound)
	}
}
