package core

import (
	"math"
	"strings"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{Eps: -0.1, Delta: 0.1},
		{Eps: 0.1, Delta: -0.1},
		{Eps: 0.1, Delta: 1.1},
		{Eps: math.NaN(), Delta: 0.1},
		{Eps: 0.1, Delta: math.NaN()},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestFairArea(t *testing.T) {
	lo, hi := DefaultParams.FairArea(0.2)
	if math.Abs(lo-0.18) > 1e-12 || math.Abs(hi-0.22) > 1e-12 {
		t.Errorf("fair area = [%v, %v], want [0.18, 0.22]", lo, hi)
	}
}

func TestUnfairProbability(t *testing.T) {
	samples := []float64{0.19, 0.20, 0.21, 0.30, 0.05}
	got := DefaultParams.UnfairProbability(samples, 0.2)
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("unfair prob = %v, want 0.4", got)
	}
	if DefaultParams.RobustlyFair(samples, 0.2) {
		t.Error("0.4 unfair should not be robustly fair at delta=0.1")
	}
	fair := []float64{0.19, 0.20, 0.21, 0.205, 0.195, 0.2, 0.2, 0.2, 0.2, 0.22}
	if !DefaultParams.RobustlyFair(fair, 0.2) {
		t.Error("all-in-area samples should be robustly fair")
	}
}

func TestExpectationalGapAndFairness(t *testing.T) {
	samples := []float64{0.1, 0.3} // mean exactly 0.2
	if got := ExpectationalGap(samples, 0.2); got > 1e-12 {
		t.Errorf("gap = %v", got)
	}
	if !ExpectationallyFair(samples, 0.2, 0.01) {
		t.Error("zero-gap samples should be expectationally fair")
	}
	if ExpectationallyFair(samples, 0.5, 0.01) {
		t.Error("gap 0.3 should fail tolerance 0.01")
	}
}

func TestStdErrTolerance(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i % 2) // variance 0.2525...
	}
	tol := StdErrTolerance(samples, 2)
	if !(tol > 0 && tol < 1) {
		t.Errorf("tolerance = %v", tol)
	}
	if !math.IsInf(StdErrTolerance([]float64{1}, 2), 1) {
		t.Error("single sample should give +Inf tolerance")
	}
}

func TestAssessVerdict(t *testing.T) {
	fair := make([]float64, 200)
	for i := range fair {
		fair[i] = 0.2 + 0.005*float64(i%5-2)
	}
	v := DefaultParams.Assess("PoW", fair, 0.2)
	if !v.ExpectationalFair || !v.RobustFair {
		t.Errorf("concentrated samples mis-assessed: %+v", v)
	}
	s := v.String()
	if !strings.Contains(s, "PoW") || !strings.Contains(s, "robust=true") {
		t.Errorf("verdict string = %q", s)
	}
	// A monopolised outcome: λ all zero.
	mono := make([]float64, 50)
	v = DefaultParams.Assess("SL-PoS", mono, 0.2)
	if v.RobustFair {
		t.Error("all-zero λ should not be robustly fair")
	}
	if v.ExpectationalFair {
		t.Error("λ=0 should fail expectational fairness at a=0.2")
	}
}

func TestRanking(t *testing.T) {
	r := Ranking()
	want := []string{"PoW", "C-PoS", "ML-PoS", "SL-PoS"}
	if len(r) != len(want) {
		t.Fatalf("ranking = %v", r)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranking = %v, want %v", r, want)
		}
	}
}
