package core

import (
	"math"

	"repro/internal/dist"
)

// This file implements the sufficient conditions of Theorems 4.2, 4.3 and
// 4.10 and the exact/limit distributions that accompany them.

// threshold2a2e2 returns the right-hand side 2a²ε²/ln(2/δ) shared by all
// three sufficient conditions. NaN for invalid parameters.
func threshold2a2e2(a float64, p Params) float64 {
	if a <= 0 || a >= 1 || p.Eps <= 0 || p.Delta <= 0 || p.Delta >= 1 {
		return math.NaN()
	}
	return 2 * a * a * p.Eps * p.Eps / math.Log(2/p.Delta)
}

// PoWMinBlocks returns the smallest n satisfying Theorem 4.2:
// n ≥ ln(2/δ)/(2a²ε²). PoW preserves (ε,δ)-fairness for any horizon at
// least this long.
func PoWMinBlocks(a float64, p Params) int {
	th := threshold2a2e2(a, p)
	if math.IsNaN(th) || th <= 0 {
		return -1
	}
	return int(math.Ceil(1 / th))
}

// PoWFairProbExact returns the exact probability Δ(ε; n, a) that the PoW
// reward fraction lies in the fair area after n blocks (Section 4.2):
// the binomial interval mass between ⌈n(1−ε)a⌉ and ⌊n(1+ε)a⌋.
func PoWFairProbExact(n int, a float64, eps float64) float64 {
	b := dist.Binomial{N: n, P: a}
	return b.IntervalProb((1-eps)*a, (1+eps)*a)
}

// MLPoSSufficient reports whether (n, w) satisfies Theorem 4.3's
// sufficient condition for ML-PoS: 1/n + w ≤ 2a²ε²/ln(2/δ).
func MLPoSSufficient(n int, w, a float64, p Params) bool {
	if n <= 0 || w <= 0 {
		return false
	}
	th := threshold2a2e2(a, p)
	return !math.IsNaN(th) && 1/float64(n)+w <= th
}

// MLPoSMaxReward returns the largest block reward w for which Theorem 4.3
// can certify (ε,δ)-fairness at horizon n, or 0 when no positive reward
// qualifies. The paper's remedy "less block reward" (Section 6.3) makes
// this the design quantity of interest.
func MLPoSMaxReward(n int, a float64, p Params) float64 {
	if n <= 0 {
		return 0
	}
	th := threshold2a2e2(a, p)
	if math.IsNaN(th) {
		return 0
	}
	w := th - 1/float64(n)
	if w < 0 {
		return 0
	}
	return w
}

// MLPoSLimitDist returns the almost-sure limit distribution of the ML-PoS
// reward fraction: Beta(a/w, (1−a)/w) (Section 4.3, Pólya urn).
func MLPoSLimitDist(a, w float64) dist.Beta {
	return dist.Beta{Alpha: a / w, Beta: (1 - a) / w}
}

// MLPoSLimitFairProb returns the limiting probability that the ML-PoS
// reward fraction lies in the fair area: I_{(1+ε)a}(a/w, b/w) −
// I_{(1−ε)a}(a/w, b/w). If this is below 1−δ, no horizon ever achieves
// (ε,δ)-fairness — the Figure 2(b)/5(a) phenomenon.
func MLPoSLimitFairProb(a, w, eps float64) float64 {
	d := MLPoSLimitDist(a, w)
	return d.IntervalProb((1-eps)*a, (1+eps)*a)
}

// CPoSSufficient reports whether (n, w, v, P) satisfies Theorem 4.10's
// sufficient condition for C-PoS:
// w²(1/n + w + v)/((w+v)²P) ≤ 2a²ε²/ln(2/δ).
func CPoSSufficient(n int, w, v float64, shards int, a float64, p Params) bool {
	lhs := CPoSConditionLHS(n, w, v, shards)
	if math.IsNaN(lhs) {
		return false
	}
	th := threshold2a2e2(a, p)
	return !math.IsNaN(th) && lhs <= th
}

// CPoSConditionLHS returns the left-hand side of Theorem 4.10,
// w²(1/n + w + v)/((w+v)²P). Smaller is more concentrated. With v = 0 and
// P = 1 it degenerates to Theorem 4.3's 1/n + w... scaled identically:
// w²(1/n + w)/w² = 1/n + w.
func CPoSConditionLHS(n int, w, v float64, shards int) float64 {
	if n <= 0 || w <= 0 || v < 0 || shards < 1 {
		return math.NaN()
	}
	wv := w + v
	return w * w * (1/float64(n) + wv) / (wv * wv * float64(shards))
}

// MLPoSConditionLHS returns the left-hand side of Theorem 4.3, 1/n + w.
func MLPoSConditionLHS(n int, w float64) float64 {
	if n <= 0 || w <= 0 {
		return math.NaN()
	}
	return 1/float64(n) + w
}

// HoeffdingUnfairBound returns the Hoeffding upper bound on the PoW unfair
// probability after n blocks (the quantity Theorem 4.2 inverts):
// 2·exp(−2na²ε²).
func HoeffdingUnfairBound(n int, a, eps float64) float64 {
	if n <= 0 {
		return 1
	}
	return dist.HoeffdingTail(float64(n)*a*eps, float64(n))
}

// AzumaUnfairBoundMLPoS returns the Azuma upper bound on the ML-PoS unfair
// probability from the proof of Theorem 4.3: 2·exp(−2a²ε²/(w²·(1+nw)·n /
// (n²w²))) — simplified, 2·exp(−2a²ε² / (w(1/n + w)))·… kept in the exact
// form 2 exp(−2γ²/(w²(1+nw)n)) with γ = nwaε.
func AzumaUnfairBoundMLPoS(n int, w, a, eps float64) float64 {
	if n <= 0 || w <= 0 {
		return 1
	}
	nf := float64(n)
	gamma := nf * w * a * eps
	denom := w * w * (1 + nf*w) * nf
	return dist.AzumaTail(gamma, denom)
}

// AzumaUnfairBoundCPoS returns the Azuma bound from the proof of Theorem
// 4.10: 2 exp(−2γ²P/(w²(1+(w+v)n)n)) with γ = n a (w+v) ε.
func AzumaUnfairBoundCPoS(n int, w, v float64, shards int, a, eps float64) float64 {
	if n <= 0 || w <= 0 || shards < 1 {
		return 1
	}
	nf := float64(n)
	gamma := nf * a * (w + v) * eps
	denom := w * w * (1 + (w+v)*nf) * nf / float64(shards)
	return dist.AzumaTail(gamma, denom)
}
