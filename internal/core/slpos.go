package core

import (
	"math"
	"sort"
)

// This file implements the SL-PoS analysis: the two-miner win probability
// and drift (Figure 1, Equation 2), the stochastic-approximation
// classification of its fixed points (Theorem 4.9), and the multi-miner
// win probability integral (Lemma 6.1).

// SLPoSWinProbTwoMiner returns the probability that a miner holding a
// stake fraction z wins the next SL-PoS block against the complementary
// miner (Equation 1 generalised over z, the function plotted in Figure 1):
//
//	z/(2(1−z))        for z ≤ 1/2,
//	1 − (1−z)/(2z)    for z > 1/2.
func SLPoSWinProbTwoMiner(z float64) float64 {
	switch {
	case z <= 0:
		return 0
	case z >= 1:
		return 1
	case z <= 0.5:
		return z / (2 * (1 - z))
	default:
		return 1 - (1-z)/(2*z)
	}
}

// SLPoSDrift returns f(z) = Pr[win | share z] − z, the drift field of the
// stochastic approximation in the proof of Theorem 4.9 (Equation 2). Its
// zeros are {0, 1/2, 1}.
func SLPoSDrift(z float64) float64 {
	return SLPoSWinProbTwoMiner(z) - z
}

// FixedPoint classifies one zero of a drift field.
type FixedPoint struct {
	Z      float64
	Stable bool
}

// ClassifyFixedPoints locates the zeros of a continuous drift f on [0,1]
// by sign-change scanning plus endpoint checks, and classifies each as
// stable (f crosses from + to −, attracting) or unstable. It is the
// generic tool behind Theorem 4.9; for SL-PoS it returns 0 and 1 stable
// and 1/2 unstable.
func ClassifyFixedPoints(f func(float64) float64, gridN int) []FixedPoint {
	if gridN < 10 {
		gridN = 10
	}
	const h = 1e-6
	var zeros []float64
	// Endpoints count as zeros when the drift vanishes there.
	if math.Abs(f(0)) < 1e-12 {
		zeros = append(zeros, 0)
	}
	prevX := 0.0
	prevV := f(prevX)
	for i := 1; i <= gridN; i++ {
		x := float64(i) / float64(gridN)
		v := f(x)
		if prevV == 0 && prevX != 0 {
			zeros = append(zeros, prevX)
		}
		if prevV*v < 0 {
			lo, hi := prevX, x
			for it := 0; it < 80; it++ {
				mid := (lo + hi) / 2
				if f(lo)*f(mid) <= 0 {
					hi = mid
				} else {
					lo = mid
				}
			}
			zeros = append(zeros, (lo+hi)/2)
		}
		prevX, prevV = x, v
	}
	if math.Abs(f(1)) < 1e-12 {
		zeros = append(zeros, 1)
	}
	sort.Float64s(zeros)
	// Deduplicate near-coincident roots.
	var uniq []float64
	for _, z := range zeros {
		if len(uniq) == 0 || z-uniq[len(uniq)-1] > 1e-6 {
			uniq = append(uniq, z)
		}
	}
	out := make([]FixedPoint, 0, len(uniq))
	for _, z := range uniq {
		out = append(out, FixedPoint{Z: z, Stable: isStable(f, z, h)})
	}
	return out
}

// isStable checks the local sign pattern f(z−h) > 0 > f(z+h) (with
// one-sided checks at the boundary), i.e. f(x)(x−z) < 0 near z — the
// stability criterion of Lemma 4.7.
func isStable(f func(float64) float64, z, h float64) bool {
	leftOK, rightOK := true, true
	if z-h >= 0 {
		leftOK = f(z-h) > 0
	}
	if z+h <= 1 {
		rightOK = f(z+h) < 0
	}
	return leftOK && rightOK
}

// SLPoSFixedPoints returns the classified fixed points of the two-miner
// SL-PoS drift: {0 stable, 1/2 unstable, 1 stable} (Theorem 4.9). The
// stable absorbing states are monopolies.
func SLPoSFixedPoints() []FixedPoint {
	return ClassifyFixedPoints(SLPoSDrift, 1000)
}

// SLPoSWinProbMulti returns each miner's probability of proposing the
// next SL-PoS block given current stake shares (Lemma 6.1):
//
//	Pr[i wins] = ∫₀^{1/S_max} S_i ∏_{j≠i} (1 − S_j z)₊ dz ,
//
// evaluated by composite Simpson integration. Probabilities sum to 1 (ties
// have measure zero) and Pr[i wins] ≤ S_i with equality only when all
// stakes are equal.
func SLPoSWinProbMulti(shares []float64) []float64 {
	m := len(shares)
	out := make([]float64, m)
	if m == 0 {
		return out
	}
	maxS := 0.0
	total := 0.0
	for _, s := range shares {
		if s > maxS {
			maxS = s
		}
		total += s
	}
	if maxS <= 0 {
		return out
	}
	// Normalise defensively so callers can pass unnormalised stakes.
	norm := make([]float64, m)
	for i, s := range shares {
		norm[i] = s / total
	}
	maxS = 0
	for _, s := range norm {
		if s > maxS {
			maxS = s
		}
	}
	upper := 1 / maxS
	const steps = 4000 // even
	hstep := upper / steps
	for i := 0; i < m; i++ {
		if norm[i] <= 0 {
			continue
		}
		integrand := func(z float64) float64 {
			v := norm[i]
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				t := 1 - norm[j]*z
				if t <= 0 {
					return 0
				}
				v *= t
			}
			return v
		}
		sum := integrand(0) + integrand(upper)
		for k := 1; k < steps; k++ {
			z := float64(k) * hstep
			if k%2 == 1 {
				sum += 4 * integrand(z)
			} else {
				sum += 2 * integrand(z)
			}
		}
		out[i] = sum * hstep / 3
	}
	return out
}
