package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/game"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestMeanFieldEquilibriumAtHalf(t *testing.T) {
	// a = 1/2 sits on the unstable fixed point: the fluid limit stays.
	m := SLPoSMeanField(0.01)
	if z := m.ShareAt(0.5, 10000); math.Abs(z-0.5) > 1e-9 {
		t.Errorf("share at 0.5 drifted to %v", z)
	}
}

func TestMeanFieldZeroDriftKeepsShare(t *testing.T) {
	// Win-proportional protocols have zero drift: z stays at a.
	m := MeanField{Drift: func(float64) float64 { return 0 }, W: 0.01}
	if z := m.ShareAt(0.2, 5000); z != 0.2 {
		t.Errorf("zero-drift share = %v", z)
	}
}

func TestMeanFieldMonotoneCollapse(t *testing.T) {
	m := SLPoSMeanField(0.01)
	prev := 0.2
	for _, n := range []int{100, 1000, 5000, 20000} {
		z := m.ShareAt(0.2, n)
		if z >= prev {
			t.Fatalf("share not decreasing: z(%d) = %v >= %v", n, z, prev)
		}
		prev = z
	}
	if prev > 0.05 {
		t.Errorf("share after 20000 blocks = %v, want near 0", prev)
	}
}

func TestMeanFieldSharePathMatchesShareAt(t *testing.T) {
	m := SLPoSMeanField(0.02)
	cps := []int{10, 100, 1000}
	path := m.SharePath(0.3, cps)
	for i, n := range cps {
		if got := m.ShareAt(0.3, n); math.Abs(got-path[i]) > 1e-12 {
			t.Errorf("path[%d] = %v, ShareAt = %v", i, path[i], got)
		}
	}
}

func TestMeanFieldTracksSimulationMedian(t *testing.T) {
	// The fluid limit should track the MEDIAN simulated share of the
	// SL-PoS game (the mean is polluted by trajectories that crossed
	// 1/2). a = 0.2, w = 0.01, checkpoints across the collapse.
	a, w := 0.2, 0.01
	m := SLPoSMeanField(w)
	cps := []int{500, 2000, 8000}
	predicted := m.SharePath(a, cps)

	trials := 400
	finals := make([][]float64, len(cps))
	p := protocol.NewSLPoS(w)
	for i := 0; i < trials; i++ {
		st := game.MustNew(game.TwoMiner(a))
		r := rng.Stream(71, i)
		prev := 0
		for ci, n := range cps {
			protocol.Run(p, st, r, n-prev)
			prev = n
			finals[ci] = append(finals[ci], st.Share(0))
		}
	}
	for ci := range cps {
		sort.Float64s(finals[ci])
		median := finals[ci][trials/2]
		if math.Abs(median-predicted[ci]) > 0.05 {
			t.Errorf("n=%d: mean-field %v vs simulated median %v", cps[ci], predicted[ci], median)
		}
	}
}

func TestMeanFieldLambda(t *testing.T) {
	m := SLPoSMeanField(0.01)
	// The cumulative λ averages over history, so during the collapse it
	// stays above the instantaneous win rate while trailing toward it.
	l := m.LambdaAt(0.2, 20000)
	z := m.ShareAt(0.2, 20000)
	if !(l > SLPoSWinProbTwoMiner(z)) {
		t.Errorf("cumulative λ %v should exceed the current win rate %v", l, SLPoSWinProbTwoMiner(z))
	}
	if l > 0.15 {
		t.Errorf("λ after 20000 blocks = %v, want well below 0.2", l)
	}
	if !math.IsNaN(m.LambdaAt(0.2, 0)) {
		t.Error("λ at n=0 should be NaN")
	}
}

func TestSLPoSHalfLife(t *testing.T) {
	// Larger rewards collapse faster (Figure 4(b) ordering).
	hlSmall := SLPoSHalfLife(0.2, 0.001, 1_000_000)
	hlBig := SLPoSHalfLife(0.2, 0.1, 1_000_000)
	if hlSmall <= 0 || hlBig <= 0 {
		t.Fatalf("half-lives not found: %d, %d", hlSmall, hlBig)
	}
	if !(hlBig < hlSmall) {
		t.Errorf("w=0.1 half-life %d should be shorter than w=0.001's %d", hlBig, hlSmall)
	}
	// Degenerate inputs.
	if SLPoSHalfLife(0.5, 0.01, 1000) != -1 {
		t.Error("a=0.5 should never halve")
	}
	if SLPoSHalfLife(0.2, 0, 1000) != -1 {
		t.Error("w=0 should be rejected")
	}
	if SLPoSHalfLife(0.2, 0.000001, 100) != -1 {
		t.Error("tiny budget should report not-found")
	}
}

func TestMeanFieldDegenerateCheckpoints(t *testing.T) {
	m := SLPoSMeanField(0.01)
	if out := m.SharePath(0.2, nil); len(out) != 0 {
		t.Error("empty checkpoints should give empty path")
	}
	out := m.SharePath(0.2, []int{0})
	if out[0] != 0.2 {
		t.Errorf("checkpoint 0 share = %v", out[0])
	}
}
