package core

import (
	"math"

	"repro/internal/dist"
	"repro/internal/stats"
)

// Equitability and distribution-level validation helpers. Fanti et al.
// (FC 2019) measure PoS compounding through "equitability" — how much the
// final reward fraction disperses relative to its mean; the paper's
// Section 7 positions robust fairness as the sharper notion. Both are
// provided so the two can be compared empirically.

// Equitability returns a normalised dispersion of final reward fractions:
// Var(λ)/(a(1−a)), the variance of λ relative to the variance of the
// maximally-disperse lottery that pays everything with probability a.
// 0 is perfectly equitable (deterministic proportional income); 1 matches
// the all-or-nothing lottery. NaN for degenerate inputs.
func Equitability(samples []float64, a float64) float64 {
	if a <= 0 || a >= 1 || len(samples) < 2 {
		return math.NaN()
	}
	return stats.Variance(samples) / (a * (1 - a))
}

// MLPoSLimitEquitability returns the exact limiting equitability of
// ML-PoS from the Beta(a/w, b/w) Pólya-urn limit:
// Var = a(1−a)/(1/w + 1), so equitability = w/(1+w).
func MLPoSLimitEquitability(w float64) float64 {
	if w <= 0 {
		return math.NaN()
	}
	return w / (1 + w)
}

// BetaLimitKS tests simulated final ML-PoS reward fractions against the
// Beta(a/w, b/w) limit, returning the KS statistic and its asymptotic
// p-value. Small p-values reject the Pólya-urn limit — the repository's
// strongest whole-distribution check of Section 4.3.
func BetaLimitKS(samples []float64, a, w float64) (d, p float64) {
	limit := MLPoSLimitDist(a, w)
	d = dist.KSStatistic(samples, limit.CDF)
	p = dist.KSPValue(d, len(samples))
	return d, p
}
