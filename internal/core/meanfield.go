package core

import "math"

// Mean-field (fluid-limit) analysis of the PoS stake dynamics.
//
// The proof of Theorem 4.9 writes the SL-PoS stake share as a stochastic
// approximation Z_{n+1} − Z_n = γ_{n+1}(f(Z_n) + U_{n+1}) with step size
// γ_n = w/(1 + nw) and drift f(z) = Pr[win | z] − z. Dropping the
// martingale noise U gives the deterministic mean-field ODE
//
//	dz/dn = γ(n+1) · f(z(n)) ,
//
// whose solution tracks the typical trajectory of the share process: it
// predicts the collapse curves of Figure 4 analytically (how fast a
// sub-half miner loses her share, and how the block reward w sets the
// time scale) without running a single simulation.

// MeanField integrates the stake-share fluid limit for one protocol.
type MeanField struct {
	// Drift is f(z), the expected one-block change direction of the
	// share at share z (SLPoSDrift for SL-PoS; identically 0 for any
	// win-proportional protocol such as ML-PoS or FSL-PoS).
	Drift func(z float64) float64
	// W is the block reward relative to the initial circulation.
	W float64
}

// gamma returns the step size γ(n) = w/(1 + n·w).
func (m MeanField) gamma(n float64) float64 {
	return m.W / (1 + n*m.W)
}

// SharePath integrates the ODE from z(0) = a over n blocks with RK4 and
// returns the share at the requested checkpoints (blocks, ascending).
// Checkpoints beyond n are clamped to n.
func (m MeanField) SharePath(a float64, checkpoints []int) []float64 {
	out := make([]float64, len(checkpoints))
	if len(checkpoints) == 0 {
		return out
	}
	z := clamp01(a)
	block := 0.0
	ci := 0
	record := func(upTo float64) {
		for ci < len(checkpoints) && float64(checkpoints[ci]) <= upTo {
			out[ci] = z
			ci++
		}
	}
	last := float64(checkpoints[len(checkpoints)-1])
	// One RK4 step per block: the step sizes γ ≤ w ≤ O(0.1) keep the
	// local error negligible at this resolution.
	for block < last {
		h := 1.0
		k1 := m.gamma(block+1) * m.Drift(z)
		k2 := m.gamma(block+1+h/2) * m.Drift(clamp01(z+h/2*k1))
		k3 := m.gamma(block+1+h/2) * m.Drift(clamp01(z+h/2*k2))
		k4 := m.gamma(block+1+h) * m.Drift(clamp01(z+h*k3))
		z = clamp01(z + h/6*(k1+2*k2+2*k3+k4))
		block += h
		record(block)
	}
	record(last)
	for ci < len(checkpoints) { // degenerate requests (<= 0 blocks)
		out[ci] = z
		ci++
	}
	return out
}

// ShareAt returns the mean-field share after n blocks.
func (m MeanField) ShareAt(a float64, n int) float64 {
	if n <= 0 {
		return clamp01(a)
	}
	return m.SharePath(a, []int{n})[0]
}

// LambdaAt converts the mean-field share at n blocks into the implied
// cumulative reward fraction: stake_A(n) = a + w·(reward share), so
// λ(n) = (z(n)·(1+nw) − a)/(nw).
func (m MeanField) LambdaAt(a float64, n int) float64 {
	if n <= 0 {
		return math.NaN()
	}
	z := m.ShareAt(a, n)
	nw := float64(n) * m.W
	return clamp01((z*(1+nw) - a) / nw)
}

// SLPoSMeanField returns the fluid-limit integrator for the SL-PoS
// two-miner game with block reward w.
func SLPoSMeanField(w float64) MeanField {
	return MeanField{Drift: SLPoSDrift, W: w}
}

// SLPoSHalfLife returns the mean-field number of blocks for a miner
// starting at share a < 1/2 to fall to a/2 under SL-PoS with reward w,
// or -1 if it does not happen within maxBlocks. A compact summary of the
// Figure 4 time scales.
func SLPoSHalfLife(a, w float64, maxBlocks int) int {
	if !(a > 0 && a < 0.5) || w <= 0 {
		return -1
	}
	m := SLPoSMeanField(w)
	z := a
	target := a / 2
	for n := 0; n < maxBlocks; n++ {
		g := m.gamma(float64(n + 1))
		z = clamp01(z + g*m.Drift(z))
		if z <= target {
			return n + 1
		}
	}
	return -1
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
