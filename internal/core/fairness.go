// Package core implements the paper's primary contribution: the two
// fairness notions for blockchain incentives — expectational fairness
// (Definition 3.1) and (ε,δ)-robust fairness (Definition 4.1) — together
// with the theory that predicts when each protocol satisfies them:
//
//   - Theorem 4.2: the Hoeffding sufficient condition for PoW,
//   - Theorem 4.3: the Azuma/martingale condition for ML-PoS,
//   - Theorem 4.10: the compound condition for C-PoS,
//   - Section 4.3: the Pólya-urn Beta(a/w, b/w) limit of ML-PoS,
//   - Theorem 4.9: the stochastic-approximation drift analysis showing
//     SL-PoS converges to monopoly,
//   - Lemma 6.1: the multi-miner SL-PoS win probability.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Params carries the (ε, δ) of robust fairness. The paper's default
// evaluation setting is ε = 0.1, δ = 0.1.
type Params struct {
	Eps   float64
	Delta float64
}

// DefaultParams is the paper's evaluation setting (Section 5.1).
var DefaultParams = Params{Eps: 0.1, Delta: 0.1}

// ErrParams reports invalid fairness parameters.
var ErrParams = errors.New("core: invalid fairness parameters")

// Validate checks ε ≥ 0 and 0 ≤ δ ≤ 1.
func (p Params) Validate() error {
	if p.Eps < 0 || math.IsNaN(p.Eps) {
		return fmt.Errorf("%w: eps = %v", ErrParams, p.Eps)
	}
	if p.Delta < 0 || p.Delta > 1 || math.IsNaN(p.Delta) {
		return fmt.Errorf("%w: delta = %v", ErrParams, p.Delta)
	}
	return nil
}

// FairArea returns the fair interval [(1−ε)a, (1+ε)a] for a miner with
// resource share a (Section 5.1's "fair area").
func (p Params) FairArea(a float64) (lo, hi float64) {
	return (1 - p.Eps) * a, (1 + p.Eps) * a
}

// UnfairProbability estimates Pr[λ outside the fair area] from trial
// samples of λ — the paper's "unfair probability" metric.
func (p Params) UnfairProbability(samples []float64, a float64) float64 {
	lo, hi := p.FairArea(a)
	return 1 - stats.FractionWithin(samples, lo, hi)
}

// RobustlyFair reports whether the samples meet (ε,δ)-fairness: the
// unfair probability is at most δ.
func (p Params) RobustlyFair(samples []float64, a float64) bool {
	return p.UnfairProbability(samples, a) <= p.Delta
}

// ExpectationalGap returns |E[λ] − a| estimated from samples: zero for an
// expectationally fair protocol up to Monte-Carlo noise (Definition 3.1).
func ExpectationalGap(samples []float64, a float64) float64 {
	return math.Abs(stats.Mean(samples) - a)
}

// ExpectationallyFair reports whether the sample mean of λ is within tol
// of a. The tolerance should be a few standard errors of the sample mean;
// StdErrTolerance computes a conventional choice.
func ExpectationallyFair(samples []float64, a, tol float64) bool {
	return ExpectationalGap(samples, a) <= tol
}

// StdErrTolerance returns k standard errors of the sample mean, the usual
// acceptance band for expectational-fairness checks on R trials.
func StdErrTolerance(samples []float64, k float64) float64 {
	if len(samples) < 2 {
		return math.Inf(1)
	}
	return k * math.Sqrt(stats.Variance(samples)/float64(len(samples)))
}

// Verdict summarises the empirical fairness of one protocol run, the
// per-cell content of the paper's qualitative comparison.
type Verdict struct {
	Protocol          string
	Share             float64 // miner A's initial share a
	MeanLambda        float64
	ExpectationalFair bool
	UnfairProbability float64
	RobustFair        bool
}

// Assess produces a Verdict from final-checkpoint λ samples. The
// expectational check uses a 4-standard-error band.
func (p Params) Assess(protocol string, samples []float64, a float64) Verdict {
	return Verdict{
		Protocol:          protocol,
		Share:             a,
		MeanLambda:        stats.Mean(samples),
		ExpectationalFair: ExpectationallyFair(samples, a, StdErrTolerance(samples, 4)),
		UnfairProbability: p.UnfairProbability(samples, a),
		RobustFair:        p.RobustlyFair(samples, a),
	}
}

// String renders the verdict as a one-line report.
func (v Verdict) String() string {
	return fmt.Sprintf("%s: a=%.3f E[λ]=%.4f expectational=%t unfair=%.3f robust=%t",
		v.Protocol, v.Share, v.MeanLambda, v.ExpectationalFair, v.UnfairProbability, v.RobustFair)
}

// Ranking returns the paper's overall fairness ordering (contribution 2):
// descending from fairest.
func Ranking() []string {
	return []string{"PoW", "C-PoS", "ML-PoS", "SL-PoS"}
}
