package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestSLPoSWinProbTwoMinerKnown(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0},
		{1, 1},
		{0.5, 0.5},
		{0.2, 0.125},       // a/(2b) with a=0.2, b=0.8
		{0.3, 0.3 / 1.4},   // 0.2143
		{0.8, 1 - 0.125},   // symmetry
		{0.7, 1 - 0.3/1.4}, // symmetry
	}
	for _, c := range cases {
		if got := SLPoSWinProbTwoMiner(c.z); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("winprob(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestSLPoSWinProbSymmetry(t *testing.T) {
	// p(z) + p(1−z) = 1: one of the two miners always wins.
	f := func(raw uint16) bool {
		z := float64(raw%999+1) / 1000
		return math.Abs(SLPoSWinProbTwoMiner(z)+SLPoSWinProbTwoMiner(1-z)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSLPoSWinProbBelowShareForSmallMiner(t *testing.T) {
	// The poor side is under-rewarded: p(z) < z on (0, 1/2).
	for z := 0.01; z < 0.5; z += 0.01 {
		if SLPoSWinProbTwoMiner(z) >= z {
			t.Fatalf("winprob(%v) not below share", z)
		}
	}
}

func TestSLPoSDriftZeros(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1} {
		if d := SLPoSDrift(z); math.Abs(d) > 1e-12 {
			t.Errorf("drift(%v) = %v, want 0", z, d)
		}
	}
	if SLPoSDrift(0.3) >= 0 {
		t.Error("drift below 1/2 should be negative")
	}
	if SLPoSDrift(0.7) <= 0 {
		t.Error("drift above 1/2 should be positive")
	}
}

func TestSLPoSFixedPointsClassification(t *testing.T) {
	// Theorem 4.9: {0, 1} stable (monopoly), {1/2} unstable.
	fps := SLPoSFixedPoints()
	if len(fps) != 3 {
		t.Fatalf("fixed points = %+v, want 3", fps)
	}
	checks := []struct {
		z      float64
		stable bool
	}{{0, true}, {0.5, false}, {1, true}}
	for i, c := range checks {
		if math.Abs(fps[i].Z-c.z) > 1e-4 {
			t.Errorf("fixed point %d at %v, want %v", i, fps[i].Z, c.z)
		}
		if fps[i].Stable != c.stable {
			t.Errorf("fixed point %v stability = %t, want %t", c.z, fps[i].Stable, c.stable)
		}
	}
}

func TestClassifyFixedPointsOnLogistic(t *testing.T) {
	// f(z) = z(1−z)(0.5−z) has zeros 0, 0.5, 1 with 0.5 STABLE this time
	// (drift pushes toward the centre) — the opposite of SL-PoS.
	f := func(z float64) float64 { return z * (1 - z) * (0.5 - z) }
	fps := ClassifyFixedPoints(f, 1000)
	if len(fps) != 3 {
		t.Fatalf("fixed points = %+v", fps)
	}
	if fps[0].Stable || fps[2].Stable {
		t.Error("boundary points should be unstable for the centring drift")
	}
	if !fps[1].Stable {
		t.Error("centre should be stable for the centring drift")
	}
}

func TestSLPoSWinProbMultiTwoMinerMatchesClosedForm(t *testing.T) {
	got := SLPoSWinProbMulti([]float64{0.2, 0.8})
	if math.Abs(got[0]-0.125) > 1e-6 {
		t.Errorf("P[0] = %v, want 0.125", got[0])
	}
	if math.Abs(got[1]-0.875) > 1e-6 {
		t.Errorf("P[1] = %v, want 0.875", got[1])
	}
}

func TestSLPoSWinProbMultiProperties(t *testing.T) {
	// Lemma 6.1: probabilities sum to 1, and Pr[i] ≤ S_i with equality
	// only for the uniform allocation.
	cases := [][]float64{
		{0.2, 0.3, 0.5},
		{0.1, 0.1, 0.2, 0.6},
		{0.2, 0.2, 0.2, 0.2, 0.2},
		{0.05, 0.15, 0.3, 0.5},
	}
	for _, shares := range cases {
		probs := SLPoSWinProbMulti(shares)
		sum := 0.0
		minIdx := 0
		for i, p := range probs {
			sum += p
			if shares[i] < shares[minIdx] {
				minIdx = i
			}
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("shares %v: probs sum to %v", shares, sum)
		}
		// The minimum-stake miner is never over-rewarded.
		if probs[minIdx] > shares[minIdx]+1e-9 {
			t.Errorf("shares %v: min miner prob %v exceeds share %v", shares, probs[minIdx], shares[minIdx])
		}
	}
	// Uniform: exactly proportional.
	probs := SLPoSWinProbMulti([]float64{0.25, 0.25, 0.25, 0.25})
	for _, p := range probs {
		if math.Abs(p-0.25) > 1e-6 {
			t.Errorf("uniform shares prob = %v, want 0.25", p)
		}
	}
}

func TestSLPoSWinProbMultiUnnormalisedInput(t *testing.T) {
	a := SLPoSWinProbMulti([]float64{0.2, 0.8})
	b := SLPoSWinProbMulti([]float64{2, 8})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Errorf("normalisation changed result: %v vs %v", a, b)
		}
	}
}

func TestSLPoSWinProbMultiEdgeCases(t *testing.T) {
	if got := SLPoSWinProbMulti(nil); len(got) != 0 {
		t.Error("empty shares should give empty probs")
	}
	got := SLPoSWinProbMulti([]float64{0, 1})
	if got[0] != 0 {
		t.Errorf("zero-stake miner prob = %v", got[0])
	}
	if math.Abs(got[1]-1) > 1e-6 {
		t.Errorf("sole staker prob = %v", got[1])
	}
}

func TestSLPoSWinProbMultiMatchesSimulation(t *testing.T) {
	// Cross-validate Lemma 6.1 against the simulated SL-PoS lottery for
	// a 3-miner allocation.
	shares := []float64{0.2, 0.3, 0.5}
	want := SLPoSWinProbMulti(shares)
	trials := 60000
	wins := make([]int, 3)
	p := protocol.NewSLPoS(0.01)
	for i := 0; i < trials; i++ {
		st := game.MustNew(shares)
		p.Step(st, rng.Stream(41, i))
		for j := range shares {
			if st.Rewards[j] > 0 {
				wins[j]++
			}
		}
	}
	for j := range shares {
		got := float64(wins[j]) / float64(trials)
		if math.Abs(got-want[j]) > 0.01 {
			t.Errorf("miner %d: simulated %v, integral %v", j, got, want[j])
		}
	}
}

func TestSLPoSWinProbMultiOnlyEqualIsProportional(t *testing.T) {
	// Lemma 6.1's uniqueness direction: an unequal allocation has some
	// miner with win probability strictly below her share.
	probs := SLPoSWinProbMulti([]float64{0.1, 0.45, 0.45})
	if !(probs[0] < 0.1-1e-6) {
		t.Errorf("smallest miner prob = %v, want strictly < 0.1", probs[0])
	}
}
