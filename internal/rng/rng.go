// Package rng provides a deterministic, seedable pseudo-random number
// generator and the samplers the mining-game simulations need.
//
// Reproducibility is a hard requirement for this repository: every
// experiment in the paper is re-run as a Monte-Carlo simulation, and the
// test suite asserts statistical shapes against fixed seeds. The generator
// is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 so that
// nearby integer seeds yield decorrelated states. Both algorithms are
// public domain and implemented here from the reference descriptions.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator.
//
// It is NOT safe for concurrent use; give each goroutine its own Rand
// (see Split and Stream).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a single 64-bit seed using the
// SplitMix64 sequence, which guarantees a full, well-mixed state even for
// small or sequential seeds.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		r.s[i] = z
	}
	// A state of all zeros is the one forbidden state of xoshiro; the
	// SplitMix64 outputs cannot all be zero for any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent generator from the current one. The child
// stream is decorrelated from the parent by reseeding through SplitMix64.
// The parent advances by one draw.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Stream returns the generator for sub-stream i of the given base seed.
// Streams with different (seed, i) pairs are decorrelated; identical pairs
// are identical. This is how per-trial generators are made in Monte-Carlo
// runs: Stream(seed, trialIndex).
func Stream(seed uint64, i int) *Rand {
	r := &Rand{}
	r.SeedStream(seed, i)
	return r
}

// SeedStream resets the generator in place to sub-stream i of the given
// base seed — Stream without the allocation, for callers that recycle
// one Rand per slot across batches. SeedStream(s, i) leaves the
// generator bit-identical to Stream(s, i).
func (r *Rand) SeedStream(seed uint64, i int) {
	// Mix the stream index through a distinct odd constant so that
	// Stream(s, 0) differs from New(s).
	r.Seed(seed ^ (uint64(i)+1)*0xd1342543de82ef95)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// Use the top 53 bits for a uniformly spaced mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly 0 or 1.
// Samplers that take logarithms use this to avoid infinities.
func (r *Rand) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential returns a draw from the exponential distribution with the
// given rate parameter (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Geometric returns the number of Bernoulli(p) trials up to and including
// the first success (support {1, 2, ...}). For the tiny per-timestamp
// success probabilities of ML-PoS kernels, drawing by inversion is exact
// and O(1).
func (r *Rand) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0, 1]")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64Open()
	k := math.Ceil(math.Log(u) / math.Log1p(-p))
	if k < 1 {
		k = 1
	}
	return int64(k)
}

// Binomial returns a draw from Binomial(n, p). For the small n used by
// C-PoS shard counts (P = 32 in Ethereum 2.0) direct summation is fast;
// for large n it falls back to inversion over the CDF recurrence.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	return r.binomialInversion(n, p)
}

// binomialInversion draws Binomial(n,p) by walking the PMF recurrence
// pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p) until the target CDF mass is
// covered. Expected work is O(np), acceptable for the moderate np this
// repository uses.
func (r *Rand) binomialInversion(n int, p float64) int {
	q := 1 - p
	u := r.Float64()
	pmf := math.Pow(q, float64(n))
	cdf := pmf
	ratio := p / q
	k := 0
	for u > cdf && k < n {
		pmf *= ratio * float64(n-k) / float64(k+1)
		k++
		cdf += pmf
	}
	return k
}

// Normal returns a standard normal draw using the Marsaglia polar method.
func (r *Rand) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Categorical returns an index drawn with probability weights[i]/sum(weights).
// Weights must be non-negative with a positive sum; it panics otherwise.
// A linear scan is used: the simulations draw from small weight vectors
// (2–10 miners), where scanning beats alias-table setup.
func (r *Rand) Categorical(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Categorical with negative or NaN weight at index " + itoa(i))
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the slice indices via the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
