package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from identical seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSeedZeroUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeated values: %d unique of 100", len(seen))
	}
}

func TestStreamIndependence(t *testing.T) {
	s0 := Stream(7, 0)
	s1 := Stream(7, 1)
	base := New(7)
	if s0.Uint64() == s1.Uint64() {
		t.Fatal("streams 0 and 1 produced the same first draw")
	}
	if Stream(7, 0).Uint64() == base.Uint64() {
		t.Fatal("Stream(seed, 0) should differ from New(seed)")
	}
	// Same (seed, index) must reproduce.
	x := Stream(9, 3)
	y := Stream(9, 3)
	for i := 0; i < 10; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("Stream is not deterministic")
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	matches := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split child matched parent %d times", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(13)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d count %d, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulli(t *testing.T) {
	r := New(19)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(23)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(2.0)
		if v < 0 {
			t.Fatalf("Exponential draw negative: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exponential(2) mean = %v, want ~0.5", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	p := 0.05
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		k := r.Geometric(p)
		if k < 1 {
			t.Fatalf("Geometric draw below support: %d", k)
		}
		sum += float64(k)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/p) > 0.5 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, 1/p)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(31)
	for i := 0; i < 10; i++ {
		if k := r.Geometric(1); k != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", k)
		}
	}
}

func TestBinomialSmallN(t *testing.T) {
	r := New(37)
	n, p := 32, 0.2
	trials := 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial out of range: %d", k)
		}
		f := float64(k)
		sum += f
		sumSq += f * f
	}
	mean := sum / float64(trials)
	variance := sumSq/float64(trials) - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	if math.Abs(mean-wantMean) > 0.05 {
		t.Errorf("Binomial mean = %v, want ~%v", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.05 {
		t.Errorf("Binomial variance = %v, want ~%v", variance, wantVar)
	}
}

func TestBinomialLargeN(t *testing.T) {
	r := New(41)
	n, p := 1000, 0.01
	trials := 50000
	sum := 0.0
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial out of range: %d", k)
		}
		sum += float64(k)
	}
	mean := sum / float64(trials)
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("Binomial(1000, 0.01) mean = %v, want ~10", mean)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(43)
	if k := r.Binomial(10, 0); k != 0 {
		t.Errorf("Binomial(10, 0) = %d", k)
	}
	if k := r.Binomial(10, 1); k != 10 {
		t.Errorf("Binomial(10, 1) = %d", k)
	}
	if k := r.Binomial(0, 0.5); k != 0 {
		t.Errorf("Binomial(0, .5) = %d", k)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(47)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := New(53)
	weights := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Categorical bucket %d freq %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalZeroWeightNeverChosen(t *testing.T) {
	r := New(59)
	weights := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		if got := r.Categorical(weights); got != 1 {
			t.Fatalf("Categorical chose zero-weight index %d", got)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"negative": {1, -1},
		"allzero":  {0, 0},
		"nan":      {math.NaN(), 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%s) did not panic", name)
				}
			}()
			New(1).Categorical(weights)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(61)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(67)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("Shuffle lost elements: %v", s)
	}
}

// Property: Float64 is always in [0,1) regardless of seed.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64, draws uint8) bool {
		r := New(seed)
		for i := 0; i < int(draws); i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two generators with the same seed agree on arbitrary prefixes.
func TestQuickDeterministicPrefix(t *testing.T) {
	f := func(seed uint64, draws uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(draws); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intn stays in bounds for arbitrary n and seeds.
func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 42: "42", -7: "-7", 1234567: "1234567"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkCategorical10(b *testing.B) {
	r := New(1)
	w := make([]float64, 10)
	for i := range w {
		w[i] = float64(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Categorical(w)
	}
}
