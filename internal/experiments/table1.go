package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/table"
)

func init() {
	register(Spec{
		ID:    "table1",
		Title: "Table 1: multi-miner games (2, 3, 4, 5, 10 miners; miner A holds 20%)",
		Run:   runTable1,
	})
}

// runTable1 reproduces Table 1: games with m ∈ {2, 3, 4, 5, 10} miners in
// which miner A holds a = 0.2 and the other m−1 miners split the rest
// equally. For each protocol it reports the average of λ_A, the unfair
// probability, and the convergence time to (ε,δ)-fairness ("Never" when
// fairness is never durably reached).
//
// Expected shape: PoW/ML-PoS/C-PoS behave as in the two-miner game for
// every m; SL-PoS collapses A to 0 while A is not the largest miner
// (m = 2..4), is fair by symmetry at m = 5 (all equal), and hands A
// nearly everything at m = 10 where A is the largest.
func runTable1(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 200, 1000)
	blocks := cfg.pick(cfg.Blocks, 2500, 10000)
	a := paperParams.A
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 50)
	minerCounts := []int{2, 3, 4, 5, 10}

	makeProto := map[string]func() protocol.Protocol{
		"PoW":    func() protocol.Protocol { return protocol.NewPoW(paperParams.W) },
		"ML-PoS": func() protocol.Protocol { return protocol.NewMLPoS(paperParams.W) },
		"SL-PoS": func() protocol.Protocol { return protocol.NewSLPoS(paperParams.W) },
		"C-PoS":  func() protocol.Protocol { return protocol.NewCPoS(paperParams.W, paperParams.V, paperParams.Shards) },
	}
	order := []string{"PoW", "ML-PoS", "SL-PoS", "C-PoS"}

	type cell struct {
		mean, unfair float64
		conv         int
	}
	// SL-PoS needs a much longer horizon for the cumulative reward
	// fraction to approach its absorbing state (the paper's NXT runs
	// cover ~92 simulated days); its rows use an 8x horizon with a
	// reduced trial count to keep the full run tractable.
	slBlocks := blocks * 8
	slTrials := trials
	if slTrials > 400 {
		slTrials = 400
	}
	slCps := montecarlo.LinearCheckpoints(slBlocks, 50)

	results := map[string]map[int]cell{}
	seedOff := uint64(300)
	for _, name := range order {
		results[name] = map[int]cell{}
		for _, m := range minerCounts {
			seedOff++
			nTrials, nBlocks, nCps := trials, blocks, cps
			if name == "SL-PoS" {
				nTrials, nBlocks, nCps = slTrials, slBlocks, slCps
			}
			res, err := runMC(makeProto[name](), game.LeaderAndPack(a, m), nTrials, nBlocks, nCps, cfg.seed()+seedOff, cfg.Workers)
			if err != nil {
				return nil, err
			}
			final := res.FinalSamples()
			results[name][m] = cell{
				mean:   res.FinalSummary().Mean,
				unfair: pr.UnfairProbability(final, a),
				conv:   res.ConvergenceBlock(a, pr.Eps, pr.Delta),
			}
		}
	}

	report := &Report{ID: "table1", Title: "Table 1", Metrics: map[string]float64{}}
	var text strings.Builder
	fmt.Fprintf(&text, "Multi-miner games: miner A holds %.0f%%, others split the rest equally.\n", a*100)
	fmt.Fprintf(&text, "trials=%d, horizon=%d blocks, eps=%.2f, delta=%.2f\n\n", trials, blocks, pr.Eps, pr.Delta)

	sections := []struct {
		name string
		get  func(cell) string
	}{
		{"Avg. of lambda_A", func(c cell) string { return fmt3(c.mean) }},
		{"Unfair Prob.", func(c cell) string { return fmt3(c.unfair) }},
		{"Cvg. Time", func(c cell) string {
			if c.conv < 0 {
				return "Never"
			}
			return fmt.Sprintf("%d", c.conv)
		}},
	}
	for _, sec := range sections {
		tb := table.New(append([]string{"No. of Miners"}, order...)...).
			SetTitle(sec.name).AlignAll(table.Right)
		for _, m := range minerCounts {
			row := []any{fmt.Sprintf("%d Miners", m)}
			for _, name := range order {
				row = append(row, sec.get(results[name][m]))
			}
			tb.AddRow(row...)
		}
		text.WriteString(tb.String())
		text.WriteString("\n")
	}
	for _, name := range order {
		key := strings.ReplaceAll(name, "-", "")
		for _, m := range minerCounts {
			c := results[name][m]
			report.Metrics[fmt.Sprintf("mean_%s_m%d", key, m)] = c.mean
			report.Metrics[fmt.Sprintf("unfair_%s_m%d", key, m)] = c.unfair
			report.Metrics[fmt.Sprintf("conv_%s_m%d", key, m)] = float64(c.conv)
		}
	}
	fmt.Fprintf(&text, "SL-PoS rows use an extended horizon of %d blocks (%d trials): the\n", slBlocks, slTrials)
	text.WriteString("cumulative reward fraction approaches its absorbing state slowly, so the\n")
	text.WriteString("paper's extreme values (0.00 / 0.98) are the n -> infinity limits our\n")
	text.WriteString("Theorem 4.9 reproduction proves; the trend here matches.\n")
	text.WriteString("Reading: only the largest miner survives SL-PoS; A loses everything while\n")
	text.WriteString("not the largest (m=2..4), splits evenly at m=5, and monopolises at m=10.\n")
	report.Text = text.String()
	return report, nil
}
