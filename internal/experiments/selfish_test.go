package experiments

import (
	"math"
	"testing"
)

func TestSelfishShapes(t *testing.T) {
	rep, err := runSelfish(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// γ=0: a 1/3 attacker is at the threshold; 0.4 clearly profits,
	// 0.2 clearly loses.
	if !(m["revenue_g0.0_a0.400"] > 0.41) {
		t.Errorf("α=0.4 γ=0 revenue = %v, want > 0.41", m["revenue_g0.0_a0.400"])
	}
	if !(m["revenue_g0.0_a0.200"] < 0.2) {
		t.Errorf("α=0.2 γ=0 revenue = %v, want < 0.2", m["revenue_g0.0_a0.200"])
	}
	// γ=1: any α profits.
	if !(m["revenue_g1.0_a0.200"] > 0.2) {
		t.Errorf("α=0.2 γ=1 revenue = %v, want > 0.2", m["revenue_g1.0_a0.200"])
	}
	// Thresholds recorded.
	if math.Abs(m["threshold_g0.0"]-1.0/3) > 1e-12 {
		t.Errorf("γ=0 threshold = %v", m["threshold_g0.0"])
	}
	if len(rep.Charts) != 1 {
		t.Error("selfish should emit one chart")
	}
}
