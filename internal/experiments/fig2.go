package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
)

func init() {
	register(Spec{
		ID:    "fig2",
		Title: "Figure 2: evolution of lambda_A for PoW, ML-PoS, SL-PoS and C-PoS (a=0.2, w=0.01, v=0.1)",
		Run:   runFig2,
	})
}

// runFig2 reproduces Figure 2: the mean and 5th–95th percentile envelope
// of λ_A over the number of blocks, for the four protocols under the
// paper's canonical setting a = 0.2, w = 0.01, v = 0.1, P = 32.
//
// Expected shapes: (a) PoW converges into the fair area; (b) ML-PoS keeps
// a wide band forever; (c) SL-PoS mean decays toward 0; (d) C-PoS band is
// far narrower than ML-PoS.
func runFig2(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 300, 2000)
	blocks := cfg.pick(cfg.Blocks, 1200, 5000)
	a := paperParams.A
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 50)

	protos := []protocol.Protocol{
		protocol.NewPoW(paperParams.W),
		protocol.NewMLPoS(paperParams.W),
		protocol.NewSLPoS(paperParams.W),
		protocol.NewCPoS(paperParams.W, paperParams.V, paperParams.Shards),
	}
	panel := []string{"(a)", "(b)", "(c)", "(d)"}

	report := &Report{ID: "fig2", Title: "Figure 2", Metrics: map[string]float64{}}
	var text strings.Builder
	text.WriteString("Evolution of lambda_A (mean and 5th-95th percentiles)\n")
	lo, hi := pr.FairArea(a)
	fmt.Fprintf(&text, "fair area = [%.3f, %.3f], trials = %d, horizon = %d blocks\n\n", lo, hi, trials, blocks)

	for i, p := range protos {
		res, err := runMC(p, game.TwoMiner(a), trials, blocks, cps, cfg.seed()+uint64(i), cfg.Workers)
		if err != nil {
			return nil, err
		}
		report.Charts = append(report.Charts, evolutionChart(
			fmt.Sprintf("Figure 2%s %s", panel[i], p.Name()), res, a, pr))

		final := res.FinalSummary()
		unfair := pr.UnfairProbability(res.FinalSamples(), a)
		key := strings.ReplaceAll(p.Name(), "-", "")
		report.Metrics["final_mean_"+key] = final.Mean
		report.Metrics["final_p5_"+key] = final.P5
		report.Metrics["final_p95_"+key] = final.P95
		report.Metrics["final_unfair_"+key] = unfair
		fmt.Fprintf(&text, "%s %-8s final mean=%.4f p5=%.4f p95=%.4f unfair=%.3f\n",
			panel[i], p.Name(), final.Mean, final.P5, final.P95, unfair)
	}
	text.WriteString("\nReading: PoW and C-PoS concentrate inside the fair area; ML-PoS stays wide;\n")
	text.WriteString("SL-PoS collapses toward 0 (rich-get-richer monopoly).\n")
	report.Text = text.String()
	return report, nil
}
