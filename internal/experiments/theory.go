package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/table"
)

func init() {
	register(Spec{
		ID:    "theory",
		Title: "Theorem calculators: sufficient conditions of Theorems 4.2, 4.3, 4.10",
		Run:   runTheory,
	})
}

// runTheory tabulates the paper's sufficient conditions at the evaluation
// parameters, the quantities quoted inline in Section 5.2 (e.g.
// 2a²ε²/ln(2/δ) ≈ 0.00027 ≪ w = 0.01 for ML-PoS).
func runTheory(cfg Config) (*Report, error) {
	pr := core.DefaultParams
	report := &Report{ID: "theory", Title: "Theory", Metrics: map[string]float64{}}
	var text strings.Builder

	// Theorem 4.2: PoW minimum horizons.
	t1 := table.New("a", "min blocks (Thm 4.2)", "exact fair prob at bound").AlignAll(table.Right).SetTitle("PoW (Theorem 4.2)")
	for _, a := range []float64{0.1, 0.2, 0.3, 0.4} {
		n := core.PoWMinBlocks(a, pr)
		fair := core.PoWFairProbExact(n, a, pr.Eps)
		t1.AddRow(fmt.Sprintf("%.1f", a), n, fmt3(fair))
		report.Metrics[fmt.Sprintf("pow_min_blocks_a%.0f", a*100)] = float64(n)
	}
	text.WriteString(t1.String())
	text.WriteString("\n")

	// Theorem 4.3: ML-PoS certified rewards and limit fair mass.
	t2 := table.New("w", "1/n+w at n=5000", "certified?", "limit fair prob (Beta)").
		AlignAll(table.Right).SetTitle("ML-PoS at a=0.2 (Theorem 4.3 + Polya limit)")
	for _, w := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		lhs := core.MLPoSConditionLHS(5000, w)
		ok := core.MLPoSSufficient(5000, w, 0.2, pr)
		limit := core.MLPoSLimitFairProb(0.2, w, pr.Eps)
		t2.AddRow(fmt.Sprintf("%.0e", w), fmt.Sprintf("%.5f", lhs), ok, fmt3(limit))
		report.Metrics[fmt.Sprintf("mlpos_limit_fair_w%.0e", w)] = limit
	}
	text.WriteString(t2.String())
	text.WriteString("\n")

	// Theorem 4.10: C-PoS left-hand sides.
	t3 := table.New("v", "P", "LHS (Thm 4.10)", "certified at n=5000?").
		AlignAll(table.Right).SetTitle("C-PoS at a=0.2, w=0.01 (Theorem 4.10)")
	for _, tc := range []struct {
		v float64
		p int
	}{{0, 1}, {0.01, 32}, {0.1, 1}, {0.1, 32}} {
		lhs := core.CPoSConditionLHS(5000, 0.01, tc.v, tc.p)
		ok := core.CPoSSufficient(5000, 0.01, tc.v, tc.p, 0.2, pr)
		t3.AddRow(fmt.Sprintf("%.2f", tc.v), tc.p, fmt.Sprintf("%.2e", lhs), ok)
		report.Metrics[fmt.Sprintf("cpos_lhs_v%.2f_p%d", tc.v, tc.p)] = lhs
	}
	text.WriteString(t3.String())
	fmt.Fprintf(&text, "\nthreshold 2a^2 eps^2 / ln(2/delta) at a=0.2: %.6f\n",
		2*0.2*0.2*pr.Eps*pr.Eps/math.Log(2/pr.Delta))
	fmt.Fprintf(&text, "fairness ranking (paper contribution 2): %s\n", strings.Join(core.Ranking(), " > "))

	report.Metrics["pow_min_blocks_a20"] = float64(core.PoWMinBlocks(0.2, pr))
	report.Text = text.String()
	return report, nil
}
