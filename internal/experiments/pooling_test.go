package experiments

import "testing"

func TestPoolingShapes(t *testing.T) {
	rep, err := runPooling(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Pooling reduces each member's variance under every protocol.
	for _, proto := range []string{"PoW", "MLPoS", "CPoS"} {
		if !(m["pool_std_"+proto] < m["solo_std_"+proto]) {
			t.Errorf("%s: pooled std %v not below solo %v", proto,
				m["pool_std_"+proto], m["solo_std_"+proto])
		}
	}
	// The absolute spread a pool removes is far larger under the
	// non-robust ML-PoS than under robustly fair PoW/C-PoS: that is the
	// Section 6.5 claim that robust fairness removes pool pressure.
	gainML := m["solo_std_MLPoS"] - m["pool_std_MLPoS"]
	gainPoW := m["solo_std_PoW"] - m["pool_std_PoW"]
	gainC := m["solo_std_CPoS"] - m["pool_std_CPoS"]
	if !(gainML > 3*gainPoW) {
		t.Errorf("ML-PoS pooling gain %v not ≫ PoW gain %v", gainML, gainPoW)
	}
	if !(gainML > 3*gainC) {
		t.Errorf("ML-PoS pooling gain %v not ≫ C-PoS gain %v", gainML, gainC)
	}
}

func TestHybridShapes(t *testing.T) {
	rep, err := runHybrid(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Fairness improves monotonically (weakly) from α=0 to α=1, with the
	// endpoints clearly separated.
	if !(m["unfair_alpha1.00"] < m["unfair_alpha0.00"]) {
		t.Errorf("α=1 unfair %v should beat α=0 %v", m["unfair_alpha1.00"], m["unfair_alpha0.00"])
	}
	if !(m["unfair_alpha0.50"] <= m["unfair_alpha0.00"]) {
		t.Errorf("α=0.5 unfair %v should not exceed α=0 %v", m["unfair_alpha0.50"], m["unfair_alpha0.00"])
	}
	// Equitability follows the same ordering.
	if !(m["equitability_alpha1.00"] < m["equitability_alpha0.00"]) {
		t.Errorf("equitability not improving with α")
	}
}
