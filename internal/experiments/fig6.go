package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
)

func init() {
	register(Spec{
		ID:    "fig6",
		Title: "Figure 6: FSL-PoS treatment and reward withholding (a=0.2, w=0.01)",
		Run:   runFig6,
	})
}

// runFig6 reproduces Figure 6: the evolution of λ_A under (a) FSL-PoS,
// the corrected single-lottery of Section 6.2, and (b) FSL-PoS with
// reward withholding every 1000 blocks (Section 6.3).
//
// Expected shapes: FSL-PoS restores the 0.2 mean (expectational fairness)
// but its 5–95 band escapes the fair area; withholding pulls almost all
// mass inside it.
func runFig6(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 300, 2000)
	blocks := cfg.pick(cfg.Blocks, 2000, 5000)
	withholdK := 1000
	if cfg.Quick {
		withholdK = 500
	}
	a := paperParams.A
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 50)

	report := &Report{ID: "fig6", Title: "Figure 6", Metrics: map[string]float64{}}
	var text strings.Builder
	fmt.Fprintf(&text, "FSL-PoS with and without reward withholding, trials=%d, horizon=%d\n\n", trials, blocks)

	// Panel (a): plain FSL-PoS.
	resA, err := runMC(protocol.NewFSLPoS(paperParams.W), game.TwoMiner(a), trials, blocks, cps, cfg.seed()+201, cfg.Workers)
	if err != nil {
		return nil, err
	}
	report.Charts = append(report.Charts, evolutionChart("Figure 6(a) FSL-PoS", resA, a, pr))
	sumA := resA.FinalSummary()
	unfairA := pr.UnfairProbability(resA.FinalSamples(), a)
	report.Metrics["fsl_final_mean"] = sumA.Mean
	report.Metrics["fsl_final_unfair"] = unfairA
	fmt.Fprintf(&text, "(a) FSL-PoS:            mean=%.4f p5=%.4f p95=%.4f unfair=%.3f\n",
		sumA.Mean, sumA.P5, sumA.P95, unfairA)

	// Panel (b): FSL-PoS + withholding.
	resB, err := runMC(protocol.NewFSLPoS(paperParams.W), game.TwoMiner(a), trials, blocks, cps, cfg.seed()+202, cfg.Workers,
		game.WithWithholding(withholdK))
	if err != nil {
		return nil, err
	}
	report.Charts = append(report.Charts, evolutionChart(
		fmt.Sprintf("Figure 6(b) FSL-PoS + withholding (K=%d)", withholdK), resB, a, pr))
	sumB := resB.FinalSummary()
	unfairB := pr.UnfairProbability(resB.FinalSamples(), a)
	report.Metrics["withhold_final_mean"] = sumB.Mean
	report.Metrics["withhold_final_unfair"] = unfairB
	fmt.Fprintf(&text, "(b) + withholding K=%d: mean=%.4f p5=%.4f p95=%.4f unfair=%.3f\n",
		withholdK, sumB.Mean, sumB.P5, sumB.P95, unfairB)

	text.WriteString("\nReading: both variants are expectationally fair (mean 0.2); withholding\n")
	text.WriteString("shrinks the envelope into the fair area, restoring robust fairness.\n")
	report.Text = text.String()
	return report, nil
}
