package experiments

import (
	"context"
	"fmt"
	"strings"

	fairness "repro"
	"repro/internal/montecarlo"
	"repro/internal/scenario"
)

func init() {
	register(Spec{
		ID:    "fig3-sweep",
		Title: "Figure 3 re-expressed as a declarative scenario sweep (same metrics as fig3)",
		Run:   runFig3Sweep,
	})
}

// Fig3SweepSpecs returns Figure 3's protocol × initial-share grid as a
// declarative scenario list. Seeds, trial counts, horizons and
// checkpoints replicate runFig3 exactly, so the sweep engine's λ samples
// — and therefore its unfair probabilities — are bit-identical to the
// hand-coded exhibit's. This is the proof that the scenario abstraction
// subsumes the paper's exhibits rather than approximating them.
func Fig3SweepSpecs(cfg Config) []scenario.Spec {
	trials := cfg.pick(cfg.Trials, 300, 2000)
	blocks := cfg.pick(cfg.Blocks, 1500, 5000)
	cps := montecarlo.LinearCheckpoints(blocks, 40)
	shares := []float64{0.1, 0.2, 0.3, 0.4}
	protocols := []string{"pow", "mlpos", "slpos", "cpos"}

	var specs []scenario.Spec
	seedOff := uint64(0)
	for _, proto := range protocols {
		for _, a := range shares {
			seedOff++
			s := scenario.Spec{
				Name:        fmt.Sprintf("fig3/%s/a=%.1f", proto, a),
				Protocol:    proto,
				W:           paperParams.W,
				Stake:       a,
				Blocks:      blocks,
				Trials:      trials,
				Seed:        cfg.seed() + seedOff,
				Checkpoints: append([]int(nil), cps...),
			}
			if proto == "cpos" {
				s.V, s.Shards = paperParams.V, paperParams.Shards
			}
			specs = append(specs, s)
		}
	}
	return specs
}

// runFig3Sweep regenerates Figure 3's headline metrics through the
// public Engine API — the facade path every external caller takes —
// emitting the same metric keys as runFig3 so the two paths can be
// diffed directly. The Engine adds orchestration (context, backends,
// caching), never semantics, so the metrics stay bit-identical.
func runFig3Sweep(cfg Config) (*Report, error) {
	specs := Fig3SweepSpecs(cfg)
	eng := fairness.NewEngine(fairness.WithWorkers(cfg.Workers))
	rep, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		return nil, err
	}

	// fig3's metric keys use the display protocol names sans dash.
	display := map[string]string{"pow": "PoW", "mlpos": "MLPoS", "slpos": "SLPoS", "cpos": "CPoS"}

	report := &Report{ID: "fig3-sweep", Title: "Figure 3 (sweep engine)", Metrics: map[string]float64{}}
	var text strings.Builder
	fmt.Fprintf(&text, "Figure 3 through the scenario sweep engine: %d scenarios.\n\n", len(specs))
	for _, o := range rep.Outcomes {
		proto := display[o.Spec.Protocol]
		key := fmt.Sprintf("unfair_%s_a%.0f", proto, o.Share*100)
		report.Metrics[key] = o.Verdict.UnfairProbability
	}
	text.WriteString(rep.Table())
	text.WriteString("\n")
	text.WriteString(rep.Summary())
	text.WriteString("\nEvery unfair probability matches the hand-coded fig3 exhibit bit for bit;\n")
	text.WriteString("see TestFig3SweepMatchesFig3.\n")
	report.Text = text.String()
	return report, nil
}
