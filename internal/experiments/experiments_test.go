package experiments

import (
	"errors"
	"strings"
	"testing"
)

// quickCfg is the reduced configuration used across all smoke tests.
var quickCfg = Config{Quick: true, Seed: 7}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"ablation-circulation", "ablation-shards", "ablation-withhold",
		"fig1", "fig2", "fig3", "fig3-sweep", "fig4", "fig5", "fig6", "hybrid",
		"p2p-delay", "pooling",
		"realsys", "selfish", "table1", "theory"}
	if len(ids) != len(want) {
		t.Fatalf("registered ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if _, err := Get("fig2"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown id err = %v", err)
	}
	if len(All()) != len(want) {
		t.Error("All() length mismatch")
	}
}

func TestFig1Shapes(t *testing.T) {
	rep, err := runFig1(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Closed-form checks: p(0.2) = 0.125, p(0.3) = 0.2143, p(0.7) mirrors.
	if got := rep.Metrics["winprob_at_0.2"]; got != 0.125 {
		t.Errorf("winprob(0.2) = %v", got)
	}
	if got := rep.Metrics["fixed_points"]; got != 3 {
		t.Errorf("fixed points = %v", got)
	}
	if len(rep.Charts) != 1 {
		t.Error("fig1 should have one chart")
	}
	if !strings.Contains(rep.Text, "monopoly") {
		t.Error("fig1 text missing analysis")
	}
}

func TestFig2Shapes(t *testing.T) {
	rep, err := runFig2(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Expectational fairness: PoW, ML-PoS, C-PoS means near 0.2.
	for _, proto := range []string{"PoW", "MLPoS", "CPoS"} {
		mean := m["final_mean_"+proto]
		if mean < 0.17 || mean > 0.23 {
			t.Errorf("%s final mean = %v, want ~0.2", proto, mean)
		}
	}
	// SL-PoS collapses.
	if m["final_mean_SLPoS"] > 0.1 {
		t.Errorf("SL-PoS final mean = %v, want << 0.2", m["final_mean_SLPoS"])
	}
	// Robust-fairness ordering: PoW and C-PoS concentrated, ML-PoS wide.
	if !(m["final_unfair_CPoS"] < m["final_unfair_MLPoS"]) {
		t.Errorf("C-PoS unfair %v should beat ML-PoS %v", m["final_unfair_CPoS"], m["final_unfair_MLPoS"])
	}
	if !(m["final_unfair_PoW"] < m["final_unfair_MLPoS"]) {
		t.Errorf("PoW unfair %v should beat ML-PoS %v", m["final_unfair_PoW"], m["final_unfair_MLPoS"])
	}
	if m["final_unfair_SLPoS"] < 0.9 {
		t.Errorf("SL-PoS unfair = %v, want ~1", m["final_unfair_SLPoS"])
	}
	// Band width: C-PoS envelope strictly inside ML-PoS envelope.
	widthML := m["final_p95_MLPoS"] - m["final_p5_MLPoS"]
	widthC := m["final_p95_CPoS"] - m["final_p5_CPoS"]
	if !(widthC < widthML/2) {
		t.Errorf("C-PoS band %v not much narrower than ML-PoS %v", widthC, widthML)
	}
	if len(rep.Charts) != 4 {
		t.Errorf("fig2 should have 4 panels, got %d", len(rep.Charts))
	}
}

func TestFig3Shapes(t *testing.T) {
	rep, err := runFig3(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// PoW: unfair probability decreasing in a at the final horizon.
	if !(m["unfair_PoW_a40"] <= m["unfair_PoW_a10"]) {
		t.Errorf("PoW a=0.4 unfair %v should be <= a=0.1 %v", m["unfair_PoW_a40"], m["unfair_PoW_a10"])
	}
	// SL-PoS: everything unfair.
	for _, a := range []string{"a10", "a20", "a30", "a40"} {
		if m["unfair_SLPoS_"+a] < 0.85 {
			t.Errorf("SL-PoS %s unfair = %v, want ~1", a, m["unfair_SLPoS_"+a])
		}
	}
	// C-PoS beats ML-PoS for every share.
	for _, a := range []string{"a10", "a20", "a30", "a40"} {
		if !(m["unfair_CPoS_"+a] < m["unfair_MLPoS_"+a]) {
			t.Errorf("C-PoS %s (%v) should beat ML-PoS (%v)", a, m["unfair_CPoS_"+a], m["unfair_MLPoS_"+a])
		}
	}
	if len(rep.Charts) != 4 {
		t.Errorf("fig3 panels = %d", len(rep.Charts))
	}
}

func TestFig4Shapes(t *testing.T) {
	rep, err := runFig4(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Panel (a): every a < 0.5 decays well below its start; 0.5 stays.
	if m["final_mean_a10"] > 0.05 {
		t.Errorf("a=0.1 final mean = %v, want near 0", m["final_mean_a10"])
	}
	if m["final_mean_a20"] > 0.08 {
		t.Errorf("a=0.2 final mean = %v, want near 0", m["final_mean_a20"])
	}
	if diff := m["final_mean_a50"] - 0.5; diff > 0.1 || diff < -0.1 {
		t.Errorf("a=0.5 final mean = %v, want ~0.5 by symmetry", m["final_mean_a50"])
	}
	// Monotone: bigger a lasts longer.
	if !(m["final_mean_a40"] >= m["final_mean_a10"]) {
		t.Errorf("a=0.4 (%v) should retain more than a=0.1 (%v)", m["final_mean_a40"], m["final_mean_a10"])
	}
	// Panel (b): smaller w decays slower.
	if !(m["final_mean_w1e-04"] > m["final_mean_w1e-01"]) {
		t.Errorf("w=1e-4 (%v) should retain more than w=0.1 (%v)", m["final_mean_w1e-04"], m["final_mean_w1e-01"])
	}
	if len(rep.Charts) != 2 {
		t.Errorf("fig4 panels = %d", len(rep.Charts))
	}
}

func TestFig5Shapes(t *testing.T) {
	rep, err := runFig5(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// (a) ML-PoS: tiny reward fair, huge reward catastrophic.
	if m["unfair_a_w=1e-04"] > 0.1 {
		t.Errorf("ML-PoS w=1e-4 unfair = %v, want <= 0.1", m["unfair_a_w=1e-04"])
	}
	if m["unfair_a_w=1e-01"] < 0.8 {
		t.Errorf("ML-PoS w=0.1 unfair = %v, want >= 0.85 regime", m["unfair_a_w=1e-01"])
	}
	// (b) SL-PoS: unfair for every reward.
	for _, w := range []string{"w=1e-04", "w=1e-03", "w=1e-02", "w=1e-01"} {
		if m["unfair_b_"+w] < 0.7 {
			t.Errorf("SL-PoS %s unfair = %v, want high", w, m["unfair_b_"+w])
		}
	}
	// (c) C-PoS beats ML-PoS at the common w=0.01 point.
	if !(m["unfair_c_w=1e-02"] < m["unfair_a_w=1e-02"]) {
		t.Errorf("C-PoS w=0.01 (%v) should beat ML-PoS (%v)", m["unfair_c_w=1e-02"], m["unfair_a_w=1e-02"])
	}
	// (d) inflation monotonicity: v=0 worst, v=0.1 best.
	if !(m["unfair_d_v=0.10"] < m["unfair_d_v=0.00"]) {
		t.Errorf("v=0.1 (%v) should beat v=0 (%v)", m["unfair_d_v=0.10"], m["unfair_d_v=0.00"])
	}
	if m["unfair_d_v=0.10"] > 0.2 {
		t.Errorf("v=0.1 unfair = %v, want small", m["unfair_d_v=0.10"])
	}
	if len(rep.Charts) != 4 {
		t.Errorf("fig5 panels = %d", len(rep.Charts))
	}
}

func TestFig6Shapes(t *testing.T) {
	rep, err := runFig6(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Both means ~0.2 (expectational fairness restored by the treatment).
	if m["fsl_final_mean"] < 0.17 || m["fsl_final_mean"] > 0.23 {
		t.Errorf("FSL-PoS mean = %v", m["fsl_final_mean"])
	}
	if m["withhold_final_mean"] < 0.17 || m["withhold_final_mean"] > 0.23 {
		t.Errorf("withholding mean = %v", m["withhold_final_mean"])
	}
	// Withholding strictly improves robust fairness.
	if !(m["withhold_final_unfair"] < m["fsl_final_unfair"]) {
		t.Errorf("withholding unfair %v should beat plain FSL %v",
			m["withhold_final_unfair"], m["fsl_final_unfair"])
	}
	if len(rep.Charts) != 2 {
		t.Errorf("fig6 panels = %d", len(rep.Charts))
	}
}

func TestTable1Shapes(t *testing.T) {
	rep, err := runTable1(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// PoW/ML-PoS/C-PoS: mean 0.2 for every m.
	for _, proto := range []string{"PoW", "MLPoS", "CPoS"} {
		for _, mm := range []string{"m2", "m3", "m5", "m10"} {
			mean := m["mean_"+proto+"_"+mm]
			if mean < 0.16 || mean > 0.24 {
				t.Errorf("%s %s mean = %v, want ~0.2", proto, mm, mean)
			}
		}
	}
	// SL-PoS: A collapses while not the largest (m=2..4); the quick
	// horizon shows the decisive trend toward the paper's asymptotic 0.00.
	for _, mm := range []string{"m2", "m3", "m4"} {
		if m["mean_SLPoS_"+mm] > 0.15 {
			t.Errorf("SL-PoS %s mean = %v, want well below 0.2 and falling", mm, m["mean_SLPoS_"+mm])
		}
	}
	// m=5: all equal — fair by symmetry.
	if mean := m["mean_SLPoS_m5"]; mean < 0.12 || mean > 0.28 {
		t.Errorf("SL-PoS m5 mean = %v, want ~0.2", mean)
	}
	// m=10: A is the largest and accumulates toward monopoly (paper's
	// asymptote is 0.98; the quick horizon must show λ far above a).
	if m["mean_SLPoS_m10"] < 0.4 {
		t.Errorf("SL-PoS m10 mean = %v, want rising well above 0.2", m["mean_SLPoS_m10"])
	}
	// Convergence: PoW converges, ML-PoS and SL-PoS never.
	if m["conv_PoW_m2"] <= 0 {
		t.Error("PoW should converge")
	}
	if m["conv_SLPoS_m2"] != -1 {
		t.Errorf("SL-PoS conv = %v, want Never", m["conv_SLPoS_m2"])
	}
	if m["conv_MLPoS_m2"] != -1 {
		t.Errorf("ML-PoS conv = %v, want Never (w=0.01 regime)", m["conv_MLPoS_m2"])
	}
	// C-PoS converges much faster than PoW (epochs vs blocks).
	if m["conv_CPoS_m2"] <= 0 || m["conv_CPoS_m2"] >= m["conv_PoW_m2"] {
		t.Errorf("C-PoS conv = %v vs PoW %v", m["conv_CPoS_m2"], m["conv_PoW_m2"])
	}
	if !strings.Contains(rep.Text, "Avg. of lambda_A") {
		t.Error("table text missing sections")
	}
}

func TestRealSysShapes(t *testing.T) {
	rep, err := runRealSys(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m["mean_pow"] < 0.1 || m["mean_pow"] > 0.3 {
		t.Errorf("chainsim PoW mean = %v", m["mean_pow"])
	}
	if m["mean_mlpos"] < 0.12 || m["mean_mlpos"] > 0.28 {
		t.Errorf("chainsim ML-PoS mean = %v", m["mean_mlpos"])
	}
	if m["mean_slpos"] > 0.15 {
		t.Errorf("chainsim SL-PoS mean = %v, want collapsing", m["mean_slpos"])
	}
	if m["mean_fslpos"] < 0.12 || m["mean_fslpos"] > 0.28 {
		t.Errorf("chainsim FSL-PoS mean = %v", m["mean_fslpos"])
	}
	if m["mean_cpos"] < 0.15 || m["mean_cpos"] > 0.25 {
		t.Errorf("chainsim C-PoS mean = %v", m["mean_cpos"])
	}
	// The block-level C-PoS is tighter than the block-level ML-PoS.
	if !(m["unfair_cpos"] <= m["unfair_mlpos"]) {
		t.Errorf("chainsim C-PoS unfair %v should be <= ML-PoS %v", m["unfair_cpos"], m["unfair_mlpos"])
	}
}

func TestTheoryReport(t *testing.T) {
	rep, err := runTheory(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["pow_min_blocks_a20"] < 3000 || rep.Metrics["pow_min_blocks_a20"] > 4000 {
		t.Errorf("PoW min blocks = %v, want ~3745", rep.Metrics["pow_min_blocks_a20"])
	}
	if !strings.Contains(rep.Text, "PoW > C-PoS > ML-PoS > SL-PoS") {
		t.Errorf("ranking missing from:\n%s", rep.Text)
	}
}

func TestAblationShards(t *testing.T) {
	rep, err := runAblationShards(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if !(m["unfair_P32"] <= m["unfair_P1"]) {
		t.Errorf("P=32 unfair %v should be <= P=1 %v", m["unfair_P32"], m["unfair_P1"])
	}
}

func TestAblationWithhold(t *testing.T) {
	rep, err := runAblationWithhold(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if !(m["unfair_K1000"] < m["unfair_K0"]) {
		t.Errorf("K=1000 unfair %v should beat K=0 %v", m["unfair_K1000"], m["unfair_K0"])
	}
	for _, k := range []string{"K0", "K100", "K1000"} {
		mean := m["mean_"+k]
		if mean < 0.17 || mean > 0.23 {
			t.Errorf("%s mean = %v, want ~0.2", k, mean)
		}
	}
}

func TestAblationCirculation(t *testing.T) {
	rep, err := runAblationCirculation(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if !(m["unfair_10x"] < m["unfair_base"]) {
		t.Errorf("10x circulation unfair %v should beat baseline %v", m["unfair_10x"], m["unfair_base"])
	}
}

func TestAllExperimentsRunViaRegistry(t *testing.T) {
	// Every registered experiment must run cleanly at tiny scale and
	// produce non-empty text and metrics.
	tiny := Config{Quick: true, Trials: 40, Blocks: 300, Seed: 9}
	for _, spec := range All() {
		rep, err := spec.Run(tiny)
		if err != nil {
			t.Errorf("%s: %v", spec.ID, err)
			continue
		}
		if rep.Text == "" {
			t.Errorf("%s: empty text", spec.ID)
		}
		if len(rep.Metrics) == 0 {
			t.Errorf("%s: no metrics", spec.ID)
		}
		if rep.ID != spec.ID {
			t.Errorf("%s: report id %q", spec.ID, rep.ID)
		}
	}
}
