package experiments

import (
	"math"
	"testing"
)

func TestP2PDelayShapes(t *testing.T) {
	rep, err := runP2PDelay(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Delay 0 still allows same-round collisions, but orphans are rare.
	if m["orphan_d0"] > 0.04 {
		t.Errorf("delay-0 orphan rate = %v, want small", m["orphan_d0"])
	}
	// More delay, more orphans.
	if !(m["orphan_d8"] > m["orphan_d0"]+0.03) {
		t.Errorf("orphan rate not clearly increasing: d8=%v d0=%v", m["orphan_d8"], m["orphan_d0"])
	}
	// Without delay the mean reward share matches the hash share.
	if math.Abs(m["lambda_d0"]-0.2) > 0.05 {
		t.Errorf("d0 mean λ = %v, want ~0.2", m["lambda_d0"])
	}
	// Latency erodes the small miner's share below her hash share.
	if !(m["lambda_d8"] < m["lambda_d0"]-0.03) {
		t.Errorf("λ not eroding with delay: d8=%v d0=%v", m["lambda_d8"], m["lambda_d0"])
	}
}
