package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/table"
)

func init() {
	register(Spec{
		ID:    "selfish",
		Title: "Section 6.5/8 extension: selfish mining as an expectational-fairness attack on PoW",
		Run:   runSelfish,
	})
}

// runSelfish studies the paper's named future-work attack: Eyal–Sirer
// selfish mining, framed in the paper's vocabulary. PoW's Theorem 3.2
// fairness assumes honest mining; a selfish miner with hash share α and
// network advantage γ earns a revenue share R(α, γ) that exceeds α above
// the profitability threshold (1−γ)/(3−2γ) — breaking expectational
// fairness by strategy rather than by protocol design.
func runSelfish(cfg Config) (*Report, error) {
	events := cfg.pick(cfg.Blocks, 60_000, 400_000)
	gammas := []float64{0, 0.5, 1}
	alphas := []float64{0.1, 0.2, 0.25, 0.3, 1.0 / 3, 0.4, 0.45}

	report := &Report{ID: "selfish", Title: "Selfish mining", Metrics: map[string]float64{}}
	var text strings.Builder
	fmt.Fprintf(&text, "Selfish-mining revenue share vs hash share (simulated %d events per cell\n", events)
	text.WriteString("vs the Eyal-Sirer closed form). R > alpha breaks expectational fairness.\n\n")

	chart := &plot.Chart{Title: "Selfish mining revenue vs hash share", XLabel: "hash share alpha",
		YLabel: "revenue share R", YMin: 0, YMax: 1}
	diagX := make([]float64, 0, len(alphas))
	for _, a := range alphas {
		diagX = append(diagX, a)
	}
	chart.AddSeries("honest (R = alpha)", diagX, diagX)

	seed := cfg.seed()
	for gi, gamma := range gammas {
		th, err := attack.ProfitThreshold(gamma)
		if err != nil {
			return nil, err
		}
		tb := table.New("alpha", "simulated R", "closed form", "breaks fairness?").
			AlignAll(table.Right).
			SetTitle(fmt.Sprintf("gamma = %.1f (profit threshold alpha > %.3f)", gamma, th))
		ys := make([]float64, 0, len(alphas))
		for ai, a := range alphas {
			s := attack.SelfishMining{Alpha: a, Gamma: gamma}
			res, err := s.Simulate(events, rng.Stream(seed, gi*100+ai))
			if err != nil {
				return nil, err
			}
			closed, err := s.Revenue()
			if err != nil {
				return nil, err
			}
			breaks, _ := s.BreaksExpectationalFairness()
			sim := res.RevenueShare()
			ys = append(ys, sim)
			tb.AddRow(fmt.Sprintf("%.3f", a), fmt.Sprintf("%.4f", sim),
				fmt.Sprintf("%.4f", closed), breaks)
			report.Metrics[fmt.Sprintf("revenue_g%.1f_a%.3f", gamma, a)] = sim
		}
		chart.AddSeries(fmt.Sprintf("gamma=%.1f", gamma), diagX, ys)
		report.Metrics[fmt.Sprintf("threshold_g%.1f", gamma)] = th
		text.WriteString(tb.String())
		text.WriteString("\n")
	}
	text.WriteString("Reading: below the threshold the attack under-pays (honesty dominates);\n")
	text.WriteString("above it the attacker's lambda exceeds her resource share — the strategic\n")
	text.WriteString("rich-get-richer the paper flags for future work, now measurable here.\n")
	report.Charts = []*plot.Chart{chart}
	report.Text = text.String()
	return report, nil
}
