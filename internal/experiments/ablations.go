package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/table"
)

func init() {
	register(Spec{
		ID:    "ablation-shards",
		Title: "Ablation: C-PoS shard count P isolates the 1/P variance factor of Theorem 4.10",
		Run:   runAblationShards,
	})
	register(Spec{
		ID:    "ablation-withhold",
		Title: "Ablation: withholding period K on FSL-PoS (Section 6.3)",
		Run:   runAblationWithhold,
	})
	register(Spec{
		ID:    "ablation-circulation",
		Title: "Ablation: scaling initial circulation vs shrinking w (Section 6.3 equivalence)",
		Run:   runAblationCirculation,
	})
}

// runAblationShards fixes w and v and sweeps the shard count P. Theorem
// 4.10 predicts the unfair probability falls roughly with 1/P because each
// epoch averages P independent proposer lotteries.
func runAblationShards(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 300, 2000)
	blocks := cfg.pick(cfg.Blocks, 1000, 3000)
	a := paperParams.A
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 20)

	report := &Report{ID: "ablation-shards", Title: "C-PoS shard ablation", Metrics: map[string]float64{}}
	tb := table.New("P", "Thm 4.10 LHS", "final unfair").AlignAll(table.Right)
	seedOff := uint64(400)
	prev := 2.0
	var text strings.Builder
	for _, P := range []int{1, 4, 32} {
		seedOff++
		res, err := runMC(protocol.NewCPoS(paperParams.W, paperParams.V, P), game.TwoMiner(a),
			trials, blocks, cps, cfg.seed()+seedOff, cfg.Workers)
		if err != nil {
			return nil, err
		}
		unfair := pr.UnfairProbability(res.FinalSamples(), a)
		lhs := core.CPoSConditionLHS(blocks, paperParams.W, paperParams.V, P)
		tb.AddRow(P, fmt.Sprintf("%.2e", lhs), fmt3(unfair))
		report.Metrics[fmt.Sprintf("unfair_P%d", P)] = unfair
		_ = prev
		prev = unfair
	}
	text.WriteString("C-PoS with w=0.01, v=0.1: sharding alone tightens concentration.\n\n")
	text.WriteString(tb.String())
	report.Text = text.String()
	return report, nil
}

// runAblationWithhold sweeps the withholding period K on FSL-PoS. K = 0
// is the untreated baseline; larger K freezes staking power for longer,
// making intra-period outcomes i.i.d. and the final λ tighter.
func runAblationWithhold(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 300, 2000)
	blocks := cfg.pick(cfg.Blocks, 2000, 5000)
	a := paperParams.A
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 20)

	report := &Report{ID: "ablation-withhold", Title: "Withholding period ablation", Metrics: map[string]float64{}}
	tb := table.New("K", "final mean", "final unfair").AlignAll(table.Right)
	seedOff := uint64(500)
	for _, k := range []int{0, 100, 1000} {
		seedOff++
		var opts []game.Option
		if k > 0 {
			opts = append(opts, game.WithWithholding(k))
		}
		res, err := runMC(protocol.NewFSLPoS(paperParams.W), game.TwoMiner(a),
			trials, blocks, cps, cfg.seed()+seedOff, cfg.Workers, opts...)
		if err != nil {
			return nil, err
		}
		unfair := pr.UnfairProbability(res.FinalSamples(), a)
		mean := res.FinalSummary().Mean
		tb.AddRow(k, fmt3(mean), fmt3(unfair))
		report.Metrics[fmt.Sprintf("unfair_K%d", k)] = unfair
		report.Metrics[fmt.Sprintf("mean_K%d", k)] = mean
	}
	var text strings.Builder
	text.WriteString("FSL-PoS with w=0.01: longer withholding periods improve robust fairness\n")
	text.WriteString("without moving the mean (Section 6.3, Figure 6(b)).\n\n")
	text.WriteString(tb.String())
	report.Text = text.String()
	return report, nil
}

// runAblationCirculation demonstrates the Section 6.3 equivalence: scaling
// the initial stake circulation up by c is the same game as scaling the
// block reward down by c, because only the ratio w/circulation matters.
func runAblationCirculation(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 300, 2000)
	blocks := cfg.pick(cfg.Blocks, 1000, 3000)
	a := paperParams.A
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 20)

	report := &Report{ID: "ablation-circulation", Title: "Initial circulation ablation", Metrics: map[string]float64{}}
	tb := table.New("setting", "final unfair").AlignAll(table.Right).SetAlign(0, table.Left)
	// Baseline: circulation 1, reward w.
	seed := cfg.seed() + 600
	base, err := runMC(protocol.NewMLPoS(paperParams.W), game.TwoMiner(a), trials, blocks, cps, seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	// 10x circulation with the same absolute reward: game.New normalises
	// the initial stakes, so the equivalent is reward w/10.
	tenth, err := runMC(protocol.NewMLPoS(paperParams.W/10), game.TwoMiner(a), trials, blocks, cps, seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	ub := pr.UnfairProbability(base.FinalSamples(), a)
	ut := pr.UnfairProbability(tenth.FinalSamples(), a)
	tb.AddRow("circulation 1x, reward w", fmt3(ub))
	tb.AddRow("circulation 10x (= reward w/10)", fmt3(ut))
	report.Metrics["unfair_base"] = ub
	report.Metrics["unfair_10x"] = ut
	var text strings.Builder
	text.WriteString("ML-PoS: releasing 10x more initial stake is the w/10 game after\n")
	text.WriteString("normalisation — ICO/airdrop-style circulation boosts improve fairness.\n\n")
	text.WriteString(tb.String())
	report.Text = text.String()
	return report, nil
}
