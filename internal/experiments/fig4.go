package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/plot"
	"repro/internal/protocol"
)

func init() {
	register(Spec{
		ID:    "fig4",
		Title: "Figure 4: average SL-PoS reward proportion under stake and reward sweeps",
		Run:   runFig4,
	})
}

// runFig4 reproduces Figure 4: the mean SL-PoS reward proportion λ_A over
// a long horizon, (a) for initial shares a ∈ {0.1 … 0.5} at w = 0.01 and
// (b) for block rewards w ∈ {1e-4 … 1e-1} at a = 0.2. X axis is
// logarithmic, as in the paper.
//
// Expected shapes: every a < 0.5 decays toward 0 (a = 0.5 stays put);
// larger a and smaller w decay more slowly.
func runFig4(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 120, 500)
	blocks := cfg.pick(cfg.Blocks, 10000, 100000)
	cps := montecarlo.LogCheckpoints(blocks, 25)

	report := &Report{ID: "fig4", Title: "Figure 4", Metrics: map[string]float64{}}
	var text strings.Builder
	fmt.Fprintf(&text, "SL-PoS mean reward proportion, trials=%d, horizon=%d blocks\n\n", trials, blocks)

	// Panel (a): stake sweep at w = 0.01.
	chA := &plot.Chart{Title: "Figure 4(a) different stake allocation a", XLabel: "Number of Blocks (log)",
		YLabel: "mean lambda_A", YMin: 0, YMax: 0.55, LogX: true}
	text.WriteString("(a) stake sweep, w = 0.01:\n")
	seedOff := uint64(0)
	for _, a := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		seedOff++
		res, err := runMC(protocol.NewSLPoS(paperParams.W), game.TwoMiner(a), trials, blocks, cps, cfg.seed()+seedOff, cfg.Workers)
		if err != nil {
			return nil, err
		}
		mean := res.MeanSeries()
		chA.AddSeries(fmt.Sprintf("a=%.1f", a), res.CheckpointsAsFloat(), mean)
		final := mean[len(mean)-1]
		report.Metrics[fmt.Sprintf("final_mean_a%.0f", a*100)] = final
		fmt.Fprintf(&text, "  a=%.1f: final mean lambda = %.4f\n", a, final)
	}

	// Panel (b): reward sweep at a = 0.2.
	chB := &plot.Chart{Title: "Figure 4(b) different block reward w", XLabel: "Number of Blocks (log)",
		YLabel: "mean lambda_A", YMin: 0, YMax: 0.25, LogX: true}
	text.WriteString("(b) reward sweep, a = 0.2:\n")
	for _, w := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		seedOff++
		res, err := runMC(protocol.NewSLPoS(w), game.TwoMiner(0.2), trials, blocks, cps, cfg.seed()+seedOff, cfg.Workers)
		if err != nil {
			return nil, err
		}
		mean := res.MeanSeries()
		chB.AddSeries(fmt.Sprintf("w=%.0e", w), res.CheckpointsAsFloat(), mean)
		final := mean[len(mean)-1]
		report.Metrics[fmt.Sprintf("final_mean_w%.0e", w)] = final
		fmt.Fprintf(&text, "  w=%.0e: final mean lambda = %.4f\n", w, final)
	}
	// Analytic companion: the mean-field half-lives from the stochastic
	// approximation of Theorem 4.9 explain the simulated time scales.
	text.WriteString("\nMean-field half-lives (blocks until a miner at a=0.2 halves her share):\n")
	for _, w := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		hl := core.SLPoSHalfLife(0.2, w, 100_000_000)
		fmt.Fprintf(&text, "  w=%.0e: %d blocks\n", w, hl)
		report.Metrics[fmt.Sprintf("halflife_w%.0e", w)] = float64(hl)
	}
	text.WriteString("\nReading: every a < 0.5 loses everything eventually; a = 0.5 is the knife edge.\n")
	text.WriteString("Smaller w slows the collapse but does not prevent it; the fluid limit of\n")
	text.WriteString("Theorem 4.9's stochastic approximation predicts the same time scales.\n")
	report.Charts = []*plot.Chart{chA, chB}
	report.Text = text.String()
	return report, nil
}
