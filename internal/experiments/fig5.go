package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
)

func init() {
	register(Spec{
		ID:    "fig5",
		Title: "Figure 5: unfair probability under reward and inflation sweeps (a=0.2)",
		Run:   runFig5,
	})
}

// runFig5 reproduces Figure 5: the unfair probability at a = 0.2 for
// (a) ML-PoS under w ∈ {1e-4 … 1e-1}, (b) SL-PoS under the same sweep,
// (c) C-PoS under the same sweep with v = 0.1, and (d) C-PoS under
// v ∈ {0, 0.01, 0.1} with w = 0.01.
//
// Expected shapes: ML-PoS w=1e-4 reaches δ, w=0.1 stays ≥ 0.85; SL-PoS is
// insensitive to w and goes to 1; C-PoS improves on ML-PoS throughout; the
// inflation sweep shows v=0 ≈ ML-PoS and v=0.1 well under δ.
func runFig5(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 300, 2000)
	blocks := cfg.pick(cfg.Blocks, 1500, 5000)
	a := paperParams.A
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 40)
	rewardSweep := []float64{1e-4, 1e-3, 1e-2, 1e-1}

	report := &Report{ID: "fig5", Title: "Figure 5", Metrics: map[string]float64{}}
	var text strings.Builder
	fmt.Fprintf(&text, "Unfair probability at a=%.1f (eps=%.2f, delta=%.2f), trials=%d\n\n", a, pr.Eps, pr.Delta, trials)

	type panel struct {
		id    string
		title string
		make  func(param float64) protocol.Protocol
		sweep []float64
		label func(param float64) string
	}
	panels := []panel{
		{"a", "ML-PoS reward sweep", func(w float64) protocol.Protocol { return protocol.NewMLPoS(w) },
			rewardSweep, func(w float64) string { return fmt.Sprintf("w=%.0e", w) }},
		{"b", "SL-PoS reward sweep", func(w float64) protocol.Protocol { return protocol.NewSLPoS(w) },
			rewardSweep, func(w float64) string { return fmt.Sprintf("w=%.0e", w) }},
		{"c", "C-PoS reward sweep (v=0.1)", func(w float64) protocol.Protocol {
			return protocol.NewCPoS(w, paperParams.V, paperParams.Shards)
		}, rewardSweep, func(w float64) string { return fmt.Sprintf("w=%.0e", w) }},
		{"d", "C-PoS inflation sweep (w=0.01)", func(v float64) protocol.Protocol {
			if v == 0 {
				return protocol.NewCPoS(paperParams.W, 0, paperParams.Shards)
			}
			return protocol.NewCPoS(paperParams.W, v, paperParams.Shards)
		}, []float64{0, 0.01, 0.1}, func(v float64) string { return fmt.Sprintf("v=%.2f", v) }},
	}

	seedOff := uint64(100)
	for _, pn := range panels {
		runs := map[string]*montecarlo.Result{}
		var labels []string
		fmt.Fprintf(&text, "(%s) %s:\n", pn.id, pn.title)
		for _, param := range pn.sweep {
			seedOff++
			res, err := runMC(pn.make(param), game.TwoMiner(a), trials, blocks, cps, cfg.seed()+seedOff, cfg.Workers)
			if err != nil {
				return nil, err
			}
			label := pn.label(param)
			labels = append(labels, label)
			runs[label] = res
			unfair := res.UnfairProbSeries(a, pr.Eps)
			last := unfair[len(unfair)-1]
			report.Metrics[fmt.Sprintf("unfair_%s_%s", pn.id, label)] = last
			fmt.Fprintf(&text, "  %s: final unfair = %.3f\n", label, last)
		}
		report.Charts = append(report.Charts,
			unfairChart(fmt.Sprintf("Figure 5(%s) %s", pn.id, pn.title), a, pr, runs, labels))
	}
	text.WriteString("\nReading: small rewards rescue ML-PoS; nothing rescues SL-PoS; inflation\n")
	text.WriteString("rewards dilute proposer-lottery variance and rescue C-PoS.\n")
	report.Text = text.String()
	return report, nil
}
