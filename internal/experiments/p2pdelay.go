package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chainsim"
	"repro/internal/stats"
	"repro/internal/table"
)

func init() {
	register(Spec{
		ID:    "p2p-delay",
		Title: "P2P extension: propagation delay, forks, and the erosion of PoW fairness",
		Run:   runP2PDelay,
	})
}

// runP2PDelay measures PoW fairness on a peer-to-peer network with block
// propagation delay — the deployment reality behind the paper's
// two-instance Geth experiments. Each delay setting runs independent
// networks where a 20% miner races an 80% miner; forks occur when both
// find blocks before hearing from each other and resolve by
// longest-chain.
//
// Finding: Theorem 3.2's fairness silently assumes instant propagation.
// With latency, the larger miner hears her own blocks immediately and
// wins most fork races (she produces the next block more often), so the
// small miner's λ erodes BELOW her hash share as delay grows — a
// latency-induced rich-get-richer effect on top of the protocol itself.
func runP2PDelay(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 20, 120)
	blocks := cfg.pick(cfg.Blocks, 60, 200)
	const target = uint64(1) << 56 // 1/256 per trial → ~12.8 rounds per block

	report := &Report{ID: "p2p-delay", Title: "P2P delay", Metrics: map[string]float64{}}
	tb := table.New("delay (rounds)", "mean lambda_A", "orphan rate", "mean rounds/block").
		AlignAll(table.Right)
	var text strings.Builder
	fmt.Fprintf(&text, "Two-miner PoW P2P networks (A=20%%), %d trials x %d blocks per delay.\n", trials, blocks)
	text.WriteString("Blocks arrive ~13 rounds apart; delays span a fraction of that interval.\n\n")

	for _, delay := range []int{0, 2, 4, 8} {
		lambdas := make([]float64, 0, trials)
		produced, orphans, rounds := 0, 0, 0
		for i := 0; i < trials; i++ {
			res, err := chainsim.RunP2P(chainsim.P2PConfig{
				Target:      target,
				BlockReward: 10_000,
				Miners:      []chainsim.MinerSpec{{Name: "A", Resource: 4}, {Name: "B", Resource: 16}},
				DelayRounds: delay,
				Seed:        cfg.seed()*10_000 + uint64(delay)*1000 + uint64(i),
				Salt:        cfg.seed()*10_000 + uint64(delay)*1000 + uint64(i),
			}, blocks)
			if err != nil {
				return nil, err
			}
			if err := chainsim.VerifyCanonical(res.Canonical, target); err != nil {
				return nil, err
			}
			lambdas = append(lambdas, res.Lambda("A"))
			produced += res.Produced
			orphans += res.Orphans()
			rounds += res.Rounds
		}
		meanL := stats.Mean(lambdas)
		orphanRate := float64(orphans) / float64(produced)
		roundsPerBlock := float64(rounds) / float64(trials*blocks)
		tb.AddRow(delay, fmt.Sprintf("%.4f", meanL), fmt.Sprintf("%.4f", orphanRate),
			fmt.Sprintf("%.1f", roundsPerBlock))
		report.Metrics[fmt.Sprintf("lambda_d%d", delay)] = meanL
		report.Metrics[fmt.Sprintf("orphan_d%d", delay)] = orphanRate
	}
	text.WriteString(tb.String())
	text.WriteString("\nReading: orphan rate grows with delay, and the small miner's mean λ falls\n")
	text.WriteString("below her 20% hash share — the larger miner wins fork races because she\n")
	text.WriteString("hears her own blocks instantly. Fast blocks + latency erode PoW fairness.\n")
	report.Text = text.String()
	return report, nil
}
