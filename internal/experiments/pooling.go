package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/table"
)

func init() {
	register(Spec{
		ID:    "pooling",
		Title: "Section 6.5: does robust fairness remove the incentive to join mining pools?",
		Run:   runPooling,
	})
	register(Spec{
		ID:    "hybrid",
		Title: "Filecoin-style hybrid power (Section 6.4): fairness vs the fixed-resource weight alpha",
		Run:   runHybrid,
	})
}

// runPooling quantifies the paper's Section 6.5 argument: miners join
// pools to reduce income variance, and a robustly fair incentive removes
// that motivation. Two 10% miners either mine solo (against an 80%
// whale) or pool into a single 20% entity splitting rewards pro rata.
// The variance reduction pooling buys is large exactly when the protocol
// is not robustly fair.
func runPooling(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 400, 2000)
	blocks := cfg.pick(cfg.Blocks, 1500, 5000)
	cps := []int{blocks}

	protos := map[string]func() protocol.Protocol{
		"PoW":    func() protocol.Protocol { return protocol.NewPoW(paperParams.W) },
		"ML-PoS": func() protocol.Protocol { return protocol.NewMLPoS(paperParams.W) },
		"C-PoS":  func() protocol.Protocol { return protocol.NewCPoS(paperParams.W, paperParams.V, paperParams.Shards) },
	}
	order := []string{"PoW", "ML-PoS", "C-PoS"}

	report := &Report{ID: "pooling", Title: "Mining-pool incentive", Metrics: map[string]float64{}}
	tb := table.New("Protocol", "solo std", "pooled std", "variance ratio", "robustly fair solo?").
		AlignAll(table.Right).SetAlign(0, table.Left)
	pr := core.DefaultParams
	var text strings.Builder
	fmt.Fprintf(&text, "Two 10%% miners vs an 80%% whale; pooling merges them into one 20%% entity\n")
	fmt.Fprintf(&text, "splitting rewards equally. trials=%d, horizon=%d blocks.\n\n", trials, blocks)

	seedOff := uint64(700)
	for _, name := range order {
		seedOff++
		// Solo: track the first 10% miner.
		solo, err := runMC(protos[name](), []float64{0.1, 0.1, 0.8}, trials, blocks, cps, cfg.seed()+seedOff, cfg.Workers)
		if err != nil {
			return nil, err
		}
		// Pooled: one 20% entity; each member receives λ_pool/2.
		pooled, err := runMC(protos[name](), []float64{0.2, 0.8}, trials, blocks, cps, cfg.seed()+seedOff+50, cfg.Workers)
		if err != nil {
			return nil, err
		}
		soloSamples := solo.FinalSamples()
		memberSamples := make([]float64, len(pooled.FinalSamples()))
		for i, l := range pooled.FinalSamples() {
			memberSamples[i] = l / 2
		}
		soloStd := math.Sqrt(stats.Variance(soloSamples))
		poolStd := math.Sqrt(stats.Variance(memberSamples))
		ratio := poolStd * poolStd / (soloStd * soloStd)
		fairSolo := pr.RobustlyFair(soloSamples, 0.1)
		key := strings.ReplaceAll(name, "-", "")
		report.Metrics["solo_std_"+key] = soloStd
		report.Metrics["pool_std_"+key] = poolStd
		report.Metrics["var_ratio_"+key] = ratio
		tb.AddRow(name, fmt.Sprintf("%.4f", soloStd), fmt.Sprintf("%.4f", poolStd),
			fmt.Sprintf("%.3f", ratio), fairSolo)
	}
	text.WriteString(tb.String())
	text.WriteString("\nReading: pooling always halves-ish the standard deviation, but under a\n")
	text.WriteString("robustly fair incentive the solo income is already concentrated — the\n")
	text.WriteString("absolute gain is negligible, removing the centralisation pressure (§6.5).\n")
	report.Text = text.String()
	return report, nil
}

// runHybrid sweeps the Filecoin-style fixed-resource weight α from pure
// stake compounding (α = 0, ML-PoS) to pure physical resource (α = 1,
// PoW), measuring the unfair probability at each point.
func runHybrid(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 400, 2000)
	blocks := cfg.pick(cfg.Blocks, 1500, 5000)
	a := paperParams.A
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 20)

	report := &Report{ID: "hybrid", Title: "Hybrid power sweep", Metrics: map[string]float64{}}
	tb := table.New("alpha", "final unfair", "equitability").AlignAll(table.Right)
	seedOff := uint64(800)
	var text strings.Builder
	text.WriteString("power_i = alpha*storage_i + (1-alpha)*stakeShare_i, w = 0.05\n\n")
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		seedOff++
		res, err := runMC(protocol.NewHybrid(0.05, alpha), game.TwoMiner(a), trials, blocks, cps, cfg.seed()+seedOff, cfg.Workers)
		if err != nil {
			return nil, err
		}
		unfair := pr.UnfairProbability(res.FinalSamples(), a)
		eq := core.Equitability(res.FinalSamples(), a)
		tb.AddRow(fmt.Sprintf("%.2f", alpha), fmt3(unfair), fmt.Sprintf("%.4f", eq))
		report.Metrics[fmt.Sprintf("unfair_alpha%.2f", alpha)] = unfair
		report.Metrics[fmt.Sprintf("equitability_alpha%.2f", alpha)] = eq
	}
	text.WriteString(tb.String())
	text.WriteString("\nReading: fairness improves monotonically with the fixed-resource share —\n")
	text.WriteString("a storage-heavy Filecoin-style design inherits PoW's robust fairness.\n")
	report.Text = text.String()
	return report, nil
}
