package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/table"
)

func init() {
	register(Spec{
		ID:    "realsys",
		Title: "Real-system analogue: chainsim networks standing in for Geth/Qtum/NXT (Section 5.1-5.2)",
		Run:   runRealSys,
	})
}

// realCirculation and realReward mirror the analytic setting: the reward
// is w = 0.01 of the initial circulation.
const (
	realCirculation = 1_000_000
	realReward      = 10_000
)

// runRealSys reproduces the paper's real-system measurements (the green
// bars of Figure 2) on the chainsim substrate: two-miner networks with
// actual SHA-256 puzzles, block validation and an exact ledger, for the
// PoW (Geth analogue), ML-PoS (Qtum analogue), SL-PoS (NXT analogue) and
// FSL-PoS (treated NXT) engines. The paper repeated PoW 10 times and PoS
// 500 times; we keep those counts as defaults.
func runRealSys(cfg Config) (*Report, error) {
	powTrials := cfg.pick(cfg.Trials, 5, 10)
	posTrials := cfg.pick(cfg.Trials, 60, 500)
	blocks := cfg.pick(cfg.Blocks, 150, 1000)
	a := paperParams.A
	pr := core.DefaultParams

	type engineCase struct {
		name   string
		trials int
		build  func(salt uint64) (*chainsim.Network, error)
	}
	aliceRes := uint64(a * realCirculation)
	bobRes := uint64(realCirculation) - aliceRes
	perUnit := uint64(math.Exp2(64) / 32 / realCirculation)
	cases := []engineCase{
		{"PoW (Geth analogue)", powTrials, func(salt uint64) (*chainsim.Network, error) {
			return chainsim.NewNetwork(chainsim.NetworkConfig{
				Engine: &chainsim.PoWEngine{Target: 1 << 57, BlockReward: realReward},
				Miners: []chainsim.MinerSpec{{Name: "A", Resource: 20}, {Name: "B", Resource: 80}},
				Seed:   salt, Salt: salt,
			})
		}},
		{"ML-PoS (Qtum analogue)", posTrials, func(salt uint64) (*chainsim.Network, error) {
			return chainsim.NewNetwork(chainsim.NetworkConfig{
				Engine: &chainsim.MLPoSEngine{TargetPerUnit: perUnit, BlockReward: realReward},
				Miners: []chainsim.MinerSpec{{Name: "A", Resource: aliceRes}, {Name: "B", Resource: bobRes}},
				Salt:   salt,
			})
		}},
		{"SL-PoS (NXT analogue)", posTrials, func(salt uint64) (*chainsim.Network, error) {
			return chainsim.NewNetwork(chainsim.NetworkConfig{
				Engine: &chainsim.SLPoSEngine{BlockReward: realReward},
				Miners: []chainsim.MinerSpec{{Name: "A", Resource: aliceRes}, {Name: "B", Resource: bobRes}},
				Salt:   salt,
			})
		}},
		{"FSL-PoS (treated NXT)", posTrials, func(salt uint64) (*chainsim.Network, error) {
			return chainsim.NewNetwork(chainsim.NetworkConfig{
				Engine: &chainsim.FSLPoSEngine{BlockReward: realReward},
				Miners: []chainsim.MinerSpec{{Name: "A", Resource: aliceRes}, {Name: "B", Resource: bobRes}},
				Salt:   salt,
			})
		}},
		// The experiment the paper could not run: Ethereum 2.0 was under
		// development, so C-PoS was evaluated by simulation only. Our
		// block-level C-PoS engine (shard lotteries + exact proportional
		// attester rewards + epoch-start stake snapshots) fills that gap.
		{"C-PoS (Eth2 analogue)", posTrials, func(salt uint64) (*chainsim.Network, error) {
			return chainsim.NewNetwork(chainsim.NetworkConfig{
				Engine: &chainsim.CPoSEngine{
					PerShardReward:    realReward / 32,
					InflationPerEpoch: realReward * 10, // v = 10w as in Eth2
					Shards:            32,
				},
				Miners: []chainsim.MinerSpec{{Name: "A", Resource: aliceRes}, {Name: "B", Resource: bobRes}},
				Salt:   salt,
			})
		}},
	}

	report := &Report{ID: "realsys", Title: "Real-system analogue", Metrics: map[string]float64{}}
	var text strings.Builder
	fmt.Fprintf(&text, "chainsim two-miner networks, a=%.1f, w=%.2f of circulation, %d blocks\n\n",
		a, float64(realReward)/realCirculation, blocks)
	tb := table.New("System", "Trials", "Mean", "P5", "P95", "Unfair").AlignAll(table.Right).SetAlign(0, table.Left)

	for ci, ec := range cases {
		lambdas := make([]float64, 0, ec.trials)
		for i := 0; i < ec.trials; i++ {
			salt := cfg.seed()*1000 + uint64(ci)*100000 + uint64(i)
			net, err := ec.build(salt)
			if err != nil {
				return nil, err
			}
			if err := net.RunBlocks(blocks); err != nil {
				return nil, fmt.Errorf("%s: %w", ec.name, err)
			}
			if err := net.Chain.CheckConservation(); err != nil {
				return nil, fmt.Errorf("%s: %w", ec.name, err)
			}
			lambdas = append(lambdas, net.Lambda("A"))
		}
		sum := stats.Summarize(lambdas)
		unfair := pr.UnfairProbability(lambdas, a)
		tb.AddRow(ec.name, ec.trials, fmt3(sum.Mean), fmt3(sum.P5), fmt3(sum.P95), fmt3(unfair))
		key := keyOf(ec.name)
		report.Metrics["mean_"+key] = sum.Mean
		report.Metrics["unfair_"+key] = unfair
	}
	text.WriteString(tb.String())
	text.WriteString("\nReading: the block-level systems reproduce the analytic results — PoW and\n")
	text.WriteString("FSL-PoS mean ~0.2, ML-PoS mean ~0.2 with a wide spread, SL-PoS collapsing.\n")
	report.Text = text.String()
	return report, nil
}

func keyOf(name string) string {
	k := strings.ToLower(name)
	if i := strings.IndexByte(k, ' '); i > 0 {
		k = k[:i]
	}
	return strings.ReplaceAll(k, "-", "")
}
