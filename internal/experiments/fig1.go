package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/plot"
)

func init() {
	register(Spec{
		ID:    "fig1",
		Title: "Figure 1: SL-PoS probability of winning the next block vs current share",
		Run:   runFig1,
	})
}

// runFig1 reproduces Figure 1: the SL-PoS next-block win probability as a
// function of the miner's current stake share, against the proportional
// diagonal. Every point below the diagonal on (0, 1/2) is drift toward
// losing everything; above it on (1/2, 1), drift toward monopoly.
func runFig1(cfg Config) (*Report, error) {
	const pts = 101
	xs := make([]float64, pts)
	win := make([]float64, pts)
	diag := make([]float64, pts)
	for i := 0; i < pts; i++ {
		z := float64(i) / float64(pts-1)
		xs[i] = z
		win[i] = core.SLPoSWinProbTwoMiner(z)
		diag[i] = z
	}
	chart := &plot.Chart{
		Title:  "SL-PoS win probability vs stake share",
		XLabel: "current stake share z",
		YLabel: "Pr[win next block]",
		YMin:   0, YMax: 1,
	}
	chart.AddSeries("SL-PoS", xs, win)
	chart.AddSeries("proportional (fair)", xs, diag)

	fps := core.SLPoSFixedPoints()
	var b strings.Builder
	b.WriteString("SL-PoS drift analysis (Theorem 4.9)\n")
	for _, fp := range fps {
		kind := "unstable"
		if fp.Stable {
			kind = "stable (absorbing)"
		}
		fmt.Fprintf(&b, "  fixed point z = %.3f: %s\n", fp.Z, kind)
	}
	b.WriteString("Shares below 1/2 drift to 0; above 1/2 drift to 1: monopoly almost surely.\n")

	metrics := map[string]float64{
		"winprob_at_0.2": core.SLPoSWinProbTwoMiner(0.2),
		"winprob_at_0.3": core.SLPoSWinProbTwoMiner(0.3),
		"winprob_at_0.7": core.SLPoSWinProbTwoMiner(0.7),
		"fixed_points":   float64(len(fps)),
	}
	return &Report{
		ID:      "fig1",
		Title:   "Figure 1",
		Text:    b.String(),
		Charts:  []*plot.Chart{chart},
		Metrics: metrics,
	}, nil
}
