package experiments

import (
	"strings"
	"testing"
)

// TestFig3SweepMatchesFig3 is the acceptance proof that the scenario
// abstraction subsumes the hand-coded exhibits: for the same Config, the
// sweep-engine reproduction of Figure 3 must emit exactly the metrics the
// internal/experiments path emits.
func TestFig3SweepMatchesFig3(t *testing.T) {
	cfg := Config{Quick: true, Trials: 120, Blocks: 800, Seed: 7}
	direct, err := runFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	swept, err := runFig3Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unfairKeys := 0
	for key, want := range direct.Metrics {
		if !strings.HasPrefix(key, "unfair_") {
			continue
		}
		unfairKeys++
		got, ok := swept.Metrics[key]
		if !ok {
			t.Errorf("sweep metrics missing %q (have %v)", key, swept.Metrics)
			continue
		}
		if got != want {
			t.Errorf("%s: sweep %v != direct %v", key, got, want)
		}
	}
	if unfairKeys != 16 {
		t.Errorf("compared %d unfair metrics, want 16 (4 protocols × 4 shares)", unfairKeys)
	}
}

func TestFig3SweepReport(t *testing.T) {
	rep, err := runFig3Sweep(Config{Quick: true, Trials: 40, Blocks: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics) != 16 {
		t.Errorf("metrics = %d, want 16", len(rep.Metrics))
	}
	for _, want := range []string{"scenarios", "fig3/pow/a=0.1", "computed"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("report text missing %q", want)
		}
	}
}
