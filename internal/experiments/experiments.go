// Package experiments regenerates every table and figure in the paper's
// evaluation (Section 5 and Section 6.1): Figures 1–6 and Table 1, plus
// the real-system analogue runs on the chainsim substrate and the
// ablation studies called out in DESIGN.md.
//
// Each experiment is registered under the paper's exhibit ID ("fig2",
// "table1", …), takes a Config that can scale trial counts down for tests
// and benchmarks, and produces a Report containing rendered text, charts
// and a flat metric map that tests assert paper shapes against.
package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/plot"
	"repro/internal/protocol"
)

// Config scales an experiment run.
type Config struct {
	// Trials overrides the default trial count when > 0.
	Trials int
	// Blocks overrides the default horizon when > 0.
	Blocks int
	// Seed is the base RNG seed (default 1 when zero keeps runs stable).
	Seed uint64
	// Quick selects reduced defaults suitable for tests and benchmarks.
	Quick bool
	// Workers caps Monte-Carlo parallelism (0 = GOMAXPROCS).
	Workers int
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// pick returns override when > 0, else quick or full default by mode.
func (c Config) pick(override, quick, full int) int {
	if override > 0 {
		return override
	}
	if c.Quick {
		return quick
	}
	return full
}

// Report is the output of one experiment.
type Report struct {
	ID    string
	Title string
	// Text is the human-readable rendering (tables + notes).
	Text string
	// Charts are the figure panels, renderable as ASCII or SVG.
	Charts []*plot.Chart
	// Metrics exposes headline numbers for assertions and benchmarks.
	Metrics map[string]float64
}

// Spec describes a registered experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.ID]; dup {
		panic("experiments: duplicate id " + s.ID)
	}
	registry[s.ID] = s
}

// ErrUnknown reports a request for an unregistered experiment.
var ErrUnknown = errors.New("experiments: unknown experiment")

// Get returns the experiment with the given ID.
func Get(id string) (Spec, error) {
	s, ok := registry[id]
	if !ok {
		return Spec{}, fmt.Errorf("%w: %q (try one of %s)", ErrUnknown, id, strings.Join(IDs(), ", "))
	}
	return s, nil
}

// IDs returns all registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns all registered experiments sorted by ID.
func All() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// --- shared helpers -------------------------------------------------------

// paperParams are the default evaluation constants of Section 5.1.
var paperParams = struct {
	A      float64 // miner A's initial share
	W      float64 // block / proposer reward
	V      float64 // inflation reward (C-PoS)
	Shards int     // C-PoS shards per epoch
}{A: 0.2, W: 0.01, V: 0.1, Shards: 32}

// runMC is the shared Monte-Carlo invocation.
func runMC(p protocol.Protocol, initial []float64, trials, blocks int, cps []int, seed uint64, workers int, opts ...game.Option) (*montecarlo.Result, error) {
	return montecarlo.Run(p, initial, montecarlo.Config{
		Trials:      trials,
		Blocks:      blocks,
		Checkpoints: cps,
		Seed:        seed,
		Workers:     workers,
		GameOptions: opts,
	})
}

// evolutionChart builds a Figure 2/6-style panel: mean line, 5–95 band and
// the fair-area dashes.
func evolutionChart(title string, res *montecarlo.Result, a float64, pr core.Params) *plot.Chart {
	x := res.CheckpointsAsFloat()
	lo, hi := pr.FairArea(a)
	c := &plot.Chart{Title: title, XLabel: "Number of Blocks", YLabel: "lambda_A", YMin: 0, YMax: 0.5}
	c.AddBand("5th-95th pct", x, res.PercentileSeries(5), res.PercentileSeries(95))
	c.AddSeries("mean", x, res.MeanSeries())
	c.AddHLine("fair lo", lo)
	c.AddHLine("fair hi", hi)
	return c
}

// unfairChart builds a Figure 3/5-style panel from several labelled runs.
func unfairChart(title string, a float64, pr core.Params, runs map[string]*montecarlo.Result, order []string) *plot.Chart {
	c := &plot.Chart{Title: title, XLabel: "Number of Blocks", YLabel: "Unfair Probability", YMin: 0, YMax: 1}
	for _, name := range order {
		res := runs[name]
		c.AddSeries(name, res.CheckpointsAsFloat(), res.UnfairProbSeries(a, pr.Eps))
	}
	c.AddHLine("delta", pr.Delta)
	return c
}

func fmt3(v float64) string { return fmt.Sprintf("%.3f", v) }
