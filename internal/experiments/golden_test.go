package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	fairness "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestFig3SweepReportGolden byte-locks the fig3 sweep report against a
// checked-in fixture. The report is a pure function of the scenario
// list (seeds, hashes, verdicts, equitability, convergence, stats), so
// any drift — a normalisation change, a hash-input change, a reordered
// axis, an RNG regression — shows up as a byte diff here before it can
// silently poison caches or published numbers. Timing fields are the
// only nondeterminism and are zeroed before comparison.
//
// To regenerate after an INTENDED semantic change:
//
//	go test ./internal/experiments -run Fig3SweepReportGolden -update
func TestFig3SweepReportGolden(t *testing.T) {
	cfg := Config{Quick: true, Trials: 40, Blocks: 300, Seed: 9}
	specs := Fig3SweepSpecs(cfg)
	eng := fairness.NewEngine()
	rep, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	// Scrub the wall-clock bookkeeping; everything else must be stable.
	for i := range rep.Outcomes {
		rep.Outcomes[i].ElapsedMS = 0
	}
	rep.Stats.WallMS = 0
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "fig3sweep.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fig3 sweep report drifted from %s (%d vs %d bytes).\n"+
			"If the change is intentional, regenerate with:\n"+
			"  go test ./internal/experiments -run Fig3SweepReportGolden -update\n"+
			"and justify the diff in the commit.", golden, len(got), len(want))
	}
}
