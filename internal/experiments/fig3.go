package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/plot"
	"repro/internal/protocol"
)

func init() {
	register(Spec{
		ID:    "fig3",
		Title: "Figure 3: unfair probability vs blocks under different initial shares a",
		Run:   runFig3,
	})
}

// runFig3 reproduces Figure 3: the unfair probability
// Pr[λ_A outside the fair area] as a function of the number of blocks,
// for a ∈ {0.1, 0.2, 0.3, 0.4} under each protocol (w = 0.01, v = 0.1).
//
// Expected shapes: (a) PoW falls to ~0, faster for larger a; (b) ML-PoS
// plateaus above δ; (c) SL-PoS climbs to 1; (d) C-PoS plateaus far below
// ML-PoS.
func runFig3(cfg Config) (*Report, error) {
	trials := cfg.pick(cfg.Trials, 300, 2000)
	blocks := cfg.pick(cfg.Blocks, 1500, 5000)
	pr := core.DefaultParams
	cps := montecarlo.LinearCheckpoints(blocks, 40)
	shares := []float64{0.1, 0.2, 0.3, 0.4}

	makeProto := map[string]func() protocol.Protocol{
		"PoW":    func() protocol.Protocol { return protocol.NewPoW(paperParams.W) },
		"ML-PoS": func() protocol.Protocol { return protocol.NewMLPoS(paperParams.W) },
		"SL-PoS": func() protocol.Protocol { return protocol.NewSLPoS(paperParams.W) },
		"C-PoS":  func() protocol.Protocol { return protocol.NewCPoS(paperParams.W, paperParams.V, paperParams.Shards) },
	}
	order := []string{"PoW", "ML-PoS", "SL-PoS", "C-PoS"}
	panel := map[string]string{"PoW": "(a)", "ML-PoS": "(b)", "SL-PoS": "(c)", "C-PoS": "(d)"}

	report := &Report{ID: "fig3", Title: "Figure 3", Metrics: map[string]float64{}}
	var text strings.Builder
	fmt.Fprintf(&text, "Unfair probability vs blocks (eps=%.2f, delta=%.2f), trials=%d\n\n", pr.Eps, pr.Delta, trials)

	seedOff := uint64(0)
	for _, name := range order {
		runs := map[string]*montecarlo.Result{}
		var labels []string
		fmt.Fprintf(&text, "%s %s:\n", panel[name], name)
		for _, a := range shares {
			seedOff++
			res, err := runMC(makeProto[name](), game.TwoMiner(a), trials, blocks, cps, cfg.seed()+seedOff, cfg.Workers)
			if err != nil {
				return nil, err
			}
			// Each share has its own fair area around its own a, so a
			// combined chart needs per-series unfair curves computed
			// against that a; store labelled results.
			label := fmt.Sprintf("a=%.1f", a)
			labels = append(labels, label)
			runs[label] = res
			finalUnfair := res.UnfairProbSeries(a, pr.Eps)
			last := finalUnfair[len(finalUnfair)-1]
			key := fmt.Sprintf("unfair_%s_a%.0f", strings.ReplaceAll(name, "-", ""), a*100)
			report.Metrics[key] = last
			fmt.Fprintf(&text, "  a=%.1f final unfair=%.3f\n", a, last)
		}
		// Build the panel chart manually: series i uses its own a.
		ch := unfairChartPerShare(fmt.Sprintf("Figure 3%s %s", panel[name], name), pr, runs, labels, shares)
		report.Charts = append(report.Charts, ch)
	}
	text.WriteString("\nReading: PoW reaches delta and stays; ML-PoS plateaus above delta for small a;\n")
	text.WriteString("SL-PoS converges to 1 for every a; C-PoS sits far below ML-PoS.\n")
	report.Text = text.String()
	return report, nil
}

// unfairChartPerShare builds a Figure 3 panel where each series' unfair
// probability is computed against its own initial share.
func unfairChartPerShare(title string, pr core.Params, runs map[string]*montecarlo.Result, labels []string, shares []float64) *plot.Chart {
	c := &plot.Chart{Title: title, XLabel: "Number of Blocks", YLabel: "Unfair Probability", YMin: 0, YMax: 1}
	for i, label := range labels {
		res := runs[label]
		c.AddSeries(label, res.CheckpointsAsFloat(), res.UnfairProbSeries(shares[i], pr.Eps))
	}
	c.AddHLine("delta", pr.Delta)
	return c
}
