package arena

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/scenario"
)

// powSpec is an honest PoW baseline with one 40% miner — above the
// Eyal–Sirer γ=0 profitability threshold of 1/3.
func powSpec() scenario.Spec {
	return scenario.Spec{Protocol: "pow", Stake: 0.4, Miners: 4, Blocks: 2000, Trials: 40, Seed: 7}
}

func TestArenaPoWBigMinerTurnsSelfish(t *testing.T) {
	eng := Engine{Config: Config{Candidates: []Candidate{
		{Strategy: attack.StrategyHonest},
		{Strategy: attack.StrategySelfish},
	}}}
	res, err := eng.Run(context.Background(), powSpec())
	if err != nil {
		t.Fatal(err)
	}
	eq := res.Equilibrium
	if !eq.Converged {
		t.Fatalf("dynamics did not converge in %d rounds", eq.Rounds)
	}
	if !reflect.DeepEqual(eq.Deviators, []int{0}) {
		t.Fatalf("deviators = %v, want [0]", eq.Deviators)
	}
	if eq.Profile[0].Strategy != attack.StrategySelfish {
		t.Fatalf("miner 0 plays %q, want selfish", eq.Profile[0].Strategy)
	}
	for i := 1; i < len(eq.Profile); i++ {
		if eq.Profile[i].Strategy != attack.StrategyHonest {
			t.Errorf("miner %d plays %q, want honest", i, eq.Profile[i].Strategy)
		}
	}
	if d := eq.Delta(0); d <= 0 {
		t.Errorf("attacker equilibrium delta %v, want > 0", d)
	}
	if math.Abs(eq.HonestPayoffs[0]-0.4) > 0.02 {
		t.Errorf("honest baseline payoff %v, want ≈ 0.4", eq.HonestPayoffs[0])
	}
	rev, _ := attack.SelfishMining{Alpha: 0.4, Gamma: 0}.Revenue()
	if math.Abs(eq.Payoffs[0]-rev) > 0.02 {
		t.Errorf("equilibrium payoff %v, closed form %v", eq.Payoffs[0], rev)
	}
	// Victims lose exactly what the attacker gains, power-proportionally.
	for i := 1; i < len(eq.Profile); i++ {
		if eq.Delta(i) >= 0 {
			t.Errorf("honest miner %d delta %v, want < 0", i, eq.Delta(i))
		}
	}
	if len(res.Lambda) != 1 || len(res.Lambda[0]) != 40 {
		t.Fatalf("lambda matrix %dx%d, want 1x40", len(res.Lambda), len(res.Lambda[0]))
	}
	if res.TrialsRun == 0 {
		t.Error("TrialsRun not accounted")
	}
}

func TestArenaPoWSmallMinersStayHonest(t *testing.T) {
	// Every miner holds 20% — below the γ=0 threshold, so rational
	// selfish collapses to honest and committed selfish-delay earns less
	// than honest play. The default menu must fix at all-honest in one
	// round of no-moves.
	spec := scenario.Spec{Protocol: "pow", Stake: 0.2, Miners: 5, Blocks: 1500, Trials: 30, Seed: 11}
	res, err := (&Engine{}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	eq := res.Equilibrium
	if !eq.Converged || len(eq.Deviators) != 0 || len(eq.Moves) != 0 {
		t.Fatalf("want all-honest fixed point, got deviators=%v moves=%v converged=%v",
			eq.Deviators, eq.Moves, eq.Converged)
	}
	if eq.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", eq.Rounds)
	}
	for i, pay := range eq.Payoffs {
		if math.Abs(pay-0.2) > 0.03 {
			t.Errorf("miner %d equilibrium payoff %v, want ≈ 0.2", i, pay)
		}
	}
}

func TestArenaPoSWithholdingNeverPays(t *testing.T) {
	// Deferring the staking effect of one's own rewards only slows one's
	// own compounding: withhold is strictly dominated, so compounding PoS
	// fixes at all-honest and equilibrium fairness equals honest fairness.
	spec := scenario.Spec{Protocol: "mlpos", W: 0.01, Stake: 0.3, Miners: 3, Blocks: 1000, Trials: 30, Seed: 3}
	res, err := (&Engine{}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	eq := res.Equilibrium
	if !eq.Converged || len(eq.Deviators) != 0 {
		t.Fatalf("want all-honest fixed point, got deviators=%v converged=%v", eq.Deviators, eq.Converged)
	}
	for i := range eq.Payoffs {
		if eq.Payoffs[i] != eq.HonestPayoffs[i] {
			t.Errorf("miner %d equilibrium payoff %v != honest payoff %v", i, eq.Payoffs[i], eq.HonestPayoffs[i])
		}
	}
}

func TestArenaDeterministic(t *testing.T) {
	run := func() *Result {
		t.Helper()
		res, err := (&Engine{TrialWorkers: 3}).Run(context.Background(), powSpec())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical arena runs disagree")
	}
}

func TestArenaRefusesTreatmentBlocks(t *testing.T) {
	eng := &Engine{}
	for name, mutate := range map[string]func(*scenario.Spec){
		"adversary":      func(s *scenario.Spec) { s.Adversary = &scenario.Adversary{Strategy: "selfish"} },
		"network":        func(s *scenario.Spec) { s.Network = &scenario.Network{ForkRate: 0.1} },
		"withhold_every": func(s *scenario.Spec) { s.WithholdEvery = 10 },
	} {
		spec := powSpec()
		mutate(&spec)
		if _, err := eng.Run(context.Background(), spec); !errors.Is(err, ErrConfig) {
			t.Errorf("%s block: err = %v, want ErrConfig", name, err)
		}
	}
}

func TestArenaUnknownCandidate(t *testing.T) {
	eng := &Engine{Config: Config{Candidates: []Candidate{{Strategy: "petty-compliant"}}}}
	_, err := eng.Run(context.Background(), powSpec())
	var unknown *scenario.UnknownStrategyError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want UnknownStrategyError", err)
	}
	if len(unknown.Known) == 0 {
		t.Error("error does not list registered strategies")
	}
}

func TestArenaInapplicableCandidate(t *testing.T) {
	eng := &Engine{Config: Config{Candidates: []Candidate{{Strategy: attack.StrategyWithhold}}}}
	_, err := eng.Run(context.Background(), powSpec())
	if !errors.Is(err, ErrConfig) || !strings.Contains(errString(err), "withhold") {
		t.Fatalf("err = %v, want ErrConfig naming withhold", err)
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestDefaultCandidates(t *testing.T) {
	pow := DefaultCandidates("pow")
	want := []Candidate{{Strategy: "honest"}, {Strategy: "selfish"}, {Strategy: "selfish-delay"}}
	if !reflect.DeepEqual(pow, want) {
		t.Errorf("pow menu = %v, want %v", pow, want)
	}
	pos := DefaultCandidates("mlpos")
	want = []Candidate{{Strategy: "honest"}, {Strategy: "withhold"}}
	if !reflect.DeepEqual(pos, want) {
		t.Errorf("mlpos menu = %v, want %v", pos, want)
	}
}

func TestParseCandidate(t *testing.T) {
	cases := map[string]string{
		"honest":                          "honest",
		"selfish:g=0.5":                   "selfish:g=0.5",
		"Selfish_Delay:gamma=0.5,delay=3": "selfish-delay:g=0.5,d=3",
		"withhold : every=100":            "withhold:e=100",
	}
	for in, want := range cases {
		c, err := ParseCandidate(in)
		if err != nil {
			t.Errorf("ParseCandidate(%q): %v", in, err)
			continue
		}
		if got := c.normalized().String(); got != want {
			t.Errorf("ParseCandidate(%q).String() = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"", "selfish:gamma", "selfish:x=1", "selfish:g=abc"} {
		if _, err := ParseCandidate(bad); !errors.Is(err, ErrConfig) {
			t.Errorf("ParseCandidate(%q) = %v, want ErrConfig", bad, err)
		}
	}
	cands, err := ParseCandidates("honest; selfish:g=0.5 ;withhold")
	if err != nil || len(cands) != 3 {
		t.Fatalf("ParseCandidates: %v, %v", cands, err)
	}
}
