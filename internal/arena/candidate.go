package arena

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/game"
)

// Candidate is one entry of the arena's strategy menu: a registered
// strategy name plus the parameters it consumes. Its canonical text
// form — "name" or "name:g=0.5,d=3,e=100" with only consumed, non-zero
// parameters shown — is the wire format of the fairsweep/fairsim
// -strategy flag and of the arena backend's config-encoding name.
type Candidate struct {
	// Strategy is the registry name ("honest", "selfish", ...).
	Strategy string `json:"strategy"`
	// Gamma is a race strategy's network advantage.
	Gamma float64 `json:"gamma,omitempty"`
	// Delay is selfish-delay's publish-delay cap.
	Delay int `json:"delay,omitempty"`
	// Every is withhold's restake period.
	Every int `json:"every,omitempty"`
}

// params flattens the candidate for a deviator with the given resource
// share.
func (c Candidate) params(share float64) attack.Params {
	return attack.Params{Share: share, Gamma: c.Gamma, Delay: c.Delay, Every: c.Every}
}

// normalized canonicalises the name and clears the parameters the
// strategy does not consume, mirroring scenario normalisation, so
// equivalent candidates share one String, one cache key and one seed.
func (c Candidate) normalized() Candidate {
	c.Strategy = attack.CanonicalStrategy(c.Strategy)
	if strat, ok := attack.Lookup(c.Strategy); ok {
		use := strat.Uses()
		if !use.Gamma {
			c.Gamma = 0
		}
		if !use.Delay {
			c.Delay = 0
		}
		if !use.Every {
			c.Every = 0
		}
	}
	return c
}

// String renders the canonical "name:key=val,..." form; zero-valued
// parameters are omitted (the zero of each knob is its classic form).
func (c Candidate) String() string {
	var parts []string
	if c.Gamma != 0 {
		parts = append(parts, "g="+strconv.FormatFloat(c.Gamma, 'g', -1, 64))
	}
	if c.Delay != 0 {
		parts = append(parts, "d="+strconv.Itoa(c.Delay))
	}
	if c.Every != 0 {
		parts = append(parts, "e="+strconv.Itoa(c.Every))
	}
	if len(parts) == 0 {
		return c.Strategy
	}
	return c.Strategy + ":" + strings.Join(parts, ",")
}

// ParseCandidate parses the "name:key=val,..." form: the strategy name,
// optionally followed by comma-separated parameters. Accepted keys are
// g/gamma, d/delay and e/every; names are resolved case- and
// separator-insensitively against the strategy registry but unknown
// names are preserved (validation reports them with the registered
// list). The result round-trips through String.
func ParseCandidate(s string) (Candidate, error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Candidate{}, fmt.Errorf("%w: empty strategy name in %q", ErrConfig, s)
	}
	c := Candidate{Strategy: attack.CanonicalStrategy(name)}
	if !hasParams {
		return c, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Candidate{}, fmt.Errorf("%w: strategy parameter %q is not key=value", ErrConfig, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch strings.ToLower(key) {
		case "g", "gamma":
			c.Gamma, err = strconv.ParseFloat(val, 64)
		case "d", "delay":
			c.Delay, err = strconv.Atoi(val)
		case "e", "every":
			c.Every, err = strconv.Atoi(val)
		default:
			return Candidate{}, fmt.Errorf("%w: unknown strategy parameter %q (want g/gamma, d/delay or e/every)", ErrConfig, key)
		}
		if err != nil {
			return Candidate{}, fmt.Errorf("%w: strategy parameter %s=%q: %v", ErrConfig, key, val, err)
		}
	}
	return c, nil
}

// ParseCandidates parses a semicolon-separated candidate list — the
// -strategy flag's axis form ("honest;selfish:g=0.5;withhold").
func ParseCandidates(s string) ([]Candidate, error) {
	var out []Candidate
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		c, err := ParseCandidate(part)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty strategy list %q", ErrConfig, s)
	}
	return out, nil
}

// withholdOptions maps a race-free profile's stake-withholding
// deviators onto per-miner game options.
func withholdOptions(profile []Candidate) []game.Option {
	var opts []game.Option
	for i, c := range profile {
		if s, ok := attack.Lookup(c.Strategy); ok && s.Kind() == attack.KindStakeWithhold {
			opts = append(opts, game.WithMinerWithholding(i, c.Every))
		}
	}
	return opts
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
