// Package arena runs best-response strategy dynamics over the repo's
// mining games: starting from all-honest play, each miner in turn tries
// every candidate strategy from a fixed menu, adopts the one that
// strictly improves her expected reward fraction λ, and the round-robin
// repeats until no miner wants to move (a pure-strategy equilibrium of
// the one-shot strategy game) or a round bound is hit.
//
// The paper's fairness notions assume honest execution; the arena asks
// the follow-up question — what does fairness look like when every
// miner plays a best response? — and reports the equilibrium profile,
// each miner's equilibrium payoff, and the honest-baseline payoffs the
// deltas are measured against.
//
// Everything is deterministic: candidate menus are ordered, ties keep
// the incumbent strategy (honest first), per-profile seeds derive from
// the spec seed and the profile's canonical key, and trial i of any
// payoff run uses rng.Stream(profileSeed, i). The result is a pure
// function of (spec, config) — independent of worker counts and of
// whether the run happened locally or on a cluster.
package arena

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"repro/internal/attack"
	"repro/internal/montecarlo"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// ErrConfig reports an invalid arena configuration or base spec.
var ErrConfig = errors.New("arena: invalid config")

// DefaultMaxRounds bounds the best-response round-robin when the config
// does not say otherwise. Empirically the dynamics fix in one or two
// rounds; the bound exists because best-response dynamics can cycle in
// general games.
const DefaultMaxRounds = 8

// Config parameterises one arena run.
type Config struct {
	// Candidates is the ordered strategy menu every miner picks from.
	// Empty means the protocol's default menu: honest plus every
	// registered strategy applicable to the protocol at its classic
	// parameterisation (selfish γ=0, selfish-delay uncapped γ=0,
	// withhold never-restake). Honest is always a candidate and always
	// first — the menu is prepended with it when missing.
	Candidates []Candidate `json:"candidates,omitempty"`
	// MaxRounds bounds the round-robin (0 = DefaultMaxRounds).
	MaxRounds int `json:"max_rounds,omitempty"`
}

// normalized resolves defaults and canonicalises the candidate menu for
// the given protocol: honest first, canonical candidate forms, ordered,
// duplicates dropped. The result — like everything downstream of it —
// is a pure function of (config, protocol).
func (c Config) normalized(protocol string) (Config, error) {
	out := Config{MaxRounds: c.MaxRounds}
	if out.MaxRounds <= 0 {
		out.MaxRounds = DefaultMaxRounds
	}
	menu := c.Candidates
	if len(menu) == 0 {
		menu = DefaultCandidates(protocol)
	}
	seen := map[string]bool{}
	out.Candidates = append(out.Candidates, Candidate{Strategy: attack.StrategyHonest})
	seen[attack.StrategyHonest] = true
	for _, cand := range menu {
		strat, ok := attack.Lookup(cand.Strategy)
		if !ok {
			return Config{}, &scenario.UnknownStrategyError{
				Strategy: attack.CanonicalStrategy(cand.Strategy),
				Known:    attack.Names(),
			}
		}
		if ps := strat.Protocols(); ps != nil && !contains(ps, protocol) {
			return Config{}, fmt.Errorf("%w: candidate %q does not apply to protocol %q (applies to: %s)",
				ErrConfig, strat.Name(), protocol, strings.Join(ps, ", "))
		}
		n := cand.normalized()
		if seen[n.String()] {
			continue
		}
		seen[n.String()] = true
		out.Candidates = append(out.Candidates, n)
	}
	return out, nil
}

// DefaultCandidates returns the default strategy menu for a protocol:
// honest plus each registered strategy that applies, at zero-value
// parameters — the classic form of each attack (selfish with no network
// advantage, selfish-delay uncapped, withhold never restaking).
func DefaultCandidates(protocol string) []Candidate {
	menu := []Candidate{{Strategy: attack.StrategyHonest}}
	for _, name := range attack.Names() {
		if name == attack.StrategyHonest {
			continue
		}
		strat, _ := attack.Lookup(name)
		if ps := strat.Protocols(); ps != nil && !contains(ps, protocol) {
			continue
		}
		menu = append(menu, Candidate{Strategy: name})
	}
	return menu
}

// Move records one adopted best response.
type Move struct {
	// Round and Miner locate the move in the round-robin.
	Round int `json:"round"`
	Miner int `json:"miner"`
	// From and To are the incumbent and adopted candidates.
	From Candidate `json:"from"`
	To   Candidate `json:"to"`
	// Gain is the payoff improvement that motivated the move.
	Gain float64 `json:"gain"`
}

// Equilibrium is the reportable result of the best-response dynamics —
// the struct sweep outcomes and CLI reports embed verbatim.
type Equilibrium struct {
	// Protocol names the game the equilibrium belongs to.
	Protocol string `json:"protocol"`
	// Profile is each miner's strategy at the fixed point (canonical
	// candidate forms; honest for non-deviators).
	Profile []Candidate `json:"profile"`
	// Deviators lists the miners whose fixed-point strategy deviates
	// from honest play.
	Deviators []int `json:"deviators,omitempty"`
	// Rounds is the number of round-robin passes executed; Converged
	// reports whether the last pass adopted no move (a true fixed point,
	// as opposed to the MaxRounds bound stopping a cycle).
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// Moves is the adoption history, in order.
	Moves []Move `json:"moves,omitempty"`
	// Payoffs is each miner's expected λ under the fixed-point profile;
	// HonestPayoffs the all-honest baseline the deltas are measured
	// against.
	Payoffs       []float64 `json:"payoffs"`
	HonestPayoffs []float64 `json:"honest_payoffs"`
}

// Delta returns miner i's equilibrium payoff minus its honest-baseline
// payoff — positive when strategic play pays.
func (e *Equilibrium) Delta(i int) float64 { return e.Payoffs[i] - e.HonestPayoffs[i] }

// Result is one arena run: the equilibrium, plus the tracked miner's
// per-checkpoint λ samples under the equilibrium profile so callers can
// assess the spec's fairness notions at the fixed point.
type Result struct {
	Equilibrium Equilibrium
	// Checkpoints and Lambda mirror montecarlo.Result: Lambda[c][t] is
	// the tracked miner's reward fraction at checkpoint c in trial t,
	// played under the equilibrium profile.
	Checkpoints []int
	Lambda      [][]float64
	// TrialsRun counts simulation trials across every payoff evaluation
	// (cache-deduplicated profiles counted once).
	TrialsRun int64
}

// Engine runs best-response dynamics for one scenario.
type Engine struct {
	// Config is the strategy menu and round bound.
	Config Config
	// TrialWorkers caps per-payoff trial parallelism for the game-path
	// evaluations (0 = GOMAXPROCS). Results are worker-independent.
	TrialWorkers int
}

// Run executes the dynamics on the spec's game. The spec must be an
// honest baseline: the arena chooses each miner's strategy itself, so
// adversary, network and withhold_every blocks are refused.
func (e *Engine) Run(ctx context.Context, spec scenario.Spec) (*Result, error) {
	n := spec.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	switch {
	case n.Adversary != nil:
		return nil, fmt.Errorf("%w: the arena assigns strategies itself; drop the adversary block", ErrConfig)
	case n.Network != nil:
		return nil, fmt.Errorf("%w: network blocks are not part of the strategy game; drop the network block", ErrConfig)
	case n.WithholdEvery > 0:
		return nil, fmt.Errorf("%w: the global withholding treatment conflicts with per-miner strategy choice; drop withhold_every", ErrConfig)
	}
	cfg, err := e.Config.normalized(n.Protocol)
	if err != nil {
		return nil, err
	}
	run := &arenaRun{
		spec:    n,
		cfg:     cfg,
		workers: e.TrialWorkers,
		shares:  resourceShares(n.Stakes),
		race:    map[string]float64{},
		game:    map[string]float64{},
	}
	return run.solve(ctx)
}

// arenaRun holds one run's state: the normalised spec, the menu, and
// the per-profile payoff caches (race profiles cache the attacker's
// mean revenue share; game profiles cache per-miner mean λ).
type arenaRun struct {
	spec    scenario.Spec
	cfg     Config
	workers int
	shares  []float64
	race    map[string]float64
	game    map[string]float64
	trials  int64
}

func resourceShares(stakes []float64) []float64 {
	total := 0.0
	for _, v := range stakes {
		total += v
	}
	out := make([]float64, len(stakes))
	for i, v := range stakes {
		out[i] = v / total
	}
	return out
}

// effective returns the candidate miner i actually plays: the canonical
// candidate when it deviates at i's share, honest otherwise (rational
// strategies below their profitability threshold collapse, exactly as
// scenario normalisation collapses honest adversary blocks).
func (r *arenaRun) effective(cand Candidate, miner int) Candidate {
	strat, ok := attack.Lookup(cand.Strategy)
	if !ok || !strat.Deviates(cand.params(r.shares[miner])) {
		return Candidate{Strategy: attack.StrategyHonest}
	}
	return cand.normalized()
}

// playable reports whether miner i can adopt cand inside profile: the
// candidate must validate at i's share, and the resulting profile must
// stay representable (the PoW race model supports at most one racer
// against an honest pool).
func (r *arenaRun) playable(profile []Candidate, miner int, cand Candidate) bool {
	eff := r.effective(cand, miner)
	strat, _ := attack.Lookup(eff.Strategy)
	if strat.Kind() != attack.KindHonest {
		if orig, _ := attack.Lookup(cand.Strategy); orig.Validate(cand.params(r.shares[miner])) != nil {
			return false
		}
	}
	if strat.Kind() != attack.KindPoWRace {
		return true
	}
	for j, c := range profile {
		if j == miner {
			continue
		}
		if s, _ := attack.Lookup(c.Strategy); s != nil && s.Kind() == attack.KindPoWRace {
			return false
		}
	}
	return true
}

// profileKey is the canonical cache/seed key of an effective profile.
func profileKey(profile []Candidate) string {
	parts := make([]string, len(profile))
	for i, c := range profile {
		parts[i] = c.String()
	}
	return strings.Join(parts, "|")
}

// profileSeed derives the deterministic base seed of one profile's
// payoff runs from the spec seed and the profile's canonical key.
func profileSeed(seed uint64, key string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	io.WriteString(h, key)
	s := h.Sum64()
	if s == 0 {
		s = 1
	}
	return s
}

// racer returns the index of the profile's single race strategist, or
// -1 when the profile runs as an ordinary mining game.
func racer(profile []Candidate) int {
	for i, c := range profile {
		if s, _ := attack.Lookup(c.Strategy); s != nil && s.Kind() == attack.KindPoWRace {
			return i
		}
	}
	return -1
}

// solve runs the round-robin to a fixed point or the round bound, then
// assembles the equilibrium report and the fixed-point λ samples.
func (r *arenaRun) solve(ctx context.Context) (*Result, error) {
	n := r.spec
	profile := make([]Candidate, len(n.Stakes))
	for i := range profile {
		profile[i] = Candidate{Strategy: attack.StrategyHonest}
	}
	eq := Equilibrium{Protocol: n.Protocol, Rounds: 0}
	for eq.Rounds < r.cfg.MaxRounds && !eq.Converged {
		eq.Rounds++
		changed := false
		for i := range profile {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			curPay, err := r.payoff(ctx, profile, i)
			if err != nil {
				return nil, err
			}
			best, bestPay := profile[i], curPay
			for _, cand := range r.cfg.Candidates {
				eff := r.effective(cand, i)
				if eff == profile[i] || !r.playable(profile, i, cand) {
					continue
				}
				trial := append([]Candidate(nil), profile...)
				trial[i] = eff
				pay, err := r.payoff(ctx, trial, i)
				if err != nil {
					return nil, err
				}
				// Strict improvement only, first-best wins ties: the
				// incumbent (and honest, always enumerated first) can
				// never be displaced by an equal-payoff candidate.
				if pay > bestPay {
					best, bestPay = eff, pay
				}
			}
			if best != profile[i] {
				eq.Moves = append(eq.Moves, Move{Round: eq.Rounds, Miner: i, From: profile[i], To: best, Gain: bestPay - curPay})
				profile[i] = best
				changed = true
			}
		}
		if !changed {
			eq.Converged = true
		}
	}
	eq.Profile = profile
	honest := make([]Candidate, len(profile))
	for i := range honest {
		honest[i] = Candidate{Strategy: attack.StrategyHonest}
	}
	eq.Payoffs = make([]float64, len(profile))
	eq.HonestPayoffs = make([]float64, len(profile))
	for i := range profile {
		var err error
		if eq.Payoffs[i], err = r.payoff(ctx, profile, i); err != nil {
			return nil, err
		}
		if eq.HonestPayoffs[i], err = r.payoff(ctx, honest, i); err != nil {
			return nil, err
		}
		if profile[i].Strategy != attack.StrategyHonest {
			eq.Deviators = append(eq.Deviators, i)
		}
	}
	cps, lambda, err := r.samples(ctx, profile)
	if err != nil {
		return nil, err
	}
	return &Result{Equilibrium: eq, Checkpoints: cps, Lambda: lambda, TrialsRun: r.trials}, nil
}

// payoff returns miner i's expected final λ under an effective profile,
// from the cache when the profile (or, for race profiles, its shared
// race run) was already evaluated.
func (r *arenaRun) payoff(ctx context.Context, profile []Candidate, miner int) (float64, error) {
	key := profileKey(profile)
	if j := racer(profile); j >= 0 {
		mu, ok := r.race[key]
		if !ok {
			shares, err := r.raceShares(ctx, profile, j, []int{r.spec.Blocks})
			if err != nil {
				return 0, err
			}
			mu = mean(shares[0])
			r.race[key] = mu
		}
		if miner == j {
			return mu, nil
		}
		// The honest pool splits the residual revenue in proportion to
		// power, exactly as the Monte-Carlo race backend models it.
		return (1 - mu) * r.shares[miner] / (1 - r.shares[j]), nil
	}
	gkey := fmt.Sprintf("%s#%d", key, miner)
	if pay, ok := r.game[gkey]; ok {
		return pay, nil
	}
	res, err := r.gameRun(ctx, profile, miner, []int{r.spec.Blocks})
	if err != nil {
		return 0, err
	}
	pay := mean(res.FinalSamples())
	r.game[gkey] = pay
	return pay, nil
}

// samples returns the tracked miner's per-checkpoint λ matrix under the
// fixed-point profile, at the spec's own checkpoints.
func (r *arenaRun) samples(ctx context.Context, profile []Candidate) ([]int, [][]float64, error) {
	n := r.spec
	if j := racer(profile); j >= 0 {
		shares, err := r.raceShares(ctx, profile, j, n.Checkpoints)
		if err != nil {
			return nil, nil, err
		}
		if n.Miner != j {
			slice := r.shares[n.Miner] / (1 - r.shares[j])
			for c := range shares {
				for t := range shares[c] {
					shares[c][t] = (1 - shares[c][t]) * slice
				}
			}
		}
		return n.Checkpoints, shares, nil
	}
	res, err := r.gameRun(ctx, profile, n.Miner, n.Checkpoints)
	if err != nil {
		return nil, nil, err
	}
	return res.Checkpoints, res.Lambda, nil
}

// raceShares runs the race profile's trials and returns the attacker's
// revenue share per checkpoint per trial.
func (r *arenaRun) raceShares(ctx context.Context, profile []Candidate, j int, cps []int) ([][]float64, error) {
	n := r.spec
	strat, _ := attack.Lookup(profile[j].Strategy)
	p := profile[j].params(r.shares[j])
	seed := profileSeed(n.Seed, profileKey(profile))
	out := make([][]float64, len(cps))
	for c := range out {
		out[c] = make([]float64, n.Trials)
	}
	for trial := 0; trial < n.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sim, err := strat.NewRaceSim(p)
		if err != nil {
			return nil, err
		}
		rnd := rng.Stream(seed, trial)
		next := 0
		for ev := 1; ev <= n.Blocks && next < len(cps); ev++ {
			sim.Step(rnd)
			if ev == cps[next] {
				out[next][trial] = sim.Snapshot().RevenueShare()
				next++
			}
		}
		r.trials++
	}
	return out, nil
}

// gameRun evaluates a race-free profile as an ordinary mining game with
// each withholder's per-miner option applied, tracking one miner.
func (r *arenaRun) gameRun(ctx context.Context, profile []Candidate, miner int, cps []int) (*montecarlo.Result, error) {
	n := r.spec
	p, err := n.Build()
	if err != nil {
		return nil, err
	}
	seed := profileSeed(n.Seed, profileKey(profile))
	res, err := montecarlo.RunContext(ctx, p, n.Stakes, montecarlo.Config{
		Trials:      n.Trials,
		Blocks:      n.Blocks,
		Checkpoints: cps,
		Miner:       miner,
		Seed:        seed,
		Workers:     r.workers,
		GameOptions: withholdOptions(profile),
	})
	if err != nil {
		return nil, err
	}
	r.trials += int64(res.TrialsRun)
	return res, nil
}
