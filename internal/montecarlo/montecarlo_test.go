package montecarlo

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/game"
	"repro/internal/protocol"
)

func TestRunBasic(t *testing.T) {
	res, err := Run(protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
		Trials: 200, Blocks: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "PoW" {
		t.Errorf("protocol name = %q", res.Protocol)
	}
	if len(res.Checkpoints) == 0 {
		t.Fatal("no checkpoints")
	}
	last := res.Checkpoints[len(res.Checkpoints)-1]
	if last != 100 {
		t.Errorf("last checkpoint = %d, want 100", last)
	}
	for _, l := range res.FinalSamples() {
		if l < 0 || l > 1 || math.IsNaN(l) {
			t.Fatalf("λ sample out of range: %v", l)
		}
	}
	mean := res.MeanSeries()
	if math.Abs(mean[len(mean)-1]-0.2) > 0.02 {
		t.Errorf("final mean λ = %v, want ~0.2", mean[len(mean)-1])
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	base := Config{Trials: 64, Blocks: 50, Seed: 7}
	cfg1, cfg8 := base, base
	cfg1.Workers = 1
	cfg8.Workers = 8
	a, err := Run(protocol.NewMLPoS(0.01), game.TwoMiner(0.3), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(protocol.NewMLPoS(0.01), game.TwoMiner(0.3), cfg8)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Lambda {
		for tr := range a.Lambda[c] {
			if a.Lambda[c][tr] != b.Lambda[c][tr] {
				t.Fatalf("checkpoint %d trial %d differs across worker counts", c, tr)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := Config{Trials: 20, Blocks: 50}
	cfg.Seed = 1
	a, _ := Run(protocol.NewMLPoS(0.01), game.TwoMiner(0.3), cfg)
	cfg.Seed = 2
	b, _ := Run(protocol.NewMLPoS(0.01), game.TwoMiner(0.3), cfg)
	same := 0
	for tr := range a.FinalSamples() {
		if a.FinalSamples()[tr] == b.FinalSamples()[tr] {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical results")
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Trials: 1, Blocks: 1}
	cases := []Config{
		{Trials: 0, Blocks: 10},
		{Trials: 10, Blocks: 0},
		{Trials: 10, Blocks: 10, Miner: 2},
		{Trials: 10, Blocks: 10, Checkpoints: []int{5, 5}},
		{Trials: 10, Blocks: 10, Checkpoints: []int{0, 5}},
		{Trials: 10, Blocks: 10, Checkpoints: []int{5, 20}},
	}
	for i, cfg := range cases {
		if _, err := Run(protocol.NewPoW(0.01), game.TwoMiner(0.2), cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
	if _, err := Run(protocol.NewPoW(0.01), game.TwoMiner(0.2), good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	// Bad initial allocation surfaces the game error.
	if _, err := Run(protocol.NewPoW(0.01), []float64{1}, good); err == nil {
		t.Error("single-miner allocation not rejected")
	}
}

func TestExplicitCheckpoints(t *testing.T) {
	res, err := Run(protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
		Trials: 10, Blocks: 100, Checkpoints: []int{1, 10, 100}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 3 || res.Checkpoints[1] != 10 {
		t.Errorf("checkpoints = %v", res.Checkpoints)
	}
	// At checkpoint 1 exactly one block exists: λ ∈ {0, 1}.
	for _, l := range res.Lambda[0] {
		if l != 0 && l != 1 {
			t.Errorf("λ after one block = %v, want 0 or 1", l)
		}
	}
}

func TestUnfairProbSeries(t *testing.T) {
	res, err := Run(protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
		Trials: 2000, Blocks: 3000, Checkpoints: []int{10, 3000}, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	unfair := res.UnfairProbSeries(0.2, 0.1)
	if unfair[0] < 0.5 {
		t.Errorf("unfair prob after 10 blocks = %v, want high", unfair[0])
	}
	if unfair[1] > 0.1 {
		t.Errorf("unfair prob after 3000 blocks = %v, want <= 0.1 (Theorem 4.2 regime)", unfair[1])
	}
}

func TestPercentileAndMeanSeries(t *testing.T) {
	res, err := Run(protocol.NewMLPoS(0.01), game.TwoMiner(0.2), Config{
		Trials: 500, Blocks: 500, Checkpoints: []int{500}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p5 := res.PercentileSeries(5)[0]
	p95 := res.PercentileSeries(95)[0]
	mean := res.MeanSeries()[0]
	if !(p5 <= mean && mean <= p95) {
		t.Errorf("percentile ordering broken: p5=%v mean=%v p95=%v", p5, mean, p95)
	}
	sum := res.FinalSummary()
	if sum.N != 500 {
		t.Errorf("summary N = %d", sum.N)
	}
}

func TestConvergenceBlock(t *testing.T) {
	// PoW converges and stays converged; SL-PoS never does.
	pow, err := Run(protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
		Trials: 1000, Blocks: 4000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cb := pow.ConvergenceBlock(0.2, 0.1, 0.1)
	if cb <= 0 || cb > 4000 {
		t.Errorf("PoW convergence block = %d, want in (0, 4000]", cb)
	}
	sl, err := Run(protocol.NewSLPoS(0.01), game.TwoMiner(0.2), Config{
		Trials: 300, Blocks: 4000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cb := sl.ConvergenceBlock(0.2, 0.1, 0.1); cb != -1 {
		t.Errorf("SL-PoS convergence block = %d, want -1 (never)", cb)
	}
}

func TestGameOptionsPropagate(t *testing.T) {
	res, err := Run(protocol.NewFSLPoS(0.01), game.TwoMiner(0.2), Config{
		Trials: 50, Blocks: 100, Seed: 8,
		GameOptions: []game.Option{game.WithWithholding(50)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalSamples()) != 50 {
		t.Errorf("trials = %d", len(res.FinalSamples()))
	}
}

func TestCheckInvariantsMode(t *testing.T) {
	_, err := Run(protocol.NewCPoS(0.01, 0.1, 8), game.TwoMiner(0.2), Config{
		Trials: 20, Blocks: 50, Seed: 9, CheckInvariants: true,
	})
	if err != nil {
		t.Errorf("invariant checking flagged a healthy run: %v", err)
	}
}

func TestLinearCheckpoints(t *testing.T) {
	cps := LinearCheckpoints(100, 10)
	if len(cps) != 10 || cps[0] != 10 || cps[9] != 100 {
		t.Errorf("cps = %v", cps)
	}
	// k > n collapses to 1..n.
	cps = LinearCheckpoints(5, 50)
	if len(cps) != 5 || cps[0] != 1 || cps[4] != 5 {
		t.Errorf("cps = %v", cps)
	}
	if LinearCheckpoints(0, 5) != nil {
		t.Error("n=0 should give nil")
	}
	if got := LinearCheckpoints(10, 0); len(got) != 1 || got[0] != 10 {
		t.Errorf("k=0 should clamp to single checkpoint: %v", got)
	}
}

func TestLogCheckpoints(t *testing.T) {
	cps := LogCheckpoints(100000, 11)
	if cps[0] != 1 {
		t.Errorf("first = %d, want 1", cps[0])
	}
	if cps[len(cps)-1] != 100000 {
		t.Errorf("last = %d, want 100000", cps[len(cps)-1])
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("not strictly increasing: %v", cps)
		}
	}
	if LogCheckpoints(0, 5) != nil {
		t.Error("n=0 should give nil")
	}
	if got := LogCheckpoints(50, 1); len(got) != 1 || got[0] != 50 {
		t.Errorf("k=1 = %v", got)
	}
}

func TestMultiMinerTracking(t *testing.T) {
	// Track miner 2 of a 5-miner game.
	res, err := Run(protocol.NewPoW(0.01), game.LeaderAndPack(0.2, 5), Config{
		Trials: 500, Blocks: 500, Miner: 2, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := res.MeanSeries()
	if math.Abs(mean[len(mean)-1]-0.2) > 0.02 {
		t.Errorf("miner 2 mean λ = %v, want ~0.2", mean[len(mean)-1])
	}
}

func TestRunContextCancelled(t *testing.T) {
	// A context cancelled before the run starts returns ctx.Err() and no
	// result; trials never execute.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	res, err := RunContext(ctx, protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
		Trials: 100, Blocks: 1000, Seed: 1,
		OnTrialDone: func(int, float64) { ran++ },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run should not return a result")
	}
	if ran != 0 {
		t.Errorf("%d trials completed after pre-cancel", ran)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	// Cancelling after the first completed trial stops the run promptly:
	// far fewer trials complete than requested, and the error is ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	_, err := RunContext(ctx, protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
		Trials: 10_000, Blocks: 2000, Seed: 1, Workers: 2,
		OnTrialDone: func(int, float64) {
			done++
			cancel()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done >= 10_000 {
		t.Errorf("all %d trials completed despite cancellation", done)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	// With a background context, RunContext is exactly Run.
	cfg := Config{Trials: 40, Blocks: 300, Seed: 9}
	a, err := Run(protocol.NewMLPoS(0.01), game.TwoMiner(0.2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), protocol.NewMLPoS(0.01), game.TwoMiner(0.2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Lambda {
		for tr := range a.Lambda[c] {
			if a.Lambda[c][tr] != b.Lambda[c][tr] {
				t.Fatalf("lambda[%d][%d] differs", c, tr)
			}
		}
	}
}
