// Package montecarlo runs repeated mining-game trials and aggregates the
// reward-fraction trajectories the paper's figures are built from: sample
// means, percentile bands (Figure 2, Figure 6) and unfair probabilities
// (Figure 3, Figure 5, Table 1).
//
// Trials are deterministic: trial i of a run with seed s always uses
// rng.Stream(s, i), so results are reproducible across machines and
// independent of the worker count.
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/game"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Process-global simulation totals on telemetry.Default(): montecarlo
// has no per-run injection point, so trial and block totals aggregate
// per process and surface on any /metrics endpoint that serves the
// default registry. Ticked once per completed trial — negligible next
// to the thousands of protocol steps each trial runs.
var (
	mcTrials = telemetry.Default().Counter("fairness_montecarlo_trials_total")
	mcBlocks = telemetry.Default().Counter("fairness_montecarlo_blocks_total")
)

// Config describes one Monte-Carlo run.
type Config struct {
	// Trials is the number of independent games (the paper uses 10 for
	// real PoW systems, 500 for real PoS systems and 10,000 for
	// simulations).
	Trials int
	// Blocks is the horizon of each game in blocks (epochs for C-PoS).
	Blocks int
	// Checkpoints are the block counts at which λ is recorded. When
	// empty, LinearCheckpoints(Blocks, 50) is used. Values must be
	// strictly increasing in (0, Blocks].
	Checkpoints []int
	// Miner is the index of the tracked miner (the paper's miner A).
	Miner int
	// Seed is the base seed; trial i uses rng.Stream(Seed, i).
	Seed uint64
	// Workers caps the number of concurrent trials; 0 means GOMAXPROCS.
	Workers int
	// GameOptions configure each trial's game.State (e.g. withholding).
	GameOptions []game.Option
	// CheckInvariants runs game.State.CheckInvariants at every
	// checkpoint, turning silent numeric corruption into an error.
	CheckInvariants bool
	// OnTrialDone, when non-nil, is called once per completed trial with
	// the trial index and the trial's final-checkpoint λ. Calls are
	// serialised by the run, so the callback needs no locking of its
	// own; it is how the sweep engine streams per-scenario progress.
	OnTrialDone func(trial int, finalLambda float64)
}

// Result holds the λ samples of a run: Lambda[c][t] is miner A's reward
// fraction at checkpoint c in trial t.
type Result struct {
	Protocol    string
	Checkpoints []int
	Lambda      [][]float64
}

// ErrConfig reports an invalid Monte-Carlo configuration.
var ErrConfig = errors.New("montecarlo: invalid config")

// LinearCheckpoints returns k evenly spaced checkpoints ending at n.
func LinearCheckpoints(n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	cps := make([]int, 0, k)
	for i := 1; i <= k; i++ {
		c := i * n / k
		if len(cps) == 0 || c > cps[len(cps)-1] {
			cps = append(cps, c)
		}
	}
	return cps
}

// LogCheckpoints returns up to k logarithmically spaced checkpoints from 1
// to n, suitable for the paper's log-x axes (Figure 4).
func LogCheckpoints(n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k < 2 {
		return []int{n}
	}
	cps := []int{}
	last := 0
	for i := 0; i < k; i++ {
		f := float64(i) / float64(k-1)
		c := int(math.Pow(float64(n), f))
		if c <= last {
			c = last + 1
		}
		if c > n {
			break
		}
		cps = append(cps, c)
		last = c
	}
	if len(cps) == 0 || cps[len(cps)-1] != n {
		cps = append(cps, n)
	}
	return cps
}

// Run executes the Monte-Carlo experiment for one protocol. It is
// RunContext with a background context; use RunContext when the caller
// needs cancellation.
func Run(p protocol.Protocol, initial []float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), p, initial, cfg)
}

// ctxCheckInterval is how many blocks a trial advances between context
// checks: frequent enough that cancellation lands mid-trial within
// microseconds, rare enough to stay invisible in the step loop's profile.
const ctxCheckInterval = 4096

// RunContext executes the Monte-Carlo experiment for one protocol,
// honouring ctx: cancellation stops dispatching new trials, interrupts
// running trials at the next block-batch boundary, and returns ctx.Err().
// A cancelled run never returns a partial Result — samples are either
// complete and deterministic or absent.
func RunContext(ctx context.Context, p protocol.Protocol, initial []float64, cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("%w: Trials = %d", ErrConfig, cfg.Trials)
	}
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("%w: Blocks = %d", ErrConfig, cfg.Blocks)
	}
	if cfg.Miner < 0 || cfg.Miner >= len(initial) {
		return nil, fmt.Errorf("%w: Miner = %d with %d miners", ErrConfig, cfg.Miner, len(initial))
	}
	cps := cfg.Checkpoints
	if len(cps) == 0 {
		cps = LinearCheckpoints(cfg.Blocks, 50)
	}
	prev := 0
	for _, c := range cps {
		if c <= prev || c > cfg.Blocks {
			return nil, fmt.Errorf("%w: checkpoints must be strictly increasing in (0, %d], got %v", ErrConfig, cfg.Blocks, cps)
		}
		prev = c
	}
	// Validate the initial allocation once up front so that worker
	// goroutines cannot fail.
	if _, err := game.New(initial, cfg.GameOptions...); err != nil {
		return nil, err
	}

	res := &Result{
		Protocol:    p.Name(),
		Checkpoints: append([]int(nil), cps...),
	}
	res.Lambda = make([][]float64, len(cps))
	for i := range res.Lambda {
		res.Lambda[i] = make([]float64, cfg.Trials)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		hookMu   sync.Mutex
	)
	trialCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range trialCh {
				if ctx.Err() != nil {
					continue
				}
				if err := runTrial(ctx, p, initial, cfg, cps, res, trial); err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				mcTrials.Inc()
				mcBlocks.Add(int64(cps[len(cps)-1]))
				if cfg.OnTrialDone != nil {
					hookMu.Lock()
					cfg.OnTrialDone(trial, res.Lambda[len(cps)-1][trial])
					hookMu.Unlock()
				}
			}
		}()
	}
dispatch:
	for trial := 0; trial < cfg.Trials; trial++ {
		select {
		case trialCh <- trial:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(trialCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

func runTrial(ctx context.Context, p protocol.Protocol, initial []float64, cfg Config, cps []int, res *Result, trial int) error {
	st, err := game.New(initial, cfg.GameOptions...)
	if err != nil {
		return err
	}
	r := rng.Stream(cfg.Seed, trial)
	next := 0
	for b := 1; b <= cfg.Blocks && next < len(cps); b++ {
		if b%ctxCheckInterval == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		p.Step(st, r)
		if b == cps[next] {
			if cfg.CheckInvariants {
				if err := st.CheckInvariants(); err != nil {
					return fmt.Errorf("montecarlo: trial %d block %d: %w", trial, b, err)
				}
			}
			res.Lambda[next][trial] = st.Lambda(cfg.Miner)
			next++
		}
	}
	return nil
}

// MeanSeries returns the per-checkpoint sample mean of λ.
func (r *Result) MeanSeries() []float64 {
	out := make([]float64, len(r.Checkpoints))
	for i, xs := range r.Lambda {
		out[i] = stats.Mean(xs)
	}
	return out
}

// PercentileSeries returns the per-checkpoint p-th percentile of λ.
func (r *Result) PercentileSeries(p float64) []float64 {
	out := make([]float64, len(r.Checkpoints))
	for i, xs := range r.Lambda {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		out[i] = stats.PercentileSorted(sorted, p)
	}
	return out
}

// UnfairProbSeries returns, per checkpoint, the fraction of trials with λ
// outside the fair area [(1−ε)a, (1+ε)a] — the paper's unfair probability.
func (r *Result) UnfairProbSeries(a, eps float64) []float64 {
	lo, hi := (1-eps)*a, (1+eps)*a
	out := make([]float64, len(r.Checkpoints))
	for i, xs := range r.Lambda {
		out[i] = 1 - stats.FractionWithin(xs, lo, hi)
	}
	return out
}

// FinalSamples returns the λ samples at the last checkpoint.
func (r *Result) FinalSamples() []float64 {
	if len(r.Lambda) == 0 {
		return nil
	}
	return r.Lambda[len(r.Lambda)-1]
}

// FinalSummary returns summary statistics at the last checkpoint.
func (r *Result) FinalSummary() stats.Summary {
	return stats.Summarize(r.FinalSamples())
}

// CheckpointsAsFloat returns the checkpoints as float64 x-coordinates.
func (r *Result) CheckpointsAsFloat() []float64 {
	out := make([]float64, len(r.Checkpoints))
	for i, c := range r.Checkpoints {
		out[i] = float64(c)
	}
	return out
}

// ConvergenceBlock returns the first checkpoint from which the unfair
// probability stays at or below delta through the end of the run, or -1 if
// fairness is never durably reached (Table 1's "Cvg. Time" column).
func (r *Result) ConvergenceBlock(a, eps, delta float64) int {
	unfair := r.UnfairProbSeries(a, eps)
	conv := -1
	for i := range unfair {
		if unfair[i] <= delta {
			if conv == -1 {
				conv = r.Checkpoints[i]
			}
		} else {
			conv = -1
		}
	}
	return conv
}
