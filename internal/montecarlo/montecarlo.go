// Package montecarlo runs repeated mining-game trials and aggregates the
// reward-fraction trajectories the paper's figures are built from: sample
// means, percentile bands (Figure 2, Figure 6) and unfair probabilities
// (Figure 3, Figure 5, Table 1).
//
// Trials are deterministic: trial i of a run with seed s always uses
// rng.Stream(s, i), so results are reproducible across machines and
// independent of the worker count.
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/game"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Process-global simulation totals on telemetry.Default(): montecarlo
// has no per-run injection point, so trial and block totals aggregate
// per process and surface on any /metrics endpoint that serves the
// default registry. Ticked once per completed trial — negligible next
// to the thousands of protocol steps each trial runs.
var (
	mcTrials = telemetry.Default().Counter("fairness_montecarlo_trials_total")
	mcBlocks = telemetry.Default().Counter("fairness_montecarlo_blocks_total")
)

// Config describes one Monte-Carlo run.
type Config struct {
	// Trials is the number of independent games (the paper uses 10 for
	// real PoW systems, 500 for real PoS systems and 10,000 for
	// simulations).
	Trials int
	// Blocks is the horizon of each game in blocks (epochs for C-PoS).
	Blocks int
	// Checkpoints are the block counts at which λ is recorded. When
	// empty, LinearCheckpoints(Blocks, 50) is used. Values must be
	// strictly increasing in (0, Blocks].
	Checkpoints []int
	// Miner is the index of the tracked miner (the paper's miner A).
	Miner int
	// Seed is the base seed; trial i uses rng.Stream(Seed, i).
	Seed uint64
	// Workers caps the number of concurrent trials; 0 means GOMAXPROCS.
	Workers int
	// GameOptions configure each trial's game.State (e.g. withholding).
	GameOptions []game.Option
	// CheckInvariants runs game.State.CheckInvariants at every
	// checkpoint, turning silent numeric corruption into an error.
	CheckInvariants bool
	// OnTrialDone, when non-nil, is called once per completed trial with
	// the trial index and the trial's final-checkpoint λ. Calls are
	// serialised by the run and arrive in strict trial order; it is how
	// the sweep engine streams per-scenario progress. Under a StopRule
	// only trials up to the deterministic stop point are reported.
	OnTrialDone func(trial int, finalLambda float64)
	// Batch is the number of trials the batched inner loop advances
	// together (structure-of-arrays states, one RNG substream per
	// trial); 0 picks DefaultBatchSize. Batching never changes results:
	// trial i is bit-identical for any batch size and worker count. It
	// is also the granularity of early-stopping looks.
	Batch int
	// Stop, when non-nil, enables adaptive early stopping: the run halts
	// further trials as soon as the unfair-probability verdict is
	// resolved at the rule's confidence (see StopRule), making
	// Result.TrialsRun an output rather than an input. Trials is then
	// the budget, not the commitment.
	Stop *StopRule
}

// Result holds the λ samples of a run: Lambda[c][t] is miner A's reward
// fraction at checkpoint c in trial t.
type Result struct {
	Protocol    string
	Checkpoints []int
	Lambda      [][]float64
	// TrialsBudget is the configured trial count; TrialsRun is how many
	// trials the run actually kept, which is below the budget only when
	// a StopRule resolved the verdict early (EarlyStopped). Lambda
	// columns always match TrialsRun.
	TrialsBudget int
	TrialsRun    int
	EarlyStopped bool
	// StopConfidence is the realised Hoeffding tail of the stopping
	// decision — the error-probability certificate of the early stop
	// (0 for full-budget runs).
	StopConfidence float64
}

// ErrConfig reports an invalid Monte-Carlo configuration.
var ErrConfig = errors.New("montecarlo: invalid config")

// LinearCheckpoints returns k evenly spaced checkpoints ending at n.
func LinearCheckpoints(n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	cps := make([]int, 0, k)
	for i := 1; i <= k; i++ {
		c := i * n / k
		if len(cps) == 0 || c > cps[len(cps)-1] {
			cps = append(cps, c)
		}
	}
	return cps
}

// LogCheckpoints returns at most k logarithmically spaced checkpoints
// from 1 to n, strictly increasing and always ending at n, suitable for
// the paper's log-x axes (Figure 4).
func LogCheckpoints(n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k < 2 {
		return []int{n}
	}
	cps := []int{}
	last := 0
	for i := 0; i < k; i++ {
		f := float64(i) / float64(k-1)
		c := int(math.Pow(float64(n), f))
		if c <= last {
			c = last + 1
		}
		if c >= n {
			break
		}
		cps = append(cps, c)
		last = c
	}
	// Everything collected is < n; terminate with n itself, dropping the
	// highest interior point when float rounding already filled all k
	// slots below n.
	if len(cps) == k {
		cps = cps[:k-1]
	}
	return append(cps, n)
}

// Run executes the Monte-Carlo experiment for one protocol. It is
// RunContext with a background context; use RunContext when the caller
// needs cancellation.
func Run(p protocol.Protocol, initial []float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), p, initial, cfg)
}

// ctxCheckInterval is how many blocks a trial advances between context
// checks: frequent enough that cancellation lands mid-trial within
// microseconds, rare enough to stay invisible in the step loop's profile.
const ctxCheckInterval = 4096

// RunContext executes the Monte-Carlo experiment for one protocol,
// honouring ctx: cancellation stops claiming new trial batches,
// interrupts running batches at the next block boundary, and returns
// ctx.Err(). A cancelled run never returns a partial Result — samples
// are either complete and deterministic or absent.
//
// The first trial error cancels the whole run: no further batches start
// and the error is returned once the in-flight batches drain.
//
// Trials advance in flat batches over a structure-of-arrays arena (one
// recycled game.Batch plus one reseeded RNG per slot per worker), so the
// steady path allocates nothing per trial. Under cfg.Stop the run halts
// at the first batch-ordered prefix that resolves the unfair-probability
// verdict; workers may have speculatively computed batches beyond that
// prefix, but those samples are discarded, keeping the Result a pure
// function of (seed, rule).
func RunContext(ctx context.Context, p protocol.Protocol, initial []float64, cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("%w: Trials = %d", ErrConfig, cfg.Trials)
	}
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("%w: Blocks = %d", ErrConfig, cfg.Blocks)
	}
	if cfg.Miner < 0 || cfg.Miner >= len(initial) {
		return nil, fmt.Errorf("%w: Miner = %d with %d miners", ErrConfig, cfg.Miner, len(initial))
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("%w: Batch = %d", ErrConfig, cfg.Batch)
	}
	cps := cfg.Checkpoints
	if len(cps) == 0 {
		cps = LinearCheckpoints(cfg.Blocks, 50)
	}
	prev := 0
	for _, c := range cps {
		if c <= prev || c > cfg.Blocks {
			return nil, fmt.Errorf("%w: checkpoints must be strictly increasing in (0, %d], got %v", ErrConfig, cfg.Blocks, cps)
		}
		prev = c
	}
	var stop *StopRule
	if cfg.Stop != nil {
		s := cfg.Stop.withDefaults()
		if err := s.validate(); err != nil {
			return nil, err
		}
		stop = &s
	}
	// Validate the initial allocation once up front so that worker
	// goroutines cannot fail on it.
	if _, err := game.New(initial, cfg.GameOptions...); err != nil {
		return nil, err
	}

	res := &Result{
		Protocol:     p.Name(),
		Checkpoints:  append([]int(nil), cps...),
		TrialsBudget: cfg.Trials,
	}
	res.Lambda = make([][]float64, len(cps))
	for i := range res.Lambda {
		res.Lambda[i] = make([]float64, cfg.Trials)
	}

	batch := cfg.Batch
	if batch == 0 {
		batch = DefaultBatchSize
	}
	numBatches := (cfg.Trials + batch - 1) / batch
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numBatches {
		workers = numBatches
	}

	// runCtx is cancelled on the first trial error (fail fast) and when
	// an early stop is decided; the caller's ctx distinguishes user
	// cancellation from both.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	fr := newFrontier(&cfg, stop, batch, numBatches, res.Lambda[len(cps)-1])
	var (
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
		nextBatch atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar, err := newArena(batch, initial, cfg.GameOptions)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				cancelRun()
				return
			}
			for {
				if runCtx.Err() != nil || fr.stopped.Load() {
					return
				}
				b := int(nextBatch.Add(1)) - 1
				if b >= numBatches {
					return
				}
				start := b * batch
				end := start + batch
				if end > cfg.Trials {
					end = cfg.Trials
				}
				steps, err := runBatch(runCtx, p, &cfg, cps, res, start, end, ar)
				// Block telemetry counts protocol steps actually executed,
				// including the work of failed or interrupted batches.
				mcBlocks.Add(steps)
				if err != nil {
					if ctx.Err() == nil && runCtx.Err() == nil {
						errOnce.Do(func() { firstErr = err })
					}
					cancelRun()
					return
				}
				mcTrials.Add(int64(end - start))
				fr.complete(b)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res.TrialsRun = cfg.Trials
	if fr.stopped.Load() {
		res.TrialsRun = fr.stopTrials
		res.EarlyStopped = true
		res.StopConfidence = fr.stopConf
		for i := range res.Lambda {
			res.Lambda[i] = res.Lambda[i][:fr.stopTrials]
		}
	}
	return res, nil
}

// MeanSeries returns the per-checkpoint sample mean of λ.
func (r *Result) MeanSeries() []float64 {
	out := make([]float64, len(r.Checkpoints))
	for i, xs := range r.Lambda {
		out[i] = stats.Mean(xs)
	}
	return out
}

// PercentileSeries returns the per-checkpoint p-th percentile of λ.
func (r *Result) PercentileSeries(p float64) []float64 {
	out := make([]float64, len(r.Checkpoints))
	for i, xs := range r.Lambda {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		out[i] = stats.PercentileSorted(sorted, p)
	}
	return out
}

// UnfairProbSeries returns, per checkpoint, the fraction of trials with λ
// outside the fair area [(1−ε)a, (1+ε)a] — the paper's unfair probability.
func (r *Result) UnfairProbSeries(a, eps float64) []float64 {
	lo, hi := (1-eps)*a, (1+eps)*a
	out := make([]float64, len(r.Checkpoints))
	for i, xs := range r.Lambda {
		out[i] = 1 - stats.FractionWithin(xs, lo, hi)
	}
	return out
}

// FinalSamples returns the λ samples at the last checkpoint.
func (r *Result) FinalSamples() []float64 {
	if len(r.Lambda) == 0 {
		return nil
	}
	return r.Lambda[len(r.Lambda)-1]
}

// FinalSummary returns summary statistics at the last checkpoint.
func (r *Result) FinalSummary() stats.Summary {
	return stats.Summarize(r.FinalSamples())
}

// CheckpointsAsFloat returns the checkpoints as float64 x-coordinates.
func (r *Result) CheckpointsAsFloat() []float64 {
	out := make([]float64, len(r.Checkpoints))
	for i, c := range r.Checkpoints {
		out[i] = float64(c)
	}
	return out
}

// ConvergenceBlock returns the first checkpoint from which the unfair
// probability stays at or below delta through the end of the run, or -1 if
// fairness is never durably reached (Table 1's "Cvg. Time" column).
func (r *Result) ConvergenceBlock(a, eps, delta float64) int {
	unfair := r.UnfairProbSeries(a, eps)
	conv := -1
	for i := range unfair {
		if unfair[i] <= delta {
			if conv == -1 {
				conv = r.Checkpoints[i]
			}
		} else {
			conv = -1
		}
	}
	return conv
}
