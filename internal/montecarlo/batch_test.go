package montecarlo

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/game"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// corruptingProtocol poisons the game state on every step and counts how
// many steps actually ran, so tests can assert the run aborted instead
// of burning through the whole trial budget.
type corruptingProtocol struct {
	steps *atomic.Int64
}

func (p corruptingProtocol) Name() string { return "corrupt" }

func (p corruptingProtocol) Step(st *game.State, r *rng.Rand) {
	p.steps.Add(1)
	st.Stakes[0] = math.NaN()
}

// TestRunContextFailsFastOnTrialError is the regression test for the
// keep-computing-after-failure bug: a trial error must cancel the rest
// of the run, not leave the remaining trials grinding to completion.
func TestRunContextFailsFastOnTrialError(t *testing.T) {
	var steps atomic.Int64
	const trials = 10000
	res, err := RunContext(context.Background(), corruptingProtocol{&steps}, game.TwoMiner(0.2), Config{
		Trials:          trials,
		Blocks:          1,
		Seed:            7,
		Workers:         4,
		CheckInvariants: true,
	})
	if err == nil {
		t.Fatal("corrupted run returned nil error")
	}
	if errors.Is(err, ErrConfig) {
		t.Fatalf("trial failure misreported as config error: %v", err)
	}
	if !strings.Contains(err.Error(), "trial") {
		t.Errorf("error %q does not identify the failing trial", err)
	}
	if res != nil {
		t.Errorf("failed run returned non-nil result")
	}
	// Every trial corrupts at its first block, so a fail-fast run stops
	// after at most a few in-flight batches — nowhere near the budget.
	if got := steps.Load(); got >= trials/2 {
		t.Errorf("run executed %d steps after first failure, want far fewer than %d", got, trials)
	}
}

// TestLogCheckpointsProperty pins the contract of the checkpoint
// schedule over a sweep of sizes: at most k checkpoints (the historical
// bug returned k+1), strictly increasing, within [1, n], ending at n.
func TestLogCheckpointsProperty(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 10, 16, 33, 100, 1000, 4096, 5000, 65536} {
		for k := 0; k <= 12; k++ {
			cps := LogCheckpoints(n, k)
			max := k
			if max < 1 {
				max = 1
			}
			if len(cps) > max {
				t.Fatalf("LogCheckpoints(%d, %d) returned %d checkpoints, want <= %d: %v", n, k, len(cps), max, cps)
			}
			if cps[len(cps)-1] != n {
				t.Fatalf("LogCheckpoints(%d, %d) ends at %d, want %d", n, k, cps[len(cps)-1], n)
			}
			prev := 0
			for _, c := range cps {
				if c <= prev || c > n {
					t.Fatalf("LogCheckpoints(%d, %d) not strictly increasing in [1,%d]: %v", n, k, n, cps)
				}
				prev = c
			}
		}
	}
}

// TestAdaptiveStopsEarlyAndDeterministic covers the early-stopping core:
// a decisive scenario (tiny ε makes nearly every trial unfair) stops at
// the minimum prefix, the stop point is identical across worker counts,
// and the retained samples are bit-identical to the same prefix of an
// exhaustive run.
func TestAdaptiveStopsEarlyAndDeterministic(t *testing.T) {
	p := protocol.NewPoW(0.01)
	initial := game.TwoMiner(0.2)
	stop := &StopRule{Share: 0.2, Eps: 0.02, Delta: 0.1, Confidence: 1e-3, MinTrials: 8}
	cfg := Config{Trials: 5000, Blocks: 50, Seed: 3, Batch: 8, Stop: stop}

	cfg.Workers = 1
	one, err := RunContext(context.Background(), p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	many, err := RunContext(context.Background(), p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !one.EarlyStopped || one.TrialsRun >= one.TrialsBudget {
		t.Fatalf("decisive scenario did not stop early: ran %d of %d", one.TrialsRun, one.TrialsBudget)
	}
	if one.TrialsRun != many.TrialsRun || one.EarlyStopped != many.EarlyStopped {
		t.Fatalf("stop point depends on workers: 1 worker ran %d, 8 workers ran %d", one.TrialsRun, many.TrialsRun)
	}
	if one.StopConfidence <= 0 || one.StopConfidence > stop.Confidence {
		t.Errorf("stop confidence = %v, want in (0, %v]", one.StopConfidence, stop.Confidence)
	}
	for i := range one.Lambda {
		if len(one.Lambda[i]) != one.TrialsRun {
			t.Fatalf("checkpoint %d keeps %d samples, want TrialsRun = %d", i, len(one.Lambda[i]), one.TrialsRun)
		}
		for tr := range one.Lambda[i] {
			if one.Lambda[i][tr] != many.Lambda[i][tr] {
				t.Fatalf("λ[%d][%d] differs across worker counts", i, tr)
			}
		}
	}

	// The retained prefix must be the exhaustive run's prefix, bit for
	// bit: early stopping trims work, it never changes a sample.
	full := cfg
	full.Stop = nil
	full.Workers = 0
	exhaustive, err := RunContext(context.Background(), p, initial, full)
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.EarlyStopped || exhaustive.TrialsRun != full.Trials {
		t.Fatalf("exhaustive run misreported: ran %d, stopped %v", exhaustive.TrialsRun, exhaustive.EarlyStopped)
	}
	for i := range one.Lambda {
		for tr := range one.Lambda[i] {
			if one.Lambda[i][tr] != exhaustive.Lambda[i][tr] {
				t.Fatalf("adaptive λ[%d][%d] differs from the exhaustive prefix", i, tr)
			}
		}
	}
}

// TestAdaptiveRunsFullBudgetWhenUndecided: an unreachable confidence
// target means the rule never fires and the run degrades gracefully to
// the exhaustive semantics.
func TestAdaptiveRunsFullBudgetWhenUndecided(t *testing.T) {
	res, err := RunContext(context.Background(), protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
		Trials: 64, Blocks: 50, Seed: 3, Batch: 8, Workers: 4,
		Stop: &StopRule{Share: 0.2, Eps: 0.02, Delta: 0.1, Confidence: 1e-300, MinTrials: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EarlyStopped {
		t.Error("run stopped early despite an unreachable confidence target")
	}
	if res.TrialsRun != 64 || res.TrialsBudget != 64 {
		t.Errorf("TrialsRun/Budget = %d/%d, want 64/64", res.TrialsRun, res.TrialsBudget)
	}
	if got := len(res.FinalSamples()); got != 64 {
		t.Errorf("kept %d samples, want 64", got)
	}
}

// TestStopRuleValidation rejects unusable stopping rules through the
// standard ErrConfig path.
func TestStopRuleValidation(t *testing.T) {
	bad := []*StopRule{
		{Share: 0, Eps: 0.1, Delta: 0.1},
		{Share: 1.2, Eps: 0.1, Delta: 0.1},
		{Share: 0.2, Eps: 0, Delta: 0.1},
		{Share: 0.2, Eps: 0.1, Delta: 0},
		{Share: 0.2, Eps: 0.1, Delta: 1},
		{Share: 0.2, Eps: 0.1, Delta: 0.1, Confidence: 2},
		{Share: 0.2, Eps: 0.1, Delta: 0.1, MinTrials: -1},
	}
	for i, s := range bad {
		_, err := Run(protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
			Trials: 16, Blocks: 10, Seed: 1, Stop: s,
		})
		if !errors.Is(err, ErrConfig) {
			t.Errorf("bad stop rule %d: err = %v, want ErrConfig", i, err)
		}
	}
	if _, err := Run(protocol.NewPoW(0.01), game.TwoMiner(0.2), Config{
		Trials: 16, Blocks: 10, Seed: 1, Batch: -2,
	}); !errors.Is(err, ErrConfig) {
		t.Errorf("negative batch: err = %v, want ErrConfig", err)
	}
}
