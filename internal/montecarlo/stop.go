package montecarlo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/game"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Defaults of the batched trial core and its stopping rule.
const (
	// DefaultBatchSize is the number of trials the inner loop advances
	// together when Config.Batch is 0. Batches are also the granularity
	// of work claiming and of early-stopping looks.
	DefaultBatchSize = 8
	// DefaultStopConfidence is the total error probability budget of a
	// StopRule when Confidence is 0: across all looks, the probability
	// that an early stop certifies the wrong side of Delta.
	DefaultStopConfidence = 1e-3
	// DefaultMinTrials is the smallest completed-trial prefix a StopRule
	// evaluates when MinTrials is 0.
	DefaultMinTrials = 32
)

// StopRule configures adaptive early stopping: the run halts once the
// unfair-probability verdict — is P(λ outside the fair area
// [(1−Eps)·Share, (1+Eps)·Share]) above or below Delta? — is resolved at
// the requested confidence. The test is a Hoeffding bound on the
// observed unfair fraction p̂ over the completed-trial prefix, with a
// per-look budget Confidence/(j·(j+1)) so the union over any number of
// looks stays below Confidence.
//
// Stopping decisions are evaluated only on contiguous batch-ordered
// prefixes of completed trials, so the executed trial count — and every
// sample the Result keeps — is a pure function of (seed, rule),
// independent of worker count and scheduling.
type StopRule struct {
	// Share is the tracked miner's resource share a, defining the fair
	// area together with Eps.
	Share float64
	// Eps is the robust-fairness ε: the fair area is [(1−ε)a, (1+ε)a].
	Eps float64
	// Delta is the unfair-probability threshold δ the rule resolves
	// p_unfair against.
	Delta float64
	// Confidence is the total error-probability budget across all looks
	// (0 = DefaultStopConfidence).
	Confidence float64
	// MinTrials is the smallest prefix the rule evaluates (0 =
	// DefaultMinTrials).
	MinTrials int
}

// withDefaults resolves the zero-value knobs.
func (s StopRule) withDefaults() StopRule {
	if s.Confidence == 0 {
		s.Confidence = DefaultStopConfidence
	}
	if s.MinTrials == 0 {
		s.MinTrials = DefaultMinTrials
	}
	return s
}

// validate rejects unusable rules (after withDefaults).
func (s StopRule) validate() error {
	if !(s.Share > 0 && s.Share < 1) {
		return fmt.Errorf("%w: Stop.Share = %v, need 0 < a < 1", ErrConfig, s.Share)
	}
	if !(s.Eps > 0) {
		return fmt.Errorf("%w: Stop.Eps = %v, need > 0", ErrConfig, s.Eps)
	}
	if !(s.Delta > 0 && s.Delta < 1) {
		return fmt.Errorf("%w: Stop.Delta = %v, need 0 < delta < 1", ErrConfig, s.Delta)
	}
	if !(s.Confidence > 0 && s.Confidence < 1) {
		return fmt.Errorf("%w: Stop.Confidence = %v, need 0 < confidence < 1", ErrConfig, s.Confidence)
	}
	if s.MinTrials < 1 {
		return fmt.Errorf("%w: Stop.MinTrials = %d, need >= 1", ErrConfig, s.MinTrials)
	}
	return nil
}

// arena is one worker's recycled trial state: a structure-of-arrays
// game batch plus one RNG per slot, reseeded per batch with SeedStream.
// Nothing in here is allocated on the steady path.
type arena struct {
	games *game.Batch
	rngs  []rng.Rand
}

func newArena(n int, initial []float64, opts []game.Option) (*arena, error) {
	b, err := game.NewBatch(n, initial, opts...)
	if err != nil {
		return nil, err
	}
	return &arena{games: b, rngs: make([]rng.Rand, n)}, nil
}

// runBatch advances trials [start, end) to the last checkpoint,
// recording λ per checkpoint into res. Trial start+t uses
// rng.Stream(seed, start+t) semantics exactly, so results are
// bit-identical to the historical one-trial-at-a-time loop for any
// batch size. The returned step count is the number of protocol steps
// actually executed — reported even alongside an error, so block
// telemetry reflects real work.
func runBatch(ctx context.Context, p protocol.Protocol, cfg *Config, cps []int, res *Result, start, end int, ar *arena) (steps int64, err error) {
	n := end - start
	for t := 0; t < n; t++ {
		ar.games.State(t).Reset()
		ar.rngs[t].SeedStream(cfg.Seed, start+t)
	}
	next := 0
	lastCp := cps[len(cps)-1]
	for b := 1; b <= lastCp; b++ {
		if b%ctxCheckInterval == 0 && ctx.Err() != nil {
			return steps, ctx.Err()
		}
		for t := 0; t < n; t++ {
			p.Step(ar.games.State(t), &ar.rngs[t])
		}
		steps += int64(n)
		if b == cps[next] {
			for t := 0; t < n; t++ {
				st := ar.games.State(t)
				if cfg.CheckInvariants {
					if ierr := st.CheckInvariants(); ierr != nil {
						return steps, fmt.Errorf("montecarlo: trial %d block %d: %w", start+t, b, ierr)
					}
				}
				res.Lambda[next][start+t] = st.Lambda(cfg.Miner)
			}
			next++
		}
	}
	return steps, nil
}

// frontier tracks the contiguous prefix of completed batches in batch
// order. Everything order-sensitive happens during prefix advance under
// one mutex: OnTrialDone hooks fire in strict trial order, and the
// stopping rule sees each batch-aligned prefix exactly once — so the
// stop point is deterministic no matter how many workers computed the
// batches or in what order they finished.
type frontier struct {
	mu          sync.Mutex
	batch       int
	trialsTotal int
	numBatches  int
	completed   []bool
	front       int
	trials      int
	unfair      int
	look        int
	stop        *StopRule
	lo, hi      float64
	hook        func(trial int, finalLambda float64)
	finalRow    []float64

	stopped    atomic.Bool
	stopTrials int
	stopConf   float64
}

func newFrontier(cfg *Config, stop *StopRule, batch, numBatches int, finalRow []float64) *frontier {
	f := &frontier{
		batch:       batch,
		trialsTotal: cfg.Trials,
		numBatches:  numBatches,
		completed:   make([]bool, numBatches),
		stop:        stop,
		hook:        cfg.OnTrialDone,
		finalRow:    finalRow,
	}
	if stop != nil {
		f.lo, f.hi = (1-stop.Eps)*stop.Share, (1+stop.Eps)*stop.Share
	}
	return f
}

// complete marks batch b done and advances the frontier over every
// contiguous completed batch, firing hooks and evaluating the stopping
// rule at each batch boundary.
func (f *frontier) complete(b int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.completed[b] = true
	for f.front < f.numBatches && f.completed[f.front] && !f.stopped.Load() {
		start := f.front * f.batch
		end := start + f.batch
		if end > f.trialsTotal {
			end = f.trialsTotal
		}
		for t := start; t < end; t++ {
			lam := f.finalRow[t]
			if f.hook != nil {
				f.hook(t, lam)
			}
			// NaN λ fails the range test and counts as unfair, matching
			// UnfairProbSeries / stats.FractionWithin.
			if f.stop != nil && !(lam >= f.lo && lam <= f.hi) {
				f.unfair++
			}
		}
		f.trials = end
		f.front++
		if f.stop != nil && f.trials >= f.stop.MinTrials && f.trials < f.trialsTotal {
			f.look++
			alpha := f.stop.Confidence / float64(f.look*(f.look+1))
			phat := float64(f.unfair) / float64(f.trials)
			margin := phat - f.stop.Delta
			if margin < 0 {
				margin = -margin
			}
			// For a mean deviation of `margin` over n bounded samples the
			// Hoeffding argument is gamma = n·margin over denominator n:
			// 2·exp(−2·n·margin²).
			tail := dist.HoeffdingTail(float64(f.trials)*margin, float64(f.trials))
			if tail <= alpha {
				f.stopTrials = f.trials
				f.stopConf = tail
				f.stopped.Store(true)
			}
		}
	}
}
