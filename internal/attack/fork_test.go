package attack

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSimStepMatchesSimulate(t *testing.T) {
	// The stepping machine and the one-shot Simulate must be the same
	// computation, draw for draw: stepping n times and snapshotting gives
	// exactly Simulate(n) on an identically seeded generator.
	s := SelfishMining{Alpha: 0.4, Gamma: 0.5}
	want, err := s.Simulate(50000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := s.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 50000; i++ {
		sim.Step(r)
	}
	if got := sim.Snapshot(); got != want {
		t.Errorf("stepped result %+v != Simulate %+v", got, want)
	}
}

func TestSimSnapshotDoesNotMutate(t *testing.T) {
	s := SelfishMining{Alpha: 0.45, Gamma: 0}
	sim, err := s.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		sim.Step(r)
	}
	a := sim.Snapshot()
	b := sim.Snapshot()
	if a != b {
		t.Errorf("snapshots differ: %+v vs %+v", a, b)
	}
	// Snapshots settle in-flight state without losing events: totals are
	// monotone in the event count.
	sim.Step(r)
	c := sim.Snapshot()
	if c.SelfishBlocks+c.HonestBlocks+c.Orphans != a.SelfishBlocks+a.HonestBlocks+a.Orphans+1 {
		t.Errorf("event accounting broke across Step: %+v then %+v", a, c)
	}
}

func TestNewSimValidates(t *testing.T) {
	if _, err := (SelfishMining{Alpha: 0.7}).NewSim(); !errors.Is(err, ErrParams) {
		t.Errorf("invalid alpha accepted: %v", err)
	}
}

func TestForkEffectivePowersIdentityCases(t *testing.T) {
	// f = 0 is the identity; equal shares stay equal at any fork rate
	// (symmetry leaves nothing to skew).
	p, err := ForkEffectivePowers([]float64{0.3, 0.7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.3) > 1e-15 || math.Abs(p[1]-0.7) > 1e-15 {
		t.Errorf("f=0 changed shares: %v", p)
	}
	p, err = ForkEffectivePowers([]float64{1, 1, 1, 1}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("equal shares skewed: p[%d] = %v", i, v)
		}
	}
}

func TestForkEffectivePowersRichGetRicher(t *testing.T) {
	shares := []float64{0.6, 0.2, 0.1, 0.1}
	for _, f := range []float64{0.1, 0.4, 0.8} {
		p, err := ForkEffectivePowers(shares, f)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("f=%v: effective powers sum to %v", f, sum)
		}
		if p[0] <= shares[0] {
			t.Errorf("f=%v: largest miner not favoured: %v <= %v", f, p[0], shares[0])
		}
		if p[2] >= shares[2] {
			t.Errorf("f=%v: small miner not penalised: %v >= %v", f, p[2], shares[2])
		}
	}
	// The skew grows with the fork rate.
	lo, _ := ForkEffectivePowers(shares, 0.2)
	hi, _ := ForkEffectivePowers(shares, 0.8)
	if hi[0] <= lo[0] {
		t.Errorf("skew not monotone in f: %v then %v", lo[0], hi[0])
	}
}

func TestForkEffectivePowersRejectsBadInput(t *testing.T) {
	cases := []struct {
		shares []float64
		f      float64
	}{
		{[]float64{0.5, 0.5}, -0.1},
		{[]float64{0.5, 0.5}, 1},
		{[]float64{0.5, 0.5}, math.NaN()},
		{[]float64{0.5}, 0.3},
		{[]float64{0.5, 0}, 0.3},
		{[]float64{0.5, -1}, 0.3},
		{[]float64{0.5, math.Inf(1)}, 0.3},
	}
	for _, c := range cases {
		if _, err := ForkEffectivePowers(c.shares, c.f); !errors.Is(err, ErrParams) {
			t.Errorf("ForkEffectivePowers(%v, %v) accepted", c.shares, c.f)
		}
	}
}

var sinkPowers []float64

func BenchmarkForkEffectivePowers(b *testing.B) {
	shares := make([]float64, 64)
	r := rng.New(1)
	for i := range shares {
		shares[i] = r.Float64() + 0.01
	}
	for i := 0; i < b.N; i++ {
		sinkPowers, _ = ForkEffectivePowers(shares, 0.3)
	}
}
