// Package attack analyses incentive attacks through the paper's fairness
// lens. Section 6.5 argues that fairness analysis "provides insight into
// further study of the incentive-based attacks, such as selfish mining",
// and Section 8 names attacks as the paper's future work; this package
// takes the first step for PoW by implementing the Eyal–Sirer selfish
// mining strategy, both as an event-driven simulation and in closed form,
// and expressing its profitability as a violation of expectational
// fairness: an attacker with hash share α earning a revenue share R > α.
// The package also models the honest cousin of that skew — fork-induced
// rich-get-richer dynamics à la Sakurai & Shudo (fork.go) — so the
// scenario vocabulary can bend rewards with and without a deviating
// miner.
package attack

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// SelfishMining models one selfish miner with hash share Alpha against an
// honest majority. Gamma is the fraction of honest hash power that mines
// on the selfish branch during a 1-vs-1 fork race (the attacker's network
// advantage: 0 = honest miners never see the selfish block first, 1 =
// they always do).
type SelfishMining struct {
	Alpha float64
	Gamma float64
}

// ErrParams reports invalid attack parameters.
var ErrParams = errors.New("attack: invalid parameters")

// Validate checks 0 < α < 1/2 and 0 ≤ γ ≤ 1. (α ≥ 1/2 trivially wins;
// the interesting regime is the minority attacker.)
func (s SelfishMining) Validate() error {
	if !(s.Alpha > 0 && s.Alpha < 0.5) {
		return fmt.Errorf("%w: alpha = %v, need (0, 0.5)", ErrParams, s.Alpha)
	}
	if !(s.Gamma >= 0 && s.Gamma <= 1) {
		return fmt.Errorf("%w: gamma = %v, need [0, 1]", ErrParams, s.Gamma)
	}
	return nil
}

// Result summarises a selfish-mining simulation.
type Result struct {
	// SelfishBlocks and HonestBlocks count blocks on the final main chain.
	SelfishBlocks int
	HonestBlocks  int
	// Orphans counts blocks discarded in fork resolutions.
	Orphans int
}

// RevenueShare returns the attacker's fraction of main-chain rewards —
// her λ in the paper's terms.
func (r Result) RevenueShare() float64 {
	total := r.SelfishBlocks + r.HonestBlocks
	if total == 0 {
		return 0
	}
	return float64(r.SelfishBlocks) / float64(total)
}

// Sim is a stepping Eyal–Sirer simulation: the same state machine
// Simulate runs, exposed one block-discovery event at a time so callers
// (the sweep engine's Monte-Carlo backend) can snapshot the revenue
// split at intermediate checkpoints.
type Sim struct {
	strategy SelfishMining
	res      Result
	lead     int  // private branch length minus public branch length
	racing   bool // 1-vs-1 fork race in progress
	maxLead  int  // publish the whole branch at this lead (0 = uncapped)
}

// NewSim validates the strategy and returns a simulation at the genesis
// state.
func (s SelfishMining) NewSim() (*Sim, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Sim{strategy: s}, nil
}

// Step advances the machine by one block-discovery event. The classic
// transitions are implemented exactly, including the lead-2 hand-over
// (publishing the whole private branch when the lead collapses to 1
// after an honest find) and the 1-vs-1 race decided by γ.
func (m *Sim) Step(r *rng.Rand) {
	s := m.strategy
	selfishFound := r.Float64() < s.Alpha
	switch {
	case m.racing:
		// Branches of length 1 compete.
		switch {
		case selfishFound:
			// Attacker extends her branch and publishes: she takes
			// both blocks; the honest race block is orphaned.
			m.res.SelfishBlocks += 2
			m.res.Orphans++
		case r.Float64() < s.Gamma:
			// Honest miner extends the selfish branch: the selfish
			// race block and the new honest block win; the honest
			// race block is orphaned.
			m.res.SelfishBlocks++
			m.res.HonestBlocks++
			m.res.Orphans++
		default:
			// Honest miner extends the honest branch: the selfish
			// race block is orphaned.
			m.res.HonestBlocks += 2
			m.res.Orphans++
		}
		m.racing = false
		m.lead = 0
	case selfishFound:
		m.lead++
		if m.maxLead > 0 && m.lead >= m.maxLead {
			// Publish-delay cap reached: release the whole branch. The
			// public chain has not advanced since the fork point, so every
			// private block settles canonically with no race and no
			// orphans.
			m.res.SelfishBlocks += m.lead
			m.lead = 0
		}
	default: // honest block found
		switch m.lead {
		case 0:
			m.res.HonestBlocks++
		case 1:
			// Attacker publishes her single private block: race.
			m.racing = true
		case 2:
			// Attacker publishes the whole branch and takes it all;
			// the honest block is orphaned.
			m.res.SelfishBlocks += 2
			m.res.Orphans++
			m.lead = 0
		default:
			// Lead > 2: publish one block, keep mining privately.
			m.res.SelfishBlocks++
			m.res.Orphans++ // the honest block will never make the chain
			m.lead--
		}
	}
}

// Snapshot returns the main-chain outcome as of the current event,
// settling in-flight state the way Simulate settles the horizon: an
// unresolved race goes to the public honest block (the conservative
// outcome for the attacker) and a private lead is flushed to the
// attacker. Snapshot does not advance or mutate the machine.
func (m *Sim) Snapshot() Result {
	res := m.res
	if m.racing {
		res.HonestBlocks++
		res.Orphans++
	} else if m.lead > 0 {
		res.SelfishBlocks += m.lead
	}
	return res
}

// DelayedSelfish is the publish-delay variant of selfish mining: the
// same withholding state machine, but the private branch is published
// in full as soon as its lead reaches Delay. Delay = 0 is classic
// uncapped withholding; Delay = 1 publishes every block immediately and
// is behaviourally honest. Unlike SelfishMining's rational use in the
// sweep backends, DelayedSelfish is a committed strategy — it runs as
// parameterised whether or not the deviation is profitable.
type DelayedSelfish struct {
	SelfishMining
	Delay int
}

// validate checks the underlying strategy plus the lead cap.
func (d DelayedSelfish) validate() error {
	if err := d.SelfishMining.Validate(); err != nil {
		return err
	}
	if d.Delay < 0 {
		return fmt.Errorf("%w: delay = %d, need >= 0", ErrParams, d.Delay)
	}
	return nil
}

// NewSim validates the strategy and returns a lead-capped simulation at
// the genesis state.
func (d DelayedSelfish) NewSim() (*Sim, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &Sim{strategy: d.SelfishMining, maxLead: d.Delay}, nil
}

// Simulate runs the Eyal–Sirer state machine for the given number of
// block-discovery events and returns the main-chain outcome.
func (s SelfishMining) Simulate(events int, r *rng.Rand) (Result, error) {
	sim, err := s.NewSim()
	if err != nil {
		return Result{}, err
	}
	if events <= 0 {
		return Result{}, fmt.Errorf("%w: events = %d", ErrParams, events)
	}
	for i := 0; i < events; i++ {
		sim.Step(r)
	}
	return sim.Snapshot(), nil
}

// Revenue returns the closed-form Eyal–Sirer relative revenue of the
// selfish pool,
//
//	R(α, γ) = [α(1−α)²(4α + γ(1−2α)) − α³] / [1 − α(1 + (2−α)α)] ,
//
// the stationary fraction of main-chain blocks the attacker earns.
func (s SelfishMining) Revenue() (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	a, g := s.Alpha, s.Gamma
	num := a*(1-a)*(1-a)*(4*a+g*(1-2*a)) - a*a*a
	den := 1 - a*(1+(2-a)*a)
	r := num / den
	if r < 0 {
		r = 0 // below the profitability region the honest strategy dominates
	}
	return r, nil
}

// ProfitThreshold returns the minimum hash share α above which selfish
// mining beats honest mining for a given γ: (1−γ)/(3−2γ).
func ProfitThreshold(gamma float64) (float64, error) {
	if !(gamma >= 0 && gamma <= 1) {
		return 0, fmt.Errorf("%w: gamma = %v", ErrParams, gamma)
	}
	return (1 - gamma) / (3 - 2*gamma), nil
}

// BreaksExpectationalFairness reports whether the attack's closed-form
// revenue share exceeds the attacker's resource share — i.e. whether the
// strategy converts PoW's fair lottery into a rich-get-richer one.
func (s SelfishMining) BreaksExpectationalFairness() (bool, error) {
	r, err := s.Revenue()
	if err != nil {
		return false, err
	}
	return r > s.Alpha, nil
}
