package attack

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// This file is the pluggable face of the package: a registry of named
// adversary strategies the scenario vocabulary, the sweep backends and
// the best-response arena all key off. PR 4 hard-coded exactly one
// deviation (rational Eyal–Sirer selfish mining); the registry turns
// that into an open, validated set — each Strategy declares the
// protocols it applies to, the parameters it consumes, whether a given
// parameterisation actually deviates from honest play, and (for PoW
// race strategies) how to build its steppable simulation.

// Kind classifies how a strategy executes inside the backends.
type Kind int

const (
	// KindHonest marks protocol-following play (the null deviation).
	KindHonest Kind = iota
	// KindPoWRace marks longest-chain withholding strategies that run as
	// a steppable block-discovery race (RaceSim) against an honest pool.
	KindPoWRace
	// KindStakeWithhold marks PoS strategies that defer the staking
	// effect of the deviator's own rewards inside the ordinary mining
	// game (per-miner reward withholding).
	KindStakeWithhold
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindHonest:
		return "honest"
	case KindPoWRace:
		return "pow-race"
	case KindStakeWithhold:
		return "stake-withhold"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Params is the flattened parameter set of one deviating miner. Every
// strategy reads the subset it declares in Uses; the scenario
// normaliser clears the rest so equivalent specs share one canonical
// form.
type Params struct {
	// Share is the deviator's resource share in (0, 1).
	Share float64
	// Gamma is the network advantage of a race strategy in [0, 1].
	Gamma float64
	// Delay is the publish-delay lead cap of selfish-delay: the private
	// lead at which the whole branch is published. 0 = uncapped
	// (classic Eyal–Sirer withholding), 1 = publish immediately
	// (honest behaviour).
	Delay int
	// Every is the restake period of withhold: the deviator's rewards
	// join her staking power only at multiples of Every blocks.
	// 0 = never restake (the strongest form).
	Every int
}

// ParamUse declares which Params fields a strategy consumes. The
// scenario normaliser zeroes unconsumed fields — exactly like protocol
// parameters — so specs that describe the same computation share one
// hash and one cache entry.
type ParamUse struct {
	Gamma bool
	Delay bool
	Every bool
}

// RaceSim is a steppable PoW block-discovery race: one event per Step,
// with Snapshot settling in-flight state into a main-chain Result. The
// classic selfish-mining Sim implements it.
type RaceSim interface {
	Step(r *rng.Rand)
	Snapshot() Result
}

// Strategy is one pluggable adversary strategy.
type Strategy interface {
	// Name is the canonical registry name ("honest", "selfish", ...).
	Name() string
	// Kind classifies the execution model.
	Kind() Kind
	// Protocols lists the canonical scenario protocol names the strategy
	// applies to; nil means every protocol.
	Protocols() []string
	// Uses declares the parameters the strategy consumes.
	Uses() ParamUse
	// Validate checks a parameterisation, wrapping ErrParams.
	Validate(p Params) error
	// Deviates reports whether the parameterisation actually departs
	// from honest play. Rational strategies (selfish) answer false when
	// honest play dominates; committed strategies answer from their
	// parameters alone.
	Deviates(p Params) bool
	// NewRaceSim builds the steppable race simulation of a KindPoWRace
	// strategy; other kinds return ErrParams.
	NewRaceSim(p Params) (RaceSim, error)
}

// Canonical strategy names.
const (
	StrategyHonest       = "honest"
	StrategySelfish      = "selfish"
	StrategySelfishDelay = "selfish-delay"
	StrategyWithhold     = "withhold"
)

// registry maps lookup keys (canonicalised names) to strategies. It is
// populated at init time and read-only afterwards, so lookups need no
// locking.
var registry = map[string]Strategy{}

// strategyKey canonicalises a strategy name for lookup: lower-cased
// with separators stripped, so "Selfish-Delay", "selfish_delay" and
// "selfishdelay" all find the same entry.
func strategyKey(name string) string {
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			b = append(b, c+'a'-'A')
		case c == '-' || c == '_' || c == ' ':
		default:
			b = append(b, c)
		}
	}
	return string(b)
}

// Register adds a strategy to the registry. It panics on a duplicate
// key — registration happens in init, so a collision is a programming
// error, not a runtime condition.
func Register(s Strategy) {
	key := strategyKey(s.Name())
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("attack: duplicate strategy %q", s.Name()))
	}
	registry[key] = s
}

// Lookup resolves a strategy name (case- and separator-insensitive).
func Lookup(name string) (Strategy, bool) {
	s, ok := registry[strategyKey(name)]
	return s, ok
}

// CanonicalStrategy returns the registry's canonical spelling of a
// strategy name when it is registered, and the canonicalised lookup key
// otherwise (so unknown names still normalise deterministically and the
// validation error shows what was looked up).
func CanonicalStrategy(name string) string {
	if s, ok := Lookup(name); ok {
		return s.Name()
	}
	return strategyKey(name)
}

// Names returns the sorted canonical names of all registered
// strategies — the list unknown-strategy errors print.
func Names() []string {
	names := make([]string, 0, len(registry))
	for _, s := range registry {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return names
}

// StrategyProtocols resolves a strategy's protocol coverage against the
// full protocol list: nil (all protocols) becomes the given list.
func StrategyProtocols(s Strategy, all []string) []string {
	if ps := s.Protocols(); ps != nil {
		return ps
	}
	return all
}

func init() {
	Register(honestStrategy{})
	Register(selfishStrategy{})
	Register(selfishDelayStrategy{})
	Register(withholdStrategy{})
}

// posProtocols are the compounding PoS models where deferring the
// staking effect of rewards changes the game at all.
var posProtocols = []string{"mlpos", "slpos", "fslpos", "cpos"}

// honestStrategy is the null deviation: protocol-following play on
// every protocol. It exists so strategy grids and the arena can sweep
// "no attack" through the same axis as real deviations.
type honestStrategy struct{}

func (honestStrategy) Name() string        { return StrategyHonest }
func (honestStrategy) Kind() Kind          { return KindHonest }
func (honestStrategy) Protocols() []string { return nil }
func (honestStrategy) Uses() ParamUse      { return ParamUse{} }
func (honestStrategy) Validate(p Params) error {
	if !(p.Share > 0 && p.Share < 1) {
		return fmt.Errorf("%w: honest share = %v, need (0, 1)", ErrParams, p.Share)
	}
	return nil
}
func (honestStrategy) Deviates(Params) bool { return false }
func (honestStrategy) NewRaceSim(Params) (RaceSim, error) {
	return nil, fmt.Errorf("%w: honest is not a race strategy", ErrParams)
}

// selfishStrategy is rational Eyal–Sirer selfish mining, exactly as PR 4
// shipped it: the miner runs the withholding state machine only when its
// closed-form revenue beats honest mining, and mines honestly below the
// profitability threshold (1−γ)/(3−2γ).
type selfishStrategy struct{}

func (selfishStrategy) Name() string        { return StrategySelfish }
func (selfishStrategy) Kind() Kind          { return KindPoWRace }
func (selfishStrategy) Protocols() []string { return []string{"pow"} }
func (selfishStrategy) Uses() ParamUse      { return ParamUse{Gamma: true} }
func (selfishStrategy) Validate(p Params) error {
	return SelfishMining{Alpha: p.Share, Gamma: p.Gamma}.Validate()
}
func (selfishStrategy) Deviates(p Params) bool {
	profitable, err := SelfishMining{Alpha: p.Share, Gamma: p.Gamma}.BreaksExpectationalFairness()
	return err == nil && profitable
}
func (selfishStrategy) NewRaceSim(p Params) (RaceSim, error) {
	return SelfishMining{Alpha: p.Share, Gamma: p.Gamma}.NewSim()
}

// selfishDelayStrategy is the committed, publish-delay variant: the
// miner always withholds, publishing the whole private branch once its
// lead reaches Delay (0 = uncapped). Unlike `selfish` it does not
// collapse to honest below the profitability threshold — delay=1 is the
// only honest parameterisation — which is what makes it a usable
// best-response candidate in the arena.
type selfishDelayStrategy struct{}

func (selfishDelayStrategy) Name() string        { return StrategySelfishDelay }
func (selfishDelayStrategy) Kind() Kind          { return KindPoWRace }
func (selfishDelayStrategy) Protocols() []string { return []string{"pow"} }
func (selfishDelayStrategy) Uses() ParamUse      { return ParamUse{Gamma: true, Delay: true} }
func (selfishDelayStrategy) Validate(p Params) error {
	return DelayedSelfish{SelfishMining: SelfishMining{Alpha: p.Share, Gamma: p.Gamma}, Delay: p.Delay}.validate()
}
func (selfishDelayStrategy) Deviates(p Params) bool { return p.Delay != 1 }
func (selfishDelayStrategy) NewRaceSim(p Params) (RaceSim, error) {
	return DelayedSelfish{SelfishMining: SelfishMining{Alpha: p.Share, Gamma: p.Gamma}, Delay: p.Delay}.NewSim()
}

// withholdStrategy defers the staking effect of the deviator's own
// rewards (game.WithMinerWithholding): income still counts toward λ
// immediately, but compounds into staking power only at multiples of
// Every blocks — never, when Every is 0. It applies to the compounding
// PoS models; on PoW rewards convey no stake, so there is nothing to
// withhold.
type withholdStrategy struct{}

func (withholdStrategy) Name() string        { return StrategyWithhold }
func (withholdStrategy) Kind() Kind          { return KindStakeWithhold }
func (withholdStrategy) Protocols() []string { return posProtocols }
func (withholdStrategy) Uses() ParamUse      { return ParamUse{Every: true} }
func (withholdStrategy) Validate(p Params) error {
	if !(p.Share > 0 && p.Share < 1) {
		return fmt.Errorf("%w: withhold share = %v, need (0, 1)", ErrParams, p.Share)
	}
	if p.Every < 0 {
		return fmt.Errorf("%w: withhold every = %d, need >= 0", ErrParams, p.Every)
	}
	return nil
}
func (withholdStrategy) Deviates(Params) bool { return true }
func (withholdStrategy) NewRaceSim(Params) (RaceSim, error) {
	return nil, fmt.Errorf("%w: withhold is not a race strategy", ErrParams)
}
