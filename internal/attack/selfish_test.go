package attack

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestValidate(t *testing.T) {
	bad := []SelfishMining{
		{Alpha: 0, Gamma: 0.5},
		{Alpha: 0.5, Gamma: 0.5},
		{Alpha: 0.6, Gamma: 0.5},
		{Alpha: 0.3, Gamma: -0.1},
		{Alpha: 0.3, Gamma: 1.1},
	}
	for _, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrParams) {
			t.Errorf("%+v should be invalid", s)
		}
	}
	if err := (SelfishMining{Alpha: 0.3, Gamma: 0.5}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestProfitThresholdKnownValues(t *testing.T) {
	// Eyal–Sirer: γ=0 ⇒ 1/3; γ=1 ⇒ 0; γ=0.5 ⇒ 0.25.
	cases := []struct{ gamma, want float64 }{
		{0, 1.0 / 3}, {1, 0}, {0.5, 0.25},
	}
	for _, c := range cases {
		got, err := ProfitThreshold(c.gamma)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("threshold(%v) = %v, want %v", c.gamma, got, c.want)
		}
	}
	if _, err := ProfitThreshold(-1); err == nil {
		t.Error("invalid gamma accepted")
	}
}

func TestRevenueClosedFormProperties(t *testing.T) {
	// Below the threshold the formula is clamped at honest revenue or
	// lower (never profitable); above, strictly profitable.
	for _, gamma := range []float64{0, 0.5, 1} {
		th, _ := ProfitThreshold(gamma)
		for alpha := 0.05; alpha < 0.5; alpha += 0.025 {
			s := SelfishMining{Alpha: alpha, Gamma: gamma}
			r, err := s.Revenue()
			if err != nil {
				t.Fatal(err)
			}
			if r < 0 || r > 1 {
				t.Fatalf("revenue out of range: %v", r)
			}
			breaks, _ := s.BreaksExpectationalFairness()
			if alpha > th+0.02 && !breaks {
				t.Errorf("α=%v γ=%v should be profitable (threshold %v), R=%v", alpha, gamma, th, r)
			}
			if alpha < th-0.02 && breaks {
				t.Errorf("α=%v γ=%v should NOT be profitable (threshold %v), R=%v", alpha, gamma, th, r)
			}
		}
	}
}

func TestRevenueMonotoneInGamma(t *testing.T) {
	prev := -1.0
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r, err := SelfishMining{Alpha: 0.35, Gamma: gamma}.Revenue()
		if err != nil {
			t.Fatal(err)
		}
		if r < prev {
			t.Fatalf("revenue not monotone in γ: %v after %v", r, prev)
		}
		prev = r
	}
}

func TestSimulationMatchesClosedForm(t *testing.T) {
	// The event-driven state machine must reproduce the stationary
	// closed form for profitable settings.
	cases := []SelfishMining{
		{Alpha: 0.35, Gamma: 0},
		{Alpha: 0.4, Gamma: 0.5},
		{Alpha: 0.3, Gamma: 1},
		{Alpha: 0.45, Gamma: 0.25},
	}
	for _, s := range cases {
		want, err := s.Revenue()
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Simulate(400000, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		got := res.RevenueShare()
		if math.Abs(got-want) > 0.01 {
			t.Errorf("α=%v γ=%v: simulated %v, closed form %v", s.Alpha, s.Gamma, got, want)
		}
	}
}

func TestSimulationUnprofitableBelowThreshold(t *testing.T) {
	// A 20% attacker with γ=0 earns LESS than honest mining would give.
	s := SelfishMining{Alpha: 0.2, Gamma: 0}
	res, err := s.Simulate(400000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RevenueShare(); got >= 0.2 {
		t.Errorf("below-threshold attack earned %v ≥ 0.2", got)
	}
}

func TestSimulationProducesOrphans(t *testing.T) {
	s := SelfishMining{Alpha: 0.4, Gamma: 0.5}
	res, err := s.Simulate(100000, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Orphans == 0 {
		t.Error("selfish mining should orphan honest blocks")
	}
	// Event conservation: every event is either on-chain or orphaned.
	if res.SelfishBlocks+res.HonestBlocks+res.Orphans != 100000 {
		t.Errorf("event accounting broken: %d + %d + %d != 100000",
			res.SelfishBlocks, res.HonestBlocks, res.Orphans)
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	if _, err := (SelfishMining{Alpha: 0.7, Gamma: 0}).Simulate(100, rng.New(1)); err == nil {
		t.Error("invalid alpha accepted")
	}
	if _, err := (SelfishMining{Alpha: 0.3, Gamma: 0}).Simulate(0, rng.New(1)); err == nil {
		t.Error("zero events accepted")
	}
}

func TestEmptyResultRevenue(t *testing.T) {
	if (Result{}).RevenueShare() != 0 {
		t.Error("empty result revenue should be 0")
	}
}
