package attack

import (
	"fmt"
	"math"
)

// Fork-induced reward skew, after Sakurai & Shudo, "The Rich Get Richer
// in Bitcoin Mining Induced by Blockchain Forks". Even with every miner
// honest, imperfect propagation makes concurrent blocks race, and races
// favour large miners: a miner always mines on its own candidate block,
// so it backs the winning branch of its own races with probability equal
// to its full power, while small miners mostly back whichever branch
// they heard first. Over many heights this inflates the canonical-block
// share of large miners above their power share — expectational
// unfairness without any protocol deviation.
//
// The model quantified here (the same one internal/chainsim simulates
// block by block): at each chain height, with probability f a second
// concurrent block contests the height. The first block's producer i is
// drawn proportional to power, the contender j proportional to power
// among the rest. Both producers mine on their own branch; every neutral
// miner picks a side with probability ½ each. The race resolves when the
// next block is found — by a power-proportional draw over all miners —
// and the finder's side wins the height.
//
// Conditional on the racing pair {i, j}, branch i therefore survives
// with probability
//
//	s_ij = p_i + (1 − p_i − p_j)/2 = ½ + (p_i − p_j)/2 ,
//
// strictly increasing in the power gap — the rich-get-richer mechanism.

// ErrFork reports invalid fork-model parameters.
var ErrFork = fmt.Errorf("%w: fork model", ErrParams)

// ForkEffectivePowers returns each miner's per-height probability of
// owning the canonical block under fork rate f — the "effective power"
// vector p′ with
//
//	p′_i = (1−f)·p_i + f·Σ_{j≠i} π_ij·s_ij ,
//
// where π_ij is the probability that {i, j} is the racing pair
// (p_i·p_j/(1−p_i) + p_j·p_i/(1−p_j)) and s_ij the survival probability
// above. The result sums to 1; f = 0 returns the nominal shares.
// Shares are normalised before the correction, so any positive vector
// is accepted.
func ForkEffectivePowers(shares []float64, forkRate float64) ([]float64, error) {
	if !(forkRate >= 0 && forkRate < 1) || math.IsNaN(forkRate) {
		return nil, fmt.Errorf("%w: fork rate = %v, need [0, 1)", ErrFork, forkRate)
	}
	if len(shares) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 miners, got %d", ErrFork, len(shares))
	}
	total := 0.0
	for i, v := range shares {
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: shares[%d] = %v, need positive and finite", ErrFork, i, v)
		}
		total += v
	}
	p := make([]float64, len(shares))
	for i, v := range shares {
		p[i] = v / total
	}
	if forkRate == 0 {
		return p, nil
	}
	eff := make([]float64, len(p))
	for i := range p {
		q := 0.0
		for j := range p {
			if j == i {
				continue
			}
			pair := p[i]*p[j]/(1-p[i]) + p[j]*p[i]/(1-p[j])
			survive := 0.5 + (p[i]-p[j])/2
			q += pair * survive
		}
		eff[i] = (1-forkRate)*p[i] + forkRate*q
	}
	return eff, nil
}
