package scenario

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestNormalizedDefaults(t *testing.T) {
	n := Spec{Protocol: "ML-PoS"}.Normalized()
	if n.Protocol != "mlpos" {
		t.Errorf("protocol = %q", n.Protocol)
	}
	if n.W != 0.01 || n.Blocks != 5000 || n.Trials != 1000 || n.Seed != 1 {
		t.Errorf("paper defaults not applied: %+v", n)
	}
	if len(n.Stakes) != 2 || n.Stakes[0] != 0.2 || n.Stakes[1] != 0.8 {
		t.Errorf("stakes = %v, want leader-and-pack [0.2 0.8]", n.Stakes)
	}
	if len(n.Checkpoints) != 1 || n.Checkpoints[0] != 5000 {
		t.Errorf("checkpoints = %v, want final only", n.Checkpoints)
	}
	if n.Eps != 0.1 || n.Delta != 0.1 {
		t.Errorf("(eps, delta) = (%v, %v)", n.Eps, n.Delta)
	}
	// Protocol-conditional defaults.
	c := Spec{Protocol: "cpos"}.Normalized()
	if c.V != 0.1 || c.Shards != 32 {
		t.Errorf("cpos defaults: v=%v P=%d", c.V, c.Shards)
	}
	h := Spec{Protocol: "hybrid"}.Normalized()
	if h.Alpha != 0.5 {
		t.Errorf("hybrid alpha = %v", h.Alpha)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Spec{
		Name: "mlpos sweep point", Protocol: "mlpos", W: 0.005,
		Stakes: []float64{0.3, 0.5, 0.2}, Miner: 2,
		Blocks: 2000, Trials: 250, Seed: 99,
		Checkpoints: []int{500, 1000, 2000}, WithholdEvery: 100,
		Eps: 0.05, Delta: 0.2,
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Errorf("round trip changed encoding:\n%s\n%s", data, again)
	}
	if back.MustHash() != orig.MustHash() {
		t.Error("round trip changed hash")
	}
	// Unknown fields are rejected.
	if _, err := Decode([]byte(`{"protocol":"pow","blokcs":100}`)); !errors.Is(err, ErrSpec) {
		t.Errorf("typo field err = %v, want ErrSpec", err)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Spec{
		{Protocol: "dogecoin"},
		{Protocol: "pow", W: -1},
		{Protocol: "pow", W: math.NaN()},
		{Protocol: "pow", Stakes: []float64{1}},
		{Protocol: "pow", Stakes: []float64{0.5, -0.5}},
		{Protocol: "pow", Stakes: []float64{0.5, math.Inf(1)}},
		{Protocol: "pow", Miner: 5},
		{Protocol: "pow", Blocks: -10},
		{Protocol: "pow", Trials: -1},
		{Protocol: "pow", Blocks: 100, Checkpoints: []int{50, 50}},
		{Protocol: "pow", Blocks: 100, Checkpoints: []int{200}},
		{Protocol: "pow", WithholdEvery: -2},
		{Protocol: "pow", Eps: -0.1},
		{Protocol: "pow", Delta: 1.5},
		{Protocol: "cpos", Shards: -1},
		{Protocol: "hybrid", Alpha: 2},
		{Protocol: "algorand", V: -0.1},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrSpec) {
			t.Errorf("case %d (%+v): err = %v, want ErrSpec", i, s, err)
		}
	}
	good := []Spec{
		{Protocol: "pow"},
		{Protocol: "C-PoS"},
		{Protocol: "slpos", Stake: 0.4, Miners: 5},
		{Protocol: "hybrid", Alpha: 0.9, WithholdEvery: 50},
		{Protocol: "algorand"},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
}

func TestBuildConstructsEveryProtocol(t *testing.T) {
	for _, name := range ProtocolNames() {
		p, err := Spec{Protocol: name}.Build()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%s: empty protocol name", name)
		}
	}
	if _, err := (Spec{Protocol: "nope"}).Build(); !errors.Is(err, ErrSpec) {
		t.Errorf("unknown protocol err = %v", err)
	}
}

func TestHashDeterminismAndSensitivity(t *testing.T) {
	s := Spec{Protocol: "mlpos", W: 0.01, Stake: 0.2, Blocks: 1000, Trials: 100}
	h1 := s.MustHash()
	for i := 0; i < 50; i++ {
		if s.MustHash() != h1 {
			t.Fatal("hash not stable across calls")
		}
	}
	// Sugar form and explicit form hash identically.
	explicit := s
	explicit.Stake, explicit.Miners = 0, 0
	explicit.Stakes = []float64{0.2, 0.8}
	if explicit.MustHash() != h1 {
		t.Error("explicit stakes should hash like the sugar form")
	}
	// JSON field ordering in the source document is irrelevant.
	a, err := Decode([]byte(`{"protocol":"mlpos","w":0.01,"stake":0.2,"blocks":1000,"trials":100}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode([]byte(`{"trials":100,"blocks":1000,"stake":0.2,"w":0.01,"protocol":"mlpos"}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.MustHash() != b.MustHash() || a.MustHash() != h1 {
		t.Error("JSON key order changed the hash")
	}
	// Names don't affect the hash; parameters do.
	named := s
	named.Name = "label"
	if named.MustHash() != h1 {
		t.Error("name should not affect the hash")
	}
	for _, mutate := range []func(*Spec){
		func(x *Spec) { x.W = 0.02 },
		func(x *Spec) { x.Protocol = "pow" },
		func(x *Spec) { x.Stake = 0.3 },
		func(x *Spec) { x.Blocks = 2000 },
		func(x *Spec) { x.Trials = 101 },
		func(x *Spec) { x.Seed = 7 },
		func(x *Spec) { x.WithholdEvery = 10 },
		func(x *Spec) { x.Eps = 0.2 },
	} {
		m := s
		mutate(&m)
		if m.MustHash() == h1 {
			t.Errorf("mutation %+v did not change the hash", m)
		}
	}
}

func TestHashIgnoresProtocolIrrelevantParams(t *testing.T) {
	// Parameters a protocol does not consume must not split the cache:
	// a PoW spec with a stray v (e.g. from a grid that sweeps V for
	// C-PoS) describes the same computation as one without.
	pow := Spec{Protocol: "pow", W: 0.01, Stake: 0.2, Blocks: 500, Trials: 50}
	powV := pow
	powV.V = 0.2
	powV.Shards = 64
	powV.Alpha = 0.9
	if pow.MustHash() != powV.MustHash() {
		t.Error("irrelevant params changed the PoW hash")
	}
	if DeriveSeed(1, pow) != DeriveSeed(1, powV) {
		t.Error("irrelevant params changed the derived seed")
	}
	alg := Spec{Protocol: "algorand", Stake: 0.2, Blocks: 500, Trials: 50}
	algW := alg
	algW.W = 0.05
	if alg.MustHash() != algW.MustHash() {
		t.Error("w changed the Algorand hash despite being unused")
	}
	// Consumed parameters still matter.
	cpos := Spec{Protocol: "cpos", Stake: 0.2, Blocks: 500, Trials: 50}
	cposV := cpos
	cposV.V = 0.2
	if cpos.MustHash() == cposV.MustHash() {
		t.Error("v should change the C-PoS hash")
	}
}

func TestDeriveSeedIsContentStable(t *testing.T) {
	s := Spec{Protocol: "pow", Stake: 0.2, Blocks: 500, Trials: 50}
	a := DeriveSeed(42, s)
	if a != DeriveSeed(42, s) {
		t.Error("derived seed not deterministic")
	}
	// Seed field itself is excluded, so re-deriving is idempotent.
	withSeed := s
	withSeed.Seed = a
	if DeriveSeed(42, withSeed) != a {
		t.Error("derivation should ignore the spec's own seed")
	}
	// Different content or base gives a different stream.
	other := s
	other.Stake = 0.3
	if DeriveSeed(42, other) == a {
		t.Error("different content should derive a different seed")
	}
	if DeriveSeed(43, s) == a {
		t.Error("different base should derive a different seed")
	}
}

func TestGridExpansionCardinality(t *testing.T) {
	g := Grid{
		Base:      Spec{Blocks: 400, Trials: 40},
		Protocols: []string{"pow", "mlpos", "slpos", "cpos"},
		W:         []float64{0.001, 0.01},
		Stake:     []float64{0.1, 0.2, 0.3},
	}
	if got, want := g.Size(), 24; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 24 {
		t.Fatalf("expanded %d scenarios, want 24", len(specs))
	}
	// All distinct, all named, all carrying derived seeds.
	seen := map[string]bool{}
	for _, s := range specs {
		h := s.MustHash()
		if seen[h] {
			t.Errorf("duplicate scenario %s", s.Name)
		}
		seen[h] = true
		if s.Name == "" || s.Seed == 0 {
			t.Errorf("scenario missing name or seed: %+v", s)
		}
		if s.Blocks != 400 || s.Trials != 40 {
			t.Errorf("base fields lost: %+v", s)
		}
	}
	// Expansion is deterministic, including seeds.
	again, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if specs[i].MustHash() != again[i].MustHash() || specs[i].Seed != again[i].Seed {
			t.Fatalf("expansion not deterministic at %d", i)
		}
	}
	// A scenario shared by two different grids hashes identically, which
	// is what makes overlapping sweeps cache-compatible.
	sub := Grid{
		Base:      g.Base,
		Protocols: []string{"mlpos"},
		W:         []float64{0.01},
		Stake:     []float64{0.2, 0.3},
	}
	subSpecs, err := sub.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subSpecs {
		if !seen[s.MustHash()] {
			t.Errorf("overlapping grid produced an unseen hash for %s", s.Name)
		}
	}
}

func TestGridCellNamesDistinguishSweptAxes(t *testing.T) {
	g := Grid{
		Base:      Spec{Protocol: "pow", Trials: 20},
		Blocks:    []int{500, 1000},
		Miners:    []int{2, 5},
		Protocols: []string{"pow"},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate cell name %q", s.Name)
		}
		names[s.Name] = true
	}
	if len(names) != 4 {
		t.Errorf("got %d distinct names, want 4: %v", len(names), names)
	}
}

func TestGridExpandValidates(t *testing.T) {
	g := Grid{Protocols: []string{"pow"}, W: []float64{-1}}
	if _, err := g.Expand(); !errors.Is(err, ErrSpec) {
		t.Errorf("err = %v, want ErrSpec", err)
	}
}

func TestGridZeroValueExpandsToBase(t *testing.T) {
	g := Grid{Base: Spec{Protocol: "pow", Stake: 0.25}}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("got %d scenarios", len(specs))
	}
	if got := specs[0].TrackedShare(); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("tracked share = %v", got)
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Protocol: "cpos", WithholdEvery: 10}
	str := s.String()
	for _, want := range []string{"cpos", "w=0.01", "v=0.1", "P=32", "withhold=10"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}
