package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Grid declares a sweep over scenario axes: the cartesian product of
// every non-empty axis, each combination overriding the Base spec. An
// empty axis keeps the base value, so the zero Grid expands to exactly
// the base scenario.
type Grid struct {
	// Base is the spec every combination starts from.
	Base Spec `json:"base"`

	// Axes. Each non-empty slice multiplies the grid cardinality.
	Protocols []string  `json:"protocols,omitempty"`
	W         []float64 `json:"w,omitempty"`
	V         []float64 `json:"v,omitempty"`
	Stake     []float64 `json:"stake,omitempty"`
	Miners    []int     `json:"miners,omitempty"`
	Blocks    []int     `json:"blocks,omitempty"`
	Trials    []int     `json:"trials,omitempty"`
	Withhold  []int     `json:"withhold,omitempty"`
	// Strategies sweeps the adversary strategy itself; each cell
	// materialises an adversary block with the axis value (keeping the
	// base block's miner index when one exists). The "honest" value is
	// the no-deviation baseline cell — it normalises to the honest spec,
	// so it shares that spec's hash and cache entry.
	Strategies []string `json:"strategies,omitempty"`
	// Gamma sweeps a race strategy's network advantage; it requires an
	// adversary block on Base or a Strategies axis (the axis overrides
	// the block's gamma).
	Gamma []float64 `json:"gamma,omitempty"`
	// Delay sweeps selfish-delay's publish-delay cap; same requirement
	// as Gamma.
	Delay []int `json:"delay,omitempty"`
	// Every sweeps withhold's restake period; same requirement as Gamma.
	Every []int `json:"every,omitempty"`
	// ForkRate sweeps the network fork rate; a value of 0 is the honest
	// perfect-network cell (no network block).
	ForkRate []float64 `json:"fork_rate,omitempty"`

	// Seed is the sweep base seed from which each scenario's seed is
	// derived (DeriveSeed); 0 falls back to Base.Seed, then to 1.
	Seed uint64 `json:"seed,omitempty"`
}

// Size returns the number of concrete scenarios the grid expands to.
func (g Grid) Size() int {
	size := 1
	for _, n := range []int{
		len(g.Protocols), len(g.W), len(g.V), len(g.Stake),
		len(g.Miners), len(g.Blocks), len(g.Trials), len(g.Withhold),
		len(g.Strategies), len(g.Gamma), len(g.Delay), len(g.Every),
		len(g.ForkRate),
	} {
		if n > 0 {
			size *= n
		}
	}
	return size
}

// baseSeed returns the sweep-level seed scenarios derive from.
func (g Grid) baseSeed() uint64 {
	if g.Seed != 0 {
		return g.Seed
	}
	if g.Base.Seed != 0 {
		return g.Base.Seed
	}
	return 1
}

// Expand returns the concrete, validated scenario list of the grid in a
// deterministic axis order (protocols ▸ w ▸ v ▸ stake ▸ miners ▸ blocks ▸
// trials ▸ withhold ▸ strategy ▸ gamma ▸ delay ▸ every ▸ fork-rate).
// Every scenario gets a descriptive Name and a seed derived from the
// grid seed and its own parameter content, so the list — seeds included
// — is a pure function of the grid.
func (g Grid) Expand() ([]Spec, error) {
	protocols := g.Protocols
	if len(protocols) == 0 {
		protocols = []string{g.Base.Protocol}
	}
	hasAdv := g.Base.Adversary != nil || len(g.Strategies) > 0
	for _, axis := range []struct {
		name string
		n    int
	}{{"gamma", len(g.Gamma)}, {"delay", len(g.Delay)}, {"every", len(g.Every)}} {
		if axis.n > 0 && !hasAdv {
			return nil, fmt.Errorf("%w: %s axis needs an adversary block on the base spec or a strategies axis", ErrSpec, axis.name)
		}
	}
	baseStrategy, baseGamma, baseDelay, baseEvery := "", 0.0, 0, 0
	if a := g.Base.Adversary; a != nil {
		baseStrategy, baseGamma, baseDelay, baseEvery = a.Strategy, a.Gamma, a.Delay, a.Every
	}
	specs := make([]Spec, 0, g.Size())
	base := g.baseSeed()
	for _, proto := range protocols {
		for _, w := range orFloat(g.W, g.Base.W) {
			for _, v := range orFloat(g.V, g.Base.V) {
				for _, stake := range orFloat(g.Stake, g.Base.Stake) {
					for _, miners := range orInt(g.Miners, g.Base.Miners) {
						for _, blocks := range orInt(g.Blocks, g.Base.Blocks) {
							for _, trials := range orInt(g.Trials, g.Base.Trials) {
								for _, withhold := range orInt(g.Withhold, g.Base.WithholdEvery) {
									for _, strat := range orString(g.Strategies, baseStrategy) {
										for _, gamma := range orFloat(g.Gamma, baseGamma) {
											for _, delay := range orInt(g.Delay, baseDelay) {
												for _, every := range orInt(g.Every, baseEvery) {
													for _, fork := range orFloat(g.ForkRate, baseFork(g.Base)) {
														s := g.Base
														s.Protocol = proto
														s.W, s.V = w, v
														s.Blocks, s.Trials = blocks, trials
														s.WithholdEvery = withhold
														if len(g.Stake) > 0 || len(g.Miners) > 0 {
															// Stake axes override any explicit base allocation.
															s.Stakes = nil
															s.Stake, s.Miners = stake, miners
														}
														// Clone (or materialise, under a strategies axis) the
														// adversary block so grid cells never alias the base
														// or each other through shared structs. Normalisation
														// clears the parameters each cell's strategy does not
														// consume, so e.g. a withhold cell of a mixed grid is
														// untouched by the gamma axis.
														if strat != "" || len(g.Strategies) > 0 {
															adv := Adversary{Strategy: strat, Gamma: gamma, Delay: delay, Every: every}
															if g.Base.Adversary != nil {
																adv.Miner = g.Base.Adversary.Miner
															}
															s.Adversary = &adv
														}
														// A literal 0 is the honest perfect-network cell; any
														// other value — including an invalid one — materialises
														// a block so Validate vets it below, rather than an
														// out-of-range axis value silently collapsing into a
														// duplicate honest cell.
														if fork != 0 {
															s.Network = &Network{ForkRate: fork}
														} else {
															s.Network = nil
														}
														s.Seed = 0
														s.Seed = DeriveSeed(base, s)
														s.Name = g.cellName(s)
														if err := s.Validate(); err != nil {
															return nil, fmt.Errorf("expanding %s: %w", s.Name, err)
														}
														specs = append(specs, s)
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return specs, nil
}

// baseFork returns the base spec's fork rate (0 without a network block).
func baseFork(base Spec) float64 {
	if base.Network != nil {
		return base.Network.ForkRate
	}
	return 0
}

// DecodeGrid parses a Grid from JSON, rejecting unknown fields.
func DecodeGrid(data []byte) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return g, nil
}

// DecodeSpecsOrGrid parses the two sweep-input document formats every
// CLI and service accepts — an explicit scenario array, or a grid
// object — into a validated, non-empty scenario list. Arrays are taken
// verbatim, seeds and all; grids that don't name their own seed fall
// back to baseSeed (0 keeps the grid's usual Base.Seed/1 fallback).
// This is the single decode path of fairsweep -spec files, fairnessd
// /v1/sweep bodies and fairctl spec arguments.
func DecodeSpecsOrGrid(data []byte, baseSeed uint64) ([]Spec, error) {
	if strings.HasPrefix(strings.TrimSpace(string(data)), "[") {
		list, err := DecodeList(data)
		if err != nil {
			return nil, err
		}
		for i := range list {
			if err := list[i].Validate(); err != nil {
				return nil, fmt.Errorf("scenario %d: %w", i, err)
			}
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("%w: empty scenario list", ErrSpec)
		}
		return list, nil
	}
	grid, err := DecodeGrid(data)
	if err != nil {
		return nil, err
	}
	if grid.Seed == 0 {
		grid.Seed = baseSeed
	}
	specs, err := grid.Expand()
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: grid expands to zero scenarios", ErrSpec)
	}
	return specs, nil
}

// cellName labels an expanded scenario. Protocol, reward and share are
// always shown; any other axis the grid actually sweeps (more than one
// value) is appended, so distinct grid cells never share a name.
func (g Grid) cellName(s Spec) string {
	n := s.Normalized()
	name := fmt.Sprintf("%s/w=%g/a=%g", n.Protocol, n.W, s.TrackedShare())
	if len(g.V) > 1 {
		name += fmt.Sprintf("/v=%g", s.V)
	}
	if len(g.Miners) > 1 {
		name += fmt.Sprintf("/m=%d", len(n.Stakes))
	}
	if len(g.Blocks) > 1 {
		name += fmt.Sprintf("/n=%d", n.Blocks)
	}
	if len(g.Trials) > 1 {
		name += fmt.Sprintf("/t=%d", n.Trials)
	}
	if s.WithholdEvery > 0 {
		name += fmt.Sprintf("/k=%d", s.WithholdEvery)
	}
	if n.Adversary != nil {
		name += fmt.Sprintf("/%s@%d", n.Adversary.Strategy, n.Adversary.Miner)
		if len(g.Gamma) > 1 {
			name += fmt.Sprintf("/g=%g", n.Adversary.Gamma)
		}
		if len(g.Delay) > 1 {
			name += fmt.Sprintf("/d=%d", n.Adversary.Delay)
		}
		if len(g.Every) > 1 {
			name += fmt.Sprintf("/e=%d", n.Adversary.Every)
		}
	} else if s.Adversary != nil {
		// The honest baseline cell of a strategies axis: its adversary
		// block collapses under normalisation, but the cell still earns a
		// label distinct from a plain honest spec.
		name += fmt.Sprintf("/honest@%d", s.Adversary.Miner)
	}
	if n.Network != nil {
		name += fmt.Sprintf("/f=%g", n.Network.ForkRate)
	}
	return name
}

func orFloat(axis []float64, base float64) []float64 {
	if len(axis) == 0 {
		return []float64{base}
	}
	return axis
}

func orInt(axis []int, base int) []int {
	if len(axis) == 0 {
		return []int{base}
	}
	return axis
}

func orString(axis []string, base string) []string {
	if len(axis) == 0 {
		return []string{base}
	}
	return axis
}
