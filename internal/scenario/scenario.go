// Package scenario defines the declarative fairness-scenario
// specification the sweep engine runs on: a protocol name plus its
// parameters, an initial stake split, a horizon, a trial count and the
// fairness (ε, δ) — everything needed to reproduce one Monte-Carlo
// fairness evaluation from a JSON document.
//
// Specs are canonicalised (Normalized), checked (Validate), content-hashed
// for caching and reproducibility (Hash), and expanded from sweep axes
// into concrete scenario lists (Grid.Expand). The hash covers the
// canonical form, so the two equivalent ways to state a stake split — an
// explicit Stakes vector, or the Stake/Miners leader-and-pack sugar —
// hash identically.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"slices"
	"strings"

	"repro/internal/attack"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// ErrSpec reports an invalid scenario specification.
var ErrSpec = errors.New("scenario: invalid spec")

// Spec is one declarative fairness scenario. The zero value of most
// fields means "use the paper's default" (see Normalized).
type Spec struct {
	// Name is an optional human label; it does not affect the hash.
	Name string `json:"name,omitempty"`

	// Protocol names the incentive model: pow, mlpos, slpos, fslpos,
	// cpos, neo, algorand, eos or hybrid (case- and dash-insensitive).
	Protocol string `json:"protocol"`

	// W is the block/proposer reward (default 0.01, the paper's w).
	W float64 `json:"w,omitempty"`
	// V is the inflation reward for C-PoS/EOS/Algorand (default 0.1).
	V float64 `json:"v,omitempty"`
	// Alpha is the hybrid model's fixed-resource weight (default 0.5).
	Alpha float64 `json:"alpha,omitempty"`
	// Shards is the C-PoS shard count P (default 32, Ethereum 2.0).
	Shards int `json:"shards,omitempty"`

	// Stakes is the explicit initial allocation. When empty, the
	// Stake/Miners sugar below is materialised into a leader-and-pack
	// split.
	Stakes []float64 `json:"stakes,omitempty"`
	// Stake is the tracked miner's initial share when Stakes is empty
	// (default 0.2, the paper's a).
	Stake float64 `json:"stake,omitempty"`
	// Miners is the miner count when Stakes is empty (default 2).
	Miners int `json:"miners,omitempty"`
	// Miner is the index of the tracked miner (default 0).
	Miner int `json:"miner,omitempty"`

	// Blocks is the horizon in blocks/epochs (default 5000).
	Blocks int `json:"blocks,omitempty"`
	// Trials is the Monte-Carlo trial count (default 1000).
	Trials int `json:"trials,omitempty"`
	// Seed is the base RNG seed (default 1); trial i of the run uses
	// rng.Stream(Seed, i).
	Seed uint64 `json:"seed,omitempty"`
	// Checkpoints are the block counts at which λ is recorded; empty
	// means the final horizon only.
	Checkpoints []int `json:"checkpoints,omitempty"`

	// WithholdEvery applies the Section 6.3 reward-withholding treatment
	// with period k when > 0.
	WithholdEvery int `json:"withhold_every,omitempty"`

	// Adversary, when present, makes one miner deviate strategically from
	// the protocol with a registered attack strategy (see Adversary).
	Adversary *Adversary `json:"adversary,omitempty"`
	// Network, when present, models imperfect block propagation: a
	// per-height fork rate in the Sakurai–Shudo style (PoW only).
	Network *Network `json:"network,omitempty"`

	// Eps and Delta are the robust-fairness parameters (default 0.1).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
}

// Adversary declares one strategically deviating miner. The paper's
// fairness notions assume honest execution; an adversary block asks how
// far a deviation bends λ away from the deviator's resource share a.
//
// Strategy is an open enum keyed into the internal/attack registry
// (StrategyNames lists the registered set): "honest", "selfish"
// (rational Eyal–Sirer withholding, PoW), "selfish-delay" (committed
// withholding with a publish-delay cap, PoW) and "withhold" (per-miner
// reward withholding, the compounding PoS models). Each strategy
// consumes its own parameter subset — gamma for the race strategies,
// delay for selfish-delay, every for withhold — and normalisation
// clears the rest, exactly like protocol parameters, so equivalent
// specs share one canonical form and one hash.
type Adversary struct {
	// Strategy names the deviation (case- and separator-insensitive);
	// unknown names fail validation with an UnknownStrategyError listing
	// the registered strategies.
	Strategy string `json:"strategy"`
	// Miner is the index of the deviating miner (default 0, the tracked
	// miner).
	Miner int `json:"miner,omitempty"`
	// Gamma is a race strategy's network advantage: the fraction of
	// honest power that mines on the attacker's branch during a 1-vs-1
	// fork race, in [0, 1].
	Gamma float64 `json:"gamma,omitempty"`
	// Delay is selfish-delay's publish-delay cap: the private lead at
	// which the whole branch is published (0 = uncapped classic
	// withholding, 1 = behaviourally honest).
	Delay int `json:"delay,omitempty"`
	// Every is withhold's restake period: the deviator's rewards join
	// her staking power only at multiples of Every blocks (0 = never).
	Every int `json:"every,omitempty"`
}

// Network declares imperfect block propagation. Sakurai & Shudo ("The
// Rich Get Richer in Bitcoin Mining Induced by Blockchain Forks") show
// that fork races systematically favour large miners, because a miner
// always mines on its own candidate block and wins races in proportion
// to its power; ForkRate is the knob that turns that effect on.
type Network struct {
	// ForkRate is the probability, per chain height, that a second
	// concurrent block contests the height and a fork race resolves it,
	// in [0, 1).
	ForkRate float64 `json:"fork_rate,omitempty"`
}

// Canonical adversary strategy names, re-exported from the
// internal/attack registry.
const (
	StrategyHonest       = attack.StrategyHonest
	StrategySelfish      = attack.StrategySelfish
	StrategySelfishDelay = attack.StrategySelfishDelay
	StrategyWithhold     = attack.StrategyWithhold
)

// StrategyNames returns the sorted canonical names of the registered
// adversary strategies — the open enum Adversary.Strategy validates
// against.
func StrategyNames() []string { return attack.Names() }

// knownProtocols maps canonical protocol names to constructors.
var knownProtocols = map[string]func(Spec) protocol.Protocol{
	"pow":      func(s Spec) protocol.Protocol { return protocol.NewPoW(s.W) },
	"mlpos":    func(s Spec) protocol.Protocol { return protocol.NewMLPoS(s.W) },
	"slpos":    func(s Spec) protocol.Protocol { return protocol.NewSLPoS(s.W) },
	"fslpos":   func(s Spec) protocol.Protocol { return protocol.NewFSLPoS(s.W) },
	"cpos":     func(s Spec) protocol.Protocol { return protocol.NewCPoS(s.W, s.V, s.Shards) },
	"neo":      func(s Spec) protocol.Protocol { return protocol.NewNEO(s.W) },
	"algorand": func(s Spec) protocol.Protocol { return protocol.NewAlgorand(s.V) },
	"eos":      func(s Spec) protocol.Protocol { return protocol.NewEOS(s.W, s.V) },
	"hybrid":   func(s Spec) protocol.Protocol { return protocol.NewHybrid(s.W, s.Alpha) },
}

// ProtocolNames returns the canonical protocol names accepted in specs.
func ProtocolNames() []string {
	return []string{"pow", "mlpos", "slpos", "fslpos", "cpos", "neo", "algorand", "eos", "hybrid"}
}

// CanonicalProtocol lower-cases a protocol name and strips separators, so
// "ML-PoS", "ml_pos" and "mlpos" all canonicalise to "mlpos".
func CanonicalProtocol(name string) string {
	r := strings.NewReplacer("-", "", "_", "", " ", "")
	return r.Replace(strings.ToLower(name))
}

// Normalized returns the canonical form of the spec: defaults applied,
// protocol name canonicalised and the Stake/Miners sugar materialised into
// an explicit Stakes vector. Hashing and execution both operate on the
// normalised form.
func (s Spec) Normalized() Spec {
	n := s
	n.Protocol = CanonicalProtocol(s.Protocol)
	if n.W == 0 {
		n.W = 0.01
	}
	if n.V == 0 && (n.Protocol == "cpos" || n.Protocol == "eos" || n.Protocol == "algorand") {
		n.V = 0.1
	}
	if n.Alpha == 0 && n.Protocol == "hybrid" {
		n.Alpha = 0.5
	}
	if n.Shards == 0 && n.Protocol == "cpos" {
		n.Shards = 32
	}
	// Clear parameters the protocol does not consume, so specs that
	// describe the same computation share one canonical form — and
	// therefore one hash, one derived seed and one cache entry.
	switch n.Protocol {
	case "pow", "mlpos", "slpos", "fslpos", "neo":
		n.V, n.Alpha, n.Shards = 0, 0, 0
	case "cpos":
		n.Alpha = 0
	case "eos":
		n.Alpha, n.Shards = 0, 0
	case "algorand":
		n.W, n.Alpha, n.Shards = 0, 0, 0
	case "hybrid":
		n.V, n.Shards = 0, 0
	}
	if len(n.Stakes) == 0 {
		stake := n.Stake
		if stake == 0 {
			stake = 0.2
		}
		miners := n.Miners
		if miners == 0 {
			miners = 2
		}
		if stake > 0 && stake < 1 && miners >= 2 {
			stakes := make([]float64, miners)
			stakes[0] = stake
			for i := 1; i < miners; i++ {
				stakes[i] = (1 - stake) / float64(miners-1)
			}
			n.Stakes = stakes
		}
	}
	// The sugar fields are redundant once Stakes is explicit; clear them
	// so both input forms share one canonical encoding (and one hash).
	n.Stake = 0
	n.Miners = 0
	if n.Blocks == 0 {
		n.Blocks = 5000
	}
	if n.Trials == 0 {
		n.Trials = 1000
	}
	if n.Seed == 0 {
		n.Seed = 1
	}
	if len(n.Checkpoints) == 0 {
		n.Checkpoints = []int{n.Blocks}
	}
	// Clone the adversary/network blocks so normalising never mutates the
	// caller's spec, and collapse the zero fork rate — a nil network
	// block and fork_rate 0 both mean "perfect network" and must share
	// one canonical encoding (and one hash). A deviating adversary block
	// is NEVER collapsed: a present-but-empty strategy is a validation
	// error, not an honest run — silently dropping it would report honest
	// numbers for a spec that asked for an attack. The null deviation
	// "honest" IS collapsed (once its miner index is in range), because
	// it names exactly the honest computation and must share its hash,
	// seed and cache entry — that is what lets strategy grid axes include
	// the honest baseline for free.
	if s.Adversary != nil {
		a := *s.Adversary
		a.Strategy = attack.CanonicalStrategy(a.Strategy)
		n.Adversary = &a
		if strat, ok := attack.Lookup(a.Strategy); ok {
			// Clear parameters the strategy does not consume, exactly
			// like protocol parameters above.
			use := strat.Uses()
			if !use.Gamma {
				a.Gamma = 0
			}
			if !use.Delay {
				a.Delay = 0
			}
			if !use.Every {
				a.Every = 0
			}
			if strat.Kind() == attack.KindHonest && a.Miner >= 0 && a.Miner < len(n.Stakes) {
				n.Adversary = nil
			}
		}
	}
	if s.Network != nil {
		if s.Network.ForkRate == 0 {
			n.Network = nil
		} else {
			nw := *s.Network
			n.Network = &nw
		}
	}
	if n.Eps == 0 {
		n.Eps = 0.1
	}
	if n.Delta == 0 {
		n.Delta = 0.1
	}
	return n
}

// Validate checks the normalised form of the spec and returns a
// descriptive error wrapping ErrSpec on the first violation.
func (s Spec) Validate() error {
	n := s.Normalized()
	if _, ok := knownProtocols[n.Protocol]; !ok {
		return fmt.Errorf("%w: unknown protocol %q (known: %s)",
			ErrSpec, s.Protocol, strings.Join(ProtocolNames(), ", "))
	}
	if n.Protocol != "algorand" && (n.W <= 0 || math.IsNaN(n.W) || math.IsInf(n.W, 0)) {
		return fmt.Errorf("%w: w = %v, need > 0", ErrSpec, n.W)
	}
	if n.V < 0 || math.IsNaN(n.V) || math.IsInf(n.V, 0) {
		return fmt.Errorf("%w: v = %v, need >= 0", ErrSpec, n.V)
	}
	if n.Protocol == "algorand" && n.V <= 0 {
		return fmt.Errorf("%w: algorand needs v > 0", ErrSpec)
	}
	if n.Protocol == "hybrid" && (n.Alpha < 0 || n.Alpha > 1 || math.IsNaN(n.Alpha)) {
		return fmt.Errorf("%w: hybrid alpha = %v, need [0, 1]", ErrSpec, n.Alpha)
	}
	if n.Protocol == "cpos" && n.Shards < 1 {
		return fmt.Errorf("%w: cpos shards = %d, need >= 1", ErrSpec, n.Shards)
	}
	if len(n.Stakes) < 2 {
		// Diagnose why the leader-and-pack sugar failed to materialise.
		if len(s.Stakes) == 0 && s.Stake != 0 && !(s.Stake > 0 && s.Stake < 1) {
			return fmt.Errorf("%w: stake = %v, need 0 < stake < 1", ErrSpec, s.Stake)
		}
		if len(s.Stakes) == 0 && s.Miners != 0 && s.Miners < 2 {
			return fmt.Errorf("%w: miners = %d, need >= 2", ErrSpec, s.Miners)
		}
		return fmt.Errorf("%w: need at least 2 miners (stake=%v, miners=%d)", ErrSpec, s.Stake, s.Miners)
	}
	for i, v := range n.Stakes {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: stakes[%d] = %v, need positive and finite", ErrSpec, i, v)
		}
	}
	if n.Miner < 0 || n.Miner >= len(n.Stakes) {
		return fmt.Errorf("%w: miner = %d with %d miners", ErrSpec, n.Miner, len(n.Stakes))
	}
	if n.Blocks <= 0 {
		return fmt.Errorf("%w: blocks = %d", ErrSpec, n.Blocks)
	}
	if n.Trials <= 0 {
		return fmt.Errorf("%w: trials = %d", ErrSpec, n.Trials)
	}
	prev := 0
	for _, c := range n.Checkpoints {
		if c <= prev || c > n.Blocks {
			return fmt.Errorf("%w: checkpoints must be strictly increasing in (0, %d], got %v",
				ErrSpec, n.Blocks, n.Checkpoints)
		}
		prev = c
	}
	if n.WithholdEvery < 0 {
		return fmt.Errorf("%w: withhold_every = %d", ErrSpec, n.WithholdEvery)
	}
	if err := n.validateAdversaryNetwork(); err != nil {
		return err
	}
	if n.Eps <= 0 || math.IsNaN(n.Eps) {
		return fmt.Errorf("%w: eps = %v", ErrSpec, n.Eps)
	}
	if n.Delta <= 0 || n.Delta >= 1 || math.IsNaN(n.Delta) {
		return fmt.Errorf("%w: delta = %v, need (0, 1)", ErrSpec, n.Delta)
	}
	return nil
}

// UnknownStrategyError reports an adversary strategy outside the
// registered set. It unwraps to ErrSpec; Known lists the registry, so
// callers (and users) see exactly which strategies exist.
type UnknownStrategyError struct {
	// Strategy is the canonicalised name that failed to resolve.
	Strategy string
	// Known lists the registered strategy names.
	Known []string
}

// Error implements error.
func (e *UnknownStrategyError) Error() string {
	return fmt.Sprintf("%v: unknown adversary strategy %q (registered: %s)",
		ErrSpec, e.Strategy, strings.Join(e.Known, ", "))
}

// Unwrap makes errors.Is(err, ErrSpec) hold.
func (e *UnknownStrategyError) Unwrap() error { return ErrSpec }

// BlockConflict is one violated exclusivity rule between spec blocks,
// naming every block involved.
type BlockConflict struct {
	// Blocks are the conflicting spec blocks, e.g. "adversary(withhold@0)"
	// and "protocol(pow)".
	Blocks []string `json:"blocks"`
	// Reason states the rule the combination violates.
	Reason string `json:"reason"`
}

// ConflictError aggregates every violated cross-block rule of a spec
// into one error: each conflict names both (all) blocks involved, so a
// spec combining, say, an adversary with a network block on a PoS
// protocol reports the full picture at once instead of failing field by
// field. It unwraps to ErrSpec.
type ConflictError struct {
	Conflicts []BlockConflict
}

// Error implements error.
func (e *ConflictError) Error() string {
	parts := make([]string, len(e.Conflicts))
	for i, c := range e.Conflicts {
		parts[i] = fmt.Sprintf("%s: %s", strings.Join(c.Blocks, " vs "), c.Reason)
	}
	return fmt.Sprintf("%v: conflicting blocks — %s", ErrSpec, strings.Join(parts, "; "))
}

// Unwrap makes errors.Is(err, ErrSpec) hold.
func (e *ConflictError) Unwrap() error { return ErrSpec }

// validateAdversaryNetwork checks the adversary and network blocks of an
// already-normalised spec. Strategy applicability is capability-driven:
// the internal/attack registry declares each strategy's protocols and
// validates its parameters, so growing the strategy set never touches
// this function. Cross-block exclusivity violations are aggregated into
// one ConflictError naming every side.
func (n Spec) validateAdversaryNetwork() error {
	var conflicts []BlockConflict
	protoBlock := fmt.Sprintf("protocol(%s)", n.Protocol)
	if nw := n.Network; nw != nil && n.Protocol != "pow" {
		conflicts = append(conflicts, BlockConflict{
			Blocks: []string{fmt.Sprintf("network(fork_rate=%g)", nw.ForkRate), protoBlock},
			Reason: "the network block models PoW fork races",
		})
	}
	adv := n.Adversary
	var strat attack.Strategy
	if adv != nil {
		var ok bool
		if strat, ok = attack.Lookup(adv.Strategy); !ok {
			return &UnknownStrategyError{Strategy: adv.Strategy, Known: attack.Names()}
		}
		advBlock := fmt.Sprintf("adversary(%s@%d)", adv.Strategy, adv.Miner)
		if ps := strat.Protocols(); ps != nil && !slices.Contains(ps, n.Protocol) {
			conflicts = append(conflicts, BlockConflict{
				Blocks: []string{advBlock, protoBlock},
				Reason: fmt.Sprintf("strategy %q applies to: %s", adv.Strategy, strings.Join(ps, ", ")),
			})
		}
		if nw := n.Network; nw != nil {
			conflicts = append(conflicts, BlockConflict{
				Blocks: []string{advBlock, fmt.Sprintf("network(fork_rate=%g)", nw.ForkRate)},
				Reason: "mutually exclusive: a race strategy's gamma already models the network advantage",
			})
		}
		if n.WithholdEvery > 0 {
			conflicts = append(conflicts, BlockConflict{
				Blocks: []string{advBlock, fmt.Sprintf("withhold_every(%d)", n.WithholdEvery)},
				Reason: "the global withholding treatment cannot be combined with an adversary",
			})
		}
	}
	if len(conflicts) > 0 {
		return &ConflictError{Conflicts: conflicts}
	}
	if nw := n.Network; nw != nil {
		if !(nw.ForkRate > 0 && nw.ForkRate < 1) || math.IsNaN(nw.ForkRate) {
			return fmt.Errorf("%w: network.fork_rate = %v, need [0, 1)", ErrSpec, nw.ForkRate)
		}
	}
	if adv == nil {
		return nil
	}
	if adv.Miner < 0 || adv.Miner >= len(n.Stakes) {
		return fmt.Errorf("%w: adversary.miner = %d with %d miners", ErrSpec, adv.Miner, len(n.Stakes))
	}
	total := 0.0
	for _, v := range n.Stakes {
		total += v
	}
	p := attack.Params{
		Share: n.Stakes[adv.Miner] / total,
		Gamma: adv.Gamma, Delay: adv.Delay, Every: adv.Every,
	}
	if err := strat.Validate(p); err != nil {
		return fmt.Errorf("%w: adversary %q: %v", ErrSpec, adv.Strategy, err)
	}
	return nil
}

// Build constructs the protocol instance the normalised spec names.
func (s Spec) Build() (protocol.Protocol, error) {
	n := s.Normalized()
	ctor, ok := knownProtocols[n.Protocol]
	if !ok {
		return nil, fmt.Errorf("%w: unknown protocol %q", ErrSpec, s.Protocol)
	}
	return ctor(n), nil
}

// TrackedShare returns the tracked miner's initial resource share — the
// `a` both fairness notions are stated against.
func (s Spec) TrackedShare() float64 {
	n := s.Normalized()
	total := 0.0
	for _, v := range n.Stakes {
		total += v
	}
	if total <= 0 || n.Miner < 0 || n.Miner >= len(n.Stakes) {
		return math.NaN()
	}
	return n.Stakes[n.Miner] / total
}

// Hash returns the canonical content hash of the spec: the SHA-256 of the
// normalised JSON encoding (Name excluded), hex-encoded. Two specs that
// describe the same computation — regardless of input sugar, labels or
// field ordering in their JSON source — share a hash, which is the sweep
// cache key.
func (s Spec) Hash() (string, error) {
	n := s.Normalized()
	n.Name = ""
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// MustHash is Hash for known-good specs; it panics on error.
func (s Spec) MustHash() string {
	h, err := s.Hash()
	if err != nil {
		panic(err)
	}
	return h
}

// DeriveSeed returns a deterministic per-scenario seed from a base sweep
// seed and the scenario's parameter content (its seed-independent hash).
// Derivation goes through rng.Stream, so distinct scenarios receive
// decorrelated streams, and the same scenario receives the same seed in
// every sweep that shares the base — which is what lets overlapping
// sweeps hit the result cache.
func DeriveSeed(base uint64, s Spec) uint64 {
	n := s.Normalized()
	n.Name = ""
	n.Seed = 0
	b, err := json.Marshal(n)
	if err != nil {
		// Spec structs always marshal; keep the signature hashable anyway.
		b = []byte(fmt.Sprintf("%+v", n))
	}
	h := fnv.New32a()
	h.Write(b)
	return rng.Stream(base, int(h.Sum32()&0x7fffffff)).Uint64()
}

// Decode parses one spec from JSON, rejecting unknown fields so typos in
// hand-written scenario files fail loudly.
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return s, nil
}

// DecodeList parses a JSON array of specs with the same strictness.
func DecodeList(data []byte) ([]Spec, error) {
	var list []Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&list); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return list, nil
}

// String renders a compact one-line description of the normalised spec.
func (s Spec) String() string {
	n := s.Normalized()
	var b strings.Builder
	b.WriteString(n.Protocol)
	if n.Protocol != "algorand" {
		fmt.Fprintf(&b, " w=%g", n.W)
	}
	if n.Protocol == "cpos" || n.Protocol == "eos" || n.Protocol == "algorand" {
		fmt.Fprintf(&b, " v=%g", n.V)
	}
	if n.Protocol == "cpos" {
		fmt.Fprintf(&b, " P=%d", n.Shards)
	}
	if n.Protocol == "hybrid" {
		fmt.Fprintf(&b, " alpha=%g", n.Alpha)
	}
	fmt.Fprintf(&b, " a=%.3f m=%d n=%d trials=%d", s.TrackedShare(), len(n.Stakes), n.Blocks, n.Trials)
	if n.WithholdEvery > 0 {
		fmt.Fprintf(&b, " withhold=%d", n.WithholdEvery)
	}
	if n.Adversary != nil {
		fmt.Fprintf(&b, " %s@%d gamma=%g", n.Adversary.Strategy, n.Adversary.Miner, n.Adversary.Gamma)
		if n.Adversary.Delay > 0 {
			fmt.Fprintf(&b, " delay=%d", n.Adversary.Delay)
		}
		if n.Adversary.Every > 0 {
			fmt.Fprintf(&b, " every=%d", n.Adversary.Every)
		}
	}
	if n.Network != nil {
		fmt.Fprintf(&b, " fork=%g", n.Network.ForkRate)
	}
	return b.String()
}
