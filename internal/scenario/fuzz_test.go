package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/rng"
)

// Property: a grid's expansion count equals the product of its
// non-empty axis lengths — Size() and Expand() can never disagree —
// and every expanded spec is valid with a distinct name.
func TestGridExpansionCountEqualsAxisProduct(t *testing.T) {
	r := rng.New(42)
	protoPool := []string{"pow", "mlpos", "slpos", "fslpos", "cpos"}
	stakePool := []float64{0.1, 0.2, 0.3, 0.4, 0.45}
	wPool := []float64{0.005, 0.01, 0.02, 0.05}
	intPool := []int{100, 200, 400, 800}
	trialPool := []int{5, 10, 20, 40}
	minersPool := []int{2, 3, 4, 5}
	withholdPool := []int{0, 2, 5, 10}
	forkPool := []float64{0, 0.2, 0.5, 0.9}

	pick := func(n int) int { return int(r.Uint64() % uint64(n+1)) } // 0..n axis length
	for iter := 0; iter < 200; iter++ {
		g := Grid{
			Base:      Spec{Blocks: 100, Trials: 5},
			Protocols: protoPool[:1+int(r.Uint64()%uint64(len(protoPool)))],
			W:         wPool[:pick(len(wPool))],
			Stake:     stakePool[:pick(len(stakePool))],
			Miners:    minersPool[:pick(len(minersPool))],
			Blocks:    intPool[:pick(len(intPool))],
			Trials:    trialPool[:pick(len(trialPool))],
			Withhold:  withholdPool[:pick(len(withholdPool))],
			Seed:      r.Uint64() | 1,
		}
		// The fork-rate axis applies to pow only; exercise it on
		// pow-only grids so every cell stays valid.
		if len(g.Protocols) == 1 && g.Protocols[0] == "pow" && len(g.Withhold) == 0 {
			g.ForkRate = forkPool[:pick(len(forkPool))]
		}
		want := 1
		for _, n := range []int{
			len(g.Protocols), len(g.W), len(g.Stake), len(g.Miners),
			len(g.Blocks), len(g.Trials), len(g.Withhold), len(g.ForkRate),
		} {
			if n > 0 {
				want *= n
			}
		}
		if got := g.Size(); got != want {
			t.Fatalf("iter %d: Size() = %d, want %d (%+v)", iter, got, want, g)
		}
		specs, err := g.Expand()
		if err != nil {
			t.Fatalf("iter %d: Expand: %v (%+v)", iter, err, g)
		}
		if len(specs) != want {
			t.Fatalf("iter %d: expanded %d, want %d (%+v)", iter, len(specs), want, g)
		}
		names := make(map[string]bool, len(specs))
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("iter %d: expanded spec invalid: %v", iter, err)
			}
			if names[s.Name] {
				t.Fatalf("iter %d: duplicate cell name %q", iter, s.Name)
			}
			names[s.Name] = true
		}
	}
}

// Property: the gamma axis multiplies cardinality like any other axis
// and clones the adversary block per cell (no aliasing).
func TestGridGammaAxisExpansion(t *testing.T) {
	g := Grid{
		Base: Spec{Protocol: "pow", Stake: 0.4, Blocks: 100, Trials: 5,
			Adversary: &Adversary{Strategy: "selfish"}},
		Gamma: []float64{0, 0.5, 1},
	}
	if g.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", g.Size())
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for i := range specs {
		if specs[i].Adversary == nil {
			t.Fatalf("cell %d lost the adversary block", i)
		}
		seen[specs[i].Adversary.Gamma] = true
		for j := range specs {
			if i != j && specs[i].Adversary == specs[j].Adversary {
				t.Fatalf("cells %d and %d alias one Adversary struct", i, j)
			}
		}
	}
	if len(seen) != 3 {
		t.Fatalf("gammas = %v, want 3 distinct", seen)
	}
	if g.Base.Adversary.Gamma != 0 {
		t.Error("expansion mutated the base adversary block")
	}
	// Gamma without a base adversary is a spec error, not a panic.
	if _, err := (Grid{Base: Spec{Protocol: "pow"}, Gamma: []float64{0.5}}).Expand(); !errors.Is(err, ErrSpec) {
		t.Errorf("gamma axis without adversary: err = %v, want ErrSpec", err)
	}
}

// Property: the strategy and strategy-parameter axes multiply
// cardinality exactly like the physical axes, and two cells share a
// content hash exactly when they normalise to the same computation —
// distinct parameterisations never alias, while cells that differ only
// in a parameter their strategy ignores (honest × any γ, selfish × any
// delay) collapse for cache reuse. Randomised over axis subsets of the
// full strategy/parameter space.
func TestGridStrategyAxesProductAndDistinctHashes(t *testing.T) {
	r := rng.New(71)
	strategyPool := []string{"honest", "selfish", "selfish-delay"}
	gammaPool := []float64{0, 0.25, 0.5, 1}
	delayPool := []int{0, 2, 3, 5}
	stakePool := []float64{0.3, 0.4}
	pick := func(n int) int { return int(r.Uint64() % uint64(n+1)) } // 0..n axis length
	for iter := 0; iter < 120; iter++ {
		g := Grid{
			// The base pins a deviating miner below the 50% validity cap;
			// the axes sweep strategy identity and parameters over it.
			Base: Spec{Protocol: "pow", Blocks: 100, Trials: 5,
				Adversary: &Adversary{Strategy: "selfish"}},
			Stake:      stakePool[:1+pick(len(stakePool)-1)],
			Strategies: strategyPool[:pick(len(strategyPool))],
			Gamma:      gammaPool[:pick(len(gammaPool))],
			Delay:      delayPool[:pick(len(delayPool))],
			Seed:       r.Uint64() | 1,
		}
		want := 1
		for _, n := range []int{len(g.Stake), len(g.Strategies), len(g.Gamma), len(g.Delay)} {
			if n > 0 {
				want *= n
			}
		}
		if got := g.Size(); got != want {
			t.Fatalf("iter %d: Size() = %d, want %d (%+v)", iter, got, want, g)
		}
		specs, err := g.Expand()
		if err != nil {
			t.Fatalf("iter %d: Expand: %v (%+v)", iter, err, g)
		}
		if len(specs) != want {
			t.Fatalf("iter %d: expanded %d, want %d (%+v)", iter, len(specs), want, g)
		}
		byHash := make(map[string]Spec, len(specs))
		distinct := make(map[string]bool, len(specs))
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("iter %d: expanded spec %q invalid: %v", iter, s.Name, err)
			}
			h, err := s.Hash()
			if err != nil {
				t.Fatal(err)
			}
			n := s.Normalized()
			n.Name = ""
			key := fmt.Sprintf("%+v", n)
			distinct[key] = true
			if prev, dup := byHash[h]; dup {
				p := prev.Normalized()
				p.Name = ""
				if fmt.Sprintf("%+v", p) != key {
					t.Fatalf("iter %d: semantically distinct cells %q and %q share hash %s", iter, prev.Name, s.Name, h)
				}
			}
			byHash[h] = s
		}
		if len(byHash) != len(distinct) {
			t.Fatalf("iter %d: %d hashes for %d distinct computations", iter, len(byHash), len(distinct))
		}
	}
	// The one deliberate exception to distinctness: honest cells. A
	// strategies axis that names honest more than once (or honest plus a
	// non-deviating parameterisation) collapses under normalisation, and
	// the runner dedups those cells by hash rather than recomputing.
	g := Grid{
		Base:       Spec{Protocol: "pow", Stake: 0.4, Blocks: 100, Trials: 5},
		Strategies: []string{"honest", "selfish"},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded %d, want 2", len(specs))
	}
	honest, plain := specs[0], Spec{Protocol: "pow", Stake: 0.4, Blocks: 100, Trials: 5, Seed: specs[0].Seed}
	if honest.MustHash() != plain.MustHash() {
		t.Error("the honest axis cell must hash like the plain honest spec (cache reuse)")
	}
	if honest.MustHash() == specs[1].MustHash() {
		t.Error("honest and selfish cells share a hash")
	}
}

func TestGridForkRateAxisRejectsInvalidValues(t *testing.T) {
	// An out-of-range fork_rate axis value must fail expansion, not
	// collapse into a duplicate honest cell with a reused name and seed.
	for _, bad := range []float64{-0.5, 1, 1.5} {
		g := Grid{Base: Spec{Protocol: "pow", Stake: 0.4, Blocks: 50, Trials: 5},
			ForkRate: []float64{0, bad}}
		if _, err := g.Expand(); !errors.Is(err, ErrSpec) {
			t.Errorf("fork_rate axis value %v accepted: %v", bad, err)
		}
	}
}

// Property: content hashes are insensitive to JSON object key order —
// including inside the nested adversary/network blocks — and to the
// stake-sugar form.
func TestHashOrderInsensitive(t *testing.T) {
	pairs := [][2]string{
		{
			`{"protocol":"pow","stake":0.4,"blocks":100,"adversary":{"strategy":"selfish","gamma":0.5}}`,
			`{"adversary":{"gamma":0.5,"strategy":"selfish"},"blocks":100,"stake":0.4,"protocol":"pow"}`,
		},
		{
			`{"protocol":"pow","stakes":[0.4,0.6],"network":{"fork_rate":0.3},"trials":7}`,
			`{"trials":7,"network":{"fork_rate":0.3},"protocol":"pow","stakes":[0.4,0.6]}`,
		},
		{
			// Stake/Miners sugar vs the explicit vector it materialises.
			`{"protocol":"mlpos","stake":0.2,"miners":2}`,
			`{"protocol":"mlpos","stakes":[0.2,0.8]}`,
		},
		{
			// A zero fork rate normalises away entirely.
			`{"protocol":"pow","stake":0.3,"network":{"fork_rate":0}}`,
			`{"protocol":"pow","stake":0.3}`,
		},
	}
	for i, pair := range pairs {
		a, err := Decode([]byte(pair[0]))
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		b, err := Decode([]byte(pair[1]))
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		ha, err := a.Hash()
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if ha != hb {
			t.Errorf("pair %d: hashes differ:\n%s\n%s", i, pair[0], pair[1])
		}
	}
}

// Property: malformed specs always return errors wrapping ErrSpec —
// never a panic, never silent acceptance.
func TestMalformedSpecsAlwaysError(t *testing.T) {
	bad := []Spec{
		// A present-but-empty strategy must error, never silently run
		// honest: the user asked for an attack and forgot the name.
		{Protocol: "pow", Stake: 0.4, Adversary: &Adversary{}},
		{Protocol: "pow", Stake: 0.4, Adversary: &Adversary{Miner: 0, Gamma: 0.5}},
		{Protocol: "pow", Stake: 0.4, Adversary: &Adversary{Strategy: "bribe"}},
		{Protocol: "mlpos", Stake: 0.4, Adversary: &Adversary{Strategy: "selfish"}},
		{Protocol: "pow", Stake: 0.6, Adversary: &Adversary{Strategy: "selfish"}},
		{Protocol: "pow", Stake: 0.4, Adversary: &Adversary{Strategy: "selfish", Gamma: 1.5}},
		{Protocol: "pow", Stake: 0.4, Adversary: &Adversary{Strategy: "selfish", Gamma: -0.1}},
		{Protocol: "pow", Stake: 0.4, Adversary: &Adversary{Strategy: "selfish", Miner: 5}},
		{Protocol: "pow", Stake: 0.4, Adversary: &Adversary{Strategy: "selfish"}, WithholdEvery: 3},
		{Protocol: "pow", Stake: 0.4, Adversary: &Adversary{Strategy: "selfish"},
			Network: &Network{ForkRate: 0.2}},
		{Protocol: "pow", Stake: 0.4, Network: &Network{ForkRate: 1}},
		{Protocol: "pow", Stake: 0.4, Network: &Network{ForkRate: -0.2}},
		{Protocol: "cpos", Stake: 0.4, Network: &Network{ForkRate: 0.2}},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrSpec) {
			t.Errorf("spec %d accepted or wrong error: %v (%+v)", i, err, s)
		}
	}
}

// FuzzDecodeSpec feeds arbitrary bytes through the strict decoder: any
// input either errors with ErrSpec or yields a spec whose Validate,
// Hash and String never panic, and whose normalisation is idempotent.
func FuzzDecodeSpec(f *testing.F) {
	seeds := []string{
		`{"protocol":"pow","stake":0.2}`,
		`{"protocol":"mlpos","stakes":[0.2,0.3,0.5],"trials":10,"blocks":50}`,
		`{"protocol":"pow","stake":0.4,"adversary":{"strategy":"selfish","gamma":0.5}}`,
		`{"protocol":"pow","stake":0.4,"network":{"fork_rate":0.8}}`,
		`{"protocol":"pow","adversary":{"strategy":""}}`,
		`{"protocol":"cpos","shards":-1}`,
		`{"protocol":"pow","checkpoints":[5,3]}`,
		`{"stake":1e308,"miners":-2}`,
		`{"protocol":"pow","w":null}`,
		`[]`, `{}`, `{"unknown":1}`, `not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("Decode error does not wrap ErrSpec: %v", err)
			}
			return
		}
		_ = s.String()
		if err := s.Validate(); err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("Validate error does not wrap ErrSpec: %v", err)
			}
			return
		}
		h1, err := s.Hash()
		if err != nil {
			t.Fatalf("valid spec failed to hash: %v", err)
		}
		n := s.Normalized()
		if nn := n.Normalized(); fmt.Sprintf("%+v", nn) != fmt.Sprintf("%+v", n) {
			t.Fatalf("normalisation not idempotent:\n%+v\n%+v", n, nn)
		}
		h2, err := n.Hash()
		if err != nil || h1 != h2 {
			t.Fatalf("hash not stable under normalisation: %q vs %q (%v)", h1, h2, err)
		}
		_ = DeriveSeed(1, s)
	})
}

// FuzzDecodeGrid feeds arbitrary bytes through the grid decoder: any
// accepted grid either fails Expand with ErrSpec or expands to exactly
// Size() valid scenarios.
func FuzzDecodeGrid(f *testing.F) {
	seeds := []string{
		`{"base":{"protocol":"pow","stake":0.2,"blocks":50,"trials":5}}`,
		`{"base":{"blocks":50,"trials":5},"protocols":["pow","mlpos"],"stake":[0.1,0.2]}`,
		`{"base":{"protocol":"pow","stake":0.4,"blocks":50,"trials":5,"adversary":{"strategy":"selfish"}},"gamma":[0,0.5]}`,
		`{"base":{"protocol":"pow","stake":0.4,"blocks":50,"trials":5},"fork_rate":[0,0.4]}`,
		`{"base":{"protocol":"pow"},"gamma":[0.5]}`,
		`{"seed":9}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeGrid(data)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("DecodeGrid error does not wrap ErrSpec: %v", err)
			}
			return
		}
		specs, err := g.Expand()
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("Expand error does not wrap ErrSpec: %v", err)
			}
			return
		}
		if len(specs) != g.Size() {
			t.Fatalf("expanded %d != Size %d", len(specs), g.Size())
		}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("expanded spec invalid: %v", err)
			}
		}
	})
}

// FuzzSpecRoundTrip checks that every valid decoded spec JSON-round-trips
// through its normalised form without changing its content hash — the
// property the result cache and the cluster wire protocol rely on.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add(`{"protocol":"pow","stake":0.4,"adversary":{"strategy":"selfish","gamma":0.25},"seed":3}`)
	f.Add(`{"protocol":"pow","stakes":[0.5,0.3,0.2],"network":{"fork_rate":0.6}}`)
	f.Add(`{"protocol":"cpos","v":0.2,"shards":8,"stake":0.3}`)
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := Decode([]byte(doc))
		if err != nil || s.Validate() != nil {
			return
		}
		h1 := s.MustHash()
		data, err := json.Marshal(s.Normalized())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("re-decode of normalised spec failed: %v\n%s", err, data)
		}
		if h2 := back.MustHash(); h1 != h2 {
			t.Fatalf("hash changed across round trip: %q vs %q\n%s", h1, h2, data)
		}
	})
}
