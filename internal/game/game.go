// Package game holds the state of a mining game: the competing resource
// each miner currently controls, the rewards she has accumulated, and the
// reward-fraction λ the paper's fairness definitions are stated over.
//
// The model follows Section 3.1 of the paper: initial resources are
// normalised to sum to 1, rewards per block/epoch are constant, and miners
// take no action beyond mining (no withdrawal or top-up). Reward
// withholding (Section 6.3) is supported natively: rewards always count
// toward λ immediately, but their contribution to future staking power can
// be deferred to the next multiple-of-K block.
package game

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadInitial reports invalid initial resource shares.
var ErrBadInitial = errors.New("game: initial shares must be positive and finite")

// State is the mutable state of one mining game. It is not safe for
// concurrent use; Monte-Carlo trials each own a State.
type State struct {
	// Stakes is each miner's current competing resource: hash power for
	// PoW (never mutated), staking power for PoS models.
	Stakes []float64
	// Rewards is each miner's cumulative reward, the numerator of λ.
	Rewards []float64
	// Initial is each miner's normalised initial share (sums to 1).
	Initial []float64
	// Blocks counts completed steps (blocks, or epochs for C-PoS/EOS).
	Blocks int

	withholdEvery int
	pending       []float64
	// minerWithhold overrides the global withholding period per miner:
	// period > 0 releases at multiples of period, period <= 0 withholds
	// forever. The map is set once at construction and read-only after,
	// so clones and batch states share it.
	minerWithhold map[int]int
}

// Option configures a new game State.
type Option func(*State)

// WithWithholding defers the staking effect of earned rewards to the next
// multiple-of-k block (Section 6.3's treatment). k <= 0 means immediate.
func WithWithholding(k int) Option {
	return func(s *State) { s.withholdEvery = k }
}

// WithMinerWithholding defers the staking effect of one miner's rewards
// only — the `withhold` adversary strategy, as opposed to
// WithWithholding's all-miner treatment. Miner i's rewards still count
// toward λ immediately but join her staking power only at multiples of
// k blocks; k <= 0 withholds them forever. Other miners keep the global
// behaviour. Repeated options accumulate, so several miners can
// withhold at once.
func WithMinerWithholding(miner, k int) Option {
	return func(s *State) {
		if s.minerWithhold == nil {
			s.minerWithhold = make(map[int]int)
		}
		s.minerWithhold[miner] = k
	}
}

// withholdPeriod resolves miner i's effective withholding period:
// 0 = stake immediately, > 0 = release at multiples, < 0 = never.
func (s *State) withholdPeriod(i int) int {
	if s.minerWithhold != nil {
		if k, ok := s.minerWithhold[i]; ok {
			if k <= 0 {
				return -1
			}
			return k
		}
	}
	if s.withholdEvery > 0 {
		return s.withholdEvery
	}
	return 0
}

// New creates a game state from the miners' initial resources, normalising
// them to sum to 1 as in the paper. It returns ErrBadInitial when shares
// are unusable (fewer than two miners, non-positive or non-finite values).
func New(initial []float64, opts ...Option) (*State, error) {
	if len(initial) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 miners, got %d", ErrBadInitial, len(initial))
	}
	total := 0.0
	for _, v := range initial {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: share %v", ErrBadInitial, v)
		}
		total += v
	}
	s := &State{
		Stakes:  make([]float64, len(initial)),
		Rewards: make([]float64, len(initial)),
		Initial: make([]float64, len(initial)),
		pending: make([]float64, len(initial)),
	}
	for i, v := range initial {
		s.Initial[i] = v / total
		s.Stakes[i] = v / total
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// MustNew is New for known-good shares; it panics on error. Intended for
// tests and examples.
func MustNew(initial []float64, opts ...Option) *State {
	s, err := New(initial, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumMiners returns the number of competing miners.
func (s *State) NumMiners() int { return len(s.Stakes) }

// Credit records a reward for miner i: reward counts toward λ immediately,
// stake joins the miner's staking power now or, under withholding, at the
// next release boundary. Protocols where rewards never convey staking
// power (PoW, NEO) pass stake = 0.
func (s *State) Credit(i int, reward, stake float64) {
	s.Rewards[i] += reward
	if stake == 0 {
		return
	}
	if s.withholdPeriod(i) != 0 {
		s.pending[i] += stake
		return
	}
	s.Stakes[i] += stake
}

// EndBlock marks one block/epoch complete and releases withheld stake
// for every miner whose withholding period divides the block count
// (miners withholding forever never release).
func (s *State) EndBlock() {
	s.Blocks++
	if s.withholdEvery <= 0 && s.minerWithhold == nil {
		return
	}
	for i, p := range s.pending {
		if p == 0 {
			continue
		}
		if k := s.withholdPeriod(i); k > 0 && s.Blocks%k == 0 {
			s.Stakes[i] += p
			s.pending[i] = 0
		}
	}
}

// PendingStake returns miner i's earned-but-not-yet-staking reward under
// withholding (always 0 without withholding).
func (s *State) PendingStake(i int) float64 { return s.pending[i] }

// TotalStake returns the sum of current staking power.
func (s *State) TotalStake() float64 {
	t := 0.0
	for _, v := range s.Stakes {
		t += v
	}
	return t
}

// TotalRewards returns the sum of all rewards issued so far.
func (s *State) TotalRewards() float64 {
	t := 0.0
	for _, v := range s.Rewards {
		t += v
	}
	return t
}

// Share returns miner i's fraction of current staking power.
func (s *State) Share(i int) float64 {
	t := s.TotalStake()
	if t <= 0 {
		return math.NaN()
	}
	return s.Stakes[i] / t
}

// Lambda returns miner i's fraction λ_i of all rewards issued so far, the
// quantity both fairness definitions are stated over. NaN before any
// reward exists.
func (s *State) Lambda(i int) float64 {
	t := s.TotalRewards()
	if t <= 0 {
		return math.NaN()
	}
	return s.Rewards[i] / t
}

// CheckInvariants verifies the structural invariants every protocol must
// maintain: non-negative finite stakes and rewards, and at least one
// positive stake. It returns a descriptive error on violation; tests and
// the Monte-Carlo harness call it under failure injection.
func (s *State) CheckInvariants() error {
	anyPositive := false
	for i, v := range s.Stakes {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("game: stake[%d] invalid: %v", i, v)
		}
		if v > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return errors.New("game: all stakes are zero")
	}
	for i, v := range s.Rewards {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("game: reward[%d] invalid: %v", i, v)
		}
	}
	for i, v := range s.pending {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("game: pending[%d] invalid: %v", i, v)
		}
	}
	return nil
}

// Clone returns a deep copy of the state, used by harnesses that branch a
// game (e.g. comparing continuations from a common prefix).
func (s *State) Clone() *State {
	c := &State{
		Stakes:        append([]float64(nil), s.Stakes...),
		Rewards:       append([]float64(nil), s.Rewards...),
		Initial:       append([]float64(nil), s.Initial...),
		pending:       append([]float64(nil), s.pending...),
		Blocks:        s.Blocks,
		withholdEvery: s.withholdEvery,
		minerWithhold: s.minerWithhold, // read-only after construction
	}
	return c
}

// EqualShares returns n equal initial shares, a convenience for symmetric
// games.
func EqualShares(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// TwoMiner returns the paper's canonical two-miner initial allocation
// {a, 1-a}. It panics unless 0 < a < 1.
func TwoMiner(a float64) []float64 {
	if !(a > 0 && a < 1) {
		panic("game: TwoMiner needs 0 < a < 1")
	}
	return []float64{a, 1 - a}
}

// LeaderAndPack returns the Table 1 allocation: miner 0 holds share a and
// the remaining m-1 miners split 1-a equally. It panics unless 0 < a < 1
// and m >= 2.
func LeaderAndPack(a float64, m int) []float64 {
	if !(a > 0 && a < 1) || m < 2 {
		panic("game: LeaderAndPack needs 0 < a < 1 and m >= 2")
	}
	s := make([]float64, m)
	s[0] = a
	for i := 1; i < m; i++ {
		s[i] = (1 - a) / float64(m-1)
	}
	return s
}
