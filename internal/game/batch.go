package game

// Batch is a structure-of-arrays arena of n identically configured game
// states: every state's Stakes, Rewards, Initial and pending slices are
// carved out of four flat backing arrays, so a batched trial loop that
// steps state 0..n-1 per block walks contiguous memory. Allocated once
// and recycled with Reset, a Batch gives the Monte-Carlo inner loop a
// zero-allocation steady path.
type Batch struct {
	states []State
}

// NewBatch validates the initial allocation exactly like New and returns
// an arena of n states over it, each configured with opts. Every state
// starts identical to New(initial, opts...).
func NewBatch(n int, initial []float64, opts ...Option) (*Batch, error) {
	if n <= 0 {
		return nil, ErrBadInitial
	}
	proto, err := New(initial, opts...)
	if err != nil {
		return nil, err
	}
	m := len(proto.Initial)
	backing := make([]float64, 4*n*m)
	b := &Batch{states: make([]State, n)}
	for i := range b.states {
		st := &b.states[i]
		st.Stakes = backing[(4*i+0)*m : (4*i+1)*m : (4*i+1)*m]
		st.Rewards = backing[(4*i+1)*m : (4*i+2)*m : (4*i+2)*m]
		st.Initial = backing[(4*i+2)*m : (4*i+3)*m : (4*i+3)*m]
		st.pending = backing[(4*i+3)*m : (4*i+4)*m : (4*i+4)*m]
		st.withholdEvery = proto.withholdEvery
		st.minerWithhold = proto.minerWithhold // read-only after construction
		copy(st.Initial, proto.Initial)
		copy(st.Stakes, proto.Initial)
	}
	return b, nil
}

// Len returns the number of states in the arena.
func (b *Batch) Len() int { return len(b.states) }

// State returns the i-th state of the arena. The pointer stays valid for
// the life of the Batch; Reset it between trials instead of reallocating.
func (b *Batch) State(i int) *State { return &b.states[i] }

// Reset rewinds a state to its initial configuration: stakes back to the
// normalised initial shares, rewards and withheld stake zeroed, block
// count zero. The withholding period is preserved.
func (s *State) Reset() {
	copy(s.Stakes, s.Initial)
	for i := range s.Rewards {
		s.Rewards[i] = 0
	}
	for i := range s.pending {
		s.pending[i] = 0
	}
	s.Blocks = 0
}
