package game

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalises(t *testing.T) {
	s, err := New([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.Initial[0] != 0.2 || s.Initial[1] != 0.8 {
		t.Errorf("Initial = %v", s.Initial)
	}
	if s.Stakes[0] != 0.2 || s.Stakes[1] != 0.8 {
		t.Errorf("Stakes = %v", s.Stakes)
	}
	if s.TotalStake() != 1 {
		t.Errorf("TotalStake = %v", s.TotalStake())
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cases := [][]float64{
		nil,
		{1},
		{1, 0},
		{1, -2},
		{1, math.NaN()},
		{1, math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := New(c); !errors.Is(err, ErrBadInitial) {
			t.Errorf("New(%v) err = %v, want ErrBadInitial", c, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad input")
		}
	}()
	MustNew([]float64{1})
}

func TestCreditAndLambda(t *testing.T) {
	s := MustNew(TwoMiner(0.2))
	if !math.IsNaN(s.Lambda(0)) {
		t.Error("Lambda before any reward should be NaN")
	}
	s.Credit(0, 0.01, 0.01)
	s.EndBlock()
	if got := s.Lambda(0); got != 1 {
		t.Errorf("Lambda(0) = %v, want 1", got)
	}
	if got := s.Lambda(1); got != 0 {
		t.Errorf("Lambda(1) = %v, want 0", got)
	}
	if got := s.Stakes[0]; !closeTo(got, 0.21) {
		t.Errorf("stake = %v, want 0.21", got)
	}
	if s.Blocks != 1 {
		t.Errorf("Blocks = %d", s.Blocks)
	}
}

func TestCreditZeroStakeDoesNotChangePower(t *testing.T) {
	s := MustNew(TwoMiner(0.3))
	s.Credit(0, 5, 0)
	if s.Stakes[0] != 0.3 {
		t.Errorf("PoW-style credit changed stake: %v", s.Stakes[0])
	}
	if s.Rewards[0] != 5 {
		t.Errorf("reward not recorded: %v", s.Rewards[0])
	}
}

func TestWithholdingReleasesAtBoundary(t *testing.T) {
	s := MustNew(TwoMiner(0.2), WithWithholding(3))
	for b := 0; b < 2; b++ {
		s.Credit(0, 0.01, 0.01)
		s.EndBlock()
	}
	if s.Stakes[0] != 0.2 {
		t.Errorf("stake leaked before boundary: %v", s.Stakes[0])
	}
	if got := s.PendingStake(0); !closeTo(got, 0.02) {
		t.Errorf("pending = %v", got)
	}
	// λ still counts the rewards immediately.
	if got := s.Lambda(0); got != 1 {
		t.Errorf("Lambda under withholding = %v", got)
	}
	s.Credit(0, 0.01, 0.01)
	s.EndBlock() // block 3: release
	if got := s.Stakes[0]; !closeTo(got, 0.23) {
		t.Errorf("stake after release = %v, want 0.23", got)
	}
	if s.PendingStake(0) != 0 {
		t.Errorf("pending not cleared: %v", s.PendingStake(0))
	}
}

func TestWithholdingDisabled(t *testing.T) {
	s := MustNew(TwoMiner(0.2), WithWithholding(0))
	s.Credit(0, 0.01, 0.01)
	if !closeTo(s.Stakes[0], 0.21) {
		t.Errorf("k<=0 should mean immediate staking: %v", s.Stakes[0])
	}
}

func TestShare(t *testing.T) {
	s := MustNew([]float64{1, 3})
	if got := s.Share(0); got != 0.25 {
		t.Errorf("Share = %v", got)
	}
	s.Credit(0, 1, 1)
	if got := s.Share(0); !closeTo(got, 1.25/2) {
		t.Errorf("Share after credit = %v", got)
	}
}

func TestCheckInvariants(t *testing.T) {
	s := MustNew(TwoMiner(0.5))
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("fresh state invalid: %v", err)
	}
	s.Stakes[0] = -1
	if err := s.CheckInvariants(); err == nil {
		t.Error("negative stake not caught")
	}
	s.Stakes[0] = math.NaN()
	if err := s.CheckInvariants(); err == nil {
		t.Error("NaN stake not caught")
	}
	s.Stakes[0] = 0.5
	s.Rewards[1] = math.Inf(1)
	if err := s.CheckInvariants(); err == nil {
		t.Error("Inf reward not caught")
	}
	s.Rewards[1] = 0
	s.Stakes[0], s.Stakes[1] = 0, 0
	if err := s.CheckInvariants(); err == nil {
		t.Error("all-zero stakes not caught")
	}
}

func TestClone(t *testing.T) {
	s := MustNew(TwoMiner(0.2), WithWithholding(10))
	s.Credit(0, 0.01, 0.01)
	s.EndBlock()
	c := s.Clone()
	c.Credit(1, 5, 5)
	c.EndBlock()
	if s.Rewards[1] != 0 {
		t.Error("clone shares reward slice with original")
	}
	if s.Blocks != 1 || c.Blocks != 2 {
		t.Errorf("blocks: orig %d clone %d", s.Blocks, c.Blocks)
	}
	if c.PendingStake(0) != s.PendingStake(0) {
		t.Error("pending stake not copied")
	}
}

func TestEqualShares(t *testing.T) {
	s := MustNew(EqualShares(5))
	for i := 0; i < 5; i++ {
		if !closeTo(s.Initial[i], 0.2) {
			t.Errorf("Initial[%d] = %v", i, s.Initial[i])
		}
	}
}

func TestLeaderAndPack(t *testing.T) {
	shares := LeaderAndPack(0.2, 10)
	if shares[0] != 0.2 {
		t.Errorf("leader = %v", shares[0])
	}
	for i := 1; i < 10; i++ {
		if !closeTo(shares[i], 0.8/9) {
			t.Errorf("pack[%d] = %v", i, shares[i])
		}
	}
	mustPanic(t, func() { LeaderAndPack(0, 5) })
	mustPanic(t, func() { LeaderAndPack(0.5, 1) })
}

func TestTwoMinerPanics(t *testing.T) {
	mustPanic(t, func() { TwoMiner(0) })
	mustPanic(t, func() { TwoMiner(1) })
}

// Property: Credit preserves invariants for arbitrary positive rewards.
func TestQuickCreditKeepsInvariants(t *testing.T) {
	f := func(rewards []uint8) bool {
		s := MustNew(TwoMiner(0.3))
		for i, r := range rewards {
			s.Credit(i%2, float64(r)/255, float64(r)/255)
			s.EndBlock()
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: withholding never changes λ, only the timing of stake.
func TestQuickWithholdingLambdaInvariant(t *testing.T) {
	f := func(rewards []uint8, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		a := MustNew(TwoMiner(0.3))
		b := MustNew(TwoMiner(0.3), WithWithholding(k))
		for i, r := range rewards {
			w := float64(r) / 255
			a.Credit(i%2, w, w)
			a.EndBlock()
			b.Credit(i%2, w, w)
			b.EndBlock()
		}
		la, lb := a.Lambda(0), b.Lambda(0)
		if math.IsNaN(la) && math.IsNaN(lb) {
			return true
		}
		return closeTo(la, lb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func closeTo(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
