package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRunningAgainstBatch(t *testing.T) {
	r := rng.New(3)
	var run Running
	xs := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		x := r.Float64()*10 - 5
		xs = append(xs, x)
		run.Add(x)
	}
	if run.N() != 1000 {
		t.Fatalf("N = %d", run.N())
	}
	if !almost(run.Mean(), Mean(xs), 1e-10) {
		t.Errorf("mean mismatch: %v vs %v", run.Mean(), Mean(xs))
	}
	if !almost(run.Variance(), Variance(xs), 1e-10) {
		t.Errorf("variance mismatch: %v vs %v", run.Variance(), Variance(xs))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if run.Min() != sorted[0] || run.Max() != sorted[len(sorted)-1] {
		t.Errorf("min/max mismatch")
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Error("empty Running should report NaN")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(7)
	if r.Mean() != 7 || r.Min() != 7 || r.Max() != 7 {
		t.Error("single observation stats wrong")
	}
	if !math.IsNaN(r.Variance()) {
		t.Error("variance of single point should be NaN")
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	r := rng.New(5)
	var all, a, b Running
	for i := 0; i < 500; i++ {
		x := r.Normal()
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almost(a.Mean(), all.Mean(), 1e-10) {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if !almost(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 1.5 {
		t.Error("merge into empty failed")
	}
}

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentileSortedMatches(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for p := 0.0; p <= 100; p += 5 {
		if got, want := PercentileSorted(sorted, p), Percentile(xs, p); !almost(got, want, 1e-12) {
			t.Errorf("p=%v: %v vs %v", p, got, want)
		}
	}
}

func TestFractionWithin(t *testing.T) {
	xs := []float64{0.1, 0.19, 0.2, 0.21, 0.3}
	if got := FractionWithin(xs, 0.18, 0.22); !almost(got, 0.6, 1e-12) {
		t.Errorf("FractionWithin = %v, want 0.6", got)
	}
	if got := FractionWithin(xs, 0.5, 0.6); got != 0 {
		t.Errorf("empty window = %v", got)
	}
	if !math.IsNaN(FractionWithin(nil, 0, 1)) {
		t.Error("empty data should be NaN")
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := ECDF(xs, 2.5); got != 0.5 {
		t.Errorf("ECDF(2.5) = %v", got)
	}
	if got := ECDF(xs, 0); got != 0 {
		t.Errorf("ECDF(0) = %v", got)
	}
	if got := ECDF(xs, 4); got != 1 {
		t.Errorf("ECDF(4) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 0, 100)
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	s := Summarize(xs)
	if s.N != 100 {
		t.Errorf("N = %d", s.N)
	}
	if !almost(s.Mean, 50.5, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almost(s.Median, 50.5, 1e-12) {
		t.Errorf("median = %v", s.Median)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if !almost(s.P5, 5.95, 1e-12) {
		t.Errorf("P5 = %v", s.P5)
	}
	if !almost(s.P95, 95.05, 1e-12) {
		t.Errorf("P95 = %v", s.P95)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.P95) {
		t.Error("empty Summarize should report NaN fields")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(-0.1)
	h.Add(0.05)
	h.Add(0.15)
	h.Add(0.95)
	h.Add(1.0) // boundary: last bin
	h.Add(1.5)
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[9] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if !almost(h.BinCenter(0), 0.05, 1e-12) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 5) },
		func() { NewHistogram(2, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewHistogram with bad args did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: percentile output is within [min, max] and monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Running.Merge is order-insensitive for the mean.
func TestQuickMergeCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var a1, b1, a2, b2 Running
		for i := 0; i < 50; i++ {
			x := r.Float64()
			a1.Add(x)
			a2.Add(x)
		}
		for i := 0; i < 30; i++ {
			x := r.Float64() * 2
			b1.Add(x)
			b2.Add(x)
		}
		a1.Merge(b1) // a then b
		b2.Merge(a2) // b then a
		return almost(a1.Mean(), b2.Mean(), 1e-10) && almost(a1.Variance(), b2.Variance(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
