// Package stats provides the summary statistics the Monte-Carlo harness
// aggregates over: running (Welford) moments, exact percentiles, empirical
// CDFs and histograms. The paper reports sample means, 5th/95th percentile
// bands and "unfair probabilities" (tail masses outside a fairness window);
// these are the primitives that compute them.
package stats

import (
	"math"
	"sort"
)

// Running accumulates count, mean and variance in a single pass using
// Welford's algorithm, which stays accurate when the mean dwarfs the
// fluctuations (e.g. reward fractions concentrated near their target).
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Merge combines another accumulator into this one (parallel reduction),
// using Chan et al.'s pairwise update.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.mean += delta * float64(o.n) / float64(n)
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (NaN when empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (NaN when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation (NaN when empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks (the "exclusive" R-7 definition used
// by most plotting tools). It does not modify xs. NaN when xs is empty.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return minOf(xs)
	}
	if p >= 100 {
		return maxOf(xs)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for data already in ascending order,
// avoiding the copy+sort. The caller must not pass unsorted data.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FractionWithin returns the fraction of xs inside [lo, hi] (inclusive).
// Its complement over the fairness window [(1−ε)a, (1+ε)a] is the paper's
// "unfair probability".
func FractionWithin(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	in := 0
	for _, x := range xs {
		if x >= lo && x <= hi {
			in++
		}
	}
	return float64(in) / float64(len(xs))
}

// ECDF returns the empirical CDF of xs evaluated at x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary holds the batch statistics the experiment harness reports for a
// set of trial outcomes at one checkpoint.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P5     float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
}

// Summarize computes a Summary of xs. It does not modify xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, StdDev: nan, Min: nan, Max: nan,
			P5: nan, P25: nan, Median: nan, P75: nan, P95: nan}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sd := math.Sqrt(Variance(xs))
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: sd,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P5:     percentileSorted(sorted, 5),
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P95:    percentileSorted(sorted, 95),
	}
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi].
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations above Hi
	binWidth float64
}

// NewHistogram creates a histogram with the given number of bins spanning
// [lo, hi]. It panics on a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if !(hi > lo) {
		panic("stats: NewHistogram with empty range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i == len(h.Counts) { // x == Hi lands in the last bin
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including outliers.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}
