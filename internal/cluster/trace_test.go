package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// startTracedWorker boots an in-process worker with span instrumentation
// wired: eval/stream spans land in rec, and /v1/traces serves them.
func startTracedWorker(t *testing.T, rec *telemetry.FlightRecorder) (*httptest.Server, *WorkerServer) {
	t.Helper()
	ws := NewWorkerServer(LocalRunner(sweep.Options{}))
	ws.SetTelemetry("montecarlo", nil, rec)
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.Handle("GET /v1/traces", telemetry.TracesHandler(rec))
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok", "backend": "montecarlo"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, ws
}

func spansByName(spans []telemetry.SpanRecord, name string) []telemetry.SpanRecord {
	var out []telemetry.SpanRecord
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// TestClusterTracePropagatesAcrossWorkers runs a two-worker in-process
// cluster under a caller-rooted span and asserts the full causal chain:
// one trace_id end to end, worker eval spans parented on coordinator
// dispatch spans via the X-Fairness-Trace header, baggage labels
// (tenant/job) stamped on worker-side spans, and a single-rooted
// assembled tree.
func TestClusterTracePropagatesAcrossWorkers(t *testing.T) {
	specs := testGrid(t)
	coordRec := telemetry.NewFlightRecorder(0)
	w1Rec := telemetry.NewFlightRecorder(0)
	w2Rec := telemetry.NewFlightRecorder(0)
	w1, _ := startTracedWorker(t, w1Rec)
	w2, _ := startTracedWorker(t, w2Rec)

	root := telemetry.StartSpan(nil, coordRec, telemetry.SpanContext{}, "test", "job")
	ctx := telemetry.ContextWithSpan(context.Background(), root.Context())
	ctx = telemetry.ContextWithBaggage(ctx, map[string]string{"tenant": "acme", "job": "j-000042"})
	rep, err := Run(ctx, specs, Options{
		Workers:   []string{w1.URL, w2.URL},
		ShardSize: 2, // several dispatches, so both workers see shards
		Recorder:  coordRec,
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if rep.Stats.Scenarios != len(specs) {
		t.Fatalf("stats: %+v", rep.Stats)
	}

	traceID := root.Context().TraceID
	coord := coordRec.Spans(traceID)
	workerSpans := append(w1Rec.Spans(traceID), w2Rec.Spans(traceID)...)

	sweeps := spansByName(coord, "sweep")
	if len(sweeps) != 1 {
		t.Fatalf("coordinator recorded %d sweep spans, want 1", len(sweeps))
	}
	if sweeps[0].ParentID != root.Context().SpanID {
		t.Errorf("sweep span parent %q, want the caller's root %q", sweeps[0].ParentID, root.Context().SpanID)
	}
	if len(spansByName(coord, "merge")) != 1 {
		t.Error("coordinator did not record a merge span")
	}
	dispatches := spansByName(coord, "dispatch")
	if len(dispatches) == 0 {
		t.Fatal("coordinator recorded no dispatch spans")
	}
	dispatchIDs := make(map[string]bool, len(dispatches))
	for _, d := range dispatches {
		if d.ParentID != sweeps[0].SpanID {
			t.Errorf("dispatch %s parented on %q, want the sweep span", d.SpanID, d.ParentID)
		}
		if d.Attrs["status"] != "acked" {
			t.Errorf("dispatch %s status %q, want acked", d.SpanID, d.Attrs["status"])
		}
		dispatchIDs[d.SpanID] = true
	}

	evals := spansByName(workerSpans, "eval")
	if len(evals) != len(dispatches) {
		t.Errorf("%d eval spans across workers, want one per dispatch (%d)", len(evals), len(dispatches))
	}
	evalIDs := make(map[string]bool, len(evals))
	for _, e := range evals {
		if e.TraceID != traceID {
			t.Errorf("eval span on trace %q, want %q", e.TraceID, traceID)
		}
		if !dispatchIDs[e.ParentID] {
			t.Errorf("eval span %s parented on %q — not a coordinator dispatch span", e.SpanID, e.ParentID)
		}
		if e.Attrs["tenant"] != "acme" || e.Attrs["job"] != "j-000042" {
			t.Errorf("eval span lost baggage labels: %v", e.Attrs)
		}
		if e.Attrs["backend"] != "montecarlo" {
			t.Errorf("eval span backend %q", e.Attrs["backend"])
		}
		evalIDs[e.SpanID] = true
	}
	for _, s := range spansByName(workerSpans, "stream") {
		if !evalIDs[s.ParentID] {
			t.Errorf("stream span parented on %q — not an eval span", s.ParentID)
		}
	}

	all := append(append([]telemetry.SpanRecord{}, coord...), workerSpans...)
	tree := telemetry.BuildSpanTree(all)
	if len(tree.Roots) != 1 {
		t.Fatalf("assembled tree has %d roots, want 1", len(tree.Roots))
	}
	if tree.Roots[0].Name != "job" {
		t.Errorf("tree rooted at %q, want the job span", tree.Roots[0].Name)
	}
}

// TestClusterTornStreamRequeueTraceSemantics drives the stalling-worker
// scenario (one shard torn mid-stream, lease expiry, remainder requeued
// onto a worker that registers mid-run) and asserts the retry tracing
// contract: every requeue attempt stays on the run's trace_id but mints
// a FRESH dispatch span, and no span — on the stream or in the flight
// recorder — is ever ended twice.
func TestClusterTornStreamRequeueTraceSemantics(t *testing.T) {
	specs := testGrid(t)
	stalling := httptest.NewServer(&stallingWorker{})
	t.Cleanup(stalling.Close)
	healthyRec := telemetry.NewFlightRecorder(0)
	healthy, _ := startTracedWorker(t, healthyRec)

	var buf bytes.Buffer
	tracer := telemetry.NewTracer(&buf)
	coordRec := telemetry.NewFlightRecorder(0)
	reg := NewRegistry("montecarlo", time.Minute)
	go func() {
		time.Sleep(100 * time.Millisecond)
		reg.Register(healthy.URL, "montecarlo", 0)
	}()
	_, err := Run(context.Background(), specs, Options{
		Workers:     []string{stalling.URL},
		Registry:    reg,
		ShardSize:   64, // one big shard for the stalling worker
		LeaseTTL:    300 * time.Millisecond,
		BackoffBase: time.Millisecond,
		Tracer:      tracer,
		Recorder:    coordRec,
	})
	if err != nil {
		t.Fatal(err)
	}

	spans := coordRec.Spans("")
	sweeps := spansByName(spans, "sweep")
	if len(sweeps) != 1 {
		t.Fatalf("%d sweep spans, want 1", len(sweeps))
	}
	traceID := sweeps[0].TraceID

	dispatches := spansByName(spans, "dispatch")
	if len(dispatches) < 2 {
		t.Fatalf("%d dispatch spans, want at least the torn attempt plus its requeue", len(dispatches))
	}
	var requeued, acked int
	seenIDs := make(map[string]bool)
	for _, d := range dispatches {
		if d.TraceID != traceID {
			t.Errorf("dispatch %s left the trace: %q != %q", d.SpanID, d.TraceID, traceID)
		}
		if seenIDs[d.SpanID] {
			t.Errorf("dispatch span id %s recorded twice — retries must mint fresh spans", d.SpanID)
		}
		seenIDs[d.SpanID] = true
		switch d.Attrs["status"] {
		case "requeued":
			requeued++
		case "acked":
			acked++
		}
	}
	if requeued == 0 {
		t.Error("no dispatch span recorded the torn/requeued attempt")
	}
	if acked == 0 {
		t.Error("no dispatch span recorded a successful attempt")
	}

	// The healthy worker's eval spans joined the SAME trace, under the
	// retry dispatch spans.
	for _, e := range spansByName(healthyRec.Spans(""), "eval") {
		if e.TraceID != traceID {
			t.Errorf("retry eval span on trace %q, want %q", e.TraceID, traceID)
		}
		if !seenIDs[e.ParentID] {
			t.Errorf("retry eval span parented on %q — not a dispatch span of this run", e.ParentID)
		}
	}

	// Lease-expiry/requeue paths must never double-end a span: each
	// span_id appears at most once among span_end events, and the flight
	// recorder (which records on End) holds each span at most once.
	ends := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		var ev struct {
			Event  string `json:"event"`
			SpanID string `json:"span_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev.Event == "span_end" {
			ends[ev.SpanID]++
		}
	}
	for id, n := range ends {
		if n > 1 {
			t.Errorf("span %s ended %d times", id, n)
		}
	}
	recorded := make(map[string]int)
	for _, s := range spans {
		recorded[s.SpanID]++
	}
	for id, n := range recorded {
		if n > 1 {
			t.Errorf("span %s recorded %d times in the flight recorder", id, n)
		}
	}
}
