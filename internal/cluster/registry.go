package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Membership defaults. A worker that misses every heartbeat for one TTL
// falls out of the live set; a worker that let a shard lease expire is
// quarantined for penaltyCooldown before re-registration surfaces it
// again (its heartbeats keep arriving, they just don't count).
const (
	defaultRegistryTTL  = 15 * time.Second
	penaltyCooldown     = 10 * time.Second
	heartbeatPerTTL     = 3 // workers heartbeat every TTL/heartbeatPerTTL
	rateEWMAAlpha       = 0.3
	maxRegistryBodySize = 1 << 16
)

// Member is one worker's registry entry as surfaced to schedulers and
// the coordinator's /v1/healthz.
type Member struct {
	URL     string `json:"url"`
	Backend string `json:"backend"`
	// Static marks a seed worker from a -workers list: it never expires
	// and never heartbeats; it leaves the pool only when claims and the
	// liveness probe both fail.
	Static bool `json:"static,omitempty"`
	// ScenariosPerSec is the registry's best throughput estimate: the
	// coordinator-observed EWMA when shards have completed, otherwise
	// the worker's self-reported healthz rate.
	ScenariosPerSec float64 `json:"scenarios_per_sec,omitempty"`
	// LastSeenMS is milliseconds since the last heartbeat (0 for static
	// members, which are probed instead).
	LastSeenMS int64 `json:"last_seen_ms"`
}

// member is the mutable registry record behind a Member view.
type member struct {
	url, backend   string
	static         bool
	lastSeen       time.Time // zero for static members: no expiry
	penalizedUntil time.Time
	reportedRate   float64 // worker-reported scenarios/sec (heartbeat)
	localRate      float64 // coordinator-observed EWMA
	hasLocalRate   bool
}

// Registry is the coordinator-side worker membership table behind
// self-organizing clusters: workers register themselves (POST
// /v1/register through a RegistryServer, or Register directly),
// heartbeat to renew their lease, and fall out of the live set when the
// lease expires or they deregister. The registry also carries the
// per-worker throughput estimate (EWMA of scenarios/sec) adaptive shard
// sizing feeds on.
//
// A Registry may outlive any single Run: pass the same instance to
// successive runs and the learned throughput rates carry over.
type Registry struct {
	mu      sync.Mutex
	backend string
	ttl     time.Duration
	members map[string]*member
	watch   chan struct{}
}

// NewRegistry builds a registry expecting workers of the given backend
// ("" = montecarlo). ttl is the membership lease: a registered worker
// missing every heartbeat for ttl drops out of the live set (0 picks
// 15s).
func NewRegistry(backend string, ttl time.Duration) *Registry {
	if backend == "" {
		backend = "montecarlo"
	}
	if ttl <= 0 {
		ttl = defaultRegistryTTL
	}
	return &Registry{
		backend: backend,
		ttl:     ttl,
		members: make(map[string]*member),
		watch:   make(chan struct{}),
	}
}

// TTL returns the membership lease duration.
func (r *Registry) TTL() time.Duration { return r.ttl }

// Backend returns the backend every member must run.
func (r *Registry) Backend() string { return r.backend }

// requireBackend verifies a run's backend matches the registry's — a
// registry built for one evaluator cannot schedule for another.
func (r *Registry) requireBackend(backend string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if backend != r.backend {
		return fmt.Errorf("%w: registry accepts %q workers, run expects %q",
			ErrBackendMismatch, r.backend, backend)
	}
	return nil
}

// notifyLocked signals watchers that membership may have grown. The
// generation channel is closed and replaced so EVERY watcher wakes —
// several cluster runs can share one registry (the job service runs one
// per job), and a single-slot signal would wake only one of them,
// leaving the rest blind until their next supervisor tick.
func (r *Registry) notifyLocked() {
	close(r.watch)
	r.watch = make(chan struct{})
}

// Watch returns a channel closed on the next membership-growth signal
// (a worker registering, or re-registering after a penalty). It is a
// broadcast: every holder wakes, and each wake-up means "re-scan
// Live()". Call Watch again after each receive — the returned channel
// is only good for one signal.
func (r *Registry) Watch() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.watch
}

// Register adds a worker (or renews its lease — heartbeats are just
// re-registrations) reporting the given backend and self-measured
// scenarios/sec (0 = unknown). A backend mismatch is refused with
// ErrBackendMismatch.
func (r *Registry) Register(url, backend string, rate float64) error {
	url = NormalizeWorkerURL(url)
	if url == "" {
		return fmt.Errorf("cluster: register: empty worker url")
	}
	if backend == "" {
		backend = "montecarlo"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if backend != r.backend {
		return fmt.Errorf("%w: worker %s runs %q, registry expects %q",
			ErrBackendMismatch, url, backend, r.backend)
	}
	m, ok := r.members[url]
	if !ok {
		m = &member{url: url, backend: backend}
		r.members[url] = m
	}
	m.backend = backend
	m.static = false
	m.lastSeen = time.Now()
	if rate > 0 {
		m.reportedRate = rate
	}
	r.notifyLocked()
	return nil
}

// addStatic seeds a probed -workers entry: a permanent member renewed
// by liveness probes rather than heartbeats.
func (r *Registry) addStatic(url, backend string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[url]; ok {
		m.static = true
		m.lastSeen = time.Time{}
		return
	}
	r.members[url] = &member{url: url, backend: backend, static: true}
	r.notifyLocked()
}

// Deregister removes a worker immediately (the graceful-shutdown path).
// It reports whether the worker was present.
func (r *Registry) Deregister(url string) bool {
	url = NormalizeWorkerURL(url)
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.members[url]
	delete(r.members, url)
	return ok
}

// Penalize quarantines a worker that proved unable to finish a shard
// (failed liveness probe, expired stream lease): it leaves the live set
// now and re-registrations only surface it again after a cooldown, so a
// stuck-but-heartbeating worker cannot keep reclaiming work.
func (r *Registry) Penalize(url string) {
	url = NormalizeWorkerURL(url)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[url]
	if !ok {
		return
	}
	if m.static {
		// Static members have no heartbeat to resurrect them; drop.
		delete(r.members, url)
		return
	}
	m.penalizedUntil = time.Now().Add(penaltyCooldown)
}

// rate returns a member's best throughput estimate; callers hold r.mu.
func (m *member) rate() float64 {
	if m.hasLocalRate {
		return m.localRate
	}
	return m.reportedRate
}

// Live prunes expired leases and returns the members currently eligible
// for work, penalized workers excluded.
func (r *Registry) Live() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	out := make([]Member, 0, len(r.members))
	for url, m := range r.members {
		if !m.static && now.Sub(m.lastSeen) > r.ttl {
			delete(r.members, url)
			continue
		}
		if now.Before(m.penalizedUntil) {
			continue
		}
		mb := Member{URL: m.url, Backend: m.backend, Static: m.static, ScenariosPerSec: m.rate()}
		if !m.static {
			mb.LastSeenMS = now.Sub(m.lastSeen).Milliseconds()
		}
		out = append(out, mb)
	}
	return out
}

// ObserveRate folds a completed shard into the worker's coordinator-side
// throughput EWMA — the signal adaptive shard sizing feeds on.
func (r *Registry) ObserveRate(url string, scenarios int, wall time.Duration) {
	if scenarios <= 0 || wall <= 0 {
		return
	}
	obs := float64(scenarios) / wall.Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[NormalizeWorkerURL(url)]
	if !ok {
		return
	}
	if !m.hasLocalRate {
		m.localRate = obs
		m.hasLocalRate = true
		return
	}
	m.localRate = rateEWMAAlpha*obs + (1-rateEWMAAlpha)*m.localRate
}

// Rate returns the registry's throughput estimate for a worker
// (scenarios/sec; 0 = unknown/cold).
func (r *Registry) Rate(url string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[NormalizeWorkerURL(url)]; ok {
		return m.rate()
	}
	return 0
}

// registerRequest is the body of POST /v1/register and /v1/deregister.
type registerRequest struct {
	URL             string  `json:"url"`
	Backend         string  `json:"backend,omitempty"`
	ScenariosPerSec float64 `json:"scenarios_per_sec,omitempty"`
}

// registerResponse tells the worker its lease and suggested heartbeat.
type registerResponse struct {
	TTLMS       int64 `json:"ttl_ms"`
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// RegistryServer is the coordinator's HTTP listener: worker
// registration, deregistration, live run progress and a coordinator
// healthz, mounted on any mux. fairctl `run -listen` serves one next to
// the scheduler.
type RegistryServer struct {
	reg *Registry

	mu       sync.Mutex
	progress Progress
}

// NewRegistryServer wraps a registry in its HTTP face.
func NewRegistryServer(reg *Registry) *RegistryServer {
	return &RegistryServer{reg: reg}
}

// Register mounts the coordinator endpoints on mux.
func (s *RegistryServer) Register(mux *http.ServeMux) {
	s.RegisterMembership(mux)
	mux.HandleFunc("GET /v1/progress", s.handleProgress)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
}

// RegisterMembership mounts only the membership endpoints (register and
// deregister) — for hosts whose mux already serves their own progress
// and healthz routes, like a fairnessd running the job service in
// cluster mode.
func (s *RegistryServer) RegisterMembership(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/register", s.handleRegister)
	mux.HandleFunc("POST /v1/deregister", s.handleDeregister)
}

// UpdateProgress publishes the latest run snapshot to /v1/progress —
// wire it as (or into) the run's Options.OnProgress.
func (s *RegistryServer) UpdateProgress(p Progress) {
	s.mu.Lock()
	s.progress = p
	s.mu.Unlock()
}

func (s *RegistryServer) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRegistryBodySize)).Decode(&req); err != nil {
		shardError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.reg.Register(req.URL, req.Backend, req.ScenariosPerSec); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrBackendMismatch) {
			status = http.StatusConflict
		}
		shardError(w, status, err)
		return
	}
	ttl := s.reg.TTL()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(registerResponse{
		TTLMS:       ttl.Milliseconds(),
		HeartbeatMS: (ttl / heartbeatPerTTL).Milliseconds(),
	})
}

func (s *RegistryServer) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRegistryBodySize)).Decode(&req); err != nil {
		shardError(w, http.StatusBadRequest, err)
		return
	}
	removed := s.reg.Deregister(req.URL)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]bool{"removed": removed})
}

func (s *RegistryServer) handleProgress(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	p := s.progress
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p)
}

func (s *RegistryServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := s.reg.Live()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"role":    "coordinator",
		"backend": s.reg.Backend(),
		"workers": len(live),
		"members": live,
		"ttl_ms":  s.reg.TTL().Milliseconds(),
	})
}

// Registrar is the worker-side registration client: it announces the
// worker to a coordinator, heartbeats to keep the membership lease
// fresh, and deregisters gracefully when its context ends (fairnessd
// wires this to SIGTERM).
type Registrar struct {
	// Coordinator is the coordinator base URL, Self the worker base URL
	// as reachable FROM the coordinator.
	Coordinator string
	Self        string
	// Backend names the worker's evaluator ("" = montecarlo).
	Backend string
	// Rate, when non-nil, supplies the worker's self-measured
	// scenarios/sec for each heartbeat.
	Rate func() float64
	// Interval overrides the coordinator-suggested heartbeat cadence.
	Interval time.Duration
	// Client overrides the HTTP transport.
	Client *http.Client
	// OnError observes registration failures (nil = dropped); the
	// registrar itself never gives up — it retries on the next beat.
	OnError func(error)
}

// register posts one registration/heartbeat and returns the suggested
// next interval.
func (rg *Registrar) register(ctx context.Context) (time.Duration, error) {
	rate := 0.0
	if rg.Rate != nil {
		rate = rg.Rate()
	}
	body, err := json.Marshal(registerRequest{
		URL: rg.Self, Backend: rg.Backend, ScenariosPerSec: rate,
	})
	if err != nil {
		return 0, err
	}
	resp, err := rg.post(ctx, "/v1/register", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("register status %d", resp.StatusCode)
	}
	var rr registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return 0, err
	}
	return time.Duration(rr.HeartbeatMS) * time.Millisecond, nil
}

// post issues one registration-protocol request with a bounded timeout.
func (rg *Registrar) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	client := rg.Client
	if client == nil {
		client = http.DefaultClient
	}
	reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		NormalizeWorkerURL(rg.Coordinator)+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req) //nolint:bodyclose // closed by callers
}

// Run registers, heartbeats until ctx ends, then deregisters
// (best-effort, on a fresh short-lived context so shutdown still
// announces itself). Registration failures are reported through OnError
// and retried on the next beat — a coordinator that boots late still
// picks the worker up.
func (rg *Registrar) Run(ctx context.Context) {
	interval := rg.Interval
	if interval <= 0 {
		interval = defaultRegistryTTL / heartbeatPerTTL
	}
	registered := false
	for {
		suggested, err := rg.register(ctx)
		if err != nil {
			if ctx.Err() != nil {
				// Cancelled mid-beat: still announce the shutdown if any
				// earlier beat landed.
				if registered {
					rg.deregister()
				}
				return
			}
			if rg.OnError != nil {
				rg.OnError(err)
			}
		} else {
			registered = true
			if rg.Interval <= 0 && suggested > 0 {
				interval = suggested
			}
		}
		select {
		case <-ctx.Done():
			rg.deregister()
			return
		case <-time.After(interval):
		}
	}
}

// deregister announces a graceful shutdown.
func (rg *Registrar) deregister() {
	body, err := json.Marshal(registerRequest{URL: rg.Self})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if resp, err := rg.post(ctx, "/v1/deregister", body); err == nil {
		resp.Body.Close()
	} else if rg.OnError != nil {
		rg.OnError(err)
	}
}
