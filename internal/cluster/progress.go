package cluster

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ShardProgress is the live view of one in-flight shard: how many of its
// scenarios have streamed back so far, who holds it, and for how long.
type ShardProgress struct {
	// ID is the shard's content id (ShardID of the hashes it carries).
	ID string `json:"id"`
	// Worker is the base URL of the worker holding the claim.
	Worker string `json:"worker,omitempty"`
	// Scenarios is the number of work items in the shard, Streamed how
	// many outcomes have arrived so far.
	Scenarios int `json:"scenarios"`
	Streamed  int `json:"streamed"`
	// State is "claimed" until the first outcome arrives, then
	// "streaming".
	State string `json:"state"`
	// AgeMS is how long ago the shard was claimed.
	AgeMS int64 `json:"age_ms"`
}

// Progress is a coordinator-side snapshot of a distributed run: totals
// over the whole sweep plus the per-shard view of everything currently
// in flight. Snapshots flow through Options.OnProgress as the run
// advances, are served by the coordinator's /v1/progress endpoint, and
// render in `fairctl watch`.
type Progress struct {
	// Total is the number of unique work items the run must deliver;
	// Delivered how many have been merged so far (locally cache-served
	// or streamed back from a worker).
	Total     int `json:"total"`
	Delivered int `json:"delivered"`
	// LocalCacheHits counts work items served from the coordinator's own
	// cache without ever shipping to a worker.
	LocalCacheHits int `json:"local_cache_hits"`
	// Shard lifecycle counters: claims issued, shards acked after a full
	// merge, and shards whose remainder was requeued after a failure or
	// lease expiry.
	ShardsClaimed  int `json:"shards_claimed"`
	ShardsAcked    int `json:"shards_acked"`
	ShardsRequeued int `json:"shards_requeued"`
	// OutcomesStreamed counts outcome lines merged from worker streams.
	OutcomesStreamed int `json:"outcomes_streamed"`
	// Workers is the live worker count at snapshot time.
	Workers int `json:"workers"`
	// Done marks the run complete (successfully or not).
	Done bool `json:"done"`
	// Shards lists the shards currently in flight.
	Shards []ShardProgress `json:"shards,omitempty"`
}

// trackedShard is the tracker's mutable record of one in-flight claim.
type trackedShard struct {
	worker    string
	scenarios int
	streamed  int
	claimedAt time.Time
}

// tracker accumulates coordinator-side progress and emits a snapshot on
// every transition. Emissions are serialised by the tracker's mutex, so
// an OnProgress observer sees monotonically advancing snapshots. Every
// transition also ticks the run's fairness_cluster_* telemetry counters
// — the registry handles are nil-safe, so an uninstrumented run pays
// only a few uncontended atomic adds.
type tracker struct {
	mu      sync.Mutex
	p       Progress
	active  map[string]*trackedShard
	emit    func(Progress)
	workers func() int
	tracer  *telemetry.Tracer

	cClaimed   *telemetry.Counter
	cAcked     *telemetry.Counter
	cRequeued  *telemetry.Counter
	cStreamed  *telemetry.Counter
	cDelivered *telemetry.Counter
	cLocalHits *telemetry.Counter
	gWorkers   *telemetry.Gauge
}

// newTracker builds a tracker over total unique work items. emit,
// workers, metrics and tracer may all be nil.
func newTracker(total int, emit func(Progress), workers func() int,
	metrics *telemetry.Registry, tracer *telemetry.Tracer) *tracker {
	return &tracker{
		p:       Progress{Total: total},
		active:  make(map[string]*trackedShard),
		emit:    emit,
		workers: workers,
		tracer:  tracer,

		cClaimed:   metrics.Counter("fairness_cluster_shards_claimed_total"),
		cAcked:     metrics.Counter("fairness_cluster_shards_acked_total"),
		cRequeued:  metrics.Counter("fairness_cluster_shards_requeued_total"),
		cStreamed:  metrics.Counter("fairness_cluster_outcomes_streamed_total"),
		cDelivered: metrics.Counter("fairness_cluster_delivered_total"),
		cLocalHits: metrics.Counter("fairness_cluster_local_cache_hits_total"),
		gWorkers:   metrics.Gauge("fairness_cluster_workers"),
	}
}

// snapshotLocked assembles a Progress copy; callers hold t.mu.
func (t *tracker) snapshotLocked() Progress {
	p := t.p
	if t.workers != nil {
		p.Workers = t.workers()
		t.gWorkers.Set(float64(p.Workers))
	}
	if len(t.active) > 0 {
		now := time.Now()
		p.Shards = make([]ShardProgress, 0, len(t.active))
		for id, s := range t.active {
			state := "claimed"
			if s.streamed > 0 {
				state = "streaming"
			}
			p.Shards = append(p.Shards, ShardProgress{
				ID:        id,
				Worker:    s.worker,
				Scenarios: s.scenarios,
				Streamed:  s.streamed,
				State:     state,
				AgeMS:     now.Sub(s.claimedAt).Milliseconds(),
			})
		}
	}
	return p
}

// emitLocked pushes a snapshot to the observer and refreshes the live
// worker gauge; callers hold t.mu.
func (t *tracker) emitLocked() {
	if t.workers != nil {
		t.gWorkers.Set(float64(t.workers()))
	}
	if t.emit != nil {
		t.emit(t.snapshotLocked())
	}
}

// Snapshot returns the current progress view.
func (t *tracker) Snapshot() Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// localHits records n work items served from the coordinator's cache.
func (t *tracker) localHits(n int) {
	if n == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.LocalCacheHits += n
	t.p.Delivered += n
	t.cLocalHits.Add(int64(n))
	t.cDelivered.Add(int64(n))
	t.tracer.Emit("local_cache_hits", "count", n)
	t.emitLocked()
}

// claim records a shard handed to a worker.
func (t *tracker) claim(id, worker string, scenarios int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.ShardsClaimed++
	t.active[id] = &trackedShard{worker: worker, scenarios: scenarios, claimedAt: time.Now()}
	t.cClaimed.Inc()
	t.tracer.Emit("shard_claim", "shard", id, "worker", worker, "scenarios", scenarios)
	t.emitLocked()
}

// streamed records one outcome line merged from a shard stream;
// delivered marks lines that filled a previously-missing work item.
func (t *tracker) streamed(id string, delivered bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.OutcomesStreamed++
	t.cStreamed.Inc()
	if delivered {
		t.p.Delivered++
		t.cDelivered.Inc()
	}
	if s, ok := t.active[id]; ok {
		s.streamed++
	}
	t.emitLocked()
}

// acked retires a fully-merged shard.
func (t *tracker) acked(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.ShardsAcked++
	delete(t.active, id)
	t.cAcked.Inc()
	t.tracer.Emit("shard_ack", "shard", id)
	t.emitLocked()
}

// requeued retires a failed claim whose remainder went back on the
// queue.
func (t *tracker) requeued(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.ShardsRequeued++
	delete(t.active, id)
	t.cRequeued.Inc()
	t.tracer.Emit("shard_requeue", "shard", id)
	t.emitLocked()
}

// done marks the run finished and emits the final snapshot.
func (t *tracker) done() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Done = true
	t.emitLocked()
}
