package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryRegisterHeartbeatExpiry(t *testing.T) {
	reg := NewRegistry("montecarlo", 50*time.Millisecond)
	if err := reg.Register("localhost:7447", "montecarlo", 0); err != nil {
		t.Fatal(err)
	}
	if live := reg.Live(); len(live) != 1 || live[0].URL != "http://localhost:7447" {
		t.Fatalf("live after register: %+v", live)
	}
	// Heartbeats are re-registrations: keep beating past one TTL and the
	// member stays live.
	for i := 0; i < 4; i++ {
		time.Sleep(20 * time.Millisecond)
		if err := reg.Register("localhost:7447", "montecarlo", 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(reg.Live()) != 1 {
		t.Fatal("heartbeating member expired")
	}
	// Stop beating: the lease lapses and the member drops out.
	time.Sleep(80 * time.Millisecond)
	if live := reg.Live(); len(live) != 0 {
		t.Fatalf("expired member still live: %+v", live)
	}
}

func TestRegistryDeregisterAndBackendMismatch(t *testing.T) {
	reg := NewRegistry("montecarlo", time.Second)
	if err := reg.Register("h:1", "theory", 0); !errors.Is(err, ErrBackendMismatch) {
		t.Errorf("register wrong backend: err = %v, want ErrBackendMismatch", err)
	}
	if err := reg.Register("h:1", "montecarlo", 0); err != nil {
		t.Fatal(err)
	}
	if !reg.Deregister("h:1") {
		t.Error("deregister of a live member reported absent")
	}
	if reg.Deregister("h:1") {
		t.Error("second deregister reported present")
	}
	if len(reg.Live()) != 0 {
		t.Error("deregistered member still live")
	}
}

func TestRegistryStaticMembersNeverExpire(t *testing.T) {
	reg := NewRegistry("montecarlo", 20*time.Millisecond)
	reg.addStatic("http://h:1", "montecarlo")
	time.Sleep(60 * time.Millisecond)
	live := reg.Live()
	if len(live) != 1 || !live[0].Static {
		t.Fatalf("static member expired: %+v", live)
	}
	// Penalizing a static member removes it outright — there is no
	// heartbeat to bring it back.
	reg.Penalize("http://h:1")
	if len(reg.Live()) != 0 {
		t.Error("penalized static member still live")
	}
}

func TestRegistryPenaltyQuarantinesHeartbeatingWorker(t *testing.T) {
	reg := NewRegistry("montecarlo", time.Second)
	if err := reg.Register("h:1", "montecarlo", 0); err != nil {
		t.Fatal(err)
	}
	reg.Penalize("h:1")
	// The worker keeps heartbeating, but the penalty window hides it.
	if err := reg.Register("h:1", "montecarlo", 0); err != nil {
		t.Fatal(err)
	}
	if len(reg.Live()) != 0 {
		t.Error("penalized worker surfaced through a heartbeat inside the cooldown")
	}
}

func TestRegistryRateEWMA(t *testing.T) {
	reg := NewRegistry("montecarlo", time.Second)
	if err := reg.Register("h:1", "montecarlo", 8); err != nil {
		t.Fatal(err)
	}
	// Before any coordinator observation, the heartbeat-reported rate
	// stands in.
	if r := reg.Rate("h:1"); r != 8 {
		t.Fatalf("reported rate = %v, want 8", r)
	}
	// First local observation replaces the reported figure outright.
	reg.ObserveRate("h:1", 20, time.Second)
	if r := reg.Rate("h:1"); r != 20 {
		t.Fatalf("rate after first observation = %v, want 20", r)
	}
	// Later observations fold in as an EWMA.
	reg.ObserveRate("h:1", 10, time.Second)
	want := rateEWMAAlpha*10 + (1-rateEWMAAlpha)*20
	if r := reg.Rate("h:1"); r != want {
		t.Fatalf("EWMA rate = %v, want %v", r, want)
	}
	if r := reg.Rate("unknown:1"); r != 0 {
		t.Fatalf("unknown worker rate = %v, want 0", r)
	}
}

func TestRegistryWatchSignalsRegistration(t *testing.T) {
	reg := NewRegistry("montecarlo", time.Second)
	w := reg.Watch()
	select {
	case <-w:
		t.Fatal("watch fired before any registration")
	default:
	}
	if err := reg.Register("h:1", "montecarlo", 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w:
	case <-time.After(time.Second):
		t.Fatal("watch never fired after registration")
	}
}

func TestAdaptiveShardSize(t *testing.T) {
	target := 2 * time.Second
	cases := []struct {
		rate float64
		want int
	}{
		{0, coldShardSize}, // cold worker: small probing shard
		{0.1, 1},           // very slow: one scenario at a time
		{4, 8},             // 4/s over a 2s target
		{1000, 64},         // tiny scenarios: batched, capped
	}
	for _, c := range cases {
		if got := adaptiveShardSize(c.rate, target, 64); got != c.want {
			t.Errorf("adaptiveShardSize(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestRegistryServerEndpoints(t *testing.T) {
	reg := NewRegistry("montecarlo", 200*time.Millisecond)
	srv := NewRegistryServer(reg)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	// Register: the worker learns its lease and heartbeat cadence.
	resp := postJSON(t, ts.URL+"/v1/register", `{"url":"w:1","backend":"montecarlo","scenarios_per_sec":3}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	var rr registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.TTLMS != 200 || rr.HeartbeatMS != 200/heartbeatPerTTL {
		t.Errorf("register response: %+v", rr)
	}
	if r := reg.Rate("w:1"); r != 3 {
		t.Errorf("registered rate = %v, want 3", r)
	}

	// A backend mismatch is refused with 409.
	conflict := postJSON(t, ts.URL+"/v1/register", `{"url":"w:2","backend":"theory"}`)
	conflict.Body.Close()
	if conflict.StatusCode != http.StatusConflict {
		t.Errorf("mismatched register status %d, want 409", conflict.StatusCode)
	}

	// Healthz reports the membership.
	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Role != "coordinator" || health.Workers != 1 {
		t.Errorf("coordinator healthz: %+v", health)
	}

	// Progress serves whatever the run last published.
	srv.UpdateProgress(Progress{Total: 10, Delivered: 4, ShardsClaimed: 2})
	pr, err := http.Get(ts.URL + "/v1/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	var p Progress
	if err := json.NewDecoder(pr.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Total != 10 || p.Delivered != 4 || p.ShardsClaimed != 2 {
		t.Errorf("progress: %+v", p)
	}

	// Deregister removes the member.
	dr := postJSON(t, ts.URL+"/v1/deregister", `{"url":"w:1"}`)
	defer dr.Body.Close()
	var removed struct {
		Removed bool `json:"removed"`
	}
	if err := json.NewDecoder(dr.Body).Decode(&removed); err != nil {
		t.Fatal(err)
	}
	if !removed.Removed || len(reg.Live()) != 0 {
		t.Errorf("deregister: %+v, live=%d", removed, len(reg.Live()))
	}
}

func TestRegistrarHeartbeatsAndDeregisters(t *testing.T) {
	var registers, deregisters atomic.Int64
	var lastBody atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		json.NewDecoder(r.Body).Decode(&req)
		lastBody.Store(req)
		registers.Add(1)
		json.NewEncoder(w).Encode(registerResponse{TTLMS: 60, HeartbeatMS: 20})
	})
	mux.HandleFunc("POST /v1/deregister", func(w http.ResponseWriter, r *http.Request) {
		deregisters.Add(1)
		json.NewEncoder(w).Encode(map[string]bool{"removed": true})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	rg := &Registrar{
		Coordinator: ts.URL,
		Self:        "http://worker:7447",
		Backend:     "montecarlo",
		Rate:        func() float64 { return 5.5 },
	}
	go func() {
		defer close(done)
		rg.Run(ctx)
	}()

	// The registrar adopts the server-suggested 20ms cadence: several
	// heartbeats land quickly.
	deadline := time.After(2 * time.Second)
	for registers.Load() < 3 {
		select {
		case <-deadline:
			t.Fatalf("only %d registrations before deadline", registers.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	req := lastBody.Load().(registerRequest)
	if req.URL != "http://worker:7447" || req.Backend != "montecarlo" || req.ScenariosPerSec != 5.5 {
		t.Errorf("heartbeat body: %+v", req)
	}

	// Cancelling the context (fairnessd's SIGTERM path) deregisters.
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("registrar did not stop after cancel")
	}
	if deregisters.Load() != 1 {
		t.Errorf("deregisters = %d, want 1", deregisters.Load())
	}
}

func TestRegistrarSurvivesAbsentCoordinator(t *testing.T) {
	// A worker that boots before its coordinator must keep retrying, not
	// exit — the coordinator picks it up on a later beat.
	var errs atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	rg := &Registrar{
		Coordinator: "http://127.0.0.1:1", // nothing listens here
		Self:        "http://worker:7447",
		Interval:    10 * time.Millisecond,
		OnError:     func(error) { errs.Add(1) },
	}
	go func() {
		defer close(done)
		rg.Run(ctx)
	}()
	deadline := time.After(2 * time.Second)
	for errs.Load() < 2 {
		select {
		case <-deadline:
			t.Fatal("registrar stopped retrying against an absent coordinator")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("registrar did not stop after cancel")
	}
}

func TestRegisterRejectsEmptyURL(t *testing.T) {
	reg := NewRegistry("montecarlo", time.Second)
	if err := reg.Register("   ", "montecarlo", 0); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty url register: err = %v", err)
	}
}
