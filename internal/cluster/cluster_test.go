package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// testGrid expands a small but non-trivial scenario list: three
// protocols, two stakes, plus one duplicate position to exercise
// in-sweep deduplication fan-out.
func testGrid(t *testing.T) []scenario.Spec {
	t.Helper()
	g := scenario.Grid{
		Base:      scenario.Spec{Blocks: 200, Trials: 20, Seed: 9},
		Protocols: []string{"pow", "mlpos", "slpos"},
		Stake:     []float64{0.2, 0.3},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	dup := specs[0]
	dup.Name = "dup-of-first"
	return append(specs, dup)
}

// startWorker boots one in-process worker node: the real shard protocol
// handlers over a local sweep pipeline, plus the minimal healthz the
// coordinator probes.
func startWorker(t *testing.T, opts sweep.Options, backendName string) (*httptest.Server, *WorkerServer) {
	t.Helper()
	ws := NewWorkerServer(LocalRunner(opts))
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "backend": backendName,
			"shards_in_flight": ws.InFlight(), "shards_done": ws.Done(),
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, ws
}

// canonicalOutcomes strips the fields that legitimately differ between a
// local and a distributed run — where/when the work ran — leaving
// everything the paper cares about, byte for byte.
func canonicalOutcomes(t *testing.T, rep *sweep.Report) string {
	t.Helper()
	outs := make([]sweep.Outcome, len(rep.Outcomes))
	copy(outs, rep.Outcomes)
	for i := range outs {
		outs[i].ElapsedMS = 0
		outs[i].CacheHit = false
	}
	b, err := json.Marshal(outs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// countGoroutines samples the goroutine count after a settle loop so
// already-exiting goroutines don't read as leaks.
func countGoroutines(settleBelow int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100 && n > settleBelow; i++ {
		time.Sleep(2 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestClusterRunMatchesLocalSweepBitIdentical(t *testing.T) {
	specs := testGrid(t)
	local, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w1, ws1 := startWorker(t, sweep.Options{}, "montecarlo")
	w2, ws2 := startWorker(t, sweep.Options{}, "montecarlo")
	var streamed atomic.Int64
	rep, err := Run(context.Background(), specs, Options{
		Workers:   []string{w1.URL, w2.URL},
		OnOutcome: func(sweep.Outcome) { streamed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalOutcomes(t, rep), canonicalOutcomes(t, local); got != want {
		t.Errorf("distributed outcomes differ from local sweep:\n%s\n%s", got, want)
	}
	// The stats must agree too — everything but wall time is a pure
	// function of the scenario list.
	ls, cs := local.Stats, rep.Stats
	if cs.Scenarios != ls.Scenarios || cs.Computed != ls.Computed ||
		cs.CacheHits != ls.CacheHits || cs.TrialsRun != ls.TrialsRun {
		t.Errorf("stats differ: cluster %+v, local %+v", cs, ls)
	}
	if int(streamed.Load()) != len(specs) {
		t.Errorf("observer saw %d outcomes, want %d", streamed.Load(), len(specs))
	}
	// The duplicate position must be an in-sweep hit, exactly like local.
	last := rep.Outcomes[len(specs)-1]
	if !last.CacheHit || last.Name != "dup-of-first" {
		t.Errorf("duplicate position: %+v", last)
	}
	if ws1.Done()+ws2.Done() == 0 {
		t.Error("no worker completed any shard")
	}
	if ws1.InFlight()+ws2.InFlight() != 0 {
		t.Error("in-flight counters did not return to zero")
	}
}

func TestClusterWarmCacheNeverShipsWork(t *testing.T) {
	// Cache-aware scheduling: a coordinator whose cache already holds
	// every work item must answer without touching a single worker — the
	// configured pool is unreachable on purpose.
	specs := testGrid(t)
	cache := sweep.NewCache(64)
	local, err := sweep.Run(specs, sweep.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), specs, Options{
		Workers: []string{"127.0.0.1:1"}, // nothing listens here
		Cache:   cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalOutcomes(t, rep), canonicalOutcomes(t, local); got != want {
		t.Errorf("warm-cache outcomes differ from local sweep")
	}
	if rep.Stats.Computed != 0 || rep.Stats.CacheHits != len(specs) {
		t.Errorf("warm run stats: %+v", rep.Stats)
	}
	for i, o := range rep.Outcomes {
		if !o.CacheHit {
			t.Errorf("outcome %d not served from cache", i)
		}
	}
}

// flakyWorker wraps a healthy worker node and kills it mid-shard: the
// first claim streams one line and tears the connection, and from then
// on the whole node answers 503 — a crashed process as seen over HTTP.
type flakyWorker struct {
	inner http.Handler
	dead  atomic.Bool
	hits  atomic.Int64
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		http.Error(w, "worker crashed", http.StatusServiceUnavailable)
		return
	}
	if r.Method == http.MethodPost && r.URL.Path == "/v1/shard" {
		f.hits.Add(1)
		f.dead.Store(true)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"hash":"torn`) // half a line, then the connection dies
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	f.inner.ServeHTTP(w, r)
}

func TestClusterReassignsShardsFromKilledWorker(t *testing.T) {
	specs := testGrid(t)
	local, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}

	healthy, _ := startWorker(t, sweep.Options{}, "montecarlo")
	ws := NewWorkerServer(LocalRunner(sweep.Options{}))
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok", "backend": "montecarlo"})
	})
	flaky := &flakyWorker{inner: mux}
	flakySrv := httptest.NewServer(flaky)
	t.Cleanup(flakySrv.Close)

	before := countGoroutines(0)
	rep, err := Run(context.Background(), specs, Options{
		Workers:     []string{flakySrv.URL, healthy.URL},
		BackoffBase: time.Millisecond, // keep the retry path fast under test
	})
	if err != nil {
		t.Fatal(err)
	}
	if flaky.hits.Load() == 0 {
		t.Fatal("flaky worker was never claimed — the failure path did not run")
	}
	// The merged report must be indistinguishable from an undisturbed
	// local sweep: the killed worker's shard was recomputed elsewhere.
	if got, want := canonicalOutcomes(t, rep), canonicalOutcomes(t, local); got != want {
		t.Errorf("outcomes after worker failure differ from local sweep:\n%s\n%s", got, want)
	}
	if rep.Partial {
		t.Error("report marked partial despite successful reassignment")
	}
	if after := countGoroutines(before); after > before {
		t.Errorf("goroutines leaked across worker failure: %d -> %d", before, after)
	}
}

func TestClusterArenaEquilibriumBitIdenticalWithWorkerKill(t *testing.T) {
	// The arena backend through the cluster: an equilibrium report is a
	// pure function of (grid, seed), so the merged distributed report must
	// be bit-identical to a local best-response run — including when a
	// worker is killed mid-run and its shard is recomputed elsewhere.
	g := scenario.Grid{
		Base:      scenario.Spec{Blocks: 300, Trials: 15, Seed: 11, Miners: 5},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.2, 0.4},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	arenaOpts := func() sweep.Options {
		return sweep.Options{Evaluator: &sweep.ArenaEvaluator{}}
	}
	local, err := sweep.Run(specs, arenaOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range local.Outcomes {
		if o.Arena == nil {
			t.Fatalf("local outcome %d (%s) carries no equilibrium", i, o.Name)
		}
		if !o.Arena.Converged {
			t.Errorf("local outcome %d (%s) did not converge", i, o.Name)
		}
	}

	// Two healthy workers: plain bit-identity, equilibria included
	// (canonicalOutcomes marshals the full Outcome, Arena and all).
	w1, _ := startWorker(t, arenaOpts(), sweep.ArenaBackendName)
	w2, _ := startWorker(t, arenaOpts(), sweep.ArenaBackendName)
	rep, err := Run(context.Background(), specs, Options{
		Workers: []string{w1.URL, w2.URL},
		Backend: sweep.ArenaBackendName,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalOutcomes(t, rep), canonicalOutcomes(t, local); got != want {
		t.Errorf("distributed arena outcomes differ from local run:\n%s\n%s", got, want)
	}

	// Kill a worker mid-run: the first shard claim tears the connection,
	// the shard is reassigned, and the report must still match local.
	ws := NewWorkerServer(LocalRunner(arenaOpts()))
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok", "backend": sweep.ArenaBackendName})
	})
	flaky := &flakyWorker{inner: mux}
	flakySrv := httptest.NewServer(flaky)
	t.Cleanup(flakySrv.Close)

	rep2, err := Run(context.Background(), specs, Options{
		Workers:     []string{flakySrv.URL, w1.URL},
		Backend:     sweep.ArenaBackendName,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if flaky.hits.Load() == 0 {
		t.Fatal("flaky worker was never claimed — the kill path did not run")
	}
	if rep2.Partial {
		t.Error("report marked partial despite successful reassignment")
	}
	if got, want := canonicalOutcomes(t, rep2), canonicalOutcomes(t, local); got != want {
		t.Errorf("arena outcomes after worker kill differ from local run:\n%s\n%s", got, want)
	}
}

func TestClusterBackendMismatchRefused(t *testing.T) {
	w, _ := startWorker(t, sweep.Options{Evaluator: &sweep.TheoryEvaluator{}}, "theory")
	_, err := Run(context.Background(), testGrid(t), Options{Workers: []string{w.URL}})
	if !errors.Is(err, ErrBackendMismatch) {
		t.Errorf("err = %v, want ErrBackendMismatch", err)
	}
}

func TestClusterNoLiveWorkers(t *testing.T) {
	_, err := Run(context.Background(), testGrid(t), Options{Workers: []string{"127.0.0.1:1"}})
	if !errors.Is(err, ErrNoWorkers) {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

func TestClusterPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, _ := startWorker(t, sweep.Options{}, "montecarlo")
	rep, err := Run(ctx, testGrid(t), Options{Workers: []string{w.URL}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || !rep.Partial {
		t.Fatalf("cancelled cluster run must return a partial report, got %+v", rep)
	}
}

func TestClusterInvalidScenarioRejectedLocally(t *testing.T) {
	_, err := Run(context.Background(), []scenario.Spec{{Protocol: "nope"}}, Options{})
	if !errors.Is(err, scenario.ErrSpec) {
		t.Errorf("err = %v, want ErrSpec", err)
	}
}

// countingGate is a DispatchGate that serialises dispatch (one shard in
// flight at a time, at most capPerGrant items each) and counts its
// acquire/release traffic.
type countingGate struct {
	sem         chan struct{}
	capPerGrant int
	acquires    atomic.Int64
	releases    atomic.Int64
}

func (g *countingGate) Acquire(ctx context.Context, want int) (int, func(), error) {
	select {
	case g.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, func() {}, ctx.Err()
	}
	g.acquires.Add(1)
	if want > g.capPerGrant {
		want = g.capPerGrant
	}
	return want, func() { g.releases.Add(1); <-g.sem }, nil
}

func TestClusterDispatchGatePacesShardsWithoutChangingReport(t *testing.T) {
	specs := testGrid(t)
	local, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := startWorker(t, sweep.Options{}, "montecarlo")
	w2, _ := startWorker(t, sweep.Options{}, "montecarlo")
	gate := &countingGate{sem: make(chan struct{}, 1), capPerGrant: 2}
	rep, err := Run(context.Background(), specs, Options{
		Workers: []string{w1.URL, w2.URL},
		Gate:    gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalOutcomes(t, rep), canonicalOutcomes(t, local); got != want {
		t.Errorf("gated outcomes differ from local sweep:\n%s\n%s", got, want)
	}
	if gate.acquires.Load() == 0 {
		t.Fatal("gate was never consulted")
	}
	if gate.acquires.Load() != gate.releases.Load() {
		t.Errorf("gate grants leaked: %d acquires, %d releases",
			gate.acquires.Load(), gate.releases.Load())
	}
	// capPerGrant 2 across 7 unique scenarios forces at least 4 shards.
	if gate.acquires.Load() < 4 {
		t.Errorf("gate cap ignored: only %d acquires", gate.acquires.Load())
	}
}

func TestClusterWaitingGaugeOnEmptyPool(t *testing.T) {
	// A registry-backed run with no live worker WAITS — and must say so:
	// the fairness_cluster_waiting gauge rises while the pool is empty
	// and falls once a worker registers and the run completes.
	specs := testGrid(t)
	reg := NewRegistry("montecarlo", 0)
	metrics := telemetry.NewRegistry()

	type result struct {
		rep *sweep.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := Run(context.Background(), specs, Options{
			Registry: reg,
			Metrics:  metrics,
		})
		done <- result{rep, err}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for metrics.Gauge("fairness_cluster_waiting").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("fairness_cluster_waiting never rose while the pool was empty")
		}
		time.Sleep(5 * time.Millisecond)
	}

	w, _ := startWorker(t, sweep.Options{}, "montecarlo")
	if err := reg.Register(w.URL, "montecarlo", 0); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.rep.Stats.Computed == 0 {
		t.Error("late-registered worker computed nothing")
	}
	if v := metrics.Gauge("fairness_cluster_waiting").Value(); v != 0 {
		t.Errorf("fairness_cluster_waiting = %v after completion, want 0", v)
	}
}

func TestShardIDDeterministic(t *testing.T) {
	a := ShardID([]string{"aa", "bb"})
	if a != ShardID([]string{"aa", "bb"}) {
		t.Error("same items, different shard ids")
	}
	if a == ShardID([]string{"bb", "aa"}) {
		t.Error("shard id ignores item order")
	}
	if a == ShardID([]string{"a", "abb"}) {
		t.Error("shard id must separate items, not concatenate them")
	}
}

func TestNormalizeWorkerURL(t *testing.T) {
	cases := map[string]string{
		"localhost:7447":         "http://localhost:7447",
		"http://h:1/":            "http://h:1",
		"https://pool.example/w": "https://pool.example/w",
		"  h:2  ":                "http://h:2",
		"":                       "",
	}
	for in, want := range cases {
		if got := NormalizeWorkerURL(in); got != want {
			t.Errorf("NormalizeWorkerURL(%q) = %q, want %q", in, got, want)
		}
	}
}
