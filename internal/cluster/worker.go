// Package cluster distributes scenario sweeps across fairnessd worker
// nodes: a coordinator partitions the expanded grid into shards keyed by
// scenario content hashes (internal/scenario), fans them out over HTTP,
// and merges the workers' NDJSON outcome streams into one deterministic
// report — bit-identical, modulo timing bookkeeping, to a local
// sweep.RunContext of the same scenario list.
//
// The wire protocol is deliberately small:
//
//	POST /v1/shard      {"shard_id":"...","scenarios":[...]} — claim:
//	                    the worker registers the shard in flight and
//	                    streams one NDJSON outcome per scenario, then a
//	                    summary line {"done":true,"shard_id":...}.
//	POST /v1/shard/ack  {"shard_id":"..."} — ack: the coordinator
//	                    confirms it merged the shard; the worker drops
//	                    it from its pending table.
//	GET  /v1/healthz    liveness plus backend, cache counters and
//	                    in-flight shard count, used for placement and
//	                    failure detection.
//
// Work-stealing: shards live on one shared queue and every worker pulls
// the next shard the moment it finishes the last, so fast (or
// cache-warm) workers naturally take more of the grid. A failed shard
// retries with exponential backoff and re-enters the queue for any live
// worker; a worker whose health probe fails drops out of the pool.
// Shards are deterministic and idempotent — their identity is the hash
// of the scenario hashes they carry — so a reassigned shard recomputes
// (or cache-serves) exactly the same outcomes on the new worker.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// RunFunc evaluates one shard's scenario list on the worker, streaming
// each outcome through onOutcome as it completes, and returns the run's
// sweep statistics. Implementations must serialise onOutcome calls (both
// sweep.RunContext's OnOutcome and the Engine observer already do).
type RunFunc func(ctx context.Context, specs []scenario.Spec, onOutcome func(sweep.Outcome)) (sweep.Stats, error)

// LocalRunner adapts a sweep.Options pipeline into a RunFunc: the
// simplest possible worker, used by tests and in-process clusters. The
// per-shard onOutcome is chained after any OnOutcome already present.
func LocalRunner(opts sweep.Options) RunFunc {
	return func(ctx context.Context, specs []scenario.Spec, onOutcome func(sweep.Outcome)) (sweep.Stats, error) {
		o := opts
		prev := o.OnOutcome
		switch {
		case prev != nil && onOutcome != nil:
			o.OnOutcome = func(out sweep.Outcome) { prev(out); onOutcome(out) }
		case onOutcome != nil:
			o.OnOutcome = onOutcome
		}
		rep, err := sweep.RunContext(ctx, specs, o)
		if rep != nil {
			return rep.Stats, err
		}
		return sweep.Stats{}, err
	}
}

// shardRequest is the claim body of POST /v1/shard.
type shardRequest struct {
	ShardID   string          `json:"shard_id"`
	Scenarios []scenario.Spec `json:"scenarios"`
}

// shardSummary is the trailing NDJSON line of a shard stream: the
// worker-side ack that every scenario of the shard was answered.
type shardSummary struct {
	Done      bool    `json:"done"`
	ShardID   string  `json:"shard_id"`
	Scenarios int     `json:"scenarios"`
	Streamed  int     `json:"streamed"`
	TrialsRun int64   `json:"trials_run"`
	CacheHits int     `json:"cache_hits"`
	WallMS    float64 `json:"wall_ms"`
	Error     string  `json:"error,omitempty"`
}

// maxShardBodyBytes bounds claim bodies; even thousand-scenario shards
// are far below this.
const maxShardBodyBytes = 32 << 20

// maxPendingShards caps the completed-but-unacked table so a coordinator
// that never acks cannot grow worker memory without bound.
const maxPendingShards = 1024

// WorkerServer is the worker-node side of the cluster protocol: it
// mounts the /v1/shard claim/stream and /v1/shard/ack endpoints over any
// sweep pipeline (a fairnessd Engine, or a bare LocalRunner) and tracks
// the in-flight/completed shard counters health endpoints report.
type WorkerServer struct {
	run      RunFunc
	inFlight atomic.Int64
	done     atomic.Int64

	mu      sync.Mutex
	pending map[string]time.Time // completed shards awaiting coordinator ack
}

// NewWorkerServer builds a worker server over the given shard runner.
func NewWorkerServer(run RunFunc) *WorkerServer {
	return &WorkerServer{run: run, pending: make(map[string]time.Time)}
}

// Register mounts the shard endpoints on mux.
func (s *WorkerServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("POST /v1/shard/ack", s.handleAck)
}

// InFlight returns the number of shards currently being evaluated.
func (s *WorkerServer) InFlight() int64 { return s.inFlight.Load() }

// Done returns the number of shards completed since startup.
func (s *WorkerServer) Done() int64 { return s.done.Load() }

// PendingAcks returns the number of completed shards not yet acked.
func (s *WorkerServer) PendingAcks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// recordPending marks a completed shard as awaiting ack, evicting the
// oldest entry when the table is full.
func (s *WorkerServer) recordPending(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) >= maxPendingShards {
		oldestID, oldest := "", time.Time{}
		for k, at := range s.pending {
			if oldest.IsZero() || at.Before(oldest) {
				oldestID, oldest = k, at
			}
		}
		delete(s.pending, oldestID)
	}
	s.pending[id] = time.Now()
}

// handleShard is the claim+stream exchange: it validates the shard,
// counts it in flight, streams one NDJSON outcome per scenario and
// finishes with a summary line. The summary's Done:true is the worker's
// promise that every scenario streamed; anything else (an Error line, a
// torn connection, a short stream) tells the coordinator to retry the
// shard elsewhere.
func (s *WorkerServer) handleShard(w http.ResponseWriter, r *http.Request) {
	var req shardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxShardBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		shardError(w, http.StatusBadRequest, err)
		return
	}
	if req.ShardID == "" {
		shardError(w, http.StatusBadRequest, fmt.Errorf("missing shard_id"))
		return
	}
	if len(req.Scenarios) == 0 {
		shardError(w, http.StatusBadRequest, fmt.Errorf("empty shard"))
		return
	}
	for i := range req.Scenarios {
		if err := req.Scenarios[i].Validate(); err != nil {
			shardError(w, http.StatusBadRequest, fmt.Errorf("scenario %d: %w", i, err))
			return
		}
	}

	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := 0
	start := time.Now()
	stats, err := s.run(r.Context(), req.Scenarios, func(out sweep.Outcome) {
		if enc.Encode(out) == nil {
			streamed++
		}
		if flusher != nil {
			flusher.Flush()
		}
	})
	sum := shardSummary{
		ShardID:   req.ShardID,
		Scenarios: len(req.Scenarios),
		Streamed:  streamed,
		TrialsRun: stats.TrialsRun,
		CacheHits: stats.CacheHits,
		WallMS:    float64(time.Since(start).Microseconds()) / 1000,
	}
	switch {
	case r.Context().Err() != nil:
		return // coordinator went away; nothing left to tell it
	case err != nil:
		sum.Error = err.Error()
	default:
		sum.Done = true
		s.done.Add(1)
		s.recordPending(req.ShardID)
	}
	enc.Encode(sum)
}

// handleAck drops an acked shard from the pending table. Acking an
// unknown shard is not an error — acks are best-effort and idempotent.
func (s *WorkerServer) handleAck(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ShardID string `json:"shard_id"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		shardError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	_, known := s.pending[req.ShardID]
	delete(s.pending, req.ShardID)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]bool{"acked": known})
}

// shardError writes a JSON error with the given status — the pre-stream
// failure shape (mid-stream failures surface as NDJSON Error lines).
func shardError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
