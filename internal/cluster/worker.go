// Package cluster distributes scenario sweeps across fairnessd worker
// nodes: a coordinator partitions the expanded grid into shards keyed by
// scenario content hashes (internal/scenario), fans them out over HTTP,
// and merges the workers' NDJSON outcome streams into one deterministic
// report — bit-identical, modulo timing bookkeeping, to a local
// sweep.RunContext of the same scenario list.
//
// The cluster is self-organizing: workers register themselves with the
// coordinator and heartbeat to stay in the pool (Registry/Registrar), a
// static -workers seed list remains supported, and shard sizes adapt to
// each worker's measured throughput. The wire protocol stays small:
//
//	POST /v1/register   {"url":...,"backend":...,"scenarios_per_sec":...}
//	                    — coordinator side: join the pool (and renew the
//	                    membership lease; heartbeats are re-registrations).
//	POST /v1/deregister {"url":...} — graceful leave (fairnessd sends
//	                    this on SIGTERM).
//	POST /v1/shard      {"shard_id":"...","scenarios":[...]} — claim:
//	                    the worker registers the shard in flight and
//	                    streams one NDJSON outcome per scenario, then a
//	                    summary line {"done":true,"shard_id":...}.
//	POST /v1/shard/ack  {"shard_id":"..."} — ack: the coordinator
//	                    confirms it merged the shard; the worker drops
//	                    it from its pending table.
//	GET  /v1/progress   per-shard claimed/streamed/acked counts — the
//	                    live view behind `fairctl watch` (served by both
//	                    workers and the coordinator).
//	GET  /v1/healthz    liveness plus backend, cache counters, shard
//	                    counters and measured scenarios/sec, used for
//	                    placement and failure detection.
//
// Scheduling: work items live on one shared queue and every live worker
// cuts its next shard the moment it finishes the last, so fast (or
// cache-warm) workers naturally take more of the grid; the shard size
// each worker receives tracks an EWMA of its scenarios/sec, so cold or
// slow workers get small probing shards and fast workers get batched
// claims. Each claimed shard carries a lease renewed by every streamed
// outcome: a worker that stops streaming mid-shard loses the lease, the
// undelivered remainder re-enters the queue for any live worker, and
// the stalled worker is quarantined. Outcomes are content-addressed and
// merged idempotently, so reassignment never double-counts a scenario.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// RunFunc evaluates one shard's scenario list on the worker, streaming
// each outcome through onOutcome as it completes, and returns the run's
// sweep statistics. Implementations must serialise onOutcome calls (both
// sweep.RunContext's OnOutcome and the Engine observer already do).
type RunFunc func(ctx context.Context, specs []scenario.Spec, onOutcome func(sweep.Outcome)) (sweep.Stats, error)

// LocalRunner adapts a sweep.Options pipeline into a RunFunc: the
// simplest possible worker, used by tests and in-process clusters. The
// per-shard onOutcome is chained after any OnOutcome already present.
func LocalRunner(opts sweep.Options) RunFunc {
	return func(ctx context.Context, specs []scenario.Spec, onOutcome func(sweep.Outcome)) (sweep.Stats, error) {
		o := opts
		prev := o.OnOutcome
		switch {
		case prev != nil && onOutcome != nil:
			o.OnOutcome = func(out sweep.Outcome) { prev(out); onOutcome(out) }
		case onOutcome != nil:
			o.OnOutcome = onOutcome
		}
		rep, err := sweep.RunContext(ctx, specs, o)
		if rep != nil {
			return rep.Stats, err
		}
		return sweep.Stats{}, err
	}
}

// shardRequest is the claim body of POST /v1/shard. Labels is trace
// baggage (tenant, job) the coordinator forwards so worker-side spans
// and pprof profiles attribute shard work to its submitter.
type shardRequest struct {
	ShardID   string            `json:"shard_id"`
	Scenarios []scenario.Spec   `json:"scenarios"`
	Labels    map[string]string `json:"labels,omitempty"`
}

// shardSummary is the trailing NDJSON line of a shard stream: the
// worker-side ack that every scenario of the shard was answered.
type shardSummary struct {
	Done      bool    `json:"done"`
	ShardID   string  `json:"shard_id"`
	Scenarios int     `json:"scenarios"`
	Streamed  int     `json:"streamed"`
	TrialsRun int64   `json:"trials_run"`
	CacheHits int     `json:"cache_hits"`
	WallMS    float64 `json:"wall_ms"`
	Error     string  `json:"error,omitempty"`
}

// maxShardBodyBytes bounds claim bodies; even thousand-scenario shards
// are far below this.
const maxShardBodyBytes = 32 << 20

// maxPendingShards caps the completed-but-unacked table so a coordinator
// that never acks cannot grow worker memory without bound.
const maxPendingShards = 1024

// maxShardHistory caps the finished-shard progress table served by
// /v1/progress.
const maxShardHistory = 256

// workerShard is one shard's lifecycle as the worker sees it.
type workerShard struct {
	Scenarios int       `json:"scenarios"`
	Streamed  int       `json:"streamed"`
	State     string    `json:"state"` // claimed | done | failed | acked
	at        time.Time // claim time (for eviction and age)
}

// WorkerShardProgress is one row of a worker's /v1/progress response.
type WorkerShardProgress struct {
	ID        string `json:"id"`
	Scenarios int    `json:"scenarios"`
	Streamed  int    `json:"streamed"`
	State     string `json:"state"`
	AgeMS     int64  `json:"age_ms"`
}

// WorkerProgress is a worker's /v1/progress snapshot: lifetime totals
// plus the per-shard table (in-flight first, then recent history).
type WorkerProgress struct {
	ShardsClaimed    int64                 `json:"shards_claimed"`
	ShardsInFlight   int64                 `json:"shards_in_flight"`
	ShardsDone       int64                 `json:"shards_done"`
	ShardsAcked      int64                 `json:"shards_acked"`
	OutcomesStreamed int64                 `json:"outcomes_streamed"`
	PendingAcks      int                   `json:"pending_acks"`
	ScenariosPerSec  float64               `json:"scenarios_per_sec,omitempty"`
	Shards           []WorkerShardProgress `json:"shards,omitempty"`
}

// WorkerServer is the worker-node side of the cluster protocol: it
// mounts the /v1/shard claim/stream, /v1/shard/ack and /v1/progress
// endpoints over any sweep pipeline (a fairnessd Engine, or a bare
// LocalRunner) and tracks the shard counters and throughput EWMA that
// health endpoints and registration heartbeats report.
//
// The shard counters live on telemetry handles — the same storage a
// /metrics endpoint scrapes — so healthz, /v1/progress and Prometheus
// exposition can never disagree. A nil registry yields detached (but
// fully functional) handles.
type WorkerServer struct {
	run      RunFunc
	claimed  *telemetry.Counter // fairness_worker_shards_claimed_total
	done     *telemetry.Counter // fairness_worker_shards_done_total
	acked    *telemetry.Counter // fairness_worker_shards_acked_total
	streamed *telemetry.Counter // fairness_worker_outcomes_streamed_total
	inFlight *telemetry.Gauge   // fairness_worker_shards_in_flight
	rate     *telemetry.Gauge   // fairness_worker_scenarios_per_sec
	rateBits atomic.Uint64      // float64 bits of the scenarios/sec EWMA

	// Tracing (all optional; set via SetTelemetry): eval/stream spans on
	// every shard, parented under the coordinator's dispatch span via the
	// TraceHeader, recorded to the flight recorder behind GET /v1/traces.
	backend  string
	tracer   *telemetry.Tracer
	recorder *telemetry.FlightRecorder

	mu      sync.Mutex
	pending map[string]time.Time    // completed shards awaiting coordinator ack
	shards  map[string]*workerShard // per-shard progress (bounded history)
}

// NewWorkerServer builds a worker server over the given shard runner
// with detached (unexported) counters. Use NewWorkerServerWithMetrics to
// surface the counters on a /metrics registry.
func NewWorkerServer(run RunFunc) *WorkerServer {
	return NewWorkerServerWithMetrics(run, nil)
}

// NewWorkerServerWithMetrics builds a worker server whose shard
// lifecycle counters register as fairness_worker_* series on m (nil m =
// detached handles, same behaviour as NewWorkerServer).
func NewWorkerServerWithMetrics(run RunFunc, m *telemetry.Registry) *WorkerServer {
	return &WorkerServer{
		run:      run,
		claimed:  m.Counter("fairness_worker_shards_claimed_total"),
		done:     m.Counter("fairness_worker_shards_done_total"),
		acked:    m.Counter("fairness_worker_shards_acked_total"),
		streamed: m.Counter("fairness_worker_outcomes_streamed_total"),
		inFlight: m.Gauge("fairness_worker_shards_in_flight"),
		rate:     m.Gauge("fairness_worker_scenarios_per_sec"),
		pending:  make(map[string]time.Time),
		shards:   make(map[string]*workerShard),
	}
}

// SetTelemetry wires the worker's span instrumentation: backend labels
// the eval spans, tr receives span_start/span_end events, and rec keeps
// completed spans for GET /v1/traces (mounted by the caller via
// telemetry.TracesHandler). Any argument may be zero/nil; call before
// serving.
func (s *WorkerServer) SetTelemetry(backend string, tr *telemetry.Tracer, rec *telemetry.FlightRecorder) {
	s.backend = backend
	s.tracer = tr
	s.recorder = rec
}

// Register mounts the shard endpoints on mux.
func (s *WorkerServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("POST /v1/shard/ack", s.handleAck)
	mux.HandleFunc("GET /v1/progress", s.handleProgress)
}

// InFlight returns the number of shards currently being evaluated.
func (s *WorkerServer) InFlight() int64 { return int64(s.inFlight.Value()) }

// Done returns the number of shards completed since startup.
func (s *WorkerServer) Done() int64 { return s.done.Value() }

// Claimed returns the number of shard claims accepted since startup.
func (s *WorkerServer) Claimed() int64 { return s.claimed.Value() }

// Acked returns the number of shards the coordinator confirmed merging.
func (s *WorkerServer) Acked() int64 { return s.acked.Value() }

// Streamed returns the number of outcome lines streamed since startup.
func (s *WorkerServer) Streamed() int64 { return s.streamed.Value() }

// Rate returns this worker's scenarios/sec EWMA across completed shards
// (0 until the first shard completes) — the figure heartbeats report
// and adaptive shard sizing consumes.
func (s *WorkerServer) Rate() float64 {
	return math.Float64frombits(s.rateBits.Load())
}

// observeRate folds one completed shard into the throughput EWMA.
func (s *WorkerServer) observeRate(scenarios int, wall time.Duration) {
	if scenarios <= 0 || wall <= 0 {
		return
	}
	obs := float64(scenarios) / wall.Seconds()
	for {
		old := s.rateBits.Load()
		cur := math.Float64frombits(old)
		next := obs
		if cur > 0 {
			next = rateEWMAAlpha*obs + (1-rateEWMAAlpha)*cur
		}
		if s.rateBits.CompareAndSwap(old, math.Float64bits(next)) {
			s.rate.Set(next)
			return
		}
	}
}

// PendingAcks returns the number of completed shards not yet acked.
func (s *WorkerServer) PendingAcks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Progress returns the worker's live progress snapshot.
func (s *WorkerServer) Progress() WorkerProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := WorkerProgress{
		ShardsClaimed:    s.claimed.Value(),
		ShardsInFlight:   int64(s.inFlight.Value()),
		ShardsDone:       s.done.Value(),
		ShardsAcked:      s.acked.Value(),
		OutcomesStreamed: s.streamed.Value(),
		PendingAcks:      len(s.pending),
		ScenariosPerSec:  s.Rate(),
	}
	now := time.Now()
	for id, sh := range s.shards {
		p.Shards = append(p.Shards, WorkerShardProgress{
			ID: id, Scenarios: sh.Scenarios, Streamed: sh.Streamed,
			State: sh.State, AgeMS: now.Sub(sh.at).Milliseconds(),
		})
	}
	return p
}

// trackShard records (or updates) one shard's progress row, evicting
// the oldest finished row when the table is full; callers hold s.mu via
// the helper methods below.
func (s *WorkerServer) shardState(id string, mutate func(*workerShard)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[id]
	if !ok {
		if len(s.shards) >= maxShardHistory {
			oldestID, oldest := "", time.Time{}
			for k, v := range s.shards {
				if v.State != "claimed" && (oldest.IsZero() || v.at.Before(oldest)) {
					oldestID, oldest = k, v.at
				}
			}
			if oldestID != "" {
				delete(s.shards, oldestID)
			}
		}
		sh = &workerShard{at: time.Now()}
		s.shards[id] = sh
	}
	mutate(sh)
}

// recordPending marks a completed shard as awaiting ack, evicting the
// oldest entry when the table is full.
func (s *WorkerServer) recordPending(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) >= maxPendingShards {
		oldestID, oldest := "", time.Time{}
		for k, at := range s.pending {
			if oldest.IsZero() || at.Before(oldest) {
				oldestID, oldest = k, at
			}
		}
		delete(s.pending, oldestID)
	}
	s.pending[id] = time.Now()
}

// handleShard is the claim+stream exchange: it validates the shard,
// counts it in flight, streams one NDJSON outcome per scenario and
// finishes with a summary line. The summary's Done:true is the worker's
// promise that every scenario streamed; anything else (an Error line, a
// torn connection, a short stream) tells the coordinator to requeue the
// shard's undelivered remainder elsewhere.
func (s *WorkerServer) handleShard(w http.ResponseWriter, r *http.Request) {
	var req shardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxShardBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		shardError(w, http.StatusBadRequest, err)
		return
	}
	if req.ShardID == "" {
		shardError(w, http.StatusBadRequest, fmt.Errorf("missing shard_id"))
		return
	}
	if len(req.Scenarios) == 0 {
		shardError(w, http.StatusBadRequest, fmt.Errorf("empty shard"))
		return
	}
	for i := range req.Scenarios {
		if err := req.Scenarios[i].Validate(); err != nil {
			shardError(w, http.StatusBadRequest, fmt.Errorf("scenario %d: %w", i, err))
			return
		}
	}

	s.claimed.Inc()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.shardState(req.ShardID, func(sh *workerShard) {
		sh.Scenarios = len(req.Scenarios)
		sh.Streamed = 0
		sh.State = "claimed"
		sh.at = time.Now()
	})

	// The eval span covers the whole shard evaluation, parented under the
	// coordinator's dispatch span when the claim carried a TraceHeader
	// (absent/malformed headers root a fresh trace, so a pre-tracing
	// coordinator still gets worker-side spans).
	parent, _ := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeader))
	evalAttrs := []any{"shard", req.ShardID, "scenarios", len(req.Scenarios)}
	profLabels := []string{"shard", req.ShardID}
	if s.backend != "" {
		evalAttrs = append(evalAttrs, "backend", s.backend)
		profLabels = append(profLabels, "backend", s.backend)
	}
	for _, k := range []string{"tenant", "job"} {
		if v := req.Labels[k]; v != "" {
			evalAttrs = append(evalAttrs, k, v)
			profLabels = append(profLabels, k, v)
		}
	}
	eval := telemetry.StartSpan(s.tracer, s.recorder, parent, "worker", "eval", evalAttrs...)

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := 0
	start := time.Now()
	// The stream span (child of eval) opens lazily at the first outcome —
	// its window is "first result out until the run returns", separating
	// streaming/merge time from pure evaluation in the stage breakdown.
	// onOutcome calls are serialised per the RunFunc contract, so the
	// lazy open is race-free.
	var stream *telemetry.Span
	ctx := telemetry.ContextWithSpan(r.Context(), eval.Context())
	if len(req.Labels) > 0 {
		ctx = telemetry.ContextWithBaggage(ctx, req.Labels)
	}
	var stats sweep.Stats
	var err error
	// pprof labels (tenant/job/shard/backend) tag every eval goroutine so
	// CPU profiles attribute cluster work to its submitter.
	pprof.Do(ctx, pprof.Labels(profLabels...), func(ctx context.Context) {
		stats, err = s.run(ctx, req.Scenarios, func(out sweep.Outcome) {
			if stream == nil {
				stream = telemetry.StartSpan(s.tracer, s.recorder, eval.Context(),
					"worker", "stream", "shard", req.ShardID)
			}
			if enc.Encode(out) == nil {
				streamed++
				s.streamed.Inc()
				s.shardState(req.ShardID, func(sh *workerShard) { sh.Streamed = streamed })
			}
			if flusher != nil {
				flusher.Flush()
			}
		})
	})
	stream.End("streamed", streamed)
	sum := shardSummary{
		ShardID:   req.ShardID,
		Scenarios: len(req.Scenarios),
		Streamed:  streamed,
		TrialsRun: stats.TrialsRun,
		CacheHits: stats.CacheHits,
		WallMS:    float64(time.Since(start).Microseconds()) / 1000,
	}
	switch {
	case r.Context().Err() != nil:
		s.shardState(req.ShardID, func(sh *workerShard) { sh.State = "failed" })
		eval.End("status", "torn", "streamed", streamed)
		return // coordinator went away; nothing left to tell it
	case err != nil:
		sum.Error = err.Error()
		s.shardState(req.ShardID, func(sh *workerShard) { sh.State = "failed" })
		eval.End("status", "error", "error", err.Error(), "streamed", streamed)
	default:
		sum.Done = true
		s.done.Inc()
		s.observeRate(len(req.Scenarios), time.Since(start))
		s.recordPending(req.ShardID)
		s.shardState(req.ShardID, func(sh *workerShard) { sh.State = "done" })
		eval.End("status", "done", "streamed", streamed, "trials", stats.TrialsRun)
	}
	enc.Encode(sum)
}

// handleAck drops an acked shard from the pending table. Acking an
// unknown shard is not an error — acks are best-effort and idempotent.
func (s *WorkerServer) handleAck(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ShardID string `json:"shard_id"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		shardError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	_, known := s.pending[req.ShardID]
	delete(s.pending, req.ShardID)
	s.mu.Unlock()
	if known {
		s.acked.Inc()
		s.shardState(req.ShardID, func(sh *workerShard) { sh.State = "acked" })
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]bool{"acked": known})
}

// handleProgress serves the worker's live shard table.
func (s *WorkerServer) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Progress())
}

// shardError writes a JSON error with the given status — the pre-stream
// failure shape (mid-stream failures surface as NDJSON Error lines).
func shardError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
