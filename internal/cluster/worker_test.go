package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// postJSON posts a body and returns the response; callers close it.
func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestWorkerShardClaimStreamAck(t *testing.T) {
	srv, ws := startWorker(t, sweep.Options{}, "montecarlo")
	spec := scenario.Spec{Protocol: "pow", Stake: 0.2, Blocks: 100, Trials: 10, Seed: 4}.Normalized()
	h := spec.MustHash()
	body, _ := json.Marshal(shardRequest{ShardID: ShardID([]string{h}), Scenarios: []scenario.Spec{spec}})

	resp := postJSON(t, srv.URL+"/v1/shard", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var outcomes int
	var sum shardSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		json.Unmarshal([]byte(line), &probe)
		if probe.Done != nil {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var o sweep.Outcome
		if err := json.Unmarshal([]byte(line), &o); err != nil {
			t.Fatal(err)
		}
		if o.Hash != h {
			t.Errorf("outcome hash %q, want %q", o.Hash, h)
		}
		outcomes++
	}
	if outcomes != 1 || !sum.Done || sum.Streamed != 1 || sum.Scenarios != 1 {
		t.Fatalf("stream: %d outcomes, summary %+v", outcomes, sum)
	}
	if sum.TrialsRun != 10 {
		t.Errorf("summary trials = %d", sum.TrialsRun)
	}
	if ws.Done() != 1 || ws.InFlight() != 0 || ws.PendingAcks() != 1 {
		t.Errorf("counters: done=%d inflight=%d pending=%d", ws.Done(), ws.InFlight(), ws.PendingAcks())
	}

	ack := postJSON(t, srv.URL+"/v1/shard/ack", `{"shard_id":"`+sum.ShardID+`"}`)
	defer ack.Body.Close()
	var acked struct {
		Acked bool `json:"acked"`
	}
	if err := json.NewDecoder(ack.Body).Decode(&acked); err != nil {
		t.Fatal(err)
	}
	if !acked.Acked || ws.PendingAcks() != 0 {
		t.Errorf("ack: %+v, pending=%d", acked, ws.PendingAcks())
	}

	// Acks are idempotent: unknown shard ids simply report acked=false.
	again := postJSON(t, srv.URL+"/v1/shard/ack", `{"shard_id":"`+sum.ShardID+`"}`)
	defer again.Body.Close()
	acked.Acked = true
	json.NewDecoder(again.Body).Decode(&acked)
	if acked.Acked {
		t.Error("second ack of the same shard reported acked=true")
	}
}

func TestWorkerProgressEndpoint(t *testing.T) {
	srv, ws := startWorker(t, sweep.Options{}, "montecarlo")
	spec := scenario.Spec{Protocol: "pow", Stake: 0.3, Blocks: 100, Trials: 10, Seed: 7}.Normalized()
	h := spec.MustHash()
	id := ShardID([]string{h})
	body, _ := json.Marshal(shardRequest{ShardID: id, Scenarios: []scenario.Spec{spec}})

	claim := postJSON(t, srv.URL+"/v1/shard", string(body))
	io.Copy(io.Discard, claim.Body)
	claim.Body.Close()

	resp, err := http.Get(srv.URL + "/v1/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p WorkerProgress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.ShardsClaimed != 1 || p.ShardsDone != 1 || p.OutcomesStreamed != 1 || p.PendingAcks != 1 {
		t.Errorf("progress after claim: %+v", p)
	}
	if len(p.Shards) != 1 || p.Shards[0].ID != id || p.Shards[0].State != "done" ||
		p.Shards[0].Streamed != 1 || p.Shards[0].Scenarios != 1 {
		t.Errorf("per-shard progress: %+v", p.Shards)
	}
	if p.ScenariosPerSec <= 0 {
		t.Errorf("scenarios_per_sec = %v, want > 0 after a completed shard", p.ScenariosPerSec)
	}
	if ws.Rate() != p.ScenariosPerSec {
		t.Errorf("Rate() = %v, progress reports %v", ws.Rate(), p.ScenariosPerSec)
	}

	// Acking flips the shard row to acked and bumps the acked counter.
	ack := postJSON(t, srv.URL+"/v1/shard/ack", `{"shard_id":"`+id+`"}`)
	ack.Body.Close()
	resp2, err := http.Get(srv.URL + "/v1/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.ShardsAcked != 1 || p.PendingAcks != 0 || p.Shards[0].State != "acked" {
		t.Errorf("progress after ack: %+v", p)
	}
}

func TestWorkerShardHistoryBounded(t *testing.T) {
	ws := NewWorkerServer(nil)
	for i := 0; i < maxShardHistory+20; i++ {
		id := ShardID([]string{string(rune('a' + i%26)), string(rune(i))})
		ws.shardState(id, func(sh *workerShard) { sh.State = "done" })
	}
	if n := len(ws.Progress().Shards); n > maxShardHistory {
		t.Errorf("shard history grew to %d, cap %d", n, maxShardHistory)
	}
}

func TestWorkerShardRejectsBadClaims(t *testing.T) {
	srv, _ := startWorker(t, sweep.Options{}, "montecarlo")
	for name, body := range map[string]string{
		"not json":       "{",
		"missing id":     `{"scenarios":[{"protocol":"pow"}]}`,
		"empty shard":    `{"shard_id":"s1","scenarios":[]}`,
		"bad scenario":   `{"shard_id":"s1","scenarios":[{"protocol":"nope"}]}`,
		"unknown fields": `{"shard_id":"s1","scenarios":[{"protocol":"pow"}],"x":1}`,
	} {
		resp := postJSON(t, srv.URL+"/v1/shard", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestWorkerPendingAckTableBounded(t *testing.T) {
	ws := NewWorkerServer(nil)
	for i := 0; i < maxPendingShards+10; i++ {
		ws.recordPending(ShardID([]string{string(rune('a' + i%26)), string(rune(i))}))
	}
	if n := ws.PendingAcks(); n > maxPendingShards {
		t.Errorf("pending table grew to %d, cap %d", n, maxPendingShards)
	}
}

func TestLocalRunnerChainsObservers(t *testing.T) {
	var mu sync.Mutex
	var first, second int
	run := LocalRunner(sweep.Options{OnOutcome: func(sweep.Outcome) {
		mu.Lock()
		first++
		mu.Unlock()
	}})
	spec := scenario.Spec{Protocol: "pow", Stake: 0.2, Blocks: 50, Trials: 5}
	stats, err := run(context.Background(), []scenario.Spec{spec}, func(sweep.Outcome) {
		mu.Lock()
		second++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || second != 1 {
		t.Errorf("observer chain: first=%d second=%d", first, second)
	}
	if stats.Scenarios != 1 || stats.Computed != 1 {
		t.Errorf("stats: %+v", stats)
	}
}
