package cluster

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Cluster errors. Per-shard worker failures retry transparently; these
// surface only when the run as a whole cannot make progress.
var (
	// ErrNoWorkers reports a run with no reachable worker (and work left
	// to do after the cache pre-scan). Registry-backed runs never fail
	// with this — they wait for a worker to register instead.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrBackendMismatch reports a worker whose configured backend differs
	// from the coordinator's: silently merging outcomes computed under a
	// different evaluator would poison the report and the shared cache.
	ErrBackendMismatch = errors.New("cluster: worker backend mismatch")
	// ErrShard reports a work item that exhausted its retry budget.
	ErrShard = errors.New("cluster: shard failed")
	// errLeaseExpired marks a claim cancelled by the shard-lease
	// watchdog: the worker stopped streaming long enough to be presumed
	// stuck.
	errLeaseExpired = errors.New("cluster: shard lease expired")
)

// Scheduling defaults.
const (
	// coldShardSize is the probing shard for a worker with no throughput
	// history: small, so one slow worker cannot strand a big slice of
	// the grid behind a single claim.
	coldShardSize = 2
	// defaultTargetShardTime is the adaptive-sizing target: each shard
	// should keep its worker busy for about this long.
	defaultTargetShardTime = 1500 * time.Millisecond
	// defaultMaxShardSize caps adaptive shards; very fast (or cache-hot)
	// workers batch up to this many scenarios per claim.
	defaultMaxShardSize = 128
	// defaultLeaseTTL bounds stream inactivity per claimed shard: a
	// worker that streams nothing for this long loses the shard.
	defaultLeaseTTL = 5 * time.Minute
	// supervisorInterval paces the membership re-scan that spawns worker
	// loops for newly-registered workers.
	supervisorInterval = 100 * time.Millisecond
)

// Options configures a distributed sweep.
type Options struct {
	// Workers lists static fairnessd base URLs ("host:port" or full URL)
	// seeded into the pool after a health probe. With a Registry this
	// list is optional.
	Workers []string
	// Registry, when non-nil, makes the pool self-organizing: live
	// registered workers (plus any static Workers seeds) are eligible,
	// workers may register or drop out mid-run, and a run that finds no
	// worker WAITS for one to register instead of failing with
	// ErrNoWorkers. Serve it over HTTP with a RegistryServer to accept
	// fairnessd -register workers.
	Registry *Registry
	// Backend is the evaluator the workers are expected to run
	// ("" = montecarlo). Every worker's /v1/healthz must report the same
	// backend, or the run fails with ErrBackendMismatch; the name also
	// namespaces shared-cache keys exactly as a local sweep would.
	Backend string
	// Cache, when non-nil, is consulted before scheduling — work items
	// already present are served locally and never leave the coordinator
	// — and filled as worker outcomes arrive. Point it at the same
	// content-addressed directory the workers share and the whole
	// cluster warm-starts for free.
	Cache sweep.CacheStore
	// ShardSize pins the number of work items per shard. 0 (the
	// default) sizes shards adaptively per worker: a worker with no
	// history gets a small probing shard, and from then on each claim
	// targets TargetShardTime of work at the worker's EWMA
	// scenarios/sec — slow or cold-cache workers get small shards, fast
	// workers get batched claims.
	ShardSize int
	// TargetShardTime is the adaptive-sizing wall-time target per shard
	// (0 = 1.5s).
	TargetShardTime time.Duration
	// MaxShardSize caps adaptive shards (0 = 128).
	MaxShardSize int
	// MaxAttempts caps how many times one work item is tried before the
	// run fails (0 = 3). Attempts may land on different workers.
	MaxAttempts int
	// BackoffBase and BackoffMax shape a failing worker's exponential
	// retry delay (defaults 100ms and 2s). Requeued work is immediately
	// stealable by other workers — only the worker that failed backs
	// off.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ProbeTimeout bounds each /v1/healthz liveness probe (0 = 5s). It
	// is deliberately independent of AckTimeout: liveness probes answer
	// "is this worker alive?", and a worker slow under load must not be
	// declared dead just because fast-path requests are impatient.
	ProbeTimeout time.Duration
	// AckTimeout bounds shard-ack posts (0 = 2s).
	AckTimeout time.Duration
	// LeaseTTL is each claimed shard's stream-inactivity lease, renewed
	// by every outcome line (0 = 5m). When it expires the claim is cut,
	// the undelivered remainder re-enters the queue, and the stalled
	// worker is quarantined. Size it above the longest single-scenario
	// compute time.
	LeaseTTL time.Duration
	// HTTPClient overrides the transport (nil = a default client with no
	// overall timeout, since shard streams are long-lived).
	HTTPClient *http.Client
	// OnOutcome, when non-nil, streams every per-position outcome as it
	// is merged (calls are serialised; order is scheduling-dependent,
	// exactly like a local sweep's observer).
	OnOutcome func(sweep.Outcome)
	// OnProgress, when non-nil, observes a Progress snapshot after every
	// scheduling transition (claims, streamed outcomes, acks, requeues).
	// Calls are serialised. fairctl wires this to the coordinator's
	// /v1/progress endpoint.
	OnProgress func(Progress)
	// Metrics, when non-nil, receives the coordinator-side
	// fairness_cluster_* counters and gauges (shard lifecycle, streamed
	// outcomes, lease expiries, quarantines, live workers, per-worker
	// rate EWMAs). Counters are cumulative across runs sharing the
	// registry; per-run totals stay on Progress. Engine-driven runs
	// inherit the engine's registry automatically.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives the scheduling span as NDJSON trace
	// events: cluster_start, shard_claim, shard_ack, shard_requeue,
	// lease_expiry, worker_quarantine, cluster_waiting, cluster_done —
	// plus the paired span_start/span_end events of the run's distributed
	// trace (sweep, gate_wait, dispatch, merge spans; worker-side eval
	// spans are parented under dispatch via the X-Fairness-Trace header).
	Tracer *telemetry.Tracer
	// Recorder, when non-nil, retains the run's completed coordinator
	// spans in a bounded in-memory ring — what GET /v1/traces serves and
	// `fairctl trace` assembles into a span tree. The run's trace roots
	// under the span context carried by ctx (telemetry.ContextWithSpan),
	// so an engine- or job-driven run joins its caller's trace; without
	// one it mints a fresh trace_id.
	Recorder *telemetry.FlightRecorder
	// Gate, when non-nil, is consulted before every shard is cut: the
	// worker loop asks for `want` work items and receives permission for
	// `granted` (possibly fewer), holding the grant until the shard
	// completes or its remainder is requeued. A gate shared across
	// concurrent Runs decides whose shard dispatches next — this is how
	// the multi-tenant job scheduler interleaves jobs at true
	// shard-dispatch granularity without touching merge semantics.
	Gate DispatchGate
}

// DispatchGate arbitrates shard dispatch across concurrent runs.
// Acquire blocks until the caller may dispatch up to granted work items
// (1 <= granted <= want), the gate is closed for this run (granted 0),
// or ctx is cancelled. The returned release must be called exactly once
// when the granted items are no longer in flight — after the shard is
// merged and acked, or after its remainder is requeued.
type DispatchGate interface {
	Acquire(ctx context.Context, want int) (granted int, release func(), err error)
}

// Health is one worker's /v1/healthz view, as probed by the coordinator
// (and surfaced by `fairctl status`).
type Health struct {
	URL              string  `json:"url"`
	OK               bool    `json:"ok"`
	Error            string  `json:"error,omitempty"`
	Status           string  `json:"status"`
	Backend          string  `json:"backend"`
	Cache            string  `json:"cache"`
	CacheHits        *uint64 `json:"cache_hits,omitempty"`
	CacheMisses      *uint64 `json:"cache_misses,omitempty"`
	ShardsClaimed    int64   `json:"shards_claimed"`
	ShardsInFlight   int64   `json:"shards_in_flight"`
	ShardsDone       int64   `json:"shards_done"`
	ShardsAcked      int64   `json:"shards_acked"`
	OutcomesStreamed int64   `json:"outcomes_streamed"`
	ScenariosPerSec  float64 `json:"scenarios_per_sec"`
	UptimeMS         int64   `json:"uptime_ms"`
}

// NormalizeWorkerURL turns "host:port" or a full URL into a canonical
// scheme-qualified base URL without a trailing slash.
func NormalizeWorkerURL(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return s
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// Probe fetches one worker's /v1/healthz.
func Probe(ctx context.Context, client *http.Client, url string, timeout time.Duration) Health {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	url = NormalizeWorkerURL(url)
	h := Health{URL: url}
	probeCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	resp, err := client.Do(req)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.Error = fmt.Sprintf("healthz status %d", resp.StatusCode)
		return h
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		h.Error = err.Error()
		return h
	}
	h.URL = url // healthz bodies don't carry the URL; keep the probe's
	h.OK = h.Status == "ok"
	if !h.OK && h.Error == "" {
		h.Error = fmt.Sprintf("status %q", h.Status)
	}
	return h
}

// Status probes every worker concurrently — the `fairctl status` engine.
func Status(ctx context.Context, workers []string, client *http.Client, timeout time.Duration) []Health {
	out := make([]Health, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			out[i] = Probe(ctx, client, w, timeout)
		}(i, w)
	}
	wg.Wait()
	return out
}

// ShardID names a shard after its content: the SHA-256 of the scenario
// hashes it carries. Identical shards claim under identical IDs on every
// worker and every retry, which is what makes reassignment idempotent.
func ShardID(hashes []string) string {
	h := sha256.New()
	for _, s := range hashes {
		h.Write([]byte(s))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// workItem is one unique scenario awaiting distribution.
type workItem struct {
	hash string
	spec scenario.Spec
}

// task is one cut shard: a batch of work items under a content id.
type task struct {
	id     string
	hashes []string
	specs  []scenario.Spec
}

// newTask assembles a shard from a work-item batch.
func newTask(items []workItem) *task {
	hs := make([]string, len(items))
	sp := make([]scenario.Spec, len(items))
	for i, it := range items {
		hs[i] = it.hash
		sp[i] = it.spec
	}
	return &task{id: ShardID(hs), hashes: hs, specs: sp}
}

// adaptiveShardSize picks a shard size from a worker's throughput
// estimate: cold workers get a small probing shard, known workers get
// targetTime's worth of scenarios, capped at maxSize.
func adaptiveShardSize(rate float64, targetTime time.Duration, maxSize int) int {
	if rate <= 0 {
		return coldShardSize
	}
	n := int(rate * targetTime.Seconds())
	if n < 1 {
		n = 1
	}
	if n > maxSize {
		n = maxSize
	}
	return n
}

// Run distributes the scenario list across the worker pool and merges
// the workers' streams into one report with local-sweep semantics:
// outcomes in input order, identical scenarios computed once and fanned
// out to every position, evaluation errors failing the run, and
// cancellation returning the partial report with ctx.Err(). Completed
// outcomes are bit-identical to sweep.RunContext's for the same list —
// only the timing/cache bookkeeping (ElapsedMS, CacheHit, Stats) can
// differ, since those record where and how the work actually ran. This
// holds across every scheduling accident: a worker registering mid-run,
// a lease expiring mid-shard, a shard reassigned after a crash.
func Run(ctx context.Context, specs []scenario.Spec, opts Options) (*sweep.Report, error) {
	start := time.Now()

	// Prologue mirrors the local sweep runner: validate, normalise, hash,
	// group positions by content hash.
	norm := make([]scenario.Spec, len(specs))
	hashes := make([]string, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: scenario %d (%s): %w", i, s.Name, err)
		}
		norm[i] = s.Normalized()
		norm[i].Name = ""
		h, err := s.Hash()
		if err != nil {
			return nil, fmt.Errorf("cluster: scenario %d (%s): %w", i, s.Name, err)
		}
		hashes[i] = h
	}
	groups := make(map[string][]int, len(specs))
	uniq := make([]string, 0, len(specs))
	for i, h := range hashes {
		if _, seen := groups[h]; !seen {
			uniq = append(uniq, h)
		}
		groups[h] = append(groups[h], i)
	}

	backend := opts.Backend
	if backend == "" {
		backend = "montecarlo"
	}
	reg := opts.Registry
	registryMode := reg != nil
	if reg == nil {
		reg = NewRegistry(backend, 0)
	} else if err := reg.requireBackend(backend); err != nil {
		return nil, err
	}
	client := opts.HTTPClient
	if client == nil {
		// A private connection pool, drained when the run ends: a
		// coordinator must not leave keep-alive goroutines behind.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		defer tr.CloseIdleConnections()
		client = &http.Client{Transport: tr}
	}

	rep := &sweep.Report{Outcomes: make([]sweep.Outcome, len(specs))}
	rep.Stats.Scenarios = len(specs)

	tracker := newTracker(len(uniq), opts.OnProgress, func() int { return len(reg.Live()) },
		opts.Metrics, opts.Tracer)
	opts.Tracer.Emit("cluster_start",
		"backend", backend, "scenarios", len(specs), "unique", len(uniq),
		"registry_mode", registryMode, "static_workers", len(opts.Workers))

	// The run's trace: one sweep span covering the whole distributed run,
	// rooted under the caller's span (a job's root span, via ctx) or a
	// fresh trace. Every shard dispatch and gate wait below is a child.
	bag := telemetry.BaggageFrom(ctx)
	spanAttrs := []any{"backend", backend, "scenarios", len(specs), "unique", len(uniq)}
	if v, ok := bag["tenant"]; ok {
		spanAttrs = append(spanAttrs, "tenant", v)
	}
	if v, ok := bag["job"]; ok {
		spanAttrs = append(spanAttrs, "job", v)
	}
	runSpan := telemetry.StartSpan(opts.Tracer, opts.Recorder,
		telemetry.SpanContextFrom(ctx), "coordinator", "sweep", spanAttrs...)

	var (
		mu        sync.Mutex // serialises merging and OnOutcome
		computed  int
		trialsRun int64
		delivered = make(map[string]bool, len(uniq))
	)
	// deliver merges one unique scenario's outcome, fanning it out to
	// every position that requested it with the local runner's
	// position-level cache semantics: the first position carries the
	// compute cost, the rest are in-sweep deduplication hits. Delivery
	// is idempotent by content hash — the property that keeps the merged
	// report bit-identical under requeues and lease reassignment.
	deliver := func(h string, base sweep.Outcome, hit bool) bool {
		mu.Lock()
		defer mu.Unlock()
		if delivered[h] {
			return false
		}
		delivered[h] = true
		if !hit {
			computed++
			if opts.Cache != nil {
				// Fill the coordinator-side cache exactly as the local
				// runner would: the canonical, name-free outcome. (With a
				// shared cache dir the worker already wrote it; the atomic
				// store makes the rewrite harmless.)
				c := base
				c.Name = ""
				opts.Cache.Add(sweep.CacheKey(backend, h), c)
			}
		}
		for j, idx := range groups[h] {
			o := base
			o.Name = specs[idx].Name
			o.CacheHit = hit || j > 0
			if o.CacheHit {
				o.ElapsedMS = 0
			}
			rep.Outcomes[idx] = o
			if opts.OnOutcome != nil {
				opts.OnOutcome(o)
			}
		}
		return true
	}

	// Cache-aware scheduling: work items already in the shared store are
	// served locally and never shipped to a worker.
	items := make([]workItem, 0, len(uniq))
	localHits := 0
	for _, h := range uniq {
		if opts.Cache != nil {
			if out, ok := opts.Cache.Get(sweep.CacheKey(backend, h)); ok {
				deliver(h, out, true)
				localHits++
				continue
			}
		}
		items = append(items, workItem{hash: h, spec: norm[groups[h][0]]})
	}
	tracker.localHits(localHits)

	if len(items) > 0 {
		run := clusterRun{
			backend:      backend,
			span:         runSpan.Context(),
			labels:       shardLabels(bag),
			registryMode: registryMode,
			maxAttempts:  valueOr(opts.MaxAttempts, 3),
			backoffBase:  durationOr(opts.BackoffBase, 100*time.Millisecond),
			backoffMax:   durationOr(opts.BackoffMax, 2*time.Second),
			probeTimeout: durationOr(opts.ProbeTimeout, 5*time.Second),
			ackTimeout:   durationOr(opts.AckTimeout, 2*time.Second),
			lease:        durationOr(opts.LeaseTTL, defaultLeaseTTL),
			client:       client,
			deliver:      deliver,
			isDelivered: func(h string) bool {
				mu.Lock()
				defer mu.Unlock()
				return delivered[h]
			},
			addTrials: func(n int64) { mu.Lock(); trialsRun += n; mu.Unlock() },
		}
		if err := runScheduler(ctx, items, opts, run, reg, tracker); err != nil {
			tracker.done()
			if ctx.Err() != nil {
				// Partial report, local-sweep cancellation semantics.
				mu.Lock()
				rep.Partial = true
				filled := 0
				for _, o := range rep.Outcomes {
					if o.Hash != "" {
						filled++
					}
				}
				rep.Stats.Computed = computed
				rep.Stats.CacheHits = filled - computed
				rep.Stats.TrialsRun = trialsRun
				mu.Unlock()
				rep.Stats.WallMS = float64(time.Since(start).Microseconds()) / 1000
				opts.Tracer.Emit("cluster_done",
					"backend", backend, "partial", true,
					"computed", rep.Stats.Computed, "cache_hits", rep.Stats.CacheHits,
					"wall_ms", rep.Stats.WallMS)
				runSpan.End("partial", true, "computed", rep.Stats.Computed)
				return rep, ctx.Err()
			}
			runSpan.End("error", err.Error())
			return nil, err
		}
	}
	tracker.done()

	// The merge stage: final aggregation of the streamed outcomes into
	// the report's statistics. Per-outcome merging happened inline as the
	// streams arrived (inside each dispatch span); this span covers the
	// epilogue that seals the report.
	mergeSpan := telemetry.StartSpan(opts.Tracer, opts.Recorder,
		runSpan.Context(), "coordinator", "merge", "unique", len(uniq))
	mu.Lock()
	rep.Stats.Computed = computed
	rep.Stats.TrialsRun = trialsRun
	mu.Unlock()
	rep.Stats.CacheHits = len(specs) - rep.Stats.Computed
	rep.Stats.WallMS = float64(time.Since(start).Microseconds()) / 1000
	mergeSpan.End("computed", rep.Stats.Computed, "cache_hits", rep.Stats.CacheHits)
	opts.Tracer.Emit("cluster_done",
		"backend", backend, "scenarios", rep.Stats.Scenarios,
		"computed", rep.Stats.Computed, "cache_hits", rep.Stats.CacheHits,
		"local_cache_hits", localHits, "trials_run", rep.Stats.TrialsRun,
		"wall_ms", rep.Stats.WallMS)
	runSpan.End("computed", rep.Stats.Computed, "cache_hits", rep.Stats.CacheHits,
		"wall_ms", rep.Stats.WallMS)
	return rep, nil
}

// shardLabels extracts the shippable trace baggage (tenant, job) that
// rides each shard request so worker-side spans and pprof profiles can
// slice by tenant.
func shardLabels(bag map[string]string) map[string]string {
	var out map[string]string
	for _, k := range [...]string{"tenant", "job"} {
		if v, ok := bag[k]; ok && v != "" {
			if out == nil {
				out = make(map[string]string, 2)
			}
			out[k] = v
		}
	}
	return out
}

// valueOr and durationOr resolve zero-means-default knobs.
func valueOr(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func durationOr(v, def time.Duration) time.Duration {
	if v <= 0 {
		return def
	}
	return v
}

// clusterRun carries the resolved knobs and merge hooks into the
// scheduler.
type clusterRun struct {
	backend string
	// span is the run's sweep-span context: the parent of every
	// gate_wait/dispatch span, and (via the X-Fairness-Trace header) of
	// the workers' eval spans. labels is the shippable baggage (tenant,
	// job) stamped on shard requests.
	span         telemetry.SpanContext
	labels       map[string]string
	registryMode bool
	maxAttempts  int
	backoffBase  time.Duration
	backoffMax   time.Duration
	probeTimeout time.Duration
	ackTimeout   time.Duration
	lease        time.Duration
	client       *http.Client
	deliver      func(h string, base sweep.Outcome, hit bool) bool
	isDelivered  func(h string) bool
	addTrials    func(int64)
}

// sched is the shared scheduling state: one queue of undelivered work
// items, one loop per live worker cutting adaptively-sized shards off
// the head.
type sched struct {
	opts    Options
	run     clusterRun
	reg     *Registry
	tracker *tracker

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []workItem
	outstanding int            // items currently held by in-flight claims
	attempts    map[string]int // per-item failure counts
	loops       map[string]bool
	liveLoops   int
	finished    bool
	failed      error

	runCtx  context.Context
	runDone chan struct{}
	wg      sync.WaitGroup
}

// fail records the first terminal error and wakes everyone.
func (s *sched) fail(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// runScheduler drives the dynamic worker pool to completion: seed the
// static workers, spawn a loop per live member (and per member that
// registers later), and wait until every work item is delivered or the
// run fails.
func runScheduler(ctx context.Context, items []workItem, opts Options,
	run clusterRun, reg *Registry, tracker *tracker) error {
	// Seed static workers: drop unreachable ones, reject misconfigured
	// ones loudly.
	urls := make([]string, 0, len(opts.Workers))
	for _, w := range opts.Workers {
		if u := NormalizeWorkerURL(w); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) > 0 {
		for _, h := range Status(ctx, urls, run.client, run.probeTimeout) {
			if !h.OK {
				continue
			}
			if h.Backend != "" && h.Backend != run.backend {
				return fmt.Errorf("%w: %s runs %q, coordinator expects %q",
					ErrBackendMismatch, h.URL, h.Backend, run.backend)
			}
			reg.addStatic(h.URL, run.backend)
		}
	}
	if !run.registryMode && len(reg.Live()) == 0 {
		return fmt.Errorf("%w: none of %d configured workers answered /v1/healthz", ErrNoWorkers, len(urls))
	}

	runCtx, runCancel := context.WithCancel(ctx)
	defer runCancel()
	s := &sched{
		opts:     opts,
		run:      run,
		reg:      reg,
		tracker:  tracker,
		queue:    items,
		attempts: make(map[string]int, len(items)),
		loops:    make(map[string]bool),
		runCtx:   runCtx,
		runDone:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)

	// Cancellation watcher: a dead context is a terminal failure that
	// wakes the waiter and every idle loop.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-ctx.Done():
			s.fail(ctx.Err())
		case <-s.runDone:
		}
	}()

	// Supervisor: keep one loop running per live member. Registration
	// signals and a coarse ticker both trigger a re-scan, so a worker
	// registering mid-run joins within milliseconds. Registry-backed
	// runs that find themselves with work but no live worker WAIT for
	// one to register — loudly: the transition into the empty-pool wait
	// raises the fairness_cluster_waiting gauge and emits a
	// cluster_waiting trace event, instead of stalling silently.
	waiting := false
	checkWaiting := func() {
		if !run.registryMode {
			return
		}
		s.mu.Lock()
		queued := len(s.queue)
		workLeft := queued > 0 || s.outstanding > 0
		stalled := workLeft && s.failed == nil && !s.finished && len(reg.Live()) == 0
		s.mu.Unlock()
		if stalled == waiting {
			return
		}
		waiting = stalled
		if stalled {
			opts.Metrics.Gauge("fairness_cluster_waiting").Set(1)
			opts.Tracer.Emit("cluster_waiting",
				"reason", "no live workers", "queued", queued)
		} else {
			opts.Metrics.Gauge("fairness_cluster_waiting").Set(0)
		}
	}
	s.spawnLoops()
	checkWaiting()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(supervisorInterval)
		defer tick.Stop()
		for {
			select {
			case <-reg.Watch():
			case <-tick.C:
			case <-s.runDone:
				if waiting {
					waiting = false
					opts.Metrics.Gauge("fairness_cluster_waiting").Set(0)
				}
				return
			}
			s.spawnLoops()
			checkWaiting()
		}
	}()

	// Wait for delivery of every item, or the first terminal failure.
	// With a Registry and no live worker the wait simply continues —
	// self-organizing pools fill up, they don't fail empty.
	s.mu.Lock()
	for s.failed == nil && !(len(s.queue) == 0 && s.outstanding == 0) {
		s.cond.Wait()
	}
	s.finished = true
	err := s.failed
	s.mu.Unlock()
	s.cond.Broadcast()
	runCancel()
	close(s.runDone)
	s.wg.Wait()
	return err
}

// spawnLoops starts a worker loop for every live member without one.
func (s *sched) spawnLoops() {
	for _, m := range s.reg.Live() {
		s.mu.Lock()
		if s.finished || s.failed != nil {
			s.mu.Unlock()
			return
		}
		if !s.loops[m.URL] {
			s.loops[m.URL] = true
			s.liveLoops++
			s.wg.Add(1)
			go s.workerLoop(m.URL)
		}
		s.mu.Unlock()
	}
}

// shardSizeFor picks the next shard size for a worker.
func (s *sched) shardSizeFor(url string) int {
	if s.opts.ShardSize > 0 {
		return s.opts.ShardSize
	}
	return adaptiveShardSize(s.reg.Rate(url),
		durationOr(s.opts.TargetShardTime, defaultTargetShardTime),
		valueOr(s.opts.MaxShardSize, defaultMaxShardSize))
}

// workerLoop is one worker's claim cycle: cut a shard off the queue,
// claim it, merge the stream, repeat. It exits when the run ends or the
// worker proves dead or stuck — in which case its unfinished items are
// already back on the queue for the others.
func (s *sched) workerLoop(url string) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.loops, url)
		s.liveLoops--
		workLeft := len(s.queue) > 0 || s.outstanding > 0
		if s.liveLoops == 0 && workLeft && !s.run.registryMode &&
			s.failed == nil && !s.finished {
			// Static pools cannot grow back: fail rather than deadlock.
			s.failed = fmt.Errorf("%w: all workers lost mid-run", ErrNoWorkers)
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}()

	consecFails := 0
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && s.outstanding > 0 && s.failed == nil && !s.finished {
			s.cond.Wait()
		}
		if s.failed != nil || s.finished || len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		want := min(s.shardSizeFor(url), len(s.queue))
		s.mu.Unlock()

		// Ask the dispatch gate (if any) before cutting the shard. The
		// grant is held until the items are merged or requeued; the queue
		// is re-checked under lock afterwards because other loops may
		// have drained it while this one waited at the gate. The wait is
		// a gate_wait span under the run — the fair-share queueing stage
		// of the trace's per-stage breakdown.
		release := func() {}
		granted := want
		if s.opts.Gate != nil {
			gw := telemetry.StartSpan(s.opts.Tracer, s.opts.Recorder,
				s.run.span, "coordinator", "gate_wait", "worker", url, "want", want)
			var err error
			granted, release, err = s.opts.Gate.Acquire(s.runCtx, want)
			gw.End("granted", granted)
			if err != nil {
				return
			}
			if granted <= 0 {
				release()
				return
			}
		}

		s.mu.Lock()
		if s.failed != nil || s.finished {
			s.mu.Unlock()
			release()
			return
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			release()
			continue
		}
		n := min(granted, len(s.queue))
		batch := make([]workItem, n)
		copy(batch, s.queue[:n])
		s.queue = s.queue[n:]
		s.outstanding += n
		s.mu.Unlock()

		t := newTask(batch)
		s.tracker.claim(t.id, url, len(batch))
		// Each claim attempt is its own dispatch span under the run span.
		// A requeued shard's next attempt mints a fresh dispatch span on
		// the same trace — retries keep the trace_id, never reuse spans.
		dsp := telemetry.StartSpan(s.opts.Tracer, s.opts.Recorder,
			s.run.span, "coordinator", "dispatch",
			"shard", t.id, "worker", url, "scenarios", len(batch))
		start := time.Now()
		sum, deliveredOut, err := s.claimShard(url, t, dsp.Context())
		if err == nil {
			s.reg.ObserveRate(url, len(batch), time.Since(start))
			s.opts.Metrics.Gauge("fairness_cluster_worker_rate", "worker", url).Set(s.reg.Rate(url))
			s.run.addTrials(sum.TrialsRun)
			ackShard(s.run.client, url, t.id, s.run.ackTimeout)
			s.tracker.acked(t.id)
			dsp.End("status", "acked", "trials", sum.TrialsRun)
			s.mu.Lock()
			s.outstanding -= n
			s.mu.Unlock()
			release()
			s.cond.Broadcast()
			consecFails = 0
			continue
		}

		// Failure: whatever streamed before the cut stays merged (with a
		// trials estimate, since the summary never arrived); only the
		// undelivered remainder re-enters the queue.
		for _, o := range deliveredOut {
			s.run.addTrials(estimateTrials(o))
		}
		var remainder []workItem
		for _, it := range batch {
			if !s.run.isDelivered(it.hash) {
				remainder = append(remainder, it)
			}
		}
		leaseExpired := errors.Is(err, errLeaseExpired)
		dsp.End("status", "requeued", "error", err.Error(),
			"delivered", len(deliveredOut), "remainder", len(remainder))
		s.mu.Lock()
		s.outstanding -= n
		if s.failed == nil && !s.finished {
			for _, it := range remainder {
				s.attempts[it.hash]++
				if s.attempts[it.hash] >= s.run.maxAttempts {
					s.failed = fmt.Errorf("%w: item %.12s after %d attempts (last worker %s): %v",
						ErrShard, it.hash, s.attempts[it.hash], url, err)
					break
				}
			}
			s.queue = append(s.queue, remainder...)
		}
		terminal := s.failed != nil
		s.mu.Unlock()
		release()
		s.cond.Broadcast()
		s.tracker.requeued(t.id)
		if terminal || s.runCtx.Err() != nil {
			return
		}
		if leaseExpired {
			// The worker is answering healthz but not finishing work —
			// quarantine it so it cannot keep reclaiming the queue.
			s.opts.Metrics.Counter("fairness_cluster_lease_expiry_total").Inc()
			s.opts.Tracer.Emit("lease_expiry", "worker", url, "shard", t.id)
			s.quarantine(url, "lease expired")
			return
		}
		if !Probe(s.runCtx, s.run.client, url, s.run.probeTimeout).OK {
			s.quarantine(url, "health probe failed")
			return
		}
		// Alive but failing: back off this worker only; the requeued
		// items are already stealable by everyone else. The shift is
		// capped — consecFails is unbounded on a multi-worker pool
		// (other workers absorb the retry budget), and an overflowed
		// shift would turn the backoff negative and busy-loop.
		consecFails++
		d := s.run.backoffMax
		if shift := consecFails - 1; shift < 16 {
			d = min(s.run.backoffBase<<shift, s.run.backoffMax)
		}
		select {
		case <-time.After(d):
		case <-s.runCtx.Done():
			return
		}
	}
}

// quarantine penalizes a misbehaving worker in the registry and records
// the event on the run's metrics and trace stream.
func (s *sched) quarantine(url, reason string) {
	s.reg.Penalize(url)
	s.opts.Metrics.Counter("fairness_cluster_worker_quarantine_total").Inc()
	s.opts.Tracer.Emit("worker_quarantine", "worker", url, "reason", reason)
}

// estimateTrials approximates the Monte-Carlo trials behind one merged
// outcome when the shard summary (the exact count) never arrived: the
// spec's trial budget for sampling backends, nothing for cache hits or
// the closed-form theory backend.
func estimateTrials(o sweep.Outcome) int64 {
	if o.CacheHit || o.Backend == "theory" {
		return 0
	}
	return int64(o.Spec.Trials)
}

// claimShard runs one claim/stream exchange, merging outcomes into the
// report AS THEY STREAM (so progress is live and a torn stream keeps
// its completed prefix) under a per-shard inactivity lease. It succeeds
// only when the summary line confirms the shard and every expected hash
// arrived; any shortfall — transport error, HTTP error, torn stream,
// expired lease, short shard — is a retryable failure whose undelivered
// remainder the caller requeues. spanCtx is the dispatch span's context,
// shipped on the TraceHeader so the worker's eval span joins the trace.
func (s *sched) claimShard(url string, t *task, spanCtx telemetry.SpanContext) (shardSummary, []sweep.Outcome, error) {
	var deliveredOut []sweep.Outcome
	body, err := json.Marshal(shardRequest{ShardID: t.id, Scenarios: t.specs, Labels: s.run.labels})
	if err != nil {
		return shardSummary{}, nil, err
	}

	// The lease watchdog: any stream inactivity longer than the lease
	// cancels the claim. Every accepted line renews it.
	claimCtx, cancel := context.WithCancel(s.runCtx)
	defer cancel()
	var expired atomic.Bool
	watchdog := time.AfterFunc(s.run.lease, func() {
		expired.Store(true)
		cancel()
	})
	defer watchdog.Stop()
	leaseErr := func(err error) error {
		if expired.Load() {
			return fmt.Errorf("%w after %v: %v", errLeaseExpired, s.run.lease, err)
		}
		return err
	}

	req, err := http.NewRequestWithContext(claimCtx, http.MethodPost, url+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return shardSummary{}, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if spanCtx.Valid() {
		req.Header.Set(telemetry.TraceHeader, spanCtx.HeaderValue())
	}
	resp, err := s.run.client.Do(req)
	if err != nil {
		return shardSummary{}, nil, leaseErr(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return shardSummary{}, nil, fmt.Errorf("shard claim status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}

	want := make(map[string]bool, len(t.hashes))
	for _, h := range t.hashes {
		want[h] = true
	}
	deliveredHere := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		watchdog.Reset(s.run.lease)
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Done  *bool  `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return shardSummary{}, deliveredOut, fmt.Errorf("undecodable stream line: %v", err)
		}
		if probe.Done != nil {
			var sum shardSummary
			if err := json.Unmarshal(line, &sum); err != nil {
				return shardSummary{}, deliveredOut, err
			}
			if sum.Error != "" {
				return sum, deliveredOut, fmt.Errorf("worker error: %s", sum.Error)
			}
			if sum.ShardID != t.id {
				return sum, deliveredOut, fmt.Errorf("summary for shard %.12s, expected %.12s", sum.ShardID, t.id)
			}
			if deliveredHere != len(t.hashes) {
				return sum, deliveredOut, fmt.Errorf("stream delivered %d of %d outcomes", deliveredHere, len(t.hashes))
			}
			return sum, deliveredOut, nil
		}
		if probe.Error != "" {
			return shardSummary{}, deliveredOut, fmt.Errorf("worker error: %s", probe.Error)
		}
		var o sweep.Outcome
		if err := json.Unmarshal(line, &o); err != nil {
			return shardSummary{}, deliveredOut, fmt.Errorf("undecodable outcome line: %v", err)
		}
		if !want[o.Hash] {
			continue // stray outcome from another run's namespace; ignore
		}
		if s.run.deliver(o.Hash, o, o.CacheHit) {
			deliveredHere++
			deliveredOut = append(deliveredOut, o)
			s.tracker.streamed(t.id, true)
		} else {
			s.tracker.streamed(t.id, false)
		}
	}
	if err := sc.Err(); err != nil {
		return shardSummary{}, deliveredOut, leaseErr(err)
	}
	return shardSummary{}, deliveredOut, leaseErr(fmt.Errorf("stream ended without a summary line"))
}

// ackShard tells the worker its shard was merged; best-effort.
func ackShard(client *http.Client, url, shardID string, timeout time.Duration) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	body, _ := json.Marshal(map[string]string{"shard_id": shardID})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/shard/ack", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}
}
