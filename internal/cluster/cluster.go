package cluster

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Cluster errors. Per-shard worker failures retry transparently; these
// surface only when the run as a whole cannot make progress.
var (
	// ErrNoWorkers reports a run with no reachable worker (and work left
	// to do after the cache pre-scan).
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrBackendMismatch reports a worker whose configured backend differs
	// from the coordinator's: silently merging outcomes computed under a
	// different evaluator would poison the report and the shared cache.
	ErrBackendMismatch = errors.New("cluster: worker backend mismatch")
	// ErrShard reports a shard that exhausted its retry budget.
	ErrShard = errors.New("cluster: shard failed")
)

// Options configures a distributed sweep.
type Options struct {
	// Workers lists the fairnessd base URLs ("host:port" or full URL)
	// the coordinator fans shards out to.
	Workers []string
	// Backend is the evaluator the workers are expected to run
	// ("" = montecarlo). Every worker's /v1/healthz must report the same
	// backend, or the run fails with ErrBackendMismatch; the name also
	// namespaces shared-cache keys exactly as a local sweep would.
	Backend string
	// Cache, when non-nil, is consulted before scheduling — work items
	// already present are served locally and never leave the coordinator
	// — and filled as worker outcomes arrive. Point it at the same
	// content-addressed directory the workers share and the whole
	// cluster warm-starts for free.
	Cache sweep.CacheStore
	// ShardSize is the number of unique work items per shard; 0 picks
	// ceil(items / (4·workers)), capped to [1, 16], so every worker gets
	// several steals even on modest grids.
	ShardSize int
	// MaxAttempts caps how many times one shard is tried before the run
	// fails (0 = 3). Attempts may land on different workers.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential retry delay
	// (defaults 100ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ProbeTimeout bounds each /v1/healthz probe (0 = 2s).
	ProbeTimeout time.Duration
	// HTTPClient overrides the transport (nil = a default client with no
	// overall timeout, since shard streams are long-lived).
	HTTPClient *http.Client
	// OnOutcome, when non-nil, streams every per-position outcome as its
	// shard is merged (calls are serialised; order is scheduling-
	// dependent, exactly like a local sweep's observer).
	OnOutcome func(sweep.Outcome)
}

// Health is one worker's /v1/healthz view, as probed by the coordinator
// (and surfaced by `fairctl status`).
type Health struct {
	URL            string  `json:"url"`
	OK             bool    `json:"ok"`
	Error          string  `json:"error,omitempty"`
	Status         string  `json:"status"`
	Backend        string  `json:"backend"`
	Cache          string  `json:"cache"`
	CacheHits      *uint64 `json:"cache_hits,omitempty"`
	CacheMisses    *uint64 `json:"cache_misses,omitempty"`
	ShardsInFlight int64   `json:"shards_in_flight"`
	ShardsDone     int64   `json:"shards_done"`
	UptimeMS       int64   `json:"uptime_ms"`
}

// NormalizeWorkerURL turns "host:port" or a full URL into a canonical
// scheme-qualified base URL without a trailing slash.
func NormalizeWorkerURL(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return s
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// Probe fetches one worker's /v1/healthz.
func Probe(ctx context.Context, client *http.Client, url string, timeout time.Duration) Health {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	url = NormalizeWorkerURL(url)
	h := Health{URL: url}
	probeCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	resp, err := client.Do(req)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.Error = fmt.Sprintf("healthz status %d", resp.StatusCode)
		return h
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		h.Error = err.Error()
		return h
	}
	h.URL = url // healthz bodies don't carry the URL; keep the probe's
	h.OK = h.Status == "ok"
	if !h.OK && h.Error == "" {
		h.Error = fmt.Sprintf("status %q", h.Status)
	}
	return h
}

// Status probes every worker concurrently — the `fairctl status` engine.
func Status(ctx context.Context, workers []string, client *http.Client, timeout time.Duration) []Health {
	out := make([]Health, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			out[i] = Probe(ctx, client, w, timeout)
		}(i, w)
	}
	wg.Wait()
	return out
}

// ShardID names a shard after its content: the SHA-256 of the scenario
// hashes it carries. Identical shards claim under identical IDs on every
// worker and every retry, which is what makes reassignment idempotent.
func ShardID(hashes []string) string {
	h := sha256.New()
	for _, s := range hashes {
		h.Write([]byte(s))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// task is one shard on the queue.
type task struct {
	id       string
	hashes   []string
	specs    []scenario.Spec
	attempts int
}

// Run distributes the scenario list across the configured workers and
// merges their streams into one report with local-sweep semantics:
// outcomes in input order, identical scenarios computed once and fanned
// out to every position, evaluation errors failing the run, and
// cancellation returning the partial report with ctx.Err(). Completed
// outcomes are bit-identical to sweep.RunContext's for the same list —
// only the timing/cache bookkeeping (ElapsedMS, CacheHit, Stats) can
// differ, since those record where and how the work actually ran.
func Run(ctx context.Context, specs []scenario.Spec, opts Options) (*sweep.Report, error) {
	start := time.Now()

	// Prologue mirrors the local sweep runner: validate, normalise, hash,
	// group positions by content hash.
	norm := make([]scenario.Spec, len(specs))
	hashes := make([]string, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: scenario %d (%s): %w", i, s.Name, err)
		}
		norm[i] = s.Normalized()
		norm[i].Name = ""
		h, err := s.Hash()
		if err != nil {
			return nil, fmt.Errorf("cluster: scenario %d (%s): %w", i, s.Name, err)
		}
		hashes[i] = h
	}
	groups := make(map[string][]int, len(specs))
	uniq := make([]string, 0, len(specs))
	for i, h := range hashes {
		if _, seen := groups[h]; !seen {
			uniq = append(uniq, h)
		}
		groups[h] = append(groups[h], i)
	}

	backend := opts.Backend
	if backend == "" {
		backend = "montecarlo"
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	backoffBase := opts.BackoffBase
	if backoffBase <= 0 {
		backoffBase = 100 * time.Millisecond
	}
	backoffMax := opts.BackoffMax
	if backoffMax <= 0 {
		backoffMax = 2 * time.Second
	}
	client := opts.HTTPClient
	if client == nil {
		// A private connection pool, drained when the run ends: a
		// coordinator must not leave keep-alive goroutines behind.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		defer tr.CloseIdleConnections()
		client = &http.Client{Transport: tr}
	}

	rep := &sweep.Report{Outcomes: make([]sweep.Outcome, len(specs))}
	rep.Stats.Scenarios = len(specs)

	var (
		mu        sync.Mutex // serialises merging and OnOutcome
		computed  int
		trialsRun int64
	)
	// deliver fans one unique scenario's outcome out to every position
	// that requested it, with the local runner's position-level cache
	// semantics: the first position carries the compute cost, the rest
	// are in-sweep deduplication hits.
	deliver := func(h string, base sweep.Outcome, hit bool) {
		mu.Lock()
		defer mu.Unlock()
		if !hit {
			computed++
		}
		for j, idx := range groups[h] {
			o := base
			o.Name = specs[idx].Name
			o.CacheHit = hit || j > 0
			if o.CacheHit {
				o.ElapsedMS = 0
			}
			rep.Outcomes[idx] = o
			if opts.OnOutcome != nil {
				opts.OnOutcome(o)
			}
		}
	}

	// Cache-aware scheduling: work items already in the shared store are
	// served locally and never shipped to a worker.
	items := make([]string, 0, len(uniq))
	for _, h := range uniq {
		if opts.Cache != nil {
			if out, ok := opts.Cache.Get(sweep.CacheKey(backend, h)); ok {
				deliver(h, out, true)
				continue
			}
		}
		items = append(items, h)
	}

	if len(items) > 0 {
		if err := runShards(ctx, items, norm, groups, rep, opts, clusterRun{
			backend:     backend,
			maxAttempts: maxAttempts,
			backoffBase: backoffBase,
			backoffMax:  backoffMax,
			client:      client,
			deliver:     deliver,
			addTrials:   func(n int64) { mu.Lock(); trialsRun += n; mu.Unlock() },
		}); err != nil {
			if ctx.Err() != nil {
				// Partial report, local-sweep cancellation semantics.
				mu.Lock()
				rep.Partial = true
				filled := 0
				for _, o := range rep.Outcomes {
					if o.Hash != "" {
						filled++
					}
				}
				rep.Stats.Computed = computed
				rep.Stats.CacheHits = filled - computed
				rep.Stats.TrialsRun = trialsRun
				mu.Unlock()
				rep.Stats.WallMS = float64(time.Since(start).Microseconds()) / 1000
				return rep, ctx.Err()
			}
			return nil, err
		}
	}

	mu.Lock()
	rep.Stats.Computed = computed
	rep.Stats.TrialsRun = trialsRun
	mu.Unlock()
	rep.Stats.CacheHits = len(specs) - rep.Stats.Computed
	rep.Stats.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return rep, nil
}

// clusterRun carries the resolved knobs and merge hooks into the pool.
type clusterRun struct {
	backend     string
	maxAttempts int
	backoffBase time.Duration
	backoffMax  time.Duration
	client      *http.Client
	deliver     func(h string, base sweep.Outcome, hit bool)
	addTrials   func(int64)
}

// runShards probes the workers, chunks the work items into shards and
// drives the work-stealing pool to completion.
func runShards(ctx context.Context, items []string, norm []scenario.Spec,
	groups map[string][]int, rep *sweep.Report, opts Options, run clusterRun) error {
	// Probe: drop unreachable workers, reject misconfigured ones loudly.
	urls := make([]string, 0, len(opts.Workers))
	for _, w := range opts.Workers {
		if u := NormalizeWorkerURL(w); u != "" {
			urls = append(urls, u)
		}
	}
	var live []string
	for _, h := range Status(ctx, urls, run.client, opts.ProbeTimeout) {
		if !h.OK {
			continue
		}
		if h.Backend != "" && h.Backend != run.backend {
			return fmt.Errorf("%w: %s runs %q, coordinator expects %q",
				ErrBackendMismatch, h.URL, h.Backend, run.backend)
		}
		live = append(live, h.URL)
	}
	if len(live) == 0 {
		return fmt.Errorf("%w: none of %d configured workers answered /v1/healthz", ErrNoWorkers, len(urls))
	}

	shardSize := opts.ShardSize
	if shardSize <= 0 {
		shardSize = (len(items) + 4*len(live) - 1) / (4 * len(live))
		if shardSize < 1 {
			shardSize = 1
		}
		if shardSize > 16 {
			shardSize = 16
		}
	}
	var tasks []*task
	for off := 0; off < len(items); off += shardSize {
		end := min(off+shardSize, len(items))
		hs := items[off:end]
		sp := make([]scenario.Spec, len(hs))
		for i, h := range hs {
			sp[i] = norm[groups[h][0]]
		}
		tasks = append(tasks, &task{id: ShardID(hs), hashes: hs, specs: sp})
	}

	queue := make(chan *task, len(tasks))
	for _, t := range tasks {
		queue <- t
	}
	var (
		remaining   atomic.Int64
		liveWorkers atomic.Int64
		errOnce     sync.Once
		firstErr    error
		wg          sync.WaitGroup
	)
	remaining.Store(int64(len(tasks)))
	liveWorkers.Store(int64(len(live)))
	finish := func(t *task, err error) {
		if err != nil {
			errOnce.Do(func() { firstErr = err })
		}
		if remaining.Add(-1) == 0 {
			close(queue)
		}
	}

	for _, url := range live {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for t := range queue {
				if ctx.Err() != nil {
					finish(t, ctx.Err())
					continue // drain: every queued task must be finished
				}
				if t.attempts > 0 {
					d := min(run.backoffBase<<(t.attempts-1), run.backoffMax)
					select {
					case <-time.After(d):
					case <-ctx.Done():
						finish(t, ctx.Err())
						continue
					}
				}
				outs, sum, err := claimShard(ctx, run.client, url, t)
				if err == nil {
					ackShard(run.client, url, t.id, opts.ProbeTimeout)
					run.addTrials(sum.TrialsRun)
					for _, h := range t.hashes {
						o := outs[h]
						// Fill the coordinator-side cache exactly as the local
						// runner would: the canonical, name-free outcome.
						// (With a shared cache dir the worker already wrote
						// it; the atomic store makes the rewrite harmless.)
						if opts.Cache != nil && !o.CacheHit {
							c := o
							c.Name = ""
							opts.Cache.Add(sweep.CacheKey(run.backend, h), c)
						}
						run.deliver(h, o, o.CacheHit)
					}
					finish(t, nil)
					continue
				}
				if ctx.Err() != nil {
					finish(t, ctx.Err())
					continue
				}
				t.attempts++
				if t.attempts >= run.maxAttempts {
					finish(t, fmt.Errorf("%w: shard %.12s after %d attempts (last worker %s): %v",
						ErrShard, t.id, t.attempts, url, err))
					continue
				}
				// Requeue for any worker to steal, then decide whether this
				// worker is still worth keeping in the pool.
				queue <- t
				if !Probe(ctx, run.client, url, opts.ProbeTimeout).OK {
					if liveWorkers.Add(-1) == 0 {
						// Last live worker leaving: fail whatever is queued so
						// the run terminates instead of deadlocking.
						for {
							select {
							case t, ok := <-queue:
								if !ok {
									return
								}
								finish(t, fmt.Errorf("%w: all workers lost mid-run", ErrNoWorkers))
							default:
								return
							}
						}
					}
					return
				}
			}
		}(url)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return firstErr
}

// claimShard runs one claim/stream exchange and parses the NDJSON
// response. It succeeds only when the summary line confirms every
// scenario streamed and every expected hash arrived; any shortfall —
// transport error, HTTP error, torn stream, short shard — is a retryable
// failure.
func claimShard(ctx context.Context, client *http.Client, url string, t *task) (map[string]sweep.Outcome, shardSummary, error) {
	body, err := json.Marshal(shardRequest{ShardID: t.id, Scenarios: t.specs})
	if err != nil {
		return nil, shardSummary{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, shardSummary{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, shardSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, shardSummary{}, fmt.Errorf("shard claim status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}

	outs := make(map[string]sweep.Outcome, len(t.hashes))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Done  *bool  `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, shardSummary{}, fmt.Errorf("undecodable stream line: %v", err)
		}
		if probe.Done != nil {
			var sum shardSummary
			if err := json.Unmarshal(line, &sum); err != nil {
				return nil, shardSummary{}, err
			}
			if sum.Error != "" {
				return nil, sum, fmt.Errorf("worker error: %s", sum.Error)
			}
			if sum.ShardID != t.id {
				return nil, sum, fmt.Errorf("summary for shard %.12s, expected %.12s", sum.ShardID, t.id)
			}
			for _, h := range t.hashes {
				if _, ok := outs[h]; !ok {
					return nil, sum, fmt.Errorf("stream missing outcome %.12s", h)
				}
			}
			return outs, sum, nil
		}
		if probe.Error != "" {
			return nil, shardSummary{}, fmt.Errorf("worker error: %s", probe.Error)
		}
		var o sweep.Outcome
		if err := json.Unmarshal(line, &o); err != nil {
			return nil, shardSummary{}, fmt.Errorf("undecodable outcome line: %v", err)
		}
		outs[o.Hash] = o
	}
	if err := sc.Err(); err != nil {
		return nil, shardSummary{}, err
	}
	return nil, shardSummary{}, fmt.Errorf("stream ended without a summary line")
}

// ackShard tells the worker its shard was merged; best-effort.
func ackShard(client *http.Client, url, shardID string, timeout time.Duration) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	body, _ := json.Marshal(map[string]string{"shard_id": shardID})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/shard/ack", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}
}
