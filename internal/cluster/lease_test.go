package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// stallingWorker speaks the real shard protocol but, on its first
// claim, streams exactly one genuine outcome and then goes silent
// without ever finishing the shard or acking — a worker that is alive
// (healthz keeps answering) but stuck. The coordinator's shard lease
// must expire, requeue the REMAINDER onto another worker, and keep the
// one streamed outcome without re-evaluating it.
type stallingWorker struct {
	mu      sync.Mutex
	stalled bool
}

func (sw *stallingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/v1/healthz":
		json.NewEncoder(w).Encode(map[string]string{"status": "ok", "backend": "montecarlo"})
	case r.Method == http.MethodPost && r.URL.Path == "/v1/shard":
		sw.mu.Lock()
		first := !sw.stalled
		sw.stalled = true
		sw.mu.Unlock()
		if !first {
			// Quarantine failed: a second claim reached the worker.
			http.Error(w, "stalled worker claimed twice", http.StatusServiceUnavailable)
			return
		}
		var req shardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			shardError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		// Evaluate and stream the first scenario for real...
		rep, err := sweep.Run(req.Scenarios[:1], sweep.Options{})
		if err != nil {
			shardError(w, http.StatusInternalServerError, err)
			return
		}
		enc.Encode(rep.Outcomes[0])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		// ...then stall until the coordinator cuts the lease.
		<-r.Context().Done()
	default:
		http.NotFound(w, r)
	}
}

// recordingWorker is a healthy worker that records every scenario hash
// it is asked to evaluate.
type recordingWorker struct {
	srv *httptest.Server

	mu     sync.Mutex
	hashes []string
}

func newRecordingWorker(t *testing.T) *recordingWorker {
	t.Helper()
	rw := &recordingWorker{}
	ws := NewWorkerServer(func(ctx context.Context, specs []scenario.Spec, on func(sweep.Outcome)) (sweep.Stats, error) {
		rw.mu.Lock()
		for _, s := range specs {
			rw.hashes = append(rw.hashes, s.MustHash())
		}
		rw.mu.Unlock()
		return LocalRunner(sweep.Options{})(ctx, specs, on)
	})
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok", "backend": "montecarlo"})
	})
	rw.srv = httptest.NewServer(mux)
	t.Cleanup(rw.srv.Close)
	return rw
}

func (rw *recordingWorker) claimed() []string {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return append([]string(nil), rw.hashes...)
}

func TestClusterLeaseExpiryRequeuesRemainderWithoutDoubleEvaluation(t *testing.T) {
	specs := testGrid(t)
	local, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	firstHash := specs[0].MustHash()

	stalling := httptest.NewServer(&stallingWorker{})
	t.Cleanup(stalling.Close)
	healthy := newRecordingWorker(t)

	// The stalling worker is the only member at launch, so it claims the
	// whole grid as one shard; the healthy worker registers mid-run and
	// must end up computing exactly the undelivered remainder.
	reg := NewRegistry("montecarlo", time.Minute)
	var outcomes []sweep.Outcome
	var mu sync.Mutex
	before := countGoroutines(0)
	go func() {
		time.Sleep(100 * time.Millisecond)
		reg.Register(healthy.srv.URL, "montecarlo", 0)
	}()
	rep, err := Run(context.Background(), specs, Options{
		Workers:     []string{stalling.URL},
		Registry:    reg,
		ShardSize:   64, // one big shard for the stalling worker
		LeaseTTL:    300 * time.Millisecond,
		BackoffBase: time.Millisecond,
		OnOutcome: func(o sweep.Outcome) {
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The merged report is indistinguishable from an undisturbed local
	// sweep: the pre-stall outcome survived, the remainder was
	// reassigned.
	if got, want := canonicalOutcomes(t, rep), canonicalOutcomes(t, local); got != want {
		t.Errorf("outcomes after lease expiry differ from local sweep:\n%s\n%s", got, want)
	}
	if rep.Partial {
		t.Error("report marked partial despite successful reassignment")
	}

	// Every position was delivered exactly once.
	mu.Lock()
	if len(outcomes) != len(specs) {
		t.Errorf("observer saw %d outcomes, want %d", len(outcomes), len(specs))
	}
	mu.Unlock()

	// No scenario was evaluated twice: the healthy worker computed each
	// remainder hash once and never saw the hash the stalling worker
	// already delivered.
	seen := make(map[string]int)
	for _, h := range healthy.claimed() {
		seen[h]++
	}
	if seen[firstHash] != 0 {
		t.Errorf("already-delivered scenario %.12s was re-evaluated on the healthy worker", firstHash)
	}
	for h, n := range seen {
		if n > 1 {
			t.Errorf("scenario %.12s evaluated %d times on the healthy worker", h, n)
		}
	}
	// Stats agree with a single evaluation per unique scenario.
	if rep.Stats.Computed != local.Stats.Computed {
		t.Errorf("computed = %d, want %d", rep.Stats.Computed, local.Stats.Computed)
	}

	// The stalled worker is quarantined: no longer in the live set.
	for _, m := range reg.Live() {
		if m.URL == stalling.URL {
			t.Error("stalled worker still live after lease expiry")
		}
	}

	if after := countGoroutines(before); after > before {
		t.Errorf("goroutines leaked across lease expiry: %d -> %d", before, after)
	}
}

func TestClusterZeroWorkersCompletesAfterSelfRegistration(t *testing.T) {
	// The acceptance path: a run launched against an EMPTY registry must
	// wait, pick up the two workers that self-register mid-run, and
	// produce a report bit-identical to a local sweep.
	specs := testGrid(t)
	local, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}

	w1, ws1 := startWorker(t, sweep.Options{}, "montecarlo")
	w2, ws2 := startWorker(t, sweep.Options{}, "montecarlo")
	reg := NewRegistry("montecarlo", time.Minute)
	go func() {
		time.Sleep(50 * time.Millisecond)
		reg.Register(w1.URL, "montecarlo", 0)
		time.Sleep(50 * time.Millisecond)
		reg.Register(w2.URL, "montecarlo", 0)
	}()

	var snapshots []Progress
	var mu sync.Mutex
	rep, err := Run(context.Background(), specs, Options{
		Registry: reg,
		OnProgress: func(p Progress) {
			mu.Lock()
			snapshots = append(snapshots, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalOutcomes(t, rep), canonicalOutcomes(t, local); got != want {
		t.Errorf("self-registered cluster outcomes differ from local sweep:\n%s\n%s", got, want)
	}
	ls, cs := local.Stats, rep.Stats
	if cs.Scenarios != ls.Scenarios || cs.Computed != ls.Computed ||
		cs.CacheHits != ls.CacheHits || cs.TrialsRun != ls.TrialsRun {
		t.Errorf("stats differ: cluster %+v, local %+v", cs, ls)
	}
	if ws1.Done()+ws2.Done() == 0 {
		t.Error("no self-registered worker completed any shard")
	}

	// Progress flowed: claims were observed, the final snapshot is done
	// with every unique item delivered.
	mu.Lock()
	defer mu.Unlock()
	if len(snapshots) == 0 {
		t.Fatal("no progress snapshots observed")
	}
	last := snapshots[len(snapshots)-1]
	uniq := make(map[string]bool)
	for _, s := range specs {
		uniq[s.MustHash()] = true
	}
	if !last.Done || last.Total != len(uniq) || last.Delivered != len(uniq) {
		t.Errorf("final progress snapshot: %+v (want done, %d/%d)", last, len(uniq), len(uniq))
	}
	if last.ShardsClaimed == 0 || last.OutcomesStreamed == 0 {
		t.Errorf("progress never saw claims/streams: %+v", last)
	}
}

func TestClusterSlowHealthzWorkerIsNotDeclaredDead(t *testing.T) {
	// Regression for the probe-vs-claim timeout conflation: a worker
	// whose healthz answers slowly — but well inside ProbeTimeout — must
	// survive the post-failure liveness check even when the fast-path
	// AckTimeout is much tighter than its healthz latency.
	specs := testGrid(t)
	local, err := sweep.Run(specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ws := NewWorkerServer(LocalRunner(sweep.Options{}))
	inner := http.NewServeMux()
	ws.Register(inner)
	var failedOnce sync.Once
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond) // slow, but alive
		json.NewEncoder(w).Encode(map[string]string{"status": "ok", "backend": "montecarlo"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		failed := false
		if r.Method == http.MethodPost && r.URL.Path == "/v1/shard" {
			failedOnce.Do(func() {
				failed = true
				http.Error(w, "transient claim failure", http.StatusServiceUnavailable)
			})
		}
		if !failed {
			inner.ServeHTTP(w, r)
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	rep, err := Run(context.Background(), specs, Options{
		Workers:      []string{srv.URL}, // the ONLY worker: dropping it fails the run
		AckTimeout:   20 * time.Millisecond,
		ProbeTimeout: 2 * time.Second,
		BackoffBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("slow-healthz worker was dropped: %v", err)
	}
	if got, want := canonicalOutcomes(t, rep), canonicalOutcomes(t, local); got != want {
		t.Error("outcomes differ from local sweep after transient claim failure")
	}
}
