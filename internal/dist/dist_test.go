package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		// I_x(1,1) = x (uniform CDF).
		{1, 1, 0.3, 0.3},
		{1, 1, 0.85, 0.85},
		// I_x(2,1) = x².
		{2, 1, 0.5, 0.25},
		// I_x(1,2) = 1 − (1−x)² = 2x − x².
		{1, 2, 0.5, 0.75},
		// Symmetric beta at its median.
		{5, 5, 0.5, 0.5},
		{40, 40, 0.5, 0.5},
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
	if RegIncBeta(2, 3, -0.5) != 0 || RegIncBeta(2, 3, 1.5) != 1 {
		t.Error("out-of-range x should clamp to {0,1}")
	}
	if !math.IsNaN(RegIncBeta(0, 1, 0.5)) {
		t.Error("non-positive shape should be NaN")
	}
}

func TestBetaMomentsAndCDF(t *testing.T) {
	d := Beta{Alpha: 2, Beta: 6}
	if got, want := d.Mean(), 0.25; math.Abs(got-want) > 1e-15 {
		t.Errorf("mean = %v", got)
	}
	if got, want := d.Variance(), 2.0*6.0/(64*9); math.Abs(got-want) > 1e-15 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	// CDF is a proper CDF: monotone, 0 at 0, 1 at 1.
	prev := -1.0
	for x := 0.0; x <= 1.0001; x += 0.05 {
		c := d.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = c
	}
	if d.CDF(0) != 0 || d.CDF(1) != 1 {
		t.Error("CDF endpoints wrong")
	}
	// Interval mass complements split around the median.
	med := 0.5
	total := d.IntervalProb(0, med) + d.IntervalProb(med, 1)
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("interval masses sum to %v", total)
	}
	if d.IntervalProb(0.8, 0.2) != 0 {
		t.Error("inverted interval should be 0")
	}
}

func TestBetaCDFMatchesEmpirical(t *testing.T) {
	// The ML-PoS limit shapes used in anger: Beta(a/w, b/w). Check the
	// CDF against a large simulated Beta sample built from ratios of
	// gamma-like draws is overkill; instead verify against a numerical
	// integration of the density.
	d := Beta{Alpha: 4, Beta: 16} // a=0.2, w=0.05
	const steps = 200000
	lbeta := func() float64 {
		l1, _ := math.Lgamma(d.Alpha)
		l2, _ := math.Lgamma(d.Beta)
		l3, _ := math.Lgamma(d.Alpha + d.Beta)
		return l1 + l2 - l3
	}()
	pdf := func(x float64) float64 {
		return math.Exp((d.Alpha-1)*math.Log(x) + (d.Beta-1)*math.Log1p(-x) - lbeta)
	}
	for _, x := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		// Trapezoidal integral of the density over (0, x].
		h := x / steps
		sum := 0.0
		for i := 1; i < steps; i++ {
			sum += pdf(float64(i) * h)
		}
		integral := h * (sum + pdf(x)/2)
		if got := d.CDF(x); math.Abs(got-integral) > 1e-6 {
			t.Errorf("CDF(%v) = %v, integral %v", x, got, integral)
		}
	}
}

func TestBinomialCDFSmallCases(t *testing.T) {
	// Binomial(3, 0.5): CDF = 1/8, 4/8, 7/8, 1.
	d := Binomial{N: 3, P: 0.5}
	want := []float64{0.125, 0.5, 0.875, 1}
	for k, w := range want {
		if got := d.CDF(k); math.Abs(got-w) > 1e-12 {
			t.Errorf("CDF(%d) = %v, want %v", k, got, w)
		}
	}
	if d.CDF(-1) != 0 || d.CDF(5) != 1 {
		t.Error("CDF tails wrong")
	}
	if got, want := d.Mean(), 1.5; got != want {
		t.Errorf("mean = %v", got)
	}
	if got, want := d.Variance(), 0.75; got != want {
		t.Errorf("variance = %v", got)
	}
}

func TestBinomialIntervalProbFractionScale(t *testing.T) {
	// Interval mass on the fraction scale: Binomial(10, 0.5) mass with
	// K/N in [0.4, 0.6] is P[K ∈ {4,5,6}] = (210+252+210)/1024.
	d := Binomial{N: 10, P: 0.5}
	want := 672.0 / 1024.0
	if got := d.IntervalProb(0.4, 0.6); math.Abs(got-want) > 1e-12 {
		t.Errorf("IntervalProb = %v, want %v", got, want)
	}
	// Whole support.
	if got := d.IntervalProb(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("full interval = %v", got)
	}
	// Boundary lattice points must be included despite fp noise:
	// 0.1*10 = 1 must count k=1.
	d2 := Binomial{N: 10, P: 0.1}
	if got := d2.IntervalProb(0.1, 0.1); got < 0.3 {
		t.Errorf("point mass at k=1 = %v, want ~0.387", got)
	}
}

func TestBinomialMatchesSampler(t *testing.T) {
	// Cross-check the analytic CDF against the rng package's sampler.
	d := Binomial{N: 40, P: 0.3}
	r := rng.New(5)
	const trials = 20000
	atMost15 := 0
	for i := 0; i < trials; i++ {
		if r.Binomial(40, 0.3) <= 15 {
			atMost15++
		}
	}
	emp := float64(atMost15) / trials
	if got := d.CDF(15); math.Abs(got-emp) > 0.01 {
		t.Errorf("CDF(15) = %v, empirical %v", got, emp)
	}
}

func TestHoeffdingTail(t *testing.T) {
	// 2 exp(−2γ²/n): γ=10, n=100 → 2e^−2.
	if got, want := HoeffdingTail(10, 100), 2*math.Exp(-2); math.Abs(got-want) > 1e-15 {
		t.Errorf("HoeffdingTail = %v, want %v", got, want)
	}
	if HoeffdingTail(0.1, 1000) != 1 {
		t.Error("weak deviation should clamp to 1")
	}
	if HoeffdingTail(1, 0) != 1 || HoeffdingTail(0, 10) != 1 {
		t.Error("degenerate inputs should be trivial")
	}
	// Monotone: larger deviations are rarer.
	if !(HoeffdingTail(30, 100) < HoeffdingTail(20, 100)) {
		t.Error("tail should shrink with gamma")
	}
}

func TestAzumaTail(t *testing.T) {
	if got, want := AzumaTail(2, 8), 2*math.Exp(-1); math.Abs(got-want) > 1e-15 {
		t.Errorf("AzumaTail = %v, want %v", got, want)
	}
	if AzumaTail(1, 0) != 1 || AzumaTail(0, 5) != 1 {
		t.Error("degenerate inputs should be trivial")
	}
	if AzumaTail(5, 1) > AzumaTail(1, 1) {
		t.Error("tail should shrink with gamma")
	}
}

func TestKSStatisticUniform(t *testing.T) {
	// A perfect uniform lattice has D = 1/(2n) against U(0,1) when points
	// sit mid-cell; our i/(n+1) points give D close to 1/(n+1).
	n := 99
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = float64(i+1) / float64(n+1)
	}
	uniform := func(x float64) float64 { return x }
	d := KSStatistic(samples, uniform)
	if d > 0.02 {
		t.Errorf("near-perfect uniform sample: D = %v", d)
	}
	// A grossly shifted sample must have a large D.
	for i := range samples {
		samples[i] = samples[i]*0.2 + 0.8
	}
	if d := KSStatistic(samples, uniform); d < 0.5 {
		t.Errorf("shifted sample: D = %v, want large", d)
	}
	if !math.IsNaN(KSStatistic(nil, uniform)) {
		t.Error("empty sample should be NaN")
	}
}

func TestKSPValueCalibration(t *testing.T) {
	// Uniform samples from the rng package should rarely be rejected, and
	// the p-value should be spread over (0,1): check one fixed seed gives
	// a comfortable p, and a wrong hypothesis is crushed.
	r := rng.New(11)
	n := 400
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = r.Float64()
	}
	uniform := func(x float64) float64 { return x }
	d := KSStatistic(samples, uniform)
	if p := KSPValue(d, n); p < 0.01 {
		t.Errorf("true-hypothesis p-value = %v, want > 0.01", p)
	}
	// Against a Beta(2,6) CDF the uniform sample must be rejected hard.
	wrong := Beta{Alpha: 2, Beta: 6}
	dw := KSStatistic(samples, wrong.CDF)
	if p := KSPValue(dw, n); p > 1e-6 {
		t.Errorf("wrong-hypothesis p-value = %v, want ~0", p)
	}
	// Edge cases.
	if KSPValue(0, 100) != 1 {
		t.Error("D=0 should give p=1")
	}
	if !math.IsNaN(KSPValue(0.1, 0)) {
		t.Error("n=0 should be NaN")
	}
}

func TestTailBoundsExtremes(t *testing.T) {
	// Huge gamma drives the exponent so far down the result underflows
	// through subnormals to zero; the bound must stay a probability.
	for _, gamma := range []float64{1e3, 1e6, 1e9, math.MaxFloat64} {
		h := HoeffdingTail(gamma, 10)
		if !(h >= 0 && h <= 1) {
			t.Errorf("HoeffdingTail(%g, 10) = %v, want in [0,1]", gamma, h)
		}
		a := AzumaTail(gamma, 10)
		if !(a >= 0 && a <= 1) {
			t.Errorf("AzumaTail(%g, 10) = %v, want in [0,1]", gamma, a)
		}
	}
	// A gamma chosen to land the exponent in the subnormal range must
	// produce a positive subnormal, not NaN or a negative value.
	// exp(-745) ≈ 5e-324 is the smallest positive subnormal.
	g := math.Sqrt(745.0 / 2.0 * 10.0)
	h := HoeffdingTail(g, 10)
	if !(h >= 0 && h <= 1) || math.IsNaN(h) {
		t.Errorf("HoeffdingTail near subnormal range = %v, want a probability", h)
	}
	// Degenerate inputs are vacuous bounds, never NaN.
	for _, tc := range []struct{ gamma, n float64 }{
		{0, 10}, {-1, 10}, {1, 0}, {1, -5}, {math.NaN(), 10},
	} {
		if got := HoeffdingTail(tc.gamma, tc.n); got != 1 {
			t.Errorf("HoeffdingTail(%v, %v) = %v, want 1", tc.gamma, tc.n, got)
		}
		if got := AzumaTail(tc.gamma, tc.n); got != 1 {
			t.Errorf("AzumaTail(%v, %v) = %v, want 1", tc.gamma, tc.n, got)
		}
	}
}

func TestKSNaNPropagation(t *testing.T) {
	uniform := func(x float64) float64 { return x }
	// A NaN sample poisons the statistic instead of being silently
	// dropped by NaN-insensitive comparisons.
	samples := []float64{0.1, math.NaN(), 0.7}
	d := KSStatistic(samples, uniform)
	if !math.IsNaN(d) {
		t.Fatalf("KSStatistic with NaN sample = %v, want NaN", d)
	}
	// ... and the NaN flows through to the p-value.
	if p := KSPValue(d, len(samples)); !math.IsNaN(p) {
		t.Errorf("KSPValue(NaN, 3) = %v, want NaN", p)
	}
	// Clean samples keep their finite statistic.
	if d := KSStatistic([]float64{0.1, 0.7}, uniform); math.IsNaN(d) {
		t.Error("KSStatistic without NaN must stay finite")
	}
}
