// Package dist provides the probability distributions and concentration
// bounds the fairness theory relies on: the Beta law of the ML-PoS
// Pólya-urn limit (Section 4.3), the Binomial law of PoW block counts
// (Section 4.2), the Hoeffding and Azuma tail bounds behind Theorems 4.2,
// 4.3 and 4.10, and the Kolmogorov–Smirnov machinery used to validate
// simulated reward fractions against their predicted limits.
//
// Everything is implemented from standard numerical recipes (log-gamma,
// regularised incomplete beta via Lentz's continued fraction, the
// asymptotic Kolmogorov distribution) with no external dependencies.
package dist

import (
	"math"
	"sort"
)

// lgamma returns ln Γ(x), discarding the sign (all our arguments are
// positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncBeta returns the regularised incomplete beta function I_x(a, b),
// the CDF of Beta(a, b) at x. Arguments outside [0, 1] clamp to {0, 1}.
func RegIncBeta(a, b, x float64) float64 {
	if a <= 0 || b <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of x^a (1-x)^b / (a B(a,b)) — the prefactor of the continued
	// fraction expansion.
	logFront := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log1p(-x)
	if x < (a+1)/(a+b+2) {
		return math.Exp(logFront) * betacf(a, b, x) / a
	}
	// Symmetry I_x(a,b) = 1 − I_{1−x}(b,a) for faster convergence.
	return 1 - math.Exp(logFront)*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Beta is the Beta(α, β) distribution on [0, 1] — the ML-PoS limit law
// Beta(a/w, (1−a)/w) of Section 4.3.
type Beta struct {
	Alpha float64
	Beta  float64
}

// Mean returns α/(α+β).
func (d Beta) Mean() float64 { return d.Alpha / (d.Alpha + d.Beta) }

// Variance returns αβ/((α+β)²(α+β+1)).
func (d Beta) Variance() float64 {
	s := d.Alpha + d.Beta
	return d.Alpha * d.Beta / (s * s * (s + 1))
}

// CDF returns P[X ≤ x].
func (d Beta) CDF(x float64) float64 { return RegIncBeta(d.Alpha, d.Beta, x) }

// IntervalProb returns P[lo ≤ X ≤ hi], clamped to be non-negative.
func (d Beta) IntervalProb(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	p := d.CDF(hi) - d.CDF(lo)
	if p < 0 {
		return 0
	}
	return p
}

// Binomial is the Binomial(N, P) distribution of PoW block counts.
type Binomial struct {
	N int
	P float64
}

// Mean returns NP.
func (d Binomial) Mean() float64 { return float64(d.N) * d.P }

// Variance returns NP(1−P).
func (d Binomial) Variance() float64 { return float64(d.N) * d.P * (1 - d.P) }

// CDF returns P[K ≤ k] via the incomplete-beta identity
// P[K ≤ k] = I_{1−p}(n−k, k+1).
func (d Binomial) CDF(k int) float64 {
	if d.N < 0 || d.P < 0 || d.P > 1 {
		return math.NaN()
	}
	if k < 0 {
		return 0
	}
	if k >= d.N {
		return 1
	}
	return RegIncBeta(float64(d.N-k), float64(k+1), 1-d.P)
}

// IntervalProb returns the probability that the *fraction* K/N lies in
// [lo, hi]: the binomial mass between ⌈N·lo⌉ and ⌊N·hi⌋. A small slack
// absorbs floating-point error in the products so that lattice points
// sitting exactly on a boundary are counted.
func (d Binomial) IntervalProb(lo, hi float64) float64 {
	if d.N <= 0 || hi < lo {
		return 0
	}
	nf := float64(d.N)
	kLo := int(math.Ceil(lo*nf - 1e-9))
	kHi := int(math.Floor(hi*nf + 1e-9))
	if kHi < kLo {
		return 0
	}
	p := d.CDF(kHi) - d.CDF(kLo-1)
	if p < 0 {
		return 0
	}
	return p
}

// HoeffdingTail returns the two-sided Hoeffding bound
// 2·exp(−2γ²/n) for the probability a sum of n [0,1]-bounded i.i.d.
// variables deviates from its mean by more than γ, clamped to [0, 1].
// This is the engine of Theorem 4.2.
func HoeffdingTail(gamma, n float64) float64 {
	// NaN fails every comparison, so check it explicitly: a bound that
	// cannot be computed is vacuous, not NaN.
	if !(n > 0) || !(gamma > 0) {
		return 1
	}
	b := 2 * math.Exp(-2*gamma*gamma/n)
	if b > 1 {
		return 1
	}
	return b
}

// AzumaTail returns the two-sided Azuma–Hoeffding bound
// 2·exp(−2γ²/denom) for a martingale whose increment ranges have summed
// squares denom/4 (the paper folds the 4 into denom), clamped to [0, 1].
// This is the engine of Theorems 4.3 and 4.10.
func AzumaTail(gamma, denom float64) float64 {
	if !(denom > 0) || !(gamma > 0) {
		return 1
	}
	b := 2 * math.Exp(-2*gamma*gamma/denom)
	if b > 1 {
		return 1
	}
	return b
}

// KSStatistic returns the Kolmogorov–Smirnov statistic
// D = sup_x |F_n(x) − F(x)| between the empirical CDF of the samples and
// the hypothesised CDF. It does not modify samples. A NaN sample has no
// place on either CDF, so it poisons the statistic to NaN (rather than
// being silently dropped by NaN-insensitive comparisons), and KSPValue
// propagates the NaN.
func KSStatistic(samples []float64, cdf func(float64) float64) float64 {
	n := len(samples)
	if n == 0 {
		return math.NaN()
	}
	for _, x := range samples {
		if math.IsNaN(x) {
			return math.NaN()
		}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	d := 0.0
	nf := float64(n)
	for i, x := range sorted {
		fx := cdf(x)
		if lo := fx - float64(i)/nf; lo > d {
			d = lo
		}
		if hi := float64(i+1)/nf - fx; hi > d {
			d = hi
		}
	}
	return d
}

// KSPValue returns the asymptotic two-sided p-value of a KS statistic d on
// n samples, using the Kolmogorov distribution with the Stephens
// small-sample correction λ = (√n + 0.12 + 0.11/√n)·d.
func KSPValue(d float64, n int) float64 {
	if n <= 0 || math.IsNaN(d) {
		return math.NaN()
	}
	if d <= 0 {
		return 1
	}
	sn := math.Sqrt(float64(n))
	lambda := (sn + 0.12 + 0.11/sn) * d
	return kolmogorovQ(lambda)
}

// kolmogorovQ evaluates Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2j²λ²}.
func kolmogorovQ(lambda float64) float64 {
	if lambda < 1e-8 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := math.Exp(-2 * float64(j*j) * lambda * lambda)
		sum += sign * term
		if term < 1e-16 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}
