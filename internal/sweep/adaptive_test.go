package sweep

import (
	"context"
	"testing"

	"repro/internal/scenario"
)

// adaptiveGrid is a grid whose tiny ε makes nearly every trial unfair,
// so the stopping rule resolves each scenario at its minimum prefix.
func adaptiveGrid(t *testing.T) []scenario.Spec {
	t.Helper()
	g := scenario.Grid{
		Base:      scenario.Spec{Blocks: 100, Trials: 400, Seed: 5, Eps: 0.02},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.2, 0.3},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestAdaptiveEvaluatorName(t *testing.T) {
	if got := (&MonteCarloEvaluator{}).Name(); got != "montecarlo" {
		t.Fatalf("exhaustive evaluator Name = %q, want montecarlo (CI and cache keys pin it)", got)
	}
	// Zero-value knobs normalise, so semantically identical rules share
	// a name — and therefore a cache namespace.
	zero := &MonteCarloEvaluator{Adaptive: &AdaptiveTrials{}}
	explicit := &MonteCarloEvaluator{Adaptive: &AdaptiveTrials{Confidence: 1e-3, MinTrials: 32, Batch: 8}}
	if zero.Name() != explicit.Name() {
		t.Errorf("normalised names differ: %q vs %q", zero.Name(), explicit.Name())
	}
	if zero.Name() == "montecarlo" {
		t.Error("adaptive evaluator must not share the exhaustive namespace")
	}
	for _, ev := range []*MonteCarloEvaluator{{}, zero} {
		if caps := ev.Capabilities(); caps.Backend != ev.Name() {
			t.Errorf("Capabilities().Backend = %q, Name() = %q — conformance requires they match", caps.Backend, ev.Name())
		}
	}
}

func TestWithTrialWorkersPreservesAdaptive(t *testing.T) {
	a := &AdaptiveTrials{MinTrials: 16}
	got := withTrialWorkers(&MonteCarloEvaluator{Adaptive: a}, 3)
	mc, ok := got.(*MonteCarloEvaluator)
	if !ok {
		t.Fatalf("withTrialWorkers returned %T", got)
	}
	if mc.TrialWorkers != 3 {
		t.Errorf("TrialWorkers = %d, want 3", mc.TrialWorkers)
	}
	if mc.Adaptive != a {
		t.Error("withTrialWorkers dropped the Adaptive configuration")
	}
	// An explicit TrialWorkers wins over the runner's resolution.
	pinned := &MonteCarloEvaluator{TrialWorkers: 2, Adaptive: a}
	if got := withTrialWorkers(pinned, 7); got != Evaluator(pinned) {
		t.Error("explicit TrialWorkers must pass through untouched")
	}
}

func TestAdaptiveSweepReportsTrialCounts(t *testing.T) {
	specs := adaptiveGrid(t)
	ev := &MonteCarloEvaluator{Adaptive: &AdaptiveTrials{MinTrials: 8, Batch: 8}}
	var base *Report
	for _, workers := range []int{1, 4} {
		rep, err := RunContext(context.Background(), specs, Options{Workers: workers, Evaluator: ev})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, o := range rep.Outcomes {
			if o.Backend != ev.Name() {
				t.Errorf("outcome %d backend = %q, want %q", i, o.Backend, ev.Name())
			}
			if o.TrialsBudget != int64(specs[i].Trials) {
				t.Errorf("outcome %d budget = %d, want %d", i, o.TrialsBudget, specs[i].Trials)
			}
			if !o.EarlyStopped || o.TrialsRun >= o.TrialsBudget {
				t.Errorf("outcome %d did not stop early: ran %d of %d", i, o.TrialsRun, o.TrialsBudget)
			}
			if !(o.AchievedEps > 0) || !(o.AchievedDelta > 0 && o.AchievedDelta <= 1) {
				t.Errorf("outcome %d achieved eps/delta = %v/%v, want positive certificate", i, o.AchievedEps, o.AchievedDelta)
			}
		}
		if base == nil {
			base = rep
			continue
		}
		for i := range base.Outcomes {
			a, b := base.Outcomes[i], rep.Outcomes[i]
			if a.TrialsRun != b.TrialsRun || a.Verdict != b.Verdict ||
				a.AchievedEps != b.AchievedEps || a.AchievedDelta != b.AchievedDelta {
				t.Errorf("workers=%d outcome %d differs:\n%+v\n%+v", workers, i, a, b)
			}
		}
		if base.Stats.TrialsRun != rep.Stats.TrialsRun {
			t.Errorf("stats trials differ across worker counts: %d vs %d", base.Stats.TrialsRun, rep.Stats.TrialsRun)
		}
	}
}

func TestExhaustiveSweepStillReportsBudget(t *testing.T) {
	specs := quickGrid(t)[:1]
	rep, err := Run(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.EarlyStopped {
		t.Error("exhaustive run reported EarlyStopped")
	}
	if o.TrialsRun != int64(specs[0].Trials) || o.TrialsBudget != o.TrialsRun {
		t.Errorf("TrialsRun/Budget = %d/%d, want %d/%d", o.TrialsRun, o.TrialsBudget, specs[0].Trials, specs[0].Trials)
	}
	if !(o.AchievedEps > 0) {
		t.Errorf("achieved eps = %v, want > 0 even without early stopping", o.AchievedEps)
	}
}
