package sweep

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

func TestDiskCacheSurvivesProcessRestart(t *testing.T) {
	// The acceptance scenario: process one computes a sweep against a
	// disk cache; a fresh DiskCache instance over the same directory
	// (standing in for a second process) answers the same sweep entirely
	// from disk.
	dir := t.TempDir()
	specs := quickGrid(t)

	first, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(specs, Options{Cache: first})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Computed != len(specs) {
		t.Fatalf("cold stats: %+v", cold.Stats)
	}
	if first.Len() != len(specs) {
		t.Fatalf("disk cache holds %d entries, want %d", first.Len(), len(specs))
	}

	second, err := NewDiskCache(dir) // fresh instance, no shared memory
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(specs, Options{Cache: second})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Computed != 0 || warm.Stats.CacheHits != len(specs) || warm.Stats.TrialsRun != 0 {
		t.Fatalf("second process should be all hits: %+v", warm.Stats)
	}
	for i := range specs {
		if warm.Outcomes[i].Verdict != cold.Outcomes[i].Verdict {
			t.Errorf("outcome %d changed across processes", i)
		}
		if !warm.Outcomes[i].CacheHit {
			t.Errorf("outcome %d not marked as hit", i)
		}
	}
	hits, misses := second.Counters()
	if hits != uint64(len(specs)) || misses != 0 {
		t.Errorf("second-instance counters: %d hits, %d misses", hits, misses)
	}
}

func TestDiskCacheCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.Spec{Protocol: "pow", Stake: 0.2, Blocks: 200, Trials: 20, Seed: 3}
	if _, err := Run([]scenario.Spec{spec}, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// Corrupt every stored entry in place.
	err = filepath.WalkDir(dir, func(path string, e os.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("{torn json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run([]scenario.Spec{spec}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Computed != 1 {
		t.Errorf("corrupt entry should recompute: %+v", rep.Stats)
	}
	// The recomputed outcome was re-cached cleanly.
	again, err := Run([]scenario.Spec{spec}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.CacheHits != 1 {
		t.Errorf("self-healed entry should hit: %+v", again.Stats)
	}
}

func TestDiskCacheSharedAcrossBackends(t *testing.T) {
	// One directory may serve several backends; entries stay separate.
	dir := t.TempDir()
	cache, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.Spec{Protocol: "pow", Stake: 0.2, Blocks: 300, Trials: 10, Seed: 2}
	if _, err := Run([]scenario.Spec{spec}, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run([]scenario.Spec{spec}, Options{Cache: cache, Evaluator: &TheoryEvaluator{}}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("disk cache holds %d entries, want 2", cache.Len())
	}
	// Layout check: entries live under per-backend namespaces.
	for _, backend := range []string{"montecarlo", "theory"} {
		if _, err := os.Stat(filepath.Join(dir, backend)); err != nil {
			t.Errorf("missing %s namespace: %v", backend, err)
		}
	}
}

func TestDiskCacheMaxBytesEvicts(t *testing.T) {
	// The fairsweep -cache-max-bytes contract: a size-capped cache stays
	// within budget, evictions read as ordinary misses, and evicted
	// scenarios recompute and re-enter the store.
	dir := t.TempDir()
	cache, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := quickGrid(t)
	if _, err := Run(specs, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	full := cache.Len()
	if full != len(specs) {
		t.Fatalf("cache holds %d entries, want %d", full, len(specs))
	}
	// One stored outcome is a small JSON document; budget for roughly
	// half the grid and force a collection.
	var entryBytes int64
	filepath.WalkDir(dir, func(path string, e os.DirEntry, err error) error {
		if err == nil && !e.IsDir() && entryBytes == 0 {
			if fi, ferr := e.Info(); ferr == nil {
				entryBytes = fi.Size()
			}
		}
		return nil
	})
	if entryBytes == 0 {
		t.Fatal("no cache entries found on disk")
	}
	// Arming the cap enforces it immediately: no explicit GC call needed.
	cache.SetMaxBytes(entryBytes * int64(full) / 2)
	surviving := cache.Len()
	if surviving == 0 || surviving >= full {
		t.Fatalf("eviction left %d of %d entries, want a strict subset", surviving, full)
	}
	// The sweep self-heals: evicted scenarios recompute, survivors hit.
	// Disarm the budget first so the recomputes' own writes cannot evict
	// the survivors mid-sweep (cache semantics allow that — it would just
	// make the assertion scheduling-dependent).
	cache.SetMaxBytes(0)
	rep, err := Run(specs, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.CacheHits != surviving || rep.Stats.Computed != full-surviving {
		t.Errorf("want %d hits + %d recomputes, got %+v", surviving, full-surviving, rep.Stats)
	}
}
