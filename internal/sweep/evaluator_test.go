package sweep

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

func TestRunDeterministicAcrossAllWorkerCounts(t *testing.T) {
	// The satellite contract: Workers ∈ {1, 4, GOMAXPROCS} produce the
	// same report, outcome for outcome.
	specs := quickGrid(t)
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var base *Report
	for _, workers := range counts {
		rep, err := RunContext(context.Background(), specs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = rep
			continue
		}
		for i := range base.Outcomes {
			a, b := base.Outcomes[i], rep.Outcomes[i]
			if a.Hash != b.Hash || a.Verdict != b.Verdict || a.Equitability != b.Equitability ||
				a.ConvergenceBlock != b.ConvergenceBlock || a.Backend != b.Backend {
				t.Errorf("workers=%d outcome %d differs:\n%+v\n%+v", workers, i, a, b)
			}
		}
	}
}

// countGoroutines samples the goroutine count after a settle loop so
// already-exiting goroutines don't read as leaks.
func countGoroutines(settleBelow int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100 && n > settleBelow; i++ {
		time.Sleep(2 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestRunContextCancelMidSweepPartialReport(t *testing.T) {
	// Cancel after the first streamed outcome of a grid that would take
	// much longer to finish: the sweep must return promptly with a
	// partial report, ctx.Err(), and no leaked worker goroutines.
	g := scenario.Grid{
		Base:      scenario.Spec{Blocks: 4000, Trials: 400, Seed: 5},
		Protocols: []string{"pow", "mlpos", "slpos", "cpos", "fslpos"},
		Stake:     []float64{0.1, 0.2, 0.3, 0.4},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamed := 0
	start := time.Now()
	rep, err := RunContext(ctx, specs, Options{Workers: 2, OnOutcome: func(Outcome) {
		streamed++
		cancel()
	}})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || !rep.Partial {
		t.Fatalf("cancelled sweep must return a partial report, got %+v", rep)
	}
	filled := 0
	for _, o := range rep.Outcomes {
		if o.Hash != "" {
			filled++
		}
	}
	if filled == 0 || filled >= len(specs) {
		t.Errorf("partial report has %d/%d outcomes, want some but not all", filled, len(specs))
	}
	if filled != rep.Stats.Computed+rep.Stats.CacheHits {
		t.Errorf("stats inconsistent with filled outcomes: filled=%d stats=%+v", filled, rep.Stats)
	}
	// "Returns within one scenario": the 20-scenario grid at this scale
	// takes seconds; a cancelled run must come back well inside that.
	if full := 20 * elapsed / time.Duration(max(filled, 1)); elapsed > 5*time.Second && elapsed > full/2 {
		t.Errorf("cancelled sweep took %v for %d/%d outcomes — not prompt", elapsed, filled, len(specs))
	}
	// goleak-style accounting: the worker pool must drain completely.
	if after := countGoroutines(before); after > before {
		t.Errorf("goroutines leaked by cancelled sweep: %d -> %d", before, after)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, quickGrid(t), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if !rep.Partial || rep.Stats.Computed != 0 || rep.Stats.TrialsRun != 0 {
		t.Errorf("pre-cancelled sweep: %+v", rep.Stats)
	}
}

func TestCompletedOutcomesOfCancelledSweepMatchFullSweep(t *testing.T) {
	// Whatever a cancelled sweep did finish must be exactly what the full
	// sweep computes — cancellation must never corrupt results.
	specs := quickGrid(t)
	full, err := Run(specs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, _ := RunContext(ctx, specs, Options{Workers: 1, OnOutcome: func(Outcome) { cancel() }})
	checked := 0
	for i, o := range partial.Outcomes {
		if o.Hash == "" {
			continue
		}
		checked++
		if o.Verdict != full.Outcomes[i].Verdict {
			t.Errorf("outcome %d differs from full sweep", i)
		}
	}
	if checked == 0 {
		t.Error("cancelled sweep finished nothing — cannot compare")
	}
}

func TestTheoryEvaluatorPoWMatchesExactBinomial(t *testing.T) {
	spec := scenario.Spec{Protocol: "pow", W: 0.01, Stake: 0.2, Blocks: 4000, Trials: 10}
	rep, err := Run([]scenario.Spec{spec}, Options{Evaluator: &TheoryEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Backend != "theory" {
		t.Errorf("backend = %q", o.Backend)
	}
	want := 1 - core.PoWFairProbExact(4000, 0.2, 0.1)
	if math.Abs(o.Verdict.UnfairProbability-want) > 1e-12 {
		t.Errorf("unfair = %v, want exact binomial %v", o.Verdict.UnfairProbability, want)
	}
	if !o.Verdict.RobustFair || !o.Verdict.ExpectationalFair {
		t.Errorf("PoW at n=4000 should be certified fair: %+v", o.Verdict)
	}
	if o.Verdict.MeanLambda != 0.2 {
		t.Errorf("mean = %v", o.Verdict.MeanLambda)
	}
	if got := o.Equitability; got != 1.0/4000 {
		t.Errorf("equitability = %v, want 1/n", got)
	}
	if rep.Stats.TrialsRun != 0 {
		t.Errorf("closed-form backend ran %d trials", rep.Stats.TrialsRun)
	}
}

func TestTheoryEvaluatorQualitativeShape(t *testing.T) {
	// The theory backend must reproduce the paper's ordering without a
	// single trial: PoW certified fair, ML-PoS at w=0.01 not certifiable,
	// SL-PoS drifting to monopoly.
	g := scenario.Grid{
		Base:      scenario.Spec{Stake: 0.2, Blocks: 5000, W: 0.01},
		Protocols: []string{"pow", "mlpos", "slpos", "cpos"},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(specs, Options{Evaluator: &TheoryEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string]Outcome{}
	for _, o := range rep.Outcomes {
		byProto[o.Spec.Protocol] = o
	}
	if !byProto["pow"].Verdict.RobustFair {
		t.Errorf("PoW: %+v", byProto["pow"].Verdict)
	}
	if !byProto["cpos"].Verdict.RobustFair {
		t.Errorf("C-PoS should satisfy Theorem 4.10 at the paper setting: %+v", byProto["cpos"].Verdict)
	}
	if byProto["mlpos"].Verdict.RobustFair {
		t.Errorf("ML-PoS at w=0.01 must not be certified: %+v", byProto["mlpos"].Verdict)
	}
	if byProto["mlpos"].ConvergenceBlock != -1 {
		t.Errorf("ML-PoS at w=0.01 never converges (limit dist), got %d", byProto["mlpos"].ConvergenceBlock)
	}
	slpos := byProto["slpos"]
	if slpos.Verdict.ExpectationalFair || slpos.Verdict.RobustFair {
		t.Errorf("SL-PoS: %+v", slpos.Verdict)
	}
	if slpos.Verdict.MeanLambda >= 0.2 {
		t.Errorf("SL-PoS mean-field share should decay below a, got %v", slpos.Verdict.MeanLambda)
	}
}

func TestTheoryEvaluatorUnsupportedProtocol(t *testing.T) {
	_, err := Run([]scenario.Spec{{Protocol: "eos", Blocks: 100, Trials: 10}},
		Options{Evaluator: &TheoryEvaluator{}})
	if !errors.Is(err, ErrBackend) {
		t.Errorf("err = %v, want ErrBackend", err)
	}
}

func TestChainSimEvaluatorSmoke(t *testing.T) {
	// A tiny chainsim-backed sweep: slpos is deterministic per seed and
	// must show the rich-get-richer drift that motivates the paper.
	spec := scenario.Spec{Protocol: "slpos", W: 0.01, Stake: 0.2, Blocks: 120, Trials: 6, Seed: 3}
	rep, err := Run([]scenario.Spec{spec}, Options{Evaluator: &ChainSimEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Backend != "chainsim" {
		t.Errorf("backend = %q", o.Backend)
	}
	if o.Verdict.Protocol != "SL-PoS" {
		t.Errorf("protocol = %q", o.Verdict.Protocol)
	}
	if rep.Stats.TrialsRun != 6 {
		t.Errorf("trials = %d", rep.Stats.TrialsRun)
	}
	// Determinism: the same spec reproduces the same verdict.
	rep2, err := Run([]scenario.Spec{spec}, Options{Evaluator: &ChainSimEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Outcomes[0].Verdict != o.Verdict {
		t.Errorf("chainsim backend not deterministic:\n%+v\n%+v", o.Verdict, rep2.Outcomes[0].Verdict)
	}
}

func TestChainSimEvaluatorUnsupportedProtocol(t *testing.T) {
	_, err := Run([]scenario.Spec{{Protocol: "neo", Blocks: 50, Trials: 2}},
		Options{Evaluator: &ChainSimEvaluator{}})
	if !errors.Is(err, ErrBackend) {
		t.Errorf("err = %v, want ErrBackend", err)
	}
}

func TestChainSimEvaluatorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := (&ChainSimEvaluator{}).Evaluate(ctx,
		scenario.Spec{Protocol: "slpos", Blocks: 1000, Trials: 100}.Normalized())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestCacheKeysNamespacedByBackend(t *testing.T) {
	// A Monte-Carlo result must never be served to a theory sweep and
	// vice versa, even through a shared cache.
	spec := scenario.Spec{Protocol: "pow", W: 0.01, Stake: 0.2, Blocks: 400, Trials: 30, Seed: 7}
	cache := NewCache(16)
	mc, err := Run([]scenario.Spec{spec}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	th, err := Run([]scenario.Spec{spec}, Options{Cache: cache, Evaluator: &TheoryEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	if th.Stats.CacheHits != 0 {
		t.Errorf("theory sweep hit the montecarlo cache entry")
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2 (one per backend)", cache.Len())
	}
	if mc.Outcomes[0].Verdict.UnfairProbability == th.Outcomes[0].Verdict.UnfairProbability {
		t.Log("note: MC and theory agree exactly here; namespacing still required")
	}
}

func TestChainSimEvaluatorCPoSParityWithMonteCarlo(t *testing.T) {
	// C-PoS coverage of the block-level backend: the real shard lotteries
	// and epoch inflation of internal/chainsim must agree with the
	// abstract Monte-Carlo model on both fairness verdicts, and land on
	// essentially the same mean reward fraction. The inflation reward
	// dominates (v >> w), so lambda concentrates near the initial share
	// and the comparison is sharp.
	spec := scenario.Spec{Protocol: "cpos", W: 0.02, V: 0.1, Shards: 4,
		Stake: 0.2, Blocks: 40, Trials: 24, Seed: 5}
	cs, err := Run([]scenario.Spec{spec}, Options{Evaluator: &ChainSimEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Run([]scenario.Spec{spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cv, mv := cs.Outcomes[0].Verdict, mc.Outcomes[0].Verdict
	if cv.Protocol != "C-PoS" || cs.Outcomes[0].Backend != "chainsim" {
		t.Fatalf("chainsim outcome: protocol %q backend %q", cv.Protocol, cs.Outcomes[0].Backend)
	}
	if cv.ExpectationalFair != mv.ExpectationalFair {
		t.Errorf("expectational fairness: chainsim %v, montecarlo %v", cv.ExpectationalFair, mv.ExpectationalFair)
	}
	if cv.RobustFair != mv.RobustFair {
		t.Errorf("robust fairness: chainsim %v, montecarlo %v", cv.RobustFair, mv.RobustFair)
	}
	if d := math.Abs(cv.MeanLambda - mv.MeanLambda); d > 0.03 {
		t.Errorf("mean lambda: chainsim %.4f vs montecarlo %.4f (diff %.4f)", cv.MeanLambda, mv.MeanLambda, d)
	}
	if cs.Stats.TrialsRun != 24 {
		t.Errorf("chainsim trials = %d", cs.Stats.TrialsRun)
	}
	// Determinism across runs (the cache-poisoning guarantee).
	cs2, err := Run([]scenario.Spec{spec}, Options{Evaluator: &ChainSimEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Outcomes[0].Verdict != cv {
		t.Errorf("chainsim cpos not deterministic:\n%+v\n%+v", cv, cs2.Outcomes[0].Verdict)
	}
}

func TestChainSimEvaluatorCPoSRejectsZeroPerShardReward(t *testing.T) {
	// w/P below half a ledger unit cannot be represented; fail loudly
	// instead of silently simulating a rewardless chain.
	_, err := (&ChainSimEvaluator{StakeUnits: 100}).Evaluate(context.Background(),
		scenario.Spec{Protocol: "cpos", W: 0.001, Shards: 32, Blocks: 10, Trials: 2}.Normalized())
	if !errors.Is(err, ErrBackend) {
		t.Errorf("err = %v, want ErrBackend", err)
	}
}
