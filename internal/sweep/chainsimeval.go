package sweep

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chainsim"
	"repro/internal/montecarlo"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// ChainSimEvaluator answers scenarios by running full block-level
// simulations through internal/chainsim: real SHA-256 puzzles and kernel
// lotteries, chain validation on every block, integer-unit ledgers — the
// repo's stand-in for the paper's Geth/Qtum/NXT deployments. It is the
// most faithful backend and by far the most expensive one; use it to
// cross-check the abstract Monte-Carlo model on small scenarios, not for
// wide grids at paper scale.
//
// Coverage: pow, mlpos, slpos, fslpos and cpos — the protocols
// internal/chainsim implements as consensus engines. Stake shares are
// discretised into integer units (StakeUnits per unit of total stake),
// and rewards become round(w·StakeUnits) ledger units (for C-PoS,
// round(w/P·StakeUnits) per shard block plus round(v·StakeUnits)
// inflation per epoch), so very small w or very skewed allocations lose
// resolution; Evaluate rejects scenarios whose reward would truncate to
// zero.
//
// Horizons: a scenario "block" is one protocol step. For C-PoS a step is
// an epoch of Shards shard blocks, so the chain runs Blocks·Shards real
// blocks and checkpoints land on epoch boundaries — the same epoch
// semantics as the abstract Monte-Carlo model.
type ChainSimEvaluator struct {
	// StakeUnits is the integer total supply the stake vector is scaled
	// to (default 1,000,000).
	StakeUnits uint64
	// PoWTarget is the per-hash success threshold out of 2^64 for the
	// PoW engine (default 1<<57, ≈128 hashes per miner per block).
	PoWTarget uint64
}

// chainsimProtocols lists the protocols the chainsim backend covers.
var chainsimProtocols = []string{"pow", "mlpos", "slpos", "fslpos", "cpos"}

// chainsimBlockChunk bounds how many blocks run between context checks.
const chainsimBlockChunk = 128

// Name implements Evaluator.
func (e *ChainSimEvaluator) Name() string { return "chainsim" }

// Capabilities implements Capable: the protocols internal/chainsim has
// consensus engines for, plus the withholding treatment and — through
// the block-level fork and selfish-withholding simulations — the
// adversary and network blocks (which spec validation restricts to PoW).
func (e *ChainSimEvaluator) Capabilities() Capabilities {
	return Capabilities{
		Backend:     "chainsim",
		Protocols:   chainsimProtocols,
		Withholding: true,
		Adversary:   true,
		Strategies:  scenario.StrategyNames(),
		Network:     true,
	}
}

// Evaluate implements Evaluator.
func (e *ChainSimEvaluator) Evaluate(ctx context.Context, spec scenario.Spec) (Evaluation, error) {
	n := spec.Normalized()
	p, err := n.Build() // display name + protocol validation
	if err != nil {
		return Evaluation{}, err
	}
	if err := e.Capabilities().Check(n); err != nil {
		return Evaluation{}, err
	}
	// Race strategies and fork networks run the block-level PoW fork
	// simulations; a (PoS) withhold adversary runs the ordinary engine
	// path below with a per-miner withholding override.
	withholdMiner, withholdPeriod, withholding := withholdAdversary(n)
	if (n.Adversary != nil && !withholding) || n.Network != nil {
		return e.evaluateAdversarialPoW(ctx, n, p.Name())
	}
	units := e.StakeUnits
	if units == 0 {
		units = 1_000_000
	}
	miners, totalUnits := chainsimMiners(n.Stakes, units)
	reward := uint64(math.Round(n.W * float64(units)))
	if reward == 0 && n.Protocol != "pow" && n.Protocol != "cpos" {
		return Evaluation{}, fmt.Errorf("%w: w = %v truncates to zero ledger units at %d stake units",
			ErrBackend, n.W, units)
	}
	// C-PoS rewards discretise per shard block; steps-per-block widens an
	// abstract epoch into its real shard blocks.
	perShard := uint64(0)
	stepsPerBlock := 1
	if n.Protocol == "cpos" {
		perShard = uint64(math.Round(n.W / float64(n.Shards) * float64(units)))
		if perShard == 0 {
			return Evaluation{}, fmt.Errorf("%w: w/P = %v truncates to zero ledger units per shard block at %d stake units",
				ErrBackend, n.W/float64(n.Shards), units)
		}
		stepsPerBlock = n.Shards
	}
	engine := func() chainsim.Engine {
		switch n.Protocol {
		case "pow":
			target := e.PoWTarget
			if target == 0 {
				target = 1 << 57
			}
			return &chainsim.PoWEngine{Target: target, BlockReward: reward}
		case "mlpos":
			// One kernel trial per staker per slot; aim for ≈1/32
			// network-wide success per slot, as the bench grids do.
			perUnit := uint64(math.Exp2(64) / 32 / float64(totalUnits))
			if perUnit == 0 {
				perUnit = 1
			}
			return &chainsim.MLPoSEngine{TargetPerUnit: perUnit, BlockReward: reward}
		case "slpos":
			return &chainsim.SLPoSEngine{BlockReward: reward}
		case "fslpos":
			return &chainsim.FSLPoSEngine{BlockReward: reward}
		case "cpos":
			// NewNetwork defaults WithholdEvery to Shards for C-PoS, which
			// reproduces the paper's epoch-start stake-snapshot semantics.
			return &chainsim.CPoSEngine{
				PerShardReward:    perShard,
				InflationPerEpoch: uint64(math.Round(n.V * float64(units))),
				Shards:            uint64(n.Shards),
			}
		}
		return nil
	}
	if engine() == nil {
		return Evaluation{}, unsupported("chainsim", n.Protocol, chainsimProtocols)
	}

	// A withhold adversary's restake period is stated in protocol steps
	// like the global treatment; 0 never restakes.
	var minerWithhold map[string]uint64
	if withholding {
		k := chainsim.WithholdNever
		if withholdPeriod > 0 {
			k = uint64(withholdPeriod) * uint64(stepsPerBlock)
		}
		minerWithhold = map[string]uint64{fmt.Sprintf("m%d", withholdMiner): k}
	}
	tracked := fmt.Sprintf("m%d", n.Miner)
	cps := n.Checkpoints
	lambda := make([][]float64, len(cps))
	for i := range lambda {
		lambda[i] = make([]float64, n.Trials)
	}
	for trial := 0; trial < n.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return Evaluation{TrialsRun: int64(trial)}, err
		}
		// Trial streams mirror the Monte-Carlo engine's seeding scheme so
		// chainsim runs are equally reproducible and worker-independent.
		tr := rng.Stream(n.Seed, trial)
		// An explicit withholding period is stated in protocol steps;
		// widen it to shard blocks for C-PoS like everything else.
		net, err := chainsim.NewNetwork(chainsim.NetworkConfig{
			Engine:        engine(), // fresh engine: NewNetwork wires per-network miner sets into it
			Miners:        miners,
			Seed:          tr.Uint64(),
			Salt:          tr.Uint64(),
			WithholdEvery: uint64(n.WithholdEvery) * uint64(stepsPerBlock),
			MinerWithhold: minerWithhold,
		})
		if err != nil {
			return Evaluation{TrialsRun: int64(trial)}, err
		}
		height := 0
		for ci, c := range cps {
			for height < c*stepsPerBlock {
				step := min(chainsimBlockChunk, c*stepsPerBlock-height)
				if err := ctx.Err(); err != nil {
					return Evaluation{TrialsRun: int64(trial)}, err
				}
				if err := net.RunBlocks(step); err != nil {
					return Evaluation{TrialsRun: int64(trial)}, err
				}
				height += step
			}
			lambda[ci][trial] = net.Lambda(tracked)
		}
	}
	res := &montecarlo.Result{Protocol: p.Name(), Checkpoints: cps, Lambda: lambda}
	return assessSamples(n, p.Name(), res, int64(n.Trials), int64(n.Trials), false, montecarlo.DefaultStopConfidence), nil
}

// chainsimMiners discretises a stake vector into integer-unit miner
// specs (at least one unit each, so no participant vanishes).
func chainsimMiners(stakes []float64, units uint64) ([]chainsim.MinerSpec, uint64) {
	total := 0.0
	for _, s := range stakes {
		total += s
	}
	miners := make([]chainsim.MinerSpec, len(stakes))
	var totalUnits uint64
	for i, s := range stakes {
		r := uint64(math.Round(s / total * float64(units)))
		if r == 0 {
			r = 1
		}
		miners[i] = chainsim.MinerSpec{Name: fmt.Sprintf("m%d", i), Resource: r}
		totalUnits += r
	}
	return miners, totalUnits
}

// evaluateAdversarialPoW answers PoW scenarios carrying an adversary or
// network block through the block-level fork simulations: SelfishSim for
// a (profitably) selfish miner, ForkSim for honest mining over a forking
// network. Both mine real SHA-256 blocks; the scenario's Blocks horizon
// counts block-discovery events for the selfish case (matching
// internal/attack's event semantics) and canonical heights for the fork
// case.
func (e *ChainSimEvaluator) evaluateAdversarialPoW(ctx context.Context, n scenario.Spec, protocolName string) (Evaluation, error) {
	units := e.StakeUnits
	if units == 0 {
		units = 1_000_000
	}
	target := e.PoWTarget
	if target == 0 {
		target = 1 << 57
	}
	miners, _ := chainsimMiners(n.Stakes, units)
	reward := uint64(math.Round(n.W * float64(units)))
	if reward == 0 {
		// Unlike the instant-race PoW path, fork accounting needs a
		// representable per-block coinbase to attribute race outcomes.
		return Evaluation{}, &CapabilityError{Backend: "chainsim", Feature: "resolution", Protocol: n.Protocol,
			Supported: chainsimProtocols,
			Detail:    fmt.Sprintf("w = %v truncates to zero ledger units at %d stake units", n.W, units)}
	}
	_, raceP, racing := raceAdversary(n)
	forkRate := 0.0
	if n.Network != nil {
		forkRate = n.Network.ForkRate
	}
	tracked := fmt.Sprintf("m%d", n.Miner)
	cps := n.Checkpoints
	lambda := make([][]float64, len(cps))
	for i := range lambda {
		lambda[i] = make([]float64, n.Trials)
	}
	for trial := 0; trial < n.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return Evaluation{TrialsRun: int64(trial)}, err
		}
		// Mirror the honest path's trial-stream seeding so adversarial
		// runs are equally reproducible and worker-independent.
		tr := rng.Stream(n.Seed, trial)
		seed, salt := tr.Uint64(), tr.Uint64()
		var run func(int) error
		var lambdaAt func() float64
		if racing {
			sim, err := chainsim.NewSelfishSim(chainsim.SelfishConfig{
				Target: target, BlockReward: reward, Miners: miners,
				Attacker: n.Adversary.Miner, Gamma: raceP.Gamma, Delay: raceP.Delay,
				Seed: seed, Salt: salt,
			})
			if err != nil {
				return Evaluation{TrialsRun: int64(trial)}, err
			}
			run, lambdaAt = sim.RunEvents, func() float64 { return sim.Lambda(tracked) }
		} else {
			sim, err := chainsim.NewForkSim(chainsim.ForkConfig{
				Target: target, BlockReward: reward, Miners: miners,
				ForkRate: forkRate, Seed: seed, Salt: salt,
			})
			if err != nil {
				return Evaluation{TrialsRun: int64(trial)}, err
			}
			run, lambdaAt = sim.RunBlocks, func() float64 { return sim.Lambda(tracked) }
		}
		height := 0
		for ci, c := range cps {
			for height < c {
				step := min(chainsimBlockChunk, c-height)
				if err := ctx.Err(); err != nil {
					return Evaluation{TrialsRun: int64(trial)}, err
				}
				if err := run(step); err != nil {
					return Evaluation{TrialsRun: int64(trial)}, err
				}
				height += step
			}
			lambda[ci][trial] = lambdaAt()
		}
	}
	res := &montecarlo.Result{Protocol: protocolName, Checkpoints: cps, Lambda: lambda}
	return assessSamples(n, protocolName, res, int64(n.Trials), int64(n.Trials), false, montecarlo.DefaultStopConfidence), nil
}
