package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// Evaluator is a pluggable scenario backend: anything that can turn a
// declarative scenario into a fairness evaluation. The sweep runner is
// backend-agnostic — it handles validation, deduplication, caching,
// parallelism and streaming, and delegates the actual fairness question
// to an Evaluator.
//
// Three implementations ship with the engine:
//
//   - MonteCarloEvaluator — the reference backend: deterministic repeated
//     mining games through internal/montecarlo (the PR-1 semantics,
//     bit for bit).
//   - TheoryEvaluator — closed-form answers from the paper's theorems,
//     no sampling at all.
//   - ChainSimEvaluator — block-level simulation with real SHA-256
//     puzzles through internal/chainsim.
//
// Evaluate receives the scenario in normalised form and must honour ctx:
// on cancellation it returns promptly with ctx.Err(). Results must be a
// pure function of the spec — the runner caches them under
// "name:contenthash", so a nondeterministic evaluator would poison every
// later sweep that shares the cache.
type Evaluator interface {
	// Name identifies the backend; it namespaces cache keys, so two
	// evaluators with different semantics must never share a name.
	Name() string
	// Evaluate answers one normalised, validated scenario.
	Evaluate(ctx context.Context, spec scenario.Spec) (Evaluation, error)
}

// Evaluation is the backend-independent result of evaluating one
// scenario: the fairness verdict plus the auxiliary metrics every
// Outcome carries. Bookkeeping (hashes, timing, cache state) is the
// runner's job, not the evaluator's.
type Evaluation struct {
	// Verdict carries both fairness notions at the final horizon.
	Verdict core.Verdict
	// Equitability is Fanti et al.'s normalised dispersion of final λ.
	Equitability float64
	// ConvergenceBlock is the first checkpoint from which the unfair
	// probability stays at or below δ, or -1.
	ConvergenceBlock int
	// TrialsRun counts the trials the evaluation actually executed
	// (zero for closed-form backends); TrialsBudget is the configured
	// trial count. They differ only when an adaptive stopping rule
	// resolved the verdict early (EarlyStopped) — the executed count is
	// an output of the run, not an input.
	TrialsRun    int64
	TrialsBudget int64
	EarlyStopped bool
	// AchievedEps is the Hoeffding half-width on the unfair-probability
	// estimate at the evaluation's confidence given TrialsRun samples:
	// the run certifies P(unfair) within ±AchievedEps of the observed
	// fraction. AchievedDelta is the resulting one-sided certificate —
	// the certified upper bound on the unfair probability, clamped to 1.
	// Both are zero for closed-form backends.
	AchievedEps   float64
	AchievedDelta float64
	// Arena, set only by the best-response ArenaEvaluator, carries the
	// equilibrium the verdict was assessed at: the fixed-point strategy
	// profile, per-miner payoffs and honest-baseline payoffs.
	Arena *arena.Equilibrium
}

// ErrBackend reports a scenario outside an evaluator's coverage.
var ErrBackend = errors.New("sweep: scenario not supported by backend")

// AdaptiveTrials opts a Monte-Carlo evaluator into adaptive early
// stopping: each scenario's Trials becomes a budget, and the run halts
// as soon as the unfair-probability verdict is resolved at the
// scenario's ε/δ with total error probability Confidence (see
// montecarlo.StopRule). Zero values resolve to the montecarlo package
// defaults. The stop point is deterministic for a fixed (seed, rule),
// so adaptive results remain cacheable and cluster-mergeable — but they
// are NOT sample-identical to exhaustive runs, which is why an adaptive
// evaluator reports a distinct Name.
type AdaptiveTrials struct {
	// Confidence is the total error-probability budget across all
	// stopping looks (0 = montecarlo.DefaultStopConfidence).
	Confidence float64
	// MinTrials is the smallest completed-trial prefix the rule
	// evaluates (0 = montecarlo.DefaultMinTrials).
	MinTrials int
	// Batch is the trial batch size of the inner loop and the stopping
	// granularity (0 = montecarlo.DefaultBatchSize).
	Batch int
}

// normalized resolves zero-value knobs to the montecarlo defaults, so
// two configurations with the same semantics share a Name (and a cache
// namespace).
func (a AdaptiveTrials) normalized() AdaptiveTrials {
	if a.Confidence == 0 {
		a.Confidence = montecarlo.DefaultStopConfidence
	}
	if a.MinTrials == 0 {
		a.MinTrials = montecarlo.DefaultMinTrials
	}
	if a.Batch == 0 {
		a.Batch = montecarlo.DefaultBatchSize
	}
	return a
}

// MonteCarloEvaluator is the reference backend: it runs the scenario's
// deterministic Monte-Carlo experiment through internal/montecarlo and
// assesses both fairness notions on the final-checkpoint λ samples. Its
// results are a pure function of the spec — independent of worker counts
// and identical to the pre-Evaluator sweep engine, bit for bit.
type MonteCarloEvaluator struct {
	// TrialWorkers caps each scenario's inner trial parallelism; 0 lets
	// the sweep runner pick its saturation-aware default (1 while
	// scenario-level workers already fill the machine, GOMAXPROCS when
	// scenarios run one at a time).
	TrialWorkers int
	// Adaptive, when non-nil, turns each scenario's Trials into a budget
	// with early stopping (see AdaptiveTrials). Honest scenarios stop as
	// soon as the verdict is resolved; adversarial scenarios run their
	// full budget (the selfish-mining simulator is not batched) but
	// still report achieved eps/delta at the adaptive confidence.
	Adaptive *AdaptiveTrials
}

// Name implements Evaluator. The exhaustive evaluator is "montecarlo";
// an adaptive evaluator appends its normalised stopping rule so that
// runs with different semantics never share a cache or cluster
// namespace.
func (e *MonteCarloEvaluator) Name() string {
	if e.Adaptive == nil {
		return "montecarlo"
	}
	a := e.Adaptive.normalized()
	return fmt.Sprintf("montecarlo+es(c=%g,min=%d,b=%d)", a.Confidence, a.MinTrials, a.Batch)
}

// Capabilities implements Capable: the reference backend covers the full
// scenario vocabulary, every registered strategy included.
func (e *MonteCarloEvaluator) Capabilities() Capabilities {
	return Capabilities{
		Backend:     e.Name(),
		Protocols:   scenario.ProtocolNames(),
		Withholding: true,
		Adversary:   true,
		Strategies:  scenario.StrategyNames(),
		Network:     true,
	}
}

// Evaluate implements Evaluator.
func (e *MonteCarloEvaluator) Evaluate(ctx context.Context, spec scenario.Spec) (Evaluation, error) {
	n := spec.Normalized()
	p, err := n.Build()
	if err != nil {
		return Evaluation{}, err
	}
	if strat, params, ok := raceAdversary(n); ok {
		return e.evaluateRace(ctx, n, p.Name(), strat, params)
	}
	stakes := n.Stakes
	if n.Network != nil {
		// Fork-induced skew (PoW only, enforced by spec validation):
		// PoW power is static, so the Sakurai–Shudo race model reduces
		// exactly to a per-height effective-power correction of the
		// win-probability vector.
		if stakes, err = attack.ForkEffectivePowers(n.Stakes, n.Network.ForkRate); err != nil {
			return Evaluation{}, err
		}
	}
	var gameOpts []game.Option
	if n.WithholdEvery > 0 {
		gameOpts = append(gameOpts, game.WithWithholding(n.WithholdEvery))
	}
	if miner, every, ok := withholdAdversary(n); ok {
		// The withhold strategy runs inside the ordinary mining game:
		// the deviator's rewards join her staking power only at
		// multiples of `every` blocks (never, for 0).
		gameOpts = append(gameOpts, game.WithMinerWithholding(miner, every))
	}
	var trials atomic.Int64
	cfg := montecarlo.Config{
		Trials:      n.Trials,
		Blocks:      n.Blocks,
		Checkpoints: n.Checkpoints,
		Miner:       n.Miner,
		Seed:        n.Seed,
		Workers:     e.TrialWorkers,
		GameOptions: gameOpts,
		OnTrialDone: func(int, float64) { trials.Add(1) },
	}
	if e.Adaptive != nil {
		a := e.Adaptive.normalized()
		cfg.Batch = a.Batch
		cfg.Stop = &montecarlo.StopRule{
			Share:      n.TrackedShare(),
			Eps:        n.Eps,
			Delta:      n.Delta,
			Confidence: a.Confidence,
			MinTrials:  a.MinTrials,
		}
	}
	res, err := montecarlo.RunContext(ctx, p, stakes, cfg)
	if err != nil {
		return Evaluation{TrialsRun: trials.Load()}, err
	}
	return assessSamples(n, p.Name(), res, int64(res.TrialsRun), int64(res.TrialsBudget), res.EarlyStopped, e.confidence()), nil
}

// confidence is the error budget the evaluator's achieved eps/delta
// certificate is stated at: the adaptive rule's when one is configured,
// the package default otherwise.
func (e *MonteCarloEvaluator) confidence() float64 {
	if e.Adaptive != nil {
		return e.Adaptive.normalized().Confidence
	}
	return montecarlo.DefaultStopConfidence
}

// adversaryParams flattens a normalised spec's adversary block into the
// registry's parameter struct.
func adversaryParams(n scenario.Spec) attack.Params {
	return attack.Params{
		Share: advShare(n),
		Gamma: n.Adversary.Gamma,
		Delay: n.Adversary.Delay,
		Every: n.Adversary.Every,
	}
}

// raceAdversary resolves a normalised spec's adversary block into an
// active PoW race strategy, shared by every sampling backend. It
// reports false when there is no adversary, when the strategy is not a
// race strategy, or when the parameterisation does not deviate from
// honest play — rational selfish mining below the Eyal–Sirer
// profitability threshold, selfish-delay at delay 1 — in which case the
// scenario collapses to its honest twin.
func raceAdversary(n scenario.Spec) (attack.Strategy, attack.Params, bool) {
	if n.Adversary == nil {
		return nil, attack.Params{}, false
	}
	strat, ok := attack.Lookup(n.Adversary.Strategy)
	if !ok || strat.Kind() != attack.KindPoWRace {
		return nil, attack.Params{}, false
	}
	p := adversaryParams(n)
	if !strat.Deviates(p) {
		return nil, attack.Params{}, false
	}
	return strat, p, true
}

// withholdAdversary resolves a normalised spec's adversary block into a
// deviating stake-withholding assignment: the deviator's miner index
// and restake period (0 = never restake).
func withholdAdversary(n scenario.Spec) (miner, every int, ok bool) {
	if n.Adversary == nil {
		return 0, 0, false
	}
	strat, found := attack.Lookup(n.Adversary.Strategy)
	if !found || strat.Kind() != attack.KindStakeWithhold || !strat.Deviates(adversaryParams(n)) {
		return 0, 0, false
	}
	return n.Adversary.Miner, n.Adversary.Every, true
}

// advShare returns the adversary's resource share of a normalised spec.
func advShare(n scenario.Spec) float64 {
	total := 0.0
	for _, v := range n.Stakes {
		total += v
	}
	return n.Stakes[n.Adversary.Miner] / total
}

// selfishCtxCheckInterval bounds events between context checks in the
// per-trial selfish loop.
const selfishCtxCheckInterval = 4096

// evaluateRace answers an adversarial PoW scenario by running the
// strategy's race state machine per trial (attack.RaceSim), seeding
// trial i with rng.Stream(seed, i) exactly like the honest path. The
// tracked miner's λ is the attacker's revenue share when she is the
// tracked miner, and the tracked miner's power-proportional slice of the
// honest pool's revenue otherwise.
func (e *MonteCarloEvaluator) evaluateRace(ctx context.Context, n scenario.Spec, protocolName string, strat attack.Strategy, p attack.Params) (Evaluation, error) {
	total := 0.0
	for _, v := range n.Stakes {
		total += v
	}
	trackedIsAttacker := n.Miner == n.Adversary.Miner
	honestSlice := 0.0
	if !trackedIsAttacker {
		honestSlice = (n.Stakes[n.Miner] / total) / (1 - p.Share)
	}
	cps := n.Checkpoints
	lambda := make([][]float64, len(cps))
	for i := range lambda {
		lambda[i] = make([]float64, n.Trials)
	}
	for trial := 0; trial < n.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return Evaluation{TrialsRun: int64(trial)}, err
		}
		sim, err := strat.NewRaceSim(p)
		if err != nil {
			return Evaluation{TrialsRun: int64(trial)}, err
		}
		r := rng.Stream(n.Seed, trial)
		next := 0
		for ev := 1; ev <= n.Blocks && next < len(cps); ev++ {
			if ev%selfishCtxCheckInterval == 0 && ctx.Err() != nil {
				return Evaluation{TrialsRun: int64(trial)}, ctx.Err()
			}
			sim.Step(r)
			if ev == cps[next] {
				share := sim.Snapshot().RevenueShare()
				if trackedIsAttacker {
					lambda[next][trial] = share
				} else {
					lambda[next][trial] = (1 - share) * honestSlice
				}
				next++
			}
		}
	}
	res := &montecarlo.Result{Protocol: protocolName, Checkpoints: cps, Lambda: lambda}
	return assessSamples(n, protocolName, res, int64(n.Trials), int64(n.Trials), false, e.confidence()), nil
}

// withTrialWorkers returns the evaluator the runner should use given the
// resolved per-scenario trial parallelism: custom evaluators pass
// through untouched; a Monte-Carlo evaluator with no explicit
// TrialWorkers adopts the resolved value (all other knobs preserved).
func withTrialWorkers(ev Evaluator, trialWorkers int) Evaluator {
	if ev == nil {
		return &MonteCarloEvaluator{TrialWorkers: trialWorkers}
	}
	if mc, ok := ev.(*MonteCarloEvaluator); ok && mc.TrialWorkers == 0 {
		clone := *mc
		clone.TrialWorkers = trialWorkers
		return &clone
	}
	if ae, ok := ev.(*ArenaEvaluator); ok && ae.TrialWorkers == 0 {
		clone := *ae
		clone.TrialWorkers = trialWorkers
		return &clone
	}
	return ev
}

// assessSamples turns a per-checkpoint λ sample matrix into an
// Evaluation — the shared tail of every sampling backend. confidence is
// the error budget the achieved eps/delta certificate is stated at: for
// trialsRun samples, a Hoeffding bound puts the true unfair probability
// within ±achievedEps of the observed fraction except with probability
// confidence, so observed + achievedEps is a certified δ upper bound.
func assessSamples(spec scenario.Spec, protocolName string, res *montecarlo.Result, trialsRun, trialsBudget int64, earlyStopped bool, confidence float64) Evaluation {
	a := spec.TrackedShare()
	params := core.Params{Eps: spec.Eps, Delta: spec.Delta}
	final := res.FinalSamples()
	verdict := params.Assess(protocolName, final, a)
	ev := Evaluation{
		Verdict:          verdict,
		Equitability:     core.Equitability(final, a),
		ConvergenceBlock: res.ConvergenceBlock(a, spec.Eps, spec.Delta),
		TrialsRun:        trialsRun,
		TrialsBudget:     trialsBudget,
		EarlyStopped:     earlyStopped,
	}
	if trialsRun > 0 && confidence > 0 && confidence < 1 {
		ev.AchievedEps = math.Sqrt(math.Log(2/confidence) / (2 * float64(trialsRun)))
		ev.AchievedDelta = math.Min(1, verdict.UnfairProbability+ev.AchievedEps)
	}
	return ev
}

// unsupported builds the canonical protocol-coverage CapabilityError.
func unsupported(backend, protocol string, supported []string) error {
	return &CapabilityError{Backend: backend, Feature: "protocol", Protocol: protocol, Supported: supported}
}
