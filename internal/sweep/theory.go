package sweep

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TheoryEvaluator answers scenarios in closed form from the paper's
// theory — no sampling at all, so it is orders of magnitude faster than
// the Monte-Carlo backend and exact (PoW) or analytically bounded
// (ML-PoS, C-PoS) rather than noisy. Coverage follows the theorems:
//
//   - pow    — the exact binomial fair-area mass of Section 4.2
//     (PoWFairProbExact), with Theorem 4.2 as the sufficiency check.
//   - mlpos  — the Azuma tail bound from the proof of Theorem 4.3, the
//     Beta(a/w, b/w) Pólya-urn limit of Section 4.3 for the
//     never-converges diagnosis, and Theorem 4.3 for sufficiency.
//   - cpos   — the Azuma bound from the proof of Theorem 4.10 and its
//     sufficient condition.
//   - slpos  — the Theorem 4.9 mean-field skeleton: the deterministic
//     fluid-limit share trajectory, with the Bernoulli absorption
//     approximation for dispersion.
//
// Anything else (fslpos, neo, algorand, eos, hybrid) returns ErrBackend:
// the paper proves no quantitative horizon bound for those models, and
// this backend refuses to guess. The bounded protocols report an UPPER
// bound on the unfair probability — a "robustly fair" verdict here is a
// guarantee, while an unfair probability near 1 only means the theorem
// cannot certify fairness, not that the protocol is provably unfair.
type TheoryEvaluator struct{}

// theoryProtocols lists the protocols the theory backend covers.
var theoryProtocols = []string{"pow", "mlpos", "cpos", "slpos"}

// Name implements Evaluator.
func (e *TheoryEvaluator) Name() string { return "theory" }

// Capabilities implements Capable: coverage follows the theorems — no
// withholding, no adversary, no network blocks. The paper proves no
// bound for any of those treatments, and this backend refuses to guess:
// an adversarial or fork-ridden spec gets a typed CapabilityError, never
// a silently honest number.
func (e *TheoryEvaluator) Capabilities() Capabilities {
	return Capabilities{
		Backend:   "theory",
		Protocols: theoryProtocols,
	}
}

// Evaluate implements Evaluator.
func (e *TheoryEvaluator) Evaluate(ctx context.Context, spec scenario.Spec) (Evaluation, error) {
	if err := ctx.Err(); err != nil {
		return Evaluation{}, err
	}
	n := spec.Normalized()
	if err := e.Capabilities().Check(n); err != nil {
		return Evaluation{}, err
	}
	p, err := n.Build()
	if err != nil {
		return Evaluation{}, err
	}
	a := n.TrackedShare()
	params := core.Params{Eps: n.Eps, Delta: n.Delta}

	var (
		unfairAt     func(blocks int) float64
		meanLambda   = a
		expectFair   = true
		robustCheck  func(blocks int, unfairFinal float64) bool
		equitability float64
		neverFair    bool
	)
	switch n.Protocol {
	case "pow":
		// Exact: λ_n = Bin(n, a)/n, so the unfair probability is one
		// minus the binomial fair-area mass and Var(λ_n)/(a(1−a)) = 1/n.
		unfairAt = func(blocks int) float64 {
			return clamp01(1 - core.PoWFairProbExact(blocks, a, n.Eps))
		}
		robustCheck = func(blocks int, unfairFinal float64) bool {
			return blocks >= core.PoWMinBlocks(a, params) || unfairFinal <= n.Delta
		}
		equitability = 1 / float64(n.Blocks)
	case "mlpos":
		// Azuma upper bound (Theorem 4.3's proof); the Pólya-urn limit
		// Beta(a/w, b/w) gives Var(λ_∞)/(a(1−a)) = w/(1+w) and diagnoses
		// horizons that can never reach (ε,δ)-fairness.
		unfairAt = func(blocks int) float64 {
			return clamp01(core.AzumaUnfairBoundMLPoS(blocks, n.W, a, n.Eps))
		}
		robustCheck = func(blocks int, unfairFinal float64) bool {
			return core.MLPoSSufficient(blocks, n.W, a, params) || unfairFinal <= n.Delta
		}
		equitability = n.W / (1 + n.W)
		neverFair = core.MLPoSLimitFairProb(a, n.W, n.Eps) < 1-n.Delta
	case "cpos":
		// Azuma upper bound from the proof of Theorem 4.10. The
		// dispersion proxy reuses the ML-PoS limit with the compound
		// effective reward w_eff = w²/((w+v)·P) — the factor by which
		// Theorem 4.10's variance term shrinks Theorem 4.3's.
		unfairAt = func(blocks int) float64 {
			return clamp01(core.AzumaUnfairBoundCPoS(blocks, n.W, n.V, n.Shards, a, n.Eps))
		}
		robustCheck = func(blocks int, unfairFinal float64) bool {
			return core.CPoSSufficient(blocks, n.W, n.V, n.Shards, a, params) || unfairFinal <= n.Delta
		}
		weff := n.W * n.W / ((n.W + n.V) * float64(n.Shards))
		equitability = weff / (1 + weff)
	case "slpos":
		// Theorem 4.9's deterministic skeleton: the mean-field share
		// trajectory m(t). The fluid limit drifts away from every a ≠ ½,
		// so the unfair probability is the 0/1 indicator of m(t) leaving
		// the fair area, and dispersion uses the Bernoulli absorption
		// approximation λ_∞ ∈ {0, 1} with mean m(n).
		mf := core.SLPoSMeanField(n.W)
		unfairAt = func(blocks int) float64 {
			m := mf.ShareAt(a, blocks)
			lo, hi := params.FairArea(a)
			if m < lo || m > hi {
				return 1
			}
			return 0
		}
		m := mf.ShareAt(a, n.Blocks)
		meanLambda = m
		expectFair = math.Abs(m-a) <= 1e-9
		robustCheck = func(blocks int, unfairFinal float64) bool {
			return unfairFinal <= n.Delta
		}
		equitability = clamp01(m*(1-m)) / (a * (1 - a))
	default:
		return Evaluation{}, unsupported("theory", n.Protocol, theoryProtocols)
	}

	unfairFinal := unfairAt(n.Blocks)
	conv := -1
	if !neverFair {
		// Same trailing-scan semantics as montecarlo.Result: the first
		// checkpoint from which the unfair probability stays ≤ δ.
		for _, c := range n.Checkpoints {
			if unfairAt(c) <= n.Delta {
				if conv == -1 {
					conv = c
				}
			} else {
				conv = -1
			}
		}
	}
	if neverFair && unfairFinal <= n.Delta {
		// The finite-horizon bound can undercut the limit distribution;
		// the limit wins — fairness that cannot survive n → ∞ is the
		// Figure 2(b)/5(a) phenomenon the theory exists to flag.
		unfairFinal = clamp01(1 - core.MLPoSLimitFairProb(a, n.W, n.Eps))
	}

	return Evaluation{
		Verdict: core.Verdict{
			Protocol:          p.Name(),
			Share:             a,
			MeanLambda:        meanLambda,
			ExpectationalFair: expectFair,
			UnfairProbability: unfairFinal,
			RobustFair:        robustCheck(n.Blocks, unfairFinal),
		},
		Equitability:     equitability,
		ConvergenceBlock: conv,
	}, nil
}

// clamp01 clips a probability(-bound) into [0, 1].
func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
