// Package sweep is the scenario sweep engine: it fans a list of
// declarative fairness scenarios (internal/scenario) across a worker
// pool, evaluates each one with the deterministic Monte-Carlo engine
// (internal/montecarlo), deduplicates and caches results by scenario
// content hash, and aggregates everything into a Report with per-scenario
// fairness verdicts and sweep-level throughput/cache statistics.
//
// Determinism: scenario seeds live in the specs themselves and montecarlo
// derives per-trial streams from them, so a sweep's Report is a pure
// function of its scenario list — independent of worker count, scheduling
// and cache state (cache hits change only the timing stats, never the
// verdicts).
package sweep

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/scenario"
	"repro/internal/table"
)

// Options configures a sweep run.
type Options struct {
	// Workers caps scenario-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// TrialWorkers caps each scenario's inner Monte-Carlo parallelism.
	// 0 picks a sensible default: 1 while scenarios already saturate the
	// machine, GOMAXPROCS when scenarios run one at a time.
	TrialWorkers int
	// Cache, when non-nil, is consulted before computing a scenario and
	// filled afterwards. Sharing one Cache across sweeps lets
	// overlapping grids skip recomputation entirely.
	Cache *Cache
	// OnOutcome, when non-nil, streams each outcome as it is produced
	// (calls are serialised; completion order is scheduling-dependent).
	OnOutcome func(Outcome)
}

// Outcome is the evaluation of one scenario.
type Outcome struct {
	// Name is the scenario's label, Hash its canonical content hash.
	Name string        `json:"name,omitempty"`
	Hash string        `json:"hash"`
	Spec scenario.Spec `json:"spec"`
	// Share is the tracked miner's initial resource share a.
	Share float64 `json:"share"`
	// Verdict carries both fairness notions at the final horizon.
	Verdict core.Verdict `json:"verdict"`
	// Equitability is Fanti et al.'s normalised dispersion of final λ.
	Equitability float64 `json:"equitability"`
	// ConvergenceBlock is the first checkpoint from which the unfair
	// probability stays at or below δ, or -1 (Table 1's "Cvg. Time").
	ConvergenceBlock int `json:"convergence_block"`
	// ElapsedMS is the wall time spent computing this scenario; 0 for
	// cache hits.
	ElapsedMS float64 `json:"elapsed_ms"`
	// CacheHit reports whether the outcome was served without running
	// any Monte-Carlo trial (result cache or in-sweep deduplication).
	CacheHit bool `json:"cache_hit"`
}

// Stats summarises a sweep run.
type Stats struct {
	// Scenarios is the number of requested scenarios, CacheHits how many
	// were answered without computing, Computed how many ran.
	Scenarios int `json:"scenarios"`
	CacheHits int `json:"cache_hits"`
	Computed  int `json:"computed"`
	// TrialsRun counts Monte-Carlo trials actually executed.
	TrialsRun int64 `json:"trials_run"`
	// WallMS is the end-to-end sweep wall time.
	WallMS float64 `json:"wall_ms"`
}

// ScenariosPerSec returns sweep throughput over the full wall time.
func (s Stats) ScenariosPerSec() float64 {
	if s.WallMS <= 0 {
		return 0
	}
	return float64(s.Scenarios) / (s.WallMS / 1000)
}

// Report is the aggregated result of one sweep. Outcomes are in the
// order of the input scenario list.
type Report struct {
	Outcomes []Outcome `json:"outcomes"`
	Stats    Stats     `json:"stats"`
}

// Run evaluates every scenario and aggregates the outcomes. Scenarios
// are validated up front; identical scenarios (same content hash) are
// computed once and fanned out to every position that requested them.
func Run(specs []scenario.Spec, opts Options) (*Report, error) {
	start := time.Now()
	norm := make([]scenario.Spec, len(specs))
	hashes := make([]string, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: scenario %d (%s): %w", i, s.Name, err)
		}
		norm[i] = s.Normalized()
		// Outcomes carry the per-position Name; the cached canonical
		// spec must not leak one sweep's label into another's report.
		norm[i].Name = ""
		h, err := s.Hash()
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %d (%s): %w", i, s.Name, err)
		}
		hashes[i] = h
	}

	// Group positions by content hash: each unique scenario is computed
	// (or cache-served) exactly once.
	groups := make(map[string][]int, len(specs))
	uniq := make([]string, 0, len(specs))
	for i, h := range hashes {
		if _, seen := groups[h]; !seen {
			uniq = append(uniq, h)
		}
		groups[h] = append(groups[h], i)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}
	trialWorkers := opts.TrialWorkers
	if trialWorkers <= 0 {
		if workers > 1 {
			trialWorkers = 1
		} else {
			trialWorkers = runtime.GOMAXPROCS(0)
		}
	}

	rep := &Report{Outcomes: make([]Outcome, len(specs))}
	rep.Stats.Scenarios = len(specs)

	var (
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
		trialsRun atomic.Int64
		computed  atomic.Int64
		emitMu    sync.Mutex
	)
	hashCh := make(chan string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range hashCh {
				idxs := groups[h]
				spec := norm[idxs[0]]
				out, hit, err := evaluate(spec, h, opts.Cache, trialWorkers, &trialsRun)
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("sweep: scenario %q: %w", specs[idxs[0]].Name, err) })
					continue
				}
				if !hit {
					computed.Add(1)
				}
				for j, idx := range idxs {
					o := out
					o.Name = specs[idx].Name
					// Positions beyond the first reuse the computation.
					o.CacheHit = hit || j > 0
					if o.CacheHit {
						o.ElapsedMS = 0
					}
					rep.Outcomes[idx] = o
					if opts.OnOutcome != nil {
						emitMu.Lock()
						opts.OnOutcome(o)
						emitMu.Unlock()
					}
				}
			}
		}()
	}
	for _, h := range uniq {
		hashCh <- h
	}
	close(hashCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	rep.Stats.Computed = int(computed.Load())
	rep.Stats.CacheHits = len(specs) - rep.Stats.Computed
	rep.Stats.TrialsRun = trialsRun.Load()
	rep.Stats.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return rep, nil
}

// evaluate answers one unique scenario: from the cache when possible,
// otherwise by running its Monte-Carlo experiment and caching the result.
func evaluate(n scenario.Spec, hash string, cache *Cache, trialWorkers int, trialsRun *atomic.Int64) (Outcome, bool, error) {
	if cache != nil {
		if out, ok := cache.Get(hash); ok {
			return out, true, nil
		}
	}
	begin := time.Now()
	p, err := n.Build()
	if err != nil {
		return Outcome{}, false, err
	}
	var gameOpts []game.Option
	if n.WithholdEvery > 0 {
		gameOpts = append(gameOpts, game.WithWithholding(n.WithholdEvery))
	}
	res, err := montecarlo.Run(p, n.Stakes, montecarlo.Config{
		Trials:      n.Trials,
		Blocks:      n.Blocks,
		Checkpoints: n.Checkpoints,
		Miner:       n.Miner,
		Seed:        n.Seed,
		Workers:     trialWorkers,
		GameOptions: gameOpts,
		OnTrialDone: func(int, float64) { trialsRun.Add(1) },
	})
	if err != nil {
		return Outcome{}, false, err
	}
	a := n.TrackedShare()
	params := core.Params{Eps: n.Eps, Delta: n.Delta}
	final := res.FinalSamples()
	out := Outcome{
		Hash:             hash,
		Spec:             n,
		Share:            a,
		Verdict:          params.Assess(p.Name(), final, a),
		Equitability:     core.Equitability(final, a),
		ConvergenceBlock: res.ConvergenceBlock(a, n.Eps, n.Delta),
		ElapsedMS:        float64(time.Since(begin).Microseconds()) / 1000,
	}
	if cache != nil {
		cache.Add(hash, out)
	}
	return out, false, nil
}

// Table renders the report as an aligned text table, one scenario per
// row, fairest-relevant columns first.
func (r *Report) Table() string {
	tb := table.New("Scenario", "Protocol", "a", "E[lambda]", "Expect.", "Unfair", "Robust", "Equit.", "Cvg.", "Cache").
		AlignAll(table.Right).SetAlign(0, table.Left)
	for _, o := range r.Outcomes {
		name := o.Name
		if name == "" {
			name = o.Hash[:12]
		}
		conv := "Never"
		if o.ConvergenceBlock >= 0 {
			conv = fmt.Sprintf("%d", o.ConvergenceBlock)
		}
		hit := ""
		if o.CacheHit {
			hit = "hit"
		}
		tb.AddRow(name, o.Verdict.Protocol,
			fmt.Sprintf("%.3f", o.Share),
			fmt.Sprintf("%.4f", o.Verdict.MeanLambda),
			o.Verdict.ExpectationalFair,
			fmt.Sprintf("%.3f", o.Verdict.UnfairProbability),
			o.Verdict.RobustFair,
			fmt.Sprintf("%.4f", o.Equitability),
			conv, hit)
	}
	return tb.String()
}

// JSON renders the full report, outcomes and stats, as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary renders the sweep statistics as one line.
func (r *Report) Summary() string {
	s := r.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "%d scenarios: %d computed, %d cache hits, %d trials, %.1fms wall (%.2f scenarios/s)",
		s.Scenarios, s.Computed, s.CacheHits, s.TrialsRun, s.WallMS, s.ScenariosPerSec())
	return b.String()
}
