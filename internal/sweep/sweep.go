// Package sweep is the scenario sweep engine: it fans a list of
// declarative fairness scenarios (internal/scenario) across a worker
// pool, evaluates each one through a pluggable Evaluator backend
// (Monte-Carlo, closed-form theory, or block-level chainsim),
// deduplicates and caches results by scenario content hash through a
// pluggable CacheStore (in-memory LRU or content-addressed disk), and
// aggregates everything into a Report with per-scenario fairness
// verdicts and sweep-level throughput/cache statistics.
//
// Runs are context-aware: RunContext stops dispatching on cancellation,
// interrupts the in-flight evaluations, and returns the partial report
// together with ctx.Err(), so callers can stream what completed.
//
// Determinism: scenario seeds live in the specs themselves and backends
// derive per-trial streams from them, so a sweep's Report is a pure
// function of its scenario list and backend — independent of worker
// count, scheduling and cache state (cache hits change only the timing
// stats, never the verdicts).
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/table"
	"repro/internal/telemetry"
)

// CacheStore is a pluggable result cache keyed by "backend:contenthash".
// Two implementations ship with the engine: the in-memory LRU Cache and
// the cross-process DiskCache. Implementations must be safe for
// concurrent use; Get/Add follow cache semantics — lossy, never failing
// the computation they memoise.
type CacheStore interface {
	// Get returns the cached outcome under key, if present.
	Get(key string) (Outcome, bool)
	// Add stores an outcome under key (best-effort).
	Add(key string, out Outcome)
	// Len returns the number of cached outcomes.
	Len() int
}

// Options configures a sweep run.
type Options struct {
	// Workers caps scenario-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// TrialWorkers caps each scenario's inner Monte-Carlo parallelism.
	// 0 picks a sensible default: 1 while scenarios already saturate the
	// machine, GOMAXPROCS when scenarios run one at a time.
	TrialWorkers int
	// Cache, when non-nil, is consulted before computing a scenario and
	// filled afterwards. Sharing one CacheStore across sweeps (or, for a
	// DiskCache, across processes) lets overlapping grids skip
	// recomputation entirely. Keys are namespaced by backend, so caches
	// may be shared between sweeps running different Evaluators.
	Cache CacheStore
	// Evaluator selects the backend answering each scenario; nil means
	// the reference MonteCarloEvaluator.
	Evaluator Evaluator
	// OnOutcome, when non-nil, streams each outcome as it is produced
	// (calls are serialised; completion order is scheduling-dependent).
	OnOutcome func(Outcome)
	// Metrics, when non-nil, receives the sweep's telemetry: scenario,
	// cache-hit, computed and trial counters plus the per-backend
	// fairness_eval_seconds latency histogram. Handles are resolved once
	// per run, so the per-scenario cost is a few atomic adds.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives the sweep's structured trace events
	// (sweep_start, one sweep_eval per unique scenario, sweep_done).
	Tracer *telemetry.Tracer
}

// Outcome is the evaluation of one scenario.
type Outcome struct {
	// Name is the scenario's label, Hash its canonical content hash.
	Name string        `json:"name,omitempty"`
	Hash string        `json:"hash"`
	Spec scenario.Spec `json:"spec"`
	// Share is the tracked miner's initial resource share a.
	Share float64 `json:"share"`
	// Verdict carries both fairness notions at the final horizon.
	Verdict core.Verdict `json:"verdict"`
	// Equitability is Fanti et al.'s normalised dispersion of final λ.
	Equitability float64 `json:"equitability"`
	// ConvergenceBlock is the first checkpoint from which the unfair
	// probability stays at or below δ, or -1 (Table 1's "Cvg. Time").
	ConvergenceBlock int `json:"convergence_block"`
	// Backend names the Evaluator that produced the outcome.
	Backend string `json:"backend,omitempty"`
	// TrialsRun is the number of trials the evaluation actually executed
	// and TrialsBudget the configured count; they differ only when an
	// adaptive stopping rule resolved the verdict early (EarlyStopped).
	// Zero for closed-form backends.
	TrialsRun    int64 `json:"trials_run,omitempty"`
	TrialsBudget int64 `json:"trials_budget,omitempty"`
	EarlyStopped bool  `json:"early_stopped,omitempty"`
	// AchievedEps is the Hoeffding half-width on the unfair probability
	// at the run's confidence given TrialsRun samples; AchievedDelta the
	// resulting certified upper bound on the unfair probability. Zero
	// for closed-form backends.
	AchievedEps   float64 `json:"achieved_eps,omitempty"`
	AchievedDelta float64 `json:"achieved_delta,omitempty"`
	// Arena, set only by the best-response arena backend, is the
	// equilibrium the verdict was assessed at: the fixed-point strategy
	// profile, per-miner payoffs and honest-baseline payoffs.
	Arena *arena.Equilibrium `json:"arena,omitempty"`
	// ElapsedMS is the wall time spent computing this scenario; 0 for
	// cache hits.
	ElapsedMS float64 `json:"elapsed_ms"`
	// CacheHit reports whether the outcome was served without running
	// any evaluation (result cache or in-sweep deduplication).
	CacheHit bool `json:"cache_hit"`
}

// Stats summarises a sweep run.
type Stats struct {
	// Scenarios is the number of requested scenarios, CacheHits how many
	// were answered without computing, Computed how many ran.
	Scenarios int `json:"scenarios"`
	CacheHits int `json:"cache_hits"`
	Computed  int `json:"computed"`
	// TrialsRun counts Monte-Carlo trials actually executed.
	TrialsRun int64 `json:"trials_run"`
	// WallMS is the end-to-end sweep wall time.
	WallMS float64 `json:"wall_ms"`
}

// ScenariosPerSec returns sweep throughput over the full wall time.
func (s Stats) ScenariosPerSec() float64 {
	if s.WallMS <= 0 {
		return 0
	}
	return float64(s.Scenarios) / (s.WallMS / 1000)
}

// Report is the aggregated result of one sweep. Outcomes are in the
// order of the input scenario list.
type Report struct {
	Outcomes []Outcome `json:"outcomes"`
	Stats    Stats     `json:"stats"`
	// Partial marks a report cut short by context cancellation: positions
	// whose outcome has an empty Hash were never evaluated.
	Partial bool `json:"partial,omitempty"`
}

// Run evaluates every scenario and aggregates the outcomes. It is
// RunContext with a background context.
func Run(specs []scenario.Spec, opts Options) (*Report, error) {
	return RunContext(context.Background(), specs, opts)
}

// RunContext evaluates every scenario and aggregates the outcomes.
// Scenarios are validated up front; identical scenarios (same content
// hash) are computed once and fanned out to every position that
// requested them.
//
// Cancellation: when ctx ends mid-sweep, no new scenario starts, the
// in-flight evaluations are interrupted at their next check, and
// RunContext returns the PARTIAL report — completed positions filled,
// the rest zero-valued and the report marked Partial — together with
// ctx.Err(). Completed outcomes are identical to what an uncancelled
// sweep would have produced.
func RunContext(ctx context.Context, specs []scenario.Spec, opts Options) (*Report, error) {
	start := time.Now()
	norm := make([]scenario.Spec, len(specs))
	hashes := make([]string, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: scenario %d (%s): %w", i, s.Name, err)
		}
		norm[i] = s.Normalized()
		// Outcomes carry the per-position Name; the cached canonical
		// spec must not leak one sweep's label into another's report.
		norm[i].Name = ""
		h, err := s.Hash()
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %d (%s): %w", i, s.Name, err)
		}
		hashes[i] = h
	}

	// Group positions by content hash: each unique scenario is computed
	// (or cache-served) exactly once.
	groups := make(map[string][]int, len(specs))
	uniq := make([]string, 0, len(specs))
	for i, h := range hashes {
		if _, seen := groups[h]; !seen {
			uniq = append(uniq, h)
		}
		groups[h] = append(groups[h], i)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}
	trialWorkers := opts.TrialWorkers
	if trialWorkers <= 0 {
		if workers > 1 {
			trialWorkers = 1
		} else {
			trialWorkers = runtime.GOMAXPROCS(0)
		}
	}

	rep := &Report{Outcomes: make([]Outcome, len(specs))}
	rep.Stats.Scenarios = len(specs)

	ev := withTrialWorkers(opts.Evaluator, trialWorkers)

	backend := ev.Name()
	var (
		mScenarios = opts.Metrics.Counter("fairness_sweep_scenarios_total", "backend", backend)
		mHits      = opts.Metrics.Counter("fairness_sweep_cache_hits_total", "backend", backend)
		mComputed  = opts.Metrics.Counter("fairness_sweep_computed_total", "backend", backend)
		mTrials    = opts.Metrics.Counter("fairness_sweep_trials_total", "backend", backend)
		hEval      = opts.Metrics.Histogram("fairness_eval_seconds", telemetry.DefBuckets, "backend", backend)
	)
	// When the caller's context carries a span (a traced job or cluster
	// run), every flat sweep event is stamped with its trace_id so the
	// NDJSON stream joins against the span tree.
	var traceAttrs []any
	if tid := telemetry.SpanContextFrom(ctx).TraceID; tid != "" {
		traceAttrs = []any{"trace_id", tid}
	}
	opts.Tracer.Emit("sweep_start", append([]any{
		"backend", backend, "scenarios", len(specs), "unique", len(uniq)}, traceAttrs...)...)

	var (
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
		trialsRun atomic.Int64
		computed  atomic.Int64
		emitMu    sync.Mutex
	)
	hashCh := make(chan string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range hashCh {
				if ctx.Err() != nil {
					continue // drain the channel without starting new work
				}
				idxs := groups[h]
				spec := norm[idxs[0]]
				out, hit, trials, err := evaluate(ctx, ev, spec, h, opts.Cache)
				trialsRun.Add(trials)
				mTrials.Add(trials)
				if err != nil {
					if ctx.Err() != nil {
						continue // cancellation, not an evaluation failure
					}
					errOnce.Do(func() { firstErr = fmt.Errorf("sweep: scenario %q: %w", specs[idxs[0]].Name, err) })
					continue
				}
				if !hit {
					computed.Add(1)
					mComputed.Inc()
					hEval.Observe(out.ElapsedMS / 1000)
				}
				opts.Tracer.Emit("sweep_eval", append([]any{"backend", backend, "hash", h,
					"name", specs[idxs[0]].Name, "cache_hit", hit,
					"elapsed_ms", out.ElapsedMS, "trials", trials, "positions", len(idxs)},
					traceAttrs...)...)
				for j, idx := range idxs {
					o := out
					o.Name = specs[idx].Name
					// Positions beyond the first reuse the computation.
					o.CacheHit = hit || j > 0
					if o.CacheHit {
						o.ElapsedMS = 0
					}
					mScenarios.Inc()
					if o.CacheHit {
						mHits.Inc()
					}
					rep.Outcomes[idx] = o
					if opts.OnOutcome != nil {
						emitMu.Lock()
						opts.OnOutcome(o)
						emitMu.Unlock()
					}
				}
			}
		}()
	}
dispatch:
	for _, h := range uniq {
		select {
		case hashCh <- h:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(hashCh)
	wg.Wait()

	rep.Stats.TrialsRun = trialsRun.Load()
	rep.Stats.Computed = int(computed.Load())
	rep.Stats.WallMS = float64(time.Since(start).Microseconds()) / 1000
	if cerr := ctx.Err(); cerr != nil {
		rep.Partial = true
		filled := 0
		for _, o := range rep.Outcomes {
			if o.Hash != "" {
				filled++
			}
		}
		rep.Stats.CacheHits = filled - rep.Stats.Computed
		opts.Tracer.Emit("sweep_done", append([]any{"backend", backend, "scenarios", rep.Stats.Scenarios,
			"computed", rep.Stats.Computed, "cache_hits", rep.Stats.CacheHits,
			"trials", rep.Stats.TrialsRun, "wall_ms", rep.Stats.WallMS, "partial", true},
			traceAttrs...)...)
		return rep, cerr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	rep.Stats.CacheHits = len(specs) - rep.Stats.Computed
	opts.Tracer.Emit("sweep_done", append([]any{"backend", backend, "scenarios", rep.Stats.Scenarios,
		"computed", rep.Stats.Computed, "cache_hits", rep.Stats.CacheHits,
		"trials", rep.Stats.TrialsRun, "wall_ms", rep.Stats.WallMS, "partial", false},
		traceAttrs...)...)
	return rep, nil
}

// CacheKey returns the result-cache key of a scenario hash under a
// backend: keys are namespaced by evaluator name so different backends
// never serve each other's answers.
func CacheKey(backend, hash string) string { return backend + ":" + hash }

// evaluate answers one unique scenario: from the cache when possible,
// otherwise through the Evaluator, caching the result.
func evaluate(ctx context.Context, ev Evaluator, n scenario.Spec, hash string, cache CacheStore) (Outcome, bool, int64, error) {
	key := CacheKey(ev.Name(), hash)
	if cache != nil {
		if out, ok := cache.Get(key); ok {
			return out, true, 0, nil
		}
	}
	begin := time.Now()
	evl, err := ev.Evaluate(ctx, n)
	if err != nil {
		return Outcome{}, false, evl.TrialsRun, err
	}
	out := Outcome{
		Hash:             hash,
		Spec:             n,
		Share:            n.TrackedShare(),
		Backend:          ev.Name(),
		Verdict:          evl.Verdict,
		Equitability:     evl.Equitability,
		ConvergenceBlock: evl.ConvergenceBlock,
		TrialsRun:        evl.TrialsRun,
		TrialsBudget:     evl.TrialsBudget,
		EarlyStopped:     evl.EarlyStopped,
		AchievedEps:      evl.AchievedEps,
		AchievedDelta:    evl.AchievedDelta,
		Arena:            evl.Arena,
		ElapsedMS:        float64(time.Since(begin).Microseconds()) / 1000,
	}
	if cache != nil {
		cache.Add(key, out)
	}
	return out, false, evl.TrialsRun, nil
}

// Table renders the report as an aligned text table, one scenario per
// row, fairest-relevant columns first.
func (r *Report) Table() string {
	tb := table.New("Scenario", "Protocol", "a", "E[lambda]", "Expect.", "Unfair", "Robust", "Equit.", "Cvg.", "Cache").
		AlignAll(table.Right).SetAlign(0, table.Left)
	for _, o := range r.Outcomes {
		name := o.Name
		if name == "" {
			name = o.Hash[:12]
		}
		conv := "Never"
		if o.ConvergenceBlock >= 0 {
			conv = fmt.Sprintf("%d", o.ConvergenceBlock)
		}
		hit := ""
		if o.CacheHit {
			hit = "hit"
		}
		tb.AddRow(name, o.Verdict.Protocol,
			fmt.Sprintf("%.3f", o.Share),
			fmt.Sprintf("%.4f", o.Verdict.MeanLambda),
			o.Verdict.ExpectationalFair,
			fmt.Sprintf("%.3f", o.Verdict.UnfairProbability),
			o.Verdict.RobustFair,
			fmt.Sprintf("%.4f", o.Equitability),
			conv, hit)
	}
	return tb.String()
}

// JSON renders the full report, outcomes and stats, as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary renders the sweep statistics as one line.
func (r *Report) Summary() string {
	s := r.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "%d scenarios: %d computed, %d cache hits, %d trials, %.1fms wall (%.2f scenarios/s)",
		s.Scenarios, s.Computed, s.CacheHits, s.TrialsRun, s.WallMS, s.ScenariosPerSec())
	return b.String()
}
