package sweep

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/scenario"
)

// selfishSpec is a profitable selfish-mining scenario: a 40% attacker
// with γ=0 sits above the 1/3 Eyal–Sirer threshold.
func selfishSpec() scenario.Spec {
	return scenario.Spec{
		Protocol: "pow", Stake: 0.4, Miners: 5, Blocks: 2000, Trials: 60, Seed: 13,
		Adversary: &scenario.Adversary{Strategy: "selfish", Gamma: 0},
	}
}

func TestMonteCarloSelfishMatchesClosedForm(t *testing.T) {
	want, err := attack.SelfishMining{Alpha: 0.4, Gamma: 0}.Revenue()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run([]scenario.Spec{selfishSpec()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if math.Abs(o.Verdict.MeanLambda-want) > 0.02 {
		t.Errorf("mean lambda %v, closed form %v", o.Verdict.MeanLambda, want)
	}
	if o.Verdict.ExpectationalFair {
		t.Error("profitable selfish mining must break expectational fairness")
	}
	if o.Verdict.MeanLambda <= o.Share {
		t.Errorf("attacker revenue %v not above power share %v", o.Verdict.MeanLambda, o.Share)
	}
	if rep.Stats.TrialsRun != 60 {
		t.Errorf("trials = %d", rep.Stats.TrialsRun)
	}
}

func TestMonteCarloSelfishTrackedHonestVictim(t *testing.T) {
	// Tracking an honest miner while miner 0 attacks: the victim's λ must
	// fall below its power share by the attacker's excess revenue, split
	// power-proportionally across the honest pool.
	spec := selfishSpec()
	spec.Miner = 1 // track an honest miner (share 0.15 of the 5-miner pack)
	rep, err := Run([]scenario.Spec{spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	rev, _ := attack.SelfishMining{Alpha: 0.4, Gamma: 0}.Revenue()
	want := (1 - rev) * (0.15 / 0.6)
	if math.Abs(o.Verdict.MeanLambda-want) > 0.02 {
		t.Errorf("victim mean lambda %v, want ≈ %v", o.Verdict.MeanLambda, want)
	}
	if o.Verdict.MeanLambda >= o.Share {
		t.Errorf("victim %v not squeezed below its share %v", o.Verdict.MeanLambda, o.Share)
	}
}

func TestMonteCarloSelfishBelowThresholdFallsBackToHonest(t *testing.T) {
	// A 20% attacker with γ=0 is unprofitable; the rational adversary
	// mines honestly, so the run must be bit-identical to the honest twin
	// of the spec (same seed, adversary block stripped).
	spec := scenario.Spec{
		Protocol: "pow", Stake: 0.2, Blocks: 800, Trials: 40, Seed: 7,
		Adversary: &scenario.Adversary{Strategy: "selfish", Gamma: 0},
	}
	honest := spec
	honest.Adversary = nil
	adv, err := Run([]scenario.Spec{spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hon, err := Run([]scenario.Spec{honest}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Outcomes[0].Verdict != hon.Outcomes[0].Verdict {
		t.Errorf("below-threshold adversary differs from honest run:\n%+v\n%+v",
			adv.Outcomes[0].Verdict, hon.Outcomes[0].Verdict)
	}
	if adv.Outcomes[0].Hash == hon.Outcomes[0].Hash {
		t.Error("adversarial and honest specs must still hash differently")
	}
}

func TestMonteCarloForkSkewMatchesEffectivePowers(t *testing.T) {
	spec := scenario.Spec{
		Protocol: "pow", Stakes: []float64{0.6, 0.2, 0.1, 0.1},
		Blocks: 2000, Trials: 60, Seed: 3,
		Network: &scenario.Network{ForkRate: 0.8},
	}
	rep, err := Run([]scenario.Spec{spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eff, err := attack.ForkEffectivePowers(spec.Stakes, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if math.Abs(o.Verdict.MeanLambda-eff[0]) > 0.02 {
		t.Errorf("mean lambda %v, effective power %v", o.Verdict.MeanLambda, eff[0])
	}
	if o.Verdict.MeanLambda <= 0.6 {
		t.Errorf("fork skew did not favour the whale: %v", o.Verdict.MeanLambda)
	}
}

func TestTheoryRejectsAdversaryAndNetworkWithTypedError(t *testing.T) {
	cases := []struct {
		spec    scenario.Spec
		feature string
	}{
		{selfishSpec(), "adversary"},
		{scenario.Spec{Protocol: "pow", Stake: 0.3, Blocks: 100, Trials: 10,
			Network: &scenario.Network{ForkRate: 0.2}}, "network"},
		{scenario.Spec{Protocol: "mlpos", Stake: 0.3, Blocks: 100, Trials: 10,
			WithholdEvery: 5}, "withholding"},
		{scenario.Spec{Protocol: "eos", Stake: 0.3, Blocks: 100, Trials: 10}, "protocol"},
	}
	ev := &TheoryEvaluator{}
	for _, c := range cases {
		_, err := ev.Evaluate(context.Background(), c.spec.Normalized())
		if !errors.Is(err, ErrBackend) {
			t.Fatalf("%s: err = %v, want ErrBackend", c.feature, err)
		}
		var capErr *CapabilityError
		if !errors.As(err, &capErr) {
			t.Fatalf("%s: err = %T, want *CapabilityError", c.feature, err)
		}
		if capErr.Backend != "theory" || capErr.Feature != c.feature {
			t.Errorf("capability error = %+v, want backend theory feature %s", capErr, c.feature)
		}
	}
}

func TestChainSimSelfishParityWithMonteCarlo(t *testing.T) {
	// The block-level selfish simulation and the abstract state machine
	// must agree on the attacker's stationary revenue at γ=0 (exact for
	// the aggregate model) within sampling noise.
	spec := selfishSpec()
	spec.Blocks, spec.Trials = 1500, 40
	// A coarse target (≈16 hashes per miner per event) keeps the test
	// fast; the digest-interpolated race times keep it power-exact.
	cs, err := Run([]scenario.Spec{spec}, Options{Evaluator: &ChainSimEvaluator{PoWTarget: 1 << 60}})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Run([]scenario.Spec{spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cv, mv := cs.Outcomes[0].Verdict, mc.Outcomes[0].Verdict
	if d := math.Abs(cv.MeanLambda - mv.MeanLambda); d > 0.03 {
		t.Errorf("mean lambda: chainsim %.4f vs montecarlo %.4f (diff %.4f)", cv.MeanLambda, mv.MeanLambda, d)
	}
	if cv.ExpectationalFair {
		t.Error("chainsim selfish run must break expectational fairness")
	}
	// Determinism (the cache-poisoning guarantee) on the adversarial path.
	cs2, err := Run([]scenario.Spec{spec}, Options{Evaluator: &ChainSimEvaluator{PoWTarget: 1 << 60}})
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Outcomes[0].Verdict != cv {
		t.Errorf("chainsim selfish not deterministic:\n%+v\n%+v", cv, cs2.Outcomes[0].Verdict)
	}
}

func TestAdversarialSpecsCacheUnderDistinctKeys(t *testing.T) {
	// An adversarial spec and its honest twin must never share a cache
	// entry, even though the below-threshold adversary computes the same
	// numbers.
	honest := scenario.Spec{Protocol: "pow", Stake: 0.2, Blocks: 200, Trials: 10, Seed: 2}
	adv := honest
	adv.Adversary = &scenario.Adversary{Strategy: "selfish", Gamma: 0}
	cache := NewCache(16)
	if _, err := Run([]scenario.Spec{honest, adv}, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", cache.Len())
	}
}

func TestCapabilityOfDeclarations(t *testing.T) {
	mc := CapabilityOf(nil)
	if mc.Backend != "montecarlo" || !mc.Adversary || !mc.Network || !mc.Withholding {
		t.Errorf("montecarlo capabilities: %+v", mc)
	}
	th := CapabilityOf(&TheoryEvaluator{})
	if th.Backend != "theory" || th.Adversary || th.Network || th.Withholding {
		t.Errorf("theory capabilities: %+v", th)
	}
	cs := CapabilityOf(&ChainSimEvaluator{})
	if cs.Backend != "chainsim" || !cs.Adversary || !cs.Network {
		t.Errorf("chainsim capabilities: %+v", cs)
	}
	if len(cs.Protocols) >= len(mc.Protocols) {
		t.Errorf("chainsim should cover fewer protocols than montecarlo: %v vs %v", cs.Protocols, mc.Protocols)
	}
}
