package sweep

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/scenario"
)

// quickGrid is a small 2-protocol × 2-stake grid for fast tests.
func quickGrid(t *testing.T) []scenario.Spec {
	t.Helper()
	g := scenario.Grid{
		Base:      scenario.Spec{Blocks: 300, Trials: 40, Seed: 5},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.2, 0.3},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	specs := quickGrid(t)
	var reports []*Report
	for _, workers := range []int{1, 4} {
		rep, err := Run(specs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	a, b := reports[0], reports[1]
	if len(a.Outcomes) != len(specs) || len(b.Outcomes) != len(specs) {
		t.Fatalf("outcome counts: %d, %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		oa, ob := a.Outcomes[i], b.Outcomes[i]
		if oa.Hash != ob.Hash || oa.Verdict != ob.Verdict || oa.Equitability != ob.Equitability ||
			oa.ConvergenceBlock != ob.ConvergenceBlock {
			t.Errorf("outcome %d differs across worker counts:\n%+v\n%+v", i, oa, ob)
		}
	}
}

func TestRunMatchesDirectMonteCarlo(t *testing.T) {
	// A sweep outcome must equal what montecarlo + core produce directly
	// for the same scenario — the sweep engine adds orchestration, not
	// semantics.
	spec := scenario.Spec{Protocol: "mlpos", W: 0.01, Stake: 0.2, Blocks: 400, Trials: 60, Seed: 21}
	rep, err := Run([]scenario.Spec{spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := spec.Normalized()
	p, err := n.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := montecarlo.Run(p, n.Stakes, montecarlo.Config{
		Trials: n.Trials, Blocks: n.Blocks, Checkpoints: n.Checkpoints,
		Seed: n.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := core.Params{Eps: 0.1, Delta: 0.1}.Assess("ML-PoS", res.FinalSamples(), 0.2)
	got := rep.Outcomes[0].Verdict
	if got != want {
		t.Errorf("sweep verdict %+v != direct verdict %+v", got, want)
	}
	if eq := rep.Outcomes[0].Equitability; math.Abs(eq-core.Equitability(res.FinalSamples(), 0.2)) > 1e-15 {
		t.Errorf("equitability mismatch: %v", eq)
	}
}

func TestCacheAvoidsRecomputation(t *testing.T) {
	specs := quickGrid(t)
	cache := NewCache(0)
	cold, err := Run(specs, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Computed != len(specs) || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold stats: %+v", cold.Stats)
	}
	warm, err := Run(specs, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Computed != 0 {
		t.Errorf("warm run recomputed %d scenarios", warm.Stats.Computed)
	}
	if warm.Stats.CacheHits != len(specs) || warm.Stats.TrialsRun != 0 {
		t.Errorf("warm stats: %+v", warm.Stats)
	}
	for i := range specs {
		if !warm.Outcomes[i].CacheHit {
			t.Errorf("outcome %d not marked as cache hit", i)
		}
		if warm.Outcomes[i].Verdict != cold.Outcomes[i].Verdict {
			t.Errorf("outcome %d verdict changed through the cache", i)
		}
	}
	// An overlapping sweep (subset grid) also hits.
	sub, err := Run(specs[:2], Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Stats.Computed != 0 {
		t.Errorf("overlapping sweep recomputed %d scenarios", sub.Stats.Computed)
	}
	// A cache hit under a different label reports the requester's name
	// and never leaks the original sweep's label through the spec.
	relabelled := specs[0]
	relabelled.Name = "my-run"
	hit, err := Run([]scenario.Spec{relabelled}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := hit.Outcomes[0].Name; got != "my-run" {
		t.Errorf("outcome name = %q, want %q", got, "my-run")
	}
	if got := hit.Outcomes[0].Spec.Name; got != "" {
		t.Errorf("cached spec leaked a foreign label: %q", got)
	}
}

func TestDuplicateScenariosComputedOnce(t *testing.T) {
	spec := scenario.Spec{Protocol: "pow", Stake: 0.2, Blocks: 200, Trials: 20, Seed: 3}
	specs := []scenario.Spec{spec, spec, spec}
	rep, err := Run(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Computed != 1 || rep.Stats.CacheHits != 2 {
		t.Errorf("stats: %+v, want 1 computed / 2 hits", rep.Stats)
	}
	for i := 1; i < 3; i++ {
		if rep.Outcomes[i].Verdict != rep.Outcomes[0].Verdict {
			t.Errorf("duplicate %d verdict differs", i)
		}
		if !rep.Outcomes[i].CacheHit {
			t.Errorf("duplicate %d not marked reused", i)
		}
	}
}

func TestRunStreamsOutcomes(t *testing.T) {
	specs := quickGrid(t)
	var mu sync.Mutex
	seen := map[string]bool{}
	count := 0
	rep, err := Run(specs, Options{OnOutcome: func(o Outcome) {
		mu.Lock()
		defer mu.Unlock()
		count++
		seen[o.Name] = true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(specs) {
		t.Errorf("streamed %d outcomes, want %d", count, len(specs))
	}
	for _, s := range specs {
		if !seen[s.Name] {
			t.Errorf("scenario %s never streamed", s.Name)
		}
	}
	if rep.Stats.TrialsRun != int64(40*len(specs)) {
		t.Errorf("trials run = %d, want %d", rep.Stats.TrialsRun, 40*len(specs))
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	_, err := Run([]scenario.Spec{{Protocol: "nope"}}, Options{})
	if !errors.Is(err, scenario.ErrSpec) {
		t.Errorf("err = %v, want ErrSpec", err)
	}
}

func TestRunEmptyList(t *testing.T) {
	rep, err := Run(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 0 || rep.Stats.Scenarios != 0 {
		t.Errorf("empty sweep report: %+v", rep)
	}
}

func TestReportRenderers(t *testing.T) {
	specs := quickGrid(t)
	rep, err := Run(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	for _, want := range []string{"Scenario", "Unfair", "PoW", "ML-PoS", "pow/w=0.01/a=0.2"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"outcomes"`, `"stats"`, `"hash"`, `"verdict"`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "4 scenarios") || !strings.Contains(sum, "computed") {
		t.Errorf("summary = %q", sum)
	}
}

func TestSweepPaperShape(t *testing.T) {
	// The engine must reproduce the paper's qualitative ordering on a
	// small grid: PoW robustly fair, ML-PoS (w=0.01) not, SL-PoS
	// catastrophically unfair.
	g := scenario.Grid{
		Base:      scenario.Spec{Stake: 0.2, Blocks: 2000, Trials: 200, Seed: 11},
		Protocols: []string{"pow", "mlpos", "slpos"},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string]Outcome{}
	for _, o := range rep.Outcomes {
		byProto[o.Spec.Protocol] = o
	}
	if !byProto["pow"].Verdict.RobustFair {
		t.Errorf("PoW should be robustly fair: %+v", byProto["pow"].Verdict)
	}
	if byProto["mlpos"].Verdict.UnfairProbability <= byProto["pow"].Verdict.UnfairProbability {
		t.Error("ML-PoS should be less fair than PoW")
	}
	if byProto["slpos"].Verdict.UnfairProbability < 0.9 {
		t.Errorf("SL-PoS unfair prob = %v, want ~1", byProto["slpos"].Verdict.UnfairProbability)
	}
	// Equitability ordering mirrors robust fairness here.
	if byProto["slpos"].Equitability <= byProto["pow"].Equitability {
		t.Error("SL-PoS should disperse far more than PoW")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Add("a", Outcome{Hash: "a"})
	c.Add("b", Outcome{Hash: "b"})
	if _, ok := c.Get("a"); !ok { // touch a → b becomes LRU
		t.Fatal("a missing")
	}
	c.Add("c", Outcome{Hash: "c"})
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	hits, misses := c.Counters()
	if hits != 3 || misses != 1 {
		t.Errorf("counters = %d hits, %d misses", hits, misses)
	}
	// Overwriting an existing key keeps one entry.
	c.Add("a", Outcome{Hash: "a", Name: "v2"})
	if c.Len() != 2 {
		t.Errorf("len after overwrite = %d", c.Len())
	}
	if got, _ := c.Get("a"); got.Name != "v2" {
		t.Errorf("overwrite lost: %+v", got)
	}
}
