package sweep

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/scenario"
)

// Capabilities describes the scenario features one Evaluator backend
// covers. The three shipped backends report theirs; the sweep runner,
// the fairnessd healthz endpoint and the conformance suite all read the
// same declaration, so the capability matrix can never drift from the
// code that enforces it.
type Capabilities struct {
	// Backend is the evaluator name the capabilities describe.
	Backend string `json:"backend"`
	// Protocols lists the covered protocol names.
	Protocols []string `json:"protocols"`
	// Withholding reports whether the Section 6.3 reward-withholding
	// treatment (withhold_every) is covered.
	Withholding bool `json:"withholding"`
	// Adversary reports whether adversary blocks are covered at all.
	Adversary bool `json:"adversary"`
	// Strategies lists the covered adversary strategies (canonical
	// registry names). Empty with Adversary true means every registered
	// strategy — the backward-compatible reading for custom evaluators
	// that predate per-strategy capability.
	Strategies []string `json:"strategies,omitempty"`
	// Network reports whether network blocks (fork rate) are covered.
	Network bool `json:"network"`
}

// Capable is the optional interface evaluators implement to declare
// their coverage. Backends that do not implement it are assumed to
// cover every protocol but none of the treatment blocks.
type Capable interface {
	Capabilities() Capabilities
}

// CapabilityOf returns ev's declared coverage. A nil evaluator means
// the default Monte-Carlo backend.
func CapabilityOf(ev Evaluator) Capabilities {
	if ev == nil {
		return (&MonteCarloEvaluator{}).Capabilities()
	}
	if c, ok := ev.(Capable); ok {
		return c.Capabilities()
	}
	return Capabilities{
		Backend:   ev.Name(),
		Protocols: scenario.ProtocolNames(),
	}
}

// CapabilityError reports exactly which scenario feature put a spec
// outside a backend's coverage. It unwraps to ErrBackend, so existing
// errors.Is(err, ErrBackend) checks keep working; errors.As gives the
// structured fields the conformance suite asserts on.
type CapabilityError struct {
	// Backend is the refusing evaluator.
	Backend string
	// Feature is the uncovered axis: "protocol", "withholding",
	// "adversary", "strategy" (an adversary block whose strategy the
	// backend does not cover), "network" or "resolution" (a parameter
	// the backend's discretisation cannot represent).
	Feature string
	// Protocol is the scenario's protocol name.
	Protocol string
	// Supported lists the backend's covered protocols.
	Supported []string
	// Detail optionally narrows the refusal (e.g. the truncating value).
	Detail string
}

// Error implements error.
func (e *CapabilityError) Error() string {
	msg := fmt.Sprintf("%v: %s backend does not cover %s", ErrBackend, e.Backend, e.Feature)
	if e.Feature == "protocol" {
		msg = fmt.Sprintf("%v: %s backend does not cover protocol %q (covered: %s)",
			ErrBackend, e.Backend, e.Protocol, strings.Join(e.Supported, ", "))
	} else if e.Protocol != "" {
		msg += fmt.Sprintf(" for protocol %q", e.Protocol)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrBackend) hold for capability errors.
func (e *CapabilityError) Unwrap() error { return ErrBackend }

// Check returns the exact CapabilityError for the first feature of the
// normalised spec the capabilities do not cover, or nil when the spec is
// fully covered.
func (c Capabilities) Check(n scenario.Spec) error {
	if !slices.Contains(c.Protocols, n.Protocol) {
		return &CapabilityError{Backend: c.Backend, Feature: "protocol", Protocol: n.Protocol, Supported: c.Protocols}
	}
	if n.WithholdEvery > 0 && !c.Withholding {
		return &CapabilityError{Backend: c.Backend, Feature: "withholding", Protocol: n.Protocol, Supported: c.Protocols}
	}
	if n.Adversary != nil {
		if !c.Adversary {
			return &CapabilityError{Backend: c.Backend, Feature: "adversary", Protocol: n.Protocol, Supported: c.Protocols,
				Detail: fmt.Sprintf("strategy %q", n.Adversary.Strategy)}
		}
		if len(c.Strategies) > 0 && !slices.Contains(c.Strategies, n.Adversary.Strategy) {
			return &CapabilityError{Backend: c.Backend, Feature: "strategy", Protocol: n.Protocol, Supported: c.Protocols,
				Detail: fmt.Sprintf("strategy %q (covered: %s)", n.Adversary.Strategy, strings.Join(c.Strategies, ", "))}
		}
	}
	if n.Network != nil && !c.Network {
		return &CapabilityError{Backend: c.Backend, Feature: "network", Protocol: n.Protocol, Supported: c.Protocols,
			Detail: fmt.Sprintf("fork_rate %v", n.Network.ForkRate)}
	}
	return nil
}
