package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/arena"
	"repro/internal/scenario"
)

// arenaSpec is an honest PoW baseline whose 40% miner sits above the
// selfish-mining profitability threshold.
func arenaSpec() scenario.Spec {
	return scenario.Spec{
		Name: "arena-pow", Protocol: "pow",
		Stake: 0.4, Miners: 4, Blocks: 1500, Trials: 30, Seed: 9,
	}
}

func TestArenaEvaluatorEquilibriumOutcome(t *testing.T) {
	rep, err := Run([]scenario.Spec{arenaSpec()}, Options{Evaluator: &ArenaEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Backend != "arena" {
		t.Errorf("backend = %q", o.Backend)
	}
	if o.Arena == nil {
		t.Fatal("outcome carries no equilibrium")
	}
	if !o.Arena.Converged || !reflect.DeepEqual(o.Arena.Deviators, []int{0}) {
		t.Errorf("equilibrium = %+v, want converged with deviator 0", o.Arena)
	}
	if o.Verdict.ExpectationalFair {
		t.Error("equilibrium with a profitable selfish miner must break expectational fairness")
	}
	if d := o.Arena.Delta(0); d <= 0 {
		t.Errorf("attacker delta %v, want > 0", d)
	}
	// The equilibrium must survive the JSON round trip outcomes take
	// through caches, cluster streams and service responses.
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Outcome
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Arena, o.Arena) {
		t.Error("equilibrium does not survive the outcome JSON round trip")
	}
}

func TestArenaEvaluatorRefusesTreatmentBlocks(t *testing.T) {
	spec := arenaSpec()
	spec.Adversary = &scenario.Adversary{Strategy: "selfish"}
	_, err := (&ArenaEvaluator{}).Evaluate(context.Background(), spec)
	var capErr *CapabilityError
	if !errors.As(err, &capErr) || capErr.Feature != "adversary" {
		t.Fatalf("err = %v, want CapabilityError{Feature: adversary}", err)
	}
	if !errors.Is(err, ErrBackend) {
		t.Error("capability error must unwrap to ErrBackend")
	}
}

func TestArenaNameRoundTrip(t *testing.T) {
	evs := []*ArenaEvaluator{
		{},
		{Config: arena.Config{MaxRounds: 4}},
		{Config: arena.Config{Candidates: []arena.Candidate{
			{Strategy: "honest"}, {Strategy: "selfish", Gamma: 0.5},
		}}},
		{Config: arena.Config{MaxRounds: 3, Candidates: []arena.Candidate{
			{Strategy: "selfish-delay", Gamma: 0.25, Delay: 2}, {Strategy: "withhold", Every: 100},
		}}},
	}
	for _, ev := range evs {
		name := ev.Name()
		back, err := ParseArenaName(name)
		if err != nil {
			t.Errorf("ParseArenaName(%q): %v", name, err)
			continue
		}
		if got := back.Name(); got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
	}
	if (&ArenaEvaluator{}).Name() != "arena" {
		t.Errorf("default name = %q", (&ArenaEvaluator{}).Name())
	}
	// MaxRounds at the default is normalised away: same semantics, same
	// cache namespace.
	if got := (&ArenaEvaluator{Config: arena.Config{MaxRounds: arena.DefaultMaxRounds}}).Name(); got != "arena" {
		t.Errorf("default-round name = %q, want arena", got)
	}
	for _, bad := range []string{"montecarlo", "arena(", "arena(x=1)", "arena(r=zero)", "arena(s=)"} {
		if _, err := ParseArenaName(bad); err == nil {
			t.Errorf("ParseArenaName(%q) accepted", bad)
		}
	}
}

func TestArenaEvaluatorDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Report {
		t.Helper()
		rep, err := Run([]scenario.Spec{arenaSpec()}, Options{
			Evaluator: &ArenaEvaluator{}, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a.Outcomes[0].Verdict, b.Outcomes[0].Verdict) ||
		!reflect.DeepEqual(a.Outcomes[0].Arena, b.Outcomes[0].Arena) {
		t.Error("arena outcomes depend on worker count")
	}
}
