package sweep

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arena"
	"repro/internal/montecarlo"
	"repro/internal/scenario"
)

// ArenaEvaluator answers scenarios with best-response equilibrium
// dynamics (internal/arena): the spec describes an honest baseline
// game, the arena lets every miner pick a best response from a strategy
// menu until play fixes, and the evaluation reports the fairness of the
// fixed point — Verdict and Equitability are assessed on the tracked
// miner's λ samples under the equilibrium profile, and the Arena field
// carries the profile, payoffs and honest-baseline deltas.
//
// Results are a pure function of (spec, config): the round-robin order,
// tie-breaking and per-profile seeds are all deterministic, so local
// runs and cluster runs merge bit-identically. Name encodes the
// normalised config, namespacing caches exactly like the adaptive
// Monte-Carlo variants.
//
// TrialsRun counts every simulation trial the dynamics executed across
// profile evaluations; the achieved eps/delta certificate is stated on
// the final fixed-point sample matrix (spec.Trials columns) only.
type ArenaEvaluator struct {
	// Config is the arena's strategy menu and round bound; the zero
	// value selects each protocol's default menu.
	Config arena.Config
	// TrialWorkers caps per-payoff trial parallelism (0 lets the runner
	// pick its saturation-aware default). Results are worker-independent.
	TrialWorkers int
}

// ArenaBackendName is the canonical name of the default-config arena
// backend.
const ArenaBackendName = "arena"

// Name implements Evaluator: "arena" for the default config, otherwise
// "arena(...)" encoding the non-default knobs — r=<max rounds> and
// s=<candidate>+<candidate>... — so differently-configured arenas never
// share a cache or cluster namespace. ParseArenaName inverts it.
func (e *ArenaEvaluator) Name() string {
	var parts []string
	if e.Config.MaxRounds > 0 && e.Config.MaxRounds != arena.DefaultMaxRounds {
		parts = append(parts, "r="+strconv.Itoa(e.Config.MaxRounds))
	}
	if len(e.Config.Candidates) > 0 {
		cands := make([]string, len(e.Config.Candidates))
		for i, c := range e.Config.Candidates {
			cands[i] = c.String()
		}
		parts = append(parts, "s="+strings.Join(cands, "+"))
	}
	if len(parts) == 0 {
		return ArenaBackendName
	}
	return ArenaBackendName + "(" + strings.Join(parts, ";") + ")"
}

// ParseArenaName parses "arena" or an "arena(...)" config encoding back
// into an evaluator. The round trip through Name is canonical: parsing
// a Name() output yields an evaluator with that exact Name.
func ParseArenaName(name string) (*ArenaEvaluator, error) {
	if name == ArenaBackendName {
		return &ArenaEvaluator{}, nil
	}
	inner, ok := strings.CutPrefix(name, ArenaBackendName+"(")
	if !ok || !strings.HasSuffix(inner, ")") {
		return nil, fmt.Errorf("%w: not an arena backend name: %q", ErrBackend, name)
	}
	ev := &ArenaEvaluator{}
	for _, part := range strings.Split(strings.TrimSuffix(inner, ")"), ";") {
		key, val, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("%w: arena backend name part %q is not key=value", ErrBackend, part)
		}
		switch key {
		case "r":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%w: arena round bound %q", ErrBackend, val)
			}
			ev.Config.MaxRounds = n
		case "s":
			for _, cs := range strings.Split(val, "+") {
				c, err := arena.ParseCandidate(cs)
				if err != nil {
					return nil, fmt.Errorf("%w: arena candidate %q: %v", ErrBackend, cs, err)
				}
				ev.Config.Candidates = append(ev.Config.Candidates, c)
			}
		default:
			return nil, fmt.Errorf("%w: unknown arena backend parameter %q", ErrBackend, key)
		}
	}
	return ev, nil
}

// Capabilities implements Capable. The arena covers every protocol but
// refuses all treatment blocks: it assigns strategies itself, so a spec
// carrying an adversary, network or withholding block is outside its
// vocabulary.
func (e *ArenaEvaluator) Capabilities() Capabilities {
	return Capabilities{
		Backend:   e.Name(),
		Protocols: scenario.ProtocolNames(),
	}
}

// Evaluate implements Evaluator.
func (e *ArenaEvaluator) Evaluate(ctx context.Context, spec scenario.Spec) (Evaluation, error) {
	n := spec.Normalized()
	if err := e.Capabilities().Check(n); err != nil {
		return Evaluation{}, err
	}
	p, err := n.Build()
	if err != nil {
		return Evaluation{}, err
	}
	eng := arena.Engine{Config: e.Config, TrialWorkers: e.TrialWorkers}
	res, err := eng.Run(ctx, n)
	if err != nil {
		return Evaluation{}, err
	}
	mc := &montecarlo.Result{Protocol: p.Name(), Checkpoints: res.Checkpoints, Lambda: res.Lambda}
	ev := assessSamples(n, p.Name(), mc, int64(n.Trials), int64(n.Trials), false, montecarlo.DefaultStopConfidence)
	ev.TrialsRun = res.TrialsRun
	ev.TrialsBudget = res.TrialsRun
	ev.Arena = &res.Equilibrium
	return ev, nil
}
