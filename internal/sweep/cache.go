package sweep

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU result cache keyed by scenario content hash.
// Repeated and overlapping sweeps consult it before recomputing a
// scenario, so a warm cache answers a repeated sweep without running a
// single Monte-Carlo trial.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key string
	out Outcome
}

// DefaultCacheCapacity bounds a cache built with capacity <= 0.
const DefaultCacheCapacity = 4096

// NewCache returns an LRU cache holding up to capacity outcomes
// (DefaultCacheCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached outcome for a scenario hash, marking the entry
// most-recently used.
func (c *Cache) Get(key string) (Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Outcome{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// Add stores an outcome under a scenario hash, evicting the
// least-recently-used entry when the cache is full.
func (c *Cache) Add(key string, out Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached outcomes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns the cumulative hit and miss counts.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
