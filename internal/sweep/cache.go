package sweep

import (
	"container/list"
	"sync"

	"repro/internal/telemetry"
)

// Cache is a thread-safe LRU result cache keyed by scenario content hash.
// Repeated and overlapping sweeps consult it before recomputing a
// scenario, so a warm cache answers a repeated sweep without running a
// single Monte-Carlo trial.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	// Telemetry handles (detached unless built with NewCacheWithMetrics)
	// so Counters() and a /metrics scrape read the same atomics.
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
}

type cacheEntry struct {
	key string
	out Outcome
}

// DefaultCacheCapacity bounds a cache built with capacity <= 0.
const DefaultCacheCapacity = 4096

// NewCache returns an LRU cache holding up to capacity outcomes
// (DefaultCacheCapacity when capacity <= 0). Counters stay detached; use
// NewCacheWithMetrics to expose them on a registry.
func NewCache(capacity int) *Cache { return NewCacheWithMetrics(capacity, nil) }

// NewCacheWithMetrics is NewCache with the cache's counters —
// fairness_cache_{hits,misses,evictions}_total, labelled cache="memory"
// — registered on m (nil leaves them detached).
func NewCacheWithMetrics(capacity int, m *telemetry.Registry) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity:  capacity,
		ll:        list.New(),
		items:     make(map[string]*list.Element, capacity),
		hits:      m.Counter("fairness_cache_hits_total", "cache", "memory"),
		misses:    m.Counter("fairness_cache_misses_total", "cache", "memory"),
		evictions: m.Counter("fairness_cache_evictions_total", "cache", "memory"),
	}
}

// Get returns the cached outcome for a scenario hash, marking the entry
// most-recently used.
func (c *Cache) Get(key string) (Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return Outcome{}, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// Add stores an outcome under a scenario hash, evicting the
// least-recently-used entry when the cache is full.
func (c *Cache) Add(key string, out Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// Len returns the number of cached outcomes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns the cumulative hit and miss counts.
func (c *Cache) Counters() (hits, misses uint64) {
	return uint64(c.hits.Value()), uint64(c.misses.Value())
}
