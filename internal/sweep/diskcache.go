package sweep

import (
	"encoding/json"

	"repro/internal/cachestore"
	"repro/internal/telemetry"
)

// DiskCache is a CacheStore backed by a content-addressed directory
// (internal/cachestore): outcomes are stored as JSON under their cache
// key, so a warm cache survives process restarts and can be shared by
// several processes pointed at the same directory — the cross-process
// result cache of the Engine API.
//
// Layout on disk: `<dir>/<backend>/<hh>/<hash>` where hh is the first
// two hash characters; every entry is one pretty-greppable JSON outcome.
// A corrupt or truncated entry (e.g. from a torn copy) is treated as a
// miss, deleted, and recomputed — never an error.
type DiskCache struct {
	store *cachestore.Dir
}

// NewDiskCache opens (creating if needed) a disk result cache rooted at
// dir. Counters stay detached; use NewDiskCacheWithMetrics to expose
// them on a registry.
func NewDiskCache(dir string) (*DiskCache, error) {
	return NewDiskCacheWithMetrics(dir, nil)
}

// NewDiskCacheWithMetrics is NewDiskCache with the underlying store's
// counters — fairness_cache_{hits,misses,writes,evictions,
// evicted_bytes}_total, labelled cache="disk" — registered on m (nil
// leaves them detached).
func NewDiskCacheWithMetrics(dir string, m *telemetry.Registry) (*DiskCache, error) {
	store, err := cachestore.OpenWithMetrics(dir, m)
	if err != nil {
		return nil, err
	}
	return &DiskCache{store: store}, nil
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.store.Root() }

// SetMaxBytes arms (or, with n <= 0, disarms) a size cap on the
// underlying store: once stored outcomes exceed n bytes, adds evict the
// least-recently-used entries until the total fits. Reads of an evicted
// entry are ordinary misses — the scenario recomputes and re-enters the
// cache as fresh.
func (d *DiskCache) SetMaxBytes(n int64) { d.store.SetMaxBytes(n) }

// GC forces a collection now and reports how many entries and bytes it
// evicted (always zero without a size cap).
func (d *DiskCache) GC() (removed int, freed int64) { return d.store.GC() }

// Get implements CacheStore: a missing, unreadable or undecodable entry
// is a miss. Undecodable entries are evicted so they recompute cleanly.
func (d *DiskCache) Get(key string) (Outcome, bool) {
	data, ok, err := d.store.Get(key)
	if err != nil || !ok {
		return Outcome{}, false
	}
	var out Outcome
	if err := json.Unmarshal(data, &out); err != nil {
		d.store.Delete(key)
		return Outcome{}, false
	}
	return out, true
}

// Add implements CacheStore. Serialisation or I/O failures drop the
// entry silently — a result cache must never fail the computation whose
// result it stores.
func (d *DiskCache) Add(key string, out Outcome) {
	data, err := json.Marshal(out)
	if err != nil {
		return
	}
	d.store.Put(key, data)
}

// Len implements CacheStore by walking the directory.
func (d *DiskCache) Len() int { return d.store.Len() }

// Counters returns this instance's cumulative hit and miss counts.
func (d *DiskCache) Counters() (hits, misses uint64) {
	h, m, _ := d.store.Counters()
	return h, m
}
