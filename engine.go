package fairness

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Engine is the context-aware entry point of the library: one configured
// evaluation pipeline — a backend, a result cache, a worker budget, an
// observer — shared by every run. Construct it once with NewEngine and
// functional options, then drive it with Evaluate (one ad-hoc protocol),
// EvaluateScenario (one declarative scenario), Sweep (a scenario list,
// aggregated) or Stream (a scenario list, as an iterator).
//
// Every method takes a context.Context threaded down through the sweep
// runner and the Monte-Carlo trial loops, so cancelling a context stops
// a run promptly: Sweep returns the partial report it finished together
// with ctx.Err().
//
// The zero-configuration NewEngine() reproduces the library's historical
// behaviour exactly: Monte-Carlo backend, no cache, GOMAXPROCS workers.
// An Engine is safe for concurrent use when its cache and observer are
// (both shipped CacheStore implementations are).
type Engine struct {
	workers         int
	trialWorkers    int
	cache           CacheStore
	backend         Evaluator
	adaptive        *AdaptiveTrials
	observer        func(SweepOutcome)
	cluster         *cluster.Options
	clusterProgress func(ClusterProgress)
	metrics         *MetricsRegistry
	tracer          *Tracer
	recorder        *FlightRecorder
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithWorkers caps scenario-level parallelism (0 = GOMAXPROCS).
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.workers = n }
}

// WithTrialWorkers caps each scenario's inner Monte-Carlo trial
// parallelism (0 = the saturation-aware default: 1 while scenario
// workers fill the machine, GOMAXPROCS otherwise).
func WithTrialWorkers(n int) EngineOption {
	return func(e *Engine) { e.trialWorkers = n }
}

// WithCache plugs a result cache into the engine: NewSweepCache for an
// in-process LRU, NewDiskCache for a content-addressed store that
// survives restarts and can be shared across processes. Keys are
// namespaced by backend, so one cache may serve several engines.
func WithCache(c CacheStore) EngineOption {
	return func(e *Engine) { e.cache = c }
}

// WithBackend selects the Evaluator answering each scenario:
// MonteCarloBackend (the default), TheoryBackend or ChainSimBackend —
// or any custom Evaluator implementation.
func WithBackend(ev Evaluator) EngineOption {
	return func(e *Engine) { e.backend = ev }
}

// WithAdaptiveTrials opts the engine's Monte-Carlo backend into adaptive
// early stopping: each scenario's Trials becomes a budget, runs halt as
// soon as the unfair-probability verdict is resolved at the scenario's
// ε/δ with total error probability a.Confidence, and reports carry the
// executed trial count plus the achieved eps/delta certificate. Zero
// fields resolve to the montecarlo package defaults. The option applies
// to the default backend or an explicit MonteCarloBackend; closed-form
// and chain-sim backends ignore it.
func WithAdaptiveTrials(a AdaptiveTrials) EngineOption {
	return func(e *Engine) { e.adaptive = &a }
}

// WithObserver streams every outcome to fn as it is produced, across all
// of the engine's sweeps. Calls are serialised within one run; the
// completion order is scheduling-dependent.
func WithObserver(fn func(SweepOutcome)) EngineOption {
	return func(e *Engine) { e.observer = fn }
}

// WithCluster distributes the engine's sweeps across a pool of fairnessd
// worker nodes (internal/cluster): the coordinator partitions the
// scenario list into shards, fans them out over HTTP with work-stealing
// and per-shard retries, and merges the workers' streams into a report
// bit-identical — modulo timing/cache bookkeeping — to a local sweep.
//
// The engine owns three of the options: Cache defaults to the engine's
// cache (pointing both at one shared directory gives the whole cluster a
// warm start), Backend is always the engine's backend name (every worker
// must run the same backend — the coordinator verifies this via
// /v1/healthz and refuses mismatches), and OnOutcome is the engine's
// observer chain. Evaluation itself happens on the workers; the engine's
// local WithBackend evaluator only names the expected backend and the
// cache namespace.
//
// Evaluate (ad-hoc protocols) never goes through the cluster — it
// bypasses the scenario pipeline entirely.
// The cluster may be self-organizing: set ClusterOptions.Registry (and
// serve it with a RegistryServer) and workers that register themselves
// — fairnessd -register — join the pool mid-run, shard sizes adapt to
// each worker's measured throughput, and a run that finds no workers
// waits for the first registration instead of failing.
func WithCluster(opts ClusterOptions) EngineOption {
	return func(e *Engine) {
		c := opts
		e.cluster = &c
	}
}

// WithClusterProgress streams a ClusterProgress snapshot to fn after
// every distributed-run scheduling transition: shard claims, streamed
// outcomes, acks, requeues and worker-pool changes. Calls are
// serialised. It only observes cluster-mode sweeps (WithCluster); local
// runs have no shards to report. When ClusterOptions.OnProgress is also
// set, both observers are invoked.
func WithClusterProgress(fn func(ClusterProgress)) EngineOption {
	return func(e *Engine) { e.clusterProgress = fn }
}

// WithTelemetry plugs an observability sink into the engine: every run
// ticks its sweep counters and per-backend latency histograms on m and
// (in cluster mode) its shard-lifecycle counters too; tr, when non-nil,
// receives the structured NDJSON trace-event stream. Either argument may
// be nil. Pass DefaultMetrics() to aggregate with the process-global
// simulation totals (Monte-Carlo trials, chainsim blocks/forks) on one
// registry — what fairnessd and the fairctl coordinator expose at
// /metrics.
//
// An optional third argument — a *FlightRecorder — retains the engine's
// completed spans (cluster-mode sweep/gate_wait/dispatch/merge) for
// GET /v1/traces; serve it with TracesHandler. Omitted or nil, spans
// still propagate (workers parent correctly) but are not retained here.
//
// Without this option every engine still meters itself on a private
// registry, readable through Engine.Metrics().
func WithTelemetry(m *MetricsRegistry, tr *Tracer, rec ...*FlightRecorder) EngineOption {
	return func(e *Engine) {
		e.metrics, e.tracer = m, tr
		if len(rec) > 0 {
			e.recorder = rec[0]
		}
	}
}

// NewEngine builds an evaluation engine from functional options.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{}
	for _, opt := range opts {
		opt(e)
	}
	if e.adaptive != nil {
		switch b := e.backend.(type) {
		case nil:
			e.backend = &sweep.MonteCarloEvaluator{Adaptive: e.adaptive}
		case *sweep.MonteCarloEvaluator:
			clone := *b
			clone.Adaptive = e.adaptive
			e.backend = &clone
		}
	}
	if e.metrics == nil {
		e.metrics = telemetry.NewRegistry()
	}
	return e
}

// Metrics returns the engine's metrics registry — the one WithTelemetry
// configured, or the engine's private registry otherwise. Snapshot() it
// for programmatic readings, or serve it with MetricsHandler.
func (e *Engine) Metrics() *MetricsRegistry { return e.metrics }

// sweepOptions assembles the sweep.Options for one run, chaining an
// optional per-run observer after the engine-level one.
func (e *Engine) sweepOptions(onOutcome func(SweepOutcome)) sweep.Options {
	opts := sweep.Options{
		Workers:      e.workers,
		TrialWorkers: e.trialWorkers,
		Cache:        e.cache,
		Evaluator:    e.backend,
		Metrics:      e.metrics,
		Tracer:       e.tracer,
	}
	switch {
	case e.observer != nil && onOutcome != nil:
		obs := e.observer
		opts.OnOutcome = func(o sweep.Outcome) { obs(o); onOutcome(o) }
	case e.observer != nil:
		opts.OnOutcome = e.observer
	case onOutcome != nil:
		opts.OnOutcome = onOutcome
	}
	return opts
}

// backendName returns the evaluator name the engine computes (or, in
// cluster mode, expects its workers to compute) under — the cache-key
// namespace of every run.
func (e *Engine) backendName() string {
	if e.backend == nil {
		return "montecarlo"
	}
	return e.backend.Name()
}

// BackendName reports the name of the evaluator the engine runs under —
// "montecarlo" by default, a variant like "montecarlo+es(...)" when
// adaptive trials are configured. This is the cache-key namespace and
// the backend label on every metric the engine emits.
func (e *Engine) BackendName() string { return e.backendName() }

// Capabilities returns the configured backend's declared scenario
// coverage: which protocols it answers and whether it covers the
// withholding, adversary and network treatment blocks. A scenario
// outside this coverage fails with a CapabilityError rather than a
// silently wrong number.
func (e *Engine) Capabilities() Capabilities {
	return sweep.CapabilityOf(e.backend)
}

// runSweep is the single dispatch point of every scenario run: local
// through the sweep runner, or distributed through the cluster
// coordinator when WithCluster is configured.
func (e *Engine) runSweep(ctx context.Context, specs []Scenario, onOutcome func(SweepOutcome)) (*SweepReport, error) {
	opts := e.sweepOptions(onOutcome)
	if e.cluster == nil {
		return sweep.RunContext(ctx, specs, opts)
	}
	// A scenario outside the backend's coverage would fail on the worker
	// as a generic shard error and be retried with backoff — a slow path
	// to a lost CapabilityError. Refuse it here, before any shard ships,
	// with the same typed error a local run returns. Custom evaluators
	// that don't declare capabilities are skipped: only they know what
	// their remote twins cover.
	if _, capable := e.backend.(sweep.Capable); capable || e.backend == nil {
		caps := sweep.CapabilityOf(e.backend)
		for i := range specs {
			if err := caps.Check(specs[i].Normalized()); err != nil {
				return nil, fmt.Errorf("fairness: scenario %d (%s): %w", i, specs[i].Name, err)
			}
		}
	}
	c := *e.cluster
	if c.Cache == nil {
		c.Cache = e.cache
	}
	if c.Metrics == nil {
		c.Metrics = e.metrics
	}
	if c.Tracer == nil {
		c.Tracer = e.tracer
	}
	if c.Recorder == nil {
		c.Recorder = e.recorder
	}
	c.Backend = e.backendName()
	c.OnOutcome = opts.OnOutcome
	if e.clusterProgress != nil {
		if prev := c.OnProgress; prev != nil {
			fn := e.clusterProgress
			c.OnProgress = func(p ClusterProgress) { prev(p); fn(p) }
		} else {
			c.OnProgress = e.clusterProgress
		}
	}
	return cluster.Run(ctx, specs, c)
}

// Sweep evaluates every scenario through the engine's backend and cache
// and aggregates per-scenario fairness verdicts with cache/throughput
// statistics. Outcomes stream to the engine's observer as they complete.
//
// On cancellation Sweep returns the partial report — completed positions
// filled, Report.Partial set — together with ctx.Err(); completed
// outcomes are identical to an uncancelled run's.
func (e *Engine) Sweep(ctx context.Context, specs []Scenario) (*SweepReport, error) {
	return e.runSweep(ctx, specs, nil)
}

// SweepObserved is Sweep with a per-run observer: fn sees every outcome
// as it completes (after the engine-level observer, when both are set)
// AND the aggregated report comes back with its statistics — the shape
// service frontends like fairnessd's shard endpoint need, where one
// response must both stream outcomes and close with a summary.
func (e *Engine) SweepObserved(ctx context.Context, specs []Scenario, fn func(SweepOutcome)) (*SweepReport, error) {
	return e.runSweep(ctx, specs, fn)
}

// Stream evaluates the scenarios and yields each outcome as it
// completes, in completion order. Breaking out of the loop cancels the
// remaining work. A run-level error (including ctx cancellation) is
// yielded once, with a zero outcome, after the completed outcomes.
func (e *Engine) Stream(ctx context.Context, specs []Scenario) iter.Seq2[SweepOutcome, error] {
	return func(yield func(SweepOutcome, error) bool) {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		outCh := make(chan SweepOutcome)
		errCh := make(chan error, 1)
		go func() {
			_, err := e.runSweep(runCtx, specs, func(o SweepOutcome) {
				select {
				case outCh <- o:
				case <-runCtx.Done():
				}
			})
			errCh <- err
			close(outCh)
		}()
		stopped := false
		for o := range outCh {
			if !yield(o, nil) {
				stopped = true
				cancel()
				break
			}
		}
		for range outCh { // drain so the runner's sends never block
		}
		if err := <-errCh; err != nil && !stopped {
			yield(SweepOutcome{}, err)
		}
	}
}

// EvaluateScenario answers one declarative scenario through the engine's
// backend and cache — a one-element sweep, sharing every piece of the
// pipeline (so repeated calls hit the cache, and the observer sees the
// outcome).
func (e *Engine) EvaluateScenario(ctx context.Context, s Scenario) (SweepOutcome, error) {
	rep, err := e.Sweep(ctx, []Scenario{s})
	if err != nil {
		return SweepOutcome{}, err
	}
	return rep.Outcomes[0], nil
}

// Arena answers one honest-baseline scenario with best-response
// equilibrium dynamics: every miner iteratively adopts the best
// response from cfg's strategy menu (the zero ArenaConfig selects the
// protocol's default menu) until play fixes, and the outcome reports
// the fairness of the fixed point with the equilibrium itself on
// Outcome.Arena — profile, per-miner payoffs and honest-baseline
// deltas. The scenario must not carry adversary, network or
// withholding blocks; the arena assigns strategies itself.
//
// The run shares the engine's cache, workers and observer but
// evaluates through ArenaBackend(cfg) regardless of the configured
// backend — cache keys are namespaced by the arena's config-encoding
// name, so arena results never collide with the engine's usual
// backend. In cluster mode the workers must run the same arena backend
// (fairnessd -backend 'arena(...)'); results merge bit-identically
// with a local run.
func (e *Engine) Arena(ctx context.Context, s Scenario, cfg ArenaConfig) (SweepOutcome, error) {
	sub := *e
	sub.backend = ArenaBackend(cfg)
	sub.adaptive = nil
	return sub.EvaluateScenario(ctx, s)
}

// ErrInvalidAllocation reports an initial allocation Evaluate cannot
// assess (empty, or no positive total).
var ErrInvalidAllocation = errors.New("fairness: invalid initial allocation")

// evalSettings carries Engine.Evaluate's resolved run parameters.
// Explicitly-set zero values are honoured — unlike the deprecated
// EvalConfig, where zero always meant "default".
type evalSettings struct {
	trials    int
	blocks    int
	seed      uint64
	seedSet   bool
	params    Params
	paramsSet bool
	withhold  int
}

// EvalOption configures one Engine.Evaluate run.
type EvalOption func(*evalSettings)

// WithTrials sets the number of independent games (default 1000).
func WithTrials(n int) EvalOption {
	return func(s *evalSettings) { s.trials = n }
}

// WithBlocks sets the horizon in blocks/epochs (default 5000).
func WithBlocks(n int) EvalOption {
	return func(s *evalSettings) { s.blocks = n }
}

// WithSeed sets the base RNG seed. Unlike the deprecated EvalConfig,
// WithSeed(0) really does run seed 0 — unset defaults to 1.
func WithSeed(seed uint64) EvalOption {
	return func(s *evalSettings) { s.seed, s.seedSet = seed, true }
}

// WithFairnessParams sets the robust-fairness (ε, δ). Unlike the
// deprecated EvalConfig, a literal zero Params is honoured (ε = 0
// collapses the fair area to the point {a}) — unset defaults to
// DefaultParams.
func WithFairnessParams(p Params) EvalOption {
	return func(s *evalSettings) { s.params, s.paramsSet = p, true }
}

// WithWithholding applies the Section 6.3 reward-withholding treatment
// with period k (default: off).
func WithWithholding(k int) EvalOption {
	return func(s *evalSettings) { s.withhold = k }
}

// Evaluate runs a Monte-Carlo experiment for miner 0 of the given
// initial allocation and assesses both fairness notions at the final
// horizon.
//
// The protocol is an arbitrary instance, not a declarative scenario, so
// this path bypasses the scenario pipeline entirely: it has no content
// hash to cache under, and it ALWAYS samples via Monte-Carlo — the
// engine's WithBackend and WithCache configuration does not apply here.
// To evaluate through the configured backend and cache, express the
// question as a Scenario and call EvaluateScenario.
//
// Defaults: 1000 trials, 5000 blocks, seed 1, DefaultParams. Options
// distinguish unset from zero — WithSeed(0) and a zero WithFairnessParams
// are both expressible, which the deprecated EvalConfig could not say.
func (e *Engine) Evaluate(ctx context.Context, p Protocol, initial []float64, opts ...EvalOption) (Verdict, error) {
	s := evalSettings{trials: 1000, blocks: 5000, seed: 1, params: DefaultParams}
	for _, opt := range opts {
		opt(&s)
	}
	if len(initial) == 0 {
		return Verdict{}, fmt.Errorf("%w: empty", ErrInvalidAllocation)
	}
	total := 0.0
	for _, v := range initial {
		total += v
	}
	if !(total > 0) {
		return Verdict{}, fmt.Errorf("%w: total share %v, need > 0", ErrInvalidAllocation, total)
	}
	var gameOpts []game.Option
	if s.withhold > 0 {
		gameOpts = append(gameOpts, game.WithWithholding(s.withhold))
	}
	cfg := montecarlo.Config{
		Trials:      s.trials,
		Blocks:      s.blocks,
		Seed:        s.seed,
		Checkpoints: []int{s.blocks},
		Workers:     e.trialWorkers,
		GameOptions: gameOpts,
	}
	if e.adaptive != nil {
		cfg.Batch = e.adaptive.Batch
		cfg.Stop = &montecarlo.StopRule{
			Share:      initial[0] / total,
			Eps:        s.params.Eps,
			Delta:      s.params.Delta,
			Confidence: e.adaptive.Confidence,
			MinTrials:  e.adaptive.MinTrials,
		}
	}
	res, err := montecarlo.RunContext(ctx, p, initial, cfg)
	if err != nil {
		return Verdict{}, err
	}
	a := initial[0] / total
	return s.params.Assess(p.Name(), res.FinalSamples(), a), nil
}
