package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: SomeCPU
BenchmarkSweepColdCache-8       	       1	64508976 ns/op	       372.1 scenarios/s	         0 cache_hits
BenchmarkSweepWarmCache-8       	       1	  120034 ns/op	    199933 scenarios/s	        24 cache_hits
BenchmarkStepPoW-8              	 4105918	     292.1 ns/op
PASS
ok  	repro	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	cold, ok := doc.Benchmarks["BenchmarkSweepColdCache"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if cold.NsPerOp != 64508976 || cold.Iterations != 1 {
		t.Errorf("cold: %+v", cold)
	}
	if cold.Metrics["scenarios/s"] != 372.1 || cold.Metrics["cache_hits"] != 0 {
		t.Errorf("cold metrics: %+v", cold.Metrics)
	}
	warm := doc.Benchmarks["BenchmarkSweepWarmCache"]
	if warm.Metrics["cache_hits"] != 24 {
		t.Errorf("warm metrics: %+v", warm.Metrics)
	}
	step := doc.Benchmarks["BenchmarkStepPoW"]
	if step.NsPerOp != 292.1 || step.Metrics != nil {
		t.Errorf("step: %+v", step)
	}
}

// gateBaseline builds a baseline document around one gated benchmark.
func gateBaseline(ns float64) Document {
	return Document{
		Gate: &Gate{MaxRegress: 0.25, Benchmarks: []string{"BenchmarkSweepColdCache"}},
		Benchmarks: map[string]Result{
			"BenchmarkSweepColdCache": {Iterations: 1, NsPerOp: ns},
		},
	}
}

func TestCheckPassesWithinThreshold(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sampleOutput))
	var out bytes.Buffer
	// Baseline slightly slower than the run: improvement passes.
	if err := Check(doc, gateBaseline(70_000_000), 0, &out); err != nil {
		t.Errorf("improvement failed the gate: %v\n%s", err, out.String())
	}
	// Baseline such that the run is +24%: still inside the 25% budget.
	if err := Check(doc, gateBaseline(64508976/1.24), 0, &out); err != nil {
		t.Errorf("+24%% failed the 25%% gate: %v", err)
	}
}

func TestCheckFailsBeyondThreshold(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sampleOutput))
	var out bytes.Buffer
	// Baseline such that the run regressed ~29%: must fail.
	err := Check(doc, gateBaseline(50_000_000), 0, &out)
	if err == nil || !strings.Contains(err.Error(), "REGRESSED") && !strings.Contains(err.Error(), "gate failed") {
		t.Errorf("29%% regression passed the 25%% gate: %v", err)
	}
	// A tighter override catches smaller slips.
	if err := Check(doc, gateBaseline(64508976/1.10), 0.05, &out); err == nil {
		t.Error("10% regression passed a 5% override gate")
	}
}

func TestCheckFailsWhenGatedBenchmarkDisappears(t *testing.T) {
	base := gateBaseline(64508976)
	base.Gate.Benchmarks = append(base.Gate.Benchmarks, "BenchmarkDeleted")
	base.Benchmarks["BenchmarkDeleted"] = Result{Iterations: 1, NsPerOp: 100}
	doc, _ := Parse(strings.NewReader(sampleOutput))
	var out bytes.Buffer
	if err := Check(doc, base, 0, &out); err == nil {
		t.Error("missing gated benchmark passed the gate")
	}
}

func TestRunEndToEndWritesArtifactAndGates(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.txt")
	outPath := filepath.Join(dir, "BENCH_ci.json")
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(benchPath, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	baseData, _ := json.Marshal(gateBaseline(70_000_000))
	if err := os.WriteFile(basePath, baseData, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err := run([]string{"-in", benchPath, "-out", outPath, "-baseline", basePath},
		strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatalf("benchgate run: %v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if doc.Benchmarks["BenchmarkSweepColdCache"].NsPerOp != 64508976 {
		t.Errorf("artifact: %+v", doc.Benchmarks)
	}
	if !strings.Contains(stderr.String(), "gate passed") {
		t.Errorf("gate verdict missing: %s", stderr.String())
	}

	// A regressed baseline flips the exit to failure.
	baseData, _ = json.Marshal(gateBaseline(10_000_000))
	os.WriteFile(basePath, baseData, 0o644)
	err = run([]string{"-in", benchPath, "-out", outPath, "-baseline", basePath},
		strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Error("regressed run passed the end-to-end gate")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &stdout, &stderr); err == nil {
		t.Error("empty benchmark input should fail")
	}
}

func TestCheckEnforcesMetricCeilings(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sampleOutput))
	base := gateBaseline(70_000_000)
	base.Gate.MetricCeilings = map[string]map[string]float64{
		"BenchmarkSweepColdCache": {"scenarios/s": 400},
	}
	var out bytes.Buffer
	if err := Check(doc, base, 0, &out); err != nil {
		t.Errorf("metric within ceiling failed the gate: %v\n%s", err, out.String())
	}
	// Over the ceiling: the run's 372.1 scenarios/s against a 300 cap.
	base.Gate.MetricCeilings["BenchmarkSweepColdCache"]["scenarios/s"] = 300
	err := Check(doc, base, 0, &out)
	if err == nil || !strings.Contains(err.Error(), "ceiling") {
		t.Errorf("exceeded ceiling passed the gate: %v", err)
	}
	// A ceiling on a metric the run stopped reporting must fail too —
	// deleting the instrumentation is not a way to pass.
	base.Gate.MetricCeilings["BenchmarkSweepColdCache"] = map[string]float64{"trials/scenario": 10}
	if err := Check(doc, base, 0, &out); err == nil {
		t.Error("missing ceiling metric passed the gate")
	}
	// A ceiling on a benchmark missing from the run fails.
	base.Gate.MetricCeilings = map[string]map[string]float64{"BenchmarkGone": {"x": 1}}
	if err := Check(doc, base, 0, &out); err == nil {
		t.Error("ceiling on missing benchmark passed the gate")
	}
}
