// Command benchgate turns `go test -bench` output into a structured
// JSON artifact and enforces a performance-regression gate against a
// committed baseline — the engine behind CI's `bench` job.
//
// It parses the standard benchmark result lines
//
//	BenchmarkSweepColdCache-8    1    64508976 ns/op    372.1 scenarios/s    0 cache_hits
//
// into {name → ns/op + custom metrics} (the GOMAXPROCS "-8" suffix is
// stripped so results compare across machines), writes the table as
// JSON, and — when a baseline file is given — fails with exit 1 if any
// gated benchmark's ns/op regressed by more than the baseline's
// max_regress fraction.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | benchgate -out BENCH_ci.json -baseline BENCH_baseline.json
//	benchgate -in bench.txt -out BENCH_ci.json
//
// Flags:
//
//	-in FILE        benchmark output to parse (default: stdin)
//	-out FILE       write the parsed results as JSON (default: stdout)
//	-baseline FILE  baseline to gate against (no gating when omitted)
//	-max-regress F  override the baseline's max_regress fraction
//
// Baseline format — the parsed-results document plus a "gate" block
// naming the benchmarks whose ns/op is enforced:
//
//	{
//	  "gate": {"max_regress": 0.25, "benchmarks": ["BenchmarkSweepColdCache"]},
//	  "benchmarks": {"BenchmarkSweepColdCache": {"ns_per_op": 6.5e7, ...}}
//	}
//
// Benchmarks named by the gate but missing from the new run fail the
// gate too — a silently deleted benchmark must not pass as "no
// regression".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics carries the custom b.ReportMetric units: scenarios/s,
	// cache_hits, blocks/s, ...
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Gate names the enforced benchmarks and the allowed ns/op regression.
type Gate struct {
	// MaxRegress is the allowed fractional ns/op increase over the
	// baseline (0.25 = fail beyond +25%).
	MaxRegress float64 `json:"max_regress"`
	// Benchmarks lists the gated benchmark names (GOMAXPROCS suffix
	// stripped).
	Benchmarks []string `json:"benchmarks"`
	// MetricCeilings caps custom b.ReportMetric units per benchmark:
	// the gate fails when the named benchmark reports the metric above
	// its ceiling (or stops reporting it). This is how the adaptive cold
	// sweep's trials-per-scenario budget is enforced alongside raw
	// ns/op.
	MetricCeilings map[string]map[string]float64 `json:"metric_ceilings,omitempty"`
}

// Document is the benchgate JSON shape: results, plus the gate block in
// baseline files.
type Document struct {
	Gate       *Gate             `json:"gate,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "benchmark output file (default: stdin)")
	out := fs.String("out", "", "write parsed results JSON to FILE (default: stdout)")
	baseline := fs.String("baseline", "", "baseline JSON to gate ns/op regressions against")
	maxRegress := fs.Float64("max-regress", 0, "override the baseline's max_regress fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	doc, err := Parse(src)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found")
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "benchgate: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	} else {
		stdout.Write(data)
	}

	if *baseline == "" {
		return nil
	}
	baseData, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	var base Document
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", *baseline, err)
	}
	return Check(doc, base, *maxRegress, stderr)
}

// Parse reads `go test -bench` output into a Document.
func Parse(r io.Reader) (Document, error) {
	doc := Document{Benchmarks: make(map[string]Result)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if ok {
			doc.Benchmarks[name] = res
		}
	}
	return doc, sc.Err()
}

// parseLine decodes one "BenchmarkX-8  N  V unit  V unit..." line.
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = v
	}
	if res.NsPerOp == 0 {
		return "", Result{}, false
	}
	return stripProcs(fields[0]), res, true
}

// sortedKeys returns a map's keys in deterministic order, so gate
// output and failure lists are stable run to run.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// stripProcs removes the trailing "-<GOMAXPROCS>" so names compare
// across machines.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Check enforces the baseline's gate against the new results; regress
// overrides the baseline's max_regress when > 0.
func Check(doc, base Document, regress float64, w io.Writer) error {
	if base.Gate == nil || len(base.Gate.Benchmarks) == 0 {
		fmt.Fprintln(w, "benchgate: baseline has no gate block; nothing enforced")
		return nil
	}
	if regress <= 0 {
		regress = base.Gate.MaxRegress
	}
	if regress <= 0 {
		return fmt.Errorf("gate has no max_regress and none was passed via -max-regress")
	}
	var failures []string
	for _, name := range base.Gate.Benchmarks {
		want, ok := base.Benchmarks[name]
		if !ok {
			return fmt.Errorf("gated benchmark %s missing from the baseline itself", name)
		}
		got, ok := doc.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from this run", name))
			continue
		}
		limit := want.NsPerOp * (1 + regress)
		verdict := "ok"
		if got.NsPerOp > limit {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, limit +%.0f%%)",
				name, got.NsPerOp, want.NsPerOp, 100*(got.NsPerOp/want.NsPerOp-1), 100*regress))
		}
		fmt.Fprintf(w, "benchgate: %-40s %12.0f ns/op  baseline %12.0f  %s\n",
			name, got.NsPerOp, want.NsPerOp, verdict)
	}
	for _, name := range sortedKeys(base.Gate.MetricCeilings) {
		got, ok := doc.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from this run (metric ceiling)", name))
			continue
		}
		ceilings := base.Gate.MetricCeilings[name]
		for _, metric := range sortedKeys(ceilings) {
			limit := ceilings[metric]
			v, reported := got.Metrics[metric]
			verdict := "ok"
			switch {
			case !reported:
				verdict = "MISSING"
				failures = append(failures, fmt.Sprintf("%s: metric %q not reported (ceiling %g)", name, metric, limit))
			case v > limit:
				verdict = "EXCEEDED"
				failures = append(failures, fmt.Sprintf("%s: %s = %g, ceiling %g", name, metric, v, limit))
			}
			fmt.Fprintf(w, "benchgate: %-40s %12g %-16s ceiling %12g  %s\n", name, v, metric, limit, verdict)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "benchgate: gate passed (%d benchmarks within +%.0f%% of baseline)\n",
		len(base.Gate.Benchmarks), 100*regress)
	return nil
}
