// Command fairnessd serves the fairness Engine over HTTP/JSON: one
// long-lived Engine and one (optionally disk-backed) result cache shared
// by every request, so repeated and overlapping scenario questions get
// answered from cache across clients — and across daemon restarts when
// -cache-dir is set.
//
// Endpoints:
//
//	POST /v1/evaluate  body: one scenario JSON object
//	                   → 200 with the outcome JSON (engine cache applies)
//	POST /v1/sweep     body: a scenario array or a grid object (same
//	                   format as fairsweep -spec files)
//	                   → 200 with application/x-ndjson: one outcome per
//	                   line as it completes, then a final summary line
//	                   {"done":true,...}. Closing the connection cancels
//	                   the sweep within one scenario.
//	GET  /v1/healthz   → {"status":"ok",...} with cache and backend info
//
// Flags:
//
//	-addr ADDR      listen address (default :7447)
//	-cache-dir DIR  disk result cache shared across restarts
//	-cache N        in-memory LRU capacity when -cache-dir is unset
//	-workers N      scenario-level parallelism per sweep (0 = all cores)
//	-backend NAME   montecarlo (default), theory or chainsim
//
// Example session:
//
//	fairnessd -addr :7447 -cache-dir /var/cache/fairnessd &
//	curl -s localhost:7447/v1/evaluate -d '{"protocol":"mlpos","stake":0.2}'
//	curl -sN localhost:7447/v1/sweep -d '{"protocols":["pow","mlpos"],"stake":[0.1,0.2]}'
//	curl -s localhost:7447/v1/healthz
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	fairness "repro"
	"repro/internal/scenario"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7447", "listen address")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "disk result-cache directory (survives restarts)")
	flag.IntVar(&cfg.cacheCap, "cache", 4096, "in-memory LRU capacity when -cache-dir is unset (0 = no cache)")
	flag.IntVar(&cfg.workers, "workers", 0, "scenario-level parallelism per sweep (0 = all cores)")
	flag.StringVar(&cfg.backend, "backend", "montecarlo", "evaluator backend: montecarlo, theory, chainsim")
	flag.Parse()

	srv, err := newServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairnessd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Shutdown returns only once the in-flight handlers drained (or the
	// grace period expired); main must wait for it, or exiting would cut
	// live NDJSON streams mid-scenario.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(os.Stderr, "fairnessd: listening on %s (backend=%s cache=%s)\n",
		cfg.addr, srv.backendName, srv.cacheDesc)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fairnessd:", err)
		os.Exit(1)
	}
	stop() // unblock the shutdown goroutine if the listener failed on its own
	<-shutdownDone
}

// config assembles a server.
type config struct {
	addr     string
	cacheDir string
	cacheCap int
	workers  int
	backend  string
}

// server is the HTTP face of one shared Engine.
type server struct {
	eng         *fairness.Engine
	cache       fairness.CacheStore
	backendName string
	cacheDesc   string
	start       time.Time
	evaluates   atomic.Int64
	sweeps      atomic.Int64
}

// maxBodyBytes bounds request bodies; scenario documents are tiny.
const maxBodyBytes = 4 << 20

func newServer(cfg config) (*server, error) {
	s := &server{start: time.Now(), backendName: cfg.backend, cacheDesc: "none"}
	if s.backendName == "" {
		s.backendName = "montecarlo"
	}
	var ev fairness.Evaluator
	switch s.backendName {
	case "montecarlo":
	case "theory":
		ev = fairness.TheoryBackend()
	case "chainsim":
		ev = fairness.ChainSimBackend()
	default:
		return nil, fmt.Errorf("unknown backend %q (known: montecarlo, theory, chainsim)", cfg.backend)
	}
	switch {
	case cfg.cacheDir != "":
		disk, err := fairness.NewDiskCache(cfg.cacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = disk
		s.cacheDesc = "disk:" + disk.Dir()
	case cfg.cacheCap > 0:
		s.cache = fairness.NewSweepCache(cfg.cacheCap)
		s.cacheDesc = fmt.Sprintf("lru:%d", cfg.cacheCap)
	}
	opts := []fairness.EngineOption{fairness.WithWorkers(cfg.workers)}
	if s.cache != nil {
		opts = append(opts, fairness.WithCache(s.cache))
	}
	if ev != nil {
		opts = append(opts, fairness.WithBackend(ev))
	}
	s.eng = fairness.NewEngine(opts...)
	return s, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

// handleEvaluate answers one scenario through the shared Engine: cache
// hits are served without computing, and the outcome records which
// backend produced it.
func (s *server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.evaluates.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := scenario.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.eng.EvaluateScenario(r.Context(), spec)
	switch {
	case errors.Is(err, context.Canceled):
		return // client went away; nothing to write
	case err != nil:
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// sweepSummary is the trailing NDJSON line of a /v1/sweep response.
type sweepSummary struct {
	Done      bool    `json:"done"`
	Scenarios int     `json:"scenarios"`
	Streamed  int     `json:"streamed"`
	CacheHits int     `json:"cache_hits"`
	WallMS    float64 `json:"wall_ms"`
	Partial   bool    `json:"partial,omitempty"`
}

// handleSweep expands the request into a scenario list and streams one
// NDJSON outcome line per scenario as the shared Engine completes it,
// then a summary line. The request context cancels the sweep, so a
// dropped connection stops computing within one scenario.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.sweeps.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := decodeSpecs(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()
	sum := sweepSummary{Scenarios: len(specs)}
	for out, err := range s.eng.Stream(r.Context(), specs) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return // client went away mid-stream
			}
			sum.Partial = true
			enc.Encode(map[string]string{"error": err.Error()})
			break
		}
		sum.Streamed++
		if out.CacheHit {
			sum.CacheHits++
		}
		if enc.Encode(out) != nil {
			return // write failure: the connection is gone
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum.Done = !sum.Partial
	sum.WallMS = float64(time.Since(start).Microseconds()) / 1000
	enc.Encode(sum)
}

// handleHealthz reports liveness plus the shared cache and backend
// state. It is probe-friendly: everything reported is O(1) — notably it
// never walks the disk cache (cache hit/miss counters come from this
// instance's atomics, and an entry count is only included for the
// in-memory LRU, whose Len is constant-time).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status      string  `json:"status"`
		Backend     string  `json:"backend"`
		Cache       string  `json:"cache"`
		CacheLen    *int    `json:"cache_len,omitempty"`
		CacheHits   *uint64 `json:"cache_hits,omitempty"`
		CacheMisses *uint64 `json:"cache_misses,omitempty"`
		Evaluates   int64   `json:"evaluates"`
		Sweeps      int64   `json:"sweeps"`
		UptimeMS    int64   `json:"uptime_ms"`
		GoMaxProcs  int     `json:"gomaxprocs"`
	}
	h := health{
		Status:     "ok",
		Backend:    s.backendName,
		Cache:      s.cacheDesc,
		Evaluates:  s.evaluates.Load(),
		Sweeps:     s.sweeps.Load(),
		UptimeMS:   time.Since(s.start).Milliseconds(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if c, ok := s.cache.(interface{ Counters() (hits, misses uint64) }); ok {
		hits, misses := c.Counters()
		h.CacheHits, h.CacheMisses = &hits, &misses
	}
	if lru, ok := s.cache.(*fairness.SweepCache); ok {
		n := lru.Len()
		h.CacheLen = &n
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// decodeSpecs accepts either an explicit scenario array or a grid object
// — the same two formats fairsweep -spec files use — and returns the
// validated scenario list.
func decodeSpecs(body []byte) ([]fairness.Scenario, error) {
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "[") {
		list, err := scenario.DecodeList(body)
		if err != nil {
			return nil, err
		}
		for i := range list {
			if err := list[i].Validate(); err != nil {
				return nil, fmt.Errorf("scenario %d: %w", i, err)
			}
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("empty scenario list")
		}
		return list, nil
	}
	grid, err := scenario.DecodeGrid(body)
	if err != nil {
		return nil, err
	}
	specs, err := grid.Expand()
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("grid expands to zero scenarios")
	}
	return specs, nil
}

// statusFor maps evaluation errors onto HTTP statuses: spec problems and
// backend-coverage gaps are the client's fault, everything else is ours.
func statusFor(err error) int {
	if errors.Is(err, scenario.ErrSpec) || errors.Is(err, fairness.ErrBackend) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}
